(* Crash-tolerance suite: the serializable session snapshot and its
   codecs, the crash-safe spool, SCM_RIGHTS fd passing, the supervised
   multi-process failover matrix (a worker SIGKILLed at every frame
   index of a seeded 16x16 DTW session must still reveal the
   bit-identical distance through spool failover), atomic catalog
   persistence, per-line telemetry flushing, lazy resume-table sweeping
   on the accept path, and the whole-server-restart fail-fast reject. *)

open Ppst.Import
open Ppst_transport

let eq_bi = Alcotest.testable Ppst_bigint.Bigint.pp Ppst_bigint.Bigint.equal
let seeded s = Ppst_rng.Secure_rng.of_seed_string s

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ppst-failover-%d-%s-%d" (Unix.getpid ()) tag !counter)
    in
    rm_rf dir;
    dir

(* --- snapshot codec ---------------------------------------------------------- *)

let sample_snapshot =
  {
    Snapshot.token = String.init 16 (fun i -> Char.chr (i * 11 land 0xff));
    granted = 0x33;
    server_rounds = 412;
    last_reply = "\x8a\x01\x02\x03 encoded reply bytes";
    requests = 17;
    handler_seconds = 0.03125;
    server_len = 16;
    catalog = Some [| 4; 9; 16 |];
    admission = "admission-ledger-blob";
    app = "application-state-blob";
  }

let test_snapshot_roundtrip () =
  let blob = Snapshot.encode sample_snapshot in
  let got = Snapshot.decode blob in
  Alcotest.(check string) "token" sample_snapshot.Snapshot.token got.Snapshot.token;
  Alcotest.(check int) "granted" sample_snapshot.Snapshot.granted got.Snapshot.granted;
  Alcotest.(check int) "rounds" sample_snapshot.Snapshot.server_rounds
    got.Snapshot.server_rounds;
  Alcotest.(check string) "reply" sample_snapshot.Snapshot.last_reply
    got.Snapshot.last_reply;
  Alcotest.(check int) "requests" sample_snapshot.Snapshot.requests
    got.Snapshot.requests;
  Alcotest.(check (float 0.0)) "handler seconds"
    sample_snapshot.Snapshot.handler_seconds got.Snapshot.handler_seconds;
  Alcotest.(check int) "server len" sample_snapshot.Snapshot.server_len
    got.Snapshot.server_len;
  (match got.Snapshot.catalog with
   | Some a -> Alcotest.(check (array int)) "catalog" [| 4; 9; 16 |] a
   | None -> Alcotest.fail "catalog lost");
  Alcotest.(check string) "admission" sample_snapshot.Snapshot.admission
    got.Snapshot.admission;
  Alcotest.(check string) "app" sample_snapshot.Snapshot.app got.Snapshot.app;
  (* no-catalog variant *)
  let none = { sample_snapshot with Snapshot.catalog = None } in
  Alcotest.(check bool) "no catalog" true
    ((Snapshot.decode (Snapshot.encode none)).Snapshot.catalog = None)

let test_snapshot_rejects_garbage () =
  (match Snapshot.decode "" with
   | _ -> Alcotest.fail "empty blob accepted"
   | exception Wire.Malformed _ -> ());
  (* wrong version byte *)
  let blob = Snapshot.encode sample_snapshot in
  let mutated = Bytes.of_string blob in
  Bytes.set mutated 0 '\xEE';
  (match Snapshot.decode (Bytes.to_string mutated) with
   | _ -> Alcotest.fail "future version accepted"
   | exception Wire.Malformed _ -> ());
  (* truncation anywhere must surface as Malformed, never a crash *)
  for cut = 0 to String.length blob - 1 do
    match Snapshot.decode (String.sub blob 0 cut) with
    | _ -> ()
    | exception Wire.Malformed _ -> ()
  done

(* --- admission ledger export/import ------------------------------------------ *)

let test_admission_export_import () =
  let limits =
    {
      Admission.max_cells = Some 100;
      max_series_len = Some 64;
      max_dim = Some 4;
      max_session_bytes = Some 10_000;
      max_session_frames = Some 50;
    }
  in
  let adm = Admission.create limits in
  (match
     Admission.declare adm
       ~spec:{ Message.series_len = 6; dimension = 1 }
       ~server_len:16
   with
   | Admission.Admit -> ()
   | Admission.Reject _ -> Alcotest.fail "declare refused");
  (match Admission.charge_cells adm ~kind:`Min ~count:60 ~server_len:16 with
   | Admission.Admit -> ()
   | Admission.Reject _ -> Alcotest.fail "first charge refused");
  ignore (Admission.charge_frame adm ~bytes:4_000);
  (* the imported ledger must continue enforcement where the original
     stood: 60 of 100 cells are spent, so +50 must be refused *)
  let blob = Admission.export adm in
  (* a rejected charge still records the attempt, so each probe gets its
     own rehydrated ledger *)
  (match
     Admission.charge_cells (Admission.import limits blob) ~kind:`Min ~count:50
       ~server_len:16
   with
   | Admission.Reject _ -> ()
   | Admission.Admit -> Alcotest.fail "imported ledger forgot spent cells");
  (match
     Admission.charge_cells (Admission.import limits blob) ~kind:`Min ~count:36
       ~server_len:16
   with
   | Admission.Admit -> ()
   | Admission.Reject _ -> Alcotest.fail "imported ledger over-charges");
  (match Admission.import limits "garbage" with
   | _ -> Alcotest.fail "garbage ledger accepted"
   | exception Wire.Malformed _ -> ())

(* --- server application-state codec ------------------------------------------ *)

let test_server_state_roundtrip () =
  let sk_rng = seeded "state-codec/keygen" in
  let _pk, sk =
    Ppst_paillier.Paillier.keygen
      ~bits:Ppst.Params.default.Ppst.Params.key_bits sk_rng
  in
  let records =
    [|
      Series.of_list [ 1; 2; 3; 4 ];
      Series.of_list [ 5; 6; 7; 8 ];
      Series.of_list [ 9; 8; 7; 6 ];
    |]
  in
  let make () =
    Ppst.Server.create_db_with_key ~sk ~rng:(seeded "state-codec/session")
      ~records ~max_value:9 ()
  in
  let a = make () in
  let blob = Ppst.Server.export_state a in
  let b = make () in
  Ppst.Server.restore_state b blob;
  Alcotest.(check string) "restore is a fixed point" blob
    (Ppst.Server.export_state b);
  (* a selected index beyond the record count must be refused: the
     snapshot came from a different catalog *)
  let w = Wire.writer () in
  Wire.put_u32 w 7;
  Wire.put_u32 w 0;
  Wire.put_u32 w 0;
  Wire.put_u32 w 0;
  Wire.put_u32 w 0;
  (match Ppst.Server.restore_state (make ()) (Wire.contents w) with
   | _ -> Alcotest.fail "out-of-range selection accepted"
   | exception Wire.Malformed _ -> ())

(* --- worker report codec ------------------------------------------------------ *)

let test_worker_report_decode () =
  let stats = Stats.create () in
  Stats.record_sent stats ~bytes:100 ~values:7;
  Stats.record_received stats ~bytes:50 ~values:3;
  Stats.record_round stats;
  let w = Wire.writer () in
  Wire.put_u32 w 5;
  Wire.put_u32 w 2;
  Wire.put_u32 w 1;
  Wire.put_f64 w 0.75;
  Wire.put_bytes w (Stats.export stats);
  Wire.put_bytes w "extra-blob";
  let r = Server_loop.decode_report (Wire.contents w) in
  Alcotest.(check int) "accepted" 5 r.Server_loop.w_accepted;
  Alcotest.(check int) "rejected" 2 r.Server_loop.w_rejected;
  Alcotest.(check int) "shed" 1 r.Server_loop.w_shed;
  Alcotest.(check (float 0.0)) "handler seconds" 0.75
    r.Server_loop.w_handler_seconds;
  Alcotest.(check int) "stats bytes" 150 (Stats.total_bytes r.Server_loop.w_stats);
  Alcotest.(check int) "stats rounds" 1 (Stats.rounds r.Server_loop.w_stats);
  Alcotest.(check string) "extra" "extra-blob" r.Server_loop.w_extra;
  (match Server_loop.decode_report "nope" with
   | _ -> Alcotest.fail "garbage report accepted"
   | exception Wire.Malformed _ -> ())

(* --- spool -------------------------------------------------------------------- *)

let test_spool_basics () =
  let dir = fresh_dir "spool" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sp = Spool.create ~dir () in
      let key = String.init 16 (fun i -> Char.chr (0xF0 + i land 0x0f)) in
      Alcotest.(check (option string)) "miss" None (Spool.find sp ~key);
      Spool.put sp ~key "state v1";
      Spool.put sp ~key "state v2";
      Alcotest.(check int) "one entry" 1 (Spool.size sp);
      Alcotest.(check (option string)) "latest wins" (Some "state v2")
        (Spool.find sp ~key);
      (* take removes; a second take misses *)
      Alcotest.(check (option string)) "take" (Some "state v2")
        (Spool.take sp ~key);
      Alcotest.(check (option string)) "taken" None (Spool.take sp ~key);
      Alcotest.(check int) "empty" 0 (Spool.size sp))

let test_spool_ignores_torn_writes () =
  (* a crash mid-write leaves only a *.tmp — invisible to readers, and
     removed by the sweeper rather than ever being served *)
  let dir = fresh_dir "spool-torn" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sp = Spool.create ~dir () in
      let key = "0123456789abcdef" in
      Spool.put sp ~key "good state";
      let oc = open_out (Filename.concat dir "deadbeef.snap.tmp") in
      output_string oc "torn half-writ";
      close_out oc;
      Alcotest.(check int) "tmp not counted" 1 (Spool.size sp);
      Alcotest.(check (option string)) "good entry served" (Some "good state")
        (Spool.find sp ~key);
      (* backdate everything and sweep: the snap goes (counted), the
         orphaned tmp goes too (not counted) *)
      let old = Unix.gettimeofday () -. 3600.0 in
      Array.iter
        (fun e -> Unix.utimes (Filename.concat dir e) old old)
        (Sys.readdir dir);
      Alcotest.(check int) "sweep evicts the snap" 1 (Spool.sweep sp ~ttl_s:60.0);
      Alcotest.(check int) "spool empty" 0 (Spool.size sp);
      Alcotest.(check (array string)) "directory empty" [||] (Sys.readdir dir))

(* --- catalog store: atomic save_dir ------------------------------------------- *)

let test_store_save_dir_atomic () =
  let dir = fresh_dir "store" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Ppst_catalog.Store.create () in
      Ppst_catalog.Store.insert store ~id:"alpha" (Series.of_list [ 1; 2; 3 ]);
      Ppst_catalog.Store.insert store ~id:"beta" (Series.of_list [ 4; 5; 6 ]);
      Ppst_catalog.Store.save_dir store dir;
      (* crash-mid-write simulation: a torn temp file from a dead writer
         sits next to the committed records *)
      let oc = open_out (Filename.concat dir "gamma.csv.tmp") in
      output_string oc "7\n8";
      close_out oc;
      let reloaded = Ppst_catalog.Store.load_dir dir in
      Alcotest.(check int) "only committed records load" 2
        (Ppst_catalog.Store.length reloaded);
      Alcotest.(check bool) "alpha" true
        (Ppst_catalog.Store.mem reloaded ~id:"alpha");
      Alcotest.(check bool) "beta" true
        (Ppst_catalog.Store.mem reloaded ~id:"beta");
      (* a second save replaces via rename: never a partial .csv *)
      Ppst_catalog.Store.insert store ~id:"gamma" (Series.of_list [ 7; 8; 9 ]);
      Ppst_catalog.Store.save_dir store dir;
      let files = Sys.readdir dir in
      Array.sort compare files;
      Alcotest.(check bool) "no committed tmp residue" false
        (Array.exists
           (fun f -> Filename.check_suffix f ".csv.tmp" && f <> "gamma.csv.tmp")
           files);
      Alcotest.(check int) "all three load" 3
        (Ppst_catalog.Store.length (Ppst_catalog.Store.load_dir dir)))

(* --- fd passing ---------------------------------------------------------------- *)

let test_fd_passing_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b; r; w ])
    (fun () ->
      Fd_passing.send_fd a ~fd:w;
      match Fd_passing.recv_fd b with
      | None -> Alcotest.fail "EOF instead of fd"
      | Some w' ->
        (* the received descriptor is live: bytes written through it
           arrive at the original pipe's read end *)
        let n = Unix.write_substring w' "ping" 0 4 in
        Alcotest.(check int) "write through passed fd" 4 n;
        Unix.close w';
        let buf = Bytes.create 8 in
        let got = Unix.read r buf 0 8 in
        Alcotest.(check string) "payload" "ping" (Bytes.sub_string buf 0 got))

let test_fd_passing_eof () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "clean EOF" true (Fd_passing.recv_fd b = None))

(* --- resume sharding: the dispatcher's peek offsets ---------------------------- *)

let test_resume_frame_layout_pins_peek () =
  (* the supervisor shards by peeking the token at fixed frame offsets
     (payload byte 0 = 0x0c tag, bytes 5..20 = token); this test pins
     the codec to that layout so a wire change cannot silently break
     resume routing *)
  let token = String.init 16 (fun i -> Char.chr (0x41 + i)) in
  let payload =
    Message.encode
      (Message.Request (Message.Resume { token; client_rounds = 7; flags = 3 }))
  in
  Alcotest.(check int) "tag byte" 0x0c (Char.code payload.[0]);
  Alcotest.(check string) "token at bytes 5..20" token (String.sub payload 5 16)

let resume_frame token =
  let payload =
    Message.encode
      (Message.Request (Message.Resume { token; client_rounds = 7; flags = 3 }))
  in
  let len = String.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set_uint8 frame 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 frame 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 frame 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 frame 3 (len land 0xff);
  Bytes.blit_string payload 0 frame 4 len;
  frame

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let test_peek_silent_client_does_not_block () =
  (* a peer that connects and sends nothing (port scanner, LB health
     probe, hostile client) must round-robin within the 50 ms peek
     budget instead of parking the single-threaded dispatcher in a
     blocking recv *)
  with_socketpair (fun srv _cli ->
      let t0 = Unix.gettimeofday () in
      let routed = Supervisor.peek_token srv in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (option string)) "silent peer round-robins" None routed;
      Alcotest.(check bool)
        (Printf.sprintf "returned in %.3f s, within the peek budget" elapsed)
        true (elapsed < 2.0))

let test_peek_partial_first_segment () =
  (* the first segment may carry fewer bytes than reach the tag: the
     dispatcher must wait for the tag instead of inspecting the
     uninitialized peek buffer, so a Resume split across segments still
     routes by token hash *)
  let token = String.init 16 (fun i -> Char.chr (0x61 + i)) in
  let frame = resume_frame token in
  with_socketpair (fun srv cli ->
      Alcotest.(check int) "3 bytes sent" 3 (Unix.write cli frame 0 3);
      let writer =
        Thread.create
          (fun () ->
            Thread.delay 0.01;
            ignore (Unix.write cli frame 3 (Bytes.length frame - 3)))
          ()
      in
      let routed = Supervisor.peek_token srv in
      Thread.join writer;
      Alcotest.(check (option string)) "split Resume routes by token"
        (Some token) routed;
      (* the peek consumed nothing and left the fd blocking: the worker
         sees the whole frame untouched *)
      let got = Bytes.create (Bytes.length frame) in
      let n = Unix.read srv got 0 (Bytes.length got) in
      Alcotest.(check int) "frame intact for the worker" (Bytes.length frame) n;
      Alcotest.(check bytes) "bytes untouched" frame got)

(* --- resume table: sweeping stays bounded -------------------------------------- *)

let test_resume_table_mass_expiry () =
  let now = ref 0.0 in
  let t =
    Resume_table.create ~now:(fun () -> !now) ~capacity:10_000 ~ttl_s:60.0 ()
  in
  for i = 1 to 5_000 do
    Resume_table.put t (Printf.sprintf "token-%05d" i) i
  done;
  Alcotest.(check int) "all parked" 5_000 (Resume_table.size t);
  now := 61.0;
  Alcotest.(check int) "one sweep evicts all" 5_000 (Resume_table.sweep t);
  Alcotest.(check int) "empty" 0 (Resume_table.size t);
  Alcotest.(check int) "expiry accounted" 5_000 (Resume_table.expired_total t);
  Alcotest.(check (option int)) "expired token refused" None
    (Resume_table.take t "token-00001")

(* --- supervised failover: the chaos matrix ------------------------------------- *)

let series_y16 =
  Series.of_list [ 2; 4; 6; 5; 7; 3; 8; 1; 5; 9; 2; 6; 4; 7; 3; 8 ]

let series_x16 =
  Series.of_list [ 3; 4; 5; 4; 6; 7; 2; 6; 1; 8; 3; 5; 7; 2; 9; 4 ]

let max_value16 = 10

let sk16 =
  lazy
    (let rng = seeded "failover/keygen" in
     snd
       (Ppst_paillier.Paillier.keygen
          ~bits:Ppst.Params.default.Ppst.Params.key_bits rng))

(* Seeded 8-record catalog for the 1-vs-8 query chaos matrix: length-16
   dim-1 series with coordinates in [1, 10] from a fixed formula, so
   every process (and every run) builds the identical store. *)
let query_store8 =
  lazy
    (let store = Store.create () in
     for i = 0 to 7 do
       let series =
         Series.of_list
           (List.init 16 (fun j -> (((i * 7) + (j * 5) + 3) mod 10) + 1))
       in
       Store.insert store ~id:(string_of_int i) series
     done;
     store)

let fast_policy =
  { Retry.max_attempts = 12; base_delay_s = 0.002; max_delay_s = 0.05;
    multiplier = 2.0 }

let fast_restart_policy =
  { Retry.max_attempts = 8; base_delay_s = 0.002; max_delay_s = 0.02;
    multiplier = 2.0 }

(* Fork a supervisor process: parent owns nothing but the child pid and
   the pre-bound port.  Workers run the real Server_loop worker path
   with spool failover; a non-restarted worker carries the crash
   injector ([crash_at = 0] disables it), a restarted replacement runs
   fault-free — exactly the ppst_server wiring.  [?catalog] serves the
   8-record query store instead of the single pairwise series;
   [?disk_faults] arms the supervisor's fd-exhaustion injector
   (accept/socketpair EMFILE). *)
let start_supervised ?(catalog = false) ?disk_faults ~workers ~spool ~crash_at
    ~seed () =
  let listener, port = Supervisor.bind ~port:0 in
  (* force before forking: children inherit the memoized key and store *)
  let sk = Lazy.force sk16 in
  let store = if catalog then Some (Lazy.force query_store8) else None in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let stop = Atomic.make false in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Atomic.set stop true));
    let worker_main ~slot ~restarted ~control =
      let faults =
        if restarted || crash_at = 0 then None
        else Some (Faults.create (Faults.Crash_at crash_at))
      in
      let config =
        {
          Server_loop.default_config with
          spool_dir = Some spool;
          faults;
          drain_timeout_s = 5.0;
        }
      in
      let handler ~id ~peer:_ =
        let rng = seeded (Printf.sprintf "%s/session-%d" seed id) in
        let server =
          match store with
          | Some store ->
            Ppst.Server.of_store_with_key ~sk ~rng ~store
              ~max_value:max_value16 ()
          | None ->
            Ppst.Server.create_with_key ~sk ~rng ~series:series_y16
              ~max_value:max_value16 ()
        in
        {
          Server_loop.respond = Ppst.Server.handle server;
          snapshot = Some (fun () -> Ppst.Server.export_state server);
          restore = Some (fun blob -> Ppst.Server.restore_state server blob);
        }
      in
      let loop =
        Server_loop.create_worker ~config
          ~rng:(seeded (Printf.sprintf "%s/worker-%d" seed slot))
          ~boot_id:"bt01" ~handler ()
      in
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Server_loop.shutdown loop));
      Server_loop.run_worker loop ~control
    in
    let summary =
      Supervisor.run ~restart_policy:fast_restart_policy ~drain_timeout_s:5.0
        ?disk_faults ~stop ~listener ~workers ~worker_main ()
    in
    (* exit code carries the restart count (bounded) back to the test *)
    Unix._exit (Stdlib.min 100 summary.Supervisor.restarts)
  | pid ->
    Unix.close listener;
    (pid, port)

let stop_supervised pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED restarts -> restarts
  | _, _ -> Alcotest.fail "supervisor did not exit cleanly"

(* One secure 16x16 DTW session.  A crash that lands before the resume
   token exists is unrecoverable by design: restart the whole session
   with the same seed (same transcript).  [stats_out] receives the
   channel's accounting so the crash-free run can size the matrix. *)
let run_failover_client ~port ~seed ?stats_out () =
  let rec attempt tries =
    match
      let channel =
        Channel.connect ~retry:fast_policy
          ~rng:(seeded (seed ^ "/jitter"))
          ~host:"127.0.0.1" ~port ()
      in
      match
        let rng = seeded (seed ^ "/client") in
        let client =
          Ppst.Client.connect ~rng ~series:series_x16 ~max_value:max_value16
            ~distance:`Dtw channel
        in
        let d = Ppst.Secure_dtw.run client in
        Ppst.Client.finish client;
        (match stats_out with
         | Some r -> r := Stats.messages (Channel.stats channel)
         | None -> ());
        d
      with
      | d -> d
      | exception e ->
        (try Channel.close channel with _ -> ());
        raise e
    with
    | d -> d
    | exception
        (( Channel.Connection_lost _ | Channel.Frame_corrupt _
         | Channel.Busy _ | Retry.Exhausted _
         | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE), _, _)
         ) as e) ->
      if tries = 0 then raise e
      else begin
        Thread.delay 0.02;
        attempt (tries - 1)
      end
  in
  attempt 30

let plaintext_reference =
  lazy (Distance.dtw_sq series_x16 series_y16)

let test_failover_kill_every_frame () =
  (* crash-free supervised run: reference distance + the frame budget
     that bounds the matrix (each client message is one worker frame) *)
  let spool = fresh_dir "matrix" in
  let messages = ref 0 in
  let reference =
    let pid, port =
      start_supervised ~workers:1 ~spool ~crash_at:0 ~seed:"matrix-ref" ()
    in
    Fun.protect ~finally:(fun () -> ignore (stop_supervised pid))
      (fun () ->
        run_failover_client ~port ~seed:"matrix-ref" ~stats_out:messages ())
  in
  rm_rf spool;
  Alcotest.(check int) "crash-free distance = plaintext DTW"
    (Lazy.force plaintext_reference)
    (Bigint.to_int_exn reference);
  let frames = !messages in
  Alcotest.(check bool) "session exchanged frames" true (frames > 16);
  let restarted_runs = ref 0 in
  for k = 1 to frames do
    let spool = fresh_dir "matrix" in
    let pid, port =
      start_supervised ~workers:1 ~spool ~crash_at:k
        ~seed:(Printf.sprintf "matrix-%d" k) ()
    in
    let d =
      Fun.protect ~finally:(fun () ->
          let restarts = stop_supervised pid in
          if restarts > 0 then incr restarted_runs;
          rm_rf spool)
        (fun () ->
          run_failover_client ~port ~seed:(Printf.sprintf "matrix-%d" k) ())
    in
    Alcotest.check eq_bi
      (Printf.sprintf "distance identical with worker killed at frame %d" k)
      reference d
  done;
  (* every run kills its worker at some frame, so every run restarts *)
  Alcotest.(check int) "every matrix run saw a worker restart" frames
    !restarted_runs

let test_failover_cross_worker () =
  (* two workers sharing one spool: the session's worker is SIGKILLed
     mid-stream and the resume token hashes to whichever worker is
     alive — the snapshot travels between processes through the spool.
     Spot-checks a spread of frame indexes; the exhaustive per-frame
     matrix runs single-worker above. *)
  let reference = Lazy.force plaintext_reference in
  List.iter
    (fun k ->
      let spool = fresh_dir "cross" in
      let pid, port =
        start_supervised ~workers:2 ~spool ~crash_at:k
          ~seed:(Printf.sprintf "cross-%d" k) ()
      in
      let d =
        Fun.protect ~finally:(fun () ->
            ignore (stop_supervised pid);
            rm_rf spool)
          (fun () ->
            run_failover_client ~port ~seed:(Printf.sprintf "cross-%d" k) ())
      in
      Alcotest.(check int)
        (Printf.sprintf "cross-worker failover at frame %d" k)
        reference (Bigint.to_int_exn d))
    [ 5; 17; 40; 101 ]

(* --- supervised failover: the query chaos matrix ------------------------------- *)

let query_spec = Ppst.Protocol.spec `Euclidean

(* Comparable shape of a query report: (index, id, distance) triples in
   hit order.  Bigints go through their decimal rendering so the
   comparison is structural. *)
let hit_triples (r : Ppst.Query.report) =
  Array.to_list r.Ppst.Query.hits
  |> List.map (fun (h : Ppst.Query.hit) ->
         (h.Ppst.Query.index, h.Ppst.Query.id, Bigint.to_string h.Ppst.Query.distance))

(* One seeded 1-vs-8 top-3 query.  Like [run_failover_client], a crash
   the channel could not resume transparently restarts the whole query
   with the same seed — including the degraded-mode case where the
   failure surfaced as a typed partial result instead of an exception
   (a crash-matrix run must recover the complete answer, so a partial
   one retries like a failed one). *)
let run_query_client ~port ~seed ?stats_out () =
  let rec attempt tries =
    let retry e =
      if tries = 0 then raise e
      else begin
        Thread.delay 0.02;
        attempt (tries - 1)
      end
    in
    match
      let channel =
        Channel.connect ~retry:fast_policy
          ~rng:(seeded (seed ^ "/jitter"))
          ~host:"127.0.0.1" ~port ()
      in
      match
        let rng = seeded (seed ^ "/client") in
        let client =
          Ppst.Client.connect ~query:true ~rng ~series:series_x16
            ~max_value:max_value16 ~distance:`Euclidean channel
        in
        let report = Ppst.Query.top_k ~spec:query_spec ~k:3 client in
        Ppst.Client.finish client;
        (match stats_out with
         | Some r -> r := Stats.messages (Channel.stats channel)
         | None -> ());
        report
      with
      | report -> report
      | exception e ->
        (try Channel.close channel with _ -> ());
        raise e
    with
    | report when report.Ppst.Query.incomplete = [||] -> report
    | report ->
      retry
        (Failure
           (Printf.sprintf "query returned %d incomplete candidate(s)"
              (Array.length report.Ppst.Query.incomplete)))
    | exception
        (( Channel.Connection_lost _ | Channel.Frame_corrupt _
         | Channel.Busy _ | Channel.Resume_rejected _ | Retry.Exhausted _
         | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE), _, _)
         ) as e) ->
      retry e
  in
  attempt 30

let test_query_kill_every_frame () =
  (* crash-free supervised reference run: the top-3 answer plus the
     frame budget that bounds the matrix *)
  let spool = fresh_dir "query-matrix" in
  let messages = ref 0 in
  let reference =
    let pid, port =
      start_supervised ~catalog:true ~workers:2 ~spool ~crash_at:0
        ~seed:"qmatrix-ref" ()
    in
    Fun.protect ~finally:(fun () -> ignore (stop_supervised pid))
      (fun () ->
        run_query_client ~port ~seed:"qmatrix-ref" ~stats_out:messages ())
  in
  rm_rf spool;
  Alcotest.(check int) "reference finds k hits" 3
    (Array.length reference.Ppst.Query.hits);
  Alcotest.(check int) "reference complete" 0
    (Array.length reference.Ppst.Query.incomplete);
  let reference_hits = hit_triples reference in
  let frames = !messages in
  Alcotest.(check bool) "query exchanged frames" true (frames > 8);
  for k = 1 to frames do
    let spool = fresh_dir "query-matrix" in
    let pid, port =
      start_supervised ~catalog:true ~workers:2 ~spool ~crash_at:k
        ~seed:(Printf.sprintf "qmatrix-%d" k) ()
    in
    let report =
      Fun.protect ~finally:(fun () ->
          ignore (stop_supervised pid);
          rm_rf spool)
        (fun () ->
          run_query_client ~port ~seed:(Printf.sprintf "qmatrix-%d" k) ())
    in
    Alcotest.(check (list (triple int string string)))
      (Printf.sprintf "top-k identical with worker killed at frame %d" k)
      reference_hits (hit_triples report)
  done

(* --- supervisor fd exhaustion --------------------------------------------------- *)

let test_supervisor_fd_exhaustion () =
  (* The supervisor's fd-allocation injector: op 1 is worker 0's spawn
     socketpair (EMFILE there defers the spawn to the restart schedule),
     op 2 is the first accept (EMFILE there sheds the connection with a
     Busy frame through the reserve descriptor).  Either way the client
     must end with the exact distance and the supervisor must exit
     cleanly — fd exhaustion is degraded operation, never a crash. *)
  let reference = Lazy.force plaintext_reference in
  List.iter
    (fun at ->
      let spool = fresh_dir "emfile" in
      let pid, port =
        start_supervised
          ~disk_faults:(Faults.Disk.create (Faults.Disk.Emfile_at at))
          ~workers:1 ~spool ~crash_at:0
          ~seed:(Printf.sprintf "emfile-%d" at) ()
      in
      let d =
        Fun.protect ~finally:(fun () ->
            let restarts = stop_supervised pid in
            Alcotest.(check bool)
              (Printf.sprintf "supervisor survived EMFILE at fd op %d" at)
              true (restarts < 100);
            rm_rf spool)
          (fun () ->
            run_failover_client ~port
              ~seed:(Printf.sprintf "emfile-%d" at) ())
      in
      Alcotest.(check int)
        (Printf.sprintf "distance exact despite EMFILE at fd op %d" at)
        reference (Bigint.to_int_exn d))
    [ 1; 2 ]

(* --- accept-path sweeping ------------------------------------------------------ *)

(* The resume token rides the Welcome reply, so these in-process loops
   need a real protocol handler behind them (the loop only decorates the
   handler's Welcome). *)
let real_handler ~seed ~id ~peer:_ =
  let server =
    Ppst.Server.create_with_key ~sk:(Lazy.force sk16)
      ~rng:(seeded (Printf.sprintf "%s/session-%d" seed id))
      ~series:series_y16 ~max_value:max_value16 ()
  in
  Server_loop.respond_only (Ppst.Server.handle server)

let test_accept_path_sweeps_lazily () =
  (* thousands of abandoned sessions must not pin memory until someone
     calls sweep_resume by hand: the accept loop itself sweeps (at most
     once a second) as connections arrive *)
  let now = ref 10_000.0 in
  let config =
    { Server_loop.default_config with resume_ttl_s = 30.0; max_sessions = 64 }
  in
  let loop =
    Server_loop.create ~config
      ~clock:(fun () -> !now)
      ~port:0
      ~handler:(real_handler ~seed:"lazy-sweep")
      ()
  in
  let runner = Thread.create (fun () -> Server_loop.run loop) () in
  let port = Server_loop.port loop in
  Fun.protect
    ~finally:(fun () ->
      Server_loop.shutdown loop;
      Thread.join runner)
    (fun () ->
      let abandoned = 12 in
      for i = 1 to abandoned do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Channel.write_frame fd
          (Message.encode
             (Message.Request
                (Message.Hello { flags = Message.flag_resume; spec = None })));
        (match Channel.read_frame fd with
         | Some frame ->
           (match Message.decode frame with
            | Message.Reply (Message.Welcome { resume_token; _ }) ->
              if String.length resume_token = 0 then
                Alcotest.fail (Printf.sprintf "session %d got no token" i)
            | _ -> Alcotest.fail "no Welcome")
         | None -> Alcotest.fail "EOF before Welcome");
        (* abandon: close without Bye, so the session parks *)
        Unix.close fd
      done;
      (* wait for the server threads to notice the EOFs and park *)
      let rec wait_parked tries =
        if Server_loop.resume_parked loop < abandoned then
          if tries = 0 then
            Alcotest.fail
              (Printf.sprintf "only %d of %d sessions parked"
                 (Server_loop.resume_parked loop)
                 abandoned)
          else begin
            Thread.delay 0.02;
            wait_parked (tries - 1)
          end
      in
      wait_parked 100;
      (* fake time passes the TTL; the *next accepted connection* must
         trigger the lazy sweep — nobody calls sweep_resume *)
      now := !now +. 31.0;
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let rec wait_swept tries =
        if Server_loop.resume_parked loop > 0 then
          if tries = 0 then
            Alcotest.fail
              (Printf.sprintf "%d sessions still parked after accept tick"
                 (Server_loop.resume_parked loop))
          else begin
            Thread.delay 0.02;
            wait_swept (tries - 1)
          end
      in
      wait_swept 100;
      Unix.close fd;
      Alcotest.(check int) "expiries accounted" abandoned
        (Server_loop.resume_expired_total loop))

(* --- whole-server restart: typed fail-fast ------------------------------------- *)

let raw_request ~port msg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Channel.write_frame fd (Message.encode (Message.Request msg));
      match Channel.read_frame fd with
      | None -> Alcotest.fail "no reply to raw frame"
      | Some frame ->
        (match Message.decode frame with
         | Message.Reply r -> r
         | Message.Request _ -> Alcotest.fail "server sent a request"))

let test_server_restart_rejects_with_typed_reason () =
  let start boot_id =
    let loop =
      Server_loop.create ~boot_id ~port:0
        ~handler:(real_handler ~seed:("restart-" ^ boot_id))
        ()
    in
    let runner = Thread.create (fun () -> Server_loop.run loop) () in
    (loop, runner)
  in
  let stop (loop, runner) =
    Server_loop.shutdown loop;
    Thread.join runner
  in
  (* incarnation A issues a token... *)
  let a = start "AAAA" in
  let token =
    Fun.protect ~finally:(fun () -> stop a)
      (fun () ->
        match
          raw_request ~port:(Server_loop.port (fst a))
            (Message.Hello { flags = Message.flag_resume; spec = None })
        with
        | Message.Welcome { resume_token; _ } when resume_token <> "" ->
          resume_token
        | _ -> Alcotest.fail "no token from incarnation A")
  in
  Alcotest.(check string) "token carries the boot id" "AAAA"
    (String.sub token 0 4);
  (* ...incarnation B (restarted server, fresh boot id) must answer the
     stale token with the typed server-restarted reason, so the client
     fails fast instead of burning its retry budget *)
  let b = start "BBBB" in
  Fun.protect ~finally:(fun () -> stop b)
    (fun () ->
      let port = Server_loop.port (fst b) in
      (match
         raw_request ~port
           (Message.Resume { token; client_rounds = 3; flags = 3 })
       with
       | Message.Resume_reject { reason } ->
         Alcotest.(check bool) "typed server-restarted reason" true
           (Channel.is_server_restarted reason)
       | _ -> Alcotest.fail "stale-incarnation token accepted");
      (* an unknown token of the *current* incarnation stays a plain
         reject: retrying is allowed to find a parked session *)
      match
        raw_request ~port
          (Message.Resume
             { token = "BBBB" ^ String.make 12 'x'; client_rounds = 1; flags = 3 })
      with
      | Message.Resume_reject { reason } ->
        Alcotest.(check bool) "unknown token is not 'server restarted'" false
          (Channel.is_server_restarted reason)
      | _ -> Alcotest.fail "unknown token accepted")

let test_restart_reason_classifier () =
  Alcotest.(check bool) "prefix match" true
    (Channel.is_server_restarted
       (Channel.server_restarted_reason ^ ": boot id mismatch"));
  Alcotest.(check bool) "exact match" true
    (Channel.is_server_restarted Channel.server_restarted_reason);
  Alcotest.(check bool) "other reasons don't match" false
    (Channel.is_server_restarted "unknown or expired resume token");
  Alcotest.(check bool) "embedded elsewhere doesn't match" false
    (Channel.is_server_restarted ("x" ^ Channel.server_restarted_reason))

(* --- telemetry: per-line durability -------------------------------------------- *)

let test_jsonl_sink_flushes_per_line () =
  let dir = fresh_dir "telemetry" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Unix.mkdir dir 0o700;
      let path = Filename.concat dir "trace.jsonl" in
      let oc = open_out path in
      let sink = Ppst_telemetry.Telemetry.jsonl_sink oc in
      (* emit through the sink and read the file back WITHOUT closing or
         flushing the channel: a crashed process gets exactly this view *)
      List.iter
        (fun name ->
          sink.Ppst_telemetry.Telemetry.emit
            (Ppst_telemetry.Telemetry.Point
               {
                 name;
                 t = 1.5;
                 attrs = [ ("worker", Ppst_telemetry.Telemetry.Int 3) ];
               }))
        [ "failover.spool.write"; "failover.resume"; "failover.drain" ];
      let entries, tail = Ppst_telemetry.Trace_reader.read_file_partial path in
      Alcotest.(check int) "every line visible before close" 3
        (List.length entries);
      (match tail with
       | Ppst_telemetry.Trace_reader.Complete -> ()
       | Ppst_telemetry.Trace_reader.Truncated { reason; _ } ->
         Alcotest.fail ("unexpected truncation: " ^ reason));
      (* a torn final line (crash mid-write) is reported, not fatal *)
      output_string oc "{\"ts\":2.0,\"name\":\"torn";
      flush oc;
      let entries, tail = Ppst_telemetry.Trace_reader.read_file_partial path in
      Alcotest.(check int) "whole lines still parse" 3 (List.length entries);
      (match tail with
       | Ppst_telemetry.Trace_reader.Truncated _ -> ()
       | Ppst_telemetry.Trace_reader.Complete ->
         Alcotest.fail "torn tail not reported");
      close_out oc)

let () =
  Alcotest.run "failover"
    [
      ( "snapshot",
        [
          Alcotest.test_case "codec round trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_snapshot_rejects_garbage;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "admission export/import" `Quick
            test_admission_export_import;
          Alcotest.test_case "server state round trip" `Quick
            test_server_state_roundtrip;
          Alcotest.test_case "worker report decode" `Quick
            test_worker_report_decode;
          Alcotest.test_case "resume frame layout pins dispatcher peek" `Quick
            test_resume_frame_layout_pins_peek;
          Alcotest.test_case "silent peer cannot block the dispatcher" `Quick
            test_peek_silent_client_does_not_block;
          Alcotest.test_case "partial first segment still routes Resume" `Quick
            test_peek_partial_first_segment;
        ] );
      ( "spool",
        [
          Alcotest.test_case "put/find/take" `Quick test_spool_basics;
          Alcotest.test_case "torn writes invisible" `Quick
            test_spool_ignores_torn_writes;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "save_dir atomic + crash reload" `Quick
            test_store_save_dir_atomic;
        ] );
      ( "fd-passing",
        [
          Alcotest.test_case "descriptor round trip" `Quick
            test_fd_passing_roundtrip;
          Alcotest.test_case "EOF" `Quick test_fd_passing_eof;
        ] );
      ( "failover",
        [
          Alcotest.test_case "worker killed at every frame index" `Slow
            test_failover_kill_every_frame;
          Alcotest.test_case "cross-worker spool failover" `Slow
            test_failover_cross_worker;
          Alcotest.test_case "query: worker killed at every frame index" `Slow
            test_query_kill_every_frame;
          Alcotest.test_case "supervisor fd exhaustion degrades, not crashes"
            `Slow test_supervisor_fd_exhaustion;
        ] );
      ( "resume",
        [
          Alcotest.test_case "mass expiry stays bounded" `Quick
            test_resume_table_mass_expiry;
          Alcotest.test_case "accept path sweeps lazily" `Quick
            test_accept_path_sweeps_lazily;
          Alcotest.test_case "restart reject is typed" `Quick
            test_server_restart_rejects_with_typed_reason;
          Alcotest.test_case "restart reason classifier" `Quick
            test_restart_reason_classifier;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "jsonl sink flushes per line" `Quick
            test_jsonl_sink_flushes_per_line;
        ] );
    ]
