(* Tests for the protocol extensions beyond the paper's two headline
   distances: secure ERP, Sakoe–Chiba banded DTW, lockstep Euclidean,
   sliding-window subsequence matching, and catalog-based similarity
   search over multi-record servers. *)

open Ppst.Import
module Generate = Ppst_timeseries.Generate

let eq_bi = Alcotest.testable Bigint.pp Bigint.equal

let qtest name ?(count = 15) gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let print_series s = Format.asprintf "%a" Series.pp s

let paper_x = Series.of_list [ 3; 4; 5; 4; 6; 7 ]
let paper_y = Series.of_list [ 2; 4; 6; 5; 7 ]

let gen_series_pair =
  let open QCheck2.Gen in
  let* d = int_range 1 2 in
  let mk =
    let* len = int_range 1 6 in
    let* data = list_size (return len) (list_size (return d) (int_range 0 30)) in
    return (Series.create (Array.of_list (List.map Array.of_list data)))
  in
  pair mk mk

(* --- secure ERP ------------------------------------------------------------ *)

let test_erp_paper_series () =
  List.iter
    (fun g ->
      let gap = [| g |] in
      let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap `Erp) ~seed:(Printf.sprintf "erp-%d" g)
          ~x:paper_x ~y:paper_y () in
      Alcotest.(check int)
        (Printf.sprintf "gap %d" g)
        (Distance.erp_sq ~gap paper_x paper_y)
        (Ppst.Protocol.distance_int r))
    [ 0; 3; 7 ]

let test_erp_identical_zero () =
  let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap:[| 0 |] `Erp) ~seed:"erp-id" ~x:paper_x ~y:paper_x () in
  Alcotest.(check int) "zero" 0 (Ppst.Protocol.distance_int r)

let test_erp_multidim () =
  let x = Series.create [| [| 1; 2 |]; [| 3; 4 |]; [| 5; 6 |] |] in
  let y = Series.create [| [| 2; 2 |]; [| 4; 4 |] |] in
  let gap = [| 1; 1 |] in
  let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap `Erp) ~seed:"erp-2d" ~x ~y () in
  Alcotest.(check int) "2-d erp" (Distance.erp_sq ~gap x y)
    (Ppst.Protocol.distance_int r)

let prop_erp_equals_plaintext =
  let gen = QCheck2.Gen.pair gen_series_pair QCheck2.Gen.(int_range 0 10) in
  qtest "secure ERP = plaintext ERP" gen
    ~print:(fun ((a, b), g) ->
      Printf.sprintf "%s / %s gap=%d" (print_series a) (print_series b) g)
    (fun ((x, y), g) ->
      let gap = Array.make (Series.dimension x) g in
      if Series.dimension x <> Series.dimension y then true
      else begin
        let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap `Erp) ~seed:"erp-prop" ~x ~y () in
        Ppst.Protocol.distance_int r = Distance.erp_sq ~gap x y
      end)

let test_erp_gap_validation () =
  (* wrong dimension *)
  (match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap:[| 0; 0 |] `Erp) ~seed:"erp-bad" ~x:paper_x ~y:paper_y () with
   | _ -> Alcotest.fail "bad gap dimension accepted"
   | exception (Invalid_argument _ | Channel.Protocol_error _) -> ());
  (* gap outside negotiated bound *)
  (match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap:[| 5000 |] `Erp) ~seed:"erp-big" ~x:paper_x ~y:paper_y () with
   | _ -> Alcotest.fail "oversized gap accepted"
   | exception (Invalid_argument _ | Channel.Protocol_error _) -> ())

let test_erp_bound_larger_than_dtw () =
  let modulus = Bigint.of_string "13497220662202513373" in
  let plan d =
    (Ppst.Params.plan Ppst.Params.default ~max_value:100 ~dimension:1
       ~client_length:10 ~server_length:10 ~modulus ~distance:d)
      .Ppst.Params.value_bound
  in
  Alcotest.(check bool) "erp bound > dtw bound" true
    (Bigint.compare (plan `Erp) (plan `Dtw) > 0)

let test_erp_triangle_inequality () =
  (* the reason ERP exists: it is a metric.  Spot-check the triangle
     inequality on the sqrt scale for several secure evaluations. *)
  let a = Series.of_list [ 1; 5; 9 ] in
  let b = Series.of_list [ 2; 6; 8; 4 ] in
  let c = Series.of_list [ 3; 3 ] in
  let gap = [| 0 |] in
  let d s1 s2 seed =
    sqrt (float_of_int (Ppst.Protocol.distance_int
                          (Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap `Erp) ~seed ~x:s1 ~y:s2 ())))
  in
  let dab = d a b "t1" and dbc = d b c "t2" and dac = d a c "t3" in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f <= %.2f + %.2f" dac dab dbc)
    true
    (dac <= dab +. dbc +. 1e-9)

(* --- banded DTW ------------------------------------------------------------- *)

let test_banded_matches_plaintext () =
  List.iter
    (fun band ->
      let r =
        Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dtw) ~seed:(Printf.sprintf "band-%d" band)
          ~x:paper_x ~y:paper_y ()
      in
      match Distance.dtw_sq_banded ~band paper_x paper_y with
      | Some plain ->
        Alcotest.(check int) (Printf.sprintf "band %d" band) plain
          (Ppst.Protocol.distance_int r)
      | None -> Alcotest.fail "plaintext says infeasible")
    [ 1; 2; 3; 10 ]

let test_banded_wide_equals_full () =
  let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band:100 `Dtw) ~seed:"band-wide" ~x:paper_x ~y:paper_y () in
  Alcotest.(check int) "wide band = dtw" (Distance.dtw_sq paper_x paper_y)
    (Ppst.Protocol.distance_int r)

let test_banded_infeasible () =
  let x = Series.of_list [ 1; 2; 3; 4; 5 ] and y = Series.of_list [ 1 ] in
  (match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band:2 `Dtw) ~seed:"band-bad" ~x ~y () with
   | _ -> Alcotest.fail "narrow band accepted"
   | exception Ppst.Secure_dtw_banded.Band_too_narrow -> ());
  (match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band:(-1) `Dtw) ~seed:"band-neg" ~x:paper_x ~y:paper_y () with
   | _ -> Alcotest.fail "negative band accepted"
   | exception Invalid_argument _ -> ())

let prop_banded_equals_plaintext =
  let gen = QCheck2.Gen.pair gen_series_pair QCheck2.Gen.(int_range 0 5) in
  qtest "secure banded DTW = plaintext" gen
    ~print:(fun ((a, b), band) ->
      Printf.sprintf "%s / %s band=%d" (print_series a) (print_series b) band)
    (fun ((x, y), band) ->
      if Series.dimension x <> Series.dimension y then true
      else begin
        match Distance.dtw_sq_banded ~band x y with
        | None -> begin
          match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dtw) ~seed:"bp" ~x ~y () with
          | _ -> false
          | exception Ppst.Secure_dtw_banded.Band_too_narrow -> true
        end
        | Some plain ->
          let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dtw) ~seed:"bp" ~x ~y () in
          Ppst.Protocol.distance_int r = plain
      end)

let test_banded_saves_communication () =
  let x = Generate.ecg_int ~seed:301 ~length:20 ~max_value:50 in
  let y = Generate.ecg_int ~seed:302 ~length:20 ~max_value:50 in
  let full = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"comm-full" ~x ~y () in
  let banded = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band:2 `Dtw) ~seed:"comm-band" ~x ~y () in
  Alcotest.(check int) "same distance (band covers optimum here)"
    (Ppst.Protocol.distance_int full)
    (Ppst.Protocol.distance_int banded);
  let fv = Stats.total_values full.Ppst.Protocol.stats in
  let bv = Stats.total_values banded.Ppst.Protocol.stats in
  Alcotest.(check bool)
    (Printf.sprintf "banded values %d < half of full %d" bv fv)
    true
    (bv * 2 < fv)

let test_banded_dfd_matches_plaintext () =
  List.iter
    (fun band ->
      match Distance.dfd_sq_banded ~band paper_x paper_y with
      | Some plain ->
        let r =
          Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dfd) ~seed:(Printf.sprintf "dband-%d" band) ~x:paper_x ~y:paper_y ()
        in
        Alcotest.(check int) (Printf.sprintf "band %d" band) plain
          (Ppst.Protocol.distance_int r)
      | None -> Alcotest.fail "plaintext says infeasible")
    [ 1; 2; 10 ]

let prop_banded_dfd_equals_plaintext =
  let gen = QCheck2.Gen.pair gen_series_pair QCheck2.Gen.(int_range 0 5) in
  qtest "secure banded DFD = plaintext" ~count:10 gen
    ~print:(fun ((a, b), band) ->
      Printf.sprintf "%s / %s band=%d" (print_series a) (print_series b) band)
    (fun ((x, y), band) ->
      if Series.dimension x <> Series.dimension y then true
      else begin
        match Distance.dfd_sq_banded ~band x y with
        | None -> begin
          match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dfd) ~seed:"dbp" ~x ~y () with
          | _ -> false
          | exception Ppst.Secure_dtw_banded.Band_too_narrow -> true
        end
        | Some plain ->
          Ppst.Protocol.distance_int
            (Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dfd) ~seed:"dbp" ~x ~y ())
          = plain
      end)

let prop_banded_dfd_plaintext_wide_equals_full =
  qtest "plaintext banded DFD with wide band = DFD" ~count:50 gen_series_pair
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (x, y) ->
      Series.dimension x <> Series.dimension y
      || Distance.dfd_sq_banded ~band:50 x y = Some (Distance.dfd_sq x y))

(* --- wavefront batching -------------------------------------------------------- *)

let test_wavefront_dtw_equals_sequential () =
  let x = Generate.ecg_int ~seed:401 ~length:12 ~max_value:50 in
  let y = Generate.ecg_int ~seed:402 ~length:9 ~max_value:50 in
  let seq = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"wf-a" ~x ~y () in
  let wf = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~seed:"wf-b" ~x ~y () in
  Alcotest.check eq_bi "same distance" seq.Ppst.Protocol.distance
    wf.Ppst.Protocol.distance;
  Alcotest.(check int) "= plaintext" (Distance.dtw_sq x y)
    (Ppst.Protocol.distance_int wf)

let test_wavefront_round_count () =
  let m = 12 and n = 9 in
  let x = Generate.ecg_int ~seed:403 ~length:m ~max_value:50 in
  let y = Generate.ecg_int ~seed:404 ~length:n ~max_value:50 in
  let seq = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"wf-c" ~x ~y () in
  let wf = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~seed:"wf-d" ~x ~y () in
  (* sequential: hello + phase1 + (m-1)(n-1) + reveal + bye *)
  Alcotest.(check int) "sequential rounds" (3 + ((m - 1) * (n - 1)) + 1)
    (Stats.rounds seq.Ppst.Protocol.stats);
  (* wavefront: hello + phase1 + (m+n-3 diagonals) + reveal + bye *)
  Alcotest.(check int) "wavefront rounds" (3 + (m + n - 3) + 1)
    (Stats.rounds wf.Ppst.Protocol.stats);
  (* identical traffic volume: batching changes framing, not content *)
  Alcotest.(check int) "same value count"
    (Stats.total_values seq.Ppst.Protocol.stats)
    (Stats.total_values wf.Ppst.Protocol.stats)

let test_wavefront_dfd_equals_sequential () =
  let x = Generate.ecg_int ~seed:405 ~length:8 ~max_value:50 in
  let y = Generate.ecg_int ~seed:406 ~length:10 ~max_value:50 in
  let wf = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dfd) ~seed:"wf-e" ~x ~y () in
  Alcotest.(check int) "= plaintext" (Distance.dfd_sq x y)
    (Ppst.Protocol.distance_int wf)

let prop_wavefront_equals_plaintext =
  qtest "wavefront DTW = plaintext" gen_series_pair
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (x, y) ->
      if Series.dimension x <> Series.dimension y then true
      else
        Ppst.Protocol.distance_int
          (Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~seed:"wf-prop" ~x ~y ())
        = Distance.dtw_sq x y)

let test_batch_message_errors () =
  let server =
    Ppst.Server.create
      ~rng:(Secure_rng.of_seed_string "batch-errors")
      ~series:(Series.of_list [ 1; 2 ])
      ~max_value:10 ()
  in
  (match Ppst.Server.handle server (Message.Batch_min_request [||]) with
   | Message.Error_reply _ -> ()
   | _ -> Alcotest.fail "empty batch accepted");
  (match
     Ppst.Server.handle server (Message.Batch_min_request [| [| Bigint.one |] |])
   with
   | Message.Error_reply _ -> ()
   | _ -> Alcotest.fail "singleton candidate set accepted")

(* --- euclidean & subsequence -------------------------------------------------- *)

let test_euclidean_matches_plaintext () =
  let y6 = Series.of_list [ 2; 4; 6; 5; 7; 9 ] in
  let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Euclidean) ~seed:"euc" ~x:paper_x ~y:y6 () in
  Alcotest.(check int) "euclid" (Distance.euclidean_sq paper_x y6)
    (Ppst.Protocol.distance_int r)

let test_euclidean_no_masking_rounds () =
  let y6 = Series.of_list [ 2; 4; 6; 5; 7; 9 ] in
  let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Euclidean) ~seed:"euc2" ~x:paper_x ~y:y6 () in
  (* hello + phase1 + reveal + bye = 4 rounds, no Min/Max requests *)
  Alcotest.(check int) "4 rounds only" 4 (Stats.rounds r.Ppst.Protocol.stats);
  let server = Ppst.Cost.server_ops r.Ppst.Protocol.cost in
  Alcotest.(check int) "one decryption (the reveal)" 1 server.Ppst.Cost.decryptions

let test_euclidean_length_mismatch () =
  match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Euclidean) ~seed:"euc3" ~x:paper_x ~y:(Series.of_list [ 1 ]) () with
  | _ -> Alcotest.fail "length mismatch accepted"
  | exception (Invalid_argument _ | Channel.Protocol_error _) -> ()

let test_subsequence_windows () =
  let long = Series.of_list [ 9; 9; 2; 4; 6; 5; 7; 9; 9 ] in
  let r = Ppst.Protocol.subsequence ~seed:"sub" ~x:long ~y:paper_y () in
  Alcotest.(check int) "window count" 5 (Array.length r.Ppst.Protocol.window_distances);
  Array.iteri
    (fun o d ->
      let window = Series.sub long ~pos:o ~len:(Series.length paper_y) in
      Alcotest.(check int)
        (Printf.sprintf "window %d" o)
        (Distance.euclidean_sq window paper_y)
        (Bigint.to_int_exn d))
    r.Ppst.Protocol.window_distances

let test_subsequence_query_longer_than_series () =
  match Ppst.Protocol.subsequence ~seed:"sub2" ~x:(Series.of_list [ 1 ]) ~y:paper_y () with
  | _ -> Alcotest.fail "short client series accepted"
  | exception (Invalid_argument _ | Channel.Protocol_error _) -> ()

let prop_subsequence_equals_plaintext =
  let gen =
    let open QCheck2.Gen in
    let* m = int_range 3 10 in
    let* n = int_range 1 3 in
    let* xs = list_size (return m) (int_range 0 30) in
    let* ys = list_size (return n) (int_range 0 30) in
    return (Series.of_list xs, Series.of_list ys)
  in
  qtest "subsequence windows = plaintext" gen
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (x, y) ->
      let r = Ppst.Protocol.subsequence ~seed:"sub-prop" ~x ~y () in
      let n = Series.length y in
      Array.to_list r.Ppst.Protocol.window_distances
      |> List.mapi (fun o d ->
             Bigint.to_int_exn d
             = Distance.euclidean_sq (Series.sub x ~pos:o ~len:n) y)
      |> List.for_all Fun.id)

(* --- catalog search ----------------------------------------------------------- *)

let with_db_client ~records ~query ~distance f =
  let server =
    Ppst.Server.create_db
      ~rng:(Secure_rng.of_seed_string "db-server")
      ~records ~max_value:50 ()
  in
  let channel = Channel.local (Ppst.Server.handle server) in
  let client =
    Ppst.Client.connect
      ~rng:(Secure_rng.of_seed_string "db-client")
      ~series:query ~max_value:50 ~distance channel
  in
  Fun.protect ~finally:(fun () -> Ppst.Client.finish client) (fun () -> f client)

let db_records =
  [|
    Series.of_list [ 40; 40; 40 ];
    Series.of_list [ 3; 4; 6; 5; 7 ];
    Series.of_list [ 10; 20 ];
    Series.of_list [ 2; 4; 6; 5; 7; 8 ];
  |]

let query = Series.of_list [ 2; 4; 6; 5; 7 ]

let test_catalog_lengths () =
  with_db_client ~records:db_records ~query ~distance:`Dtw (fun client ->
      Alcotest.(check (array int)) "lengths" [| 3; 5; 2; 6 |] (Ppst.Client.catalog client))

let test_scan_matches_plaintext () =
  with_db_client ~records:db_records ~query ~distance:`Dtw (fun client ->
      let results = Ppst.Search.scan ~metric:`Dtw client in
      Alcotest.(check int) "all records" 4 (List.length results);
      List.iter
        (fun r ->
          Alcotest.check eq_bi
            (Printf.sprintf "record %d" r.Ppst.Search.index)
            (Bigint.of_int (Distance.dtw_sq query db_records.(r.Ppst.Search.index)))
            r.Ppst.Search.distance)
        results)

let test_nearest_and_within () =
  with_db_client ~records:db_records ~query ~distance:`Dtw (fun client ->
      let best = Ppst.Search.nearest ~metric:`Dtw client in
      let plain_best, plain_dist =
        Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dtw_sq ~query db_records
      in
      Alcotest.(check int) "winner" plain_best best.Ppst.Search.index;
      Alcotest.check eq_bi "distance" (Bigint.of_int plain_dist) best.Ppst.Search.distance;
      let close = Ppst.Search.within ~metric:`Dtw ~radius:10 client in
      List.iter
        (fun r ->
          Alcotest.(check bool) "within radius" true
            (Bigint.compare r.Ppst.Search.distance (Bigint.of_int 10) <= 0))
        close;
      (* ascending order *)
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          Bigint.compare a.Ppst.Search.distance b.Ppst.Search.distance <= 0
          && ordered rest
        | _ -> true
      in
      Alcotest.(check bool) "sorted" true (ordered close))

let test_scan_limit () =
  with_db_client ~records:db_records ~query ~distance:`Dtw (fun client ->
      Alcotest.(check int) "limit 2" 2
        (List.length (Ppst.Search.scan ~limit:2 ~metric:`Dtw client)))

let test_search_dfd_metric () =
  with_db_client ~records:db_records ~query ~distance:`Dfd (fun client ->
      let best = Ppst.Search.nearest ~metric:`Dfd client in
      let plain_best, _ =
        Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dfd_sq ~query db_records
      in
      Alcotest.(check int) "dfd winner" plain_best best.Ppst.Search.index)

let test_select_out_of_range () =
  with_db_client ~records:db_records ~query ~distance:`Dtw (fun client ->
      match Ppst.Client.select_record client 99 with
      | _ -> Alcotest.fail "bad index accepted"
      | exception Invalid_argument _ -> ())

let test_select_replans_session () =
  with_db_client ~records:db_records ~query ~distance:`Dtw (fun client ->
      Ppst.Client.select_record client 2 (* length 2 *);
      let bound_short = (Ppst.Client.session client).Ppst.Params.value_bound in
      Alcotest.(check int) "server length updated" 2 (Ppst.Client.server_length client);
      Ppst.Client.select_record client 3 (* length 6 *);
      let bound_long = (Ppst.Client.session client).Ppst.Params.value_bound in
      Alcotest.(check bool) "longer record, larger bound" true
        (Bigint.compare bound_long bound_short > 0))

let test_server_select_error_reply () =
  let server =
    Ppst.Server.create_db
      ~rng:(Secure_rng.of_seed_string "raw-server")
      ~records:db_records ~max_value:50 ()
  in
  (match Ppst.Server.handle server (Message.Select_request 42) with
   | Message.Error_reply _ -> ()
   | _ -> Alcotest.fail "out-of-range select accepted");
  (match Ppst.Server.handle server Message.Catalog_request with
   | Message.Catalog_reply lengths ->
     Alcotest.(check int) "catalog size" 4 (Array.length lengths)
   | _ -> Alcotest.fail "no catalog")

let test_search_metric_mismatch_rejected () =
  (* a `Dfd-planned session has a smaller masking bound than DTW needs *)
  with_db_client ~records:db_records ~query ~distance:`Dfd (fun client ->
      match Ppst.Search.scan ~metric:`Dtw client with
      | _ -> Alcotest.fail "metric mismatch accepted"
      | exception Invalid_argument _ -> ())

let test_drivers_reject_wrong_plan () =
  (* every driver must refuse a session planned for another distance *)
  let x = Series.of_list [ 1; 2; 3 ] and y = Series.of_list [ 2; 3 ] in
  let with_client distance f =
    let server =
      Ppst.Server.create
        ~rng:(Secure_rng.of_seed_string "plan-guard-server")
        ~series:y ~max_value:10 ()
    in
    let channel = Channel.local (Ppst.Server.handle server) in
    let client =
      Ppst.Client.connect
        ~rng:(Secure_rng.of_seed_string "plan-guard-client")
        ~series:x ~max_value:10 ~distance channel
    in
    Fun.protect ~finally:(fun () -> Ppst.Client.finish client) (fun () -> f client)
  in
  let expect_reject name f =
    match f () with
    | _ -> Alcotest.fail (name ^ " accepted a mismatched plan")
    | exception Invalid_argument _ -> ()
  in
  with_client `Euclidean (fun client ->
      expect_reject "Secure_dtw" (fun () -> Ppst.Secure_dtw.run client);
      expect_reject "Secure_dfd" (fun () -> Ppst.Secure_dfd.run client);
      expect_reject "Secure_erp" (fun () -> Ppst.Secure_erp.run ~gap:[| 0 |] client);
      expect_reject "Secure_dtw_banded" (fun () ->
          Ppst.Secure_dtw_banded.run ~band:3 client);
      expect_reject "wavefront" (fun () -> Ppst.Secure_dtw_wavefront.run_dtw client));
  with_client `Dtw (fun client ->
      expect_reject "Secure_euclidean" (fun () -> Ppst.Secure_euclidean.run client))

let test_db_validation () =
  let rng = Secure_rng.of_seed_string "db-bad" in
  (match Ppst.Server.create_db ~rng ~records:[||] ~max_value:10 () with
   | _ -> Alcotest.fail "empty db accepted"
   | exception Invalid_argument _ -> ());
  let mixed = [| Series.of_list [ 1 ]; Series.create [| [| 1; 2 |] |] |] in
  (match Ppst.Server.create_db ~rng ~records:mixed ~max_value:10 () with
   | _ -> Alcotest.fail "mixed dimensions accepted"
   | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "extensions"
    [
      ( "secure ERP",
        [
          Alcotest.test_case "paper series, several gaps" `Quick test_erp_paper_series;
          Alcotest.test_case "identical series" `Quick test_erp_identical_zero;
          Alcotest.test_case "multi-dimensional" `Quick test_erp_multidim;
          Alcotest.test_case "gap validation" `Quick test_erp_gap_validation;
          Alcotest.test_case "ERP bound exceeds DTW bound" `Quick
            test_erp_bound_larger_than_dtw;
          Alcotest.test_case "triangle inequality spot-check" `Quick
            test_erp_triangle_inequality;
          prop_erp_equals_plaintext;
        ] );
      ( "banded DTW",
        [
          Alcotest.test_case "matches plaintext" `Quick test_banded_matches_plaintext;
          Alcotest.test_case "wide band = full DTW" `Quick test_banded_wide_equals_full;
          Alcotest.test_case "infeasible bands" `Quick test_banded_infeasible;
          Alcotest.test_case "saves communication" `Quick test_banded_saves_communication;
          prop_banded_equals_plaintext;
          Alcotest.test_case "banded DFD matches plaintext" `Quick
            test_banded_dfd_matches_plaintext;
          prop_banded_dfd_equals_plaintext;
          prop_banded_dfd_plaintext_wide_equals_full;
        ] );
      ( "wavefront batching",
        [
          Alcotest.test_case "DTW equals sequential" `Quick
            test_wavefront_dtw_equals_sequential;
          Alcotest.test_case "round counts" `Quick test_wavefront_round_count;
          Alcotest.test_case "DFD equals sequential" `Quick
            test_wavefront_dfd_equals_sequential;
          Alcotest.test_case "malformed batches rejected" `Quick
            test_batch_message_errors;
          prop_wavefront_equals_plaintext;
        ] );
      ( "euclidean & subsequence",
        [
          Alcotest.test_case "euclidean matches plaintext" `Quick
            test_euclidean_matches_plaintext;
          Alcotest.test_case "no masking rounds" `Quick test_euclidean_no_masking_rounds;
          Alcotest.test_case "length mismatch" `Quick test_euclidean_length_mismatch;
          Alcotest.test_case "windows match plaintext" `Quick test_subsequence_windows;
          Alcotest.test_case "query longer than series" `Quick
            test_subsequence_query_longer_than_series;
          prop_subsequence_equals_plaintext;
        ] );
      ( "catalog search",
        [
          Alcotest.test_case "catalog lengths" `Quick test_catalog_lengths;
          Alcotest.test_case "scan = plaintext distances" `Quick test_scan_matches_plaintext;
          Alcotest.test_case "nearest & within" `Quick test_nearest_and_within;
          Alcotest.test_case "scan limit" `Quick test_scan_limit;
          Alcotest.test_case "DFD metric" `Quick test_search_dfd_metric;
          Alcotest.test_case "select out of range" `Quick test_select_out_of_range;
          Alcotest.test_case "select re-plans session" `Quick test_select_replans_session;
          Alcotest.test_case "server-side select errors" `Quick
            test_server_select_error_reply;
          Alcotest.test_case "metric/plan mismatch rejected" `Quick
            test_search_metric_mismatch_rejected;
          Alcotest.test_case "drivers reject wrong plans" `Quick
            test_drivers_reject_wrong_plan;
          Alcotest.test_case "database validation" `Quick test_db_validation;
        ] );
    ]
