(* Tests for the secure protocols themselves: parameter planning, masked
   min/max rounds, full secure DTW/DFD against the plaintext reference,
   path hiding, cost accounting, the communication closed form, and
   misuse/failure injection. *)

open Ppst.Import

let eq_bi = Alcotest.testable Bigint.pp Bigint.equal

let qtest name ?(count = 25) gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let print_series s = Format.asprintf "%a" Series.pp s

(* --- params -------------------------------------------------------------- *)

let modulus_64 = Bigint.of_string "13497220662202513373" (* a real 64-bit n *)

let plan ?(params = Ppst.Params.default) ?(max_value = 100) ?(dimension = 1)
    ?(m = 10) ?(n = 10) ?(distance = `Dtw) () =
  Ppst.Params.plan params ~max_value ~dimension ~client_length:m ~server_length:n
    ~modulus:modulus_64 ~distance

let test_params_defaults () =
  let p = Ppst.Params.default in
  Alcotest.(check int) "key bits" 64 p.Ppst.Params.key_bits;
  Alcotest.(check int) "k" 10 p.Ppst.Params.k;
  Alcotest.(check int) "alpha of 10" 3 (Ppst.Params.alpha p)

let test_params_plan_basic () =
  let s = plan () in
  (* 19 elements max path, cost <= 100^2, bound = 19*10^4 + 1 *)
  Alcotest.check eq_bi "value bound" (Bigint.of_int 190_001) s.Ppst.Params.value_bound;
  Alcotest.(check int) "gamma = beta + slack" (s.Ppst.Params.beta + 2) s.Ppst.Params.gamma;
  Alcotest.(check bool) "offsets positive" true
    (Bigint.compare s.Ppst.Params.offset_lo Bigint.zero > 0)

let test_params_dfd_bound_smaller () =
  let dtw = plan ~distance:`Dtw () and dfd = plan ~distance:`Dfd () in
  Alcotest.(check bool) "dfd bound < dtw bound" true
    (Bigint.compare dfd.Ppst.Params.value_bound dtw.Ppst.Params.value_bound < 0);
  Alcotest.check eq_bi "dfd bound = max cost + 1" (Bigint.of_int 10_001)
    dfd.Ppst.Params.value_bound

let test_params_k_too_small () =
  (match plan ~params:(Ppst.Params.make ~k:3 ()) () with
   | _ -> Alcotest.fail "k=3 accepted"
   | exception Ppst.Params.Insecure _ -> ())

let test_params_slack_constraint () =
  (* slack must satisfy 0 < slack < alpha; k=10 -> alpha=3 -> slack in {1,2} *)
  (match plan ~params:(Ppst.Params.make ~gamma_slack:3 ()) () with
   | _ -> Alcotest.fail "slack = alpha accepted"
   | exception Ppst.Params.Insecure _ -> ());
  (match plan ~params:(Ppst.Params.make ~gamma_slack:0 ()) () with
   | _ -> Alcotest.fail "slack 0 accepted"
   | exception Ppst.Params.Insecure _ -> ());
  ignore (plan ~params:(Ppst.Params.make ~gamma_slack:1 ()) ())

let test_params_wraparound_guard () =
  (* values so large that masked candidates would exceed the modulus *)
  (match plan ~max_value:1_000_000 ~dimension:1000 ~m:2000 ~n:2000 () with
   | _ -> Alcotest.fail "wrap-around accepted"
   | exception Ppst.Params.Insecure _ -> ())

let test_params_bad_args () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "bad argument accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (plan ~max_value:0 ()));
      (fun () -> ignore (plan ~dimension:0 ()));
      (fun () -> ignore (plan ~m:0 ()));
    ]

(* --- masking -------------------------------------------------------------- *)

let with_session f =
  let rng = Secure_rng.of_seed_string "masking-tests" in
  let pk, sk = Paillier.keygen ~bits:64 rng in
  let session =
    Ppst.Params.plan Ppst.Params.default ~max_value:100 ~dimension:1
      ~client_length:10 ~server_length:10 ~modulus:pk.Paillier.n ~distance:`Dtw
  in
  f ~rng ~pk ~sk ~session

let test_offsets_sorted_distinct_in_range () =
  with_session (fun ~rng ~pk:_ ~sk:_ ~session ->
      let offsets = Ppst.Masking.draw_offsets ~rng ~session ~count:20 in
      Alcotest.(check int) "count" 20 (Array.length offsets);
      Array.iteri
        (fun i r ->
          Alcotest.(check bool) "in range" true
            (Bigint.compare session.Ppst.Params.offset_lo r <= 0
             && Bigint.compare r session.Ppst.Params.offset_hi <= 0);
          if i > 0 then
            Alcotest.(check bool) "strictly ascending" true
              (Bigint.compare offsets.(i - 1) r < 0))
        offsets)

let test_prepare_min_counts_and_correctness () =
  with_session (fun ~rng ~pk ~sk ~session ->
      let enc v = Paillier.encrypt pk rng (Bigint.of_int v) in
      let inputs = [| enc 50; enc 30; enc 90 |] in
      let prepared = Ppst.Masking.prepare_min ~pk ~rng ~session inputs in
      let k = session.Ppst.Params.params.Ppst.Params.k in
      Alcotest.(check int) "k + 2 candidates" (k + 2)
        (Array.length prepared.Ppst.Masking.candidates);
      (* server side: decrypt all, the minimum plaintext must be 30 + r_min *)
      let plains =
        Array.map (Paillier.decrypt_crt sk) prepared.Ppst.Masking.candidates
      in
      let min_plain = Array.fold_left Bigint.min plains.(0) plains in
      Alcotest.check eq_bi "min = 30 + r_min"
        (Bigint.add (Bigint.of_int 30) prepared.Ppst.Masking.unmask)
        min_plain;
      (* unmasking a fresh encryption of the min recovers Enc(30) *)
      let reply = Paillier.encrypt pk rng min_plain in
      let unmasked = Ppst.Masking.unmask_min ~pk prepared reply in
      Alcotest.check eq_bi "unmask" (Bigint.of_int 30) (Paillier.decrypt_crt sk unmasked))

let test_prepare_max_counts_and_correctness () =
  with_session (fun ~rng ~pk ~sk ~session ->
      let enc v = Paillier.encrypt pk rng (Bigint.of_int v) in
      let inputs = [| enc 50; enc 90 |] in
      let prepared = Ppst.Masking.prepare_max ~pk ~rng ~session inputs in
      let k = session.Ppst.Params.params.Ppst.Params.k in
      Alcotest.(check int) "k + 1 candidates" (k + 1)
        (Array.length prepared.Ppst.Masking.candidates);
      let plains =
        Array.map (Paillier.decrypt_crt sk) prepared.Ppst.Masking.candidates
      in
      let max_plain = Array.fold_left Bigint.max plains.(0) plains in
      Alcotest.check eq_bi "max = 90 + r_max"
        (Bigint.add (Bigint.of_int 90) prepared.Ppst.Masking.unmask)
        max_plain;
      let reply = Paillier.encrypt pk rng max_plain in
      let unmasked = Ppst.Masking.unmask_max ~pk prepared reply in
      Alcotest.check eq_bi "unmask" (Bigint.of_int 90) (Paillier.decrypt_crt sk unmasked))

let test_prepare_rejects_empty () =
  with_session (fun ~rng ~pk ~sk:_ ~session ->
      match Ppst.Masking.prepare_min ~pk ~rng ~session [||] with
      | _ -> Alcotest.fail "empty inputs accepted"
      | exception Invalid_argument _ -> ())

let test_candidates_rerandomized () =
  (* no outgoing candidate may equal (as a ciphertext) any input — the
     linkability protection *)
  with_session (fun ~rng ~pk ~sk:_ ~session ->
      let enc v = Paillier.encrypt pk rng (Bigint.of_int v) in
      let inputs = [| enc 1; enc 2; enc 3 |] in
      let prepared = Ppst.Masking.prepare_min ~pk ~rng ~session inputs in
      Array.iter
        (fun c ->
          Array.iter
            (fun input ->
              Alcotest.(check bool) "distinct from inputs" false
                (Paillier.equal_ciphertext c input))
            inputs)
        prepared.Ppst.Masking.candidates)

let test_masked_min_many_rounds () =
  (* the masked minimum is exact over many random triples *)
  with_session (fun ~rng ~pk ~sk ~session ->
      for _ = 1 to 30 do
        let vals = Array.init 3 (fun _ -> Secure_rng.int rng 100_000) in
        let inputs = Array.map (fun v -> Paillier.encrypt pk rng (Bigint.of_int v)) vals in
        let prepared = Ppst.Masking.prepare_min ~pk ~rng ~session inputs in
        let plains = Array.map (Paillier.decrypt_crt sk) prepared.Ppst.Masking.candidates in
        let min_plain = Array.fold_left Bigint.min plains.(0) plains in
        let recovered =
          Paillier.decrypt_crt sk
            (Ppst.Masking.unmask_min ~pk prepared (Paillier.encrypt pk rng min_plain))
        in
        let expected = Array.fold_left min vals.(0) vals in
        Alcotest.check eq_bi "min" (Bigint.of_int expected) recovered
      done)

(* --- secure DTW / DFD end-to-end ------------------------------------------ *)

let run_dtw ?params ?max_value ~seed x y =
  Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ?params ?max_value ~seed ~x ~y ()

let run_dfd ?params ?max_value ~seed x y =
  Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dfd) ?params ?max_value ~seed ~x ~y ()

let test_dtw_paper_example () =
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let r = run_dtw ~seed:"paper-dtw" x y in
  Alcotest.(check int) "matches plaintext" (Distance.dtw_sq x y)
    (Ppst.Protocol.distance_int r)

let test_dfd_paper_example () =
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let r = run_dfd ~seed:"paper-dfd" x y in
  Alcotest.(check int) "matches plaintext" (Distance.dfd_sq x y)
    (Ppst.Protocol.distance_int r)

let test_single_element_series () =
  let x = Series.of_list [ 5 ] and y = Series.of_list [ 9 ] in
  Alcotest.(check int) "dtw singleton" 16
    (Ppst.Protocol.distance_int (run_dtw ~seed:"single" x y));
  Alcotest.(check int) "dfd singleton" 16
    (Ppst.Protocol.distance_int (run_dfd ~seed:"single2" x y))

let test_identical_series () =
  let x = Series.of_list [ 7; 7; 7; 7 ] in
  Alcotest.(check int) "zero distance" 0
    (Ppst.Protocol.distance_int (run_dtw ~seed:"ident" x x))

let test_unequal_lengths () =
  let x = Series.of_list [ 1; 5; 9; 5; 1; 5; 9 ] and y = Series.of_list [ 1; 9 ] in
  Alcotest.(check int) "dtw m<>n" (Distance.dtw_sq x y)
    (Ppst.Protocol.distance_int (run_dtw ~seed:"uneq" x y));
  Alcotest.(check int) "dfd m<>n" (Distance.dfd_sq x y)
    (Ppst.Protocol.distance_int (run_dfd ~seed:"uneq2" x y))

let gen_series_pair =
  let open QCheck2.Gen in
  let* d = int_range 1 3 in
  let mk =
    let* len = int_range 1 6 in
    let* data = list_size (return len) (list_size (return d) (int_range 0 40)) in
    return (Series.create (Array.of_list (List.map Array.of_list data)))
  in
  pair mk mk

let prop_secure_dtw_equals_plaintext =
  qtest "secure DTW = plaintext DTW" ~count:15 gen_series_pair
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (x, y) ->
      let r = run_dtw ~seed:"prop-dtw" x y in
      Ppst.Protocol.distance_int r = Distance.dtw_sq x y)

let prop_secure_dfd_equals_plaintext =
  qtest "secure DFD = plaintext DFD" ~count:10 gen_series_pair
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (x, y) ->
      let r = run_dfd ~seed:"prop-dfd" x y in
      Ppst.Protocol.distance_int r = Distance.dfd_sq x y)

let test_multidimensional_protocol () =
  let x = Series.create [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |] in
  let y = Series.create [| [| 9; 8; 7 |]; [| 6; 5; 4 |] |] in
  Alcotest.(check int) "3-d dtw" (Distance.dtw_sq x y)
    (Ppst.Protocol.distance_int (run_dtw ~seed:"3d" x y));
  Alcotest.(check int) "3-d dfd" (Distance.dfd_sq x y)
    (Ppst.Protocol.distance_int (run_dfd ~seed:"3d2" x y))

let test_various_k () =
  let x = Series.of_list [ 10; 20; 30; 25 ] and y = Series.of_list [ 12; 22; 28 ] in
  let expected = Distance.dtw_sq x y in
  List.iter
    (fun k ->
      (* k = 4 gives alpha = 2, so the slack must drop to 1 *)
      let gamma_slack = if k <= 4 then 1 else 2 in
      let params = Ppst.Params.make ~k ~gamma_slack () in
      let r = run_dtw ~params ~seed:(Printf.sprintf "k%d" k) x y in
      Alcotest.(check int) (Printf.sprintf "k = %d" k) expected
        (Ppst.Protocol.distance_int r))
    [ 4; 8; 10; 16; 50 ]

let test_larger_keys () =
  let x = Series.of_list [ 3; 1; 4; 1; 5 ] and y = Series.of_list [ 2; 7; 1; 8 ] in
  List.iter
    (fun key_bits ->
      let params = Ppst.Params.make ~key_bits () in
      let r = run_dtw ~params ~seed:(Printf.sprintf "bits%d" key_bits) x y in
      Alcotest.(check int) (Printf.sprintf "%d-bit key" key_bits)
        (Distance.dtw_sq x y) (Ppst.Protocol.distance_int r))
    [ 48; 96; 128 ]

let test_zero_values_allowed () =
  let x = Series.of_list [ 0; 0; 0 ] and y = Series.of_list [ 0; 1; 0 ] in
  Alcotest.(check int) "zeros" (Distance.dtw_sq x y)
    (Ppst.Protocol.distance_int (run_dtw ~seed:"zeros" x y))

let test_determinism_across_seeds () =
  (* different randomness, same result *)
  let x = Series.of_list [ 5; 15; 25 ] and y = Series.of_list [ 10; 20 ] in
  let r1 = run_dtw ~seed:"seed-a" x y and r2 = run_dtw ~seed:"seed-b" x y in
  Alcotest.check eq_bi "independent of randomness" r1.Ppst.Protocol.distance
    r2.Ppst.Protocol.distance

(* --- accounting ------------------------------------------------------------ *)

let test_communication_formula_dtw () =
  List.iter
    (fun (m, n, d, k) ->
      let params = Ppst.Params.make ~k () in
      let x =
        Series.create (Array.init m (fun i -> Array.init d (fun l -> ((i + l) mod 20) + 1)))
      in
      let y =
        Series.create (Array.init n (fun j -> Array.init d (fun l -> ((j * l) mod 20) + 1)))
      in
      let r = run_dtw ~params ~seed:"comm" x y in
      Alcotest.(check int)
        (Printf.sprintf "values m=%d n=%d d=%d k=%d" m n d k)
        (Ppst.Protocol.expected_values_transferred ~params ~m ~n ~d `Dtw)
        (Stats.total_values r.Ppst.Protocol.stats))
    [ (5, 5, 1, 10); (4, 7, 2, 8); (1, 3, 1, 10); (6, 2, 3, 16) ]

let test_communication_formula_dfd () =
  let params = Ppst.Params.make ~k:10 () in
  let m = 5 and n = 4 and d = 2 in
  let x = Series.create (Array.init m (fun i -> [| i + 1; 2 * (i + 1) |])) in
  let y = Series.create (Array.init n (fun j -> [| 3 * (j + 1); j + 1 |])) in
  let r = run_dfd ~params ~seed:"comm-dfd" x y in
  Alcotest.(check int) "dfd closed form"
    (Ppst.Protocol.expected_values_transferred ~params ~m ~n ~d `Dfd)
    (Stats.total_values r.Ppst.Protocol.stats)

let test_paper_per_entry_formula () =
  (* paper Section 5.2: the dominant per-entry cost is d + k + 4 values;
     check the live count divided by cells approaches it as m, n grow *)
  let params = Ppst.Params.make ~k:10 () in
  let m = 12 and n = 12 and d = 1 in
  let x = Series.create (Array.init m (fun i -> [| (i mod 9) + 1 |])) in
  let y = Series.create (Array.init n (fun j -> [| (j mod 7) + 1 |])) in
  let r = run_dtw ~params ~seed:"per-entry" x y in
  let total = Stats.total_values r.Ppst.Protocol.stats in
  (* the paper charges (d+1) phase-1 values to every entry; we amortize
     phase 1 per server element, so mn(d+k+4) is an upper bound and the
     inner-cell phase-2 term (k+3 per cell) a lower bound *)
  Alcotest.(check bool)
    (Printf.sprintf "total %d <= mn(d+k+4) = %d" total (m * n * (d + 10 + 4)))
    true
    (total <= m * n * (d + 10 + 4));
  Alcotest.(check bool)
    (Printf.sprintf "total %d >= (m-1)(n-1)(k+3) = %d" total
       ((m - 1) * (n - 1) * (10 + 3)))
    true
    (total >= (m - 1) * (n - 1) * (10 + 3))

let test_cost_counters () =
  let x = Series.of_list [ 1; 2; 3; 4 ] and y = Series.of_list [ 4; 3; 2 ] in
  let params = Ppst.Params.default in
  let r = run_dtw ~params ~seed:"counters" x y in
  let k = params.Ppst.Params.k in
  let m = 4 and n = 3 and d = 1 in
  let inner = (m - 1) * (n - 1) in
  let client = Ppst.Cost.client_ops r.Ppst.Protocol.cost in
  let server = Ppst.Cost.server_ops r.Ppst.Protocol.cost in
  (* client: one Enc(Σx²) per row + (k+2) offset encryptions per min round *)
  Alcotest.(check int) "client encryptions" (m + (inner * (k + 2)))
    client.Ppst.Cost.encryptions;
  (* server: n(d+1) phase-1 + 1 re-encryption per round *)
  Alcotest.(check int) "server encryptions" ((n * (d + 1)) + inner)
    server.Ppst.Cost.encryptions;
  (* server decrypts k+2 per round + the final reveal *)
  Alcotest.(check int) "server decryptions" ((inner * (k + 2)) + 1)
    server.Ppst.Cost.decryptions;
  Alcotest.(check int) "client never decrypts" 0 client.Ppst.Cost.decryptions

let test_offline_pool_has_no_misses () =
  (* regression: encrypt_pooled silently fell back to an online
     exponentiation when the pool ran dry, so "offline" runs could pay
     online cost without any accounting trace.  The drivers pre-size the
     pool exactly, so a default (offline) run must never miss... *)
  let x = Series.of_list [ 1; 2; 3; 4 ] and y = Series.of_list [ 4; 3; 2 ] in
  let offline = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"misses-off" ~x ~y () in
  Alcotest.(check int) "offline run: zero pool misses" 0
    (Ppst.Cost.pool_misses offline.Ppst.Protocol.cost);
  (* ...while with the pool disabled every client encryption is a miss
     (i.e. an online exponentiation), and the counter says exactly that *)
  let online = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~offline:false ~seed:"misses-on" ~x ~y () in
  let client_encs =
    (Ppst.Cost.client_ops online.Ppst.Protocol.cost).Ppst.Cost.encryptions
  in
  Alcotest.(check int) "online run: every encryption misses" client_encs
    (Ppst.Cost.pool_misses online.Ppst.Protocol.cost);
  Alcotest.(check bool) "counter is live" true (client_encs > 0)

let test_dfd_costs_more_than_dtw () =
  let x = Series.of_list [ 1; 9; 2; 8; 3; 7 ] and y = Series.of_list [ 9; 1; 8; 2; 7 ] in
  let dtw = run_dtw ~seed:"cmp1" x y and dfd = run_dfd ~seed:"cmp2" x y in
  Alcotest.(check bool) "dfd transfers more" true
    (Stats.total_values dfd.Ppst.Protocol.stats
     > Stats.total_values dtw.Ppst.Protocol.stats);
  let d_dec = (Ppst.Cost.server_ops dfd.Ppst.Protocol.cost).Ppst.Cost.decryptions in
  let t_dec = (Ppst.Cost.server_ops dtw.Ppst.Protocol.cost).Ppst.Cost.decryptions in
  Alcotest.(check bool) "dfd decrypts more" true (d_dec > t_dec)

(* --- hot-path equivalences ---------------------------------------------------- *)

(* Run secure DTW over an instrumented loopback channel that records the
   exact bytes of every request and reply frame. *)
let run_dtw_with_transcript ~offline =
  let rng = Secure_rng.of_seed_string "transcript/client" in
  let server_rng = Secure_rng.of_seed_string "transcript/server" in
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let server = Ppst.Server.create ~rng:server_rng ~series:y ~max_value:7 () in
  let buf = Buffer.create 4096 in
  let handler req =
    Buffer.add_string buf (Message.encode (Message.Request req));
    let reply = Ppst.Server.handle server req in
    Buffer.add_string buf (Message.encode (Message.Reply reply));
    reply
  in
  let client =
    Ppst.Client.connect ~offline ~rng ~series:x ~max_value:7 ~distance:`Dtw
      (Channel.local handler)
  in
  let dist = Ppst.Secure_dtw.run client in
  Ppst.Client.finish client;
  (dist, Buffer.contents buf)

let test_pooled_unpooled_transcripts_identical () =
  (* the offline/online split must be invisible on the wire: a pooled run
     consumes its noise rng in production (FIFO) order, so under the same
     seed the unpooled run emits the very same bytes *)
  let dist_off, bytes_off = run_dtw_with_transcript ~offline:true in
  let dist_on, bytes_on = run_dtw_with_transcript ~offline:false in
  Alcotest.check eq_bi "same distance" dist_off dist_on;
  Alcotest.(check int) "same transcript length" (String.length bytes_off)
    (String.length bytes_on);
  Alcotest.(check string) "bit-identical transcripts"
    (Digest.to_hex (Digest.string bytes_off))
    (Digest.to_hex (Digest.string bytes_on))

let test_packed_matches_unpacked () =
  (* plaintext packing is a throughput capability: same revealed
     distance, no pool misses, strictly fewer values on the wire *)
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let params = Ppst.Params.make ~key_bits:128 () in
  List.iter
    (fun (name, algo, strategy) ->
      let seed = "packed-" ^ name in
      let run packing =
        Ppst.Protocol.run
          ~spec:(Ppst.Protocol.spec ~strategy ~packing algo)
          ~params ~seed ~x ~y ()
      in
      let plain = run false and packed = run true in
      Alcotest.check eq_bi (name ^ ": same distance")
        plain.Ppst.Protocol.distance packed.Ppst.Protocol.distance;
      Alcotest.(check int) (name ^ ": offline run never misses") 0
        (Ppst.Cost.pool_misses packed.Ppst.Protocol.cost);
      Alcotest.(check bool)
        (Printf.sprintf "%s: packed moves fewer values (%d < %d)" name
           (Stats.total_values packed.Ppst.Protocol.stats)
           (Stats.total_values plain.Ppst.Protocol.stats))
        true
        (Stats.total_values packed.Ppst.Protocol.stats
         < Stats.total_values plain.Ppst.Protocol.stats))
    [ ("dtw", `Dtw, `Full); ("dfd", `Dfd, `Full); ("dtw-wavefront", `Dtw, `Wavefront) ]

let test_packing_fallback_small_key () =
  (* the default 64-bit key has no packing capacity: a packing-enabled
     run silently degrades to the unpacked protocol, same distance *)
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let r =
    Ppst.Protocol.run
      ~spec:(Ppst.Protocol.spec ~packing:true `Dtw)
      ~seed:"packed-fallback" ~x ~y ()
  in
  Alcotest.(check int) "distance" (Distance.dtw_sq x y) (Ppst.Protocol.distance_int r)

(* --- hiding ------------------------------------------------------------------ *)

let test_matrix_stays_encrypted_and_path_hidden () =
  (* Run via the lower-level API to inspect the client's matrix view. *)
  let rng = Secure_rng.of_seed_string "hiding/client" in
  let server_rng = Secure_rng.of_seed_string "hiding/server" in
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let server = Ppst.Server.create ~rng:server_rng ~series:y ~max_value:7 () in
  let channel = Channel.local (Ppst.Server.handle server) in
  let client =
    Ppst.Client.connect ~rng ~series:x ~max_value:7 ~distance:`Dtw channel
  in
  let matrix, dist = Ppst.Secure_dtw.run_matrix client in
  Ppst.Client.finish client;
  Alcotest.(check int) "distance" (Distance.dtw_sq x y) (Bigint.to_int_exn dist);
  (* every pair of matrix ciphertexts must be distinct, even where the
     plaintext matrix has equal values (e.g. m11 = m22 = 1 in Figure 1) —
     otherwise the client learns the optimal path (Section 5.5) *)
  let plain = Distance.dtw_sq_matrix x y in
  let duplicates = ref 0 and equal_plaintexts = ref 0 in
  for i1 = 0 to 5 do
    for j1 = 0 to 4 do
      for i2 = 0 to 5 do
        for j2 = 0 to 4 do
          if (i1, j1) < (i2, j2) then begin
            if plain.(i1).(j1) = plain.(i2).(j2) then incr equal_plaintexts;
            if Paillier.equal_ciphertext matrix.(i1).(j1) matrix.(i2).(j2) then
              incr duplicates
          end
        done
      done
    done
  done;
  Alcotest.(check bool) "plaintext matrix has equal entries" true (!equal_plaintexts > 0);
  Alcotest.(check int) "no duplicate ciphertexts" 0 !duplicates

let test_server_never_sees_unmasked_values () =
  (* instrument the channel: every Min_request candidate decrypted by the
     secret key must be >= offset_lo (i.e. masked), never a raw matrix
     value *)
  let rng = Secure_rng.of_seed_string "mask-audit/client" in
  let server_rng = Secure_rng.of_seed_string "mask-audit/server" in
  let x = Series.of_list [ 3; 9; 1; 7 ] and y = Series.of_list [ 2; 8; 5 ] in
  let server = Ppst.Server.create ~rng:server_rng ~series:y ~max_value:9 () in
  let sk = Ppst.Server.private_key server in
  let violations = ref 0 in
  let audited req =
    (match req with
     | Message.Min_request candidates ->
       Array.iter
         (fun c ->
           let plain =
             Paillier.decrypt_crt sk
               (Paillier.ciphertext_of_bigint (Ppst.Server.public_key server) c)
           in
           (* every candidate = value + offset with offset > 2^gamma *)
           if Bigint.compare plain (Bigint.of_int 1024) < 0 then incr violations)
         candidates
     | _ -> ());
    Ppst.Server.handle server req
  in
  let channel = Channel.local audited in
  let client = Ppst.Client.connect ~rng ~series:x ~max_value:9 ~distance:`Dtw channel in
  let dist = Ppst.Secure_dtw.run client in
  Ppst.Client.finish client;
  Alcotest.(check int) "distance still right" (Distance.dtw_sq x y)
    (Bigint.to_int_exn dist);
  Alcotest.(check int) "no unmasked candidate" 0 !violations

(* --- failure injection -------------------------------------------------------- *)

let test_dimension_mismatch_rejected () =
  let x = Series.create [| [| 1; 2 |] |] and y = Series.of_list [ 1; 2; 3 ] in
  (match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"dim" ~x ~y () with
   | _ -> Alcotest.fail "dimension mismatch accepted"
   | exception Ppst.Client.Incompatible _ -> ())

let test_negative_coordinates_rejected () =
  let y = Series.of_list [ 1; -2; 3 ] in
  (match
     Ppst.Server.create
       ~rng:(Secure_rng.of_seed_string "neg-coord")
       ~series:y ~max_value:10 ()
   with
   | _ -> Alcotest.fail "negative coordinate accepted"
   | exception Invalid_argument _ -> ())

let test_client_bound_violation_rejected () =
  let x = Series.of_list [ 1; 200 ] and y = Series.of_list [ 1; 2 ] in
  (match Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"bound" ~max_value:100 ~x ~y () with
   | _ -> Alcotest.fail "out-of-bound accepted"
   | exception (Ppst.Client.Incompatible _ | Invalid_argument _) -> ())

let test_server_rejects_garbage_candidates () =
  let rng = Secure_rng.of_seed_string "garbage" in
  let server =
    Ppst.Server.create ~rng ~series:(Series.of_list [ 1; 2 ]) ~max_value:10 ()
  in
  (* a candidate outside [0, n²) must yield Error_reply, not an exception *)
  let bad = Bigint.neg Bigint.one in
  (match Ppst.Server.handle server (Message.Min_request [| bad |]) with
   | Message.Error_reply _ -> ()
   | _ -> Alcotest.fail "garbage accepted");
  (* fewer than two candidates is ill-formed *)
  (match Ppst.Server.handle server (Message.Min_request [| Bigint.one |]) with
   | Message.Error_reply _ -> ()
   | _ -> Alcotest.fail "single candidate accepted")

let test_server_reveal_counting () =
  let rng = Secure_rng.of_seed_string "reveals" in
  let server =
    Ppst.Server.create ~rng ~series:(Series.of_list [ 1; 2 ]) ~max_value:10 ()
  in
  Alcotest.(check int) "none yet" 0 (Ppst.Server.reveal_count server);
  let pk = Ppst.Server.public_key server in
  let c = Paillier.encrypt pk rng (Bigint.of_int 5) in
  (match
     Ppst.Server.handle server
       (Message.Reveal_request (Paillier.ciphertext_to_bigint c))
   with
   | Message.Reveal_reply v -> Alcotest.check eq_bi "value" (Bigint.of_int 5) v
   | _ -> Alcotest.fail "reveal failed");
  Alcotest.(check int) "counted" 1 (Ppst.Server.reveal_count server)

let test_reveal_budget_enforced () =
  let rng = Secure_rng.of_seed_string "budget" in
  let server =
    Ppst.Server.create ~max_reveals:2 ~rng ~series:(Series.of_list [ 1; 2 ])
      ~max_value:10 ()
  in
  let pk = Ppst.Server.public_key server in
  let ask () =
    Ppst.Server.handle server
      (Message.Reveal_request
         (Paillier.ciphertext_to_bigint (Paillier.encrypt pk rng (Bigint.of_int 5))))
  in
  (match ask () with Message.Reveal_reply _ -> () | _ -> Alcotest.fail "first reveal");
  (match ask () with Message.Reveal_reply _ -> () | _ -> Alcotest.fail "second reveal");
  (match ask () with
   | Message.Error_reply _ -> ()
   | _ -> Alcotest.fail "third reveal allowed");
  Alcotest.(check int) "only two disclosed" 2 (Ppst.Server.reveal_count server);
  (match
     Ppst.Server.create ~max_reveals:0 ~rng ~series:(Series.of_list [ 1 ])
       ~max_value:10 ()
   with
   | _ -> Alcotest.fail "zero budget accepted"
   | exception Invalid_argument _ -> ())

let test_wrong_reply_kind_detected () =
  (* a server that answers Hello with Bye_ack must trip the client *)
  let channel = Channel.local (fun _ -> Message.Bye_ack { server_seconds = 0.0 }) in
  (match
     Ppst.Client.connect
       ~rng:(Secure_rng.of_seed_string "wrong-reply")
       ~series:(Series.of_list [ 1 ])
       ~max_value:10 ~distance:`Dtw channel
   with
   | _ -> Alcotest.fail "bad reply accepted"
   | exception Channel.Protocol_error _ -> ())

let () =
  Alcotest.run "protocol"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "plan derivation" `Quick test_params_plan_basic;
          Alcotest.test_case "DFD bound tighter" `Quick test_params_dfd_bound_smaller;
          Alcotest.test_case "k >= 4 enforced" `Quick test_params_k_too_small;
          Alcotest.test_case "slack constraint" `Quick test_params_slack_constraint;
          Alcotest.test_case "wrap-around guard" `Quick test_params_wraparound_guard;
          Alcotest.test_case "bad arguments" `Quick test_params_bad_args;
        ] );
      ( "masking",
        [
          Alcotest.test_case "offsets sorted/distinct/in-range" `Quick
            test_offsets_sorted_distinct_in_range;
          Alcotest.test_case "secure-min candidates" `Quick
            test_prepare_min_counts_and_correctness;
          Alcotest.test_case "secure-max candidates" `Quick
            test_prepare_max_counts_and_correctness;
          Alcotest.test_case "empty inputs rejected" `Quick test_prepare_rejects_empty;
          Alcotest.test_case "candidates re-randomized" `Quick test_candidates_rerandomized;
          Alcotest.test_case "masked minimum exact (30 rounds)" `Quick
            test_masked_min_many_rounds;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "paper example DTW" `Quick test_dtw_paper_example;
          Alcotest.test_case "paper example DFD" `Quick test_dfd_paper_example;
          Alcotest.test_case "single elements" `Quick test_single_element_series;
          Alcotest.test_case "identical series" `Quick test_identical_series;
          Alcotest.test_case "unequal lengths" `Quick test_unequal_lengths;
          Alcotest.test_case "multi-dimensional" `Quick test_multidimensional_protocol;
          Alcotest.test_case "random-set sizes" `Slow test_various_k;
          Alcotest.test_case "larger keys" `Slow test_larger_keys;
          Alcotest.test_case "zero values" `Quick test_zero_values_allowed;
          Alcotest.test_case "randomness-independent" `Quick test_determinism_across_seeds;
          prop_secure_dtw_equals_plaintext;
          prop_secure_dfd_equals_plaintext;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "DTW communication closed form" `Quick
            test_communication_formula_dtw;
          Alcotest.test_case "DFD communication closed form" `Quick
            test_communication_formula_dfd;
          Alcotest.test_case "paper d+k+4 per entry" `Quick test_paper_per_entry_formula;
          Alcotest.test_case "operation counters" `Quick test_cost_counters;
          Alcotest.test_case "offline pool never misses" `Quick
            test_offline_pool_has_no_misses;
          Alcotest.test_case "DFD costs ~2x DTW" `Quick test_dfd_costs_more_than_dtw;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "pooled = unpooled transcript" `Quick
            test_pooled_unpooled_transcripts_identical;
          Alcotest.test_case "packed = unpacked distance" `Slow
            test_packed_matches_unpacked;
          Alcotest.test_case "packing fallback on small keys" `Quick
            test_packing_fallback_small_key;
        ] );
      ( "hiding",
        [
          Alcotest.test_case "matrix encrypted, path hidden" `Quick
            test_matrix_stays_encrypted_and_path_hidden;
          Alcotest.test_case "server sees only masked values" `Quick
            test_server_never_sees_unmasked_values;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch_rejected;
          Alcotest.test_case "negative coordinates" `Quick
            test_negative_coordinates_rejected;
          Alcotest.test_case "bound violation" `Quick test_client_bound_violation_rejected;
          Alcotest.test_case "garbage candidates" `Quick
            test_server_rejects_garbage_candidates;
          Alcotest.test_case "reveal counting" `Quick test_server_reveal_counting;
          Alcotest.test_case "reveal budget" `Quick test_reveal_budget_enforced;
          Alcotest.test_case "wrong reply kind" `Quick test_wrong_reply_kind_detected;
        ] );
    ]
