(* Tests for the wire format, protocol messages, communication accounting
   and both channel implementations (in-process and TCP). *)

open Ppst_bigint
open Ppst_transport

let eq_bi = Alcotest.testable Bigint.pp Bigint.equal

let qtest name ?(count = 200) gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let gen_bigint =
  let open QCheck2.Gen in
  let* s = string_size ~gen:(char_range '0' '9') (int_range 1 40) in
  let* neg = bool in
  let v = Bigint.of_string s in
  return (if neg then Bigint.neg v else v)

(* --- wire primitives ----------------------------------------------------- *)

let test_u8_u32_roundtrip () =
  let w = Wire.writer () in
  Wire.put_u8 w 0;
  Wire.put_u8 w 255;
  Wire.put_u32 w 0;
  Wire.put_u32 w 0xFFFFFFFF;
  Wire.put_u32 w 123456789;
  let r = Wire.reader (Wire.contents w) in
  Alcotest.(check int) "u8 0" 0 (Wire.get_u8 r);
  Alcotest.(check int) "u8 255" 255 (Wire.get_u8 r);
  Alcotest.(check int) "u32 0" 0 (Wire.get_u32 r);
  Alcotest.(check int) "u32 max" 0xFFFFFFFF (Wire.get_u32 r);
  Alcotest.(check int) "u32 mid" 123456789 (Wire.get_u32 r);
  Wire.expect_end r

let test_u8_range_checked () =
  let w = Wire.writer () in
  Alcotest.check_raises "negative" (Invalid_argument "Wire.put_u8: out of range")
    (fun () -> Wire.put_u8 w (-1));
  Alcotest.check_raises "256" (Invalid_argument "Wire.put_u8: out of range")
    (fun () -> Wire.put_u8 w 256)

let test_truncated_read () =
  let r = Wire.reader "\001" in
  ignore (Wire.get_u8 r);
  (match Wire.get_u32 r with
   | _ -> Alcotest.fail "read past end"
   | exception Wire.Malformed _ -> ())

let test_trailing_bytes () =
  let r = Wire.reader "ab" in
  ignore (Wire.get_u8 r);
  (match Wire.expect_end r with
   | _ -> Alcotest.fail "trailing bytes accepted"
   | exception Wire.Malformed _ -> ())

let test_bigint_wire_fixed () =
  let check v =
    let w = Wire.writer () in
    Wire.put_bigint w v;
    let r = Wire.reader (Wire.contents w) in
    let v' = Wire.get_bigint r in
    Wire.expect_end r;
    Alcotest.check eq_bi (Bigint.to_string v) v v'
  in
  List.iter check
    [ Bigint.zero; Bigint.one; Bigint.minus_one;
      Bigint.of_string "123456789012345678901234567890";
      Bigint.neg (Bigint.of_string "999999999999999999999999") ]

let prop_bigint_wire =
  qtest "bigint wire round-trip" gen_bigint ~print:Bigint.to_string (fun v ->
      let w = Wire.writer () in
      Wire.put_bigint w v;
      Bigint.equal v (Wire.get_bigint (Wire.reader (Wire.contents w))))

let test_bigint_sign_consistency_checked () =
  (* sign byte 1 with zero magnitude must be rejected *)
  let w = Wire.writer () in
  Wire.put_u8 w 1;
  Wire.put_bytes w "";
  (match Wire.get_bigint (Wire.reader (Wire.contents w)) with
   | _ -> Alcotest.fail "inconsistent sign accepted"
   | exception Wire.Malformed _ -> ());
  (* bad sign byte *)
  let w2 = Wire.writer () in
  Wire.put_u8 w2 7;
  Wire.put_bytes w2 "\001";
  (match Wire.get_bigint (Wire.reader (Wire.contents w2)) with
   | _ -> Alcotest.fail "bad sign byte accepted"
   | exception Wire.Malformed _ -> ())

let test_array_count_guard () =
  (* a forged huge array count must be rejected before allocation *)
  let w = Wire.writer () in
  Wire.put_u32 w 0x7FFFFFFF;
  (match Wire.get_bigint_array (Wire.reader (Wire.contents w)) with
   | _ -> Alcotest.fail "forged count accepted"
   | exception Wire.Malformed _ -> ())

(* --- messages ------------------------------------------------------------ *)

let sample_messages =
  let b = Bigint.of_string in
  [
    Message.Request (Message.Hello { flags = 0; spec = None });
    Message.Request (Message.Hello { flags = Message.flag_crc32 lor Message.flag_resume; spec = None });
    Message.Request Message.Phase1_request;
    Message.Request (Message.Min_request [| b "1"; b "22"; b "333" |]);
    Message.Request (Message.Max_request [| b "987654321987654321" |]);
    Message.Request (Message.Reveal_request (b "31337"));
    Message.Request Message.Catalog_request;
    Message.Request (Message.Select_request 7);
    Message.Request Message.Bye;
    Message.Reply
      (Message.Welcome
         { n = b "13497220662202513373"; key_bits = 64; series_length = 100;
           dimension = 3; max_value = 100; flags = 0; resume_token = "" });
    Message.Reply
      (Message.Welcome
         { n = b "13497220662202513373"; key_bits = 64; series_length = 100;
           dimension = 3; max_value = 100;
           flags = Message.flag_crc32 lor Message.flag_resume;
           resume_token = String.init 16 (fun i -> Char.chr (i * 7 land 0xff)) });
    Message.Request (Message.Resume { token = "0123456789abcdef"; client_rounds = 42; flags = 1 });
    Message.Reply (Message.Resume_ack { server_rounds = 43; reply = "\x81cached"; flags = 3 });
    Message.Reply (Message.Resume_reject { reason = "unknown token" });
    Message.Reply
      (Message.Phase1_reply
         [|
           { Message.sum_sq = b "11"; coords = [| b "1"; b "2" |] };
           { Message.sum_sq = b "55"; coords = [| b "3"; b "4" |] };
         |]);
    Message.Reply (Message.Cipher_reply (b "424242424242"));
    Message.Reply (Message.Reveal_reply (b "3"));
    Message.Reply (Message.Catalog_reply [| 10; 20; 30 |]);
    Message.Reply (Message.Select_ack 2);
    Message.Reply (Message.Bye_ack { server_seconds = 1.25 });
    Message.Reply (Message.Busy { retry_after_s = 2.5 });
    Message.Reply (Message.Error_reply "something went wrong");
  ]

let test_message_roundtrips () =
  List.iter
    (fun msg ->
      let decoded = Message.decode (Message.encode msg) in
      Alcotest.(check string) (Message.describe msg) (Message.describe msg)
        (Message.describe decoded);
      (* structural equality through re-encoding *)
      Alcotest.(check string) "bytes" (Message.encode msg) (Message.encode decoded))
    sample_messages

let test_message_values_in () =
  let b = Bigint.of_string in
  Alcotest.(check int) "hello" 0 (Message.values_in (Message.Request (Message.Hello { flags = 0; spec = None })));
  Alcotest.(check int) "min(3)" 3
    (Message.values_in (Message.Request (Message.Min_request [| b "1"; b "2"; b "3" |])));
  Alcotest.(check int) "phase1 2x(1+2)" 6
    (Message.values_in
       (Message.Reply
          (Message.Phase1_reply
             [|
               { Message.sum_sq = b "1"; coords = [| b "1"; b "2" |] };
               { Message.sum_sq = b "2"; coords = [| b "3"; b "4" |] };
             |])));
  Alcotest.(check int) "cipher reply" 1
    (Message.values_in (Message.Reply (Message.Cipher_reply (b "9"))))

let test_message_unknown_tag () =
  (match Message.decode "\x7f" with
   | _ -> Alcotest.fail "unknown tag accepted"
   | exception Wire.Malformed _ -> ())

let test_message_trailing_garbage () =
  let encoded = Message.encode (Message.Request Message.Phase1_request) ^ "extra" in
  (match Message.decode encoded with
   | _ -> Alcotest.fail "trailing bytes accepted"
   | exception Wire.Malformed _ -> ())

let test_message_truncated () =
  let encoded =
    Message.encode (Message.Request (Message.Reveal_request (Bigint.of_int 5)))
  in
  let truncated = String.sub encoded 0 (String.length encoded - 1) in
  (match Message.decode truncated with
   | _ -> Alcotest.fail "truncated frame accepted"
   | exception Wire.Malformed _ -> ())

let prop_decode_fuzz =
  (* arbitrary bytes must either decode or raise Wire.Malformed — never
     any other exception (no Invalid_argument / Out_of_memory from forged
     lengths) *)
  QCheck_alcotest.to_alcotest
  @@ QCheck2.Test.make ~name:"decode never crashes on fuzz" ~count:2000
       ~print:String.escaped
       QCheck2.Gen.(string_size ~gen:char (int_range 0 60))
       (fun s ->
         match Message.decode s with
         | _ -> true
         | exception Wire.Malformed _ -> true)

(* --- stats ---------------------------------------------------------------- *)

let test_stats_accounting () =
  let s = Stats.create () in
  Stats.record_sent s ~bytes:100 ~values:5;
  Stats.record_received s ~bytes:40 ~values:1;
  Stats.record_round s;
  Alcotest.(check int) "sent" 100 (Stats.bytes_sent s);
  Alcotest.(check int) "received" 40 (Stats.bytes_received s);
  Alcotest.(check int) "total" 140 (Stats.total_bytes s);
  Alcotest.(check int) "values" 6 (Stats.total_values s);
  Alcotest.(check int) "rounds" 1 (Stats.rounds s);
  Alcotest.(check int) "messages" 2 (Stats.messages s);
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.total_bytes s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.record_sent a ~bytes:10 ~values:1;
  Stats.record_received b ~bytes:20 ~values:2;
  Stats.record_round a;
  Stats.record_round b;
  let m = Stats.merge a b in
  Alcotest.(check int) "bytes" 30 (Stats.total_bytes m);
  Alcotest.(check int) "rounds" 2 (Stats.rounds m)

(* --- local channel --------------------------------------------------------- *)

let echo_handler (req : Message.request) : Message.reply =
  match req with
  | Message.Reveal_request v -> Message.Reveal_reply v
  | Message.Hello _ ->
    Message.Welcome
      { n = Bigint.of_int 99; key_bits = 7; series_length = 1; dimension = 1;
        max_value = 1; flags = 0; resume_token = "" }
  | Message.Bye -> Message.Bye_ack { server_seconds = 0.0 }
  | _ -> Message.Error_reply "unsupported"

let test_local_channel_roundtrip () =
  let ch = Channel.local echo_handler in
  (match Channel.request ch (Message.Reveal_request (Bigint.of_int 77)) with
   | Message.Reveal_reply v -> Alcotest.check eq_bi "echoed" (Bigint.of_int 77) v
   | _ -> Alcotest.fail "wrong reply");
  Alcotest.(check bool) "bytes counted" true (Stats.total_bytes (Channel.stats ch) > 0);
  Alcotest.(check int) "one round" 1 (Stats.rounds (Channel.stats ch));
  Alcotest.(check bool) "server time measured" true (Channel.server_seconds ch >= 0.0)

let test_local_channel_error_reply () =
  let ch = Channel.local echo_handler in
  (match Channel.request ch Message.Phase1_request with
   | _ -> Alcotest.fail "error reply not raised"
   | exception Channel.Protocol_error _ -> ())

let test_local_channel_handler_exception () =
  let ch = Channel.local (fun _ -> failwith "handler blew up") in
  (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
   | _ -> Alcotest.fail "exception not converted"
   | exception Channel.Protocol_error m ->
     Alcotest.(check bool) "mentions failure" true (String.length m > 0))

let test_local_channel_close () =
  let ch = Channel.local echo_handler in
  Channel.close ch;
  (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
   | _ -> Alcotest.fail "closed channel accepted request"
   | exception Channel.Protocol_error _ -> ())

let test_local_channel_byte_parity () =
  (* the local channel must account exactly the encoded frame sizes *)
  let ch = Channel.local echo_handler in
  let req = Message.Reveal_request (Bigint.of_string "123456789123456789") in
  ignore (Channel.request ch req);
  let expected_sent = String.length (Message.encode (Message.Request req)) in
  Alcotest.(check int) "sent bytes = encoding size" expected_sent
    (Stats.bytes_sent (Channel.stats ch))

let test_local_channel_per_channel_cap () =
  (* a tiny cap on one channel rejects oversized messages there and
     leaves the process default (other channels) untouched *)
  let tiny = Channel.local ~config:(Channel.config ~max_frame:16 ()) echo_handler in
  let big = Message.Min_request (Array.make 8 (Bigint.of_string "123456789123456789")) in
  (match Channel.request tiny big with
   | _ -> Alcotest.fail "oversized frame accepted on capped channel"
   | exception Channel.Protocol_error _ -> ());
  let normal = Channel.local echo_handler in
  (match Channel.request normal (Message.Reveal_request (Bigint.of_int 1)) with
   | Message.Reveal_reply _ -> ()
   | _ -> Alcotest.fail "default-config channel affected by peer's cap")

let test_busy_reply_raises () =
  let ch = Channel.local (fun _ -> Message.Busy { retry_after_s = 2.5 }) in
  (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
   | _ -> Alcotest.fail "Busy reply did not raise"
   | exception Channel.Busy { retry_after_s } ->
     Alcotest.(check (float 1e-9)) "retry hint carried" 2.5 retry_after_s)

(* --- trace & netsim ---------------------------------------------------------- *)

let test_trace_records_rounds () =
  let trace = Trace.create () in
  let ch = Channel.local ~trace echo_handler in
  for i = 1 to 5 do
    ignore (Channel.request ch (Message.Reveal_request (Bigint.of_int i)))
  done;
  Alcotest.(check int) "rounds" 5 (Trace.rounds trace);
  Alcotest.(check int) "entries" 5 (List.length (Trace.entries trace));
  (* trace bytes must equal the stats totals *)
  Alcotest.(check int) "byte parity" (Stats.total_bytes (Channel.stats ch))
    (Trace.total_bytes trace);
  List.iter
    (fun e ->
      Alcotest.(check bool) "positive sizes" true
        (e.Trace.request_bytes > 0 && e.Trace.reply_bytes > 0))
    (Trace.entries trace)

let test_netsim_components () =
  let trace = Trace.create () in
  Trace.record trace ~request_bytes:1000 ~reply_bytes:500;
  Trace.record trace ~request_bytes:1000 ~reply_bytes:500;
  let link = Netsim.link ~rtt_ms:10.0 ~mbit_per_s:8.0 (* = 1e6 bytes/s *) in
  let e = Netsim.estimate ~link ~compute_seconds:1.0 trace in
  Alcotest.(check (float 1e-9)) "compute" 1.0 e.Netsim.compute_seconds;
  Alcotest.(check (float 1e-9)) "latency = 2 x 10ms" 0.02 e.Netsim.latency_seconds;
  (* 3000 payload + 4 headers x 4 = 3016 bytes at 1e6 B/s *)
  Alcotest.(check (float 1e-9)) "transfer" 0.003016 e.Netsim.transfer_seconds;
  Alcotest.(check (float 1e-9)) "total" (1.0 +. 0.02 +. 0.003016) e.Netsim.total_seconds

let test_netsim_monotone_in_rtt () =
  let trace = Trace.create () in
  for _ = 1 to 10 do
    Trace.record trace ~request_bytes:100 ~reply_bytes:100
  done;
  let t rtt =
    (Netsim.estimate
       ~link:(Netsim.link ~rtt_ms:rtt ~mbit_per_s:100.0)
       ~compute_seconds:0.5 trace)
      .Netsim.total_seconds
  in
  Alcotest.(check bool) "monotone" true (t 0.1 < t 1.0 && t 1.0 < t 50.0)

let test_netsim_validation () =
  (match Netsim.link ~rtt_ms:(-1.0) ~mbit_per_s:1.0 with
   | _ -> Alcotest.fail "negative rtt"
   | exception Invalid_argument _ -> ());
  (match Netsim.link ~rtt_ms:1.0 ~mbit_per_s:0.0 with
   | _ -> Alcotest.fail "zero bandwidth"
   | exception Invalid_argument _ -> ())

(* --- frame I/O edge cases ---------------------------------------------------- *)

let with_max_frame cap f =
  let old = Channel.max_frame () in
  Channel.set_max_frame cap;
  Fun.protect ~finally:(fun () -> Channel.set_max_frame old) f

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ()))
    (fun () -> f r w)

let test_retry_on_intr () =
  let calls = ref 0 in
  let v =
    Channel.retry_on_intr (fun () ->
        incr calls;
        if !calls < 3 then raise (Unix.Unix_error (Unix.EINTR, "read", ""))
        else 42)
  in
  Alcotest.(check int) "result after retries" 42 v;
  Alcotest.(check int) "three attempts" 3 !calls

let test_retry_on_eagain () =
  let calls = ref 0 in
  let v =
    Channel.retry_on_intr (fun () ->
        incr calls;
        match !calls with
        | 1 -> raise (Unix.Unix_error (Unix.EAGAIN, "read", ""))
        | 2 -> raise (Unix.Unix_error (Unix.EWOULDBLOCK, "read", ""))
        | n -> n)
  in
  Alcotest.(check int) "result" 3 v

let test_retry_other_errors_propagate () =
  let exn = Unix.Unix_error (Unix.ECONNRESET, "read", "") in
  Alcotest.check_raises "ECONNRESET propagates" exn (fun () ->
      Channel.retry_on_intr (fun () -> raise exn))

let test_max_frame_validation () =
  (match Channel.set_max_frame 1 with
   | _ -> Alcotest.fail "tiny cap accepted"
   | exception Invalid_argument _ -> ());
  with_max_frame 1024 (fun () ->
      Alcotest.(check int) "cap readable" 1024 (Channel.max_frame ()))

let test_frame_at_cap_roundtrips () =
  with_max_frame 64 (fun () ->
      with_pipe (fun r w ->
          let payload = String.init 64 (fun i -> Char.chr (i land 0xff)) in
          Channel.write_frame w payload;
          match Channel.read_frame r with
          | Some got -> Alcotest.(check string) "payload" payload got
          | None -> Alcotest.fail "unexpected EOF"))

let test_frame_over_cap_rejected_on_write () =
  with_max_frame 64 (fun () ->
      with_pipe (fun _r w ->
          match Channel.write_frame w (String.make 65 'x') with
          | _ -> Alcotest.fail "oversized frame written"
          | exception Channel.Protocol_error _ -> ()))

let test_forged_length_header_rejected () =
  with_max_frame 64 (fun () ->
      with_pipe (fun r w ->
          (* header claims 65 bytes: one past the cap, must be rejected
             before any body is read (nothing follows the header) *)
          ignore (Unix.write_substring w "\000\000\000\065" 0 4);
          match Channel.read_frame r with
          | _ -> Alcotest.fail "oversized length accepted"
          | exception Channel.Protocol_error _ -> ()))

let test_truncated_header_rejected () =
  with_pipe (fun r w ->
      ignore (Unix.write_substring w "\000\000" 0 2);
      Unix.close w;
      match Channel.read_frame r with
      | _ -> Alcotest.fail "truncated header accepted"
      | exception Channel.Connection_lost _ -> ())

let test_truncated_body_rejected () =
  with_pipe (fun r w ->
      (* header promises 10 bytes; deliver 3, then EOF *)
      ignore (Unix.write_substring w "\000\000\000\010abc" 0 7);
      Unix.close w;
      match Channel.read_frame r with
      | _ -> Alcotest.fail "truncated body accepted"
      | exception Channel.Connection_lost _ -> ())

let test_clean_eof_is_none () =
  with_pipe (fun r w ->
      Unix.close w;
      Alcotest.(check bool) "None on clean EOF" true (Channel.read_frame r = None))

(* --- tcp channel ------------------------------------------------------------ *)

let next_port =
  let counter = ref 0 in
  fun () ->
    incr counter;
    17820 + !counter

let with_tcp_server handler f =
  let port = next_port () in
  let server = Thread.create (fun () -> Channel.serve_once ~port ~handler ()) () in
  Thread.delay 0.15;
  let ch = Channel.connect ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () ->
      Channel.close ch;
      Thread.join server)
    (fun () -> f ch)

let test_tcp_roundtrip () =
  with_tcp_server echo_handler (fun ch ->
      match Channel.request ch (Message.Reveal_request (Bigint.of_int 5)) with
      | Message.Reveal_reply v -> Alcotest.check eq_bi "echo over tcp" (Bigint.of_int 5) v
      | _ -> Alcotest.fail "wrong reply")

let test_tcp_connect_trace () =
  (* connect takes the same ?trace as local (constructor symmetry) *)
  let port = next_port () in
  let server =
    Thread.create (fun () -> Channel.serve_once ~port ~handler:echo_handler ()) ()
  in
  Thread.delay 0.15;
  let trace = Trace.create () in
  let ch = Channel.connect ~trace ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () ->
      Channel.close ch;
      Thread.join server)
    (fun () ->
      for i = 1 to 3 do
        ignore (Channel.request ch (Message.Reveal_request (Bigint.of_int i)))
      done;
      Alcotest.(check int) "rounds traced" 3 (Trace.rounds trace);
      Alcotest.(check int) "byte parity" (Stats.total_bytes (Channel.stats ch))
        (Trace.total_bytes trace))

let test_tcp_multiple_rounds () =
  with_tcp_server echo_handler (fun ch ->
      for i = 1 to 20 do
        match Channel.request ch (Message.Reveal_request (Bigint.of_int i)) with
        | Message.Reveal_reply v -> Alcotest.check eq_bi "round" (Bigint.of_int i) v
        | _ -> Alcotest.fail "wrong reply"
      done;
      Alcotest.(check int) "20 rounds" 20 (Stats.rounds (Channel.stats ch)))

let test_tcp_handler_exception_kept_alive () =
  with_tcp_server
    (fun req ->
      match req with
      | Message.Hello _ -> failwith "boom"
      | r -> echo_handler r)
    (fun ch ->
      (* first request trips the handler; server must survive and report *)
      (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
       | _ -> Alcotest.fail "no error"
       | exception Channel.Protocol_error _ -> ());
      match Channel.request ch (Message.Reveal_request (Bigint.of_int 3)) with
      | Message.Reveal_reply v ->
        Alcotest.check eq_bi "server survived" (Bigint.of_int 3) v
      | _ -> Alcotest.fail "wrong reply")

let test_tcp_server_seconds_reported () =
  (* regression: TCP used to report 0.0 forever because only the local
     backend accumulated handler time; serve_once now ships its measured
     total in the final Bye_ack *)
  let port = next_port () in
  let slow_handler req =
    (match req with Message.Reveal_request _ -> Thread.delay 0.05 | _ -> ());
    echo_handler req
  in
  let server =
    Thread.create (fun () -> Channel.serve_once ~port ~handler:slow_handler ()) ()
  in
  Thread.delay 0.15;
  let ch = Channel.connect ~host:"127.0.0.1" ~port () in
  ignore (Channel.request ch (Message.Reveal_request (Bigint.of_int 1)));
  Alcotest.(check (float 0.0)) "0 during the session" 0.0
    (Channel.server_seconds ch);
  Channel.close ch;
  Thread.join server;
  Alcotest.(check bool) "handler time reported at close" true
    (Channel.server_seconds ch >= 0.05)

let () =
  Alcotest.run "transport"
    [
      ( "wire",
        [
          Alcotest.test_case "u8/u32 round-trip" `Quick test_u8_u32_roundtrip;
          Alcotest.test_case "u8 range checked" `Quick test_u8_range_checked;
          Alcotest.test_case "truncated read" `Quick test_truncated_read;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
          Alcotest.test_case "bigint fixed vectors" `Quick test_bigint_wire_fixed;
          Alcotest.test_case "sign consistency" `Quick test_bigint_sign_consistency_checked;
          Alcotest.test_case "forged array count" `Quick test_array_count_guard;
          prop_bigint_wire;
        ] );
      ( "messages",
        [
          Alcotest.test_case "round-trips" `Quick test_message_roundtrips;
          Alcotest.test_case "values_in counting" `Quick test_message_values_in;
          Alcotest.test_case "unknown tag" `Quick test_message_unknown_tag;
          Alcotest.test_case "trailing garbage" `Quick test_message_trailing_garbage;
          Alcotest.test_case "truncated frame" `Quick test_message_truncated;
          prop_decode_fuzz;
        ] );
      ( "stats",
        [
          Alcotest.test_case "accounting" `Quick test_stats_accounting;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "local channel",
        [
          Alcotest.test_case "round-trip" `Quick test_local_channel_roundtrip;
          Alcotest.test_case "error replies raise" `Quick test_local_channel_error_reply;
          Alcotest.test_case "handler exceptions converted" `Quick
            test_local_channel_handler_exception;
          Alcotest.test_case "close" `Quick test_local_channel_close;
          Alcotest.test_case "byte accounting parity" `Quick test_local_channel_byte_parity;
          Alcotest.test_case "per-channel frame cap" `Quick
            test_local_channel_per_channel_cap;
          Alcotest.test_case "busy reply raises" `Quick test_busy_reply_raises;
        ] );
      ( "trace & netsim",
        [
          Alcotest.test_case "trace records rounds" `Quick test_trace_records_rounds;
          Alcotest.test_case "estimate components" `Quick test_netsim_components;
          Alcotest.test_case "monotone in rtt" `Quick test_netsim_monotone_in_rtt;
          Alcotest.test_case "link validation" `Quick test_netsim_validation;
        ] );
      ( "framing",
        [
          Alcotest.test_case "retry on EINTR" `Quick test_retry_on_intr;
          Alcotest.test_case "retry on EAGAIN/EWOULDBLOCK" `Quick
            test_retry_on_eagain;
          Alcotest.test_case "other errors propagate" `Quick
            test_retry_other_errors_propagate;
          Alcotest.test_case "max_frame validation" `Quick
            test_max_frame_validation;
          Alcotest.test_case "frame at cap round-trips" `Quick
            test_frame_at_cap_roundtrips;
          Alcotest.test_case "over-cap write rejected" `Quick
            test_frame_over_cap_rejected_on_write;
          Alcotest.test_case "forged length header rejected" `Quick
            test_forged_length_header_rejected;
          Alcotest.test_case "truncated header rejected" `Quick
            test_truncated_header_rejected;
          Alcotest.test_case "truncated body rejected" `Quick
            test_truncated_body_rejected;
          Alcotest.test_case "clean EOF is None" `Quick test_clean_eof_is_none;
        ] );
      ( "tcp channel",
        [
          Alcotest.test_case "round-trip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "connect records a trace" `Quick
            test_tcp_connect_trace;
          Alcotest.test_case "many rounds" `Quick test_tcp_multiple_rounds;
          Alcotest.test_case "handler failure keeps server alive" `Quick
            test_tcp_handler_exception_kept_alive;
          Alcotest.test_case "server_seconds over TCP" `Quick
            test_tcp_server_seconds_reported;
        ] );
    ]
