(* Tests for the overload-control layer: admission budgets reject
   hostile sessions before any Paillier work, the per-peer rate limiter
   and the client circuit breaker obey their token/state math under a
   fake clock, the slow-peer watchdog cuts a stalled frame, capability
   violations are typed, and a server with every limiter enabled (but
   unsaturated) stays bit-identical to an unlimited one. *)

open Ppst_transport
module Metrics = Ppst_telemetry.Metrics

let eq_bi = Alcotest.testable Ppst_bigint.Bigint.pp Ppst_bigint.Bigint.equal

let series_y = Ppst_timeseries.Series.of_list [ 2; 4; 6; 5; 7 ]
let series_x = Ppst_timeseries.Series.of_list [ 3; 4; 5; 4; 6; 7 ]
let series_small = Ppst_timeseries.Series.of_list [ 3; 4 ]
let max_value = 9

(* How many decryptions the server has run, from the process-wide
   registry — the "no Paillier work happened" oracle. *)
let decrypted () =
  (Metrics.histogram_snapshot (Metrics.histogram "paillier.batch.decrypt")).sum

let make_loop ?(config = Server_loop.default_config) ?wrap ~seed () =
  let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/keygen") in
  let _pk, sk =
    Ppst_paillier.Paillier.keygen ~bits:Ppst.Params.default.Ppst.Params.key_bits rng
  in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:(Ppst_rng.Secure_rng.of_seed_string (Printf.sprintf "%s/session-%d" seed id))
        ~series:series_y ~max_value ()
    in
    let h = Ppst.Server.handle server in
    match wrap with Some w -> w h | None -> h
  in
  let loop =
    Server_loop.create ~config ~port:0
      ~handler:(fun ~id ~peer -> Server_loop.respond_only (handler ~id ~peer)) ()
  in
  let runner = Thread.create (fun () -> Server_loop.run loop) () in
  (loop, runner)

let stop (loop, runner) =
  Server_loop.shutdown loop;
  Thread.join runner

let run_client ?(series = series_x) ~port ~seed () =
  let rec attempt tries =
    let channel = Channel.connect ~host:"127.0.0.1" ~port () in
    match
      let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/client") in
      let client =
        Ppst.Client.connect ~rng ~series ~max_value ~distance:`Dtw channel
      in
      let d = Ppst.Secure_dtw.run client in
      Ppst.Client.finish client;
      (d, Stats.bytes_sent (Channel.stats channel),
       Stats.bytes_received (Channel.stats channel))
    with
    | r -> r
    | exception Channel.Busy _ when tries > 0 ->
      Channel.close channel;
      Thread.delay 0.05;
      attempt (tries - 1)
  in
  attempt 100

(* wait until [pred ()], or fail after ~5 s *)
let eventually msg pred =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail msg
    else begin
      Thread.delay 0.05;
      wait ()
    end
  in
  wait ()

(* --- admission ledger (pure unit tests) --------------------------------- *)

let check_reject msg quota limit requested = function
  | Admission.Reject r ->
    Alcotest.(check string) (msg ^ ": quota") quota r.quota;
    Alcotest.(check int) (msg ^ ": limit") limit r.limit;
    Alcotest.(check int) (msg ^ ": requested") requested r.requested
  | Admission.Admit -> Alcotest.fail (msg ^ ": admitted")

let test_admission_declare () =
  let lim =
    { Admission.unlimited with max_series_len = Some 4; max_dim = Some 2;
      max_cells = Some 10 }
  in
  let t = Admission.create lim in
  check_reject "series-len cap" "series-len" 4 5
    (Admission.declare t ~spec:{ Message.series_len = 5; dimension = 1 }
       ~server_len:3);
  check_reject "dim cap" "dim" 2 3
    (Admission.declare t ~spec:{ Message.series_len = 4; dimension = 3 }
       ~server_len:3);
  check_reject "cell cap at Hello" "cells" 10 12
    (Admission.declare t ~spec:{ Message.series_len = 4; dimension = 1 }
       ~server_len:3);
  (match
     Admission.declare t ~spec:{ Message.series_len = 3; dimension = 1 }
       ~server_len:3
   with
   | Admission.Admit -> ()
   | Reject _ -> Alcotest.fail "within-budget spec rejected")

let test_admission_declared_budget () =
  (* no configured caps at all: the declared m*n alone still binds *)
  let t = Admission.create Admission.unlimited in
  (match
     Admission.declare t ~spec:{ Message.series_len = 2; dimension = 1 }
       ~server_len:3
   with
   | Admission.Admit -> ()
   | Reject _ -> Alcotest.fail "unlimited declare rejected");
  (match Admission.charge_cells t ~kind:`Min ~count:6 ~server_len:3 with
   | Admission.Admit -> ()
   | Reject _ -> Alcotest.fail "within declared m*n rejected");
  check_reject "over declared m*n" "cells" 6 7
    (Admission.charge_cells t ~kind:`Min ~count:1 ~server_len:3);
  (* min and max ledgers are separate: DFD spends one of each per cell *)
  (match Admission.charge_cells t ~kind:`Max ~count:6 ~server_len:3 with
   | Admission.Admit -> ()
   | Reject _ -> Alcotest.fail "max ledger must not share the min ledger");
  (* reselect resets both ledgers (catalog scan = one matrix per record) *)
  Admission.reselect t;
  (match Admission.charge_cells t ~kind:`Min ~count:6 ~server_len:3 with
   | Admission.Admit -> ()
   | Reject _ -> Alcotest.fail "ledger must reset after reselect")

let test_admission_frames () =
  let lim =
    { Admission.unlimited with max_session_bytes = Some 100;
      max_session_frames = Some 3 }
  in
  let t = Admission.create lim in
  (match Admission.charge_frame t ~bytes:60 with
   | Admission.Admit -> ()
   | Reject _ -> Alcotest.fail "first frame rejected");
  check_reject "byte budget" "bytes" 100 120 (Admission.charge_frame t ~bytes:60);
  let t = Admission.create lim in
  (match Admission.charge_frame t ~bytes:1 with Admission.Admit -> () | _ -> ());
  (match Admission.charge_frame t ~bytes:1 with Admission.Admit -> () | _ -> ());
  (match Admission.charge_frame t ~bytes:1 with Admission.Admit -> () | _ -> ());
  check_reject "frame budget" "frames" 3 4 (Admission.charge_frame t ~bytes:1)

let test_cells_of_request () =
  let one = Ppst_bigint.Bigint.of_int 1 in
  Alcotest.(check (option (pair string int)))
    "min" (Some ("min", 1))
    (Option.map
       (fun (k, n) -> ((match k with `Min -> "min" | `Max -> "max"), n))
       (Admission.cells_of_request (Message.Min_request [| one; one |])));
  Alcotest.(check (option (pair string int)))
    "batch max" (Some ("max", 3))
    (Option.map
       (fun (k, n) -> ((match k with `Min -> "min" | `Max -> "max"), n))
       (Admission.cells_of_request
          (Message.Batch_max_request [| [| one |]; [| one |]; [| one |] |])));
  Alcotest.(check bool) "phase1 costs no cells" true
    (Admission.cells_of_request Message.Phase1_request = None)

(* --- rate limiter (fake clock) ------------------------------------------ *)

let test_ratelimit_refill () =
  let now = ref 0.0 in
  let rl =
    Ratelimit.create ~now:(fun () -> !now)
      { Ratelimit.rate_per_s = 1.0; burst = 2.0 }
  in
  Alcotest.(check bool) "burst 1" true (Ratelimit.admit rl "a" = `Admit);
  Alcotest.(check bool) "burst 2" true (Ratelimit.admit rl "a" = `Admit);
  (match Ratelimit.admit rl "a" with
   | `Throttle d -> Alcotest.(check (float 1e-9)) "full token owed" 1.0 d
   | `Admit -> Alcotest.fail "empty bucket admitted");
  now := 0.5;
  (match Ratelimit.admit rl "a" with
   | `Throttle d -> Alcotest.(check (float 1e-9)) "half refilled" 0.5 d
   | `Admit -> Alcotest.fail "half-full token admitted");
  now := 1.0;
  Alcotest.(check bool) "refilled" true (Ratelimit.admit rl "a" = `Admit);
  (* refill never exceeds burst *)
  now := 1000.0;
  Alcotest.(check (float 1e-9)) "capped at burst" 2.0 (Ratelimit.tokens rl "a");
  Alcotest.(check int) "throttle verdicts counted" 2 (Ratelimit.throttled_total rl)

let test_ratelimit_per_peer () =
  let now = ref 0.0 in
  let rl =
    Ratelimit.create ~now:(fun () -> !now)
      { Ratelimit.rate_per_s = 1.0; burst = 1.0 }
  in
  Alcotest.(check bool) "a admitted" true (Ratelimit.admit rl "a" = `Admit);
  Alcotest.(check bool) "a drained" true (Ratelimit.admit rl "a" <> `Admit);
  (* a hammering peer never touches another peer's bucket *)
  Alcotest.(check bool) "b unaffected" true (Ratelimit.admit rl "b" = `Admit);
  Alcotest.(check int) "two buckets" 2 (Ratelimit.peers rl)

let test_ratelimit_eviction () =
  let now = ref 0.0 in
  let rl =
    Ratelimit.create ~now:(fun () -> !now) ~max_peers:2
      { Ratelimit.rate_per_s = 1.0; burst = 4.0 }
  in
  ignore (Ratelimit.admit rl "busy");
  ignore (Ratelimit.admit rl "busy");
  ignore (Ratelimit.admit rl "quiet");
  (* table full: a third peer evicts the fullest bucket (the quietest
     peer), never the one being hammered *)
  ignore (Ratelimit.admit rl "new");
  Alcotest.(check int) "table stays bounded" 2 (Ratelimit.peers rl);
  Alcotest.(check (float 1e-9)) "hammered peer's debt survives" 2.0
    (Ratelimit.tokens rl "busy")

(* --- circuit breaker (fake clock) --------------------------------------- *)

let test_breaker_transitions () =
  let now = ref 0.0 in
  let b =
    Retry.Breaker.create ~now:(fun () -> !now)
      ~config:{ Retry.Breaker.threshold = 3; cooldown_s = 5.0 }
      ()
  in
  Alcotest.(check bool) "starts closed" true (Retry.Breaker.state b = `Closed);
  Retry.Breaker.shed b ~hint:0.0;
  Retry.Breaker.shed b ~hint:0.0;
  Alcotest.(check bool) "two sheds stay closed" true
    (Retry.Breaker.state b = `Closed);
  Retry.Breaker.shed b ~hint:0.0;
  Alcotest.(check bool) "third shed opens" true (Retry.Breaker.state b = `Open);
  (match Retry.Breaker.acquire b with
   | `Open remaining ->
     Alcotest.(check (float 1e-9)) "full cooldown remaining" 5.0 remaining
   | `Proceed -> Alcotest.fail "open breaker let an attempt through");
  now := 5.1;
  (match Retry.Breaker.acquire b with
   | `Proceed -> ()
   | `Open _ -> Alcotest.fail "cooldown passed but still open");
  Alcotest.(check bool) "probing" true (Retry.Breaker.state b = `Half_open);
  (* a second caller during the probe is still held off *)
  (match Retry.Breaker.acquire b with
   | `Open _ -> ()
   | `Proceed -> Alcotest.fail "two concurrent half-open probes");
  (* probe shed: reopen for another full cooldown *)
  Retry.Breaker.shed b ~hint:0.0;
  Alcotest.(check bool) "probe shed reopens" true (Retry.Breaker.state b = `Open);
  now := 11.0;
  (match Retry.Breaker.acquire b with `Proceed -> () | `Open _ ->
    Alcotest.fail "second cooldown passed but still open");
  Retry.Breaker.success b;
  Alcotest.(check bool) "probe success closes" true
    (Retry.Breaker.state b = `Closed);
  Alcotest.(check int) "openings counted" 2 (Retry.Breaker.opened_total b)

let test_breaker_streak_and_hint () =
  let now = ref 0.0 in
  let b =
    Retry.Breaker.create ~now:(fun () -> !now)
      ~config:{ Retry.Breaker.threshold = 2; cooldown_s = 1.0 }
      ()
  in
  (* a non-shed failure (connection lost, corruption) breaks the streak:
     the breaker reacts to overload, not to faults *)
  Retry.Breaker.shed b ~hint:0.0;
  Retry.Breaker.failure b;
  Retry.Breaker.shed b ~hint:0.0;
  Alcotest.(check bool) "streak was reset" true (Retry.Breaker.state b = `Closed);
  (* the server's retry-after hint floors the cooldown *)
  Retry.Breaker.shed b ~hint:10.0;
  Alcotest.(check bool) "opened" true (Retry.Breaker.state b = `Open);
  (match Retry.Breaker.acquire b with
   | `Open remaining ->
     Alcotest.(check (float 1e-9)) "hint floors cooldown" 10.0 remaining
   | `Proceed -> Alcotest.fail "open breaker let an attempt through")

let test_breaker_in_with_retry () =
  let now = ref 0.0 in
  let b =
    Retry.Breaker.create ~now:(fun () -> !now)
      ~config:{ Retry.Breaker.threshold = 2; cooldown_s = 3.0 }
      ()
  in
  let network_attempts = ref 0 in
  let slept = ref [] in
  (* a server in sustained overload: every real attempt is shed *)
  (match
     Retry.with_retry
       ~policy:{ Retry.default_policy with max_attempts = 6 }
       ~rng:(Ppst_rng.Secure_rng.of_seed_string "breaker-retry")
       ~sleep:(fun d -> slept := d :: !slept)
       ~breaker:b
       ~classify:(function
         | Channel.Busy { retry_after_s } -> `Retry_after retry_after_s
         | Retry.Breaker.Open_circuit { retry_after_s } ->
           `Retry_after retry_after_s
         | _ -> `Fail)
       (fun () ->
         incr network_attempts;
         raise (Channel.Busy { retry_after_s = 0.5 }))
   with
   | _ -> Alcotest.fail "shed forever yet succeeded"
   | exception Retry.Exhausted _ -> ());
  (* attempts 1 and 2 dial in and open the breaker; 3..6 fail locally *)
  Alcotest.(check int) "breaker absorbed the stampede" 2 !network_attempts;
  Alcotest.(check bool) "breaker opened" true (Retry.Breaker.opened_total b >= 1);
  (* every post-open sleep honoured at least the remaining cooldown *)
  List.iteri
    (fun i d ->
      ignore i;
      Alcotest.(check bool) "sleeps are positive" true (d >= 0.0))
    !slept

(* --- hostile oversized session: rejected with zero Paillier work --------- *)

let test_quota_rejects_before_crypto () =
  let config =
    {
      Server_loop.default_config with
      admission = { Admission.unlimited with max_cells = Some 15 };
    }
  in
  let t = make_loop ~config ~seed:"quota-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let before = decrypted () in
      (* series_x (6 elements) against the server's 5: 30 cells > 15.
         Client.connect declares the size in Hello and is rejected
         before Phase 1 — before any encryption or decryption. *)
      let ch = Channel.connect ~host:"127.0.0.1" ~port () in
      (match
         Ppst.Client.connect
           ~rng:(Ppst_rng.Secure_rng.of_seed_string "hostile")
           ~series:series_x ~max_value ~distance:`Dtw ch
       with
       | _ -> Alcotest.fail "oversized session admitted"
       | exception Channel.Quota_exceeded { quota; limit; requested } ->
         Alcotest.(check string) "quota name" "cells" quota;
         Alcotest.(check int) "limit" 15 limit;
         Alcotest.(check int) "requested" 30 requested);
      Channel.close ch;
      Alcotest.(check (float 1e-9)) "ZERO decryptions for the reject"
        before (decrypted ());
      (* the quota outcome is recorded... *)
      eventually "no Quota_rejected outcome" (fun () ->
          List.exists
            (fun (s : Server_loop.session) ->
              s.outcome = Server_loop.Quota_rejected "cells")
            (Server_loop.sessions loop));
      (* ...and an honest client under the budget completes as ever *)
      let d, _, _ = run_client ~series:series_small ~port ~seed:"honest" () in
      Alcotest.(check bool) "honest session served" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0))

let test_declared_vs_shipped_mismatch () =
  (* no configured caps: the client's own Hello declaration binds it *)
  let t = make_loop ~seed:"mismatch-test" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let before = decrypted () in
      let ch = Channel.connect ~crc:false ~resume:false ~host:"127.0.0.1" ~port () in
      (match
         Channel.request ch
           (Message.Hello
              { flags = 0; spec = Some { series_len = 1; dimension = 1 } })
       with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "Hello failed");
      (* declared 1x5 = 5 cells, then ships 6 min instances: the wire
         layer rejects set 6 with the declared budget, decrypting none *)
      let one = Ppst_bigint.Bigint.of_int 1 in
      let sets = Array.make 6 [| one; one |] in
      (match Channel.request ch (Message.Batch_min_request sets) with
       | _ -> Alcotest.fail "over-declaration admitted"
       | exception Channel.Quota_exceeded { quota; limit; requested } ->
         Alcotest.(check string) "quota name" "cells" quota;
         Alcotest.(check int) "declared m*n is the limit" 5 limit;
         Alcotest.(check int) "requested" 6 requested);
      Channel.close ch;
      Alcotest.(check (float 1e-9)) "no candidate was decrypted" before
        (decrypted ()))

(* --- hostile ciphertexts never reach a CRT exponentiation ---------------- *)

let test_garbage_ciphertext_typed () =
  let t = make_loop ~seed:"garbage-test" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let ch = Channel.connect ~crc:false ~resume:false ~host:"127.0.0.1" ~port () in
      let n =
        match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
        | Message.Welcome { n; _ } -> n
        | _ -> Alcotest.fail "Hello failed"
      in
      let before = Metrics.counter_value (Metrics.counter "paillier.invalid_ciphertext") in
      let one = Ppst_bigint.Bigint.of_int 1 in
      (* zero never even decodes as a candidate (codec-level reject) *)
      (match Channel.request ch (Message.Min_request [| Ppst_bigint.Bigint.zero; one |]) with
       | _ -> Alcotest.fail "zero accepted as a ciphertext"
       | exception Channel.Protocol_error _ -> ());
      (* n itself: in range but gcd(n, n) = n — a non-unit that would
         crash (or leak) inside CRT decryption if it got that far *)
      (match Channel.request ch (Message.Min_request [| n; one |]) with
       | _ -> Alcotest.fail "non-unit accepted as a ciphertext"
       | exception Channel.Protocol_error _ -> ());
      (* 2n: also a non-unit, well inside [1, n^2-1] *)
      (match
         Channel.request ch (Message.Min_request [| Ppst_bigint.Bigint.add n n; one |])
       with
       | _ -> Alcotest.fail "non-unit 2n accepted as a ciphertext"
       | exception Channel.Protocol_error _ -> ());
      Channel.close ch;
      Alcotest.(check bool) "rejections counted" true
        (Metrics.counter_value (Metrics.counter "paillier.invalid_ciphertext")
         >= before + 2);
      (* in-band errors: the server survives and serves the next client *)
      let d, _, _ = run_client ~port ~seed:"after-garbage" () in
      Alcotest.(check bool) "server survived" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0))

(* --- capability declarations are enforced -------------------------------- *)

let test_crc_without_grant () =
  let t = make_loop ~seed:"cap-crc-test" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let before =
        Metrics.counter_value (Metrics.counter "server.capability.violations")
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Channel.write_frame fd
        (Message.encode (Message.Request (Message.Hello { flags = 0; spec = None })));
      (match Channel.read_frame fd with
       | Some frame ->
         (match Message.decode frame with
          | Message.Reply (Message.Welcome { flags; _ }) ->
            Alcotest.(check int) "no capabilities granted" 0 flags
          | _ -> Alcotest.fail "expected Welcome")
       | None -> Alcotest.fail "no Welcome");
      (* a flags-0 session shipping a CRC trailer is a violation, not a
         silent length mismatch *)
      Channel.write_frame ~crc:true fd
        (Message.encode (Message.Request Message.Catalog_request));
      (match Channel.read_frame fd with
       | Some frame ->
         (match Message.decode frame with
          | Message.Reply (Message.Error_reply reason) ->
            Alcotest.(check bool)
              (Printf.sprintf "typed reason (got %S)" reason)
              true
              (String.length reason >= 20
               && String.sub reason 0 20 = "capability violation")
          | _ -> Alcotest.fail "expected a typed Error_reply")
       | None -> Alcotest.fail "connection closed without a reply");
      (try Unix.close fd with _ -> ());
      Alcotest.(check bool) "violation counted" true
        (Metrics.counter_value (Metrics.counter "server.capability.violations")
         > before))

let test_resume_without_grant () =
  let config = { Server_loop.default_config with enable_resume = false } in
  let t = make_loop ~config ~seed:"cap-resume-test" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Channel.write_frame fd
        (Message.encode
           (Message.Request (Message.Resume { token = "x"; client_rounds = 0; flags = 0 })));
      (match Channel.read_frame fd with
       | Some frame ->
         (match Message.decode frame with
          | Message.Reply (Message.Resume_reject { reason }) ->
            Alcotest.(check bool)
              (Printf.sprintf "typed reason (got %S)" reason)
              true
              (String.length reason >= 20
               && String.sub reason 0 20 = "capability violation")
          | _ -> Alcotest.fail "expected Resume_reject")
       | None -> Alcotest.fail "connection closed without a reply");
      (try Unix.close fd with _ -> ()))

(* --- slow-peer watchdog --------------------------------------------------- *)

let test_slowloris_cut () =
  let config =
    { Server_loop.default_config with watchdog_timeout_s = Some 0.2 }
  in
  let t = make_loop ~config ~seed:"slowloris-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* claim a 50-byte frame, deliver one byte, go quiet mid-frame *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring fd "\x00\x00\x00\x32" 0 4);
      ignore (Unix.write_substring fd "\x01" 0 1);
      eventually "watchdog never cut the stalled peer" (fun () ->
          List.exists
            (fun (s : Server_loop.session) -> s.outcome = Server_loop.Slow_peer)
            (Server_loop.sessions loop));
      (try Unix.close fd with _ -> ());
      (* the freed slot serves an honest client immediately *)
      let d, _, _ = run_client ~port ~seed:"after-slowloris" () in
      Alcotest.(check bool) "server survived the slowloris" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0))

(* --- health probe ---------------------------------------------------------- *)

let test_health_probe () =
  let config =
    { Server_loop.default_config with max_sessions = 1; retry_after_s = 0.7 }
  in
  let t = make_loop ~config ~seed:"health-test" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* client A occupies the single slot *)
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request a (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "A's Hello failed");
      (* the probe is answered even though the serving path is full *)
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request b Message.Health_req with
       | Message.Health_reply { status; active; capacity; retry_after_s } ->
         Alcotest.(check int) "at capacity" 1 status;
         Alcotest.(check int) "one active" 1 active;
         Alcotest.(check int) "capacity" 1 capacity;
         Alcotest.(check (float 1e-9)) "hint" 0.7 retry_after_s
       | _ -> Alcotest.fail "expected Health_reply");
      Channel.close b;
      Channel.close a;
      (* an in-session probe occupies the capacity-1 slot itself, so it
         honestly reports at-capacity... *)
      eventually "slot never freed" (fun () ->
          Server_loop.active_sessions (fst t) = 0);
      let c = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request c Message.Health_req with
       | Message.Health_reply { status; active; capacity; _ } ->
         Alcotest.(check int) "probe session is the active one" 1 active;
         Alcotest.(check int) "capacity" 1 capacity;
         Alcotest.(check int) "full because of the probe itself" 1 status
       | _ -> Alcotest.fail "expected Health_reply");
      Channel.close c);
  (* ...and with headroom it reports ready *)
  let t = make_loop ~seed:"health-ready" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let c = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request c Message.Health_req with
       | Message.Health_reply { status; capacity; _ } ->
         Alcotest.(check int) "ready" 0 status;
         Alcotest.(check int) "default capacity" 4 capacity
       | _ -> Alcotest.fail "expected Health_reply");
      Channel.close c)

(* --- load shedding ---------------------------------------------------------- *)

let test_shed_watermark () =
  let gate = Mutex.create () in
  let config =
    {
      Server_loop.default_config with
      max_sessions = 4;
      shed_watermark = Some 1;
      retry_after_s = 0.3;
    }
  in
  (* Catalog_request blocks on [gate]: while A holds the server inside
     the handler, the watermark is crossed and new sessions shed. *)
  let wrap h req =
    (match req with
     | Message.Catalog_request ->
       Mutex.lock gate;
       Mutex.unlock gate
     | _ -> ());
    h req
  in
  let t = make_loop ~config ~wrap ~seed:"shed-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request a (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "A's Hello failed");
      Mutex.lock gate;
      let a_runner =
        Thread.create
          (fun () -> ignore (Channel.request a Message.Catalog_request))
          ()
      in
      (* wait until A is provably inside the handler *)
      eventually "A never entered the handler" (fun () ->
          Server_loop.shed_total loop >= 0
          &&
          (* probe: shedding status flips once inflight >= watermark *)
          let p = Channel.connect ~host:"127.0.0.1" ~port () in
          let shedding =
            match Channel.request p Message.Health_req with
            | Message.Health_reply { status; _ } -> status = 2
            | _ -> false
            | exception _ -> false
          in
          Channel.close p;
          shedding);
      (* a new session is refused with the retry-after hint... *)
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request b (Message.Hello { flags = 0; spec = None }) with
       | _ -> Alcotest.fail "session admitted while shedding"
       | exception Channel.Busy { retry_after_s } ->
         Alcotest.(check (float 1e-9)) "hint" 0.3 retry_after_s);
      Channel.close b;
      Alcotest.(check bool) "shed counted" true (Server_loop.shed_total loop >= 1);
      (* ...then the handler drains and service resumes *)
      Mutex.unlock gate;
      Thread.join a_runner;
      Channel.close a;
      let d, _, _ = run_client ~port ~seed:"after-shed" () in
      Alcotest.(check bool) "service resumed after shed" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0))

let test_ratelimit_end_to_end () =
  let config =
    {
      Server_loop.default_config with
      ratelimit = Some { Ratelimit.rate_per_s = 0.1; burst = 2.0 };
    }
  in
  let t = make_loop ~config ~seed:"ratelimit-e2e" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* two sessions ride the burst... *)
      for i = 1 to 2 do
        let ch = Channel.connect ~host:"127.0.0.1" ~port () in
        (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
         | Message.Welcome _ -> ()
         | _ -> Alcotest.fail (Printf.sprintf "burst session %d refused" i));
        Channel.close ch
      done;
      (* ...the third is throttled with the exact bucket-recovery delay *)
      let ch = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
       | _ -> Alcotest.fail "over-rate session admitted"
       | exception Channel.Busy { retry_after_s } ->
         Alcotest.(check bool)
           (Printf.sprintf "recovery hint ~10 s (got %.2f)" retry_after_s)
           true
           (retry_after_s > 5.0 && retry_after_s <= 10.0));
      Channel.close ch;
      Alcotest.(check bool) "throttle counted as shed" true
        (Server_loop.shed_total loop >= 1))

(* --- determinism: every limiter on, none saturated = bit-identical -------- *)

let test_unsaturated_limiting_is_invisible () =
  let run config =
    let t = make_loop ~config ~seed:"det" () in
    let port = Server_loop.port (fst t) in
    Fun.protect ~finally:(fun () -> stop t)
      (fun () -> run_client ~port ~seed:"det-client" ())
  in
  let d0, sent0, recv0 = run Server_loop.default_config in
  let belt_and_braces =
    {
      Server_loop.default_config with
      admission =
        {
          Admission.max_cells = Some 1000;
          max_series_len = Some 100;
          max_dim = Some 16;
          max_session_bytes = Some (64 * 1024 * 1024);
          max_session_frames = Some 100_000;
        };
      ratelimit = Some { Ratelimit.rate_per_s = 1000.0; burst = 1000.0 };
      shed_watermark = Some 64;
      watchdog_timeout_s = Some 30.0;
    }
  in
  let d1, sent1, recv1 = run belt_and_braces in
  Alcotest.check eq_bi "distance identical" d0 d1;
  Alcotest.(check int) "bytes sent identical" sent0 sent1;
  Alcotest.(check int) "bytes received identical" recv0 recv1

(* --- mixed workload: hostiles rejected, honest sessions unharmed ---------- *)

let test_mixed_workload () =
  let config =
    {
      Server_loop.default_config with
      max_sessions = 4;
      admission = { Admission.unlimited with max_cells = Some 15 };
      watchdog_timeout_s = Some 0.3;
    }
  in
  let t = make_loop ~config ~seed:"mixed-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let reference = run_client ~series:series_small ~port ~seed:"mixed-ref" () in
      let ref_d, _, _ = reference in
      let honest = Array.make 2 (Error "did not finish") in
      let hostile_done = ref 0 in
      let hostile_mutex = Mutex.create () in
      let bump () =
        Mutex.lock hostile_mutex;
        incr hostile_done;
        Mutex.unlock hostile_mutex
      in
      let threads =
        [
          (* two honest clients *)
          Thread.create
            (fun () ->
              honest.(0) <-
                (try
                   let d, _, _ =
                     run_client ~series:series_small ~port ~seed:"mixed-h0" ()
                   in
                   Ok d
                 with e -> Error (Printexc.to_string e)))
            ();
          Thread.create
            (fun () ->
              honest.(1) <-
                (try
                   let d, _, _ =
                     run_client ~series:series_small ~port ~seed:"mixed-h1" ()
                   in
                   Ok d
                 with e -> Error (Printexc.to_string e)))
            ();
          (* an oversized client: quota-rejected at Hello *)
          Thread.create
            (fun () ->
              let ch = Channel.connect ~host:"127.0.0.1" ~port () in
              (try
                 ignore
                   (Ppst.Client.connect
                      ~rng:(Ppst_rng.Secure_rng.of_seed_string "mixed-big")
                      ~series:series_x ~max_value ~distance:`Dtw ch)
               with Channel.Quota_exceeded _ -> bump () | _ -> ());
              try Channel.close ch with _ -> ())
            ();
          (* a garbage-ciphertext client: typed in-band error *)
          Thread.create
            (fun () ->
              let ch =
                Channel.connect ~crc:false ~resume:false ~host:"127.0.0.1" ~port ()
              in
              (try
                 (match
                    Channel.request ch (Message.Hello { flags = 0; spec = None })
                  with
                 | Message.Welcome _ ->
                   (match
                      Channel.request ch
                        (Message.Min_request
                           [| Ppst_bigint.Bigint.zero; Ppst_bigint.Bigint.of_int 1 |])
                    with
                   | _ -> ()
                   | exception Channel.Protocol_error _ -> bump ())
                 | _ -> ())
               with _ -> ());
              try Channel.close ch with _ -> ())
            ();
          (* a slowloris: cut by the watchdog *)
          Thread.create
            (fun () ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              (try
                 Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
                 ignore (Unix.write_substring fd "\x00\x00\x00\x32" 0 4);
                 ignore (Unix.write_substring fd "\x01" 0 1);
                 Thread.delay 1.0;
                 bump ()
               with _ -> ());
              try Unix.close fd with _ -> ())
            ();
        ]
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "every hostile was handled" 3 !hostile_done;
      Array.iteri
        (fun i r ->
          match r with
          | Error m -> Alcotest.fail (Printf.sprintf "honest client %d: %s" i m)
          | Ok d ->
            Alcotest.check eq_bi
              (Printf.sprintf "honest client %d distance undisturbed" i)
              ref_d d)
        honest;
      eventually "slowloris outcome never recorded" (fun () ->
          List.exists
            (fun (s : Server_loop.session) -> s.outcome = Server_loop.Slow_peer)
            (Server_loop.sessions loop)))

let () =
  Alcotest.run "overload"
    [
      ( "admission",
        [
          Alcotest.test_case "declare caps" `Quick test_admission_declare;
          Alcotest.test_case "declared m*n binds" `Quick
            test_admission_declared_budget;
          Alcotest.test_case "frame budgets" `Quick test_admission_frames;
          Alcotest.test_case "request pricing" `Quick test_cells_of_request;
        ] );
      ( "ratelimit",
        [
          Alcotest.test_case "refill math" `Quick test_ratelimit_refill;
          Alcotest.test_case "per-peer isolation" `Quick test_ratelimit_per_peer;
          Alcotest.test_case "bounded table eviction" `Quick
            test_ratelimit_eviction;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state transitions" `Quick test_breaker_transitions;
          Alcotest.test_case "streak reset and hint floor" `Quick
            test_breaker_streak_and_hint;
          Alcotest.test_case "short-circuits with_retry" `Quick
            test_breaker_in_with_retry;
        ] );
      ( "server",
        [
          Alcotest.test_case "quota rejects before crypto" `Quick
            test_quota_rejects_before_crypto;
          Alcotest.test_case "declared vs shipped mismatch" `Quick
            test_declared_vs_shipped_mismatch;
          Alcotest.test_case "garbage ciphertext typed" `Quick
            test_garbage_ciphertext_typed;
          Alcotest.test_case "crc without grant" `Quick test_crc_without_grant;
          Alcotest.test_case "resume without grant" `Quick
            test_resume_without_grant;
          Alcotest.test_case "slowloris cut" `Quick test_slowloris_cut;
          Alcotest.test_case "health probe" `Quick test_health_probe;
          Alcotest.test_case "shed watermark" `Quick test_shed_watermark;
          Alcotest.test_case "rate limit end to end" `Quick
            test_ratelimit_end_to_end;
          Alcotest.test_case "unsaturated limiting invisible" `Quick
            test_unsaturated_limiting_is_invisible;
          Alcotest.test_case "mixed workload" `Quick test_mixed_workload;
        ] );
    ]
