(* Tests for the bignum substrate: Bigint/Nat arithmetic, Montgomery
   exponentiation, modular inverses, primality.  Properties are checked
   with qcheck against ring axioms and division invariants; fixed vectors
   cross-check against independently computed values. *)

open Ppst_bigint

let bi = Bigint.of_string
let eq_bi = Alcotest.testable Bigint.pp Bigint.equal

(* --- generators -------------------------------------------------------- *)

(* Random Bigint of up to ~200 bits, signed, built from decimal digits so
   shrinking stays meaningful. *)
let gen_bigint =
  let open QCheck2.Gen in
  let* digits = int_range 1 60 in
  let* s = string_size ~gen:(char_range '0' '9') (return digits) in
  let* neg = bool in
  let v = Bigint.of_string s in
  return (if neg then Bigint.neg v else v)

let gen_positive =
  QCheck2.Gen.map Bigint.abs gen_bigint
  |> QCheck2.Gen.map (fun v -> if Bigint.is_zero v then Bigint.one else v)

let arb_bigint = gen_bigint
let arb_positive = gen_positive
let print_bi = Bigint.to_string

let qtest name ?(count = 500) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~print:print_bi ~count gen prop)

let qtest2 name ?(count = 500) g1 g2 prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count
       ~print:(fun (a, b) -> Printf.sprintf "(%s, %s)" (print_bi a) (print_bi b))
       (QCheck2.Gen.pair g1 g2)
       (fun (x, y) -> prop x y))

let qtest3 name ?(count = 300) g1 g2 g3 prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count
       ~print:(fun (a, b, c) ->
         Printf.sprintf "(%s, %s, %s)" (print_bi a) (print_bi b) (print_bi c))
       (QCheck2.Gen.triple g1 g2 g3)
       (fun (x, y, z) -> prop x y z))

(* --- unit tests: conversions ------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check (option int)) (string_of_int v) (Some v)
        (Bigint.to_int_opt (Bigint.of_int v)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 40 ]

let test_string_roundtrip_fixed () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Bigint.to_string (bi s)))
    [ "0"; "1"; "-1"; "123456789"; "-987654321012345678901234567890";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_hex_parse () =
  Alcotest.check eq_bi "0xff" (Bigint.of_int 255) (bi "0xff");
  Alcotest.check eq_bi "0xFF" (Bigint.of_int 255) (bi "0xFF");
  Alcotest.check eq_bi "-0x10" (Bigint.of_int (-16)) (bi "-0x10");
  Alcotest.check eq_bi "2^64"
    (bi "18446744073709551616")
    (bi "0x10000000000000000")

let test_hex_print () =
  Alcotest.(check string) "255" "0xff" (Bigint.to_string_hex (Bigint.of_int 255));
  Alcotest.(check string) "0" "0x0" (Bigint.to_string_hex Bigint.zero);
  Alcotest.(check string) "-16" "-0x10" (Bigint.to_string_hex (Bigint.of_int (-16)))

let test_of_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument "Bigint.of_string: bad digit")
        (fun () -> ignore (bi s)))
    [ "12a3"; "1.5" ];
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (bi ""));
  Alcotest.check_raises "sign only" (Invalid_argument "Bigint.of_string: sign only")
    (fun () -> ignore (bi "-"))

let test_underscores () =
  Alcotest.check eq_bi "1_000_000" (Bigint.of_int 1_000_000) (bi "1_000_000")

let test_bytes_roundtrip_fixed () =
  let v = bi "0x0123456789abcdef0123" in
  Alcotest.check eq_bi "bytes" v (Bigint.of_bytes_be (Bigint.to_bytes_be v));
  Alcotest.(check string) "zero bytes" "" (Bigint.to_bytes_be Bigint.zero);
  Alcotest.check eq_bi "leading zero bytes"
    (Bigint.of_int 1)
    (Bigint.of_bytes_be "\000\000\001")

(* --- unit tests: arithmetic fixed vectors ------------------------------ *)

let test_mul_fixed () =
  (* cross-checked with python3 *)
  Alcotest.check eq_bi "big product"
    (bi "121932631137021795226185032733622923332237463801111263526900")
    (Bigint.mul
       (bi "123456789012345678901234567890")
       (bi "987654321098765432109876543210"))

let test_karatsuba_crossover () =
  (* operands big enough to force the Karatsuba path (>= 32 limbs each =
     ~992 bits), checked against the schoolbook identity (a+1)(b+1) =
     ab + a + b + 1. *)
  let a = Bigint.pred (Bigint.shift_left Bigint.one 1500) in
  let b = Bigint.pred (Bigint.shift_left Bigint.one 1200) in
  let lhs = Bigint.mul (Bigint.succ a) (Bigint.succ b) in
  let rhs = Bigint.add (Bigint.add (Bigint.mul a b) (Bigint.add a b)) Bigint.one in
  Alcotest.check eq_bi "karatsuba identity" rhs lhs

let test_div_fixed () =
  let q, r = Bigint.divmod (bi "1000000000000000000000") (bi "7") in
  Alcotest.check eq_bi "q" (bi "142857142857142857142") q;
  Alcotest.check eq_bi "r" (bi "6") r

let test_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (Bigint.div Bigint.one Bigint.zero));
  Alcotest.check_raises "ediv0" Division_by_zero (fun () ->
      ignore (Bigint.ediv_rem Bigint.one Bigint.zero))

let test_truncated_division_signs () =
  (* same convention as native / and mod *)
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Alcotest.(check int) (Printf.sprintf "%d/%d q" a b) (a / b) (Bigint.to_int_exn q);
      Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b) (Bigint.to_int_exn r))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5) ]

let test_euclidean_division_signs () =
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.ediv_rem (Bigint.of_int a) (Bigint.of_int b) in
      let rv = Bigint.to_int_exn r in
      Alcotest.(check bool) (Printf.sprintf "0 <= r < |b| for %d %d" a b) true
        (rv >= 0 && rv < abs b);
      Alcotest.(check int) "reconstruct" a
        (Bigint.to_int_exn (Bigint.add (Bigint.mul q (Bigint.of_int b)) r)))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (-1, 3); (1, -3); (0, 7) ]

let test_pow () =
  Alcotest.check eq_bi "2^100"
    (bi "1267650600228229401496703205376")
    (Bigint.pow Bigint.two 100);
  Alcotest.check eq_bi "x^0" Bigint.one (Bigint.pow (bi "123") 0);
  Alcotest.check eq_bi "(-2)^3" (Bigint.of_int (-8)) (Bigint.pow (Bigint.of_int (-2)) 3);
  Alcotest.check_raises "neg exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (Bigint.pow Bigint.two (-1)))

let test_shifts () =
  Alcotest.check eq_bi "1 << 100 >> 100" Bigint.one
    (Bigint.shift_right (Bigint.shift_left Bigint.one 100) 100);
  Alcotest.check eq_bi "7 >> 1" (Bigint.of_int 3) (Bigint.shift_right (Bigint.of_int 7) 1);
  Alcotest.check eq_bi "-8 << 2" (Bigint.of_int (-32))
    (Bigint.shift_left (Bigint.of_int (-8)) 2);
  Alcotest.check eq_bi "5 >> 10" Bigint.zero (Bigint.shift_right (Bigint.of_int 5) 10)

let test_num_bits () =
  Alcotest.(check int) "0" 0 (Bigint.num_bits Bigint.zero);
  Alcotest.(check int) "1" 1 (Bigint.num_bits Bigint.one);
  Alcotest.(check int) "255" 8 (Bigint.num_bits (Bigint.of_int 255));
  Alcotest.(check int) "256" 9 (Bigint.num_bits (Bigint.of_int 256));
  Alcotest.(check int) "2^100" 101 (Bigint.num_bits (Bigint.shift_left Bigint.one 100))

let test_testbit () =
  let v = Bigint.of_int 0b1010 in
  Alcotest.(check bool) "bit0" false (Bigint.testbit v 0);
  Alcotest.(check bool) "bit1" true (Bigint.testbit v 1);
  Alcotest.(check bool) "bit3" true (Bigint.testbit v 3);
  Alcotest.(check bool) "bit77" false (Bigint.testbit v 77)

let test_compare_ordering () =
  let sorted = List.map bi [ "-100"; "-1"; "0"; "1"; "99999999999999999999" ] in
  let shuffled = List.rev sorted in
  Alcotest.(check (list string))
    "sort" (List.map Bigint.to_string sorted)
    (List.map Bigint.to_string (List.sort Bigint.compare shuffled))

(* --- property tests: ring axioms --------------------------------------- *)

let prop_add_commutative = qtest2 "add commutative" arb_bigint arb_bigint
    (fun a b -> Bigint.equal (Bigint.add a b) (Bigint.add b a))

let prop_add_associative = qtest3 "add associative" arb_bigint arb_bigint arb_bigint
    (fun a b c ->
      Bigint.equal (Bigint.add (Bigint.add a b) c) (Bigint.add a (Bigint.add b c)))

let prop_mul_commutative = qtest2 "mul commutative" arb_bigint arb_bigint
    (fun a b -> Bigint.equal (Bigint.mul a b) (Bigint.mul b a))

let prop_mul_associative = qtest3 "mul associative" arb_bigint arb_bigint arb_bigint
    (fun a b c ->
      Bigint.equal (Bigint.mul (Bigint.mul a b) c) (Bigint.mul a (Bigint.mul b c)))

let prop_distributive = qtest3 "distributive" arb_bigint arb_bigint arb_bigint
    (fun a b c ->
      Bigint.equal
        (Bigint.mul a (Bigint.add b c))
        (Bigint.add (Bigint.mul a b) (Bigint.mul a c)))

let prop_add_neg = qtest "a + (-a) = 0" arb_bigint (fun a ->
    Bigint.is_zero (Bigint.add a (Bigint.neg a)))

let prop_sub_add = qtest2 "(a - b) + b = a" arb_bigint arb_bigint (fun a b ->
    Bigint.equal a (Bigint.add (Bigint.sub a b) b))

let prop_divmod_invariant = qtest2 "a = q*b + r, |r| < |b|" arb_bigint arb_positive
    (fun a b ->
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0)

let prop_ediv_invariant = qtest2 "euclidean: 0 <= r < b" arb_bigint arb_positive
    (fun a b ->
      let q, r = Bigint.ediv_rem a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && not (Bigint.is_negative r)
      && Bigint.compare r b < 0)

let prop_string_roundtrip = qtest "decimal round-trip" arb_bigint (fun a ->
    Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

let prop_hex_roundtrip = qtest "hex round-trip" arb_bigint (fun a ->
    Bigint.equal a (Bigint.of_string (Bigint.to_string_hex a)))

let prop_bytes_roundtrip = qtest "bytes round-trip (magnitude)" arb_bigint (fun a ->
    Bigint.equal (Bigint.abs a) (Bigint.of_bytes_be (Bigint.to_bytes_be a)))

let prop_shift_mul = qtest "shift_left = mul by 2^s" arb_bigint (fun a ->
    List.for_all
      (fun s ->
        Bigint.equal (Bigint.shift_left a s) (Bigint.mul a (Bigint.pow Bigint.two s)))
      [ 0; 1; 7; 31; 32; 63; 100 ])

let prop_shift_div = qtest "shift_right on non-negative = div by 2^s" arb_positive
    (fun a ->
      List.for_all
        (fun s ->
          Bigint.equal (Bigint.shift_right a s) (Bigint.div a (Bigint.pow Bigint.two s)))
        [ 0; 1; 7; 31; 32; 63 ])

let prop_karatsuba_vs_school =
  (* products with operands above the Karatsuba threshold must match the
     small-operand path composed via the distributive law *)
  qtest2 "karatsuba consistent" ~count:50
    (
       (QCheck2.Gen.map
          (fun s -> Bigint.abs (Bigint.of_string ("1" ^ s)))
          QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (int_range 300 400))))
    (
       (QCheck2.Gen.map
          (fun s -> Bigint.abs (Bigint.of_string ("1" ^ s)))
          QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (int_range 300 400))))
    (fun a b ->
      (* (a + 1) * b = a*b + b exercises different splits *)
      Bigint.equal (Bigint.mul (Bigint.succ a) b) (Bigint.add (Bigint.mul a b) b))

(* --- modular arithmetic ------------------------------------------------ *)

let test_powmod_fixed () =
  Alcotest.check eq_bi "3^100 mod 7" (Bigint.of_int 4)
    (Modular.pow_mod (Bigint.of_int 3) (Bigint.of_int 100) (Bigint.of_int 7));
  (* cross-checked with python3: pow(123456789, 987654321, 1000000007) *)
  Alcotest.check eq_bi "big powmod" (bi "652541198")
    (Modular.pow_mod (bi "123456789") (bi "987654321") (bi "1000000007"))

let test_powmod_even_modulus () =
  Alcotest.check eq_bi "3^5 mod 16" (Bigint.of_int 3)
    (Modular.pow_mod (Bigint.of_int 3) (Bigint.of_int 5) (Bigint.of_int 16))

let test_powmod_edge_cases () =
  let m = bi "1000000007" in
  Alcotest.check eq_bi "x^0 = 1" Bigint.one (Modular.pow_mod (bi "12345") Bigint.zero m);
  Alcotest.check eq_bi "0^5 = 0" Bigint.zero (Modular.pow_mod Bigint.zero (bi "5") m);
  Alcotest.check eq_bi "x^1 = x" (bi "12345") (Modular.pow_mod (bi "12345") Bigint.one m);
  Alcotest.check eq_bi "mod 1 = 0" Bigint.zero (Modular.pow_mod (bi "5") (bi "5") Bigint.one)

let prop_montgomery_vs_naive =
  (* Montgomery exponentiation agrees with multiply-and-reduce. *)
  let gen_odd =
    QCheck2.Gen.map
      (fun v ->
        let v = Bigint.abs v in
        let v = if Bigint.is_even v then Bigint.succ v else v in
        if Bigint.compare v (Bigint.of_int 3) < 0 then Bigint.of_int 3 else v)
      gen_bigint
  in
  qtest3 "montgomery = naive powmod" ~count:200 arb_positive arb_positive
    gen_odd
    (fun b e m ->
      let naive =
        let b = ref (Bigint.erem b m) and acc = ref (Bigint.erem Bigint.one m) in
        for i = 0 to Bigint.num_bits e - 1 do
          if Bigint.testbit e i then acc := Bigint.erem (Bigint.mul !acc !b) m;
          b := Bigint.erem (Bigint.mul !b !b) m
        done;
        !acc
      in
      Bigint.equal naive (Modular.pow_mod b e m))

let prop_fermat =
  (* Fermat's little theorem with a fixed large prime *)
  let p = bi "170141183460469231731687303715884105727" (* 2^127 - 1, prime *) in
  qtest "fermat little theorem mod 2^127-1" ~count:50 arb_positive (fun a ->
      let a = Bigint.succ (Bigint.erem a (Bigint.pred p)) in
      Bigint.equal Bigint.one (Modular.pow_mod a (Bigint.pred p) p))

let test_gcd_lcm () =
  Alcotest.check eq_bi "gcd 12 18" (Bigint.of_int 6)
    (Modular.gcd (Bigint.of_int 12) (Bigint.of_int 18));
  Alcotest.check eq_bi "gcd 0 5" (Bigint.of_int 5) (Modular.gcd Bigint.zero (Bigint.of_int 5));
  Alcotest.check eq_bi "gcd negative" (Bigint.of_int 6)
    (Modular.gcd (Bigint.of_int (-12)) (Bigint.of_int 18));
  Alcotest.check eq_bi "lcm 4 6" (Bigint.of_int 12)
    (Modular.lcm (Bigint.of_int 4) (Bigint.of_int 6))

let prop_gcd_divides = qtest2 "gcd divides both" arb_positive arb_positive (fun a b ->
    let g = Modular.gcd a b in
    Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g))

let prop_egcd_bezout = qtest2 "egcd bezout identity" arb_positive arb_positive
    (fun a b ->
      let g, u, v = Modular.egcd a b in
      Bigint.equal g (Bigint.add (Bigint.mul u a) (Bigint.mul v b)))

let test_invert () =
  let m = bi "1000000007" in
  let a = bi "123456" in
  let inv = Modular.invert a m in
  Alcotest.check eq_bi "a * a^-1 = 1" Bigint.one (Bigint.erem (Bigint.mul a inv) m);
  Alcotest.check_raises "not invertible" Modular.Not_invertible (fun () ->
      ignore (Modular.invert (Bigint.of_int 6) (Bigint.of_int 9)))

let prop_invert = qtest "invert mod prime" ~count:200 arb_positive (fun a ->
    let p = bi "170141183460469231731687303715884105727" in
    let a = Bigint.succ (Bigint.erem a (Bigint.pred p)) in
    Bigint.equal Bigint.one (Bigint.erem (Bigint.mul a (Modular.invert a p)) p))

let test_modular_ctx () =
  let m = bi "0xffffffffffffffc5" (* odd 64-bit *) in
  let ctx = Modular.make_ctx m in
  Alcotest.check eq_bi "ctx modulus" m (Modular.ctx_modulus ctx);
  Alcotest.check eq_bi "pow_ctx = pow_mod"
    (Modular.pow_mod (bi "987654321") (bi "1234567") m)
    (Modular.pow_ctx ctx (bi "987654321") (bi "1234567"));
  Alcotest.check eq_bi "mul_ctx"
    (Bigint.erem (Bigint.mul (bi "111111111111") (bi "222222222222")) m)
    (Modular.mul_ctx ctx (bi "111111111111") (bi "222222222222"));
  Alcotest.check_raises "even modulus rejected"
    (Invalid_argument "Modular.make_ctx: even modulus") (fun () ->
      ignore (Modular.make_ctx (Bigint.of_int 16)))

(* Differential: the windowed Montgomery ladder against the naive
   fallback on every degenerate shape — zero exponent, modulus one, base
   a multiple of the modulus, tiny exponents (below the window width)
   and exponents with long zero runs (window restart boundaries). *)
let test_powmod_degenerate_differential () =
  let check b e m =
    Alcotest.check eq_bi
      (Printf.sprintf "%s^%s mod %s" (Bigint.to_string b) (Bigint.to_string e)
         (Bigint.to_string m))
      (Modular.pow_mod_naive b e m) (Modular.pow_mod b e m)
  in
  let m = bi "1000000007" in
  check (bi "12345") Bigint.zero m;
  check Bigint.zero Bigint.zero m;
  check (bi "5") (bi "5") Bigint.one;
  check (bi "5") Bigint.zero Bigint.one;
  check m (bi "7") m;
  check (Bigint.mul m (bi "4")) (bi "7") m;
  (* exponents below the window width take the plain-ladder path *)
  for e = 0 to 17 do
    check (bi "987654321") (Bigint.of_int e) m
  done;
  (* one bits separated by > window zero runs *)
  check (bi "3") (bi "0x100000001000000010000000100000001") m;
  check (bi "3") (bi "0x80000000000000000000000000000001") m

let prop_powmod_vs_naive_wide =
  (* wide inputs through the windowed path, odd modulus *)
  let gen_odd =
    QCheck2.Gen.map
      (fun v ->
        let v = Bigint.abs v in
        let v = if Bigint.is_even v then Bigint.succ v else v in
        if Bigint.compare v (Bigint.of_int 3) < 0 then Bigint.of_int 3 else v)
      gen_bigint
  in
  qtest3 "windowed = naive powmod (wide)" ~count:100 arb_positive arb_positive
    gen_odd
    (fun b e m -> Bigint.equal (Modular.pow_mod_naive b e m) (Modular.pow_mod b e m))

let prop_powmod_even_vs_reference =
  (* the even-modulus fallback against multiply-and-reduce *)
  let gen_even =
    QCheck2.Gen.map
      (fun v ->
        let v = Bigint.abs v in
        let v = if Bigint.is_even v then v else Bigint.succ v in
        if Bigint.compare v (Bigint.of_int 2) < 0 then Bigint.of_int 2 else v)
      gen_bigint
  in
  qtest3 "even-modulus powmod = reference" ~count:100 arb_positive arb_positive
    gen_even
    (fun b e m ->
      let reference =
        let b = ref (Bigint.erem b m) and acc = ref (Bigint.erem Bigint.one m) in
        for i = 0 to Bigint.num_bits e - 1 do
          if Bigint.testbit e i then acc := Bigint.erem (Bigint.mul !acc !b) m;
          b := Bigint.erem (Bigint.mul !b !b) m
        done;
        !acc
      in
      Bigint.equal reference (Modular.pow_mod b e m))

(* --- fixed-base tables -------------------------------------------------- *)

let test_fixed_base_matches_pow_mod () =
  let m = bi "0xf0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f1" (* odd 128-bit *) in
  let ctx = Modular.make_ctx m in
  let base = bi "987654321123456789" in
  let table = Fixed_base.create ctx ~max_bits:96 base in
  Alcotest.(check int) "max_bits" 96 (Fixed_base.max_bits table);
  let rng = Ppst_rng.Secure_rng.of_seed_string "fixed-base-vs-powmod" in
  for _ = 1 to 50 do
    let e = Ppst_rng.Secure_rng.bits rng 96 in
    Alcotest.check eq_bi "table = pow_mod" (Modular.pow_mod base e m)
      (Fixed_base.pow ctx table e)
  done;
  (* boundary exponents: 0, 1, all-ones at the table's full width *)
  Alcotest.check eq_bi "e = 0" Bigint.one (Fixed_base.pow ctx table Bigint.zero);
  Alcotest.check eq_bi "e = 1" (Bigint.erem base m)
    (Fixed_base.pow ctx table Bigint.one);
  let all_ones = Bigint.pred (Bigint.shift_left Bigint.one 96) in
  Alcotest.check eq_bi "e all ones" (Modular.pow_mod base all_ones m)
    (Fixed_base.pow ctx table all_ones)

let test_fixed_base_rejects () =
  let m = bi "1000000007" in
  let ctx = Modular.make_ctx m in
  let table = Fixed_base.create ctx ~max_bits:16 (bi "3") in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Fixed_base.pow_raw: exponent exceeds table size")
    (fun () -> ignore (Fixed_base.pow ctx table (Bigint.shift_left Bigint.one 16)));
  Alcotest.check_raises "negative"
    (Invalid_argument "Fixed_base.pow_raw: negative exponent") (fun () ->
      ignore (Fixed_base.pow ctx table Bigint.minus_one));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Fixed_base.create: window") (fun () ->
      ignore (Fixed_base.create ~window:0 ctx ~max_bits:16 (bi "3")))

let test_fixed_base_windows_agree () =
  let m = bi "0xffffffffffffffc5" in
  let ctx = Modular.make_ctx m in
  let base = bi "1234567" in
  let rng = Ppst_rng.Secure_rng.of_seed_string "fixed-base-windows" in
  let tables =
    List.map (fun w -> Fixed_base.create ~window:w ctx ~max_bits:64 base) [ 1; 3; 4; 8 ]
  in
  for _ = 1 to 25 do
    let e = Ppst_rng.Secure_rng.bits rng 64 in
    let expected = Modular.pow_mod base e m in
    List.iter
      (fun t -> Alcotest.check eq_bi "window-independent" expected (Fixed_base.pow ctx t e))
      tables
  done

(* --- primes ------------------------------------------------------------ *)

let test_small_primes () =
  Alcotest.(check int) "168 primes below 1000" 168 (Array.length Prime.small_primes);
  Alcotest.(check int) "first" 2 Prime.small_primes.(0);
  Alcotest.(check int) "last" 997 Prime.small_primes.(167)

let test_is_prime_small () =
  let primes = [ 2; 3; 5; 7; 11; 97; 101; 997; 1009; 7919 ] in
  let composites = [ 0; 1; 4; 9; 15; 91 (* 7*13 *); 561 (* Carmichael *); 1001; 7917 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p) true
        (Prime.is_probable_prime (Bigint.of_int p)))
    primes;
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c) false
        (Prime.is_probable_prime (Bigint.of_int c)))
    composites

let test_is_prime_large () =
  Alcotest.(check bool) "2^127 - 1 prime" true
    (Prime.is_probable_prime (bi "170141183460469231731687303715884105727"));
  Alcotest.(check bool) "2^128 + 1 composite" false
    (Prime.is_probable_prime (bi "340282366920938463463374607431768211457"));
  (* large Carmichael-style pseudoprime: 3215031751 = 151*751*28351 fools
     bases 2,3,5,7 in the Fermat test *)
  Alcotest.(check bool) "strong pseudoprime caught" false
    (Prime.is_probable_prime (bi "3215031751"))

let test_next_prime () =
  let np v = Bigint.to_int_exn (Prime.next_prime (Bigint.of_int v)) in
  Alcotest.(check int) "after 0" 2 (np 0);
  Alcotest.(check int) "after 2" 3 (np 2);
  Alcotest.(check int) "after 7" 11 (np 7);
  Alcotest.(check int) "after 89" 97 (np 89);
  Alcotest.(check int) "after 7918" 7919 (np 7918)

let test_random_prime_bits () =
  let rng = Splitmix.create 99 in
  let random_bits b = Splitmix.bits rng b in
  List.iter
    (fun bits ->
      let p = Prime.random_prime ~random_bits ~bits in
      Alcotest.(check int) (Printf.sprintf "%d bits" bits) bits (Bigint.num_bits p);
      Alcotest.(check bool) "prime" true (Prime.is_probable_prime p);
      Alcotest.(check bool) "second-highest bit set" true (Bigint.testbit p (bits - 2)))
    [ 16; 32; 48; 64; 128 ]

let test_random_safe_prime () =
  let rng = Splitmix.create 7 in
  let random_bits b = Splitmix.bits rng b in
  let p = Prime.random_safe_prime ~random_bits ~bits:24 in
  let q = Bigint.shift_right (Bigint.pred p) 1 in
  Alcotest.(check bool) "p prime" true (Prime.is_probable_prime p);
  Alcotest.(check bool) "(p-1)/2 prime" true (Prime.is_probable_prime q);
  Alcotest.(check int) "bits" 24 (Bigint.num_bits p)

let prop_prime_products_composite =
  QCheck_alcotest.to_alcotest
  @@ QCheck2.Test.make ~name:"product of two primes > 3 is composite" ~count:50
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 160)
    (fun i ->
      let p = Bigint.of_int Prime.small_primes.(i + 2) in
      let q = Bigint.of_int Prime.small_primes.(i + 3) in
      not (Prime.is_probable_prime (Bigint.mul p q)))

(* --- edge cases and division stress -------------------------------------- *)

let test_limb_boundary_values () =
  (* values at and around the base-2^31 limb boundary and the native-int
     boundary must round-trip through every representation *)
  let interesting =
    [ (1 lsl 31) - 1; 1 lsl 31; (1 lsl 31) + 1; (1 lsl 62) - 1;
      -((1 lsl 31) - 1); -(1 lsl 31) ]
  in
  List.iter
    (fun v ->
      let b = Bigint.of_int v in
      Alcotest.(check (option int)) (string_of_int v) (Some v) (Bigint.to_int_opt b);
      Alcotest.check eq_bi "via string" b (bi (Bigint.to_string b));
      Alcotest.check eq_bi "via hex" b (bi (Bigint.to_string_hex b)))
    interesting

let test_division_addback_branch () =
  (* Knuth D step D6 (the "add back" correction) triggers only for rare
     divisor/dividend patterns; this pair is constructed so the first
     quotient estimate overshoots: u = B^2 * (B/2) and v = (B/2)*B + 1
     with B = 2^31. *)
  let b31 = Bigint.shift_left Bigint.one 31 in
  let half = Bigint.shift_left Bigint.one 30 in
  let v = Bigint.add (Bigint.mul half b31) Bigint.one in
  let u = Bigint.mul (Bigint.mul b31 b31) half in
  let q, r = Bigint.divmod u v in
  Alcotest.check eq_bi "reconstruct" u (Bigint.add (Bigint.mul q v) r);
  Alcotest.(check bool) "remainder bound" true
    (Bigint.compare r v < 0 && not (Bigint.is_negative r));
  (* sweep a family of near-boundary divisors for the same property *)
  for offset = 1 to 50 do
    let v = Bigint.add (Bigint.mul half b31) (Bigint.of_int offset) in
    let u = Bigint.sub (Bigint.mul (Bigint.mul b31 b31) half) (Bigint.of_int offset) in
    let q, r = Bigint.divmod u v in
    Alcotest.check eq_bi "sweep reconstruct" u (Bigint.add (Bigint.mul q v) r);
    Alcotest.(check bool) "sweep remainder" true
      (Bigint.compare r v < 0 && not (Bigint.is_negative r))
  done

let test_division_equal_operands () =
  let v = bi "123456789012345678901234567890" in
  let q, r = Bigint.divmod v v in
  Alcotest.check eq_bi "q" Bigint.one q;
  Alcotest.check eq_bi "r" Bigint.zero r;
  let q2, r2 = Bigint.divmod v (Bigint.succ v) in
  Alcotest.check eq_bi "smaller dividend q" Bigint.zero q2;
  Alcotest.check eq_bi "smaller dividend r" v r2

let test_power_of_two_arithmetic () =
  (* exact powers of two stress normalization and shifting paths *)
  List.iter
    (fun bits ->
      let p = Bigint.shift_left Bigint.one bits in
      Alcotest.(check int) "num_bits" (bits + 1) (Bigint.num_bits p);
      let q, r = Bigint.divmod p Bigint.two in
      Alcotest.check eq_bi "p/2" (Bigint.shift_left Bigint.one (bits - 1)) q;
      Alcotest.check eq_bi "rem" Bigint.zero r;
      Alcotest.check eq_bi "p-1 + 1" p (Bigint.succ (Bigint.pred p)))
    [ 31; 32; 62; 63; 64; 93; 124; 1000 ]

let test_isqrt_fixed () =
  List.iter
    (fun (v, expected) ->
      Alcotest.check eq_bi (Printf.sprintf "isqrt %s" v) (bi expected)
        (Bigint.isqrt (bi v)))
    [ ("0", "0"); ("1", "1"); ("2", "1"); ("3", "1"); ("4", "2"); ("99", "9");
      ("100", "10"); ("101", "10");
      ("340282366920938463463374607431768211456", "18446744073709551616") ];
  Alcotest.check_raises "negative" (Invalid_argument "Bigint.isqrt: negative argument")
    (fun () -> ignore (Bigint.isqrt Bigint.minus_one))

let prop_isqrt = qtest "isqrt(n)^2 <= n < (isqrt(n)+1)^2" arb_positive (fun n ->
    let r = Bigint.isqrt n in
    Bigint.compare (Bigint.mul r r) n <= 0
    && Bigint.compare n (Bigint.mul (Bigint.succ r) (Bigint.succ r)) < 0)

let prop_isqrt_of_square = qtest "isqrt(n^2) = n" arb_positive (fun n ->
    Bigint.equal n (Bigint.isqrt (Bigint.mul n n)))

let prop_divmod_stress_wide =
  (* dividend much wider than divisor: exercises long quotient loops *)
  qtest2 "wide-dividend division invariant" ~count:200
    (QCheck2.Gen.map
       (fun s -> Bigint.abs (Bigint.of_string ("9" ^ s)))
       QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (int_range 150 250)))
    (QCheck2.Gen.map
       (fun s -> Bigint.abs (Bigint.of_string ("1" ^ s)))
       QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (int_range 1 20)))
    (fun a b ->
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare r b < 0
      && not (Bigint.is_negative r))

(* --- splitmix ----------------------------------------------------------- *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 1 and b = Splitmix.create 1 in
  for _ = 1 to 10 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_splitmix_bounds () =
  let rng = Splitmix.create 5 in
  for _ = 1 to 1000 do
    let v = Splitmix.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  let big = Splitmix.bits rng 100 in
  Alcotest.(check bool) "bit bound" true (Bigint.num_bits big <= 100)

let () =
  Alcotest.run "bigint"
    [
      ( "conversions",
        [
          Alcotest.test_case "of_int/to_int round-trip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "decimal strings" `Quick test_string_roundtrip_fixed;
          Alcotest.test_case "hex parse" `Quick test_hex_parse;
          Alcotest.test_case "hex print" `Quick test_hex_print;
          Alcotest.test_case "invalid strings rejected" `Quick test_of_string_invalid;
          Alcotest.test_case "underscore separators" `Quick test_underscores;
          Alcotest.test_case "bytes round-trip" `Quick test_bytes_roundtrip_fixed;
          prop_string_roundtrip;
          prop_hex_roundtrip;
          prop_bytes_roundtrip;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "fixed product" `Quick test_mul_fixed;
          Alcotest.test_case "karatsuba crossover" `Quick test_karatsuba_crossover;
          Alcotest.test_case "fixed division" `Quick test_div_fixed;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "truncated division signs" `Quick test_truncated_division_signs;
          Alcotest.test_case "euclidean division signs" `Quick test_euclidean_division_signs;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "testbit" `Quick test_testbit;
          Alcotest.test_case "ordering" `Quick test_compare_ordering;
          prop_add_commutative;
          prop_add_associative;
          prop_mul_commutative;
          prop_mul_associative;
          prop_distributive;
          prop_add_neg;
          prop_sub_add;
          prop_divmod_invariant;
          prop_ediv_invariant;
          prop_shift_mul;
          prop_shift_div;
          prop_karatsuba_vs_school;
        ] );
      ( "modular",
        [
          Alcotest.test_case "powmod fixed" `Quick test_powmod_fixed;
          Alcotest.test_case "powmod even modulus" `Quick test_powmod_even_modulus;
          Alcotest.test_case "powmod edge cases" `Quick test_powmod_edge_cases;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "invert" `Quick test_invert;
          Alcotest.test_case "montgomery context" `Quick test_modular_ctx;
          Alcotest.test_case "powmod degenerate differential" `Quick
            test_powmod_degenerate_differential;
          prop_montgomery_vs_naive;
          prop_powmod_vs_naive_wide;
          prop_powmod_even_vs_reference;
          prop_fermat;
          prop_gcd_divides;
          prop_egcd_bezout;
          prop_invert;
        ] );
      ( "fixed base",
        [
          Alcotest.test_case "table = pow_mod" `Quick test_fixed_base_matches_pow_mod;
          Alcotest.test_case "rejections" `Quick test_fixed_base_rejects;
          Alcotest.test_case "windows agree" `Quick test_fixed_base_windows_agree;
        ] );
      ( "primes",
        [
          Alcotest.test_case "small prime table" `Quick test_small_primes;
          Alcotest.test_case "small primality" `Quick test_is_prime_small;
          Alcotest.test_case "large primality" `Quick test_is_prime_large;
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "random primes have exact size" `Slow test_random_prime_bits;
          Alcotest.test_case "safe prime" `Slow test_random_safe_prime;
          prop_prime_products_composite;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "limb boundaries" `Quick test_limb_boundary_values;
          Alcotest.test_case "division add-back branch" `Quick
            test_division_addback_branch;
          Alcotest.test_case "equal operands" `Quick test_division_equal_operands;
          Alcotest.test_case "powers of two" `Quick test_power_of_two_arithmetic;
          Alcotest.test_case "isqrt fixed vectors" `Quick test_isqrt_fixed;
          prop_isqrt;
          prop_isqrt_of_square;
          prop_divmod_stress_wide;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
        ] );
    ]
