(* Integration tests: the full protocol over a real TCP socket with the
   server in a separate thread, key persistence through files, CSV-driven
   workloads end to end, and multi-session behaviour — i.e. everything
   the bin/ deployment relies on, without spawning processes. *)

open Ppst.Import
module Generate = Ppst_timeseries.Generate
module Csv = Ppst_timeseries.Csv

let next_port =
  let counter = ref 0 in
  fun () ->
    incr counter;
    18900 + !counter

let run_over_tcp ?(params = Ppst.Params.default) ~(distance : [ `Dtw | `Dfd ]) ~x ~y
    ~seed () =
  let port = next_port () in
  let server_rng = Secure_rng.of_seed_string (seed ^ "/server") in
  let max_value_y = Stdlib.max 1 (Series.max_abs_value y) in
  let server = Ppst.Server.create ~params ~rng:server_rng ~series:y ~max_value:max_value_y () in
  let server_thread =
    Thread.create
      (fun () -> Channel.serve_once ~port ~handler:(Ppst.Server.handle server) ())
      ()
  in
  Thread.delay 0.15;
  let channel = Channel.connect ~host:"127.0.0.1" ~port () in
  let client_rng = Secure_rng.of_seed_string (seed ^ "/client") in
  let max_value_x = Stdlib.max 1 (Series.max_abs_value x) in
  let client =
    Ppst.Client.connect ~params ~rng:client_rng ~series:x ~max_value:max_value_x
      ~distance:(distance :> Ppst.Client.distance_kind)
      channel
  in
  let dist =
    match distance with
    | `Dtw -> Ppst.Secure_dtw.run client
    | `Dfd -> Ppst.Secure_dfd.run client
  in
  Ppst.Client.finish client;
  Thread.join server_thread;
  (dist, Channel.stats channel)

let test_tcp_dtw_matches_plaintext () =
  let x = Generate.ecg_int ~seed:21 ~length:12 ~max_value:50 in
  let y = Generate.ecg_int ~seed:22 ~length:10 ~max_value:50 in
  let dist, stats = run_over_tcp ~distance:`Dtw ~x ~y ~seed:"tcp-dtw" () in
  Alcotest.(check int) "tcp = plaintext" (Distance.dtw_sq x y) (Bigint.to_int_exn dist);
  Alcotest.(check bool) "bytes flowed" true (Stats.total_bytes stats > 1000)

let test_tcp_dfd_matches_plaintext () =
  let x = Generate.signature_int ~seed:23 ~length:8 ~max_value:40 in
  let y = Generate.signature_int ~seed:24 ~length:7 ~max_value:40 in
  let dist, _ = run_over_tcp ~distance:`Dfd ~x ~y ~seed:"tcp-dfd" () in
  Alcotest.(check int) "tcp dfd = plaintext" (Distance.dfd_sq x y)
    (Bigint.to_int_exn dist)

let test_tcp_matches_local_channel () =
  (* byte-for-byte identical accounting between local and TCP transports *)
  let x = Series.of_list [ 5; 10; 15; 20 ] and y = Series.of_list [ 7; 14; 21 ] in
  let tcp_dist, tcp_stats = run_over_tcp ~distance:`Dtw ~x ~y ~seed:"parity" () in
  let local = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"parity-local" ~x ~y () in
  Alcotest.(check int) "same distance" (Bigint.to_int_exn local.Ppst.Protocol.distance)
    (Bigint.to_int_exn tcp_dist);
  (* values (not bytes: bigint payload sizes vary with randomness) *)
  Alcotest.(check int) "same value count"
    (Stats.total_values local.Ppst.Protocol.stats)
    (Stats.total_values tcp_stats);
  Alcotest.(check int) "same rounds"
    (Stats.rounds local.Ppst.Protocol.stats)
    (Stats.rounds tcp_stats)

let run_custom_over_tcp ~distance ~runner ~x ~y ~seed () =
  let port = next_port () in
  let server_rng = Secure_rng.of_seed_string (seed ^ "/server") in
  let maxv s = Stdlib.max 1 (Series.max_abs_value s) in
  let server = Ppst.Server.create ~rng:server_rng ~series:y ~max_value:(maxv y) () in
  let server_thread =
    Thread.create
      (fun () -> Channel.serve_once ~port ~handler:(Ppst.Server.handle server) ())
      ()
  in
  Thread.delay 0.15;
  let channel = Channel.connect ~host:"127.0.0.1" ~port () in
  let client =
    Ppst.Client.connect
      ~rng:(Secure_rng.of_seed_string (seed ^ "/client"))
      ~series:x ~max_value:(maxv x) ~distance channel
  in
  let result = runner client in
  Ppst.Client.finish client;
  Thread.join server_thread;
  result

let test_tcp_wavefront () =
  let x = Generate.ecg_int ~seed:25 ~length:10 ~max_value:50 in
  let y = Generate.ecg_int ~seed:26 ~length:11 ~max_value:50 in
  let dist =
    run_custom_over_tcp ~distance:`Dtw ~runner:Ppst.Secure_dtw_wavefront.run_dtw
      ~x ~y ~seed:"tcp-wavefront" ()
  in
  Alcotest.(check int) "wavefront over tcp" (Distance.dtw_sq x y)
    (Bigint.to_int_exn dist)

let test_tcp_erp () =
  let x = Generate.ecg_int ~seed:27 ~length:7 ~max_value:40 in
  let y = Generate.ecg_int ~seed:28 ~length:8 ~max_value:40 in
  let gap = [| 0 |] in
  let dist =
    run_custom_over_tcp ~distance:`Erp ~runner:(Ppst.Secure_erp.run ~gap) ~x ~y
      ~seed:"tcp-erp" ()
  in
  Alcotest.(check int) "erp over tcp" (Distance.erp_sq ~gap x y)
    (Bigint.to_int_exn dist)

let test_key_file_workflow () =
  (* keygen -> save -> load -> serve: what bin/ppst_keygen + ppst_server do *)
  let rng = Secure_rng.of_seed_string "keyfile-test" in
  let _pk, sk = Paillier.keygen ~bits:64 rng in
  let path = Filename.temp_file "ppst_key" ".key" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Paillier.private_key_to_string sk);
      close_out oc;
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let _pk', sk' = Paillier.private_key_of_string text in
      let y = Series.of_list [ 1; 2; 3 ] in
      let server =
        Ppst.Server.create_with_key ~sk:sk'
          ~rng:(Secure_rng.of_seed_string "keyfile-server")
          ~series:y ~max_value:10 ()
      in
      let channel = Channel.local (Ppst.Server.handle server) in
      let client =
        Ppst.Client.connect
          ~rng:(Secure_rng.of_seed_string "keyfile-client")
          ~series:(Series.of_list [ 2; 3; 4 ])
          ~max_value:10 ~distance:`Dtw channel
      in
      let dist = Ppst.Secure_dtw.run client in
      Ppst.Client.finish client;
      Alcotest.(check int) "distance with loaded key"
        (Distance.dtw_sq (Series.of_list [ 2; 3; 4 ]) y)
        (Bigint.to_int_exn dist))

let test_csv_workload_end_to_end () =
  (* datagen-style workflow: generate, persist, reload, compare securely *)
  let a = Generate.trajectory_int ~seed:31 ~length:9 ~max_value:60 in
  let b = Generate.trajectory_int ~seed:32 ~length:9 ~max_value:60 in
  let pa = Filename.temp_file "ppst_a" ".csv" and pb = Filename.temp_file "ppst_b" ".csv" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove pa;
      Sys.remove pb)
    (fun () ->
      Csv.save pa a;
      Csv.save pb b;
      let a' = Csv.load pa and b' = Csv.load pb in
      let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"csv-e2e" ~x:a' ~y:b' () in
      Alcotest.(check int) "reloaded data" (Distance.dtw_sq a b)
        (Ppst.Protocol.distance_int r))

let test_sequential_sessions_one_server () =
  (* the nearest-neighbour pattern: many client sessions against one
     long-lived server state (fresh channel each, same key) *)
  let server_rng = Secure_rng.of_seed_string "multi-session-server" in
  let y = Generate.ecg_int ~seed:41 ~length:10 ~max_value:50 in
  let server = Ppst.Server.create ~rng:server_rng ~series:y ~max_value:50 () in
  let queries =
    List.init 3 (fun i -> Generate.ecg_int ~seed:(50 + i) ~length:8 ~max_value:50)
  in
  List.iteri
    (fun i x ->
      let channel = Channel.local (Ppst.Server.handle server) in
      let client =
        Ppst.Client.connect
          ~rng:(Secure_rng.of_seed_string (Printf.sprintf "msc-%d" i))
          ~series:x ~max_value:50 ~distance:`Dtw channel
      in
      let dist = Ppst.Secure_dtw.run client in
      Ppst.Client.finish client;
      Alcotest.(check int)
        (Printf.sprintf "session %d" i)
        (Distance.dtw_sq x y) (Bigint.to_int_exn dist))
    queries;
  Alcotest.(check int) "three reveals counted" 3 (Ppst.Server.reveal_count server)

let test_both_distances_same_session_params () =
  (* DFD immediately after DTW on the same data, fresh sessions *)
  let x = Generate.ecg_int ~seed:61 ~length:9 ~max_value:40 in
  let y = Generate.ecg_int ~seed:62 ~length:11 ~max_value:40 in
  let dtw = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"both-1" ~x ~y () in
  let dfd = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dfd) ~seed:"both-2" ~x ~y () in
  Alcotest.(check int) "dtw" (Distance.dtw_sq x y) (Ppst.Protocol.distance_int dtw);
  Alcotest.(check int) "dfd" (Distance.dfd_sq x y) (Ppst.Protocol.distance_int dfd);
  Alcotest.(check bool) "dfd <= dtw" true
    (Ppst.Protocol.distance_int dfd <= Ppst.Protocol.distance_int dtw)

let test_secure_knn_agrees_with_plaintext () =
  (* the ecg_matching example's core claim, as a test *)
  let db = Array.init 4 (fun i -> Generate.ecg_int ~seed:(70 + i) ~length:8 ~max_value:50) in
  let query = Generate.ecg_int ~seed:71 ~length:8 ~max_value:50 in
  let secure_best = ref (-1) and secure_dist = ref max_int in
  Array.iteri
    (fun i record ->
      let r =
        Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:(Printf.sprintf "knn-%d" i) ~max_value:50
          ~x:query ~y:record ()
      in
      let d = Ppst.Protocol.distance_int r in
      if d < !secure_dist then begin
        secure_dist := d;
        secure_best := i
      end)
    db;
  let plain_best, plain_dist =
    Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dtw_sq ~query db
  in
  Alcotest.(check int) "same winner" plain_best !secure_best;
  Alcotest.(check int) "same distance" plain_dist !secure_dist

let () =
  Alcotest.run "integration"
    [
      ( "tcp",
        [
          Alcotest.test_case "secure DTW over sockets" `Quick test_tcp_dtw_matches_plaintext;
          Alcotest.test_case "secure DFD over sockets" `Quick test_tcp_dfd_matches_plaintext;
          Alcotest.test_case "tcp/local parity" `Quick test_tcp_matches_local_channel;
          Alcotest.test_case "wavefront over sockets" `Quick test_tcp_wavefront;
          Alcotest.test_case "ERP over sockets" `Quick test_tcp_erp;
        ] );
      ( "deployment workflows",
        [
          Alcotest.test_case "key file round trip" `Quick test_key_file_workflow;
          Alcotest.test_case "CSV workload" `Quick test_csv_workload_end_to_end;
          Alcotest.test_case "sequential sessions" `Quick test_sequential_sessions_one_server;
          Alcotest.test_case "both distances" `Quick test_both_distances_same_session_params;
          Alcotest.test_case "secure kNN = plaintext kNN" `Slow
            test_secure_knn_agrees_with_plaintext;
        ] );
    ]
