(* Tests for degraded-mode operation: wall budgets clamp every retry
   sleep and surface as typed expiry (fake clock, property-tested), the
   environmental fault injector produces the real errnos in the right
   operation slots, spool/catalog writes fail atomically under ENOSPC
   and torn renames, a server whose spool dies keeps serving sessions
   and reports health status 3 until a write lands again, a black-holed
   server costs at most the declared budget, and a catalog query skips
   a poisoned or budget-starved candidate while returning every other
   hit bit-identical to the unpoisoned reference. *)

open Ppst_transport
module Disk = Faults.Disk
module Budget = Retry.Budget
module Metrics = Ppst_telemetry.Metrics
module Series = Ppst_timeseries.Series
module Bigint = Ppst_bigint.Bigint

let qtest name count gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ppst-degraded-%d-%s-%d" (Unix.getpid ()) tag !counter)
    in
    rm_rf dir;
    dir

(* --- wall budgets on a fake clock --------------------------------------- *)

let test_budget_clock () =
  let t = ref 100.0 in
  let b = Budget.create ~now:(fun () -> !t) ~budget_s:2.0 () in
  Alcotest.(check (float 1e-9)) "budget_s" 2.0 (Budget.budget_s b);
  Alcotest.(check (float 1e-9)) "deadline" 102.0 (Budget.deadline b);
  Alcotest.(check (float 1e-9)) "remaining at birth" 2.0 (Budget.remaining_s b);
  Alcotest.(check bool) "fresh budget live" false (Budget.expired b);
  Budget.check b;
  t := 101.5;
  Alcotest.(check (float 1e-9)) "remaining mid-life" 0.5 (Budget.remaining_s b);
  t := 102.0;
  Alcotest.(check bool) "expired at deadline" true (Budget.expired b);
  Alcotest.(check (float 1e-9)) "remaining floors at 0" 0.0
    (Budget.remaining_s b);
  (match Budget.check b with
   | () -> Alcotest.fail "check passed an expired budget"
   | exception Budget.Exceeded { budget_s } ->
     Alcotest.(check (float 1e-9)) "Exceeded carries the budget" 2.0 budget_s);
  (match Budget.create ~budget_s:0.0 () with
   | _ -> Alcotest.fail "zero budget accepted"
   | exception Invalid_argument _ -> ())

let test_budget_sub () =
  let t = ref 0.0 in
  let parent = Budget.create ~now:(fun () -> !t) ~budget_s:10.0 () in
  let s1 = Budget.sub parent ~budget_s:3.0 in
  Alcotest.(check (float 1e-9)) "sub takes its own span" 3.0
    (Budget.remaining_s s1);
  t := 8.0;
  let s2 = Budget.sub parent ~budget_s:5.0 in
  Alcotest.(check (float 1e-9)) "sub clamped to the parent's remainder" 2.0
    (Budget.remaining_s s2);
  t := 12.0;
  let s3 = Budget.sub parent ~budget_s:1.0 in
  Alcotest.(check bool) "sub of a spent parent is born expired" true
    (Budget.expired s3)

(* with_retry under a budget: the backoff sleep is truncated to the
   remaining budget, so the loop never sleeps past the deadline no
   matter how the policy's delays land. *)
let prop_retry_sleep_clamp =
  qtest "retry sleeps never pass the budget deadline" 200
    QCheck2.Gen.(pair (float_range 0.05 5.0) (float_range 0.01 2.0))
    QCheck2.Print.(pair float float)
    (fun (budget_s, base_delay_s) ->
      let t = ref 0.0 in
      let b = Budget.create ~now:(fun () -> !t) ~budget_s () in
      let deadline = Budget.deadline b in
      let ok = ref true in
      let policy =
        { Retry.max_attempts = 50; base_delay_s;
          max_delay_s = base_delay_s *. 8.0; multiplier = 2.0 }
      in
      (match
         Retry.with_retry ~policy
           ~rng:(Ppst_rng.Secure_rng.of_seed_string "clamp")
           ~sleep:(fun d ->
             if !t +. d > deadline +. 1e-9 then ok := false;
             t := !t +. d)
           ~budget:b
           ~classify:(fun _ -> `Retry)
           (fun () -> failwith "always down")
       with
       | () -> ok := false (* f never succeeds *)
       | exception Budget.Exceeded _ -> ()
       | exception Retry.Exhausted _ -> ());
      !ok)

let test_retry_exhausted_wins () =
  (* max_attempts is checked before the budget: a single-attempt policy
     reports Exhausted even when the budget also ran out, so callers see
     the more specific verdict. *)
  let t = ref 0.0 in
  let b = Budget.create ~now:(fun () -> !t) ~budget_s:0.5 () in
  t := 10.0;
  match
    Retry.with_retry
      ~policy:{ Retry.default_policy with Retry.max_attempts = 1 }
      ~sleep:(fun _ -> ()) ~budget:b
      ~classify:(fun _ -> `Retry)
      (fun () -> failwith "always down")
  with
  | () -> Alcotest.fail "succeeded"
  | exception Retry.Exhausted { attempts; _ } ->
    Alcotest.(check int) "one attempt" 1 attempts
  | exception Budget.Exceeded _ ->
    Alcotest.fail "budget expiry outranked max_attempts"

(* --- the environmental fault injector ------------------------------------ *)

let test_disk_profile_roundtrip () =
  List.iter
    (fun p ->
      match Disk.profile_of_string (Disk.profile_to_string p) with
      | Ok p' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trips %s" (Disk.profile_to_string p))
          true (p = p')
      | Error e -> Alcotest.fail e)
    [ Disk.Off; Disk.Enospc_at 1; Disk.Enospc_every 3; Disk.Eio_fsync_at 2;
      Disk.Eio_fsync_every 4; Disk.Torn_rename_at 1; Disk.Emfile_at 5;
      Disk.Emfile_every 2 ];
  List.iter
    (fun s ->
      match Disk.profile_of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "parsed %S" s)
      | Error _ -> ())
    [ "bogus"; "enospc-at-0"; "emfile-every--1"; "enospc-at-" ]

let test_disk_injection_slots () =
  let d = Disk.create (Disk.Enospc_at 2) in
  Disk.check d Disk.Write;
  (match Disk.check d Disk.Write with
   | () -> Alcotest.fail "second write passed"
   | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Disk.check d Disk.Write;
  (* other operation kinds have independent counters *)
  Disk.check d Disk.Fsync;
  Disk.check d Disk.Rename;
  Alcotest.(check int) "one fault injected" 1 (Disk.injected d);
  let f = Disk.create (Disk.Eio_fsync_at 1) in
  Disk.check f Disk.Write;
  (match Disk.check f Disk.Fsync with
   | () -> Alcotest.fail "fsync passed"
   | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
  let e = Disk.create (Disk.Emfile_every 2) in
  Disk.check e Disk.Fd;
  (match Disk.check e Disk.Fd with
   | () -> Alcotest.fail "2nd fd op passed"
   | exception Unix.Unix_error (Unix.EMFILE, _, _) -> ());
  Disk.check e Disk.Fd;
  (match Disk.check e Disk.Fd with
   | () -> Alcotest.fail "4th fd op passed"
   | exception Unix.Unix_error (Unix.EMFILE, _, _) -> ());
  Alcotest.(check int) "every-2 injected twice" 2 (Disk.injected e)

(* --- spool and catalog store under disk faults --------------------------- *)

let test_spool_enospc () =
  let dir = fresh_dir "spool-enospc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let faults = Disk.create (Disk.Enospc_at 1) in
  let sp = Spool.create ~disk_faults:faults ~dir () in
  let key = "0123456789abcdef" in
  (match Spool.put sp ~key "v1" with
   | () -> Alcotest.fail "put survived ENOSPC"
   | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Alcotest.(check int) "fault was injected" 1 (Disk.injected faults);
  Alcotest.(check (option string)) "no torn value visible" None
    (Spool.find sp ~key);
  Alcotest.(check int) "spool still empty" 0 (Spool.size sp);
  (* the disk "recovers": the next put commits normally *)
  Spool.put sp ~key "v2";
  Alcotest.(check (option string)) "recovered put lands" (Some "v2")
    (Spool.find sp ~key)

let test_spool_torn_rename () =
  let dir = fresh_dir "spool-torn-rename" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let faults = Disk.create (Disk.Torn_rename_at 1) in
  let sp = Spool.create ~disk_faults:faults ~dir () in
  let key = "deadbeefcafef00d" in
  (match Spool.put sp ~key "half-committed" with
   | () -> Alcotest.fail "put survived the torn rename"
   | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
  (* the temp file was fully written before the rename died, but it is
     invisible to readers and the sweeper clears it *)
  Alcotest.(check (option string)) "torn write not served" None
    (Spool.find sp ~key);
  Alcotest.(check int) "not counted" 0 (Spool.size sp);
  let old = Unix.gettimeofday () -. 3600.0 in
  Array.iter
    (fun e -> Unix.utimes (Filename.concat dir e) old old)
    (Sys.readdir dir);
  ignore (Spool.sweep sp ~ttl_s:60.0);
  Alcotest.(check (array string)) "sweeper clears the orphan" [||]
    (Sys.readdir dir)

let test_spool_validate () =
  let dir = fresh_dir "spool-validate" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (match Spool.validate ~dir with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check (array string)) "probe cleaned up after itself" [||]
    (Sys.readdir dir);
  (* a plain file where the directory should be: fail fast with a reason *)
  let file = Filename.concat dir "not-a-dir" in
  let oc = open_out file in
  close_out oc;
  match Spool.validate ~dir:file with
  | Ok () -> Alcotest.fail "validated a regular file"
  | Error _ -> ()

let test_store_save_dir_enospc () =
  let dir = fresh_dir "store-enospc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Ppst_catalog.Store.create () in
  Ppst_catalog.Store.insert store ~id:"alpha" (Series.of_list [ 1; 2; 3 ]);
  Ppst_catalog.Store.insert store ~id:"beta" (Series.of_list [ 4; 5; 6 ]);
  (match
     Ppst_catalog.Store.save_dir
       ~disk_faults:(Disk.create (Disk.Enospc_at 1))
       store dir
   with
   | () -> Alcotest.fail "save_dir survived ENOSPC"
   | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Alcotest.(check bool) "no record half-committed" false
    (Sys.readdir dir
    |> Array.exists (fun f -> Filename.check_suffix f ".csv"));
  (* a clean retry commits everything *)
  Ppst_catalog.Store.save_dir store dir;
  let reloaded = Ppst_catalog.Store.load_dir dir in
  Alcotest.(check int) "retry round-trips" 2
    (Ppst_catalog.Store.length reloaded);
  Alcotest.(check bool) "alpha" true
    (Ppst_catalog.Store.mem reloaded ~id:"alpha");
  Alcotest.(check bool) "beta" true
    (Ppst_catalog.Store.mem reloaded ~id:"beta")

(* --- degraded health: spool death must not kill sessions ----------------- *)

let series_y = Series.of_list [ 2; 4; 6; 5; 7 ]
let series_x = Series.of_list [ 3; 4; 5; 4; 6; 7 ]
let max_value9 = 9

let make_loop ?(config = Server_loop.default_config) ~seed () =
  let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/keygen") in
  let _pk, sk =
    Ppst_paillier.Paillier.keygen ~bits:Ppst.Params.default.Ppst.Params.key_bits
      rng
  in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:
          (Ppst_rng.Secure_rng.of_seed_string
             (Printf.sprintf "%s/session-%d" seed id))
        ~series:series_y ~max_value:max_value9 ()
    in
    Server_loop.respond_only (Ppst.Server.handle server)
  in
  let loop = Server_loop.create ~config ~port:0 ~handler () in
  let runner = Thread.create (fun () -> Server_loop.run loop) () in
  (loop, runner)

let stop (loop, runner) =
  Server_loop.shutdown loop;
  Thread.join runner

let run_session ~port ~seed () =
  let rec attempt tries =
    let channel = Channel.connect ~host:"127.0.0.1" ~port () in
    match
      let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/client") in
      let client =
        Ppst.Client.connect ~rng ~series:series_x ~max_value:max_value9
          ~distance:`Dtw channel
      in
      let d = Ppst.Secure_dtw.run client in
      Ppst.Client.finish client;
      d
    with
    | d -> d
    | exception Channel.Busy _ when tries > 0 ->
      Channel.close channel;
      Thread.delay 0.05;
      attempt (tries - 1)
  in
  attempt 100

let probe_health ~port =
  let ch = Channel.connect ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Channel.close ch) @@ fun () ->
  match Channel.request ch Message.Health_req with
  | Message.Health_reply { status; _ } -> status
  | _ -> Alcotest.fail "expected Health_reply"

let test_degraded_health () =
  (* every spool write fails: the session itself must still complete
     with the exact secure distance, and health flips to 3 (degraded:
     serving, but crash-durability lost). *)
  let dir = fresh_dir "degraded-spool" in
  let faults = Disk.create (Disk.Enospc_every 1) in
  let config =
    { Server_loop.default_config with
      Server_loop.spool_dir = Some dir;
      disk_faults = Some faults }
  in
  let ((loop, _) as srv) = make_loop ~config ~seed:"degraded" () in
  Fun.protect
    ~finally:(fun () ->
      stop srv;
      rm_rf dir)
  @@ fun () ->
  let port = Server_loop.port loop in
  let clean = make_loop ~seed:"degraded" () in
  let reference =
    Fun.protect
      ~finally:(fun () -> stop clean)
      (fun () ->
        run_session ~port:(Server_loop.port (fst clean)) ~seed:"degraded" ())
  in
  let d = run_session ~port ~seed:"degraded" () in
  Alcotest.(check string) "distance identical to the undegraded run"
    (Bigint.to_string reference) (Bigint.to_string d);
  Alcotest.(check bool) "spool writes were attempted and failed" true
    (Server_loop.spool_write_failures loop > 0);
  Alcotest.(check bool) "loop reports degraded" true
    (Server_loop.is_degraded loop);
  Alcotest.(check int) "health status 3 = degraded" 3 (probe_health ~port)

let test_degraded_recovery () =
  (* only the first spool write fails: the degraded flag is sticky until
     a later write lands, so by session end health is back to ready. *)
  let dir = fresh_dir "recovered-spool" in
  let faults = Disk.create (Disk.Enospc_at 1) in
  let config =
    { Server_loop.default_config with
      Server_loop.spool_dir = Some dir;
      disk_faults = Some faults }
  in
  let ((loop, _) as srv) = make_loop ~config ~seed:"recovery" () in
  Fun.protect
    ~finally:(fun () ->
      stop srv;
      rm_rf dir)
  @@ fun () ->
  let port = Server_loop.port loop in
  let _d = run_session ~port ~seed:"recovery" () in
  Alcotest.(check int) "exactly the injected write failed" 1
    (Server_loop.spool_write_failures loop);
  Alcotest.(check bool) "a later write cleared the flag" false
    (Server_loop.is_degraded loop);
  Alcotest.(check int) "health status 0 = ready" 0 (probe_health ~port)

(* --- budget adherence against a black-holed server ----------------------- *)

let test_blackhole_budget () =
  (* a server that accepts and reads but never replies: the client gives
     up within its declared budget plus scheduling slack, and later
     requests on the spent channel fail instantly. *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 8;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop_flag = Atomic.make false in
  let accepter =
    Thread.create
      (fun () ->
        let conns = ref [] in
        while not (Atomic.get stop_flag) do
          match Unix.accept sock with
          | fd, _ -> conns := fd :: !conns (* hold open, never reply *)
          | exception Unix.Unix_error _ -> ()
        done;
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !conns)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop_flag true;
      (* wake the blocked accept with one last connection *)
      (try
         let w = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try
            Unix.connect w (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
          with Unix.Unix_error _ -> ());
         Unix.close w
       with Unix.Unix_error _ -> ());
      Thread.join accepter;
      try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let budget_s = 0.5 in
  let b = Budget.create ~budget_s () in
  let t0 = Unix.gettimeofday () in
  let ch = Channel.connect ~budget:b ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Channel.close ch) @@ fun () ->
  (match Channel.request ch Message.Health_req with
   | _ -> Alcotest.fail "black-holed server answered"
   | exception (Channel.Timeout | Budget.Exceeded _ | Channel.Stalled) -> ()
   | exception Channel.Connection_lost _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "gave up by budget + slack (took %.3f s)" elapsed)
    true
    (elapsed < budget_s +. 1.5);
  Alcotest.(check bool)
    (Printf.sprintf "did not give up before the budget (took %.3f s)" elapsed)
    true (elapsed >= 0.3);
  (* the budget is spent: no more wire traffic, instant typed failure *)
  let t1 = Unix.gettimeofday () in
  (match Channel.request ch Message.Health_req with
   | _ -> Alcotest.fail "request passed on a spent budget"
   | exception Budget.Exceeded _ -> ()
   | exception (Channel.Timeout | Channel.Connection_lost _) ->
     Alcotest.fail "spent budget reached the wire");
  Alcotest.(check bool) "expired-budget failure is immediate" true
    (Unix.gettimeofday () -. t1 < 0.2)

(* --- partial catalog results --------------------------------------------- *)

let store8 () =
  let store = Ppst_catalog.Store.create () in
  for i = 0 to 7 do
    Ppst_catalog.Store.insert store
      ~id:(Printf.sprintf "c%d" i)
      (Series.of_list
         (List.init 6 (fun j -> (((i * 5) + (j * 3)) mod 9) + 1)))
  done;
  store

let query_spec = Ppst.Protocol.spec `Euclidean

let hit_triples (r : Ppst.Query.report) =
  r.Ppst.Query.hits |> Array.to_list
  |> List.map (fun (h : Ppst.Query.hit) ->
      (h.index, h.id, Bigint.to_string h.distance))

let test_poisoned_candidate () =
  (* one candidate's exact run always draws a server error: the query
     returns the other 7 hits bit-identical to the unpoisoned reference
     and names exactly the poisoned candidate as incomplete. *)
  let store = store8 () in
  let poisoned = 3 in
  let reference, _ =
    Ppst.Query.run_top_k ~spec:query_spec ~seed:"poison-ref" ~max_value:10
      ~k:8 ~x:series_x ~store ()
  in
  Alcotest.(check int) "reference is complete" 8
    (Array.length reference.Ppst.Query.hits);
  let rng s = Ppst_rng.Secure_rng.of_seed_string ("poison/" ^ s) in
  let server =
    Ppst.Server.of_store ~rng:(rng "server") ~store ~max_value:10 ()
  in
  let channel =
    Channel.local (fun req ->
        match req with
        | Message.Select_request i when i = poisoned ->
          Message.Error_reply "poisoned candidate"
        | req -> Ppst.Server.handle server req)
  in
  let client =
    Ppst.Client.connect ~query:true ~rng:(rng "client") ~series:series_x
      ~max_value:10 ~distance:`Euclidean channel
  in
  let report = Ppst.Query.top_k ~spec:query_spec ~k:8 client in
  (try Ppst.Client.finish client with _ -> ());
  Alcotest.(check int) "seven hits" 7 (Array.length report.Ppst.Query.hits);
  Alcotest.(check int) "one incomplete" 1
    (Array.length report.Ppst.Query.incomplete);
  let inc = report.Ppst.Query.incomplete.(0) in
  Alcotest.(check int) "incomplete names the poisoned index" poisoned
    inc.Ppst.Query.index;
  Alcotest.(check string) "incomplete names the poisoned id" "c3"
    inc.Ppst.Query.id;
  (match inc.Ppst.Query.reason with
   | Ppst.Query.Server_error _ -> ()
   | r ->
     Alcotest.fail
       (Printf.sprintf "wrong reason: %s" (Ppst.Query.reason_to_string r)));
  Alcotest.(check (list (triple int string string)))
    "hits bit-identical to the reference minus the poisoned candidate"
    (hit_triples reference
    |> List.filter (fun (i, _, _) -> i <> poisoned))
    (hit_triples report)

let test_budget_expiry_marks_deadline () =
  (* a fake clock that jumps 1 s on every candidate switch: with a
     2.5 s whole-query budget the first two candidates resolve, the
     third dies mid-run on the budget check, and the rest are skipped
     without any wire traffic — all marked Deadline. *)
  let store = store8 () in
  let t = ref 0.0 in
  let budget = Budget.create ~now:(fun () -> !t) ~budget_s:2.5 () in
  let rng s = Ppst_rng.Secure_rng.of_seed_string ("expiry/" ^ s) in
  let server =
    Ppst.Server.of_store ~rng:(rng "server") ~store ~max_value:10 ()
  in
  let channel =
    Channel.local (fun req ->
        (match req with
         | Message.Select_request _ -> t := !t +. 1.0
         | _ -> ());
        Ppst.Server.handle server req)
  in
  let client =
    Ppst.Client.connect ~query:true ~rng:(rng "client") ~series:series_x
      ~max_value:10 ~distance:`Euclidean channel
  in
  let report = Ppst.Query.top_k ~spec:query_spec ~budget ~k:8 client in
  (try Ppst.Client.finish client with _ -> ());
  Alcotest.(check int) "two candidates resolved" 2
    (Array.length report.Ppst.Query.hits);
  Alcotest.(check int) "six incomplete" 6
    (Array.length report.Ppst.Query.incomplete);
  Alcotest.(check (list int)) "exactly the unreached candidates"
    [ 2; 3; 4; 5; 6; 7 ]
    (Array.to_list report.Ppst.Query.incomplete
    |> List.map (fun (c : Ppst.Query.incomplete) -> c.index));
  Array.iter
    (fun (c : Ppst.Query.incomplete) ->
      match c.reason with
      | Ppst.Query.Deadline -> ()
      | r ->
        Alcotest.fail
          (Printf.sprintf "candidate %d: wrong reason %s" c.index
             (Ppst.Query.reason_to_string r)))
    report.Ppst.Query.incomplete;
  Alcotest.(check int) "the mid-run death still counted as evaluated" 3
    report.Ppst.Query.evaluated

let test_candidate_budget_isolates_slow () =
  (* one black-holed candidate (its protocol rounds burn fake-clock
     seconds) under a per-candidate sub-budget: that candidate alone is
     dropped with Deadline; the other seven resolve normally. *)
  let store = store8 () in
  let slow = 5 in
  let t = ref 0.0 in
  let budget = Budget.create ~now:(fun () -> !t) ~budget_s:1000.0 () in
  let rng s = Ppst_rng.Secure_rng.of_seed_string ("slow/" ^ s) in
  let server =
    Ppst.Server.of_store ~rng:(rng "server") ~store ~max_value:10 ()
  in
  let selected = ref (-1) in
  let channel =
    Channel.local (fun req ->
        (match req with
         | Message.Select_request i -> selected := i
         | _ -> ());
        if !selected = slow then t := !t +. 1.0;
        Ppst.Server.handle server req)
  in
  let client =
    Ppst.Client.connect ~query:true ~rng:(rng "client") ~series:series_x
      ~max_value:10 ~distance:`Euclidean channel
  in
  let report =
    Ppst.Query.top_k ~spec:query_spec ~budget ~candidate_budget_s:0.5 ~k:8
      client
  in
  (try Ppst.Client.finish client with _ -> ());
  Alcotest.(check int) "seven hits" 7 (Array.length report.Ppst.Query.hits);
  Alcotest.(check int) "one incomplete" 1
    (Array.length report.Ppst.Query.incomplete);
  let inc = report.Ppst.Query.incomplete.(0) in
  Alcotest.(check int) "the slow candidate" slow inc.Ppst.Query.index;
  (match inc.Ppst.Query.reason with
   | Ppst.Query.Deadline -> ()
   | r ->
     Alcotest.fail
       (Printf.sprintf "wrong reason: %s" (Ppst.Query.reason_to_string r)));
  Alcotest.(check bool) "the other seven are all present" true
    (hit_triples report
    |> List.for_all (fun (i, _, _) -> i <> slow))

let () =
  Alcotest.run "degraded"
    [
      ( "budget",
        [
          Alcotest.test_case "fake-clock budget arithmetic" `Quick
            test_budget_clock;
          Alcotest.test_case "sub-budget clamps to the parent" `Quick
            test_budget_sub;
          prop_retry_sleep_clamp;
          Alcotest.test_case "Exhausted outranks an expired budget" `Quick
            test_retry_exhausted_wins;
        ] );
      ( "disk-faults",
        [
          Alcotest.test_case "profile strings round-trip" `Quick
            test_disk_profile_roundtrip;
          Alcotest.test_case "injection slots and errnos" `Quick
            test_disk_injection_slots;
          Alcotest.test_case "spool ENOSPC: atomic failure, clean retry"
            `Quick test_spool_enospc;
          Alcotest.test_case "spool torn rename: orphan swept, never served"
            `Quick test_spool_torn_rename;
          Alcotest.test_case "spool boot validation" `Quick
            test_spool_validate;
          Alcotest.test_case "catalog save_dir ENOSPC: nothing half-committed"
            `Quick test_store_save_dir_enospc;
        ] );
      ( "degraded-health",
        [
          Alcotest.test_case "spool death degrades health, not sessions"
            `Slow test_degraded_health;
          Alcotest.test_case "a later spool write clears degraded" `Slow
            test_degraded_recovery;
        ] );
      ( "budget-adherence",
        [
          Alcotest.test_case "black-holed server costs at most the budget"
            `Slow test_blackhole_budget;
        ] );
      ( "partial-results",
        [
          Alcotest.test_case "poisoned candidate: 7 exact hits + named skip"
            `Slow test_poisoned_candidate;
          Alcotest.test_case "whole-query budget expiry marks Deadline" `Slow
            test_budget_expiry_marks_deadline;
          Alcotest.test_case "candidate budget isolates one slow candidate"
            `Slow test_candidate_budget_isolates_slow;
        ] );
    ]
