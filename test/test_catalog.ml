(* Tests for the 1-vs-N catalog subsystem: the persistent series store,
   the gap-sum lower bound (plaintext soundness and the secure pruning
   round built on it), the query engine's no-false-dismissal guarantee,
   the generalized admission ledger, the new wire messages, and the
   closed-form cost model. *)

open Ppst.Import
module Store = Ppst_catalog.Store
module Lower_bound = Ppst_timeseries.Lower_bound
module Paa = Ppst_timeseries.Paa
module Admission = Ppst_transport.Admission

let qtest name ?(count = 15) gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

(* --- the store ------------------------------------------------------------- *)

let test_store_basics () =
  let t = Store.create () in
  Alcotest.(check int) "empty" 0 (Store.length t);
  Alcotest.(check (option int)) "no dimension" None (Store.dimension t);
  Store.insert t ~id:"b" (Series.of_list [ 1; 2; 3 ]);
  Store.insert t ~id:"a" (Series.of_list [ 4; 5 ]);
  Alcotest.(check (array string))
    "insertion order" [| "b"; "a" |] (Store.ids t);
  Alcotest.(check (array int)) "lengths" [| 3; 2 |] (Store.lengths t);
  Alcotest.(check (option int)) "dimension" (Some 1) (Store.dimension t);
  Alcotest.(check int) "max abs" 5 (Store.max_abs_value t);
  Alcotest.(check bool) "mem" true (Store.mem t ~id:"a");
  (match Store.find t ~id:"b" with
  | Some s -> Alcotest.(check int) "found series" 3 (Series.length s)
  | None -> Alcotest.fail "find b");
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Store.insert: duplicate id \"a\"") (fun () ->
      Store.insert t ~id:"a" (Series.of_list [ 9 ]));
  (try
     Store.insert t ~id:"c" (Series.create [| [| 1; 2 |] |]);
     Alcotest.fail "dimension mismatch admitted"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "evict" true (Store.evict t ~id:"b");
  Alcotest.(check bool) "evict gone" false (Store.evict t ~id:"b");
  Alcotest.(check (array string)) "order after evict" [| "a" |] (Store.ids t)

let test_store_dir_round_trip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppst-store-%d" (Unix.getpid ()))
  in
  let t = Store.generate ~seed:7 ~count:8 ~length:12 ~dim:2 ~max_value:50 in
  Store.save_dir t dir;
  let u = Store.load_dir dir in
  Alcotest.(check (array string)) "ids" (Store.ids t) (Store.ids u);
  Array.iteri
    (fun i r ->
      if not (Series.equal r (Store.records u).(i)) then
        Alcotest.fail (Printf.sprintf "record %d differs after round trip" i))
    (Store.records t);
  Array.iter
    (fun id -> Sys.remove (Filename.concat dir (id ^ ".csv")))
    (Store.ids t);
  Sys.rmdir dir

(* --- the gap-sum lower bound ----------------------------------------------- *)

let gen_equal_pair =
  let open QCheck2.Gen in
  let* d = int_range 1 2 in
  let* len = int_range 1 10 in
  let mk =
    let* data = list_size (return len) (list_size (return d) (int_range 0 30)) in
    return (Series.create (Array.of_list (List.map Array.of_list data)))
  in
  pair mk mk

let print_pair (x, y) =
  Format.asprintf "%a vs %a" Series.pp x Series.pp y

let test_segment_bounds_brute =
  let gen =
    QCheck2.Gen.(triple gen_equal_pair (int_range 1 10) (int_range 0 4))
  in
  qtest "segment bounds match brute force" ~count:50 gen
    ~print:(fun ((x, _), segments, band) ->
      Printf.sprintf "%s segments=%d band=%d"
        (Format.asprintf "%a" Series.pp x)
        segments band)
    (fun ((x, _), segments, band) ->
      let n = Series.length x and d = Series.dimension x in
      let segments = 1 + (segments mod n) in
      let lo, hi = Lower_bound.segment_bounds ~segments ~band:(Some band) x in
      let ok = ref true in
      for s = 0 to segments - 1 do
        let a = Paa.frame_bounds ~segments ~length:n s
        and b = Paa.frame_bounds ~segments ~length:n (s + 1) in
        let ja = Stdlib.max 0 (a - band)
        and jb = Stdlib.min (n - 1) (b - 1 + band) in
        for l = 0 to d - 1 do
          let mn = ref max_int and mx = ref min_int in
          for j = ja to jb do
            let v = (Series.get x j).(l) in
            if v < !mn then mn := v;
            if v > !mx then mx := v
          done;
          if lo.(s).(l) <> !mn || hi.(s).(l) <> !mx then ok := false
        done
      done;
      !ok)

(* G^2 <= c_f * D for every distance the pruning stage covers: a
   violation would mean a secure query could dismiss a true neighbour. *)
let test_gap_sum_soundness =
  let gen = QCheck2.Gen.(triple gen_equal_pair (int_range 1 8) (int_range 0 4)) in
  qtest "gap-sum soundness (no false dismissals)" ~count:100 gen
    ~print:(fun (p, segments, band) ->
      Printf.sprintf "%s segments=%d band=%d" (print_pair p) segments band)
    (fun ((x, y), segments, band) ->
      let m = Series.length x and d = Series.dimension x in
      let segments = 1 + (segments mod m) in
      let dm = d * m in
      let check ~band g =
        let g2 = g * g in
        let sound_dtw =
          match band with
          | None -> g2 <= dm * Distance.dtw_sq x y
          | Some 0 -> g2 <= dm * Distance.euclidean_sq x y
          | Some b -> (
            match Distance.dtw_sq_banded ~band:b x y with
            | None -> true
            | Some dist -> g2 <= dm * dist)
        in
        let sound_dfd =
          match band with
          | None -> g2 <= dm * dm * Distance.dfd_sq x y
          | Some 0 -> true
          | Some b -> (
            match Distance.dfd_sq_banded ~band:b x y with
            | None -> true
            | Some dist -> g2 <= dm * dm * dist)
        in
        sound_dtw && sound_dfd
      in
      check ~band:None (Lower_bound.gap_sum ~segments ~band:None x y)
      && check ~band:(Some band)
           (Lower_bound.gap_sum ~segments ~band:(Some band) x y)
      && check ~band:(Some 0) (Lower_bound.gap_sum ~segments ~band:(Some 0) x y))

(* --- the secure query engine ----------------------------------------------- *)

(* A catalog with near and far neighbours of the query series. *)
let test_catalog ~count ~length ~max_value =
  let store = Store.generate ~seed:11 ~count ~length ~dim:1 ~max_value in
  let base = (Store.records store).(0) in
  let x =
    Series.map (Array.map (fun v -> Stdlib.min max_value (v + 1))) base
  in
  (store, x)

let plaintext_top_k ~dist ~k store x =
  let hits =
    Array.to_list
      (Array.mapi (fun i y -> (i, dist x y)) (Store.records store))
  in
  let hits =
    List.sort
      (fun (i, a) (j, b) ->
        match compare (a : int) b with 0 -> compare i j | c -> c)
      hits
  in
  List.filteri (fun i _ -> i < k) hits

let check_top_k name spec ~dist ~seed (store, x) =
  let k = 3 in
  let report, _stats =
    Ppst.Query.run_top_k ~spec ~seed ~k ~x ~store ()
  in
  let expected = plaintext_top_k ~dist ~k store x in
  Alcotest.(check (list (pair int int)))
    (name ^ ": pruned top-k equals exhaustive top-k")
    expected
    (Array.to_list report.Ppst.Query.hits
    |> List.map (fun (h : Ppst.Query.hit) ->
           (h.Ppst.Query.index, Bigint.to_int_exn h.Ppst.Query.distance)));
  Alcotest.(check int)
    (name ^ ": accounting covers the catalog")
    report.Ppst.Query.total
    (report.Ppst.Query.evaluated + report.Ppst.Query.pruned)

let test_top_k_dtw () =
  check_top_k "dtw" (Ppst.Protocol.spec `Dtw) ~dist:Distance.dtw_sq
    ~seed:"cat-dtw"
    (test_catalog ~count:10 ~length:12 ~max_value:40)

let test_top_k_dtw_banded () =
  check_top_k "dtw banded"
    (Ppst.Protocol.spec ~band:2 `Dtw)
    ~dist:(fun x y -> Option.get (Distance.dtw_sq_banded ~band:2 x y))
    ~seed:"cat-band"
    (test_catalog ~count:10 ~length:12 ~max_value:40)

let test_top_k_dfd () =
  check_top_k "dfd" (Ppst.Protocol.spec `Dfd) ~dist:Distance.dfd_sq
    ~seed:"cat-dfd"
    (test_catalog ~count:10 ~length:12 ~max_value:40)

let test_top_k_euclidean () =
  check_top_k "euclidean" (Ppst.Protocol.spec `Euclidean)
    ~dist:Distance.euclidean_sq ~seed:"cat-euc"
    (test_catalog ~count:10 ~length:12 ~max_value:40)

(* Mixed-length catalogs: length mismatches are unprunable and must be
   evaluated exactly, never dismissed. *)
let test_top_k_mixed_lengths () =
  let store, x = test_catalog ~count:6 ~length:12 ~max_value:40 in
  Store.insert store ~id:"short"
    (Series.of_list [ 3; 1; 4; 1; 5 ]);
  check_top_k "mixed" (Ppst.Protocol.spec `Dtw) ~dist:Distance.dtw_sq
    ~seed:"cat-mixed" (store, x)

(* ERP has no gap-sum bound: every candidate goes straight to the exact
   stage. *)
let test_erp_never_prunes () =
  let store, x = test_catalog ~count:5 ~length:10 ~max_value:30 in
  let report, _ =
    Ppst.Query.run_top_k
      ~spec:(Ppst.Protocol.spec ~gap:[| 0 |] `Erp)
      ~seed:"cat-erp" ~k:2 ~x ~store ()
  in
  Alcotest.(check int) "erp prunes nothing" 0 report.Ppst.Query.pruned;
  Alcotest.(check int)
    "erp evaluates everything" (Store.length store)
    report.Ppst.Query.evaluated;
  let expected = plaintext_top_k ~dist:(Distance.erp_sq ~gap:[| 0 |]) ~k:2 store x in
  Alcotest.(check (list (pair int int)))
    "erp ranking" expected
    (Array.to_list report.Ppst.Query.hits
    |> List.map (fun (h : Ppst.Query.hit) ->
           (h.Ppst.Query.index, Bigint.to_int_exn h.Ppst.Query.distance)))

(* [within]: survivors and results must match the plaintext predictions
   exactly — both the radius filter and the discard rule. *)
let test_within_matches_prediction () =
  let store, x = test_catalog ~count:12 ~length:10 ~max_value:30 in
  let m = Series.length x and d = Series.dimension x in
  let records = Store.records store in
  let dists = Array.map (fun y -> Distance.dtw_sq x y) records in
  let sorted = Array.copy dists in
  Array.sort compare sorted;
  (* a radius that keeps some and drops some *)
  let radius = sorted.(Array.length sorted / 3) in
  let segments = Stdlib.min 8 m in
  let report, _ =
    Ppst.Query.run_within ~spec:(Ppst.Protocol.spec `Dtw) ~segments
      ~seed:"cat-within"
      ~radius:(Bigint.of_int radius)
      ~x ~store ()
  in
  let expected_hits =
    List.filter (fun (_, dist) -> dist <= radius)
      (Array.to_list (Array.mapi (fun i dist -> (i, dist)) dists))
    |> List.sort (fun (i, a) (j, b) ->
           match compare (a : int) b with 0 -> compare i j | c -> c)
  in
  Alcotest.(check (list (pair int int)))
    "within hits" expected_hits
    (Array.to_list report.Ppst.Query.hits
    |> List.map (fun (h : Ppst.Query.hit) ->
           (h.Ppst.Query.index, Bigint.to_int_exn h.Ppst.Query.distance)));
  (* discard rule: G >= tau_G + 1 with tau_G = isqrt(d*m*radius) *)
  let tau_g =
    Bigint.to_int_exn
      (Bigint.isqrt (Bigint.of_int (d * m * radius)))
  in
  let predicted_pruned =
    Array.fold_left
      (fun acc y ->
        if Lower_bound.gap_sum ~segments ~band:None x y >= tau_g + 1 then
          acc + 1
        else acc)
      0 records
  in
  Alcotest.(check int)
    "pruned set matches the plaintext rule" predicted_pruned
    report.Ppst.Query.pruned

let test_catalog_requires_capability () =
  let store, x = test_catalog ~count:3 ~length:8 ~max_value:20 in
  let rng s = Secure_rng.of_seed_string s in
  let server =
    Ppst.Server.of_store ~rng:(rng "cap-server") ~store ~max_value:20 ()
  in
  let channel = Channel.local (Ppst.Server.handle server) in
  (* query capability not offered: the catalog entry points must refuse *)
  let client =
    Ppst.Client.connect ~rng:(rng "cap-client") ~series:x ~max_value:20
      ~distance:`Dtw channel
  in
  Alcotest.(check bool)
    "capability not granted" false
    (Ppst.Client.catalog_capable client);
  (try
     ignore (Ppst.Client.catalog_list client);
     Alcotest.fail "catalog_list without the capability"
   with Channel.Protocol_error _ -> ());
  Ppst.Client.finish client

(* --- admission ------------------------------------------------------------- *)

let test_admission_declare_query () =
  let adm =
    Admission.create
      { Admission.unlimited with max_cells = Some 100 }
  in
  (match Admission.declare_query adm ~candidates:9 ~segments:5 with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "9x5 within budget");
  (* the allowance, not the configured cap, now binds charges *)
  (match
     Admission.charge_cells adm ~kind:`Max ~count:45 ~server_len:1000
   with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "45 instances within allowance");
  (match
     Admission.charge_cells adm ~kind:`Max ~count:10 ~server_len:1000
   with
  | Admission.Reject { quota; _ } ->
    Alcotest.(check string) "allowance quota name" "cells" quota
  | Admission.Admit -> Alcotest.fail "55 > 54 allowance admitted");
  (* over the configured cap at declaration time *)
  (match Admission.declare_query adm ~candidates:20 ~segments:5 with
  | Admission.Reject { limit; requested; _ } ->
    Alcotest.(check int) "cap" 100 limit;
    Alcotest.(check int) "requested cells" 120 requested
  | Admission.Admit -> Alcotest.fail "120 > 100 admitted");
  (* a fresh admitted query resets the ledger *)
  (match Admission.declare_query adm ~candidates:9 ~segments:5 with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "re-declare");
  (* reselect closes the allowance: back to the configured cap *)
  Admission.reselect adm;
  match Admission.charge_cells adm ~kind:`Max ~count:90 ~server_len:1000 with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "90 < 100 after reselect"

let test_admission_rejects_degenerate_query () =
  let adm = Admission.create Admission.unlimited in
  match Admission.declare_query adm ~candidates:0 ~segments:4 with
  | Admission.Reject _ -> ()
  | Admission.Admit -> Alcotest.fail "zero-candidate query admitted"

(* --- wire codecs ----------------------------------------------------------- *)

let round_trip msg =
  let encoded = Message.encode msg in
  let decoded = Message.decode encoded in
  Alcotest.(check string) "codec bytes" encoded (Message.encode decoded);
  decoded

let test_catalog_codecs () =
  (match round_trip (Message.Request Message.Catalog_list_request) with
  | Message.Request Message.Catalog_list_request -> ()
  | _ -> Alcotest.fail "catalog-list request");
  (match
     round_trip
       (Message.Request
          (Message.Query_submit
             { segments = 7; band = Some 3; indices = [| 0; 4; 17 |] }))
   with
  | Message.Request (Message.Query_submit { segments = 7; band = Some 3; indices }) ->
    Alcotest.(check (array int)) "indices" [| 0; 4; 17 |] indices
  | _ -> Alcotest.fail "query-submit");
  (match
     round_trip
       (Message.Request
          (Message.Query_submit { segments = 1; band = None; indices = [||] }))
   with
  | Message.Request (Message.Query_submit { band = None; _ }) -> ()
  | _ -> Alcotest.fail "query-submit unbanded");
  (match
     round_trip
       (Message.Request
          (Message.Verdict_request [| Bigint.of_int 42; Bigint.of_int 7 |]))
   with
  | Message.Request (Message.Verdict_request b) ->
    Alcotest.(check int) "verdict count" 2 (Array.length b)
  | _ -> Alcotest.fail "verdict request");
  (match
     round_trip
       (Message.Reply
          (Message.Catalog_list_reply
             { ids = [| "ecg-17"; "x" |]; lengths = [| 128; 5 |] }))
   with
  | Message.Reply (Message.Catalog_list_reply { ids; lengths }) ->
    Alcotest.(check (array string)) "ids" [| "ecg-17"; "x" |] ids;
    Alcotest.(check (array int)) "lengths" [| 128; 5 |] lengths
  | _ -> Alcotest.fail "catalog-list reply");
  (match
     round_trip
       (Message.Reply
          (Message.Query_sketch
             [|
               {
                 Message.lo = [| Bigint.of_int 1; Bigint.of_int 2 |];
                 hi = [| Bigint.of_int 3; Bigint.of_int 4 |];
               };
             |]))
   with
  | Message.Reply (Message.Query_sketch [| { Message.lo; hi } |]) ->
    Alcotest.(check int) "lo" 2 (Array.length lo);
    Alcotest.(check int) "hi" 2 (Array.length hi)
  | _ -> Alcotest.fail "query sketch");
  match
    round_trip (Message.Reply (Message.Verdict_reply [| true; false; true |]))
  with
  | Message.Reply (Message.Verdict_reply [| true; false; true |]) -> ()
  | _ -> Alcotest.fail "verdict reply"

let test_codec_rejects_forged_counts () =
  (* a forged element count must be rejected before any allocation *)
  let forged =
    let b = Buffer.create 16 in
    Buffer.add_char b '\x11';
    (* segments, band *)
    Buffer.add_string b "\x00\x00\x00\x04\x00\x00\x00\x00";
    (* count = huge, but no payload *)
    Buffer.add_string b "\xff\xff\xff\xff";
    Buffer.contents b
  in
  match Message.decode forged with
  | exception _ -> ()
  | Message.Request (Message.Query_submit _) ->
    Alcotest.fail "forged count decoded"
  | _ -> ()

(* --- the cost model -------------------------------------------------------- *)

(* An all-pruned query isolates the pruning stage on the wire: its live
   value accounting must equal the closed form exactly. *)
let test_expected_query_values () =
  let store = Store.create () in
  for i = 0 to 9 do
    Store.insert store
      ~id:(string_of_int i)
      (Series.create (Array.make 16 [| 9 |]))
  done;
  let x = Series.create (Array.make 16 [| 0 |]) in
  let drift_before = Ppst.Ledger.drift_events () in
  let report, stats =
    Ppst.Query.run_within ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"cost-query"
      ~radius:Bigint.zero ~x ~store ()
  in
  Alcotest.(check int) "all candidates pruned" 10 report.Ppst.Query.pruned;
  Alcotest.(check int) "no exact runs" 0 report.Ppst.Query.evaluated;
  let expected =
    Ppst.Protocol.expected_query_values ~params:Ppst.Params.default
      ~candidates:10 ~segments:8 ~d:1
  in
  (* pin the closed form itself: C*S*d*(k+5) + C with k = 10 *)
  Alcotest.(check int) "closed form" 1210 expected;
  Alcotest.(check int) "live accounting matches" expected
    (Stats.values_sent stats + Stats.values_received stats);
  (* the cost-attribution ledger checked the same run online: the most
     recent entry is this query, with zero drift *)
  (match Ppst.Ledger.recent () with
   | e :: _ ->
     Alcotest.(check bool) "query workload" true
       (e.Ppst.Ledger.workload = Ppst.Ledger.Query);
     Alcotest.(check int) "ledger predicted" expected
       e.Ppst.Ledger.predicted_values;
     Alcotest.(check int) "ledger actual" expected e.Ppst.Ledger.actual_values;
     Alcotest.(check int) "ledger drift" 0 (Ppst.Ledger.drift e)
   | [] -> Alcotest.fail "no ledger entry recorded for the query");
  Alcotest.(check int) "no drift events" drift_before
    (Ppst.Ledger.drift_events ())

(* The pairwise ledger hook fires on every full (unbanded, unpacked)
   DTW/DFD run; a seeded paper-example session must balance exactly. *)
let test_ledger_pairwise_zero_drift () =
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ]
  and y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let drift_before = Ppst.Ledger.drift_events () in
  let r =
    Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"ledger-pairwise"
      ~x ~y ()
  in
  let expected =
    Ppst.Protocol.expected_values_transferred ~params:Ppst.Params.default
      ~m:6 ~n:5 ~d:1 `Dtw
  in
  Alcotest.(check int) "closed form pinned" 272 expected;
  Alcotest.(check int) "wire accounting" expected
    (Stats.total_values r.Ppst.Protocol.stats);
  (match Ppst.Ledger.recent () with
   | e :: _ ->
     Alcotest.(check bool) "pairwise workload" true
       (e.Ppst.Ledger.workload = Ppst.Ledger.Pairwise);
     Alcotest.(check int) "ledger predicted" expected
       e.Ppst.Ledger.predicted_values;
     Alcotest.(check int) "ledger actual" expected e.Ppst.Ledger.actual_values
   | [] -> Alcotest.fail "no ledger entry recorded for the run");
  Alcotest.(check int) "no drift events" drift_before
    (Ppst.Ledger.drift_events ())

(* the pairwise formula must not have drifted (admission and cost model
   agree on the same layout) *)
let test_expected_pairwise_values_pinned () =
  Alcotest.(check int) "dtw 6x5 closed form" 272
    (Ppst.Protocol.expected_values_transferred ~params:Ppst.Params.default
       ~m:6 ~n:5 ~d:1 `Dtw)

let () =
  Alcotest.run "catalog"
    [
      ( "store",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "dir round trip" `Quick test_store_dir_round_trip;
        ] );
      ( "lower bound",
        [ test_segment_bounds_brute; test_gap_sum_soundness ] );
      ( "query",
        [
          Alcotest.test_case "top-k dtw" `Quick test_top_k_dtw;
          Alcotest.test_case "top-k dtw banded" `Quick test_top_k_dtw_banded;
          Alcotest.test_case "top-k dfd" `Quick test_top_k_dfd;
          Alcotest.test_case "top-k euclidean" `Quick test_top_k_euclidean;
          Alcotest.test_case "top-k mixed lengths" `Quick
            test_top_k_mixed_lengths;
          Alcotest.test_case "erp never prunes" `Quick test_erp_never_prunes;
          Alcotest.test_case "within matches prediction" `Quick
            test_within_matches_prediction;
          Alcotest.test_case "capability required" `Quick
            test_catalog_requires_capability;
        ] );
      ( "admission",
        [
          Alcotest.test_case "declare query" `Quick
            test_admission_declare_query;
          Alcotest.test_case "degenerate query" `Quick
            test_admission_rejects_degenerate_query;
        ] );
      ( "wire",
        [
          Alcotest.test_case "codec round trips" `Quick test_catalog_codecs;
          Alcotest.test_case "forged counts" `Quick
            test_codec_rejects_forged_counts;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "query values" `Quick test_expected_query_values;
          Alcotest.test_case "pairwise values pinned" `Quick
            test_expected_pairwise_values_pinned;
          Alcotest.test_case "pairwise ledger zero drift" `Quick
            test_ledger_pairwise_zero_drift;
        ] );
    ]
