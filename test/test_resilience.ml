(* Fault-tolerance suite: CRC-32 vectors and frame integrity, the retry
   policy, the TTL resume table, codec robustness under single-byte
   corruption, and the chaos matrix — a seeded 8x8 DTW run forced to
   disconnect at every frame index must still reveal the bit-identical
   distance through reconnect + resume. *)

open Ppst_transport
open Ppst_telemetry

let eq_bi = Alcotest.testable Ppst_bigint.Bigint.pp Ppst_bigint.Bigint.equal

(* --- crc32 ----------------------------------------------------------------- *)

let test_crc32_vectors () =
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.digest "");
  (* a second independent vector (RFC 3720 appendix style) *)
  Alcotest.(check int) "32 zero bytes" 0x190A55AD
    (Crc32.digest (String.make 32 '\000'))

let test_crc32_composition () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let n = String.length s in
  Alcotest.(check int) "update 0 s = digest s" (Crc32.digest s)
    (Crc32.update 0 s 0 n);
  (* streaming over an arbitrary split point equals the one-shot digest *)
  for cut = 0 to n do
    Alcotest.(check int)
      (Printf.sprintf "split at %d" cut)
      (Crc32.digest s)
      (Crc32.update (Crc32.update 0 s 0 cut) s cut (n - cut))
  done;
  (match Crc32.update 0 s 0 (n + 1) with
   | _ -> Alcotest.fail "out-of-range slice accepted"
   | exception Invalid_argument _ -> ())

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ()))
    (fun () -> f r w)

let test_crc_frame_roundtrip () =
  with_pipe (fun r w ->
      let payload = String.init 100 (fun i -> Char.chr (i * 7 land 0xff)) in
      Channel.write_frame ~crc:true w payload;
      match Channel.read_frame ~crc:true r with
      | Some got -> Alcotest.(check string) "trailer stripped" payload got
      | None -> Alcotest.fail "unexpected EOF")

let test_crc_detects_corruption () =
  (* corrupt one byte in flight (read-side injector): the frame must
     surface as a typed Frame_corrupt, never as codec input *)
  with_pipe (fun r w ->
      Channel.write_frame ~crc:true w "ciphertext bytes";
      let faults = Faults.create (Faults.Corrupt_every (1, 3)) in
      match Channel.read_frame ~crc:true ~faults r with
      | _ -> Alcotest.fail "corrupt frame accepted"
      | exception Channel.Frame_corrupt _ -> ())

let test_crc_covers_every_byte () =
  (* flipping any single byte of the encoded frame body must be caught *)
  let payload = "0123456789abcdef" in
  for k = 0 to String.length payload + 4 - 1 do
    with_pipe (fun r w ->
        Channel.write_frame ~crc:true w payload;
        let faults = Faults.create (Faults.Corrupt_every (1, k)) in
        match Channel.read_frame ~crc:true ~faults r with
        | _ -> Alcotest.fail (Printf.sprintf "flip at byte %d accepted" k)
        | exception Channel.Frame_corrupt _ -> ())
  done

(* --- retry policy ----------------------------------------------------------- *)

let seeded s = Ppst_rng.Secure_rng.of_seed_string s

let test_backoff_bounds () =
  let policy =
    { Retry.max_attempts = 10; base_delay_s = 0.1; max_delay_s = 1.0;
      multiplier = 2.0 }
  in
  let rng = seeded "backoff-bounds" in
  for attempt = 1 to 9 do
    let ceiling = Float.min 1.0 (0.1 *. (2.0 ** float_of_int (attempt - 1))) in
    for _ = 1 to 50 do
      let d = Retry.backoff_delay policy ~rng ~attempt ~hint:None in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [0, %g]" attempt ceiling)
        true
        (d >= 0.0 && d <= ceiling)
    done
  done

let test_backoff_deterministic () =
  let policy = Retry.default_policy in
  let sample seed =
    let rng = seeded seed in
    List.init 8 (fun i -> Retry.backoff_delay policy ~rng ~attempt:(i + 1) ~hint:None)
  in
  Alcotest.(check (list (float 0.0))) "same seed, same jitter"
    (sample "det") (sample "det")

let test_backoff_hint_floor () =
  let rng = seeded "hint" in
  let d =
    Retry.backoff_delay Retry.default_policy ~rng ~attempt:1 ~hint:(Some 5.0)
  in
  Alcotest.(check bool) "server hint floors the delay" true (d >= 5.0)

let test_with_retry_recovers () =
  let failures = ref 2 in
  let slept = ref [] in
  let tried = ref 0 in
  let v =
    Retry.with_retry
      ~policy:{ Retry.default_policy with max_attempts = 5 }
      ~rng:(seeded "recover")
      ~sleep:(fun d -> slept := d :: !slept)
      ~on_attempt:(fun ~attempt:_ ~delay_s:_ _ -> incr tried)
      ~classify:(function Failure _ -> `Retry | _ -> `Fail)
      (fun () ->
        if !failures > 0 then begin
          decr failures;
          failwith "transient"
        end
        else 42)
  in
  Alcotest.(check int) "eventually succeeds" 42 v;
  Alcotest.(check int) "two retries observed" 2 !tried;
  Alcotest.(check int) "slept once per retry" 2 (List.length !slept)

let test_with_retry_exhausts () =
  match
    Retry.with_retry
      ~policy:{ Retry.default_policy with max_attempts = 3 }
      ~rng:(seeded "exhaust")
      ~sleep:(fun _ -> ())
      ~classify:(fun _ -> `Retry)
      (fun () -> failwith "always down")
  with
  | _ -> Alcotest.fail "exhausted retry returned"
  | exception Retry.Exhausted { attempts; last = Failure _ } ->
    Alcotest.(check int) "all attempts spent" 3 attempts
  | exception Retry.Exhausted _ -> Alcotest.fail "wrong last exception"

let test_with_retry_fail_immediate () =
  let calls = ref 0 in
  match
    Retry.with_retry ~rng:(seeded "fail") ~sleep:(fun _ -> ())
      ~classify:(fun _ -> `Fail)
      (fun () ->
        incr calls;
        invalid_arg "fatal")
  with
  | _ -> Alcotest.fail "fatal error retried"
  | exception Invalid_argument _ -> Alcotest.(check int) "one call" 1 !calls

let test_with_retry_honours_retry_after () =
  let slept = ref [] in
  let failures = ref 1 in
  ignore
    (Retry.with_retry ~rng:(seeded "after")
       ~sleep:(fun d -> slept := d :: !slept)
       ~classify:(function Channel.Busy { retry_after_s } -> `Retry_after retry_after_s | _ -> `Fail)
       (fun () ->
         if !failures > 0 then begin
           decr failures;
           raise (Channel.Busy { retry_after_s = 1.5 })
         end
         else ()));
  match !slept with
  | [ d ] -> Alcotest.(check bool) "slept at least the hint" true (d >= 1.5)
  | _ -> Alcotest.fail "expected exactly one sleep"

(* --- faults ------------------------------------------------------------------ *)

let test_faults_deterministic_schedule () =
  let t = Faults.create (Faults.Drop_at 2) in
  Alcotest.(check bool) "frame 1 passes" true (Faults.next t = Faults.Pass);
  Alcotest.(check bool) "frame 2 drops" true (Faults.next t = Faults.Drop);
  Alcotest.(check bool) "frame 3 passes" true (Faults.next t = Faults.Pass);
  Alcotest.(check int) "frames counted" 3 (Faults.frames t);
  Alcotest.(check int) "one fault injected" 1 (Faults.injected t);
  let c = Faults.create (Faults.Corrupt_every (3, 5)) in
  for i = 1 to 9 do
    let a = Faults.next c in
    if i mod 3 = 0 then
      Alcotest.(check bool)
        (Printf.sprintf "frame %d corrupts byte 5" i)
        true
        (a = Faults.Corrupt 5)
    else
      Alcotest.(check bool) (Printf.sprintf "frame %d passes" i) true
        (a = Faults.Pass)
  done

let test_faults_profile_strings () =
  List.iter
    (fun s ->
      match Faults.profile_of_string s with
      | Ok p ->
        Alcotest.(check string) ("round trip " ^ s) s (Faults.profile_to_string p)
      | Error m -> Alcotest.fail (s ^ ": " ^ m))
    [ "off"; "drop-at-7"; "drop-every-64"; "short-every-9"; "dup-every-12" ];
  (match Faults.profile_of_string "drop-every-0" with
   | Ok _ -> Alcotest.fail "zero period accepted"
   | Error _ -> ());
  (match Faults.profile_of_string "gibberish" with
   | Ok _ -> Alcotest.fail "gibberish accepted"
   | Error _ -> ())

(* --- resume table ------------------------------------------------------------ *)

let test_resume_table_ttl () =
  let now = ref 0.0 in
  let t = Resume_table.create ~now:(fun () -> !now) ~capacity:8 ~ttl_s:10.0 () in
  Resume_table.put t "alpha" 1;
  Resume_table.put t "beta" 2;
  Alcotest.(check int) "two parked" 2 (Resume_table.size t);
  Alcotest.(check bool) "alpha taken" true (Resume_table.take t "alpha" = Some 1);
  Alcotest.(check bool) "take is once" true (Resume_table.take t "alpha" = None);
  now := 10.5;
  Alcotest.(check bool) "beta expired" true (Resume_table.take t "beta" = None);
  Alcotest.(check int) "expiry counted" 1 (Resume_table.expired_total t);
  Alcotest.(check int) "table empty" 0 (Resume_table.size t)

let test_resume_table_capacity () =
  let now = ref 0.0 in
  let t = Resume_table.create ~now:(fun () -> !now) ~capacity:2 ~ttl_s:100.0 () in
  Resume_table.put t "oldest" 1;
  now := 1.0;
  Resume_table.put t "middle" 2;
  now := 2.0;
  (* at capacity: the entry closest to expiry (oldest) must make room *)
  Resume_table.put t "newest" 3;
  Alcotest.(check int) "bounded" 2 (Resume_table.size t);
  Alcotest.(check int) "one eviction" 1 (Resume_table.evicted_total t);
  Alcotest.(check bool) "oldest evicted" true (Resume_table.take t "oldest" = None);
  Alcotest.(check bool) "middle kept" true (Resume_table.take t "middle" = Some 2);
  Alcotest.(check bool) "newest kept" true (Resume_table.take t "newest" = Some 3)

let test_resume_table_sweep_and_validation () =
  let now = ref 0.0 in
  let t = Resume_table.create ~now:(fun () -> !now) ~capacity:4 ~ttl_s:5.0 () in
  Resume_table.put t "a" 1;
  Resume_table.put t "b" 2;
  now := 6.0;
  Alcotest.(check int) "sweep drops both" 2 (Resume_table.sweep t);
  Alcotest.(check int) "empty after sweep" 0 (Resume_table.size t);
  (match Resume_table.create ~capacity:0 ~ttl_s:1.0 () with
   | _ -> Alcotest.fail "capacity 0 accepted"
   | exception Invalid_argument _ -> ());
  (match Resume_table.create ~capacity:1 ~ttl_s:0.0 () with
   | _ -> Alcotest.fail "zero ttl accepted"
   | exception Invalid_argument _ -> ())

(* --- codec corruption fuzz --------------------------------------------------- *)

let fuzz_messages =
  let b = Ppst_bigint.Bigint.of_string in
  [
    Message.Request (Message.Hello { flags = 0; spec = None });
    Message.Request
      (Message.Hello { flags = Message.flag_crc32 lor Message.flag_resume; spec = None });
    Message.Request Message.Phase1_request;
    Message.Request (Message.Min_request [| b "1"; b "22"; b "333" |]);
    Message.Request (Message.Max_request [| b "987654321987654321" |]);
    Message.Request (Message.Reveal_request (b "31337"));
    Message.Request Message.Catalog_request;
    Message.Request (Message.Select_request 7);
    Message.Request Message.Stats_req;
    Message.Request Message.Bye;
    Message.Request
      (Message.Resume { token = "0123456789abcdef"; client_rounds = 9; flags = 3 });
    Message.Reply
      (Message.Welcome
         { n = b "13497220662202513373"; key_bits = 64; series_length = 8;
           dimension = 1; max_value = 100;
           flags = Message.flag_crc32 lor Message.flag_resume;
           resume_token = String.init 16 (fun i -> Char.chr (i lxor 0x5a)) });
    Message.Reply
      (Message.Phase1_reply
         [| { Message.sum_sq = b "11"; coords = [| b "1"; b "2" |] } |]);
    Message.Reply (Message.Cipher_reply (b "424242424242"));
    Message.Reply (Message.Reveal_reply (b "3"));
    Message.Reply (Message.Catalog_reply [| 10; 20; 30 |]);
    Message.Reply (Message.Select_ack 2);
    Message.Reply (Message.Bye_ack { server_seconds = 1.25 });
    Message.Reply (Message.Busy { retry_after_s = 2.5 });
    Message.Reply (Message.Stats_reply "active 1\n");
    Message.Reply (Message.Error_reply "something went wrong");
    Message.Reply
      (Message.Resume_ack { server_rounds = 10; reply = "\x81abc"; flags = 3 });
    Message.Reply (Message.Resume_reject { reason = "expired" });
  ]

let test_codec_single_byte_flips () =
  (* every single-byte corruption of every message tag either decodes
     (the flip landed somewhere representable) or raises the typed
     Wire.Malformed — never Invalid_argument, Failure or a crash.  This
     is the layer beneath CRC: even when integrity checking is off
     (old peer), corruption cannot reach Paillier.decrypt as garbage
     through an uncaught exception path. *)
  List.iter
    (fun msg ->
      let encoded = Message.encode msg in
      for i = 0 to String.length encoded - 1 do
        List.iter
          (fun mask ->
            let mutated = Bytes.of_string encoded in
            Bytes.set mutated i
              (Char.chr (Char.code (Bytes.get mutated i) lxor mask));
            let mutated = Bytes.to_string mutated in
            if not (String.equal mutated encoded) then
              match Message.decode mutated with
              | _ -> ()
              | exception Wire.Malformed _ -> ()
              | exception e ->
                Alcotest.fail
                  (Printf.sprintf "%s: flip 0x%02x at byte %d escaped as %s"
                     (Message.describe msg) mask i (Printexc.to_string e)))
          [ 0x01; 0x80; 0xFF ]
      done)
    fuzz_messages

(* --- chaos: disconnect at every frame index ---------------------------------- *)

let series_y = Ppst_timeseries.Series.of_list [ 2; 4; 6; 5; 7; 3; 8; 1 ]
let series_x = Ppst_timeseries.Series.of_list [ 3; 4; 5; 4; 6; 7; 2; 6 ]
let max_value = 9

let make_loop ?(config = Server_loop.default_config) ?clock ?on_session_end
    ~seed () =
  let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/keygen") in
  let _pk, sk =
    Ppst_paillier.Paillier.keygen ~bits:Ppst.Params.default.Ppst.Params.key_bits
      rng
  in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:
          (Ppst_rng.Secure_rng.of_seed_string
             (Printf.sprintf "%s/session-%d" seed id))
        ~series:series_y ~max_value ()
    in
    Ppst.Server.handle server
  in
  let loop =
    Server_loop.create ~config ?clock ?on_session_end ~port:0
      ~handler:(fun ~id ~peer -> Server_loop.respond_only (handler ~id ~peer)) ()
  in
  let runner = Thread.create (fun () -> Server_loop.run loop) () in
  (loop, runner)

let stop (loop, runner) =
  Server_loop.shutdown loop;
  Thread.join runner

(* Fast retry policy for tests: same shape, milliseconds not seconds. *)
let fast_policy =
  { Retry.max_attempts = 10; base_delay_s = 0.002; max_delay_s = 0.02;
    multiplier = 2.0 }

(* One full secure-DTW session against [port] with [faults] installed in
   the client's frame path.  A fault that lands before the resume token
   exists (the Hello exchange itself) is unrecoverable by design: the
   client restarts the whole session — with the same seed, so the
   transcript it replays is the same one.  The injector keeps its frame
   counter across restarts, keeping the schedule deterministic. *)
let run_chaos_client ~port ~seed ?faults () =
  let rec attempt tries =
    let channel =
      Channel.connect ~retry:fast_policy
        ~rng:(seeded (seed ^ "/jitter"))
        ?faults ~host:"127.0.0.1" ~port ()
    in
    match
      let rng = seeded (seed ^ "/client") in
      let client =
        Ppst.Client.connect ~rng ~series:series_x ~max_value ~distance:`Dtw
          channel
      in
      let d = Ppst.Secure_dtw.run client in
      Ppst.Client.finish client;
      d
    with
    | d -> d
    | exception
        (( Channel.Connection_lost _ | Channel.Frame_corrupt _
         | Channel.Resume_rejected _ | Channel.Busy _
         | Retry.Exhausted _ ) as e) ->
      Channel.close channel;
      if tries = 0 then raise e
      else begin
        Thread.delay 0.01;
        attempt (tries - 1)
      end
  in
  attempt 20

let test_chaos_drop_at_every_frame () =
  let t = make_loop ~seed:"chaos" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* clean run: the reference distance, and the frame count that
         bounds the chaos matrix *)
      let probe = Faults.create Faults.Off in
      let reference = run_chaos_client ~port ~seed:"baseline" ~faults:probe () in
      let frames = Faults.frames probe in
      Alcotest.(check bool) "clean run exchanged frames" true (frames > 4);
      let lost0 = Metrics.counter_value (Metrics.counter "transport.connection.lost") in
      let resumed0 = Metrics.counter_value (Metrics.counter "transport.resume.ok") in
      let accepted0 = Metrics.counter_value (Metrics.counter "server.resume.accepted") in
      (* the matrix: kill the connection at every frame index in turn *)
      for k = 1 to frames do
        let faults = Faults.create (Faults.Drop_at k) in
        let d = run_chaos_client ~port ~seed:(Printf.sprintf "drop-%d" k) ~faults () in
        Alcotest.check eq_bi
          (Printf.sprintf "distance identical with drop at frame %d" k)
          reference d
      done;
      let lost = Metrics.counter_value (Metrics.counter "transport.connection.lost") in
      let resumed = Metrics.counter_value (Metrics.counter "transport.resume.ok") in
      let accepted = Metrics.counter_value (Metrics.counter "server.resume.accepted") in
      Alcotest.(check bool) "connection losses recorded" true (lost > lost0);
      Alcotest.(check bool) "client resumes recorded" true (resumed > resumed0);
      Alcotest.(check bool) "server resume grants recorded" true
        (accepted > accepted0);
      (* the same counters are visible to a remote operator via Stats_req *)
      let ch = Channel.connect ~host:"127.0.0.1" ~port () in
      Fun.protect ~finally:(fun () -> Channel.close ch)
        (fun () ->
          match Channel.request ch Message.Stats_req with
          | Message.Stats_reply text ->
            let has needle =
              let nl = String.length needle and tl = String.length text in
              let rec scan i =
                i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
              in
              scan 0
            in
            Alcotest.(check bool) "resume table section" true
              (has "# resume table");
            Alcotest.(check bool) "resume counters exposed" true
              (has "transport.resume");
            Alcotest.(check bool) "crc counters exposed" true
              (has "transport.crc")
          | _ -> Alcotest.fail "no stats reply"))

let test_chaos_corruption_recovered () =
  (* periodic in-flight corruption: CRC detects it, resume repairs it,
     and the distance still comes out bit-identical *)
  let t = make_loop ~seed:"chaos-crc" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let reference = run_chaos_client ~port ~seed:"crc-baseline" () in
      let crc0 = Metrics.counter_value (Metrics.counter "transport.crc.failures") in
      (* frame 7 is safely past the plain-text Hello/Welcome exchange *)
      let faults = Faults.create (Faults.Corrupt_every (7, 2)) in
      let d = run_chaos_client ~port ~seed:"crc-chaos" ~faults () in
      Alcotest.check eq_bi "distance identical under corruption" reference d;
      Alcotest.(check bool) "crc failures recorded" true
        (Metrics.counter_value (Metrics.counter "transport.crc.failures") > crc0))

let test_connection_lost_without_resume () =
  (* satellite: with resume declined, a mid-session drop surfaces as the
     typed Connection_lost (not a raw Unix_error) and is accounted *)
  let t = make_loop ~seed:"no-resume" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let faults = Faults.create (Faults.Drop_at 3) in
      let ch =
        Channel.connect ~crc:false ~resume:false ~faults ~host:"127.0.0.1"
          ~port ()
      in
      (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome { flags; resume_token; _ } ->
         Alcotest.(check int) "nothing granted to a flagless hello" 0 flags;
         Alcotest.(check string) "no token" "" resume_token
       | _ -> Alcotest.fail "Hello failed");
      (match Channel.request ch Message.Phase1_request with
       | _ -> Alcotest.fail "dropped connection answered"
       | exception Channel.Connection_lost _ -> ());
      Alcotest.(check int) "failure accounted" 1
        (Stats.failures (Channel.stats ch));
      Channel.close ch)

(* --- resume endpoint: bogus and expired tokens ------------------------------- *)

(* Hand-rolled single frames over a raw socket: the test speaks the wire
   format directly so it can present tokens the channel layer never
   would. *)
let raw_request ~port msg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Channel.write_frame fd (Message.encode (Message.Request msg));
      match Channel.read_frame fd with
      | None -> Alcotest.fail "no reply to raw frame"
      | Some frame ->
        (match Message.decode frame with
         | Message.Reply r -> r
         | Message.Request _ -> Alcotest.fail "server sent a request"))

let test_resume_bogus_token_rejected () =
  let t = make_loop ~seed:"bogus" () in
  let port = Server_loop.port (fst t) in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      match
        raw_request ~port
          (Message.Resume
             { token = "no such token!!!"; client_rounds = 3; flags = 3 })
      with
      | Message.Resume_reject _ -> ()
      | r ->
        Alcotest.fail ("bogus token accepted: " ^ Message.describe (Message.Reply r)))

let test_resume_ttl_eviction_end_to_end () =
  (* a parked session provably expires: fake clock injected into the
     loop's resume table, advanced past the TTL, swept, then the very
     token the server issued is refused *)
  let now = ref 1000.0 in
  let config = { Server_loop.default_config with resume_ttl_s = 30.0 } in
  let t = make_loop ~config ~clock:(fun () -> !now) ~seed:"ttl" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* real handshake to obtain a live token... *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Channel.write_frame fd
        (Message.encode
           (Message.Request
              (Message.Hello
                 {
                   flags = Message.flag_crc32 lor Message.flag_resume;
                   spec = None;
                 })));
      let token =
        match Channel.read_frame fd with
        | Some frame ->
          (match Message.decode frame with
           | Message.Reply (Message.Welcome { resume_token; flags; _ }) ->
             Alcotest.(check int) "both capabilities granted"
               (Message.flag_crc32 lor Message.flag_resume)
               flags;
             Alcotest.(check int) "128-bit token" 16 (String.length resume_token);
             resume_token
           | m -> Alcotest.fail ("no welcome: " ^ Message.describe m))
        | None -> Alcotest.fail "no welcome frame"
      in
      (* ...die without Bye: the server must park the session *)
      Unix.close fd;
      let rec wait_parked n =
        if Server_loop.resume_parked loop >= 1 then ()
        else if n = 0 then Alcotest.fail "session never parked"
        else begin
          Thread.delay 0.01;
          wait_parked (n - 1)
        end
      in
      wait_parked 500;
      (* within the TTL the token is honoured (live Resume_ack) *)
      (match
         raw_request ~port (Message.Resume { token; client_rounds = 1; flags = 3 })
       with
       | Message.Resume_ack { server_rounds; _ } ->
         Alcotest.(check int) "in sync at one round" 1 server_rounds
       | r ->
         Alcotest.fail ("live token refused: " ^ Message.describe (Message.Reply r)));
      (* the ack re-parks nothing yet — the new connection owns the
         session now; kill it again so it parks again *)
      wait_parked 500;
      (* advance the fake clock past the TTL and sweep *)
      now := !now +. config.Server_loop.resume_ttl_s +. 1.0;
      Alcotest.(check bool) "sweep evicted the parked session" true
        (Server_loop.sweep_resume loop >= 1);
      Alcotest.(check int) "nothing parked" 0 (Server_loop.resume_parked loop);
      (* the expired token is now refused *)
      match
        raw_request ~port (Message.Resume { token; client_rounds = 1; flags = 3 })
      with
      | Message.Resume_reject _ -> ()
      | r ->
        Alcotest.fail
          ("expired token accepted: " ^ Message.describe (Message.Reply r)))

let () =
  Alcotest.run "resilience"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "streaming composition" `Quick test_crc32_composition;
          Alcotest.test_case "frame round trip" `Quick test_crc_frame_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_crc_detects_corruption;
          Alcotest.test_case "every byte covered" `Quick test_crc_covers_every_byte;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "deterministic jitter" `Quick test_backoff_deterministic;
          Alcotest.test_case "retry-after floor" `Quick test_backoff_hint_floor;
          Alcotest.test_case "recovers after transients" `Quick test_with_retry_recovers;
          Alcotest.test_case "exhausts" `Quick test_with_retry_exhausts;
          Alcotest.test_case "fatal fails fast" `Quick test_with_retry_fail_immediate;
          Alcotest.test_case "honours busy hint" `Quick
            test_with_retry_honours_retry_after;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic schedule" `Quick
            test_faults_deterministic_schedule;
          Alcotest.test_case "profile strings" `Quick test_faults_profile_strings;
        ] );
      ( "resume table",
        [
          Alcotest.test_case "ttl expiry" `Quick test_resume_table_ttl;
          Alcotest.test_case "capacity eviction" `Quick test_resume_table_capacity;
          Alcotest.test_case "sweep and validation" `Quick
            test_resume_table_sweep_and_validation;
        ] );
      ( "codec fuzz",
        [
          Alcotest.test_case "single-byte flips stay typed" `Quick
            test_codec_single_byte_flips;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "drop at every frame index" `Quick
            test_chaos_drop_at_every_frame;
          Alcotest.test_case "corruption recovered" `Quick
            test_chaos_corruption_recovered;
          Alcotest.test_case "connection lost without resume" `Quick
            test_connection_lost_without_resume;
          Alcotest.test_case "bogus resume token rejected" `Quick
            test_resume_bogus_token_rejected;
          Alcotest.test_case "ttl eviction end to end" `Quick
            test_resume_ttl_eviction_end_to_end;
        ] );
    ]
