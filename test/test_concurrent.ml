(* Tests for the persistent concurrent server (Server_loop): parallel
   sessions produce distances bit-identical to sequential runs, the
   capacity path answers Busy, and timeouts close a session without
   killing the server. *)

open Ppst_transport

let eq_bi = Alcotest.testable Ppst_bigint.Bigint.pp Ppst_bigint.Bigint.equal

let series_y = Ppst_timeseries.Series.of_list [ 2; 4; 6; 5; 7 ]
let series_x = Ppst_timeseries.Series.of_list [ 3; 4; 5; 4; 6; 7 ]
let max_value = 9

(* Each session gets its own Server.t sharing one secret key, exactly as
   bin/ppst_server wires it.  Sequential workers: sessions themselves
   provide the concurrency. *)
let make_loop ?(config = Server_loop.default_config) ?on_session_end ~seed () =
  let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/keygen") in
  let _pk, sk =
    Ppst_paillier.Paillier.keygen ~bits:Ppst.Params.default.Ppst.Params.key_bits rng
  in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:(Ppst_rng.Secure_rng.of_seed_string (Printf.sprintf "%s/session-%d" seed id))
        ~series:series_y ~max_value ()
    in
    Ppst.Server.handle server
  in
  let loop =
    Server_loop.create ~config ?on_session_end ~port:0
      ~handler:(fun ~id ~peer -> Server_loop.respond_only (handler ~id ~peer)) ()
  in
  let runner = Thread.create (fun () -> Server_loop.run loop) () in
  (loop, runner)

let stop (loop, runner) =
  Server_loop.shutdown loop;
  Thread.join runner

(* A session slot is freed asynchronously after the previous client saw
   its Bye_ack, so even a nominally free server can answer Busy for a
   moment; retry as a real client would. *)
let run_client ~port ~seed =
  let rec attempt tries =
    let channel = Channel.connect ~host:"127.0.0.1" ~port () in
    match
      let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/client") in
      let client =
        Ppst.Client.connect ~rng ~series:series_x ~max_value ~distance:`Dtw
          channel
      in
      let d = Ppst.Secure_dtw.run client in
      Ppst.Client.finish client;
      d
    with
    | d -> d
    | exception Channel.Busy _ when tries > 0 ->
      Channel.close channel;
      Thread.delay 0.05;
      attempt (tries - 1)
  in
  attempt 100

(* --- parallel sessions = sequential distances ---------------------------- *)

let test_parallel_matches_sequential () =
  let t = make_loop ~seed:"concurrent-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* sequential reference first (its own session against the same loop) *)
      let reference = run_client ~port ~seed:"ref" in
      (* its slot is freed asynchronously after our Bye_ack arrived; wait
         so the strict accepted/rejected assertions below aren't racy *)
      let rec wait_idle n =
        if Server_loop.active_sessions loop > 0 && n > 0 then begin
          Thread.delay 0.01;
          wait_idle (n - 1)
        end
      in
      wait_idle 500;
      let n = 4 in
      let results = Array.make n (Error "did not finish") in
      let clients =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  (try Ok (run_client ~port ~seed:(Printf.sprintf "c%d" i))
                   with e -> Error (Printexc.to_string e)))
              ())
      in
      List.iter Thread.join clients;
      Array.iteri
        (fun i r ->
          match r with
          | Error m -> Alcotest.fail (Printf.sprintf "client %d: %s" i m)
          | Ok d ->
            Alcotest.check eq_bi
              (Printf.sprintf "client %d = sequential distance" i)
              reference d)
        results;
      Alcotest.(check int) "all sessions accepted" (n + 1)
        (Server_loop.accepted loop);
      Alcotest.(check int) "none rejected" 0 (Server_loop.rejected loop))

(* --- capacity: session N+1 gets Busy -------------------------------------- *)

let test_busy_at_capacity () =
  let config =
    { Server_loop.default_config with max_sessions = 1; retry_after_s = 0.5 }
  in
  let t = make_loop ~config ~seed:"busy-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* client A occupies the only slot: complete its Hello so the slot
         is certainly taken before B tries *)
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request a (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "A's Hello failed");
      (* B must be turned away with the configured hint *)
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request b (Message.Hello { flags = 0; spec = None }) with
       | _ -> Alcotest.fail "second session admitted beyond capacity"
       | exception Channel.Busy { retry_after_s } ->
         Alcotest.(check (float 1e-9)) "retry hint" 0.5 retry_after_s);
      Channel.close b;
      (* A is unaffected and completes *)
      Channel.close a;
      (* slot freed: C succeeds end to end (run_client absorbs the Busy
         window while A's session unregisters) *)
      let d = run_client ~port ~seed:"c" in
      Alcotest.(check bool) "C revealed a distance" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0);
      Alcotest.(check bool) "rejection recorded" true
        (Server_loop.rejected loop >= 1))

(* --- idle timeout: silent session dies, server survives ------------------- *)

let test_idle_timeout () =
  let ended = Queue.create () in
  let ended_mutex = Mutex.create () in
  let config =
    { Server_loop.default_config with idle_timeout_s = Some 0.2 }
  in
  let on_session_end s =
    Mutex.lock ended_mutex;
    Queue.add s ended;
    Mutex.unlock ended_mutex
  in
  let t = make_loop ~config ~on_session_end ~seed:"idle-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let silent = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request silent (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "Hello failed");
      (* ... then say nothing until the server hangs up *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        let timed_out =
          Mutex.lock ended_mutex;
          let v =
            Queue.fold
              (fun acc (s : Server_loop.session) ->
                acc || s.outcome = Server_loop.Idle_timeout)
              false ended
          in
          Mutex.unlock ended_mutex;
          v
        in
        if timed_out then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "idle session never timed out"
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      wait ();
      Channel.close silent;
      (* the loop survived: a fresh, active client still completes *)
      let d = run_client ~port ~seed:"after-idle" in
      Alcotest.(check bool) "server survived the timeout" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0))

(* --- session deadline ------------------------------------------------------ *)

let test_deadline () =
  let config =
    { Server_loop.default_config with deadline_s = Some 0.2 }
  in
  let t = make_loop ~config ~seed:"deadline-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let ch = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "Hello failed");
      (* keep trickling requests: the per-request gaps never trip an idle
         timeout, but the overall deadline must still fire *)
      let rec trickle () =
        Thread.delay 0.05;
        match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
        | Message.Welcome _ -> trickle ()
        | _ -> ()
        | exception Channel.Protocol_error _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      trickle ();
      Channel.close ch;
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        let hit =
          List.exists
            (fun (s : Server_loop.session) ->
              s.outcome = Server_loop.Deadline_exceeded)
            (Server_loop.sessions loop)
        in
        if hit then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "session deadline never fired"
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      wait ())

(* --- error isolation -------------------------------------------------------- *)

let test_malformed_frame_isolated () =
  let t = make_loop ~seed:"isolation-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* hand-roll a valid frame carrying garbage: the session gets an
         in-band error reply and stays usable *)
      let ch = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request ch (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "Hello failed");
      Channel.close ch;
      ignore loop;
      (* a raw socket that sends a forged length header dies alone *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring fd "\xFF\xFF\xFF\xFF" 0 4);
      (* server closes on us; swallow whatever the socket does *)
      (try ignore (Unix.read fd (Bytes.create 16) 0 16) with _ -> ());
      (try Unix.close fd with _ -> ());
      (* the loop is still serving *)
      let d = run_client ~port ~seed:"after-garbage" in
      Alcotest.(check bool) "server survived the bad client" true
        (Ppst_bigint.Bigint.compare d Ppst_bigint.Bigint.zero >= 0))

let () =
  Alcotest.run "concurrent"
    [
      ( "server loop",
        [
          Alcotest.test_case "parallel = sequential distances" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "busy at capacity" `Quick test_busy_at_capacity;
          Alcotest.test_case "idle timeout isolates session" `Quick
            test_idle_timeout;
          Alcotest.test_case "session deadline fires" `Quick test_deadline;
          Alcotest.test_case "malformed client isolated" `Quick
            test_malformed_frame_isolated;
        ] );
    ]
