(* Tests for the Domain worker-pool execution layer (lib/parallel) and
   for the protocol's determinism contract on top of it: a seeded session
   must produce a bit-identical wire transcript at any pool size, because
   all randomness is consumed sequentially before each parallel fan-out. *)

open Ppst.Import
module Pool = Ppst_parallel.Pool
module Generate = Ppst_timeseries.Generate

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- pool semantics --------------------------------------------------- *)

let test_map_array_matches_sequential () =
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          List.iter
            (fun len ->
              let input = Array.init len (fun i -> i) in
              let f i = (i * 31) + (i mod 7) in
              Alcotest.(check (array int))
                (Printf.sprintf "size %d, len %d" size len)
                (Array.map f input)
                (Pool.map_array pool f input))
            [ 0; 1; 2; 3; 4; 5; 16; 100 ]))
    [ 1; 2; 3; 4; 8 ]

let test_order_preserved_on_uneven_work () =
  (* Skew the per-item cost so late chunks finish first; order must not
     depend on completion timing. *)
  with_pool 4 (fun pool ->
      let busy i =
        let n = if i < 8 then 20_000 else 10 in
        let acc = ref i in
        for _ = 1 to n do
          acc := (!acc * 31) land 0xFFFF
        done;
        (i, !acc)
      in
      let input = Array.init 32 Fun.id in
      Alcotest.(check (array (pair int int)))
        "order" (Array.map busy input)
        (Pool.map_array pool busy input))

let test_map_matches_list_map () =
  with_pool 3 (fun pool ->
      let xs = List.init 33 Fun.id in
      Alcotest.(check (list int)) "map" (List.map succ xs) (Pool.map pool succ xs))

let test_sequential_pool () =
  Alcotest.(check int) "size" 1 (Pool.size Pool.sequential);
  let a = Array.init 10 string_of_int in
  Alcotest.(check (array string))
    "identity" a
    (Pool.map_array Pool.sequential Fun.id a)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          let f i = if i = 37 then raise (Boom i) else i in
          Alcotest.check_raises
            (Printf.sprintf "size %d" size)
            (Boom 37)
            (fun () -> ignore (Pool.map_array pool f (Array.init 64 Fun.id)))))
    [ 1; 2; 4 ]

let test_pool_survives_exception () =
  (* A raising task must not wedge the workers for the next map. *)
  with_pool 4 (fun pool ->
      (try ignore (Pool.map_array pool (fun _ -> failwith "boom") (Array.make 16 ()))
       with Failure _ -> ());
      let input = Array.init 16 Fun.id in
      Alcotest.(check (array int))
        "after exception" (Array.map succ input)
        (Pool.map_array pool succ input))

let test_shutdown_idempotent () =
  let pool = Pool.create 3 in
  Pool.shutdown pool;
  Pool.shutdown pool

let test_create_rejects_zero () =
  Alcotest.check_raises "create 0"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create 0))

(* --- transcript determinism across pool sizes -------------------------- *)

let det_x = Generate.ecg_int ~seed:41 ~length:6 ~max_value:50
let det_y = Generate.ecg_int ~seed:42 ~length:5 ~max_value:50

(* Run one full in-process session with every request and reply captured
   byte-for-byte (the exact encoding [Channel.tcp] would frame), and
   return the revealed distance plus a digest of that transcript. *)
let digest_run ~jobs ~decryption ~distance ~runner =
  with_pool jobs (fun workers ->
      let server =
        Ppst.Server.create ~decryption ~workers
          ~rng:(Secure_rng.of_seed_string "det/server")
          ~series:det_y ~max_value:50 ()
      in
      let buf = Buffer.create (1 lsl 16) in
      let handler req =
        Buffer.add_string buf (Message.encode (Message.Request req));
        let reply = Ppst.Server.handle server req in
        Buffer.add_string buf (Message.encode (Message.Reply reply));
        reply
      in
      let channel = Channel.local handler in
      let client =
        Ppst.Client.connect ~workers
          ~rng:(Secure_rng.of_seed_string "det/client")
          ~series:det_x ~max_value:50 ~distance channel
      in
      let d = runner client in
      Ppst.Client.finish client;
      (Bigint.to_int_exn d, Digest.to_hex (Digest.string (Buffer.contents buf))))

let check_deterministic ~decryption ~distance ~runner ~expected name =
  let runs =
    List.map
      (fun jobs -> digest_run ~jobs ~decryption ~distance ~runner)
      [ 1; 4 ]
  in
  let d1, t1 = List.hd runs in
  Alcotest.(check int) (name ^ ": plaintext distance") expected d1;
  List.iteri
    (fun i (d, t) ->
      Alcotest.(check int) (Printf.sprintf "%s: distance (run %d)" name i) d1 d;
      Alcotest.(check string)
        (Printf.sprintf "%s: transcript digest (run %d)" name i)
        t1 t)
    runs

let test_dtw_transcript_identical () =
  check_deterministic ~decryption:`Crt ~distance:`Dtw
    ~runner:Ppst.Secure_dtw_wavefront.run_dtw
    ~expected:(Distance.dtw_sq det_x det_y)
    "wavefront DTW (CRT)"

let test_dfd_transcript_identical () =
  check_deterministic ~decryption:`Standard ~distance:`Dfd
    ~runner:Ppst.Secure_dtw_wavefront.run_dfd
    ~expected:(Distance.dfd_sq det_x det_y)
    "wavefront DFD (standard)"

(* --- telemetry must observe without perturbing -------------------------- *)

(* The determinism contract extends to observability: a seeded transcript
   must be bit-identical whether a --trace-out JSONL sink is recording
   every span and round or telemetry is fully disabled. *)
let test_transcript_identical_with_telemetry () =
  let module Telemetry = Ppst_telemetry.Telemetry in
  let run () =
    digest_run ~jobs:1 ~decryption:`Crt ~distance:`Dtw
      ~runner:Ppst.Secure_dtw_wavefront.run_dtw
  in
  Telemetry.configure ();
  (* sinks off *)
  let d_off, t_off = run () in
  let trace = Filename.temp_file "ppst_test_det" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.configure ();
      Sys.remove trace)
    (fun () ->
      Telemetry.configure ~trace_out:trace ();
      let d_on, t_on = run () in
      Telemetry.configure ();
      (* flush the file sink *)
      Alcotest.(check int) "distance unchanged" d_off d_on;
      Alcotest.(check string) "transcript digest unchanged" t_off t_on;
      (* and the trace really was recording — the check is not vacuous *)
      let ic = open_in trace in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "trace non-empty" true (len > 0))

(* --- Paillier batch entry points --------------------------------------- *)

let test_paillier_batches_match_sequential () =
  let rng = Secure_rng.of_seed_string "batch" in
  let pk, sk = Paillier.keygen ~bits:64 rng in
  with_pool 4 (fun workers ->
      let ms = Array.init 37 (fun i -> Bigint.of_int ((i * 131) mod 1000)) in
      (* Same seed, two pool sizes: the ciphertexts must agree because the
         unit draws happen sequentially in element order either way. *)
      let enc_with w =
        let r = Secure_rng.of_seed_string "batch/enc" in
        Paillier.encrypt_batch ~workers:w pk r ms
      in
      let seq = enc_with Pool.sequential and par = enc_with workers in
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "ciphertext %d" i)
            true
            (Bigint.equal
               (Paillier.ciphertext_to_bigint c)
               (Paillier.ciphertext_to_bigint par.(i))))
        seq;
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "decrypt %d" i)
            true
            (Bigint.equal ms.(i) (Paillier.decrypt sk c)))
        seq;
      let dec_std = Paillier.decrypt_batch ~workers sk seq in
      let dec_crt = Paillier.decrypt_crt_batch ~workers sk seq in
      Array.iteri
        (fun i m ->
          Alcotest.(check bool)
            (Printf.sprintf "batch decrypt %d" i)
            true
            (Bigint.equal ms.(i) m && Bigint.equal ms.(i) dec_crt.(i)))
        dec_std)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_array = Array.map" `Quick
            test_map_array_matches_sequential;
          Alcotest.test_case "order under uneven work" `Quick
            test_order_preserved_on_uneven_work;
          Alcotest.test_case "map = List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool survives exception" `Quick
            test_pool_survives_exception;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "create 0 rejected" `Quick test_create_rejects_zero;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "DTW transcript, pool 1 vs 4" `Quick
            test_dtw_transcript_identical;
          Alcotest.test_case "DFD transcript, pool 1 vs 4" `Quick
            test_dfd_transcript_identical;
          Alcotest.test_case "transcript, telemetry on vs off" `Quick
            test_transcript_identical_with_telemetry;
          Alcotest.test_case "Paillier batch = sequential" `Quick
            test_paillier_batches_match_sequential;
        ] );
    ]
