(* Tests for the leakage-safe telemetry subsystem (lib/telemetry): the
   metrics registry under Domain contention, histogram bucket edges, the
   JSONL sink round-tripping through Trace_reader, the leakage lint, and
   the live Stats_req introspection path of Server_loop — including the
   at-capacity probe that answers without a session slot. *)

module Telemetry = Ppst_telemetry.Telemetry
module Metrics = Ppst_telemetry.Metrics
module Trace_reader = Ppst_telemetry.Trace_reader
open Ppst_transport

(* --- metrics registry --------------------------------------------------- *)

let test_counter_basics () =
  let c = Metrics.counter "test.counter.basics" in
  Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "42" 42 (Metrics.counter_value c);
  (* get-or-create returns the same cell *)
  Metrics.incr (Metrics.counter "test.counter.basics");
  Alcotest.(check int) "shared" 43 (Metrics.counter_value c)

let test_kind_mismatch_rejected () =
  ignore (Metrics.counter "test.kind.clash");
  (try
     ignore (Metrics.gauge "test.kind.clash");
     Alcotest.fail "gauge on a counter name should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Metrics.histogram "test.kind.clash");
    Alcotest.fail "histogram on a counter name should raise"
  with Invalid_argument _ -> ()

let test_counter_merge_across_domains () =
  let c = Metrics.counter "test.counter.domains" in
  let per_domain = 25_000 and domains = 4 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Metrics.counter_value c)

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.gauge_set g 2.5;
  Metrics.gauge_add g 0.5;
  Alcotest.(check (float 1e-9)) "set+add" 3.0 (Metrics.gauge_value g)

let test_histogram_bucket_boundaries () =
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test.histo.edges" in
  (* "le" semantics: a value equal to a bound lands in that bound's
     bucket, strictly above it spills into the next *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.0000001; 2.0; 3.9; 4.0; 4.1; 100.0 ];
  let s = Metrics.histogram_snapshot h in
  Alcotest.(check int) "count" 8 s.Metrics.count;
  Alcotest.(check (float 1e-6)) "sum" 116.5000001 s.Metrics.sum;
  let counts = Array.map snd s.Metrics.buckets in
  Alcotest.(check (array int)) "per-bucket" [| 2; 2; 2 |] counts;
  Alcotest.(check int) "overflow" 2 s.Metrics.overflow;
  Alcotest.(check (float 1e-9)) "bounds kept" 1.0 (fst s.Metrics.buckets.(0))

let test_histogram_rejects_bad_buckets () =
  try
    ignore (Metrics.histogram ~buckets:[| 2.0; 1.0 |] "test.histo.bad");
    Alcotest.fail "non-ascending buckets should raise"
  with Invalid_argument _ -> ()

let starts_with prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec at i = i + n <= m && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_dump_format () =
  ignore (Metrics.counter "test.dump.a");
  let g = Metrics.gauge "test.dump.b" in
  Metrics.gauge_set g 1.5;
  let lines = String.split_on_char '\n' (Metrics.dump_string ()) in
  let index_of prefix =
    let rec go i = function
      | [] -> -1
      | l :: rest -> if starts_with prefix l then i else go (i + 1) rest
    in
    go 0 lines
  in
  let ia = index_of "counter test.dump.a " in
  let ib = index_of "gauge test.dump.b " in
  Alcotest.(check bool) "counter line present" true (ia >= 0);
  Alcotest.(check bool) "gauge line present" true (ib >= 0);
  Alcotest.(check bool) "sorted by name" true (ia < ib)

(* --- windowed rollups ---------------------------------------------------- *)

module Rollup = Ppst_telemetry.Rollup

let find_wc w name =
  List.find_opt (fun c -> c.Rollup.wc_name = name) w.Rollup.w_counters

let find_wh w name =
  List.find_opt (fun h -> h.Rollup.wh_name = name) w.Rollup.w_histograms

let test_rollup_fake_clock () =
  let clock = ref 0.0 in
  let r = Rollup.create ~now:(fun () -> !clock) ~slot_s:60.0 () in
  let c = Metrics.counter "test.rollup.clock" in
  (* slot 0: 30 increments, half a slot in *)
  Metrics.incr ~by:30 c;
  clock := 30.0;
  let w = Rollup.window r ~slots:1 in
  (match find_wc w "test.rollup.clock" with
   | Some wc ->
     Alcotest.(check int) "partial-slot delta" 30 wc.Rollup.wc_delta;
     Alcotest.(check (float 0.01)) "rate over actual span" 1.0 wc.Rollup.wc_rate
   | None -> Alcotest.fail "counter missing from window");
  (* cross into slot 1: the first tick after the crossing freezes slot 0's
     totals (sampling semantics — increments before that tick belong to
     the closed slot) *)
  clock := 70.0;
  Rollup.tick r;
  Metrics.incr ~by:5 c;
  let w = Rollup.window r ~slots:1 in
  (match find_wc w "test.rollup.clock" with
   | Some wc ->
     Alcotest.(check int) "new slot sees only new increments" 5
       wc.Rollup.wc_delta
   | None -> Alcotest.fail "counter missing after advance");
  (* a 2-slot window spans the boundary and sees both batches *)
  let w2 = Rollup.window r ~slots:2 in
  (match find_wc w2 "test.rollup.clock" with
   | Some wc -> Alcotest.(check int) "2-slot delta" 35 wc.Rollup.wc_delta
   | None -> Alcotest.fail "counter missing from 2-slot window");
  (* EWMA updated at the slot advance: alpha * (30/60) against a zero seed *)
  (match List.assoc_opt "test.rollup.clock" (Rollup.ewma r) with
   | Some rate -> Alcotest.(check bool) "ewma positive" true (rate > 0.0)
   | None -> Alcotest.fail "no ewma entry");
  (* a long silent gap: missed boundaries are backfilled, window drains *)
  clock := 60.0 *. 40.0;
  let w = Rollup.window r ~slots:15 in
  match find_wc w "test.rollup.clock" with
  | Some wc -> Alcotest.(check int) "idle window empty" 0 wc.Rollup.wc_delta
  | None -> ()

let test_rollup_histogram_across_domains () =
  let clock = ref 0.0 in
  let r = Rollup.create ~now:(fun () -> !clock) ~slot_s:60.0 () in
  let h =
    Metrics.histogram ~buckets:[| 0.001; 0.01; 0.1; 1.0 |]
      "test.rollup.domains"
  in
  (* 4 Domains race 1000 observations each into the same histogram; the
     windowed view must merge them without losing any *)
  let per_domain = 1000 and domains = 4 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* deterministic spread: ~half in (0.001, 0.01], rest higher *)
              let v = if (i + d) mod 2 = 0 then 0.005 else 0.05 in
              Metrics.observe h v
            done))
  in
  List.iter Domain.join workers;
  clock := 30.0;
  let w = Rollup.window r ~slots:1 in
  match find_wh w "test.rollup.domains" with
  | Some wh ->
    Alcotest.(check int) "no lost observations" (domains * per_domain)
      wh.Rollup.wh_count;
    Alcotest.(check (float 1e-6)) "sum merged" 110.0 wh.Rollup.wh_sum;
    (* half the mass is at 0.005, half at 0.05: p50 inside (0.001, 0.01],
       p95/p99 inside (0.01, 0.1] (epsilon slack for the interpolation) *)
    Alcotest.(check bool) "p50 bracket" true
      (wh.Rollup.wh_p50 > 0.001 && wh.Rollup.wh_p50 <= 0.01 +. 1e-9);
    Alcotest.(check bool) "p99 bracket" true
      (wh.Rollup.wh_p99 > 0.01 && wh.Rollup.wh_p99 <= 0.1 +. 1e-9)
  | None -> Alcotest.fail "histogram missing from window"

(* --- spans and the JSONL sink ------------------------------------------- *)

let with_trace_file f =
  let path = Filename.temp_file "ppst_test_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.configure ();
      (* detach + flush *)
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_jsonl_round_trip () =
  with_trace_file (fun path ->
      Telemetry.configure ~trace_out:path ();
      Telemetry.span ~name:"outer"
        ~attrs:
          [
            ("count", Telemetry.Int 7);
            ("bytes", Telemetry.Size 4096);
            ("wait", Telemetry.Duration 0.25);
            ("op", Telemetry.Opcode 0x0b);
            ("phase", Telemetry.Phase Telemetry.Phase2);
            ("hit", Telemetry.Flag true);
          ]
        (fun () ->
          Telemetry.event ~level:Telemetry.Debug ~name:"inner.point"
            ~attrs:[ ("n", Telemetry.Int (-3)) ]
            ());
      Telemetry.configure ();
      (* flush before reading back *)
      let entries = Trace_reader.read_file path in
      Alcotest.(check int) "start + point + end" 3 (List.length entries);
      (match entries with
       | [ s; p; e ] ->
         Alcotest.(check bool) "kinds" true
           Trace_reader.(s.kind = Start && p.kind = Point && e.kind = End);
         Alcotest.(check string) "span name" "outer" s.Trace_reader.name;
         Alcotest.(check string) "point name" "inner.point" p.Trace_reader.name;
         Alcotest.(check bool) "ids match" true
           (s.Trace_reader.id = e.Trace_reader.id && s.Trace_reader.id > 0);
         Alcotest.(check bool) "end has duration" true (e.Trace_reader.dt >= 0.0);
         Alcotest.(check bool) "monotonic stamps" true
           (s.Trace_reader.t <= p.Trace_reader.t
            && p.Trace_reader.t <= e.Trace_reader.t);
         (match List.assoc "count" s.Trace_reader.attrs with
          | Trace_reader.Num v -> Alcotest.(check (float 0.0)) "int attr" 7.0 v
          | _ -> Alcotest.fail "count should be a number");
         (match List.assoc "phase" s.Trace_reader.attrs with
          | Trace_reader.Str v -> Alcotest.(check string) "phase attr" "phase2" v
          | _ -> Alcotest.fail "phase should be a string tag");
         (match List.assoc "hit" s.Trace_reader.attrs with
          | Trace_reader.Bool v -> Alcotest.(check bool) "flag attr" true v
          | _ -> Alcotest.fail "flag should be a bool");
         (match List.assoc "n" p.Trace_reader.attrs with
          | Trace_reader.Num v ->
            Alcotest.(check (float 0.0)) "negative int" (-3.0) v
          | _ -> Alcotest.fail "n should be a number")
       | _ -> Alcotest.fail "expected exactly three records");
      (* everything the sink can produce passes the leakage lint *)
      List.iter
        (fun e ->
          match Trace_reader.lint_entry e with
          | None -> ()
          | Some reason -> Alcotest.fail ("lint rejected sink output: " ^ reason))
        entries)

let test_span_reraises_and_marks_error () =
  with_trace_file (fun path ->
      Telemetry.configure ~trace_out:path ();
      (try
         Telemetry.span ~name:"boom" (fun () -> failwith "kaboom")
       with Failure _ -> ());
      Telemetry.configure ();
      let entries = Trace_reader.read_file path in
      match List.rev entries with
      | last :: _ ->
        Alcotest.(check bool) "end record" true (last.Trace_reader.kind = Trace_reader.End);
        (match List.assoc_opt "error" last.Trace_reader.attrs with
         | Some (Trace_reader.Bool true) -> ()
         | _ -> Alcotest.fail "error flag missing on exceptional span end")
      | [] -> Alcotest.fail "no records written")

let test_lint_catches_leaks () =
  let entry_of s = Trace_reader.entry_of_line s in
  (* a free-form string value: exactly what the value variant forbids *)
  let leaky =
    entry_of
      {|{"ev":"point","name":"bad","t":1.0,"attrs":{"plaintext":"secret-bytes"}}|}
  in
  (match Trace_reader.lint_entry leaky with
   | Some _ -> ()
   | None -> Alcotest.fail "free-form string value must fail the lint");
  (* a number far beyond any count/size/duration: a smuggled plaintext *)
  let big =
    entry_of {|{"ev":"point","name":"bad","t":1.0,"attrs":{"v":1e30}}|}
  in
  (match Trace_reader.lint_entry big with
   | Some _ -> ()
   | None -> Alcotest.fail "huge number must fail the lint");
  (* phase tags are the one allowed string vocabulary *)
  let ok =
    entry_of {|{"ev":"point","name":"ok","t":1.0,"attrs":{"phase":"phase3"}}|}
  in
  match Trace_reader.lint_entry ok with
  | None -> ()
  | Some reason -> Alcotest.fail ("phase tag wrongly rejected: " ^ reason)

let test_no_sinks_is_cheap_and_silent () =
  Telemetry.configure ();
  Alcotest.(check bool) "disabled" false (Telemetry.enabled Telemetry.Info);
  (* spans still run their body and return its value *)
  Alcotest.(check int) "value" 9
    (Telemetry.span ~name:"silent" (fun () -> 9))

(* --- live introspection: Stats_req against Server_loop ------------------- *)

let series_y = Ppst_timeseries.Series.of_list [ 2; 4; 6; 5; 7 ]
let max_value = 9

let make_loop ?(config = Server_loop.default_config) ~seed () =
  let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/keygen") in
  let _pk, sk = Ppst_paillier.Paillier.keygen ~bits:256 rng in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:
          (Ppst_rng.Secure_rng.of_seed_string
             (Printf.sprintf "%s/session-%d" seed id))
        ~series:series_y ~max_value ()
    in
    Ppst.Server.handle server
  in
  let loop =
    Server_loop.create ~config ~port:0
      ~handler:(fun ~id ~peer -> Server_loop.respond_only (handler ~id ~peer)) ()
  in
  let runner = Thread.create (fun () -> Server_loop.run loop) () in
  (loop, runner)

let stop (loop, runner) =
  Server_loop.shutdown loop;
  Thread.join runner

let fetch_stats ~port =
  let ch = Channel.connect ~host:"127.0.0.1" ~port () in
  let text =
    match Channel.request ch Message.Stats_req with
    | Message.Stats_reply text -> text
    | other ->
      Alcotest.fail
        ("expected Stats_reply, got "
        ^ Message.describe (Message.Reply other))
  in
  Channel.close ch;
  text

(* "active 2"-style lines from the live-session preamble *)
let live_field text key =
  let lines = String.split_on_char '\n' text in
  let prefix = key ^ " " in
  let plen = String.length prefix in
  List.find_map
    (fun l ->
      if String.length l > plen && String.sub l 0 plen = prefix then
        int_of_string_opt (String.sub l plen (String.length l - plen))
      else None)
    lines

let test_stats_req_live_sessions () =
  let t = make_loop ~seed:"stats-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* hold two sessions open mid-protocol, then introspect *)
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request a (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "A's Hello failed");
      (match Channel.request b (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "B's Hello failed");
      let text = fetch_stats ~port in
      (match live_field text "active" with
       | Some n -> Alcotest.(check bool) "two live sessions visible" true (n >= 2)
       | None -> Alcotest.fail ("no 'active' line in:\n" ^ text));
      (match live_field text "accepted" with
       | Some n -> Alcotest.(check bool) "accepted >= 3" true (n >= 3)
       | None -> Alcotest.fail "no 'accepted' line");
      (* the metrics exposition rides along after the live counters *)
      Alcotest.(check bool) "metrics section present" true
        (List.exists
           (starts_with "# metrics")
           (String.split_on_char '\n' text));
      Channel.close a;
      Channel.close b)

let test_metrics_codec_round_trip () =
  let req = Message.Request Message.Metrics_req in
  (match Message.decode (Message.encode req) with
   | Message.Request Message.Metrics_req -> ()
   | other ->
     Alcotest.fail ("request did not round-trip: " ^ Message.describe other));
  Alcotest.(check int) "request carries no protocol values" 0
    (Message.values_in req);
  let page = "# TYPE ppst_example counter\nppst_example 1\n# EOF\n" in
  let reply = Message.Reply (Message.Metrics_reply page) in
  (match Message.decode (Message.encode reply) with
   | Message.Reply (Message.Metrics_reply text) ->
     Alcotest.(check string) "payload preserved" page text
   | other ->
     Alcotest.fail ("reply did not round-trip: " ^ Message.describe other));
  Alcotest.(check int) "reply carries no protocol values" 0
    (Message.values_in reply)

(* In-session Metrics_req is a negotiated capability: granted only when
   Hello offered the flag (and the server allows it); otherwise the reply
   is a typed capability violation, exactly like the catalog messages. *)
let test_metrics_capability_gating () =
  let t = make_loop ~seed:"metrics-gate" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      (* without the flag: refused *)
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request a (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "flagless Hello failed");
      (match Channel.request a Message.Metrics_req with
       | exception Channel.Protocol_error reason ->
         Alcotest.(check bool) "typed capability violation" true
           (contains reason "capability violation")
       | other ->
         Alcotest.fail
           ("expected a capability violation, got "
           ^ Message.describe (Message.Reply other)));
      Channel.close a;
      (* with the flag: granted, and the page is a terminated exposition *)
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match
         Channel.request b
           (Message.Hello { flags = Message.flag_metrics; spec = None })
       with
       | Message.Welcome { flags; _ } ->
         Alcotest.(check bool) "flag granted" true
           (flags land Message.flag_metrics <> 0)
       | _ -> Alcotest.fail "flagged Hello failed");
      (match Channel.request b Message.Metrics_req with
       | Message.Metrics_reply text ->
         Alcotest.(check bool) "non-empty page" true (String.length text > 0);
         Alcotest.(check bool) "openmetrics terminator" true
           (let tail = "# EOF\n" in
            let n = String.length text and tn = String.length tail in
            n >= tn && String.sub text (n - tn) tn = tail)
       | other ->
         Alcotest.fail
           ("expected Metrics_reply, got "
           ^ Message.describe (Message.Reply other)));
      Channel.close b;
      (* sessionless probe: answered without negotiation, like Health_req *)
      let c = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request c Message.Metrics_req with
       | Message.Metrics_reply _ -> ()
       | other ->
         Alcotest.fail
           ("probe expected Metrics_reply, got "
           ^ Message.describe (Message.Reply other)));
      Channel.close c)

(* --no-metrics: the flag is never granted and even the sessionless probe
   is refused. *)
let test_metrics_disabled () =
  let config =
    { Server_loop.default_config with Server_loop.enable_metrics = false }
  in
  let t = make_loop ~config ~seed:"metrics-off" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      (match
         Channel.request a
           (Message.Hello { flags = Message.flag_metrics; spec = None })
       with
       | Message.Welcome { flags; _ } ->
         Alcotest.(check int) "flag not granted" 0
           (flags land Message.flag_metrics)
       | _ -> Alcotest.fail "Hello failed");
      (match Channel.request a Message.Metrics_req with
       | exception Channel.Protocol_error _ -> ()
       | _ -> Alcotest.fail "in-session Metrics_req should be refused");
      Channel.close a;
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request b Message.Metrics_req with
       | exception Channel.Protocol_error _ -> ()
       | _ -> Alcotest.fail "probe Metrics_req should be refused");
      Channel.close b)

let test_stats_req_at_capacity () =
  let config =
    { Server_loop.default_config with max_sessions = 1; retry_after_s = 0.5 }
  in
  let t = make_loop ~config ~seed:"stats-capacity-test" () in
  let loop = fst t in
  let port = Server_loop.port loop in
  Fun.protect ~finally:(fun () -> stop t)
    (fun () ->
      let a = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request a (Message.Hello { flags = 0; spec = None }) with
       | Message.Welcome _ -> ()
       | _ -> Alcotest.fail "A's Hello failed");
      (* the only slot is taken: a Stats_req probe must still be served,
         without consuming a slot and without counting as a rejection *)
      let rejected_before = Server_loop.rejected loop in
      let text = fetch_stats ~port in
      (match live_field text "active" with
       | Some n -> Alcotest.(check int) "probe sees the busy slot" 1 n
       | None -> Alcotest.fail ("no 'active' line in:\n" ^ text));
      Alcotest.(check int) "probe is not a rejection" rejected_before
        (Server_loop.rejected loop);
      (* a real session is still turned away *)
      let b = Channel.connect ~host:"127.0.0.1" ~port () in
      (match Channel.request b (Message.Hello { flags = 0; spec = None }) with
       | _ -> Alcotest.fail "second session admitted beyond capacity"
       | exception Channel.Busy _ -> ());
      Channel.close b;
      Channel.close a)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "counter merge across 4 domains" `Quick
            test_counter_merge_across_domains;
          Alcotest.test_case "gauge set/add" `Quick test_gauge;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "bad buckets rejected" `Quick
            test_histogram_rejects_bad_buckets;
          Alcotest.test_case "dump format" `Quick test_dump_format;
        ] );
      ( "rollups",
        [
          Alcotest.test_case "fake-clock slot advance" `Quick
            test_rollup_fake_clock;
          Alcotest.test_case "windowed histogram across 4 domains" `Quick
            test_rollup_histogram_across_domains;
        ] );
      ( "spans",
        [
          Alcotest.test_case "JSONL round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "span re-raises, marks error" `Quick
            test_span_reraises_and_marks_error;
          Alcotest.test_case "lint catches leaks" `Quick test_lint_catches_leaks;
          Alcotest.test_case "no sinks = silent" `Quick
            test_no_sinks_is_cheap_and_silent;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "Stats_req sees live sessions" `Quick
            test_stats_req_live_sessions;
          Alcotest.test_case "Stats_req served at capacity" `Quick
            test_stats_req_at_capacity;
          Alcotest.test_case "Metrics_req codec round trip" `Quick
            test_metrics_codec_round_trip;
          Alcotest.test_case "Metrics_req capability gating" `Quick
            test_metrics_capability_gating;
          Alcotest.test_case "Metrics_req disabled end to end" `Quick
            test_metrics_disabled;
        ] );
    ]
