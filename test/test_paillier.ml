(* Tests for the Paillier cryptosystem: round-trips, the homomorphisms
   the protocols rely on, CRT decryption equivalence, probabilistic
   encryption (re-randomization), signed encoding, serialization, and
   error paths. *)

open Ppst_bigint
open Ppst_paillier

let eq_bi = Alcotest.testable Bigint.pp Bigint.equal

let rng () = Ppst_rng.Secure_rng.of_seed_string "paillier-tests"

(* One shared small key for the bulk of the tests (fresh keygen per test
   would dominate run time), plus fresh keys where key identity matters. *)
let shared_rng = rng ()
let pk, sk = Paillier.keygen ~bits:64 shared_rng

let qtest name ?(count = 100) gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let gen_plain =
  (* plaintexts across the full [0, n) range *)
  QCheck2.Gen.map
    (fun s -> Bigint.erem (Bigint.abs (Bigint.of_string s)) pk.Paillier.n)
    QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (int_range 1 25))

let test_keygen_sizes () =
  List.iter
    (fun bits ->
      let r = rng () in
      let pk, _sk = Paillier.keygen ~bits r in
      Alcotest.(check int) (Printf.sprintf "%d-bit modulus" bits) bits
        (Bigint.num_bits pk.Paillier.n))
    [ 32; 64; 128; 256 ]

let test_keygen_too_small () =
  Alcotest.check_raises "below 16 bits"
    (Invalid_argument "Paillier.keygen: modulus below 16 bits") (fun () ->
      ignore (Paillier.keygen ~bits:8 (rng ())))

let test_roundtrip_basic () =
  let r = rng () in
  List.iter
    (fun v ->
      let m = Bigint.of_int v in
      let c = Paillier.encrypt pk r m in
      Alcotest.check eq_bi (string_of_int v) m (Paillier.decrypt sk c))
    [ 0; 1; 2; 42; 123456; 99999999 ]

let test_roundtrip_extremes () =
  let r = rng () in
  let n1 = Bigint.pred pk.Paillier.n in
  Alcotest.check eq_bi "n-1" n1 (Paillier.decrypt sk (Paillier.encrypt pk r n1));
  Alcotest.check eq_bi "0" Bigint.zero
    (Paillier.decrypt sk (Paillier.encrypt pk r Bigint.zero))

let test_plaintext_range_checked () =
  let r = rng () in
  List.iter
    (fun m ->
      match Paillier.encrypt pk r m with
      | _ -> Alcotest.fail "expected Invalid_plaintext"
      | exception Paillier.Invalid_plaintext _ -> ())
    [ Bigint.neg Bigint.one; pk.Paillier.n; Bigint.succ pk.Paillier.n ]

let prop_roundtrip =
  qtest "decrypt . encrypt = id" gen_plain ~print:Bigint.to_string (fun m ->
      let r = rng () in
      Bigint.equal m (Paillier.decrypt sk (Paillier.encrypt pk r m)))

let prop_crt_equals_standard =
  qtest "decrypt_crt = decrypt" gen_plain ~print:Bigint.to_string (fun m ->
      let r = rng () in
      let c = Paillier.encrypt pk r m in
      Bigint.equal (Paillier.decrypt sk c) (Paillier.decrypt_crt sk c))

let prop_additive =
  qtest "Dec(E(a) + E(b)) = a + b mod n"
    (QCheck2.Gen.pair gen_plain gen_plain)
    ~print:(fun (a, b) -> Bigint.to_string a ^ ", " ^ Bigint.to_string b)
    (fun (a, b) ->
      let r = rng () in
      let c = Paillier.add pk (Paillier.encrypt pk r a) (Paillier.encrypt pk r b) in
      Bigint.equal (Bigint.erem (Bigint.add a b) pk.Paillier.n) (Paillier.decrypt_crt sk c))

let prop_add_plain =
  qtest "Dec(E(a) +p k) = a + k mod n"
    (QCheck2.Gen.pair gen_plain gen_plain)
    ~print:(fun (a, b) -> Bigint.to_string a ^ ", " ^ Bigint.to_string b)
    (fun (a, k) ->
      let r = rng () in
      let c = Paillier.add_plain pk (Paillier.encrypt pk r a) k in
      Bigint.equal (Bigint.erem (Bigint.add a k) pk.Paillier.n) (Paillier.decrypt_crt sk c))

let prop_add_plain_negative =
  qtest "Dec(E(a) +p (-k)) = a - k mod n"
    (QCheck2.Gen.pair gen_plain gen_plain)
    ~print:(fun (a, b) -> Bigint.to_string a ^ ", " ^ Bigint.to_string b)
    (fun (a, k) ->
      let r = rng () in
      let c = Paillier.add_plain pk (Paillier.encrypt pk r a) (Bigint.neg k) in
      Bigint.equal (Bigint.erem (Bigint.sub a k) pk.Paillier.n) (Paillier.decrypt_crt sk c))

let prop_scalar_mul =
  qtest "Dec(E(a) * k) = a * k mod n"
    (QCheck2.Gen.pair gen_plain gen_plain)
    ~print:(fun (a, b) -> Bigint.to_string a ^ ", " ^ Bigint.to_string b)
    (fun (a, k) ->
      let r = rng () in
      let c = Paillier.scalar_mul pk (Paillier.encrypt pk r a) k in
      Bigint.equal (Bigint.erem (Bigint.mul a k) pk.Paillier.n) (Paillier.decrypt_crt sk c))

let prop_sub =
  qtest "Dec(E(a) - E(b)) = a - b mod n"
    (QCheck2.Gen.pair gen_plain gen_plain)
    ~print:(fun (a, b) -> Bigint.to_string a ^ ", " ^ Bigint.to_string b)
    (fun (a, b) ->
      let r = rng () in
      let c = Paillier.sub pk (Paillier.encrypt pk r a) (Paillier.encrypt pk r b) in
      Bigint.equal (Bigint.erem (Bigint.sub a b) pk.Paillier.n) (Paillier.decrypt_crt sk c))

let test_probabilistic_encryption () =
  (* same plaintext, different ciphertexts — the property path hiding
     rests on (paper Section 5.5) *)
  let r = rng () in
  let m = Bigint.of_int 777 in
  let c1 = Paillier.encrypt pk r m and c2 = Paillier.encrypt pk r m in
  Alcotest.(check bool) "ciphertexts differ" false (Paillier.equal_ciphertext c1 c2);
  Alcotest.check eq_bi "same plaintext" (Paillier.decrypt_crt sk c1)
    (Paillier.decrypt_crt sk c2)

let test_rerandomize () =
  let r = rng () in
  let m = Bigint.of_int 31337 in
  let c = Paillier.encrypt pk r m in
  let c' = Paillier.rerandomize pk r c in
  Alcotest.(check bool) "fresh ciphertext" false (Paillier.equal_ciphertext c c');
  Alcotest.check eq_bi "plaintext preserved" m (Paillier.decrypt_crt sk c')

let test_neg () =
  let r = rng () in
  let m = Bigint.of_int 5 in
  let c = Paillier.neg pk (Paillier.encrypt pk r m) in
  Alcotest.check eq_bi "n - 5" (Bigint.sub pk.Paillier.n m) (Paillier.decrypt_crt sk c)

let test_encrypt_zero () =
  let r = rng () in
  Alcotest.check eq_bi "zero" Bigint.zero
    (Paillier.decrypt_crt sk (Paillier.encrypt_zero pk r))

let test_signed_encoding () =
  let r = rng () in
  List.iter
    (fun v ->
      let m = Bigint.of_int v in
      let c = Paillier.encrypt_signed pk r m in
      Alcotest.check eq_bi (string_of_int v) m (Paillier.decrypt_signed sk c))
    [ 0; 1; -1; 1000; -1000; 123456789; -123456789 ]

let test_signed_window_checked () =
  let r = rng () in
  let too_big = Bigint.shift_right pk.Paillier.n 1 in
  match Paillier.encrypt_signed pk r (Bigint.neg too_big) with
  | _ -> Alcotest.fail "expected Invalid_plaintext"
  | exception Paillier.Invalid_plaintext _ -> ()

let test_key_mismatch () =
  let r = rng () in
  (* a different seed, or this would regenerate the exact same key *)
  let pk2, _sk2 =
    Paillier.keygen ~bits:64 (Ppst_rng.Secure_rng.of_seed_string "other-key")
  in
  let c = Paillier.encrypt pk r (Bigint.of_int 1) in
  let c2 = Paillier.encrypt pk2 r (Bigint.of_int 1) in
  Alcotest.check_raises "add across keys" Paillier.Key_mismatch (fun () ->
      ignore (Paillier.add pk c c2));
  Alcotest.check_raises "decrypt with wrong key" Paillier.Key_mismatch (fun () ->
      ignore (Paillier.decrypt sk c2))

let test_ciphertext_serialization () =
  let r = rng () in
  let m = Bigint.of_int 424242 in
  let c = Paillier.encrypt pk r m in
  let v = Paillier.ciphertext_to_bigint c in
  let c' = Paillier.ciphertext_of_bigint pk v in
  Alcotest.check eq_bi "round-trip" m (Paillier.decrypt_crt sk c');
  (match Paillier.ciphertext_of_bigint pk pk.Paillier.n_squared with
   | _ -> Alcotest.fail "expected range error"
   | exception Paillier.Invalid_plaintext _ -> ());
  (match Paillier.ciphertext_of_bigint pk (Bigint.neg Bigint.one) with
   | _ -> Alcotest.fail "expected range error"
   | exception Paillier.Invalid_plaintext _ -> ())

let test_ciphertext_bytes () =
  (* 64-bit modulus -> 128-bit n² -> 16 bytes *)
  Alcotest.(check int) "16 bytes" 16 (Paillier.ciphertext_bytes pk)

let test_public_of_modulus () =
  let pk' = Paillier.public_of_modulus pk.Paillier.n ~bits:pk.Paillier.bits in
  let r = rng () in
  let c = Paillier.encrypt pk' r (Bigint.of_int 99) in
  Alcotest.check eq_bi "usable for encryption" (Bigint.of_int 99)
    (Paillier.decrypt_crt sk c);
  (match Paillier.public_of_modulus (Bigint.of_int 16) ~bits:5 with
   | _ -> Alcotest.fail "even modulus accepted"
   | exception Paillier.Invalid_plaintext _ -> ());
  (match Paillier.public_of_modulus pk.Paillier.n ~bits:32 with
   | _ -> Alcotest.fail "wrong bit length accepted"
   | exception Paillier.Invalid_plaintext _ -> ())

let test_key_serialization () =
  let text = Paillier.private_key_to_string sk in
  let pk', sk' = Paillier.private_key_of_string text in
  Alcotest.check eq_bi "same modulus" pk.Paillier.n pk'.Paillier.n;
  let r = rng () in
  let c = Paillier.encrypt pk r (Bigint.of_int 2024) in
  Alcotest.check eq_bi "loaded key decrypts" (Bigint.of_int 2024)
    (Paillier.decrypt_crt sk' c)

let test_key_parse_failures () =
  List.iter
    (fun text ->
      match Paillier.private_key_of_string text with
      | _ -> Alcotest.fail ("accepted: " ^ String.escaped text)
      | exception Paillier.Invalid_plaintext _ -> ())
    [
      "";
      "garbage";
      "ppst-paillier-v1\n";
      "ppst-paillier-v1\np=4\nq=9\n" (* not prime *);
      "ppst-paillier-v1\np=11\nq=11\n" (* equal primes *);
      "ppst-paillier-v1\np=abc\nq=11\n";
    ]

let test_of_primes_validation () =
  (match Paillier.of_primes ~p:(Bigint.of_int 7) ~q:(Bigint.of_int 7) with
   | _ -> Alcotest.fail "equal primes accepted"
   | exception Paillier.Invalid_plaintext _ -> ());
  let pk', sk' = Paillier.of_primes ~p:(Bigint.of_int 1009) ~q:(Bigint.of_int 1013) in
  let r = rng () in
  Alcotest.check eq_bi "tiny key works" (Bigint.of_int 500)
    (Paillier.decrypt_crt sk' (Paillier.encrypt pk' r (Bigint.of_int 500)))

let test_homomorphic_chain () =
  (* a long chain mixing all homomorphic ops, mirroring how the DP matrix
     is assembled: E(((a+b)*3 - c) + 7) *)
  let r = rng () in
  let e v = Paillier.encrypt pk r (Bigint.of_int v) in
  let c =
    Paillier.add_plain pk
      (Paillier.sub pk
         (Paillier.scalar_mul pk (Paillier.add pk (e 10) (e 20)) (Bigint.of_int 3))
         (e 25))
      (Bigint.of_int 7)
  in
  Alcotest.check eq_bi "chain" (Bigint.of_int (((10 + 20) * 3) - 25 + 7))
    (Paillier.decrypt_crt sk c)

let test_randomness_pool () =
  let r = rng () in
  let pool = Paillier.pool_create pk in
  Alcotest.(check int) "empty" 0 (Paillier.pool_size pool);
  Paillier.pool_refill pk pool r 5;
  Alcotest.(check int) "refilled" 5 (Paillier.pool_size pool);
  let m = Bigint.of_int 777 in
  let c1 = Paillier.encrypt_pooled pk pool r m in
  Alcotest.(check int) "consumed one" 4 (Paillier.pool_size pool);
  Alcotest.check eq_bi "pooled decrypts" m (Paillier.decrypt_crt sk c1);
  (* drain the pool; the next call must fall back to a fresh factor *)
  for _ = 1 to 4 do
    ignore (Paillier.encrypt_pooled pk pool r m)
  done;
  Alcotest.(check int) "drained" 0 (Paillier.pool_size pool);
  let c_fallback = Paillier.encrypt_pooled pk pool r m in
  Alcotest.check eq_bi "fallback decrypts" m (Paillier.decrypt_crt sk c_fallback);
  (* pooled ciphertexts of equal plaintexts stay distinct *)
  Paillier.pool_refill pk pool r 2;
  let a = Paillier.encrypt_pooled pk pool r m in
  let b = Paillier.encrypt_pooled pk pool r m in
  Alcotest.(check bool) "probabilistic" false (Paillier.equal_ciphertext a b)

let test_pool_key_mismatch () =
  let r = rng () in
  let pk2, _ = Paillier.keygen ~bits:64 (Ppst_rng.Secure_rng.of_seed_string "pool-other") in
  let pool = Paillier.pool_create pk in
  Alcotest.check_raises "refill with wrong key" Paillier.Key_mismatch (fun () ->
      Paillier.pool_refill pk2 pool r 1);
  Alcotest.check_raises "encrypt with wrong key" Paillier.Key_mismatch (fun () ->
      ignore (Paillier.encrypt_pooled pk2 pool r Bigint.one))

let test_scalar_mul_special_cases () =
  let r = rng () in
  let m = Bigint.of_int 1234 in
  let c = Paillier.encrypt pk r m in
  Alcotest.check eq_bi "x * 0" Bigint.zero
    (Paillier.decrypt_crt sk (Paillier.scalar_mul pk c Bigint.zero));
  Alcotest.check eq_bi "x * 1" m
    (Paillier.decrypt_crt sk (Paillier.scalar_mul pk c Bigint.one));
  Alcotest.check eq_bi "x * (n-1) = -x mod n"
    (Bigint.sub pk.Paillier.n m)
    (Paillier.decrypt_crt sk (Paillier.scalar_mul pk c (Bigint.pred pk.Paillier.n)))

let test_larger_key_roundtrip () =
  let r = rng () in
  let pk, sk = Paillier.keygen ~bits:256 r in
  let m = Bigint.of_string "123456789012345678901234567890" in
  Alcotest.check eq_bi "256-bit key" m (Paillier.decrypt_crt sk (Paillier.encrypt pk r m));
  Alcotest.check eq_bi "256-bit standard dec" m
    (Paillier.decrypt sk (Paillier.encrypt pk r m))

(* --- key-holder (CRT) encryption paths --------------------------------- *)

let test_encrypt_sk_identical () =
  (* same seed, same draws: the CRT path must yield the very same bytes *)
  let m = Bigint.of_int 987654 in
  let c_pk = Paillier.encrypt pk (rng ()) m in
  let c_sk = Paillier.encrypt_sk sk (rng ()) m in
  Alcotest.(check bool) "encrypt_sk = encrypt" true
    (Paillier.equal_ciphertext c_pk c_sk);
  let c_pk' = Paillier.rerandomize pk (rng ()) c_pk in
  let c_sk' = Paillier.rerandomize_sk sk (rng ()) c_pk in
  Alcotest.(check bool) "rerandomize_sk = rerandomize" true
    (Paillier.equal_ciphertext c_pk' c_sk')

let test_encrypt_batch_sk_identical () =
  let plains = Array.init 7 (fun i -> Bigint.of_int (i * 1000)) in
  let batch_pk = Paillier.encrypt_batch pk (rng ()) plains in
  let batch_sk = Paillier.encrypt_batch_sk sk (rng ()) plains in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d" i)
        true
        (Paillier.equal_ciphertext c batch_sk.(i)))
    batch_pk

let test_invert_ciphertext () =
  let r = rng () in
  let m = Bigint.of_int 31415 in
  let c = Paillier.encrypt pk r m in
  Alcotest.check eq_bi "Dec(c^-1) = -m mod n"
    (Paillier.decrypt_crt sk (Paillier.neg pk c))
    (Paillier.decrypt_crt sk (Paillier.invert_ciphertext pk c));
  (* inverting twice is the identity plaintext-wise *)
  Alcotest.check eq_bi "double inverse" m
    (Paillier.decrypt_crt sk
       (Paillier.invert_ciphertext pk (Paillier.invert_ciphertext pk c)))

(* --- offline pool: order, fast refill, async producer ------------------- *)

let test_pool_fifo_transcript_identity () =
  (* a pooled run must consume its rng's r-sequence exactly as the
     unpooled run does: FIFO order makes the ciphertext streams
     bit-identical under the same seed *)
  let plains = Array.init 6 (fun i -> Bigint.of_int (i * 37)) in
  let direct =
    let r = rng () in
    Array.map (Paillier.encrypt pk r) plains
  in
  let pooled =
    let r = rng () in
    let pool = Paillier.pool_create pk in
    Paillier.pool_refill pk pool r (Array.length plains);
    Array.map (Paillier.encrypt_pooled pk pool r) plains
  in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "ciphertext %d identical" i)
        true
        (Paillier.equal_ciphertext c pooled.(i)))
    direct

let test_pool_refill_fast () =
  let r = rng () in
  let pool = Paillier.pool_create pk in
  Paillier.pool_refill_fast pk pool r 8;
  Alcotest.(check int) "filled" 8 (Paillier.pool_size pool);
  let m = Bigint.of_int 271828 in
  for i = 1 to 8 do
    let c = Paillier.encrypt_pooled pk pool r m in
    Alcotest.check eq_bi (Printf.sprintf "fast entry %d decrypts" i) m
      (Paillier.decrypt_crt sk c)
  done;
  Alcotest.(check int) "no misses" 0 (Paillier.pool_misses pool)

let test_pool_refill_async () =
  List.iter
    (fun fast ->
      let r = rng () in
      let pool = Paillier.pool_create pk in
      let join = Paillier.pool_refill_async ~fast pk pool r 10 in
      let m = Bigint.of_int 6022 in
      (* consume concurrently with production: rn_acquire must block on
         promised entries rather than record misses *)
      let cs = Array.init 10 (fun _ -> Paillier.encrypt_pooled pk pool r m) in
      join ();
      Array.iter
        (fun c -> Alcotest.check eq_bi "async entry decrypts" m (Paillier.decrypt_crt sk c))
        cs;
      Alcotest.(check int)
        (Printf.sprintf "no misses (fast=%b)" fast)
        0 (Paillier.pool_misses pool))
    [ false; true ]

let test_noise_gen () =
  let r = rng () in
  let g = Paillier.noise_gen_create pk r in
  let m = Bigint.of_int 1618 in
  let c1 = Paillier.encrypt_with_rn pk ~rn:(Paillier.noise_gen_rn g pk r) m in
  let c2 = Paillier.encrypt_with_rn pk ~rn:(Paillier.noise_gen_rn g pk r) m in
  Alcotest.check eq_bi "decrypts" m (Paillier.decrypt_crt sk c1);
  Alcotest.check eq_bi "decrypts" m (Paillier.decrypt_crt sk c2);
  Alcotest.(check bool) "fresh noise each draw" false
    (Paillier.equal_ciphertext c1 c2);
  let pk2, _ =
    Paillier.keygen ~bits:64 (Ppst_rng.Secure_rng.of_seed_string "noise-other")
  in
  (match Paillier.noise_gen_rn g pk2 r with
   | _ -> Alcotest.fail "wrong-key generator accepted"
   | exception Invalid_argument _ -> ())

let test_pool_hammer () =
  (* the pool is hit from four Domains at once — two producers, two
     consumers.  The mutex-guarded FIFO must neither crash, lose entries
     nor corrupt ciphertexts; afterwards the counters must reconcile:
     every consume either popped an entry or recorded a miss, so
     size = produced - (consumed - misses). *)
  let per_domain = 40 in
  let pool = Paillier.pool_create pk in
  let m = Bigint.of_int 4242 in
  let producers =
    List.map
      (fun seed ->
        Domain.spawn (fun () ->
            let r = Ppst_rng.Secure_rng.of_seed_string seed in
            for _ = 1 to per_domain do
              Paillier.pool_refill pk pool r 1
            done))
      [ "hammer-p1"; "hammer-p2" ]
  in
  let consumers =
    List.map
      (fun seed ->
        Domain.spawn (fun () ->
            let r = Ppst_rng.Secure_rng.of_seed_string seed in
            Array.init per_domain (fun _ -> Paillier.encrypt_pooled pk pool r m)))
      [ "hammer-c1"; "hammer-c2" ]
  in
  List.iter Domain.join producers;
  let batches = List.map Domain.join consumers in
  List.iter
    (fun batch ->
      Array.iter
        (fun c -> Alcotest.check eq_bi "hammered decrypts" m (Paillier.decrypt_crt sk c))
        batch)
    batches;
  let produced = 2 * per_domain and consumed = 2 * per_domain in
  Alcotest.(check int) "counters reconcile"
    (produced - (consumed - Paillier.pool_misses pool))
    (Paillier.pool_size pool)

(* --- plaintext packing --------------------------------------------------- *)

let test_pack_plain_roundtrip () =
  let slot_bits = 7 in
  let capacity = Paillier.pack_capacity pk ~slot_bits in
  (* 64-bit modulus, 1 headroom bit: 63 / 7 = 9 slots *)
  Alcotest.(check int) "capacity" 9 capacity;
  let values = Array.init capacity (fun i -> Bigint.of_int (i * 13 mod 128)) in
  let packed = Paillier.pack_plain pk ~slot_bits values in
  let back = Paillier.unpack_plain ~slot_bits ~count:capacity packed in
  Array.iteri
    (fun i v -> Alcotest.check eq_bi (Printf.sprintf "slot %d" i) v back.(i))
    values;
  (* partial packs round-trip too *)
  let partial = Array.sub values 0 3 in
  let packed = Paillier.pack_plain pk ~slot_bits partial in
  let back = Paillier.unpack_plain ~slot_bits ~count:3 packed in
  Array.iteri (fun i v -> Alcotest.check eq_bi "partial slot" v back.(i)) partial

let test_pack_bounds_checked () =
  let slot_bits = 7 in
  let capacity = Paillier.pack_capacity pk ~slot_bits in
  (* capacity + 1 slots must be rejected: the top slot would eat the
     wrap-guard headroom bit *)
  (match
     Paillier.pack_plain pk ~slot_bits (Array.make (capacity + 1) Bigint.one)
   with
   | _ -> Alcotest.fail "over-capacity pack accepted"
   | exception Invalid_argument _ -> ());
  (match Paillier.pack_plain pk ~slot_bits [||] with
   | _ -> Alcotest.fail "empty pack accepted"
   | exception Invalid_argument _ -> ());
  (* a value needing more than slot_bits bits must be rejected *)
  (match Paillier.pack_plain pk ~slot_bits [| Bigint.of_int 128 |] with
   | _ -> Alcotest.fail "oversized slot value accepted"
   | exception Paillier.Invalid_plaintext _ -> ())

let test_pack_ciphertexts () =
  let r = rng () in
  let slot_bits = 7 in
  let capacity = Paillier.pack_capacity pk ~slot_bits in
  (* exactly at capacity, with boundary values in the extreme slots *)
  let values =
    Array.init capacity (fun i ->
        if i = 0 || i = capacity - 1 then Bigint.of_int 127
        else Bigint.of_int (i * 11 mod 128))
  in
  let cs = Array.map (Paillier.encrypt pk r) values in
  let packed_c = Paillier.pack_ciphertexts pk ~slot_bits cs in
  Alcotest.check eq_bi "homomorphic pack = plaintext pack"
    (Paillier.pack_plain pk ~slot_bits values)
    (Paillier.decrypt_crt sk packed_c);
  let slots =
    Paillier.unpack_plain ~slot_bits ~count:capacity
      (Paillier.decrypt_crt sk packed_c)
  in
  Array.iteri
    (fun i v -> Alcotest.check eq_bi (Printf.sprintf "slot %d" i) v slots.(i))
    values

let () =
  Alcotest.run "paillier"
    [
      ( "keygen",
        [
          Alcotest.test_case "modulus sizes" `Slow test_keygen_sizes;
          Alcotest.test_case "too-small rejected" `Quick test_keygen_too_small;
          Alcotest.test_case "of_primes validation" `Quick test_of_primes_validation;
          Alcotest.test_case "public_of_modulus" `Quick test_public_of_modulus;
        ] );
      ( "encryption",
        [
          Alcotest.test_case "basic round-trips" `Quick test_roundtrip_basic;
          Alcotest.test_case "extreme plaintexts" `Quick test_roundtrip_extremes;
          Alcotest.test_case "range checking" `Quick test_plaintext_range_checked;
          Alcotest.test_case "probabilistic" `Quick test_probabilistic_encryption;
          Alcotest.test_case "re-randomization" `Quick test_rerandomize;
          Alcotest.test_case "encrypt_zero" `Quick test_encrypt_zero;
          Alcotest.test_case "larger keys" `Slow test_larger_key_roundtrip;
          Alcotest.test_case "randomness pool" `Quick test_randomness_pool;
          Alcotest.test_case "pool key mismatch" `Quick test_pool_key_mismatch;
          Alcotest.test_case "scalar_mul special cases" `Quick
            test_scalar_mul_special_cases;
          prop_roundtrip;
          prop_crt_equals_standard;
        ] );
      ( "homomorphisms",
        [
          Alcotest.test_case "negation" `Quick test_neg;
          Alcotest.test_case "mixed chain" `Quick test_homomorphic_chain;
          prop_additive;
          prop_add_plain;
          prop_add_plain_negative;
          prop_scalar_mul;
          prop_sub;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "encrypt_sk = encrypt" `Quick test_encrypt_sk_identical;
          Alcotest.test_case "encrypt_batch_sk = encrypt_batch" `Quick
            test_encrypt_batch_sk_identical;
          Alcotest.test_case "invert_ciphertext" `Quick test_invert_ciphertext;
          Alcotest.test_case "pool FIFO transcript identity" `Quick
            test_pool_fifo_transcript_identity;
          Alcotest.test_case "fast (subgroup) refill" `Quick test_pool_refill_fast;
          Alcotest.test_case "async refill" `Quick test_pool_refill_async;
          Alcotest.test_case "noise generator" `Quick test_noise_gen;
          Alcotest.test_case "pool hammer (4 domains)" `Quick test_pool_hammer;
        ] );
      ( "packing",
        [
          Alcotest.test_case "plain round-trip" `Quick test_pack_plain_roundtrip;
          Alcotest.test_case "bounds checked" `Quick test_pack_bounds_checked;
          Alcotest.test_case "homomorphic pack" `Quick test_pack_ciphertexts;
        ] );
      ( "signed encoding",
        [
          Alcotest.test_case "round-trips" `Quick test_signed_encoding;
          Alcotest.test_case "window checked" `Quick test_signed_window_checked;
        ] );
      ( "keys and wire",
        [
          Alcotest.test_case "key mismatch detected" `Quick test_key_mismatch;
          Alcotest.test_case "ciphertext serialization" `Quick test_ciphertext_serialization;
          Alcotest.test_case "ciphertext byte size" `Quick test_ciphertext_bytes;
          Alcotest.test_case "private key round-trip" `Quick test_key_serialization;
          Alcotest.test_case "key parse failures" `Quick test_key_parse_failures;
        ] );
    ]
