(* Tests for the ChaCha20 block function (RFC 8439 vectors) and the
   CSPRNG built on it: determinism, independence of seeds, range
   invariants, and coarse uniformity checks. *)

open Ppst_bigint
open Ppst_rng

let hex_to_string h =
  let h = String.concat "" (String.split_on_char ' ' h) in
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

(* RFC 8439 section 2.3.2 test vector. *)
let rfc_key =
  hex_to_string
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

let rfc_nonce = hex_to_string "000000090000004a00000000"

let rfc_keystream =
  hex_to_string
    ("10f1e7e4d13b5915500fdd1fa32071c4" ^ "c7d1f4c733c068030422aa9ac3d46c4e"
   ^ "d2826446079faa0914c2d705d98b02a2" ^ "b5129cd1de164eb9cbd083e8a2503c4e")

let test_rfc8439_block () =
  let key = Chacha20.key_of_string rfc_key in
  let nonce = Chacha20.nonce_of_string rfc_nonce in
  let block = Chacha20.block key nonce 1 in
  Alcotest.(check string) "RFC 8439 2.3.2 keystream" rfc_keystream
    (Bytes.to_string block)

let test_block_counter_distinct () =
  let key = Chacha20.key_of_string rfc_key in
  let nonce = Chacha20.nonce_of_string rfc_nonce in
  let b0 = Bytes.to_string (Chacha20.block key nonce 0) in
  let b1 = Bytes.to_string (Chacha20.block key nonce 1) in
  Alcotest.(check bool) "distinct blocks" true (b0 <> b1)

let test_key_nonce_validation () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Chacha20.key_of_string: need 32 bytes") (fun () ->
      ignore (Chacha20.key_of_string "short"));
  Alcotest.check_raises "short nonce"
    (Invalid_argument "Chacha20.nonce_of_string: need 12 bytes") (fun () ->
      ignore (Chacha20.nonce_of_string "short"))

let test_deterministic_streams () =
  let a = Secure_rng.of_seed_string "determinism-test" in
  let b = Secure_rng.of_seed_string "determinism-test" in
  Alcotest.(check string) "same bytes" (Secure_rng.bytes a 100) (Secure_rng.bytes b 100)

let test_different_seeds_diverge () =
  let a = Secure_rng.of_seed_string "seed-A" in
  let b = Secure_rng.of_seed_string "seed-B" in
  Alcotest.(check bool) "different streams" true
    (Secure_rng.bytes a 64 <> Secure_rng.bytes b 64)

let test_seed_too_short () =
  Alcotest.check_raises "short seed"
    (Invalid_argument "Secure_rng.of_seed_bytes: need at least 16 bytes of seed")
    (fun () -> ignore (Secure_rng.of_seed_bytes "short"))

let test_system_rng () =
  (* /dev/urandom exists in the container; two system generators must
     produce different output. *)
  let a = Secure_rng.system () and b = Secure_rng.system () in
  Alcotest.(check bool) "system rngs independent" true
    (Secure_rng.bytes a 32 <> Secure_rng.bytes b 32)

let test_bits_bound () =
  let rng = Secure_rng.of_seed_string "bits-bound" in
  List.iter
    (fun nbits ->
      for _ = 1 to 50 do
        let v = Secure_rng.bits rng nbits in
        Alcotest.(check bool)
          (Printf.sprintf "%d bits" nbits)
          true
          (Bigint.num_bits v <= nbits && not (Bigint.is_negative v))
      done)
    [ 1; 7; 8; 9; 31; 32; 33; 64; 127 ]

let test_below_bound () =
  let rng = Secure_rng.of_seed_string "below-bound" in
  let bound = Bigint.of_string "1000000000000000000000" in
  for _ = 1 to 200 do
    let v = Secure_rng.below rng bound in
    Alcotest.(check bool) "in [0, bound)" true
      ((not (Bigint.is_negative v)) && Bigint.compare v bound < 0)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Secure_rng.below: bound must be positive") (fun () ->
      ignore (Secure_rng.below rng Bigint.zero))

let test_below_hits_all_residues () =
  (* with bound 4, all four values should appear in 200 draws *)
  let rng = Secure_rng.of_seed_string "below-all" in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Bigint.to_int_exn (Secure_rng.below rng (Bigint.of_int 4))) <- true
  done;
  Alcotest.(check bool) "all residues" true (Array.for_all Fun.id seen)

let test_in_range () =
  let rng = Secure_rng.of_seed_string "in-range" in
  let lo = Bigint.of_int 100 and hi = Bigint.of_int 110 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 500 do
    let v = Secure_rng.in_range rng ~lo ~hi in
    Alcotest.(check bool) "in [lo, hi]" true
      (Bigint.compare lo v <= 0 && Bigint.compare v hi <= 0);
    if Bigint.equal v lo then seen_lo := true;
    if Bigint.equal v hi then seen_hi := true
  done;
  Alcotest.(check bool) "inclusive endpoints reached" true (!seen_lo && !seen_hi);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Secure_rng.in_range: lo > hi")
    (fun () -> ignore (Secure_rng.in_range rng ~lo:hi ~hi:lo))

let test_int_uniformity_coarse () =
  (* coarse uniformity smoke test: 10 buckets, 5000 draws; each bucket
     must hold 350-650 (far outside what a fair generator would miss) *)
  let rng = Secure_rng.of_seed_string "uniformity" in
  let buckets = Array.make 10 0 in
  for _ = 1 to 5000 do
    let v = Secure_rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d = %d" i c) true
        (c > 350 && c < 650))
    buckets

let test_shuffle_permutation () =
  let rng = Secure_rng.of_seed_string "shuffle" in
  let arr = Array.init 50 Fun.id in
  let shuffled = Array.copy arr in
  Secure_rng.shuffle_in_place rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = arr);
  Alcotest.(check bool) "actually moved" true (shuffled <> arr)

let test_shuffle_all_positions () =
  (* every element must be able to reach every position: shuffle [0;1;2]
     many times and count position occupancy *)
  let rng = Secure_rng.of_seed_string "shuffle-positions" in
  let counts = Array.make_matrix 3 3 0 in
  for _ = 1 to 600 do
    let arr = [| 0; 1; 2 |] in
    Secure_rng.shuffle_in_place rng arr;
    Array.iteri (fun pos v -> counts.(v).(pos) <- counts.(v).(pos) + 1) arr
  done;
  Array.iteri
    (fun v row ->
      Array.iteri
        (fun pos c ->
          Alcotest.(check bool)
            (Printf.sprintf "value %d position %d count %d" v pos c)
            true (c > 120 && c < 280))
        row)
    counts

let test_byte_stream_no_short_cycle () =
  (* 4096 bytes should not contain a repeated 64-byte block back-to-back *)
  let rng = Secure_rng.of_seed_string "cycle-check" in
  let s = Secure_rng.bytes rng 4096 in
  let ok = ref true in
  for i = 0 to (4096 / 64) - 2 do
    if String.sub s (i * 64) 64 = String.sub s ((i + 1) * 64) 64 then ok := false
  done;
  Alcotest.(check bool) "no repeated blocks" true !ok

let () =
  Alcotest.run "rng"
    [
      ( "chacha20",
        [
          Alcotest.test_case "RFC 8439 block vector" `Quick test_rfc8439_block;
          Alcotest.test_case "counter separates blocks" `Quick test_block_counter_distinct;
          Alcotest.test_case "key/nonce validation" `Quick test_key_nonce_validation;
        ] );
      ( "secure_rng",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_deterministic_streams;
          Alcotest.test_case "seeds diverge" `Quick test_different_seeds_diverge;
          Alcotest.test_case "short seed rejected" `Quick test_seed_too_short;
          Alcotest.test_case "system generator" `Quick test_system_rng;
          Alcotest.test_case "bits bound" `Quick test_bits_bound;
          Alcotest.test_case "below bound" `Quick test_below_bound;
          Alcotest.test_case "below hits all residues" `Quick test_below_hits_all_residues;
          Alcotest.test_case "in_range inclusive" `Quick test_in_range;
          Alcotest.test_case "coarse uniformity" `Quick test_int_uniformity_coarse;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle covers positions" `Quick test_shuffle_all_positions;
          Alcotest.test_case "no short cycles" `Quick test_byte_stream_no_short_cycle;
        ] );
    ]
