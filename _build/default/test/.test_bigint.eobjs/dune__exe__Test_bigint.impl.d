test/test_bigint.ml: Alcotest Array Bigint List Modular Ppst_bigint Prime Printf QCheck2 QCheck_alcotest Splitmix
