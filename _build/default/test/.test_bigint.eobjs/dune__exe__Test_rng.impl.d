test/test_rng.ml: Alcotest Array Bigint Bytes Chacha20 Char Fun List Ppst_bigint Ppst_rng Printf Secure_rng String
