test/test_timeseries.ml: Alcotest Array Csv Distance Filename Format Fun Generate Knn List Lower_bound Normalize Paa Ppst_timeseries Printf QCheck2 QCheck_alcotest Series Sys
