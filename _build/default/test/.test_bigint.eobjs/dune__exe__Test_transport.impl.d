test/test_transport.ml: Alcotest Bigint Channel Fun List Message Netsim Ppst_bigint Ppst_transport QCheck2 QCheck_alcotest Stats String Thread Trace Wire
