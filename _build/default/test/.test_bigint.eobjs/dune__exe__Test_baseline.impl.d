test/test_baseline.ml: Alcotest Ppst_baseline
