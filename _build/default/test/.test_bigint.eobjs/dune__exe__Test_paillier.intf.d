test/test_paillier.mli:
