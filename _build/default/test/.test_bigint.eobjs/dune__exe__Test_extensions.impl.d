test/test_extensions.ml: Alcotest Array Bigint Channel Distance Format Fun List Message Ppst Ppst_timeseries Printf QCheck2 QCheck_alcotest Secure_rng Series Stats
