test/test_protocol.ml: Alcotest Array Bigint Channel Distance Format List Message Paillier Ppst Printf QCheck2 QCheck_alcotest Secure_rng Series Stats
