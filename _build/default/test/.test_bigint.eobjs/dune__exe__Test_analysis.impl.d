test/test_analysis.ml: Alcotest Array List Ppst Ppst_bigint Ppst_timeseries Printf
