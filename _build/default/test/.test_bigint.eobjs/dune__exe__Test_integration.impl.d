test/test_integration.ml: Alcotest Array Bigint Channel Distance Filename Fun List Paillier Ppst Ppst_timeseries Printf Secure_rng Series Stats Stdlib Sys Thread
