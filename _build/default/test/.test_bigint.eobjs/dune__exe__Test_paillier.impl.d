test/test_paillier.ml: Alcotest Bigint List Paillier Ppst_bigint Ppst_paillier Ppst_rng Printf QCheck2 QCheck_alcotest String
