(* Tests for the baseline cost models (Atallah et al. and garbled
   circuits) and for the paper's headline comparison numbers. *)

let close_to = Alcotest.float 1e-9

let test_yao_invocations () =
  Alcotest.(check int) "paper numbers: 3*100*100*1" 30_000
    (Ppst_baseline.Atallah.yao_invocations ~m:100 ~n:100 ~d:1);
  Alcotest.(check int) "quadratic in d" 30_000
    (Ppst_baseline.Atallah.yao_invocations ~m:10 ~n:10 ~d:10);
  Alcotest.(check int) "d squared" (3 * 10 * 10 * 25)
    (Ppst_baseline.Atallah.yao_invocations ~m:10 ~n:10 ~d:5)

let test_paper_37000_seconds () =
  (* "Atallah et al's protocol needs at least 37000 seconds" at n=100,
     d=1: 3*100*100*1.25 = 37500 *)
  let est = Ppst_baseline.Atallah.estimated_seconds ~m:100 ~n:100 ~d:1 () in
  Alcotest.check close_to "37500 s" 37_500.0 est;
  Alcotest.(check bool) "paper's 'at least 37000'" true (est >= 37_000.0)

let test_slow_network () =
  let slow =
    Ppst_baseline.Atallah.estimated_seconds
      ~per_call:Ppst_baseline.Atallah.fairplay_slow_seconds ~m:100 ~n:100 ~d:1 ()
  in
  Alcotest.check close_to "slow network" 120_000.0 slow

let test_speedup_three_orders () =
  (* the paper claims >= 3 orders of magnitude; our measured DTW at
     n = 100 takes seconds, so even a pessimistic 30 s gives > 1000x *)
  let speedup = Ppst_baseline.Atallah.speedup_vs ~measured_seconds:30.0 ~m:100 ~n:100 ~d:1 in
  Alcotest.(check bool) "three orders" true (speedup >= 1000.0)

let test_atallah_validation () =
  (match Ppst_baseline.Atallah.yao_invocations ~m:0 ~n:1 ~d:1 with
   | _ -> Alcotest.fail "bad size accepted"
   | exception Invalid_argument _ -> ());
  (match Ppst_baseline.Atallah.speedup_vs ~measured_seconds:0.0 ~m:1 ~n:1 ~d:1 with
   | _ -> Alcotest.fail "zero measurement accepted"
   | exception Invalid_argument _ -> ())

let test_garbled_gates () =
  (* per cell with d=1, b=32: 32 + 1024 + 0 + 128 + 32 = 1216 gates *)
  Alcotest.(check int) "single cell" 1216
    (Ppst_baseline.Garbled.and_gates ~m:1 ~n:1 ~d:1 ~bits:32);
  Alcotest.(check int) "scales with mn" (100 * 1216)
    (Ppst_baseline.Garbled.and_gates ~m:10 ~n:10 ~d:1 ~bits:32)

let test_garbled_estimate_dominates_paillier () =
  (* even the optimistic garbled model is slower than our measured runs:
     100x100 cells * 1216 gates * 10us ≈ 122 s *)
  let est = Ppst_baseline.Garbled.estimated_seconds ~m:100 ~n:100 ~d:1 ~bits:32 () in
  Alcotest.(check bool) "over 100 s" true (est > 100.0)

let test_garbled_validation () =
  match Ppst_baseline.Garbled.and_gates ~m:1 ~n:1 ~d:1 ~bits:0 with
  | _ -> Alcotest.fail "zero bits accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "baseline"
    [
      ( "atallah",
        [
          Alcotest.test_case "yao invocation counts" `Quick test_yao_invocations;
          Alcotest.test_case "paper's 37000 s estimate" `Quick test_paper_37000_seconds;
          Alcotest.test_case "slow network" `Quick test_slow_network;
          Alcotest.test_case "three orders of magnitude" `Quick test_speedup_three_orders;
          Alcotest.test_case "validation" `Quick test_atallah_validation;
        ] );
      ( "garbled circuits",
        [
          Alcotest.test_case "gate counts" `Quick test_garbled_gates;
          Alcotest.test_case "dominates homomorphic approach" `Quick
            test_garbled_estimate_dominates_paillier;
          Alcotest.test_case "validation" `Quick test_garbled_validation;
        ] );
    ]
