(* Tests for the security-analysis modules: entropy preservation (paper
   Section 5.4) and the leakage/attack simulations (Sections 4, 5.3). *)

let close_to () = Alcotest.float 1e-6

(* --- entropy ---------------------------------------------------------------- *)

let test_uniform_entropy () =
  Alcotest.check (close_to ()) "Γ=1" 0.0 (Ppst.Entropy.uniform_entropy 1);
  (* 2Γ-1 = 3 points -> log2 3 *)
  Alcotest.check (close_to ()) "Γ=2" (log 3.0 /. log 2.0) (Ppst.Entropy.uniform_entropy 2);
  Alcotest.check (close_to ()) "Γ=2^16" (log 131071.0 /. log 2.0)
    (Ppst.Entropy.uniform_entropy 65536)

let test_triangular_entropy_tiny_exact () =
  (* Γ=2: sums of two uniforms on {2,3}: P(4)=1/4, P(5)=1/2, P(6)=1/4
     -> H = 1.5 bits *)
  Alcotest.check (close_to ()) "Γ=2 exact" 1.5 (Ppst.Entropy.triangular_sum_entropy 2);
  (* Γ=1: a single possible sum -> 0 bits *)
  Alcotest.check (close_to ()) "Γ=1" 0.0 (Ppst.Entropy.triangular_sum_entropy 1)

let test_triangular_vs_convolution () =
  (* the closed-form summation must equal the generic convolution path *)
  List.iter
    (fun gamma_cap ->
      let u = Array.make gamma_cap (1.0 /. float_of_int gamma_cap) in
      let conv = Ppst.Entropy.convolve u u in
      Alcotest.check (close_to ()) (Printf.sprintf "Γ=%d" gamma_cap)
        (Ppst.Entropy.triangular_sum_entropy gamma_cap)
        (Ppst.Entropy.shannon conv))
    [ 2; 3; 7; 32; 100 ]

let test_entropy_preservation_bound () =
  (* paper Eq. 9: H(S) > log2(2Γ-1) / 2, for all Γ >= 2 (sweep) *)
  List.iter
    (fun gamma_cap ->
      let h = Ppst.Entropy.triangular_sum_entropy gamma_cap in
      let bound = Ppst.Entropy.uniform_entropy gamma_cap /. 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "Γ=%d: %.3f > %.3f" gamma_cap h bound)
        true (h > bound))
    [ 2; 3; 4; 8; 100; 1024; 65536; 1 lsl 20 ]

let test_min_entropy () =
  (* peak of the triangular distribution is 1/Γ -> min-entropy log2 Γ *)
  Alcotest.check (close_to ()) "Γ=256" 8.0 (Ppst.Entropy.min_entropy 256);
  let u = Array.make 16 (1.0 /. 16.0) in
  let conv = Ppst.Entropy.convolve u u in
  Alcotest.check (close_to ()) "min_entropy_of conv" 4.0 (Ppst.Entropy.min_entropy_of conv)

let test_entropy_fraction_grows () =
  (* the preserved fraction approaches 1 from below as Γ grows *)
  let f16 = Ppst.Entropy.preserved_fraction 16 in
  let f65536 = Ppst.Entropy.preserved_fraction 65536 in
  Alcotest.(check bool) "monotone" true (f65536 > f16);
  Alcotest.(check bool) "above half" true (f16 > 0.5);
  Alcotest.(check bool) "below one" true (f65536 < 1.0)

let test_convolve_shapes () =
  let a = [| 0.5; 0.5 |] and b = [| 1.0 |] in
  let c = Ppst.Entropy.convolve a b in
  Alcotest.(check int) "length" 2 (Array.length c);
  Alcotest.check (close_to ()) "p0" 0.5 c.(0);
  (* non-uniform x uniform *)
  let skew = [| 0.9; 0.1 |] in
  let c2 = Ppst.Entropy.convolve skew skew in
  Alcotest.check (close_to ()) "p(0)" 0.81 c2.(0);
  Alcotest.check (close_to ()) "p(1)" 0.18 c2.(1);
  Alcotest.check (close_to ()) "p(2)" 0.01 c2.(2)

let test_empirical_matches_analytic () =
  (* masked-sum samples from the protocol's ranges must empirically show
     at least half the uniform entropy (the paper's guarantee) *)
  let beta = 8 and gamma = 10 in
  let samples = Ppst.Leakage.masked_sum_samples ~beta ~gamma ~count:50_000 ~seed:3 in
  let hist = Ppst.Entropy.empirical ~samples in
  let h = Ppst.Entropy.shannon hist in
  (* offsets span 2^gamma values: uniform bound log2(2*2^gamma - 1) ≈ 11 *)
  let uniform = Ppst.Entropy.uniform_entropy (1 lsl gamma) in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.2f > %.2f/2" h uniform)
    true
    (h > uniform /. 2.0)

let test_entropy_validation () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "bad input accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (Ppst.Entropy.uniform_entropy 0));
      (fun () -> ignore (Ppst.Entropy.triangular_sum_entropy (-1)));
      (fun () -> ignore (Ppst.Entropy.convolve [||] [| 1.0 |]));
      (fun () -> ignore (Ppst.Entropy.shannon [| 0.0 |]));
      (fun () -> ignore (Ppst.Entropy.empirical ~samples:[||]));
    ]

(* --- leakage: section 4 matrix-inference attack ------------------------------ *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance

let test_paper_inference_example () =
  (* the paper's exact narrative: owner of X = (3,4,5,4,6,7) with the
     plaintext matrix recovers Y = (2,4,6,5,7) step by step *)
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] in
  let y = Series.of_list [ 2; 4; 6; 5; 7 ] in
  let matrix = Distance.dtw_sq_matrix x y in
  match Ppst.Leakage.infer_server_series ~x ~matrix with
  | Some inferred ->
    Alcotest.(check (array int)) "recovered Y" [| 2; 4; 6; 5; 7 |] inferred
  | None -> Alcotest.fail "inference failed"

let test_inference_random_cases () =
  let rng = Ppst_bigint.Splitmix.create 17 in
  let successes = ref 0 in
  for _ = 1 to 30 do
    let m = 4 + Ppst_bigint.Splitmix.int rng 5 in
    let n = 4 + Ppst_bigint.Splitmix.int rng 5 in
    let x = Series.of_list (List.init m (fun _ -> Ppst_bigint.Splitmix.int rng 50)) in
    let y = Series.of_list (List.init n (fun _ -> Ppst_bigint.Splitmix.int rng 50)) in
    let matrix = Distance.dtw_sq_matrix x y in
    match Ppst.Leakage.infer_server_series ~x ~matrix with
    | Some inferred ->
      if inferred = Array.init n (fun j -> Series.value y j) then incr successes
    | None -> ()
  done;
  (* the attack should succeed in the vast majority of random instances —
     that is the point of Section 4 *)
  Alcotest.(check bool)
    (Printf.sprintf "attack works (%d/30)" !successes)
    true (!successes >= 25)

let test_inference_validation () =
  let x2d = Series.create [| [| 1; 2 |] |] in
  (match Ppst.Leakage.infer_server_series ~x:x2d ~matrix:[| [| 1 |] |] with
   | _ -> Alcotest.fail "2-d accepted"
   | exception Invalid_argument _ -> ());
  let x = Series.of_list [ 1; 2 ] in
  (match Ppst.Leakage.infer_server_series ~x ~matrix:[| [| 1 |] |] with
   | _ -> Alcotest.fail "shape mismatch accepted"
   | exception Invalid_argument _ -> ())

(* --- leakage: section 5.3 gap attack ----------------------------------------- *)

let test_guess_baseline () =
  Alcotest.check (close_to ()) "k=10" (2.0 /. 110.0) (Ppst.Leakage.guess_baseline ~k:10)

let test_cluster_attack_directional () =
  let k = 10 in
  (* valid parameters: gamma - beta = 2 < alpha = 3 *)
  let ok = Ppst.Leakage.cluster_attack ~beta:20 ~gamma:22 ~k ~trials:1500 ~seed:5 in
  (* broken parameters: offsets vastly wider than values *)
  let broken = Ppst.Leakage.cluster_attack ~beta:20 ~gamma:36 ~k ~trials:1500 ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "broken params expose the triple (%.2f)" broken.Ppst.Leakage.rate)
    true
    (broken.Ppst.Leakage.rate > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "valid params resist (%.2f < %.2f)" ok.Ppst.Leakage.rate
       broken.Ppst.Leakage.rate)
    true
    (ok.Ppst.Leakage.rate < broken.Ppst.Leakage.rate -. 0.2)

let test_cluster_attack_k_helps () =
  (* larger k (denser offsets) makes the three smallest less revealing *)
  let small_k = Ppst.Leakage.cluster_attack ~beta:20 ~gamma:22 ~k:4 ~trials:1500 ~seed:6 in
  let big_k = Ppst.Leakage.cluster_attack ~beta:20 ~gamma:22 ~k:40 ~trials:1500 ~seed:6 in
  Alcotest.(check bool)
    (Printf.sprintf "k=40 (%.2f) < k=4 (%.2f)" big_k.Ppst.Leakage.rate
       small_k.Ppst.Leakage.rate)
    true
    (big_k.Ppst.Leakage.rate < small_k.Ppst.Leakage.rate)

let test_cluster_attack_stats_consistent () =
  let r = Ppst.Leakage.cluster_attack ~beta:10 ~gamma:12 ~k:8 ~trials:100 ~seed:1 in
  Alcotest.(check int) "trials" 100 r.Ppst.Leakage.trials;
  Alcotest.(check bool) "rate = successes/trials" true
    (abs_float (r.Ppst.Leakage.rate -. (float_of_int r.Ppst.Leakage.successes /. 100.0))
     < 1e-9)

let test_simulation_range_guard () =
  (match Ppst.Leakage.cluster_attack ~beta:61 ~gamma:62 ~k:4 ~trials:1 ~seed:1 with
   | _ -> Alcotest.fail "oversize range accepted"
   | exception Invalid_argument _ -> ());
  (match Ppst.Leakage.masked_sum_samples ~beta:61 ~gamma:30 ~count:1 ~seed:1 with
   | _ -> Alcotest.fail "oversize range accepted"
   | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "analysis"
    [
      ( "entropy",
        [
          Alcotest.test_case "uniform baseline" `Quick test_uniform_entropy;
          Alcotest.test_case "triangular exact (tiny)" `Quick
            test_triangular_entropy_tiny_exact;
          Alcotest.test_case "closed form = convolution" `Quick
            test_triangular_vs_convolution;
          Alcotest.test_case "Eq. 9 preservation bound" `Quick
            test_entropy_preservation_bound;
          Alcotest.test_case "min-entropy" `Quick test_min_entropy;
          Alcotest.test_case "fraction grows with Γ" `Quick test_entropy_fraction_grows;
          Alcotest.test_case "convolution shapes" `Quick test_convolve_shapes;
          Alcotest.test_case "empirical sums" `Quick test_empirical_matches_analytic;
          Alcotest.test_case "validation" `Quick test_entropy_validation;
        ] );
      ( "matrix inference (Section 4)",
        [
          Alcotest.test_case "paper example" `Quick test_paper_inference_example;
          Alcotest.test_case "random instances" `Quick test_inference_random_cases;
          Alcotest.test_case "validation" `Quick test_inference_validation;
        ] );
      ( "gap attack (Section 5.3)",
        [
          Alcotest.test_case "guess baseline" `Quick test_guess_baseline;
          Alcotest.test_case "directional" `Quick test_cluster_attack_directional;
          Alcotest.test_case "larger k resists" `Quick test_cluster_attack_k_helps;
          Alcotest.test_case "stats consistent" `Quick test_cluster_attack_stats_consistent;
          Alcotest.test_case "range guard" `Quick test_simulation_range_guard;
        ] );
    ]
