(* Tests for the time-series substrate: series containers, all distance
   functions (fixed vectors from the paper plus metric properties),
   generators, normalization/quantization, CSV persistence, and kNN. *)

open Ppst_timeseries

let series = Alcotest.testable Series.pp Series.equal

let qtest name ?(count = 200) gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

(* Random positive-integer 1-d series of length 1..12, values 0..50. *)
let gen_series_1d =
  let open QCheck2.Gen in
  let* len = int_range 1 12 in
  let* values = list_size (return len) (int_range 0 50) in
  return (Series.of_list values)

(* Random d-dimensional series. *)
let gen_series_nd =
  let open QCheck2.Gen in
  let* d = int_range 1 4 in
  let* len = int_range 1 8 in
  let* data =
    list_size (return len) (list_size (return d) (int_range 0 30))
  in
  return (Series.create (Array.of_list (List.map Array.of_list data)))

let print_series s = Format.asprintf "%a" Series.pp s

let pair_same_dim =
  let open QCheck2.Gen in
  let* d = int_range 1 3 in
  let mk =
    let* len = int_range 1 8 in
    let* data = list_size (return len) (list_size (return d) (int_range 0 30)) in
    return (Series.create (Array.of_list (List.map Array.of_list data)))
  in
  pair mk mk

(* --- Series ------------------------------------------------------------- *)

let test_series_create_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Series.create: empty series")
    (fun () -> ignore (Series.create [||]));
  Alcotest.check_raises "zero-dim"
    (Invalid_argument "Series.create: zero-dimensional elements") (fun () ->
      ignore (Series.create [| [||] |]));
  (match Series.create [| [| 1 |]; [| 1; 2 |] |] with
   | _ -> Alcotest.fail "ragged accepted"
   | exception Invalid_argument _ -> ())

let test_series_accessors () =
  let s = Series.create [| [| 1; 2 |]; [| 3; 4 |]; [| 5; 6 |] |] in
  Alcotest.(check int) "length" 3 (Series.length s);
  Alcotest.(check int) "dimension" 2 (Series.dimension s);
  Alcotest.(check (array int)) "get" [| 3; 4 |] (Series.get s 1);
  Alcotest.(check int) "max_abs" 6 (Series.max_abs_value s)

let test_series_value_1d_only () =
  let s1 = Series.of_list [ 9; 8 ] in
  Alcotest.(check int) "value" 8 (Series.value s1 1);
  let s2 = Series.create [| [| 1; 2 |] |] in
  Alcotest.check_raises "multi-dim"
    (Invalid_argument "Series.value: series is not 1-dimensional") (fun () ->
      ignore (Series.value s2 0))

let test_series_immutability () =
  let raw = [| [| 1 |]; [| 2 |] |] in
  let s = Series.create raw in
  raw.(0).(0) <- 99;
  Alcotest.(check int) "input copied" 1 (Series.value s 0);
  let out = Series.to_array s in
  out.(0).(0) <- 42;
  Alcotest.(check int) "output copied" 1 (Series.value s 0)

let test_series_sub_append () =
  let s = Series.of_list [ 1; 2; 3; 4; 5 ] in
  let mid = Series.sub s ~pos:1 ~len:3 in
  Alcotest.check series "sub" (Series.of_list [ 2; 3; 4 ]) mid;
  Alcotest.check series "append"
    (Series.of_list [ 2; 3; 4; 2; 3; 4 ])
    (Series.append mid mid);
  Alcotest.check_raises "bad bounds" (Invalid_argument "Series.sub: bounds")
    (fun () -> ignore (Series.sub s ~pos:4 ~len:3))

let test_series_map () =
  let s = Series.of_list [ 1; 2; 3 ] in
  Alcotest.check series "double"
    (Series.of_list [ 2; 4; 6 ])
    (Series.map (Array.map (fun v -> 2 * v)) s)

(* --- distances: fixed vectors ------------------------------------------ *)

(* The paper's Figure 1 example: X = (3,4,5,4,6,7), Y = (2,4,6,5,7) with
   squared Euclidean local costs gives the matrix whose corner is 3.  (The
   figure itself uses |.|; with squares the DTW value is 3 and DFD is 1.) *)
let paper_x = Series.of_list [ 3; 4; 5; 4; 6; 7 ]
let paper_y = Series.of_list [ 2; 4; 6; 5; 7 ]

let test_dtw_paper_example () =
  Alcotest.(check int) "dtw" 3 (Distance.dtw_sq paper_x paper_y)

let test_dfd_paper_example () =
  Alcotest.(check int) "dfd" 1 (Distance.dfd_sq paper_x paper_y)

let test_dtw_matrix_shape () =
  let m = Distance.dtw_sq_matrix paper_x paper_y in
  Alcotest.(check int) "rows" 6 (Array.length m);
  Alcotest.(check int) "cols" 5 (Array.length m.(0));
  Alcotest.(check int) "m00 = (3-2)^2" 1 m.(0).(0);
  Alcotest.(check int) "corner" 3 m.(5).(4)

let test_sq_euclidean () =
  Alcotest.(check int) "1d" 9 (Distance.sq_euclidean [| 5 |] [| 2 |]);
  Alcotest.(check int) "3d" 27 (Distance.sq_euclidean [| 1; 2; 3 |] [| 4; 5; 6 |]);
  Alcotest.(check int) "same" 0 (Distance.sq_euclidean [| 7; 7 |] [| 7; 7 |]);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Distance.sq_euclidean: dimension mismatch (2 vs 1)")
    (fun () -> ignore (Distance.sq_euclidean [| 1; 2 |] [| 1 |]))

let test_euclidean_sq_series () =
  let a = Series.of_list [ 1; 2; 3 ] and b = Series.of_list [ 2; 4; 6 ] in
  Alcotest.(check int) "1+4+9" 14 (Distance.euclidean_sq a b);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Distance.euclidean_sq: series lengths differ") (fun () ->
      ignore (Distance.euclidean_sq a (Series.of_list [ 1 ])))

let test_dtw_known_warp () =
  (* X = (0,0,10), Y = (0,10,10): DTW warps and only pays 0;
     lockstep Euclidean pays 100. *)
  let x = Series.of_list [ 0; 0; 10 ] and y = Series.of_list [ 0; 10; 10 ] in
  Alcotest.(check int) "dtw warps" 0 (Distance.dtw_sq x y);
  Alcotest.(check int) "euclid does not" 100 (Distance.euclidean_sq x y)

let test_dfd_bottleneck () =
  (* DFD is the worst coupling gap: one big outlier dominates *)
  let x = Series.of_list [ 0; 0; 0 ] and y = Series.of_list [ 0; 9; 0 ] in
  Alcotest.(check int) "dfd" 81 (Distance.dfd_sq x y);
  Alcotest.(check int) "dtw sums but can warp" 81 (Distance.dtw_sq x y)

let test_different_lengths () =
  let x = Series.of_list [ 1; 2; 3; 4; 5; 6 ] and y = Series.of_list [ 1; 6 ] in
  (* must not raise; basic sanity on values *)
  Alcotest.(check bool) "dtw >= 0" true (Distance.dtw_sq x y >= 0);
  Alcotest.(check bool) "dfd >= dtw impossible in general" true (Distance.dfd_sq x y >= 0)

let test_multidim_distances () =
  let x = Series.create [| [| 0; 0 |]; [| 3; 4 |] |] in
  let y = Series.create [| [| 0; 0 |]; [| 0; 0 |] |] in
  Alcotest.(check int) "dtw 2d" 25 (Distance.dtw_sq x y);
  Alcotest.(check int) "dfd 2d" 25 (Distance.dfd_sq x y)

let test_banded_dtw () =
  let x = Series.of_list [ 0; 0; 10 ] and y = Series.of_list [ 0; 10; 10 ] in
  Alcotest.(check (option int)) "wide band = plain dtw"
    (Some (Distance.dtw_sq x y))
    (Distance.dtw_sq_banded ~band:5 x y);
  Alcotest.(check (option int)) "band 0 = lockstep" (Some 100)
    (Distance.dtw_sq_banded ~band:0 x y);
  let long = Series.of_list [ 1; 1; 1; 1; 1 ] and short = Series.of_list [ 1 ] in
  Alcotest.(check (option int)) "band below length gap" None
    (Distance.dtw_sq_banded ~band:2 long short)

let test_dtw_path () =
  let path = Distance.dtw_sq_path paper_x paper_y in
  Alcotest.(check (pair int int)) "starts at origin" (0, 0) (List.hd path);
  Alcotest.(check (pair int int)) "ends at corner" (5, 4)
    (List.nth path (List.length path - 1));
  (* steps move by at most 1 in each coordinate, monotonically *)
  let rec check_steps = function
    | (i1, j1) :: ((i2, j2) :: _ as rest) ->
      Alcotest.(check bool) "monotone unit step" true
        (i2 - i1 >= 0 && i2 - i1 <= 1 && j2 - j1 >= 0 && j2 - j1 <= 1
         && i2 + j2 > i1 + j1);
      check_steps rest
    | _ -> ()
  in
  check_steps path;
  (* path cost must equal the DTW distance *)
  let cost =
    List.fold_left
      (fun acc (i, j) ->
        acc + Distance.sq_euclidean (Series.get paper_x i) (Series.get paper_y j))
      0 path
  in
  Alcotest.(check int) "path cost = distance" (Distance.dtw_sq paper_x paper_y) cost

let test_erp () =
  let x = Series.of_list [ 1; 2 ] and y = Series.of_list [ 1; 2 ] in
  Alcotest.(check int) "identical" 0 (Distance.erp_sq ~gap:[| 0 |] x y);
  (* [1;2;5] vs [1;2]: the optimal alignment deletes x1 (cost 1), matches
     2~1 (cost 1) and 5~2 (cost 9) — cheaper than deleting the 5 (25) *)
  let x2 = Series.of_list [ 1; 2; 5 ] in
  Alcotest.(check int) "one deletion" 11 (Distance.erp_sq ~gap:[| 0 |] x2 y);
  Alcotest.check_raises "gap dimension"
    (Invalid_argument "Distance.erp_sq: gap element dimension mismatch") (fun () ->
      ignore (Distance.erp_sq ~gap:[| 0; 0 |] x y))

let test_float_distances_match_int () =
  (* on integer data, float DTW with squared local costs isn't defined;
     but float euclidean² should equal the int version *)
  let xi = Series.of_list [ 1; 5; 7 ] and yi = Series.of_list [ 2; 2; 9 ] in
  let xf = Series.Fseries.of_list [ 1.; 5.; 7. ] in
  let yf = Series.Fseries.of_list [ 2.; 2.; 9. ] in
  Alcotest.(check (float 1e-9)) "euclidean"
    (sqrt (float_of_int (Distance.euclidean_sq xi yi)))
    (Distance.euclidean xf yf);
  Alcotest.(check bool) "dtw float positive" true (Distance.dtw xf yf >= 0.0);
  Alcotest.(check bool) "dfd float positive" true (Distance.dfd xf yf >= 0.0)

(* --- distances: properties ---------------------------------------------- *)

let prop_dtw_identity =
  qtest "dtw(x, x) = 0" gen_series_nd ~print:print_series (fun s ->
      Distance.dtw_sq s s = 0)

let prop_dfd_identity =
  qtest "dfd(x, x) = 0" gen_series_nd ~print:print_series (fun s ->
      Distance.dfd_sq s s = 0)

let prop_dtw_symmetric =
  qtest "dtw symmetric" pair_same_dim
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (a, b) -> Distance.dtw_sq a b = Distance.dtw_sq b a)

let prop_dfd_symmetric =
  qtest "dfd symmetric" pair_same_dim
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (a, b) -> Distance.dfd_sq a b = Distance.dfd_sq b a)

let prop_dfd_le_max_cost =
  qtest "dfd <= max pairwise cost" pair_same_dim
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (a, b) ->
      let worst = ref 0 in
      for i = 0 to Series.length a - 1 do
        for j = 0 to Series.length b - 1 do
          worst := max !worst (Distance.sq_euclidean (Series.get a i) (Series.get b j))
        done
      done;
      Distance.dfd_sq a b <= !worst)

let prop_dtw_le_euclidean =
  (* the lockstep path is one admissible coupling for equal lengths *)
  let gen =
    let open QCheck2.Gen in
    let* len = int_range 1 10 in
    let* v1 = list_size (return len) (int_range 0 50) in
    let* v2 = list_size (return len) (int_range 0 50) in
    return (Series.of_list v1, Series.of_list v2)
  in
  qtest "dtw <= lockstep euclidean" gen
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (a, b) -> Distance.dtw_sq a b <= Distance.euclidean_sq a b)

let prop_dfd_le_dtw =
  (* max over the optimal-DTW coupling <= sum over it; and DFD minimizes
     the max, so dfd <= dtw always *)
  qtest "dfd <= dtw" pair_same_dim
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (a, b) -> Distance.dfd_sq a b <= Distance.dtw_sq a b)

let prop_banded_ge_unbanded =
  qtest "banded dtw >= dtw" pair_same_dim
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (a, b) ->
      match Distance.dtw_sq_banded ~band:2 a b with
      | None -> true
      | Some banded -> banded >= Distance.dtw_sq a b)

let prop_translation_invariance =
  qtest "dtw invariant under joint translation" gen_series_1d ~print:print_series
    (fun s ->
      (* shifting BOTH series by the same offset preserves every pairwise
         cost and hence the distance *)
      let shift t = Series.map (Array.map (fun v -> v + 7)) t in
      let other = Series.map (Array.map (fun v -> (v * 2) mod 51)) s in
      Distance.dtw_sq s other = Distance.dtw_sq (shift s) (shift other)
      && Distance.dfd_sq s other = Distance.dfd_sq (shift s) (shift other))

(* --- generators ---------------------------------------------------------- *)

let test_generators_deterministic () =
  let a = Generate.ecg_int ~seed:3 ~length:50 ~max_value:100 in
  let b = Generate.ecg_int ~seed:3 ~length:50 ~max_value:100 in
  Alcotest.check series "same seed same series" a b;
  let c = Generate.ecg_int ~seed:4 ~length:50 ~max_value:100 in
  Alcotest.(check bool) "different seed differs" false (Series.equal a c)

let test_generator_ranges () =
  let checks =
    [
      ("ecg", Generate.ecg_int ~seed:1 ~length:80 ~max_value:100, 1, 100);
      ("signature", Generate.signature_int ~seed:1 ~length:40 ~max_value:60, 2, 60);
      ("trajectory", Generate.trajectory_int ~seed:1 ~length:40 ~max_value:80, 2, 80);
      ("vectors", Generate.random_vectors ~seed:1 ~length:30 ~dim:5 ~max_value:100, 5, 100);
    ]
  in
  List.iter
    (fun (name, s, dim, maxv) ->
      Alcotest.(check int) (name ^ " dim") dim (Series.dimension s);
      let lo = ref max_int and hi = ref 0 in
      for i = 0 to Series.length s - 1 do
        Array.iter
          (fun v ->
            if v < !lo then lo := v;
            if v > !hi then hi := v)
          (Series.get s i)
      done;
      Alcotest.(check bool) (name ^ " in [1, max]") true (!lo >= 1 && !hi <= maxv))
    checks

let test_ecg_periodicity () =
  (* the ECG generator must produce a strongly autocorrelated signal:
     R peaks repeat roughly every samples_per_beat; check that the series
     has high variance concentrated in spikes (max >> mean) *)
  let s = Generate.ecg_int ~seed:9 ~length:200 ~max_value:1000 in
  let values = Array.init (Series.length s) (fun i -> Series.value s i) in
  let mean = Array.fold_left ( + ) 0 values / Array.length values in
  let maxv = Array.fold_left max 0 values in
  Alcotest.(check bool) "spiky morphology" true (maxv > mean * 2)

let test_sine_with_noise () =
  let s = Generate.sine_with_noise ~seed:2 ~length:100 ~period:25.0 ~noise:0.0 in
  (* noiseless sine: v(i) ≈ v(i+25) *)
  let v i = (Series.Fseries.get s i).(0) in
  Alcotest.(check (float 1e-6)) "period" (v 10) (v 35)

let test_generator_validation () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "bad size accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (Generate.ecg ~seed:1 ~length:0));
      (fun () -> ignore (Generate.random_walk ~seed:1 ~length:5 ~dim:0));
      (fun () -> ignore (Generate.random_vectors ~seed:1 ~length:0 ~dim:1 ~max_value:9));
      (fun () -> ignore (Generate.sine_with_noise ~seed:1 ~length:5 ~period:0.0 ~noise:0.1));
    ]

let test_perturb () =
  let base = Generate.ecg ~seed:5 ~length:60 in
  let noisy = Generate.perturb ~seed:6 ~noise:0.05 base in
  Alcotest.(check int) "same length" (Series.Fseries.length base)
    (Series.Fseries.length noisy);
  let far = Generate.ecg ~seed:99 ~length:60 in
  let q s = Normalize.quantize ~max_value:100 s in
  let d_near = Distance.dtw_sq (q base) (q noisy) in
  let d_far = Distance.dtw_sq (q base) (q far) in
  Alcotest.(check bool)
    (Printf.sprintf "perturbed closer than unrelated (%d < %d)" d_near d_far)
    true (d_near < d_far)

(* --- normalize ----------------------------------------------------------- *)

let test_z_normalize () =
  let s = Series.Fseries.of_list [ 2.0; 4.0; 6.0; 8.0 ] in
  let z = Normalize.z_normalize s in
  let mean, std = Normalize.mean_std z in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 mean.(0);
  Alcotest.(check (float 1e-9)) "std 1" 1.0 std.(0)

let test_z_normalize_constant () =
  let s = Series.Fseries.of_list [ 5.0; 5.0; 5.0 ] in
  let z = Normalize.z_normalize s in
  Alcotest.(check (float 1e-9)) "centered" 0.0 (Series.Fseries.get z 0).(0)

let test_min_max () =
  let s = Series.Fseries.of_list [ 0.0; 5.0; 10.0 ] in
  let r = Normalize.min_max ~lo:0.0 ~hi:1.0 s in
  Alcotest.(check (float 1e-9)) "lo" 0.0 (Series.Fseries.get r 0).(0);
  Alcotest.(check (float 1e-9)) "mid" 0.5 (Series.Fseries.get r 1).(0);
  Alcotest.(check (float 1e-9)) "hi" 1.0 (Series.Fseries.get r 2).(0);
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Normalize.min_max: lo >= hi")
    (fun () -> ignore (Normalize.min_max ~lo:1.0 ~hi:1.0 s))

let test_quantize () =
  let s = Series.Fseries.of_list [ -1.0; 0.0; 1.0 ] in
  let q = Normalize.quantize ~max_value:100 s in
  Alcotest.(check int) "min -> 1" 1 (Series.value q 0);
  Alcotest.(check int) "max -> 100" 100 (Series.value q 2);
  Alcotest.(check bool) "mid in range" true
    (Series.value q 1 >= 1 && Series.value q 1 <= 100);
  Alcotest.check_raises "max_value < 2"
    (Invalid_argument "Normalize.quantize: max_value < 2") (fun () ->
      ignore (Normalize.quantize ~max_value:1 s))

let test_dequantize () =
  let s = Series.of_list [ 1; 2; 3 ] in
  let f = Normalize.dequantize s in
  Alcotest.(check (float 1e-9)) "value" 2.0 (Series.Fseries.get f 1).(0)

(* --- csv ----------------------------------------------------------------- *)

let test_csv_roundtrip_string () =
  let s = Series.create [| [| 1; 2 |]; [| 3; 4 |] |] in
  Alcotest.check series "string round-trip" s (Csv.of_string (Csv.to_string s))

let test_csv_file_roundtrip () =
  let s = Generate.ecg_int ~seed:11 ~length:30 ~max_value:100 in
  let path = Filename.temp_file "ppst_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save path s;
      Alcotest.check series "file round-trip" s (Csv.load path))

let test_csv_many_roundtrip () =
  let list = [ Series.of_list [ 1; 2 ]; Series.of_list [ 3 ]; Series.of_list [ 4; 5; 6 ] ] in
  let path = Filename.temp_file "ppst_test_many" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save_many path list;
      let loaded = Csv.load_many path in
      Alcotest.(check int) "count" 3 (List.length loaded);
      List.iter2 (fun a b -> Alcotest.check series "entry" a b) list loaded)

let test_csv_float_roundtrip () =
  let s = Series.Fseries.of_list [ 1.5; -2.25; 3.125 ] in
  let path = Filename.temp_file "ppst_test_f" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save_f path s;
      let loaded = Csv.load_f path in
      Alcotest.(check (float 1e-9)) "v1" 1.5 (Series.Fseries.get loaded 0).(0);
      Alcotest.(check (float 1e-9)) "v2" (-2.25) (Series.Fseries.get loaded 1).(0))

let test_csv_malformed () =
  (match Csv.of_string "1,2\nthree,4\n" with
   | _ -> Alcotest.fail "accepted garbage"
   | exception Csv.Parse_error { line = 2; _ } -> ()
   | exception Csv.Parse_error _ -> Alcotest.fail "wrong line reported");
  (match Csv.of_string "" with
   | _ -> Alcotest.fail "accepted empty"
   | exception Csv.Parse_error _ -> ())

(* --- lower bounds ----------------------------------------------------------- *)

let test_envelope_basic () =
  let y = Series.of_list [ 1; 5; 3; 9; 2 ] in
  let upper, lower = Lower_bound.envelope ~band:1 y in
  Alcotest.(check (array int)) "upper" [| 5; 5; 9; 9; 9 |] upper;
  Alcotest.(check (array int)) "lower" [| 1; 1; 3; 2; 2 |] lower;
  let u0, l0 = Lower_bound.envelope ~band:0 y in
  Alcotest.(check (array int)) "band 0 upper = series" [| 1; 5; 3; 9; 2 |] u0;
  Alcotest.(check (array int)) "band 0 lower = series" [| 1; 5; 3; 9; 2 |] l0

let test_envelope_validation () =
  (match Lower_bound.envelope ~band:(-1) (Series.of_list [ 1 ]) with
   | _ -> Alcotest.fail "negative band accepted"
   | exception Invalid_argument _ -> ());
  (match Lower_bound.envelope ~band:1 (Series.create [| [| 1; 2 |] |]) with
   | _ -> Alcotest.fail "2-d accepted"
   | exception Invalid_argument _ -> ())

let test_lb_keogh_band0_is_euclidean () =
  let x = Series.of_list [ 1; 4; 2; 8 ] and y = Series.of_list [ 2; 2; 2; 2 ] in
  Alcotest.(check int) "band 0" (Distance.euclidean_sq x y)
    (Lower_bound.lb_keogh ~band:0 x y)

let prop_lb_keogh_bounds_banded_dtw =
  let gen =
    let open QCheck2.Gen in
    let* len = int_range 2 10 in
    let* band = int_range 0 3 in
    let* v1 = list_size (return len) (int_range 0 40) in
    let* v2 = list_size (return len) (int_range 0 40) in
    return (Series.of_list v1, Series.of_list v2, band)
  in
  qtest "LB_Keogh <= banded DTW" ~count:300 gen
    ~print:(fun (a, b, band) ->
      Printf.sprintf "%s / %s band=%d" (print_series a) (print_series b) band)
    (fun (x, y, band) ->
      match Distance.dtw_sq_banded ~band x y with
      | None -> true
      | Some banded -> Lower_bound.lb_keogh ~band x y <= banded)

let prop_lb_keogh_wider_band_looser =
  let gen =
    let open QCheck2.Gen in
    let* len = int_range 2 10 in
    let* v1 = list_size (return len) (int_range 0 40) in
    let* v2 = list_size (return len) (int_range 0 40) in
    return (Series.of_list v1, Series.of_list v2)
  in
  qtest "wider band never increases LB" ~count:200 gen
    ~print:(fun (a, b) -> print_series a ^ " / " ^ print_series b)
    (fun (x, y) ->
      Lower_bound.lb_keogh ~band:2 x y <= Lower_bound.lb_keogh ~band:1 x y
      && Lower_bound.lb_keogh ~band:1 x y <= Lower_bound.lb_keogh ~band:0 x y)

let test_prune_keeps_true_matches () =
  let query = Series.of_list [ 5; 5; 5; 5 ] in
  let db =
    [| Series.of_list [ 5; 5; 5; 6 ] (* close *);
       Series.of_list [ 50; 50; 50; 50 ] (* far *);
       Series.of_list [ 5; 5 ] (* different length: must be kept *) |]
  in
  let kept = Lower_bound.prune ~band:1 ~radius:10 ~query db in
  Alcotest.(check (list int)) "prunes only the far entry" [ 0; 2 ] kept;
  (* soundness: every pruned entry really exceeds the radius *)
  List.iter
    (fun i ->
      if not (List.mem i kept) then
        match Distance.dtw_sq_banded ~band:1 query db.(i) with
        | Some d -> Alcotest.(check bool) "pruned is far" true (d > 10)
        | None -> ())
    [ 0; 1; 2 ]

(* --- paa / sax ---------------------------------------------------------------- *)

let test_paa_basic () =
  let s = Series.Fseries.of_list [ 1.0; 3.0; 5.0; 7.0 ] in
  let means = Paa.paa ~segments:2 s in
  Alcotest.(check int) "segment count" 2 (Array.length means);
  Alcotest.(check (float 1e-9)) "first frame" 2.0 means.(0);
  Alcotest.(check (float 1e-9)) "second frame" 6.0 means.(1);
  (* segments = length -> identity *)
  let id = Paa.paa ~segments:4 s in
  Alcotest.(check (float 1e-9)) "identity" 5.0 id.(2)

let test_paa_uneven_frames () =
  let s = Series.Fseries.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let means = Paa.paa ~segments:2 s in
  (* frames [0,2) and [2,5): means 1.5 and 4.0 *)
  Alcotest.(check (float 1e-9)) "short frame" 1.5 means.(0);
  Alcotest.(check (float 1e-9)) "long frame" 4.0 means.(1)

let test_paa_preserves_mean () =
  (* the weighted mean of PAA frames equals the series mean *)
  let s = Generate.ecg ~seed:3 ~length:60 in
  let means = Paa.paa ~segments:6 s in
  let paa_mean = Array.fold_left ( +. ) 0.0 means /. 6.0 in
  let series_mean =
    let acc = ref 0.0 in
    for i = 0 to 59 do
      acc := !acc +. (Series.Fseries.get s i).(0)
    done;
    !acc /. 60.0
  in
  Alcotest.(check (float 1e-9)) "mean preserved (equal frames)" series_mean paa_mean

let test_paa_validation () =
  let s = Series.Fseries.of_list [ 1.0; 2.0 ] in
  (match Paa.paa ~segments:0 s with
   | _ -> Alcotest.fail "zero segments"
   | exception Invalid_argument _ -> ());
  (match Paa.paa ~segments:3 s with
   | _ -> Alcotest.fail "too many segments"
   | exception Invalid_argument _ -> ())

let test_sax_breakpoints () =
  let b3 = Paa.sax_breakpoints ~alphabet:3 in
  Alcotest.(check int) "count" 2 (Array.length b3);
  Alcotest.(check (float 1e-9)) "symmetric" (-.b3.(0)) b3.(1);
  (match Paa.sax_breakpoints ~alphabet:1 with
   | _ -> Alcotest.fail "alphabet 1"
   | exception Invalid_argument _ -> ());
  (match Paa.sax_breakpoints ~alphabet:11 with
   | _ -> Alcotest.fail "alphabet 11"
   | exception Invalid_argument _ -> ())

let test_sax_word () =
  (* a rising ramp maps to non-decreasing symbols *)
  let s = Series.Fseries.of_list (List.init 32 (fun i -> float_of_int i)) in
  let word = Paa.sax ~segments:8 ~alphabet:4 s in
  Alcotest.(check int) "length" 8 (Array.length word);
  Array.iter
    (fun sym -> Alcotest.(check bool) "in range" true (sym >= 0 && sym < 4))
    word;
  let rec non_decreasing i =
    i >= Array.length word - 1 || (word.(i) <= word.(i + 1) && non_decreasing (i + 1))
  in
  Alcotest.(check bool) "monotone" true (non_decreasing 0);
  Alcotest.(check bool) "uses low and high symbols" true
    (word.(0) = 0 && word.(7) = 3)

let test_sax_identical_words_zero_distance () =
  let s = Generate.ecg ~seed:4 ~length:64 in
  let w = Paa.sax ~segments:8 ~alphabet:6 s in
  Alcotest.(check (float 1e-9)) "self distance" 0.0
    (Paa.sax_distance_sq ~alphabet:6 ~original_length:64 w w)

let prop_sax_mindist_lower_bounds_euclidean =
  (* the SAX guarantee: MINDIST(Â, B̂) <= D(A, B) on z-normalized data *)
  let gen =
    let open QCheck2.Gen in
    let* len = return 32 in
    let* v1 = list_size (return len) (int_range 0 100) in
    let* v2 = list_size (return len) (int_range 0 100) in
    return
      ( Series.Fseries.create
          (Array.of_list (List.map (fun v -> [| float_of_int v |]) v1)),
        Series.Fseries.create
          (Array.of_list (List.map (fun v -> [| float_of_int v |]) v2)) )
  in
  qtest "SAX MINDIST <= euclidean of z-normalized" ~count:100 gen
    ~print:(fun _ -> "series pair")
    (fun (a, b) ->
      let za = Normalize.z_normalize a and zb = Normalize.z_normalize b in
      let d2 =
        let acc = ref 0.0 in
        for i = 0 to Series.Fseries.length za - 1 do
          let x = (Series.Fseries.get za i).(0) -. (Series.Fseries.get zb i).(0) in
          acc := !acc +. (x *. x)
        done;
        !acc
      in
      let wa = Paa.sax ~segments:8 ~alphabet:6 a in
      let wb = Paa.sax ~segments:8 ~alphabet:6 b in
      Paa.sax_distance_sq ~alphabet:6 ~original_length:32 wa wb <= d2 +. 1e-9)

(* --- knn ----------------------------------------------------------------- *)

let knn_db =
  [|
    Series.of_list [ 0; 0; 0 ];
    Series.of_list [ 10; 10; 10 ];
    Series.of_list [ 5; 5; 5 ];
    Series.of_list [ 1; 1; 2 ];
  |]

let test_knn_nearest () =
  let i, d = Knn.nearest Knn.Dtw_sq ~query:(Series.of_list [ 1; 1; 1 ]) knn_db in
  Alcotest.(check int) "index" 3 i;
  Alcotest.(check int) "distance" 1 d;
  Alcotest.check_raises "empty db" (Invalid_argument "Knn.nearest: empty database")
    (fun () -> ignore (Knn.nearest Knn.Dtw_sq ~query:(Series.of_list [ 1 ]) [||]))

let test_knn_k_nearest () =
  let top2 = Knn.k_nearest Knn.Dtw_sq ~k:2 ~query:(Series.of_list [ 0; 0; 0 ]) knn_db in
  Alcotest.(check (list (pair int int))) "ordered" [ (0, 0); (3, 6) ] top2;
  let all = Knn.k_nearest Knn.Dtw_sq ~k:10 ~query:(Series.of_list [ 0; 0; 0 ]) knn_db in
  Alcotest.(check int) "clamped to db size" 4 (List.length all)

let test_knn_within () =
  let hits = Knn.within Knn.Euclidean_sq ~radius:10 ~query:(Series.of_list [ 0; 0; 0 ]) knn_db in
  Alcotest.(check (list (pair int int))) "within" [ (0, 0); (3, 6) ] hits

let test_knn_metrics_dispatch () =
  let q = Series.of_list [ 0; 0; 9 ] in
  let s = Series.of_list [ 0; 9; 9 ] in
  Alcotest.(check int) "dtw" (Distance.dtw_sq q s) (Knn.distance Knn.Dtw_sq q s);
  Alcotest.(check int) "dfd" (Distance.dfd_sq q s) (Knn.distance Knn.Dfd_sq q s);
  Alcotest.(check int) "euclid" (Distance.euclidean_sq q s)
    (Knn.distance Knn.Euclidean_sq q s)

let () =
  Alcotest.run "timeseries"
    [
      ( "series",
        [
          Alcotest.test_case "creation validation" `Quick test_series_create_validation;
          Alcotest.test_case "accessors" `Quick test_series_accessors;
          Alcotest.test_case "value is 1-d only" `Quick test_series_value_1d_only;
          Alcotest.test_case "immutability" `Quick test_series_immutability;
          Alcotest.test_case "sub/append" `Quick test_series_sub_append;
          Alcotest.test_case "map" `Quick test_series_map;
        ] );
      ( "distances",
        [
          Alcotest.test_case "paper DTW example" `Quick test_dtw_paper_example;
          Alcotest.test_case "paper DFD example" `Quick test_dfd_paper_example;
          Alcotest.test_case "DTW matrix" `Quick test_dtw_matrix_shape;
          Alcotest.test_case "squared Euclidean" `Quick test_sq_euclidean;
          Alcotest.test_case "series Euclidean" `Quick test_euclidean_sq_series;
          Alcotest.test_case "DTW warps" `Quick test_dtw_known_warp;
          Alcotest.test_case "DFD bottleneck" `Quick test_dfd_bottleneck;
          Alcotest.test_case "unequal lengths" `Quick test_different_lengths;
          Alcotest.test_case "multi-dimensional" `Quick test_multidim_distances;
          Alcotest.test_case "banded DTW" `Quick test_banded_dtw;
          Alcotest.test_case "optimal path" `Quick test_dtw_path;
          Alcotest.test_case "ERP" `Quick test_erp;
          Alcotest.test_case "float variants" `Quick test_float_distances_match_int;
          prop_dtw_identity;
          prop_dfd_identity;
          prop_dtw_symmetric;
          prop_dfd_symmetric;
          prop_dfd_le_max_cost;
          prop_dtw_le_euclidean;
          prop_dfd_le_dtw;
          prop_banded_ge_unbanded;
          prop_translation_invariance;
        ] );
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "value ranges" `Quick test_generator_ranges;
          Alcotest.test_case "ECG morphology" `Quick test_ecg_periodicity;
          Alcotest.test_case "sine period" `Quick test_sine_with_noise;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "perturb keeps similarity" `Quick test_perturb;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "z-normalize" `Quick test_z_normalize;
          Alcotest.test_case "constant series" `Quick test_z_normalize_constant;
          Alcotest.test_case "min-max" `Quick test_min_max;
          Alcotest.test_case "quantize" `Quick test_quantize;
          Alcotest.test_case "dequantize" `Quick test_dequantize;
        ] );
      ( "csv",
        [
          Alcotest.test_case "string round-trip" `Quick test_csv_roundtrip_string;
          Alcotest.test_case "file round-trip" `Quick test_csv_file_roundtrip;
          Alcotest.test_case "multi-series files" `Quick test_csv_many_roundtrip;
          Alcotest.test_case "float files" `Quick test_csv_float_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_csv_malformed;
        ] );
      ( "paa / sax",
        [
          Alcotest.test_case "paa basics" `Quick test_paa_basic;
          Alcotest.test_case "uneven frames" `Quick test_paa_uneven_frames;
          Alcotest.test_case "mean preserved" `Quick test_paa_preserves_mean;
          Alcotest.test_case "validation" `Quick test_paa_validation;
          Alcotest.test_case "breakpoints" `Quick test_sax_breakpoints;
          Alcotest.test_case "sax word" `Quick test_sax_word;
          Alcotest.test_case "self distance" `Quick test_sax_identical_words_zero_distance;
          prop_sax_mindist_lower_bounds_euclidean;
        ] );
      ( "lower bounds",
        [
          Alcotest.test_case "envelope" `Quick test_envelope_basic;
          Alcotest.test_case "envelope validation" `Quick test_envelope_validation;
          Alcotest.test_case "band 0 = euclidean" `Quick test_lb_keogh_band0_is_euclidean;
          Alcotest.test_case "prune soundness" `Quick test_prune_keeps_true_matches;
          prop_lb_keogh_bounds_banded_dtw;
          prop_lb_keogh_wider_band_looser;
        ] );
      ( "knn",
        [
          Alcotest.test_case "nearest" `Quick test_knn_nearest;
          Alcotest.test_case "k-nearest" `Quick test_knn_k_nearest;
          Alcotest.test_case "within radius" `Quick test_knn_within;
          Alcotest.test_case "metric dispatch" `Quick test_knn_metrics_dispatch;
        ] );
    ]
