lib/paillier/paillier.mli: Bigint Modular Ppst_bigint Ppst_rng
