lib/paillier/paillier.ml: Bigint List Modular Ppst_bigint Ppst_rng Prime Printf String
