lib/transport/trace.mli:
