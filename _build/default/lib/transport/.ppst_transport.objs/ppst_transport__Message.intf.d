lib/transport/message.mli: Bigint Ppst_bigint
