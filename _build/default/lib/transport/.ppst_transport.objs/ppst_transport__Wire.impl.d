lib/transport/wire.ml: Array Bigint Buffer Char Ppst_bigint Printf String
