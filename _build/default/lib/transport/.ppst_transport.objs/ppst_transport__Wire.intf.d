lib/transport/wire.mli: Ppst_bigint
