lib/transport/netsim.ml: Format Trace
