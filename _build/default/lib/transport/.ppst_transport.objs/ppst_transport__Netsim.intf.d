lib/transport/netsim.mli: Format Trace
