lib/transport/stats.mli: Format
