lib/transport/trace.ml: List
