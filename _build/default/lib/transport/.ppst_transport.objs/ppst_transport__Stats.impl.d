lib/transport/stats.ml: Format
