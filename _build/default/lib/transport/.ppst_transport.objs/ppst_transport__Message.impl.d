lib/transport/message.ml: Array Bigint Ppst_bigint Printf String Wire
