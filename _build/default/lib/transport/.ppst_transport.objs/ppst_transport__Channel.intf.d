lib/transport/channel.mli: Message Stats Trace Unix
