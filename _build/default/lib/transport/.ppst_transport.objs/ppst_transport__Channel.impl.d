lib/transport/channel.ml: Array Bytes Char Fun Message Printexc Printf Stats String Trace Unix Wire
