(** Analytic network-cost model: replay a {!Trace} against a link to
    predict the protocol's wall-clock time on networks the benchmark
    machine does not have.

    The model charges each request/reply round one round-trip time plus
    serialization delay for both payloads (headers included), on top of
    the measured computation time:

    [predicted = compute + Σ_rounds (rtt + (req + 4 + rep + 4) / bandwidth)]

    This is deliberately simple — no congestion, no pipelining across
    rounds (the protocol is strictly request/reply), no TCP slow start.
    It is the lens that makes the wavefront extension's value visible:
    sequential DTW pays [(m-1)(n-1)] RTTs, wavefront pays [m + n - 3]. *)

type link = {
  rtt_seconds : float;  (** round-trip latency *)
  bandwidth_bytes_per_second : float;
}

val lan : link
(** 0.2 ms RTT, 1 Gbit/s. *)

val wan : link
(** 30 ms RTT, 100 Mbit/s. *)

val datacenter : link
(** 0.05 ms RTT, 10 Gbit/s. *)

val link : rtt_ms:float -> mbit_per_s:float -> link

type estimate = {
  compute_seconds : float;
  latency_seconds : float;  (** rounds × RTT *)
  transfer_seconds : float;  (** bytes / bandwidth *)
  total_seconds : float;
}

val estimate : link:link -> compute_seconds:float -> Trace.t -> estimate

val pp_estimate : Format.formatter -> estimate -> unit
