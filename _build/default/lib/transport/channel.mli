(** Client-side view of the two-party link: a request/reply channel with
    full communication accounting.

    Two implementations:
    - {!local}: in-process, backed by a server-side handler function.
      Every message is still serialized and deserialized through the real
      wire format, so byte counts equal what a socket run would transfer;
      the handler's wall-clock time is accumulated separately, enabling
      per-party timing (paper Figures 6 and 10).
    - {!connect}/{!serve}: TCP over [Unix], with length-prefixed frames. *)

exception Protocol_error of string
(** Raised on an [Error_reply] from the peer or a transport-level
    violation (unexpected reply kind, short read, ...). *)

type t

val request : t -> Message.request -> Message.reply
(** One round trip.  Accounting is updated on both directions.
    @raise Protocol_error when the peer signals an error. *)

val stats : t -> Stats.t

val trace : t -> Trace.t option

val server_seconds : t -> float
(** Wall-clock time spent inside the server handler (local channels) or
    [0.] when unknown (remote channels report their own). *)

val close : t -> unit
(** Sends [Bye] (best-effort) and releases resources. *)

(** {1 In-process} *)

val local : ?trace:Trace.t -> (Message.request -> Message.reply) -> t
(** [?trace] records every request/reply pair's byte sizes for
    {!Netsim} replay. *)

(** {1 TCP} *)

val connect : host:string -> port:int -> t
(** @raise Unix.Unix_error on connection failure. *)

val serve_once :
  port:int -> handler:(Message.request -> Message.reply) -> unit
(** Accept a single connection on [port] and answer requests until [Bye]
    or EOF.  [Bye] is answered with [Bye_ack] before returning.  Handler
    exceptions are converted to [Error_reply] frames, keeping the server
    alive. *)

(** {1 Frame I/O (exposed for the server binary and tests)} *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string option
(** [None] on clean EOF.
    @raise Protocol_error on truncated frames or oversized lengths. *)
