(** Per-round message traces.

    A trace records the byte size of every request/reply pair that crossed
    a channel, in order.  {!Netsim} replays a trace against a network
    model to predict wall-clock time on links the benchmark machine does
    not have — the paper measured on localhost only, and the value of
    round-trip reductions (wavefront batching) only shows under real
    latency. *)

type entry = { request_bytes : int; reply_bytes : int }

type t

val create : unit -> t
val record : t -> request_bytes:int -> reply_bytes:int -> unit
val entries : t -> entry list
(** In transmission order. *)

val rounds : t -> int
val total_bytes : t -> int
