type entry = { request_bytes : int; reply_bytes : int }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let record t ~request_bytes ~reply_bytes =
  t.rev_entries <- { request_bytes; reply_bytes } :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries
let rounds t = t.count

let total_bytes t =
  List.fold_left
    (fun acc e -> acc + e.request_bytes + e.reply_bytes)
    0 t.rev_entries
