type link = { rtt_seconds : float; bandwidth_bytes_per_second : float }

let link ~rtt_ms ~mbit_per_s =
  if rtt_ms < 0.0 || mbit_per_s <= 0.0 then invalid_arg "Netsim.link: bad parameters";
  {
    rtt_seconds = rtt_ms /. 1000.0;
    bandwidth_bytes_per_second = mbit_per_s *. 1_000_000.0 /. 8.0;
  }

let lan = link ~rtt_ms:0.2 ~mbit_per_s:1000.0
let wan = link ~rtt_ms:30.0 ~mbit_per_s:100.0
let datacenter = link ~rtt_ms:0.05 ~mbit_per_s:10_000.0

type estimate = {
  compute_seconds : float;
  latency_seconds : float;
  transfer_seconds : float;
  total_seconds : float;
}

let frame_header_bytes = 4

let estimate ~link ~compute_seconds trace =
  let latency = float_of_int (Trace.rounds trace) *. link.rtt_seconds in
  let wire_bytes =
    Trace.total_bytes trace + (2 * frame_header_bytes * Trace.rounds trace)
  in
  let transfer = float_of_int wire_bytes /. link.bandwidth_bytes_per_second in
  {
    compute_seconds;
    latency_seconds = latency;
    transfer_seconds = transfer;
    total_seconds = compute_seconds +. latency +. transfer;
  }

let pp_estimate fmt e =
  Format.fprintf fmt
    "@[<h>total %.3fs (compute %.3fs + latency %.3fs + transfer %.3fs)@]"
    e.total_seconds e.compute_seconds e.latency_seconds e.transfer_seconds
