(** Rough cost model for a garbled-circuit realization of secure DTW —
    the approach the paper rules out in Section 2.3 (Huang et al. /
    Jha et al. compute {e edit distance} with cheap XOR equality gates;
    time-series distances need full adders and multipliers, blowing up
    the circuit).

    The model counts non-free (AND) gates with textbook circuit sizes:
    [b²] per [b]-bit multiplier, [b] per adder/comparator, and charges a
    per-gate garble+evaluate time.  It is deliberately optimistic (no
    communication, no oblivious transfers) — the point the paper makes
    survives even an optimistic model. *)

val and_gates : m:int -> n:int -> d:int -> bits:int -> int
(** Non-free gate count for the whole DTW circuit on [bits]-bit values. *)

val per_gate_seconds : float
(** 10 µs per non-free gate — an optimistic 2014-era garbling figure. *)

val estimated_seconds : ?gate_seconds:float -> m:int -> n:int -> d:int -> bits:int -> unit -> float
