(** Analytic cost model of Atallah, Kerschbaum & Du, "Secure and private
    sequence comparisons" (WPES 2003) — the prior art the paper compares
    against in Sections 2.3 and 7.

    Their protocol shares the DP matrix additively between the parties
    and runs Yao's protocol inside a minimum-finding subroutine; the
    paper estimates [3·m·n·d²] Yao invocations, each costing at least
    1.25 s in Fairplay over a fast network (4 s slow).  The paper never
    runs Atallah's protocol either — it reports exactly this estimate
    ("at least 37000 seconds" at m = n = 100, d = 1), which we
    reproduce. *)

val yao_invocations : m:int -> n:int -> d:int -> int
(** [3 * m * n * d²]. *)

val fairplay_fast_seconds : float
(** 1.25 s per Yao invocation (Fairplay, fast network — paper §7). *)

val fairplay_slow_seconds : float
(** 4 s per Yao invocation (slow network). *)

val estimated_seconds : ?per_call:float -> m:int -> n:int -> d:int -> unit -> float
(** Total estimated time; [per_call] defaults to
    {!fairplay_fast_seconds}. *)

val speedup_vs : measured_seconds:float -> m:int -> n:int -> d:int -> float
(** How many times faster a measured secure run is than the Atallah
    estimate — the paper's "at least three orders of magnitude" claim. *)
