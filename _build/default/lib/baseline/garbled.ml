let and_gates ~m ~n ~d ~bits =
  if m <= 0 || n <= 0 || d <= 0 || bits <= 0 then
    invalid_arg "Garbled.and_gates: bad sizes";
  (* Per matrix cell: d subtractions (bits gates each), d squarings
     (bits² each), d-1 additions of partial costs, one 3-way minimum
     (2 comparators + 2 muxes ≈ 4·bits), one accumulator addition. *)
  let per_cell =
    (d * bits) + (d * bits * bits) + ((d - 1) * bits) + (4 * bits) + bits
  in
  m * n * per_cell

let per_gate_seconds = 1e-5

let estimated_seconds ?(gate_seconds = per_gate_seconds) ~m ~n ~d ~bits () =
  float_of_int (and_gates ~m ~n ~d ~bits) *. gate_seconds
