lib/baseline/garbled.ml:
