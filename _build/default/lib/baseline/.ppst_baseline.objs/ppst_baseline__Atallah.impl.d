lib/baseline/atallah.ml:
