lib/baseline/garbled.mli:
