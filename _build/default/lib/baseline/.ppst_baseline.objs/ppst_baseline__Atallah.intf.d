lib/baseline/atallah.mli:
