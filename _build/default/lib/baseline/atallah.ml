let yao_invocations ~m ~n ~d =
  if m <= 0 || n <= 0 || d <= 0 then invalid_arg "Atallah.yao_invocations: bad sizes";
  3 * m * n * d * d

let fairplay_fast_seconds = 1.25
let fairplay_slow_seconds = 4.0

let estimated_seconds ?(per_call = fairplay_fast_seconds) ~m ~n ~d () =
  float_of_int (yao_invocations ~m ~n ~d) *. per_call

let speedup_vs ~measured_seconds ~m ~n ~d =
  if measured_seconds <= 0.0 then invalid_arg "Atallah.speedup_vs: bad measurement";
  estimated_seconds ~m ~n ~d () /. measured_seconds
