lib/rng/secure_rng.mli: Bigint Ppst_bigint
