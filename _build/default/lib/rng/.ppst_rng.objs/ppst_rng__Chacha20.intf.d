lib/rng/chacha20.mli: Bytes
