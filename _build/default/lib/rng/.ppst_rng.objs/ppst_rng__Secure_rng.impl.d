lib/rng/secure_rng.ml: Array Bigint Bytes Chacha20 Char Fun Ppst_bigint String
