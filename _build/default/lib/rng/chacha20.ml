(* ChaCha20 block function (RFC 8439), used as the core of the CSPRNG in
   {!Secure_rng}.  32-bit words are stored in native ints masked to 32
   bits; OCaml's 63-bit ints make this safe without Int32 boxing. *)

let mask32 = 0xFFFFFFFF

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round st a b c d =
  let open Array in
  unsafe_set st a ((unsafe_get st a + unsafe_get st b) land mask32);
  unsafe_set st d (rotl32 (unsafe_get st d lxor unsafe_get st a) 16);
  unsafe_set st c ((unsafe_get st c + unsafe_get st d) land mask32);
  unsafe_set st b (rotl32 (unsafe_get st b lxor unsafe_get st c) 12);
  unsafe_set st a ((unsafe_get st a + unsafe_get st b) land mask32);
  unsafe_set st d (rotl32 (unsafe_get st d lxor unsafe_get st a) 8);
  unsafe_set st c ((unsafe_get st c + unsafe_get st d) land mask32);
  unsafe_set st b (rotl32 (unsafe_get st b lxor unsafe_get st c) 7)

(* "expand 32-byte k" *)
let sigma = [| 0x61707865; 0x3320646e; 0x79622d32; 0x6b206574 |]

type key = int array (* 8 words *)
type nonce = int array (* 3 words *)

let word_of_bytes_le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let key_of_string s : key =
  if String.length s <> 32 then invalid_arg "Chacha20.key_of_string: need 32 bytes";
  Array.init 8 (fun i -> word_of_bytes_le s (4 * i))

let nonce_of_string s : nonce =
  if String.length s <> 12 then invalid_arg "Chacha20.nonce_of_string: need 12 bytes";
  Array.init 3 (fun i -> word_of_bytes_le s (4 * i))

(* One 64-byte keystream block for the given counter value. *)
let block (key : key) (nonce : nonce) (counter : int) : Bytes.t =
  let init = Array.make 16 0 in
  Array.blit sigma 0 init 0 4;
  Array.blit key 0 init 4 8;
  init.(12) <- counter land mask32;
  Array.blit nonce 0 init 13 3;
  let st = Array.copy init in
  for _ = 1 to 10 do
    (* column rounds *)
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    (* diagonal rounds *)
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let w = (st.(i) + init.(i)) land mask32 in
    Bytes.set out (4 * i) (Char.chr (w land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((w lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((w lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr ((w lsr 24) land 0xFF))
  done;
  out
