(** ChaCha20 block function (RFC 8439).  Only the keystream generator is
    exposed — the CSPRNG in {!Secure_rng} is the intended consumer. *)

type key
type nonce

val key_of_string : string -> key
(** Exactly 32 bytes. @raise Invalid_argument otherwise. *)

val nonce_of_string : string -> nonce
(** Exactly 12 bytes. @raise Invalid_argument otherwise. *)

val block : key -> nonce -> int -> Bytes.t
(** [block key nonce counter] is the 64-byte keystream block for the given
    block counter (RFC 8439 test vectors apply). *)
