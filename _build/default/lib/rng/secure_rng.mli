(** ChaCha20-based cryptographically secure PRNG.

    All protocol randomness — Paillier nonces, random-offset sets,
    candidate shuffles — is drawn from here.  The generator is
    deterministic given a seed, which makes test and benchmark runs
    reproducible; {!system} seeds from [/dev/urandom] for real use. *)

open Ppst_bigint

type t

val system : unit -> t
(** Fresh generator seeded with 48 bytes from [/dev/urandom]. *)

val of_seed_bytes : string -> t
(** Deterministic generator from at least 16 bytes of seed material.
    @raise Invalid_argument when the seed is shorter. *)

val of_seed_string : string -> t
(** Like {!of_seed_bytes} but pads short strings; convenient in tests. *)

val byte : t -> int
val bytes : t -> int -> string

val bits : t -> int -> Bigint.t
(** Uniform non-negative integer of at most the given bit count. *)

val below : t -> Bigint.t -> Bigint.t
(** Uniform in [\[0, bound)] by rejection sampling. *)

val in_range : t -> lo:Bigint.t -> hi:Bigint.t -> Bigint.t
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val int : t -> int -> int
(** Uniform native int in [\[0, bound)]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by this generator. *)
