(* Deterministic CSPRNG built on the ChaCha20 keystream.

   The state is a (key, nonce, counter) triple; each refill produces one
   64-byte block.  Seeding from /dev/urandom gives a production generator;
   seeding from a literal string gives reproducible streams for tests and
   benchmarks (the protocol's correctness is randomness-independent, so
   deterministic benches are both honest and repeatable). *)

open Ppst_bigint

type t = {
  key : Chacha20.key;
  nonce : Chacha20.nonce;
  mutable counter : int;
  mutable buffer : Bytes.t;
  mutable pos : int;
}

let of_seed_bytes seed =
  if String.length seed < 16 then
    invalid_arg "Secure_rng.of_seed_bytes: need at least 16 bytes of seed";
  (* Stretch an arbitrary-length seed into key || nonce with ChaCha itself:
     hash-like folding of the seed into a 44-byte pool. *)
  let pool = Bytes.make 44 '\000' in
  String.iteri
    (fun i c ->
      let j = i mod 44 in
      Bytes.set pool j (Char.chr (Char.code (Bytes.get pool j) lxor Char.code c lxor (i land 0xFF))))
    seed;
  (* One mixing round through the block function for diffusion. *)
  let k0 = Chacha20.key_of_string (Bytes.sub_string pool 0 32) in
  let n0 = Chacha20.nonce_of_string (Bytes.sub_string pool 32 12) in
  let mixed = Chacha20.block k0 n0 0 in
  {
    key = Chacha20.key_of_string (Bytes.sub_string mixed 0 32);
    nonce = Chacha20.nonce_of_string (Bytes.sub_string mixed 32 12);
    counter = 0;
    buffer = Bytes.create 0;
    pos = 0;
  }

let of_seed_string s =
  (* Pad short seeds; convenient for tests: [of_seed_string "test-42"]. *)
  let padded = if String.length s >= 16 then s else s ^ String.make (16 - String.length s) '#' in
  of_seed_bytes padded

let system () =
  let ic = open_in_bin "/dev/urandom" in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_seed_bytes (really_input_string ic 48))

let refill t =
  t.buffer <- Chacha20.block t.key t.nonce t.counter;
  t.counter <- t.counter + 1;
  t.pos <- 0

let byte t =
  if t.pos >= Bytes.length t.buffer then refill t;
  let b = Char.code (Bytes.get t.buffer t.pos) in
  t.pos <- t.pos + 1;
  b

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  Bytes.to_string out

let bits t nbits =
  if nbits <= 0 then invalid_arg "Secure_rng.bits: need positive bit count";
  let nbytes = (nbits + 7) / 8 in
  let buf = Bytes.of_string (bytes t nbytes) in
  let excess = (nbytes * 8) - nbits in
  if excess > 0 then begin
    let mask = 0xFF lsr excess in
    Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) land mask))
  end;
  Bigint.of_bytes_be (Bytes.to_string buf)

(* Uniform in [0, bound) by rejection sampling on num_bits(bound) bits:
   acceptance probability > 1/2, so the expected draw count is < 2. *)
let below t bound =
  if Bigint.compare bound Bigint.zero <= 0 then
    invalid_arg "Secure_rng.below: bound must be positive";
  let nbits = Bigint.num_bits bound in
  let rec draw () =
    let v = bits t nbits in
    if Bigint.compare v bound < 0 then v else draw ()
  in
  draw ()

let in_range t ~lo ~hi =
  if Bigint.compare lo hi > 0 then invalid_arg "Secure_rng.in_range: lo > hi";
  Bigint.add lo (below t (Bigint.succ (Bigint.sub hi lo)))

let int t bound =
  if bound <= 0 then invalid_arg "Secure_rng.int: bound must be positive";
  Bigint.to_int_exn (below t (Bigint.of_int bound))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
