open Import

(* Lockstep sum of Enc(δ²(x_{o+j}, y_j)) over j — entirely homomorphic.
   For window matching all offsets share one phase-1 transfer and one
   m x n cost matrix. *)
let window_distances client =
  Client.require_plan client `Euclidean;
  let m = Client.client_length client in
  let n = Client.server_length client in
  if m < n then
    invalid_arg "Secure_euclidean: client series shorter than the server's";
  Client.precompute_randomness client m;
  let cost = Client.fetch_cost_matrix client in
  Array.init
    (m - n + 1)
    (fun o ->
      let acc = ref cost.(o).(0) in
      for j = 1 to n - 1 do
        acc := Client.add client !acc cost.(o + j).(j)
      done;
      !acc)

let run client =
  if Client.client_length client <> Client.server_length client then
    invalid_arg "Secure_euclidean.run: series lengths differ";
  match window_distances client with
  | [| single |] -> Client.reveal client single
  | _ -> assert false

let sliding_windows client =
  Array.map (Client.reveal client) (window_distances client)

let best_window client =
  let distances = sliding_windows client in
  let best = ref 0 in
  Array.iteri
    (fun o d -> if Bigint.compare d distances.(!best) < 0 then best := o)
    distances;
  (!best, distances.(!best))
