(** Privacy-preserving Discrete Fréchet Distance (paper Section 6).

    DFD replaces DTW's homomorphic addition with a maximum, which cannot
    be computed under Paillier locally — so every cell needs a phase-3
    secure-maximum round on top of the phase-2 minimum, and the border
    cells need phase-3 rounds too.  Cost is therefore roughly twice
    secure DTW (paper Figures 7–8).

    The result equals the plaintext
    [Ppst_timeseries.Distance.dfd_sq] of the two series bit-for-bit. *)

open Import

val run : Client.t -> Bigint.t

val run_matrix : Client.t -> Paillier.ciphertext array array * Bigint.t
