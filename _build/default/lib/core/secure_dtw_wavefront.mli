(** Wavefront (anti-diagonal batched) secure DTW and DFD.

    Cells on the same anti-diagonal [i + j = s] of the DP matrix have no
    data dependencies between them, so their phase-2 (and, for DFD,
    phase-3) rounds can share a single message round trip.  The round
    count falls from [(m-1)(n-1)] to [m + n - 3] — on a real network at,
    say, 0.5 ms RTT, that is the difference between ~5 s and ~50 ms of
    pure latency for 100×100 series.

    Masking is per-instance and identical to the per-cell protocol: each
    cell still gets its own random-offset set, shuffle and fresh
    re-encryption, so both parties' views are the same multiset of values
    they would see in the sequential protocol (the server additionally
    learns which cells share a diagonal — but the diagonal structure of
    DTW is public knowledge anyway).

    Results equal [Distance.dtw_sq] / [Distance.dfd_sq] bit-for-bit. *)

open Import

val run_dtw : Client.t -> Bigint.t
(** Connect with [~distance:`Dtw]. *)

val run_dfd : Client.t -> Bigint.t
(** Connect with [~distance:`Dfd].  Each anti-diagonal costs one batched
    minimum round followed by one batched maximum round. *)
