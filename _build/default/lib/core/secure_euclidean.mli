(** Privacy-preserving (squared) Euclidean distance and sliding-window
    subsequence matching.

    Whole-series Euclidean distance is the degenerate case of the
    framework: after phase 1 the client sums the lockstep costs
    homomorphically — no phase-2 rounds, no masking, one reveal.  This is
    the classic protocol of the paper's Section 3.2 references, provided
    both as a baseline and because the evaluation's cheapest queries
    (exact match / ε-range with lockstep alignment) only need it.

    {!sliding_windows} extends it to the paper's introduction scenario of
    {e subsequence matching}: the client holds a long series [X], the
    server a query [Y] of length [n ≤ m], and they compute the distance of
    [Y] against every length-[n] window of [X] — all windows are assembled
    from the single phase-1 transfer.  Each revealed window distance is
    one unit of the agreed result disclosure. *)

open Import

val run : Client.t -> Bigint.t
(** Whole-series squared Euclidean distance; requires both series to have
    equal length.  Connect with [~distance:`Euclidean].
    @raise Invalid_argument on a length mismatch. *)

val sliding_windows : Client.t -> Bigint.t array
(** Distance of the server's series against every window
    [X\[o .. o+n-1\]]; [m - n + 1] values, in offset order.  Connect with
    [~distance:`Euclidean].
    @raise Invalid_argument when the client series is shorter than the
    server's. *)

val best_window : Client.t -> int * Bigint.t
(** [(offset, distance)] of the best-matching window (computed from
    {!sliding_windows}; ties resolve to the smallest offset). *)
