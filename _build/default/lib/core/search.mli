(** Secure similarity search over a server-side database — the paper's
    motivating scenario (hospital ECG lookup, signature databases) as a
    first-class protocol layer.

    One connection, one key: the client enumerates the server's records
    ({!Client.catalog}), selects each in turn and runs a secure-distance
    session against it.  What the parties learn is exactly the sequence of
    revealed distances (one per compared record) — the same disclosure as
    running independent sessions, minus the repeated handshakes.

    All functions cross-check nothing and reveal every compared distance;
    use {!nearest}'s [?limit] to bound disclosure when the database is
    large. *)

open Import

type metric = [ `Dtw | `Dfd ]

type match_result = {
  index : int;  (** record index in the server's catalog *)
  distance : Bigint.t;
}

val scan :
  ?limit:int ->
  metric:metric ->
  Client.t ->
  match_result list
(** Compare the client's series against the first [limit] records
    (default: all) and return every distance, in catalog order.
    @raise Invalid_argument when the client was connected with a
    different [~distance] than [metric] — the masking bound planned at
    connect time must cover the distance actually run. *)

val nearest : ?limit:int -> metric:metric -> Client.t -> match_result
(** The closest record among those scanned.
    @raise Invalid_argument on an empty catalog. *)

val within :
  ?limit:int -> metric:metric -> radius:int -> Client.t -> match_result list
(** All scanned records with distance [<= radius], ascending by
    distance. *)
