open Import

(* --- Section 4 attack: plaintext matrix => other party's series ------- *)

let isqrt v =
  if v < 0 then None
  else begin
    let r = int_of_float (sqrt (float_of_int v)) in
    (* float sqrt can be off by one at the edges *)
    let r = ref r in
    while (!r + 1) * (!r + 1) <= v do incr r done;
    while !r * !r > v do decr r done;
    if !r * !r = v then Some !r else None
  end

(* Candidate values of y from a known squared difference to x. *)
let candidates_from_cost x cost =
  match isqrt cost with
  | None -> []
  | Some 0 -> [ x ]
  | Some s -> [ x - s; x + s ]

let infer_server_series ~x ~matrix =
  if Series.dimension x <> 1 then
    invalid_arg "Leakage.infer_server_series: only 1-dimensional series";
  let m = Array.length matrix in
  if m <> Series.length x || m = 0 then
    invalid_arg "Leakage.infer_server_series: matrix does not match series";
  let n = Array.length matrix.(0) in
  let xi i = Series.value x i in
  (* Local cost of cell (i, j) recovered from the DP recurrence: the first
     row/column are cumulative, inner cells subtract the minimum of the
     three predecessors — all of which the matrix holder can read off. *)
  let local_cost i j =
    if i = 0 && j = 0 then matrix.(0).(0)
    else if i = 0 then matrix.(0).(j) - matrix.(0).(j - 1)
    else if j = 0 then matrix.(i).(0) - matrix.(i - 1).(0)
    else
      matrix.(i).(j)
      - min matrix.(i - 1).(j - 1) (min matrix.(i - 1).(j) matrix.(i).(j - 1))
  in
  (* For column j, every row i gives candidates for y_j; intersect until a
     single value remains (exactly the paper's y1 = 2 example). *)
  let infer_one j =
    let rec refine i remaining =
      match remaining with
      | [ y ] -> Some y
      | [] -> None
      | _ when i >= m -> None
      | _ ->
        let cands = candidates_from_cost (xi i) (local_cost i j) in
        refine (i + 1) (List.filter (fun y -> List.mem y cands) remaining)
    in
    refine 1 (candidates_from_cost (xi 0) (local_cost 0 j))
  in
  let out = Array.make n 0 in
  let ok = ref true in
  for j = 0 to n - 1 do
    match infer_one j with
    | Some y -> out.(j) <- y
    | None -> ok := false
  done;
  if !ok then Some out else None

(* --- Section 5.3 gap attack ------------------------------------------- *)

let guess_baseline ~k = 2.0 /. float_of_int (k * (k + 1))

type attack_stats = { trials : int; successes : int; rate : float }

(* Sample from (2^e, 2^(e+1)] with a non-crypto PRNG (this is simulation,
   not protocol execution). *)
let sample_range rng e =
  let lo = 1 lsl e in
  lo + 1 + Splitmix.int rng lo

let cluster_attack ~beta ~gamma ~k ~trials ~seed =
  if beta >= 60 || gamma >= 60 then
    invalid_arg "Leakage.cluster_attack: simulation limited to < 60-bit ranges";
  let rng = Splitmix.create seed in
  let successes = ref 0 in
  for _ = 1 to trials do
    let a = sample_range rng beta
    and b = sample_range rng beta
    and c = sample_range rng beta in
    (* k distinct offsets, ascending *)
    let offsets = Array.init k (fun _ -> sample_range rng gamma) in
    Array.sort compare offsets;
    let rmin = offsets.(0) in
    let inputs = [| a; b; c |] in
    let true_sums = Array.map (fun v -> v + rmin) inputs in
    let decoys =
      Array.init (k - 1) (fun i -> inputs.(Splitmix.int rng 3) + offsets.(i + 1))
    in
    let all = Array.append true_sums decoys in
    let sorted = Array.copy all in
    Array.sort compare sorted;
    (* Attack heuristic: the three smallest decryptions are the masked
       triple.  Success iff that multiset matches the true sums. *)
    let bottom3 = Array.sub sorted 0 3 in
    let true_sorted = Array.copy true_sums in
    Array.sort compare true_sorted;
    if bottom3 = true_sorted then incr successes
  done;
  { trials; successes = !successes; rate = float_of_int !successes /. float_of_int trials }

let masked_sum_samples ~beta ~gamma ~count ~seed =
  if beta >= 60 || gamma >= 60 then
    invalid_arg "Leakage.masked_sum_samples: limited to < 60-bit ranges";
  let rng = Splitmix.create seed in
  Array.init count (fun _ -> sample_range rng beta + sample_range rng gamma)
