lib/core/client.ml: Array Bigint Channel Cost Import Masking Message Paillier Params Printf Secure_rng Series Stdlib Unix
