lib/core/cost.ml: Array Format
