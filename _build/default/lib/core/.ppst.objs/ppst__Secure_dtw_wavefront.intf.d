lib/core/secure_dtw_wavefront.mli: Bigint Client Import
