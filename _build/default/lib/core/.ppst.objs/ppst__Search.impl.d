lib/core/search.ml: Array Bigint Client Import List Printf Secure_dfd Secure_dtw Stdlib
