lib/core/secure_euclidean.ml: Array Bigint Client Import
