lib/core/leakage.mli: Import Series
