lib/core/secure_dtw_banded.ml: Array Client Fun List Params
