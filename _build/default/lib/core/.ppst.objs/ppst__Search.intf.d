lib/core/search.mli: Bigint Client Import
