lib/core/entropy.mli:
