lib/core/secure_dfd.ml: Array Client Params
