lib/core/entropy.ml: Array Float
