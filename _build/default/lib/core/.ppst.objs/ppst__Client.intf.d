lib/core/client.mli: Bigint Channel Cost Import Paillier Params Secure_rng Series
