lib/core/secure_erp.ml: Array Client Params Ppst_timeseries
