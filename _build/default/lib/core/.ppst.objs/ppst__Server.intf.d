lib/core/server.mli: Cost Import Message Paillier Params Secure_rng Series
