lib/core/secure_euclidean.mli: Bigint Client Import
