lib/core/protocol.mli: Bigint Cost Import Params Series Stats Trace
