lib/core/secure_dtw_banded.mli: Bigint Client Import Paillier
