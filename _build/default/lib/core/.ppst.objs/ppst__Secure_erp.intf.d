lib/core/secure_erp.mli: Bigint Client Import Paillier
