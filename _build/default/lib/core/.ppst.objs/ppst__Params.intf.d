lib/core/params.mli: Bigint Format Import
