lib/core/secure_dfd.mli: Bigint Client Import Paillier
