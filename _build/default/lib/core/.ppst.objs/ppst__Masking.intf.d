lib/core/masking.mli: Bigint Import Paillier Params Ppst_rng
