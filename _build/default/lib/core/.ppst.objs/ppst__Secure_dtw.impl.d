lib/core/secure_dtw.ml: Array Client Params
