lib/core/leakage.ml: Array Import List Series Splitmix
