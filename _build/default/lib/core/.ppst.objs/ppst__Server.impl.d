lib/core/server.ml: Array Bigint Cost Fun Import Message Paillier Params Printf Secure_rng Series
