lib/core/protocol.ml: Bigint Channel Client Cost Import Params Secure_dfd Secure_dtw Secure_dtw_banded Secure_dtw_wavefront Secure_erp Secure_euclidean Secure_rng Series Server Stats Stdlib Trace
