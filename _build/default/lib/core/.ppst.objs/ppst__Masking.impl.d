lib/core/masking.ml: Array Bigint Import List Paillier Params Ppst_rng
