lib/core/secure_dtw.mli: Bigint Client Import Paillier
