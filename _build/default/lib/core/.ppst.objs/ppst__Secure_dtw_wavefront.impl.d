lib/core/secure_dtw_wavefront.ml: Array Client List Params Stdlib
