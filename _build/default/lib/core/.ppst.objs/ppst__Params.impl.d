lib/core/params.ml: Bigint Format Import Printf Stdlib
