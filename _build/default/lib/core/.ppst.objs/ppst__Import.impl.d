lib/core/import.ml: Ppst_bigint Ppst_paillier Ppst_rng Ppst_timeseries Ppst_transport
