open Import

type t = {
  records : Series.t array;
  mutable selected : int;
  sk : Paillier.private_key;
  rng : Secure_rng.t;
  max_value : int;
  ops : Cost.ops;
  mutable reveals : int;
  max_reveals : int option;
  decrypt : Paillier.private_key -> Paillier.ciphertext -> Bigint.t;
}

let check_bounds series max_value =
  let len = Series.length series and d = Series.dimension series in
  for i = 0 to len - 1 do
    let e = Series.get series i in
    for l = 0 to d - 1 do
      if e.(l) < 0 || e.(l) > max_value then
        invalid_arg
          (Printf.sprintf "Server: coordinate %d of element %d is %d, outside [0, %d]"
             l i e.(l) max_value)
    done
  done

let create_db_with_key ?(decryption = `Standard) ?max_reveals ~sk ~rng ~records
    ~max_value () =
  if Array.length records = 0 then invalid_arg "Server: empty record set";
  let dim = Series.dimension records.(0) in
  Array.iter
    (fun series ->
      if Series.dimension series <> dim then
        invalid_arg "Server: records have differing dimensions";
      check_bounds series max_value)
    records;
  let decrypt =
    match decryption with
    | `Standard -> Paillier.decrypt
    | `Crt -> Paillier.decrypt_crt
  in
  (match max_reveals with
   | Some limit when limit <= 0 ->
     invalid_arg "Server: max_reveals must be positive"
   | _ -> ());
  {
    records;
    selected = 0;
    sk;
    rng;
    max_value;
    ops = { encryptions = 0; decryptions = 0; homomorphic = 0 };
    reveals = 0;
    max_reveals;
    decrypt;
  }

let create_with_key ?decryption ?max_reveals ~sk ~rng ~series ~max_value () =
  create_db_with_key ?decryption ?max_reveals ~sk ~rng ~records:[| series |]
    ~max_value ()

let create_db ?(params = Params.default) ?decryption ?max_reveals ~rng ~records
    ~max_value () =
  let _pk, sk = Paillier.keygen ~bits:params.Params.key_bits rng in
  create_db_with_key ?decryption ?max_reveals ~sk ~rng ~records ~max_value ()

let create ?params ?decryption ?max_reveals ~rng ~series ~max_value () =
  create_db ?params ?decryption ?max_reveals ~rng ~records:[| series |] ~max_value ()

let public_key t = t.sk.Paillier.public
let private_key t = t.sk
let ops t = t.ops
let reveal_count t = t.reveals
let record_count t = Array.length t.records
let selected t = t.selected
let active_series t = t.records.(t.selected)

(* Phase 1 payload: for every element y_j, Enc(Σ_l y_jl²) and each
   Enc(y_jl) — the one-way transfer of Section 3.2. *)
let phase1_elements t =
  let pk = public_key t in
  let series = active_series t in
  let d = Series.dimension series in
  Array.init (Series.length series) (fun j ->
      let y = Series.get series j in
      let sum_sq = ref 0 in
      for l = 0 to d - 1 do
        sum_sq := !sum_sq + (y.(l) * y.(l))
      done;
      t.ops.encryptions <- t.ops.encryptions + d + 1;
      {
        Message.sum_sq =
          Paillier.ciphertext_to_bigint
            (Paillier.encrypt pk t.rng (Bigint.of_int !sum_sq));
        coords =
          Array.map
            (fun v ->
              Paillier.ciphertext_to_bigint
                (Paillier.encrypt pk t.rng (Bigint.of_int v)))
            (Array.map Fun.id y);
      })

(* Decrypt every candidate, select by [better], and return a *fresh*
   encryption of the selected plaintext (path hiding, Section 5.5). *)
exception Bad_candidates of string

let extreme_of t ~better (candidates : Bigint.t array) =
  let pk = public_key t in
  if Array.length candidates < 2 then raise (Bad_candidates "need at least two candidates");
  match
    Array.map
      (fun v ->
        let c = Paillier.ciphertext_of_bigint pk v in
        t.ops.decryptions <- t.ops.decryptions + 1;
        t.decrypt t.sk c)
      candidates
  with
  | exception Paillier.Invalid_plaintext m -> raise (Bad_candidates m)
  | plains ->
    let extreme =
      Array.fold_left (fun acc v -> if better v acc then v else acc) plains.(0) plains
    in
    t.ops.encryptions <- t.ops.encryptions + 1;
    Paillier.ciphertext_to_bigint (Paillier.encrypt pk t.rng extreme)

let select_extreme t ~better candidates =
  match extreme_of t ~better candidates with
  | v -> Message.Cipher_reply v
  | exception Bad_candidates m -> Message.Error_reply m

(* Wavefront extension: many independent instances in one round trip. *)
let select_extreme_batch t ~better (sets : Bigint.t array array) =
  if Array.length sets = 0 then Message.Error_reply "empty batch"
  else begin
    match Array.map (extreme_of t ~better) sets with
    | replies -> Message.Batch_cipher_reply replies
    | exception Bad_candidates m -> Message.Error_reply m
  end

let handle t (req : Message.request) : Message.reply =
  let pk = public_key t in
  match req with
  | Message.Hello ->
    Message.Welcome
      {
        n = pk.Paillier.n;
        key_bits = pk.Paillier.bits;
        series_length = Series.length (active_series t);
        dimension = Series.dimension (active_series t);
        max_value = t.max_value;
      }
  | Message.Catalog_request ->
    Message.Catalog_reply (Array.map Series.length t.records)
  | Message.Select_request i ->
    if i < 0 || i >= Array.length t.records then
      Message.Error_reply
        (Printf.sprintf "record %d out of range [0, %d)" i (Array.length t.records))
    else begin
      t.selected <- i;
      Message.Select_ack i
    end
  | Message.Phase1_request -> Message.Phase1_reply (phase1_elements t)
  | Message.Min_request candidates ->
    select_extreme t ~better:(fun a b -> Bigint.compare a b < 0) candidates
  | Message.Max_request candidates ->
    select_extreme t ~better:(fun a b -> Bigint.compare a b > 0) candidates
  | Message.Batch_min_request sets ->
    select_extreme_batch t ~better:(fun a b -> Bigint.compare a b < 0) sets
  | Message.Batch_max_request sets ->
    select_extreme_batch t ~better:(fun a b -> Bigint.compare a b > 0) sets
  | Message.Reveal_request v -> begin
    match t.max_reveals with
    | Some limit when t.reveals >= limit ->
      Message.Error_reply
        (Printf.sprintf "reveal budget exhausted (%d allowed per session)" limit)
    | _ -> begin
      match Paillier.ciphertext_of_bigint pk v with
      | exception Paillier.Invalid_plaintext m -> Message.Error_reply m
      | c ->
        t.ops.decryptions <- t.ops.decryptions + 1;
        t.reveals <- t.reveals + 1;
        Message.Reveal_reply (t.decrypt t.sk c)
    end
  end
  | Message.Bye -> Message.Bye_ack

let handler = handle
