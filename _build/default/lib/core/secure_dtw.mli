(** Privacy-preserving Dynamic Time Warping (paper Section 5).

    The client fills an [m × n] ciphertext matrix:
    - borders accumulate by homomorphic addition (no interaction);
    - every inner cell costs one phase-2 secure-minimum round of
      [k + 2] ciphertexts;
    - the final cell is jointly revealed.

    The result equals the plaintext
    [Ppst_timeseries.Distance.dtw_sq] of the two series bit-for-bit. *)

open Import

val run : Client.t -> Bigint.t
(** Execute phases 1 and 2 and reveal the distance.  The client object
    accumulates cost/timing; communication totals live in the channel's
    {!Stats}. *)

val run_matrix : Client.t -> Paillier.ciphertext array array * Bigint.t
(** Like {!run} but also returns the filled ciphertext matrix (tests use
    it to check that the client's view stays encrypted). *)
