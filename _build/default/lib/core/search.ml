open Import

type metric = [ `Dtw | `Dfd ]

type match_result = { index : int; distance : Bigint.t }

let scan ?limit ~metric client =
  (* the masking bound planned at connect time must cover the distance
     actually run: a DTW scan on a `Dfd-planned session would exceed it *)
  (match (metric, Client.distance client) with
   | `Dtw, `Dtw | `Dfd, `Dfd -> ()
   | (`Dtw | `Dfd), other ->
     invalid_arg
       (Printf.sprintf
          "Search.scan: client session planned for %s but metric is %s;            connect with the matching ~distance"
          (match other with
           | `Dtw -> "`Dtw" | `Dfd -> "`Dfd" | `Erp -> "`Erp"
           | `Euclidean -> "`Euclidean")
          (match metric with `Dtw -> "`Dtw" | `Dfd -> "`Dfd")));
  let lengths = Client.catalog client in
  let total = Array.length lengths in
  let count = match limit with Some l -> Stdlib.min l total | None -> total in
  List.init count (fun index ->
      Client.select_record client index;
      let distance =
        match metric with
        | `Dtw -> Secure_dtw.run client
        | `Dfd -> Secure_dfd.run client
      in
      { index; distance })

let nearest ?limit ~metric client =
  match scan ?limit ~metric client with
  | [] -> invalid_arg "Search.nearest: empty catalog"
  | first :: rest ->
    List.fold_left
      (fun best r -> if Bigint.compare r.distance best.distance < 0 then r else best)
      first rest

let within ?limit ~metric ~radius client =
  let radius = Bigint.of_int radius in
  scan ?limit ~metric client
  |> List.filter (fun r -> Bigint.compare r.distance radius <= 0)
  |> List.sort (fun a b -> Bigint.compare a.distance b.distance)
