(** Privacy-preserving ERP — Edit distance with Real Penalty (Chen & Ng,
    VLDB 2004) — the paper's Section 8 claim made concrete: "our protocols
    can be easily extended to any privacy preserving distance computation
    using dynamic programming".

    ERP aligns the two series like edit distance, but gaps are charged
    their squared distance to a fixed public {e gap element} [g] (usually
    the origin), which restores the triangle inequality that DTW lacks.
    The cell recurrence on ciphertexts:

    [M(i,j) = min { M(i-1,j-1) + Enc(δ²(x_i, y_j)),
                    M(i-1,j)   + δ²(x_i, g)          (client-known constant),
                    M(i,j-1)   + Enc(δ²(y_j, g)) }]

    All three local costs come from the single phase-1 transfer: the
    [δ²(y_j, g)] terms are derived homomorphically ({!Client.gap_costs_of}),
    the [δ²(x_i, g)] terms are plaintext constants folded in with
    [add_plain].  Each of the [m·n] cells costs one phase-2 round over the
    three candidate sums.

    The result equals [Ppst_timeseries.Distance.erp_sq ~gap] bit-for-bit. *)

open Import

val run : gap:int array -> Client.t -> Bigint.t
(** The client must have been connected with [~distance:`Erp] so the
    masking parameters cover the larger ERP value bound.
    @raise Invalid_argument on a bad gap element. *)

val run_matrix : gap:int array -> Client.t -> Paillier.ciphertext array array * Bigint.t
(** Also returns the [(m+1) × (n+1)] ciphertext matrix (row/column 0 are
    the cumulative gap borders). *)
