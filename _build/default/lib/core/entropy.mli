(** Information-entropy preservation analysis (paper Section 5.4).

    The server observes sums [s = x + r] of a matrix value [x] and a
    random offset [r].  When both are uniform on [\[Γ, 2Γ-1\]], the sum
    follows a triangular distribution on [\[2Γ, 4Γ-2\]] (Eqs. 7–8) whose
    Shannon entropy exceeds half of the uniform bound [log2 (2Γ-1)]
    (Eq. 9), and whose min-entropy is exactly [log2 Γ].  This module
    computes those quantities exactly, plus the general convolution of
    Eq. 6 for arbitrary distributions. *)

val uniform_entropy : int -> float
(** [uniform_entropy gamma_cap] = [log2 (2Γ - 1)] — the entropy a
    perfectly hiding protocol would preserve. *)

val triangular_sum_entropy : int -> float
(** Exact Shannon entropy (bits) of the sum distribution for uniform
    value and offset on [\[Γ, 2Γ-1\]] (Eqs. 7–8 summed directly).
    @raise Invalid_argument if [Γ < 1]. *)

val min_entropy : int -> float
(** Min-entropy of the sum: [log2 Γ] (the peak probability is [1/Γ]). *)

val preserved_fraction : int -> float
(** [triangular_sum_entropy Γ /. uniform_entropy Γ] — the paper's claim
    is that this exceeds 1/2 for all [Γ >= 2]. *)

(** {1 General distributions (Eq. 6)} *)

val convolve : float array -> float array -> float array
(** [convolve value_probs offset_probs] is the distribution of the sum
    (index [i+j] accumulates [p_v(i) * p_r(j)]).  Inputs need not be
    normalized identically; the output is renormalized. *)

val shannon : float array -> float
(** Shannon entropy (bits) of a probability vector (zeros are skipped).
    The vector is normalized first. *)

val min_entropy_of : float array -> float

val empirical : samples:int array -> float array
(** Histogram of observed sums → probability vector (tests compare the
    protocol's actual masked values against the analytic curve). *)
