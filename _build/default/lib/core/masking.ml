open Import

type prepared = { candidates : Paillier.ciphertext array; unmask : Bigint.t }

(* Distinct offsets, sorted ascending.  Distinctness matters at the
   extremes: a duplicated r_min (r_max) would let two decoys share the
   extreme offset and slightly sharpen the server's guessing attack, so we
   redraw collisions (the range has at least 2^γ values, collisions are
   rare). *)
let draw_offsets ~rng ~session ~count =
  let module S = Ppst_rng.Secure_rng in
  let lo = session.Params.offset_lo and hi = session.Params.offset_hi in
  let rec fill acc n =
    if n = 0 then acc
    else begin
      let r = S.in_range rng ~lo ~hi in
      if List.exists (Bigint.equal r) acc then fill acc n
      else fill (r :: acc) (n - 1)
    end
  in
  let offsets = Array.of_list (fill [] count) in
  Array.sort Bigint.compare offsets;
  offsets

let prepare ?encrypt ~extreme ~pk ~rng ~session (inputs : Paillier.ciphertext array) =
  if Array.length inputs = 0 then invalid_arg "Masking.prepare: no inputs";
  let module S = Ppst_rng.Secure_rng in
  let encrypt = match encrypt with Some f -> f | None -> Paillier.encrypt pk rng in
  let k = session.Params.params.Params.k in
  let offsets = draw_offsets ~rng ~session ~count:k in
  let pivot, decoy_offsets =
    match extreme with
    | `Min -> (offsets.(0), Array.sub offsets 1 (k - 1))
    | `Max -> (offsets.(k - 1), Array.sub offsets 0 (k - 1))
  in
  (* Masked inputs: every input gets the pivot offset, freshly encrypted
     so the ciphertext is re-randomized. *)
  let masked = Array.map (fun c -> Paillier.add pk c (encrypt pivot)) inputs in
  (* Decoys: a random input plus a non-pivot offset each. *)
  let decoys =
    Array.map
      (fun r ->
        let source = inputs.(S.int rng (Array.length inputs)) in
        Paillier.add pk source (encrypt r))
      decoy_offsets
  in
  let candidates = Array.append masked decoys in
  S.shuffle_in_place rng candidates;
  { candidates; unmask = pivot }

let prepare_min ?encrypt ~pk ~rng ~session inputs =
  prepare ?encrypt ~extreme:`Min ~pk ~rng ~session inputs

let prepare_max ?encrypt ~pk ~rng ~session inputs =
  prepare ?encrypt ~extreme:`Max ~pk ~rng ~session inputs

let unmask ~pk prepared reply =
  Paillier.add_plain pk reply (Bigint.neg prepared.unmask)

let unmask_min = unmask
let unmask_max = unmask
