(** Attack simulations validating the paper's Section 4 and 5.3 security
    arguments empirically.

    Three experiments:
    - {!infer_server_series}: the Section 4 motivating attack — a party
      holding the {e plaintext} DP matrix and its own series reconstructs
      the other party's series step by step.  Its success is exactly why
      the matrix must stay encrypted.
    - {!cluster_attack}: the Section 5.3 gap attack — when the offset
      range is far wider than the value range ([γ - β >= α]), the three
      pivot-masked candidates cluster at the bottom of the sorted
      decryptions and the server identifies them; with valid parameters
      the identification rate stays near the guessing baseline.
    - {!guess_baseline}: the paper's [2 / (k (k + 1))] random-guess
      probability for picking the masked triple out of [k + 2]
      candidates. *)

open Import

val infer_server_series : x:Series.t -> matrix:int array array -> int array option
(** Reconstruct the server's 1-dimensional series from the plaintext DTW
    matrix [matrix] (as computed by
    [Ppst_timeseries.Distance.dtw_sq_matrix x y]) and the client's own
    series [x].  Returns [None] when some element is not uniquely
    determined (e.g. non-square residues caused by an inconsistent
    matrix).
    @raise Invalid_argument for multi-dimensional [x]. *)

val guess_baseline : k:int -> float

type attack_stats = {
  trials : int;
  successes : int;  (** trials where the sorted bottom-3 were the true triple *)
  rate : float;
}

val cluster_attack :
  beta:int -> gamma:int -> k:int -> trials:int -> seed:int -> attack_stats
(** Simulate the server's "take the three smallest" heuristic against
    masked candidate sets with values in [(2^β, 2^(β+1)]] and offsets in
    [(2^γ, 2^(γ+1)]].  Deterministic in [seed]. *)

val masked_sum_samples :
  beta:int -> gamma:int -> count:int -> seed:int -> int array
(** Sample masked sums [x + r] (value and offset drawn per the protocol's
    ranges) for empirical-entropy comparison with {!Entropy}. *)
