(** Privacy-preserving DTW under a Sakoe–Chiba band constraint.

    Cells with [|i - j| > band] are excluded from the warping path —
    the standard constrained-DTW speedup.  The band width is a {e public}
    parameter (both parties learn it; it reveals nothing about the data),
    and only in-band cells trigger phase-2 rounds, cutting both time and
    communication from [O(m·n)] to [O((m + n)·band)].

    At the band's edges a cell has fewer than three in-band predecessors;
    the secure-minimum round simply runs with two inputs (or none — a
    plain homomorphic addition) without any protocol change, since the
    masking construction works for any input count.

    The result equals
    [Ppst_timeseries.Distance.dtw_sq_banded ~band] bit-for-bit; callers
    must check band feasibility ([|m - n| <= band]) up front, mirroring
    the plaintext function's [None]. *)

open Import

exception Band_too_narrow
(** Raised when [band < |m - n|]: no complete warping path exists. *)

val run : band:int -> Client.t -> Bigint.t
(** Connect the client with [~distance:`Dtw] (the banded bound is never
    larger).
    @raise Band_too_narrow when the band admits no path
    @raise Invalid_argument on a negative band. *)

val run_matrix :
  band:int -> Client.t -> Paillier.ciphertext option array array * Bigint.t
(** The matrix holds [None] outside the band. *)

val run_dfd : band:int -> Client.t -> Bigint.t
(** Band-constrained secure Discrete Fréchet Distance; connect with
    [~distance:`Dfd].  Matches
    [Ppst_timeseries.Distance.dfd_sq_banded ~band] bit-for-bit.
    @raise Band_too_narrow / @raise Invalid_argument as {!run}. *)

val run_dfd_matrix :
  band:int -> Client.t -> Paillier.ciphertext option array array * Bigint.t
