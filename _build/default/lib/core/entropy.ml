let log2 x = log x /. log 2.0

let uniform_entropy gamma_cap =
  if gamma_cap < 1 then invalid_arg "Entropy.uniform_entropy: need Γ >= 1";
  log2 (float_of_int ((2 * gamma_cap) - 1))

(* Sum of two independent uniforms on [Γ, 2Γ-1]: the support has 2Γ-1
   points with probabilities j/Γ² for j = 1..Γ..1 (triangular).  Direct
   summation of -p log p; O(Γ). *)
let triangular_sum_entropy gamma_cap =
  if gamma_cap < 1 then invalid_arg "Entropy.triangular_sum_entropy: need Γ >= 1";
  let g = float_of_int gamma_cap in
  let g2 = g *. g in
  let acc = ref 0.0 in
  for j = 1 to gamma_cap do
    let p = float_of_int j /. g2 in
    (* weight 2 for j < Γ (rising and falling flank), 1 for the peak *)
    let w = if j = gamma_cap then 1.0 else 2.0 in
    acc := !acc -. (w *. p *. log2 p)
  done;
  !acc

let min_entropy gamma_cap =
  if gamma_cap < 1 then invalid_arg "Entropy.min_entropy: need Γ >= 1";
  log2 (float_of_int gamma_cap)

let preserved_fraction gamma_cap =
  triangular_sum_entropy gamma_cap /. uniform_entropy gamma_cap

let normalize probs =
  let total = Array.fold_left ( +. ) 0.0 probs in
  if total <= 0.0 then invalid_arg "Entropy: empty distribution";
  Array.map (fun p -> p /. total) probs

let convolve value_probs offset_probs =
  if Array.length value_probs = 0 || Array.length offset_probs = 0 then
    invalid_arg "Entropy.convolve: empty distribution";
  let out = Array.make (Array.length value_probs + Array.length offset_probs - 1) 0.0 in
  Array.iteri
    (fun i pv ->
      if pv > 0.0 then
        Array.iteri (fun j pr -> out.(i + j) <- out.(i + j) +. (pv *. pr)) offset_probs)
    value_probs;
  normalize out

let shannon probs =
  let probs = normalize probs in
  Array.fold_left (fun acc p -> if p > 0.0 then acc -. (p *. log2 p) else acc) 0.0 probs

let min_entropy_of probs =
  let probs = normalize probs in
  let peak = Array.fold_left Float.max 0.0 probs in
  -.log2 peak

let empirical ~samples =
  if Array.length samples = 0 then invalid_arg "Entropy.empirical: no samples";
  let lo = Array.fold_left min samples.(0) samples in
  let hi = Array.fold_left max samples.(0) samples in
  let hist = Array.make (hi - lo + 1) 0.0 in
  Array.iter (fun s -> hist.(s - lo) <- hist.(s - lo) +. 1.0) samples;
  normalize hist
