(** LB_Keogh lower bounds for DTW (Keogh, VLDB 2002 — the paper's
    reference [20] for exact DTW indexing).

    Given a Sakoe–Chiba band [r], the {e envelope} of a series [Y] is the
    pair of running extremes [U_j = max Y\[j-r .. j+r\]],
    [L_j = min Y\[j-r .. j+r\]].  For any [X] of the same length,
    [lb_keogh ~band:r x y] lower-bounds [dtw_sq_banded ~band:r x y]: each
    band-constrained coupling partner of [x_j] lies inside the envelope,
    so the one-sided squared gap to the envelope never overestimates the
    true coupling cost.  Plaintext retrieval systems use this to prune
    candidates before paying the quadratic DTW cost; here it serves the
    {e plaintext} side of hybrid workflows (pre-filtering public metadata
    before running the secure protocol on the shortlist) and as a test
    oracle for the banded DTW implementations.

    Only 1-dimensional series are supported, matching the classic
    formulation. *)

val envelope : band:int -> Series.t -> int array * int array
(** [(upper, lower)] running extremes over the window [j-band .. j+band].
    @raise Invalid_argument for multi-dimensional series or negative
    band. *)

val lb_keogh : band:int -> Series.t -> Series.t -> int
(** The squared-cost LB_Keogh bound; requires equal lengths.
    With [band = 0] it degenerates to the squared Euclidean distance.
    @raise Invalid_argument on length/dimension mismatch. *)

val prune :
  band:int -> radius:int -> query:Series.t -> Series.t array -> int list
(** Indices of database entries whose lower bound does not exceed
    [radius] — the candidates that still need an exact (or secure) DTW
    evaluation.  Entries of a different length than the query are kept
    (the bound does not apply to them). *)
