(** Plaintext distance functions for time series.

    The [*_sq] functions operate on integer series with the {e squared
    Euclidean} local cost — exactly the semantics of the secure protocols
    (paper Section 3.2 uses squared distances because they are
    homomorphism-friendly).  A secure protocol run must return bit-for-bit
    the same value as the corresponding [*_sq] function here; the test
    suite enforces this.

    Float variants with the true Euclidean local cost are provided for
    general time-series work and for the examples. *)

(** {1 Local costs} *)

val sq_euclidean : int array -> int array -> int
(** [sq_euclidean x y] = Σ (x_i - y_i)².
    @raise Invalid_argument on dimension mismatch. *)

val sq_euclidean_f : float array -> float array -> float
val euclidean_f : float array -> float array -> float

(** {1 Whole-series distances, protocol semantics (integer, squared)} *)

val euclidean_sq : Series.t -> Series.t -> int
(** Sum of squared element distances; requires equal lengths.
    @raise Invalid_argument otherwise. *)

val dtw_sq : Series.t -> Series.t -> int
(** Dynamic Time Warping with squared-Euclidean local cost
    (paper Algorithm 1). *)

val dfd_sq : Series.t -> Series.t -> int
(** Discrete Fréchet Distance with squared-Euclidean local cost
    (paper Algorithm 2). *)

val dtw_sq_banded : band:int -> Series.t -> Series.t -> int option
(** Sakoe–Chiba banded DTW: cells with [|i - j| > band] are excluded.
    [None] when the band admits no complete warping path. *)

val dfd_sq_banded : band:int -> Series.t -> Series.t -> int option
(** Band-constrained Discrete Fréchet Distance (couplings restricted to
    [|i - j| <= band]); [None] when the band admits no complete
    coupling. *)

val dtw_sq_matrix : Series.t -> Series.t -> int array array
(** The full DP matrix (the intermediate the protocol must hide —
    used by leakage analysis and tests). *)

val dfd_sq_matrix : Series.t -> Series.t -> int array array

val dtw_sq_path : Series.t -> Series.t -> (int * int) list
(** An optimal warping path (list of (i, j) couplings from (0,0) to
    (m-1,n-1)) — the other secret the protocol hides. *)

(** {1 Whole-series distances, float semantics} *)

val euclidean : Series.Fseries.t -> Series.Fseries.t -> float
val dtw : Series.Fseries.t -> Series.Fseries.t -> float
val dfd : Series.Fseries.t -> Series.Fseries.t -> float

val erp : gap:float array -> Series.Fseries.t -> Series.Fseries.t -> float
(** Edit distance with Real Penalty (Chen & Ng, VLDB 2004), with the given
    gap element — the paper cites it as another DP distance the protocol
    framework extends to. *)

val erp_sq : gap:int array -> Series.t -> Series.t -> int
(** Integer ERP with squared-Euclidean cost, protocol-compatible. *)
