(* Deterministic synthetic workload generators (SplitMix64-driven). *)

open Ppst_bigint

let uniform rng = float_of_int (Splitmix.int rng 1_000_000) /. 1_000_000.0

(* Box-Muller; one value per call is enough here. *)
let gaussian rng =
  let u1 = Float.max 1e-12 (uniform rng) in
  let u2 = uniform rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* A Gaussian bump: amplitude a centered at c with width w, evaluated at
   phase t in [0, 1). *)
let bump a c w t =
  let d = t -. c in
  a *. exp (-.(d *. d) /. (2.0 *. w *. w))

(* One cardiac cycle sampled at phase t in [0,1): P wave, QRS complex,
   T wave.  Shapes chosen to mimic lead-II morphology. *)
let pqrst t =
  bump 0.12 0.18 0.04 t (* P *)
  +. bump (-0.12) 0.38 0.012 t (* Q *)
  +. bump 1.0 0.42 0.014 t (* R *)
  +. bump (-0.25) 0.46 0.015 t (* S *)
  +. bump 0.28 0.68 0.06 t (* T *)

let ecg ~seed ~length =
  if length <= 0 then invalid_arg "Generate.ecg: non-positive length";
  let rng = Splitmix.create (seed lxor 0x6A09E667) in
  let samples_per_beat = 36.0 +. (6.0 *. uniform rng) in
  let noise_level = 0.02 in
  let wander_freq = 0.9 +. uniform rng in
  let wander_amp = 0.05 in
  let data =
    Array.init length (fun i ->
        let beat_pos = float_of_int i /. samples_per_beat in
        let phase = beat_pos -. Float.of_int (int_of_float beat_pos) in
        let wander =
          wander_amp *. sin (2.0 *. Float.pi *. wander_freq *. beat_pos /. 10.0)
        in
        [| pqrst phase +. wander +. (noise_level *. gaussian rng) |])
  in
  Series.Fseries.create data

let quantize_positive ~max_value (fs : Series.Fseries.t) : Series.t =
  if max_value < 2 then invalid_arg "Generate: max_value must be >= 2";
  let data = Series.Fseries.to_array fs in
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (Array.iter (fun v ->
         if v < !lo then lo := v;
         if v > !hi then hi := v))
    data;
  let span = if !hi -. !lo < 1e-12 then 1.0 else !hi -. !lo in
  Series.create
    (Array.map
       (Array.map (fun v ->
            1 + int_of_float ((v -. !lo) /. span *. float_of_int (max_value - 1))))
       data)

let ecg_int ~seed ~length ~max_value =
  quantize_positive ~max_value (ecg ~seed ~length)

let random_walk ~seed ~length ~dim =
  if length <= 0 || dim <= 0 then invalid_arg "Generate.random_walk: bad size";
  let rng = Splitmix.create (seed lxor 0xBB67AE85) in
  let pos = Array.make dim 0.0 in
  let data =
    Array.init length (fun _ ->
        for k = 0 to dim - 1 do
          pos.(k) <- pos.(k) +. gaussian rng
        done;
        Array.copy pos)
  in
  Series.Fseries.create data

let random_vectors ~seed ~length ~dim ~max_value =
  if length <= 0 || dim <= 0 then invalid_arg "Generate.random_vectors: bad size";
  let rng = Splitmix.create (seed lxor 0x3C6EF372) in
  Series.create
    (Array.init length (fun _ ->
         Array.init dim (fun _ -> 1 + Splitmix.int rng max_value)))

let sine_with_noise ~seed ~length ~period ~noise =
  if length <= 0 then invalid_arg "Generate.sine_with_noise: bad length";
  if period <= 0.0 then invalid_arg "Generate.sine_with_noise: bad period";
  let rng = Splitmix.create (seed lxor 0xA54FF53A) in
  Series.Fseries.create
    (Array.init length (fun i ->
         [| sin (2.0 *. Float.pi *. float_of_int i /. period) +. (noise *. gaussian rng) |]))

(* Pen strokes: two coupled oscillators with drifting frequency, like a
   cursive loop pattern; jitter models pen shake. *)
let signature ~seed ~length =
  if length <= 0 then invalid_arg "Generate.signature: bad length";
  let rng = Splitmix.create (seed lxor 0x510E527F) in
  let fx = 1.0 +. (0.4 *. uniform rng) in
  let fy = 2.0 +. (0.6 *. uniform rng) in
  let phase = 2.0 *. Float.pi *. uniform rng in
  let drift = 0.5 +. uniform rng in
  Series.Fseries.create
    (Array.init length (fun i ->
         let t = float_of_int i /. float_of_int length *. 4.0 *. Float.pi in
         let x = (t *. drift /. 6.0) +. cos ((fx *. t) +. phase) +. (0.02 *. gaussian rng) in
         let y = sin (fy *. t) +. (0.3 *. sin (0.5 *. t)) +. (0.02 *. gaussian rng) in
         [| x; y |]))

let signature_int ~seed ~length ~max_value =
  quantize_positive ~max_value (signature ~seed ~length)

let trajectory ~seed ~length =
  if length <= 0 then invalid_arg "Generate.trajectory: bad length";
  let rng = Splitmix.create (seed lxor 0x9B05688C) in
  let heading = ref (2.0 *. Float.pi *. uniform rng) in
  let x = ref 0.0 and y = ref 0.0 in
  Series.Fseries.create
    (Array.init length (fun _ ->
         heading := !heading +. (0.15 *. gaussian rng);
         let speed = 1.0 +. (0.2 *. gaussian rng) in
         x := !x +. (speed *. cos !heading);
         y := !y +. (speed *. sin !heading);
         [| !x; !y |]))

let trajectory_int ~seed ~length ~max_value =
  quantize_positive ~max_value (trajectory ~seed ~length)

let perturb ~seed ~noise fs =
  let rng = Splitmix.create (seed lxor 0x1F83D9AB) in
  Series.Fseries.map
    (fun e -> Array.map (fun v -> v +. (noise *. gaussian rng)) e)
    fs
