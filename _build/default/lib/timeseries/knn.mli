(** Plaintext nearest-neighbour search over small series databases —
    the retrieval layer of the examples (hospital ECG lookup, signature
    verification).  Linear scan; the protocol's cost dwarfs any index. *)

type metric = Dtw_sq | Dfd_sq | Euclidean_sq

val distance : metric -> Series.t -> Series.t -> int
(** Dispatch to the corresponding [Distance.*_sq] function.
    [Euclidean_sq] requires equal lengths. *)

val nearest : metric -> query:Series.t -> Series.t array -> int * int
(** [(index, distance)] of the closest database entry.
    @raise Invalid_argument on an empty database. *)

val k_nearest : metric -> k:int -> query:Series.t -> Series.t array -> (int * int) list
(** The [k] closest entries, ascending by distance (fewer when the
    database is smaller than [k]). *)

val within : metric -> radius:int -> query:Series.t -> Series.t array -> (int * int) list
(** All entries at distance [<= radius], ascending. *)
