type metric = Dtw_sq | Dfd_sq | Euclidean_sq

let distance metric a b =
  match metric with
  | Dtw_sq -> Distance.dtw_sq a b
  | Dfd_sq -> Distance.dfd_sq a b
  | Euclidean_sq -> Distance.euclidean_sq a b

let all_distances metric ~query database =
  Array.mapi (fun i s -> (i, distance metric query s)) database

let nearest metric ~query database =
  if Array.length database = 0 then invalid_arg "Knn.nearest: empty database";
  Array.fold_left
    (fun (bi, bd) (i, d) -> if d < bd then (i, d) else (bi, bd))
    (0, distance metric query database.(0))
    (all_distances metric ~query database)

let sorted_distances metric ~query database =
  let scored = Array.to_list (all_distances metric ~query database) in
  List.sort (fun (_, d1) (_, d2) -> compare d1 d2) scored

let k_nearest metric ~k ~query database =
  if k <= 0 then invalid_arg "Knn.k_nearest: k must be positive";
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k (sorted_distances metric ~query database)

let within metric ~radius ~query database =
  List.filter (fun (_, d) -> d <= radius) (sorted_distances metric ~query database)
