let mean_std fs =
  let n = Series.Fseries.length fs and d = Series.Fseries.dimension fs in
  let mean = Array.make d 0.0 and std = Array.make d 0.0 in
  for i = 0 to n - 1 do
    let e = Series.Fseries.get fs i in
    for k = 0 to d - 1 do
      mean.(k) <- mean.(k) +. e.(k)
    done
  done;
  for k = 0 to d - 1 do
    mean.(k) <- mean.(k) /. float_of_int n
  done;
  for i = 0 to n - 1 do
    let e = Series.Fseries.get fs i in
    for k = 0 to d - 1 do
      let dv = e.(k) -. mean.(k) in
      std.(k) <- std.(k) +. (dv *. dv)
    done
  done;
  for k = 0 to d - 1 do
    std.(k) <- sqrt (std.(k) /. float_of_int n)
  done;
  (mean, std)

let z_normalize fs =
  let mean, std = mean_std fs in
  Series.Fseries.map
    (fun e ->
      Array.mapi
        (fun k v ->
          let s = std.(k) in
          if s < 1e-12 then v -. mean.(k) else (v -. mean.(k)) /. s)
        e)
    fs

let coordinate_ranges fs =
  let d = Series.Fseries.dimension fs in
  let lo = Array.make d infinity and hi = Array.make d neg_infinity in
  for i = 0 to Series.Fseries.length fs - 1 do
    let e = Series.Fseries.get fs i in
    for k = 0 to d - 1 do
      if e.(k) < lo.(k) then lo.(k) <- e.(k);
      if e.(k) > hi.(k) then hi.(k) <- e.(k)
    done
  done;
  (lo, hi)

let min_max ~lo ~hi fs =
  if lo >= hi then invalid_arg "Normalize.min_max: lo >= hi";
  let clo, chi = coordinate_ranges fs in
  Series.Fseries.map
    (fun e ->
      Array.mapi
        (fun k v ->
          let span = chi.(k) -. clo.(k) in
          if span < 1e-12 then lo
          else lo +. ((v -. clo.(k)) /. span *. (hi -. lo)))
        e)
    fs

let quantize ~max_value fs =
  if max_value < 2 then invalid_arg "Normalize.quantize: max_value < 2";
  (* Joint (not per-coordinate) rescale so relative geometry is kept. *)
  let clo, chi = coordinate_ranges fs in
  let lo = Array.fold_left Float.min infinity clo in
  let hi = Array.fold_left Float.max neg_infinity chi in
  let span = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
  Series.create
    (Array.map
       (Array.map (fun v ->
            1 + int_of_float ((v -. lo) /. span *. float_of_int (max_value - 1))))
       (Series.Fseries.to_array fs))

let dequantize s =
  Series.Fseries.create
    (Array.map (Array.map float_of_int) (Series.to_array s))
