(** Normalization and quantization bridges between float series (raw
    sensor data) and the positive-integer series the secure protocols
    consume. *)

val z_normalize : Series.Fseries.t -> Series.Fseries.t
(** Per-coordinate zero mean, unit variance (constant coordinates are
    left centered at zero). *)

val min_max : lo:float -> hi:float -> Series.Fseries.t -> Series.Fseries.t
(** Per-coordinate affine rescale into [\[lo, hi\]].
    @raise Invalid_argument if [lo >= hi]. *)

val quantize : max_value:int -> Series.Fseries.t -> Series.t
(** Rescale all coordinates jointly into [\[1, max_value\]] and round —
    the paper's "normalized to positive integer values" step.
    @raise Invalid_argument if [max_value < 2]. *)

val dequantize : Series.t -> Series.Fseries.t
(** Integer series viewed as floats (no rescaling). *)

val mean_std : Series.Fseries.t -> float array * float array
(** Per-coordinate mean and standard deviation. *)
