type t = { data : int array array; dim : int }

let validate_dims what dims data =
  Array.iteri
    (fun i e ->
      if Array.length e <> dims then
        invalid_arg
          (Printf.sprintf "%s: element %d has dimension %d, expected %d" what i
             (Array.length e) dims))
    data

let create data =
  if Array.length data = 0 then invalid_arg "Series.create: empty series";
  let dim = Array.length data.(0) in
  if dim = 0 then invalid_arg "Series.create: zero-dimensional elements";
  validate_dims "Series.create" dim data;
  { data = Array.map Array.copy data; dim }

let of_list values =
  if values = [] then invalid_arg "Series.of_list: empty series";
  { data = Array.of_list (List.map (fun v -> [| v |]) values); dim = 1 }

let length t = Array.length t.data
let dimension t = t.dim
let get t i = t.data.(i)

let value t i =
  if t.dim <> 1 then invalid_arg "Series.value: series is not 1-dimensional";
  t.data.(i).(0)

let to_array t = Array.map Array.copy t.data

let sub t ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > length t then
    invalid_arg "Series.sub: bounds";
  { data = Array.init len (fun i -> Array.copy t.data.(pos + i)); dim = t.dim }

let append a b =
  if a.dim <> b.dim then invalid_arg "Series.append: dimension mismatch";
  { data = Array.append (to_array a) (to_array b); dim = a.dim }

let map f t =
  let data = Array.map (fun e -> f (Array.copy e)) t.data in
  if Array.length data = 0 then invalid_arg "Series.map: empty result";
  let dim = Array.length data.(0) in
  validate_dims "Series.map" dim data;
  { data; dim }

let max_abs_value t =
  Array.fold_left
    (fun acc e -> Array.fold_left (fun acc v -> max acc (abs v)) acc e)
    0 t.data

let equal a b =
  a.dim = b.dim
  && length a = length b
  && begin
    let rec go i =
      i >= length a || (a.data.(i) = b.data.(i) && go (i + 1))
    in
    go 0
  end

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>[";
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt ";@ ";
      if t.dim = 1 then Format.pp_print_int fmt e.(0)
      else begin
        Format.fprintf fmt "(";
        Array.iteri
          (fun j v ->
            if j > 0 then Format.fprintf fmt ", ";
            Format.pp_print_int fmt v)
          e;
        Format.fprintf fmt ")"
      end)
    t.data;
  Format.fprintf fmt "]@]"

module Fseries = struct
  type t = { data : float array array; dim : int }

  let create data =
    if Array.length data = 0 then invalid_arg "Fseries.create: empty series";
    let dim = Array.length data.(0) in
    if dim = 0 then invalid_arg "Fseries.create: zero-dimensional elements";
    Array.iteri
      (fun i e ->
        if Array.length e <> dim then
          invalid_arg
            (Printf.sprintf "Fseries.create: element %d has dimension %d" i
               (Array.length e)))
      data;
    { data = Array.map Array.copy data; dim }

  let of_list values =
    if values = [] then invalid_arg "Fseries.of_list: empty series";
    { data = Array.of_list (List.map (fun v -> [| v |]) values); dim = 1 }

  let length t = Array.length t.data
  let dimension t = t.dim
  let get t i = t.data.(i)
  let to_array t = Array.map Array.copy t.data

  let map f t =
    let data = Array.map (fun e -> f (Array.copy e)) t.data in
    let dim = Array.length data.(0) in
    Array.iter
      (fun e ->
        if Array.length e <> dim then invalid_arg "Fseries.map: ragged result")
      data;
    { data; dim }
end
