(** CSV persistence for time series.

    Row format: one element per line, coordinates comma-separated.
    A file holds one series; {!load_many}/{!save_many} use blank-line
    separated blocks for small databases of series. *)

exception Parse_error of { line : int; message : string }

val save : string -> Series.t -> unit
val load : string -> Series.t
(** @raise Parse_error on malformed input, [Sys_error] on I/O failure. *)

val save_f : string -> Series.Fseries.t -> unit
val load_f : string -> Series.Fseries.t

val save_many : string -> Series.t list -> unit
val load_many : string -> Series.t list

val of_string : string -> Series.t
(** Parse CSV text directly (used by tests). *)

val to_string : Series.t -> string
