(** Synthetic time-series generators.

    The paper evaluates on UCR ECG segments normalized to positive
    integers, plus synthetic d-dimensional vectors with coordinates in
    [\[1, 100\]].  The UCR data is not redistributable, so {!ecg} produces
    ECG-morphology surrogates (quasi-periodic P-QRS-T complexes with
    measurement noise and baseline wander) with the same value range and
    length regime — see DESIGN.md §4 for the substitution argument.

    All generators are deterministic given the seed. *)

val ecg : seed:int -> length:int -> Series.Fseries.t
(** One-dimensional ECG-like waveform, amplitude roughly [\[-0.5, 1.2\]]
    millivolt-like units before quantization. *)

val ecg_int : seed:int -> length:int -> max_value:int -> Series.t
(** {!ecg} scaled and quantized to positive integers in [\[1,
    max_value\]] — the form the secure protocols consume (the paper's
    "normalized ECG data to positive integer values"). *)

val random_walk : seed:int -> length:int -> dim:int -> Series.Fseries.t
(** Gaussian-increment random walk, the classic synthetic similarity
    workload. *)

val random_vectors : seed:int -> length:int -> dim:int -> max_value:int -> Series.t
(** Elements uniform in [\[1, max_value\]^dim] — exactly the paper's
    Section 7.2 synthetic workload ("values of each vector are random
    values between 1 and 100"). *)

val sine_with_noise :
  seed:int -> length:int -> period:float -> noise:float -> Series.Fseries.t

val signature : seed:int -> length:int -> Series.Fseries.t
(** 2-D pen trajectory: smooth looping strokes with per-signer jitter —
    workload for the paper's signature-verification motivating example. *)

val signature_int : seed:int -> length:int -> max_value:int -> Series.t

val trajectory : seed:int -> length:int -> Series.Fseries.t
(** 2-D GPS-like trajectory: piecewise-smooth headings with speed noise. *)

val trajectory_int : seed:int -> length:int -> max_value:int -> Series.t

val perturb : seed:int -> noise:float -> Series.Fseries.t -> Series.Fseries.t
(** Additive Gaussian perturbation — builds "similar" series for
    nearest-neighbour scenarios. *)
