(** Time-series values.

    A series is a non-empty sequence of [d]-dimensional elements.  The
    secure protocols operate on {e integer} series (the paper normalizes
    its ECG data "to positive integer values"); {!Fseries} provides the
    float-valued counterpart used by generators and normalizers, with
    {!Quantize} bridging the two. *)

type t
(** Integer-valued series: elements are [int array] of a fixed dimension. *)

val create : int array array -> t
(** Build from an array of elements.
    @raise Invalid_argument when empty or when element dimensions differ. *)

val of_list : int list -> t
(** Convenience for 1-dimensional series. *)

val length : t -> int
val dimension : t -> int

val get : t -> int -> int array
(** Element at index (0-based).  The returned array must not be mutated. *)

val value : t -> int -> int
(** [value s i] for 1-dimensional series: the scalar at index [i].
    @raise Invalid_argument when the dimension is not 1. *)

val to_array : t -> int array array
(** Fresh copy of the underlying data. *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous subsequence. @raise Invalid_argument on bad bounds. *)

val append : t -> t -> t

val map : (int array -> int array) -> t -> t
(** @raise Invalid_argument if the function changes the dimension
    inconsistently. *)

val max_abs_value : t -> int
(** Largest absolute coordinate value; bounds the protocol's plaintext
    range analysis. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Float series} *)

module Fseries : sig
  type t

  val create : float array array -> t
  val of_list : float list -> t
  val length : t -> int
  val dimension : t -> int
  val get : t -> int -> float array
  val to_array : t -> float array array
  val map : (float array -> float array) -> t -> t
end
