let check_1d_f what s =
  if Series.Fseries.dimension s <> 1 then
    invalid_arg (what ^ ": only 1-dimensional series")

(* Equal-width frames with remainder spread over the leading frames:
   frame i covers [bounds i, bounds (i+1)). *)
let frame_bounds ~segments ~length i = i * length / segments

let paa ~segments fs =
  check_1d_f "Paa.paa" fs;
  let length = Series.Fseries.length fs in
  if segments <= 0 then invalid_arg "Paa.paa: segments must be positive";
  if segments > length then invalid_arg "Paa.paa: more segments than elements";
  Array.init segments (fun i ->
      let lo = frame_bounds ~segments ~length i in
      let hi = frame_bounds ~segments ~length (i + 1) in
      let acc = ref 0.0 in
      for t = lo to hi - 1 do
        acc := !acc +. (Series.Fseries.get fs t).(0)
      done;
      !acc /. float_of_int (hi - lo))

let paa_int ~segments s =
  paa ~segments (Normalize.dequantize s)

(* Standard-normal quantiles at i/alphabet, i = 1 .. alphabet-1, from the
   classic SAX table (Lin et al., DMKD 2007). *)
let breakpoint_table =
  [|
    [| 0.0 |] (* alphabet 2 *);
    [| -0.43; 0.43 |];
    [| -0.67; 0.0; 0.67 |];
    [| -0.84; -0.25; 0.25; 0.84 |];
    [| -0.97; -0.43; 0.0; 0.43; 0.97 |];
    [| -1.07; -0.57; -0.18; 0.18; 0.57; 1.07 |];
    [| -1.15; -0.67; -0.32; 0.0; 0.32; 0.67; 1.15 |];
    [| -1.22; -0.76; -0.43; -0.14; 0.14; 0.43; 0.76; 1.22 |];
    [| -1.28; -0.84; -0.52; -0.25; 0.0; 0.25; 0.52; 0.84; 1.28 |];
  |]

let sax_breakpoints ~alphabet =
  if alphabet < 2 || alphabet > 10 then
    invalid_arg "Paa.sax_breakpoints: alphabet must be in [2, 10]";
  Array.copy breakpoint_table.(alphabet - 2)

let symbol_of breakpoints v =
  let rec go i =
    if i >= Array.length breakpoints then i
    else if v < breakpoints.(i) then i
    else go (i + 1)
  in
  go 0

let sax ~segments ~alphabet fs =
  let z = Normalize.z_normalize fs in
  let means = paa ~segments z in
  let breakpoints = sax_breakpoints ~alphabet in
  Array.map (symbol_of breakpoints) means

(* MINDIST (Lin et al.): symbols one apart contribute 0; otherwise the gap
   between the nearer breakpoints.  Scaled by sqrt(n/w) on the distance —
   we return the squared value. *)
let sax_distance_sq ~alphabet ~original_length a b =
  if Array.length a <> Array.length b then
    invalid_arg "Paa.sax_distance_sq: word lengths differ";
  if Array.length a = 0 then invalid_arg "Paa.sax_distance_sq: empty words";
  let breakpoints = sax_breakpoints ~alphabet in
  let cell r c =
    if abs (r - c) <= 1 then 0.0
    else begin
      let hi = Stdlib.max r c and lo = Stdlib.min r c in
      breakpoints.(hi - 1) -. breakpoints.(lo)
    end
  in
  let acc = ref 0.0 in
  Array.iteri
    (fun i ra ->
      let d = cell ra b.(i) in
      acc := !acc +. (d *. d))
    a;
  float_of_int original_length /. float_of_int (Array.length a) *. !acc
