lib/timeseries/generate.mli: Series
