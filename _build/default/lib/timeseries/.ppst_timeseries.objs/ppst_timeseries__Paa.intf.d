lib/timeseries/paa.mli: Series
