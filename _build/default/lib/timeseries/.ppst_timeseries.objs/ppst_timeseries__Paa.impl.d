lib/timeseries/paa.ml: Array Normalize Series Stdlib
