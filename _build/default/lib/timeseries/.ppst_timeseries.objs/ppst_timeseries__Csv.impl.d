lib/timeseries/csv.ml: Array Buffer Fun List Printf Series String
