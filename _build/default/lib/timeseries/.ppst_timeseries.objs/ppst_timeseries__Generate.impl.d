lib/timeseries/generate.ml: Array Float Ppst_bigint Series Splitmix
