lib/timeseries/lower_bound.mli: Series
