lib/timeseries/normalize.mli: Series
