lib/timeseries/series.mli: Format
