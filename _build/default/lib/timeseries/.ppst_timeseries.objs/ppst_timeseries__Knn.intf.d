lib/timeseries/knn.mli: Series
