lib/timeseries/knn.ml: Array Distance List
