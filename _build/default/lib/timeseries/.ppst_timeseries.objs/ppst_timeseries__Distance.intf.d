lib/timeseries/distance.mli: Series
