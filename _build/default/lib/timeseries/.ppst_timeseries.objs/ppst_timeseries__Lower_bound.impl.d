lib/timeseries/lower_bound.ml: Array Series Stdlib
