lib/timeseries/normalize.ml: Array Float Series
