lib/timeseries/series.ml: Array Format List Printf
