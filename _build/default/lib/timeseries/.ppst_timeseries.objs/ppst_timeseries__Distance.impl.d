lib/timeseries/distance.ml: Array Float Printf Series
