lib/timeseries/csv.mli: Series
