exception Parse_error of { line : int; message : string }

let parse_error line message = raise (Parse_error { line; message })

let split_commas s = String.split_on_char ',' s |> List.map String.trim

let parse_int_row lineno s =
  List.map
    (fun field ->
      match int_of_string_opt field with
      | Some v -> v
      | None -> parse_error lineno (Printf.sprintf "not an integer: %S" field))
    (split_commas s)

let parse_float_row lineno s =
  List.map
    (fun field ->
      match float_of_string_opt field with
      | Some v -> v
      | None -> parse_error lineno (Printf.sprintf "not a number: %S" field))
    (split_commas s)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let write_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let is_blank s = String.trim s = ""

let series_of_rows rows =
  match rows with
  | [] -> parse_error 0 "empty series"
  | _ -> Series.create (Array.of_list (List.map Array.of_list rows))

let of_lines lines =
  let rows =
    List.filteri (fun _ l -> not (is_blank l)) lines
    |> List.mapi (fun i l -> parse_int_row (i + 1) l)
  in
  series_of_rows rows

let of_string text = of_lines (String.split_on_char '\n' text)

let to_string s =
  let buf = Buffer.create 256 in
  for i = 0 to Series.length s - 1 do
    let e = Series.get s i in
    Array.iteri
      (fun k v ->
        if k > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int v))
      e;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let save path s = write_string path (to_string s)
let load path = of_lines (read_lines path)

let to_string_f s =
  let buf = Buffer.create 256 in
  for i = 0 to Series.Fseries.length s - 1 do
    let e = Series.Fseries.get s i in
    Array.iteri
      (fun k v ->
        if k > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "%.9g" v))
      e;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let save_f path s = write_string path (to_string_f s)

let load_f path =
  let rows =
    read_lines path
    |> List.filter (fun l -> not (is_blank l))
    |> List.mapi (fun i l -> parse_float_row (i + 1) l)
  in
  match rows with
  | [] -> parse_error 0 "empty series"
  | _ -> Series.Fseries.create (Array.of_list (List.map Array.of_list rows))

let save_many path series_list =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (to_string s))
    series_list;
  write_string path (Buffer.contents buf)

let load_many path =
  let lines = read_lines path in
  let blocks, current, _ =
    List.fold_left
      (fun (blocks, current, lineno) line ->
        if is_blank line then
          match current with
          | [] -> (blocks, [], lineno + 1)
          | rows -> (List.rev rows :: blocks, [], lineno + 1)
        else (blocks, parse_int_row lineno line :: current, lineno + 1))
      ([], [], 1) lines
  in
  let blocks =
    match current with [] -> blocks | rows -> List.rev rows :: blocks
  in
  List.rev_map series_of_rows blocks
