let check_1d what s =
  if Series.dimension s <> 1 then invalid_arg (what ^ ": only 1-dimensional series")

let envelope ~band series =
  check_1d "Lower_bound.envelope" series;
  if band < 0 then invalid_arg "Lower_bound.envelope: negative band";
  let n = Series.length series in
  let upper = Array.make n min_int and lower = Array.make n max_int in
  for j = 0 to n - 1 do
    let lo = Stdlib.max 0 (j - band) and hi = Stdlib.min (n - 1) (j + band) in
    for t = lo to hi do
      let v = Series.value series t in
      if v > upper.(j) then upper.(j) <- v;
      if v < lower.(j) then lower.(j) <- v
    done
  done;
  (upper, lower)

let lb_keogh ~band x y =
  check_1d "Lower_bound.lb_keogh" x;
  check_1d "Lower_bound.lb_keogh" y;
  if Series.length x <> Series.length y then
    invalid_arg "Lower_bound.lb_keogh: series lengths differ";
  let upper, lower = envelope ~band y in
  let acc = ref 0 in
  for j = 0 to Series.length x - 1 do
    let v = Series.value x j in
    if v > upper.(j) then begin
      let d = v - upper.(j) in
      acc := !acc + (d * d)
    end
    else if v < lower.(j) then begin
      let d = lower.(j) - v in
      acc := !acc + (d * d)
    end
  done;
  !acc

let prune ~band ~radius ~query database =
  let candidates = ref [] in
  for i = Array.length database - 1 downto 0 do
    let keep =
      Series.length database.(i) <> Series.length query
      || Series.dimension database.(i) <> 1
      || lb_keogh ~band query database.(i) <= radius
    in
    if keep then candidates := i :: !candidates
  done;
  !candidates
