let check_dim what la lb =
  if la <> lb then
    invalid_arg (Printf.sprintf "%s: dimension mismatch (%d vs %d)" what la lb)

let sq_euclidean x y =
  check_dim "Distance.sq_euclidean" (Array.length x) (Array.length y);
  let acc = ref 0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) - y.(i) in
    acc := !acc + (d * d)
  done;
  !acc

let sq_euclidean_f x y =
  check_dim "Distance.sq_euclidean_f" (Array.length x) (Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let euclidean_f x y = sqrt (sq_euclidean_f x y)

let check_comparable what a b =
  if Series.dimension a <> Series.dimension b then
    invalid_arg (what ^ ": series dimensions differ")

let euclidean_sq a b =
  check_comparable "Distance.euclidean_sq" a b;
  if Series.length a <> Series.length b then
    invalid_arg "Distance.euclidean_sq: series lengths differ";
  let acc = ref 0 in
  for i = 0 to Series.length a - 1 do
    acc := !acc + sq_euclidean (Series.get a i) (Series.get b i)
  done;
  !acc

let min3 a b c = min a (min b c)

(* Paper Algorithm 1, filling the full matrix.  Kept as the reference the
   secure protocol is checked against; O(mn) memory is fine at protocol
   scales (the protocol itself stores the ciphertext matrix anyway). *)
let dtw_sq_matrix a b =
  check_comparable "Distance.dtw_sq" a b;
  let m = Series.length a and n = Series.length b in
  let mat = Array.make_matrix m n 0 in
  mat.(0).(0) <- sq_euclidean (Series.get a 0) (Series.get b 0);
  for i = 1 to m - 1 do
    mat.(i).(0) <- sq_euclidean (Series.get a i) (Series.get b 0) + mat.(i - 1).(0)
  done;
  for j = 1 to n - 1 do
    mat.(0).(j) <- sq_euclidean (Series.get a 0) (Series.get b j) + mat.(0).(j - 1)
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      let cost = sq_euclidean (Series.get a i) (Series.get b j) in
      mat.(i).(j) <- cost + min3 mat.(i - 1).(j - 1) mat.(i - 1).(j) mat.(i).(j - 1)
    done
  done;
  mat

let dtw_sq a b =
  let mat = dtw_sq_matrix a b in
  mat.(Series.length a - 1).(Series.length b - 1)

(* Paper Algorithm 2. *)
let dfd_sq_matrix a b =
  check_comparable "Distance.dfd_sq" a b;
  let m = Series.length a and n = Series.length b in
  let mat = Array.make_matrix m n 0 in
  mat.(0).(0) <- sq_euclidean (Series.get a 0) (Series.get b 0);
  for i = 1 to m - 1 do
    mat.(i).(0) <- max (sq_euclidean (Series.get a i) (Series.get b 0)) mat.(i - 1).(0)
  done;
  for j = 1 to n - 1 do
    mat.(0).(j) <- max (sq_euclidean (Series.get a 0) (Series.get b j)) mat.(0).(j - 1)
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      let cost = sq_euclidean (Series.get a i) (Series.get b j) in
      mat.(i).(j) <-
        max cost (min3 mat.(i - 1).(j - 1) mat.(i - 1).(j) mat.(i).(j - 1))
    done
  done;
  mat

let dfd_sq a b =
  let mat = dfd_sq_matrix a b in
  mat.(Series.length a - 1).(Series.length b - 1)

let dtw_sq_banded ~band a b =
  check_comparable "Distance.dtw_sq_banded" a b;
  if band < 0 then invalid_arg "Distance.dtw_sq_banded: negative band";
  let m = Series.length a and n = Series.length b in
  (* A complete path needs the band to cover the length difference. *)
  if abs (m - n) > band then None
  else begin
    let inf = max_int / 2 in
    let mat = Array.make_matrix m n inf in
    let in_band i j = abs (i - j) <= band in
    mat.(0).(0) <- sq_euclidean (Series.get a 0) (Series.get b 0);
    for i = 1 to m - 1 do
      if in_band i 0 && mat.(i - 1).(0) < inf then
        mat.(i).(0) <- sq_euclidean (Series.get a i) (Series.get b 0) + mat.(i - 1).(0)
    done;
    for j = 1 to n - 1 do
      if in_band 0 j && mat.(0).(j - 1) < inf then
        mat.(0).(j) <- sq_euclidean (Series.get a 0) (Series.get b j) + mat.(0).(j - 1)
    done;
    for i = 1 to m - 1 do
      for j = 1 to n - 1 do
        if in_band i j then begin
          let best = min3 mat.(i - 1).(j - 1) mat.(i - 1).(j) mat.(i).(j - 1) in
          if best < inf then
            mat.(i).(j) <- sq_euclidean (Series.get a i) (Series.get b j) + best
        end
      done
    done;
    if mat.(m - 1).(n - 1) >= inf then None else Some mat.(m - 1).(n - 1)
  end

let dfd_sq_banded ~band a b =
  check_comparable "Distance.dfd_sq_banded" a b;
  if band < 0 then invalid_arg "Distance.dfd_sq_banded: negative band";
  let m = Series.length a and n = Series.length b in
  if abs (m - n) > band then None
  else begin
    let inf = max_int / 2 in
    let mat = Array.make_matrix m n inf in
    let in_band i j = abs (i - j) <= band in
    mat.(0).(0) <- sq_euclidean (Series.get a 0) (Series.get b 0);
    for i = 1 to m - 1 do
      if in_band i 0 && mat.(i - 1).(0) < inf then
        mat.(i).(0) <- max (sq_euclidean (Series.get a i) (Series.get b 0)) mat.(i - 1).(0)
    done;
    for j = 1 to n - 1 do
      if in_band 0 j && mat.(0).(j - 1) < inf then
        mat.(0).(j) <- max (sq_euclidean (Series.get a 0) (Series.get b j)) mat.(0).(j - 1)
    done;
    for i = 1 to m - 1 do
      for j = 1 to n - 1 do
        if in_band i j then begin
          let best = min3 mat.(i - 1).(j - 1) mat.(i - 1).(j) mat.(i).(j - 1) in
          if best < inf then
            mat.(i).(j) <- max (sq_euclidean (Series.get a i) (Series.get b j)) best
        end
      done
    done;
    if mat.(m - 1).(n - 1) >= inf then None else Some mat.(m - 1).(n - 1)
  end

(* Optimal path by backtracking the DP matrix; ties broken toward the
   diagonal (the shortest coupling). *)
let dtw_sq_path a b =
  let mat = dtw_sq_matrix a b in
  let rec back i j acc =
    if i = 0 && j = 0 then (0, 0) :: acc
    else if i = 0 then back 0 (j - 1) ((i, j) :: acc)
    else if j = 0 then back (i - 1) 0 ((i, j) :: acc)
    else begin
      let d = mat.(i - 1).(j - 1) and u = mat.(i - 1).(j) and l = mat.(i).(j - 1) in
      let best = min3 d u l in
      if d = best then back (i - 1) (j - 1) ((i, j) :: acc)
      else if u = best then back (i - 1) j ((i, j) :: acc)
      else back i (j - 1) ((i, j) :: acc)
    end
  in
  back (Series.length a - 1) (Series.length b - 1) []

(* Float variants (true Euclidean local cost). *)

let min3f a b c = Float.min a (Float.min b c)

let check_comparable_f what a b =
  if Series.Fseries.dimension a <> Series.Fseries.dimension b then
    invalid_arg (what ^ ": series dimensions differ")

let euclidean a b =
  check_comparable_f "Distance.euclidean" a b;
  if Series.Fseries.length a <> Series.Fseries.length b then
    invalid_arg "Distance.euclidean: series lengths differ";
  let acc = ref 0.0 in
  for i = 0 to Series.Fseries.length a - 1 do
    acc := !acc +. sq_euclidean_f (Series.Fseries.get a i) (Series.Fseries.get b i)
  done;
  sqrt !acc

let dtw a b =
  check_comparable_f "Distance.dtw" a b;
  let m = Series.Fseries.length a and n = Series.Fseries.length b in
  let mat = Array.make_matrix m n 0.0 in
  let cost i j = euclidean_f (Series.Fseries.get a i) (Series.Fseries.get b j) in
  mat.(0).(0) <- cost 0 0;
  for i = 1 to m - 1 do
    mat.(i).(0) <- cost i 0 +. mat.(i - 1).(0)
  done;
  for j = 1 to n - 1 do
    mat.(0).(j) <- cost 0 j +. mat.(0).(j - 1)
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      mat.(i).(j) <-
        cost i j +. min3f mat.(i - 1).(j - 1) mat.(i - 1).(j) mat.(i).(j - 1)
    done
  done;
  mat.(m - 1).(n - 1)

let dfd a b =
  check_comparable_f "Distance.dfd" a b;
  let m = Series.Fseries.length a and n = Series.Fseries.length b in
  let mat = Array.make_matrix m n 0.0 in
  let cost i j = euclidean_f (Series.Fseries.get a i) (Series.Fseries.get b j) in
  mat.(0).(0) <- cost 0 0;
  for i = 1 to m - 1 do
    mat.(i).(0) <- Float.max (cost i 0) mat.(i - 1).(0)
  done;
  for j = 1 to n - 1 do
    mat.(0).(j) <- Float.max (cost 0 j) mat.(0).(j - 1)
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      mat.(i).(j) <-
        Float.max (cost i j)
          (min3f mat.(i - 1).(j - 1) mat.(i - 1).(j) mat.(i).(j - 1))
    done
  done;
  mat.(m - 1).(n - 1)

(* ERP (Chen & Ng): gaps are compared against a fixed reference element,
   which restores the triangle inequality that DTW lacks. *)
let erp ~gap a b =
  check_comparable_f "Distance.erp" a b;
  if Array.length gap <> Series.Fseries.dimension a then
    invalid_arg "Distance.erp: gap element dimension mismatch";
  let m = Series.Fseries.length a and n = Series.Fseries.length b in
  let mat = Array.make_matrix (m + 1) (n + 1) 0.0 in
  for i = 1 to m do
    mat.(i).(0) <- mat.(i - 1).(0) +. euclidean_f (Series.Fseries.get a (i - 1)) gap
  done;
  for j = 1 to n do
    mat.(0).(j) <- mat.(0).(j - 1) +. euclidean_f (Series.Fseries.get b (j - 1)) gap
  done;
  for i = 1 to m do
    for j = 1 to n do
      let xi = Series.Fseries.get a (i - 1) and yj = Series.Fseries.get b (j - 1) in
      mat.(i).(j) <-
        min3f
          (mat.(i - 1).(j - 1) +. euclidean_f xi yj)
          (mat.(i - 1).(j) +. euclidean_f xi gap)
          (mat.(i).(j - 1) +. euclidean_f yj gap)
    done
  done;
  mat.(m).(n)

let erp_sq ~gap a b =
  check_comparable "Distance.erp_sq" a b;
  if Array.length gap <> Series.dimension a then
    invalid_arg "Distance.erp_sq: gap element dimension mismatch";
  let m = Series.length a and n = Series.length b in
  let mat = Array.make_matrix (m + 1) (n + 1) 0 in
  for i = 1 to m do
    mat.(i).(0) <- mat.(i - 1).(0) + sq_euclidean (Series.get a (i - 1)) gap
  done;
  for j = 1 to n do
    mat.(0).(j) <- mat.(0).(j - 1) + sq_euclidean (Series.get b (j - 1)) gap
  done;
  for i = 1 to m do
    for j = 1 to n do
      let xi = Series.get a (i - 1) and yj = Series.get b (j - 1) in
      mat.(i).(j) <-
        min3
          (mat.(i - 1).(j - 1) + sq_euclidean xi yj)
          (mat.(i - 1).(j) + sq_euclidean xi gap)
          (mat.(i).(j - 1) + sq_euclidean yj gap)
    done
  done;
  mat.(m).(n)
