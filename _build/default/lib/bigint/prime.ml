(* Primality testing and random prime generation.

   Miller-Rabin with (a) trial division by a precomputed table of small
   primes and (b) random witnesses.  Witness randomness only needs to be
   unpredictable to an adversary who controls the *candidate*, which is
   never the case here (we generate candidates ourselves), so SplitMix64
   witnesses are sufficient; the candidate bits themselves come from the
   caller-provided generator (a CSPRNG in production use). *)

let small_prime_limit = 1000

let small_primes =
  (* Sieve of Eratosthenes up to [small_prime_limit]. *)
  let sieve = Array.make (small_prime_limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  let i = ref 2 in
  while !i * !i <= small_prime_limit do
    if sieve.(!i) then begin
      let j = ref (!i * !i) in
      while !j <= small_prime_limit do
        sieve.(!j) <- false;
        j := !j + !i
      done
    end;
    incr i
  done;
  let out = ref [] in
  for p = small_prime_limit downto 2 do
    if sieve.(p) then out := p :: !out
  done;
  Array.of_list !out

let default_rounds = 40

(* One Miller-Rabin round: [n] odd > 3, [n - 1 = d * 2^r] with [d] odd,
   witness [a] in [2, n-2].  Returns false when [a] proves compositeness. *)
let miller_rabin_round ctx n n_minus_1 d r a =
  let x = ref (Modular.pow_ctx ctx a d) in
  if Bigint.equal !x Bigint.one || Bigint.equal !x n_minus_1 then true
  else begin
    let witness_found = ref false in
    let i = ref 1 in
    while (not !witness_found) && !i < r do
      x := Modular.mul_ctx ctx !x !x;
      if Bigint.equal !x n_minus_1 then witness_found := true
      else if Bigint.equal !x Bigint.one then i := r (* composite: shortcut out *)
      else incr i
    done;
    ignore n;
    !witness_found
  end

let is_probable_prime ?(rounds = default_rounds) n =
  if Bigint.compare n Bigint.two < 0 then false
  else begin
    match Bigint.to_int_opt n with
    | Some v when v <= small_prime_limit ->
      Array.exists (fun p -> p = v) small_primes
    | _ ->
      if Bigint.is_even n then false
      else begin
        let divisible =
          Array.exists
            (fun p ->
              let r = Bigint.rem n (Bigint.of_int p) in
              Bigint.is_zero r && Bigint.compare n (Bigint.of_int p) <> 0)
            small_primes
        in
        if divisible then false
        else begin
          let n_minus_1 = Bigint.pred n in
          (* Factor n-1 = d * 2^r with d odd. *)
          let r = ref 0 and d = ref n_minus_1 in
          while Bigint.is_even !d do
            d := Bigint.shift_right !d 1;
            incr r
          done;
          let ctx = Modular.make_ctx n in
          let witness_rng = Splitmix.create (Bigint.hash n lxor 0x5DEECE66D) in
          let nbits = Bigint.num_bits n in
          let rec rounds_left k =
            if k = 0 then true
            else begin
              (* Witness uniform-ish in [2, n-2] by rejection. *)
              let rec draw () =
                let a = Splitmix.bits witness_rng nbits in
                if Bigint.compare a Bigint.two < 0
                   || Bigint.compare a (Bigint.pred n_minus_1) > 0
                then draw ()
                else a
              in
              let a = draw () in
              if miller_rabin_round ctx n n_minus_1 !d !r a then rounds_left (k - 1)
              else false
            end
          in
          rounds_left rounds
        end
      end
  end

let next_prime n =
  let start =
    if Bigint.compare n Bigint.two < 0 then Bigint.two
    else if Bigint.is_even n then Bigint.succ n
    else Bigint.add n Bigint.two
  in
  let rec go c =
    if is_probable_prime c then c
    else if Bigint.equal c Bigint.two then go (Bigint.of_int 3)
    else go (Bigint.add c Bigint.two)
  in
  if Bigint.equal start Bigint.two then Bigint.two else go start

(* Random prime of exactly [bits] bits: top two bits forced to 1 (so that
   products of two such primes have exactly [2*bits] bits, as RSA/Paillier
   key generation requires), bottom bit forced to 1. *)
let random_prime ~random_bits ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: need at least 2 bits";
  let top = Bigint.shift_left Bigint.one (bits - 1) in
  let second =
    if bits >= 2 then Bigint.shift_left Bigint.one (bits - 2) else Bigint.zero
  in
  let rec go () =
    let candidate = random_bits bits in
    let candidate =
      Bigint.add
        (if Bigint.is_even candidate then Bigint.succ candidate else candidate)
        Bigint.zero
    in
    (* Force top bits via bitwise construction: c | top | second | 1. *)
    let c = ref candidate in
    if not (Bigint.testbit !c (bits - 1)) then c := Bigint.add !c top;
    if bits >= 2 && not (Bigint.testbit !c (bits - 2)) then c := Bigint.add !c second;
    if is_probable_prime !c then !c else go ()
  in
  go ()

(* A safe prime p = 2q + 1 with q prime.  Slow for large sizes; provided
   for completeness and used only in tests at small bit lengths. *)
let random_safe_prime ~random_bits ~bits =
  let rec go () =
    let q = random_prime ~random_bits ~bits:(bits - 1) in
    let p = Bigint.succ (Bigint.shift_left q 1) in
    if Bigint.num_bits p = bits && is_probable_prime p then p else go ()
  in
  go ()
