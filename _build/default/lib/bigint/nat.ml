(* Low-level unsigned limb-vector arithmetic.

   Invariants relied upon throughout:
   - limbs are little-endian, each in [0, 2^31);
   - values are normalized (no most-significant zero limbs, zero = [||]);
   - intermediate products fit native ints: with B = 2^31,
     (B-1)^2 + (B-1) + (B-1) = 2^62 - 1 = max_int on 64-bit OCaml. *)

type t = int array

let base_bits = 31
let base = 1 lsl base_bits
let base_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]

let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1

let normalize (a : t) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else if v < base then [| v |]
  else begin
    (* A native int needs at most three 31-bit limbs. *)
    let l0 = v land base_mask in
    let v1 = v lsr base_bits in
    let l1 = v1 land base_mask in
    let v2 = v1 lsr base_bits in
    if v2 = 0 then [| l0; l1 |] else [| l0; l1; v2 |]
  end

let to_int_opt (a : t) =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl base_bits))
  | 3 when a.(2) < 1 -> Some (a.(0) lor (a.(1) lsl base_bits))
  | _ -> None

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let lmax = if la > lb then la else lb in
    let r = Array.make (lmax + 1) 0 in
    let carry = ref 0 in
    for i = 0 to lmax - 1 do
      let ai = if i < la then a.(i) else 0 in
      let bi = if i < lb then b.(i) else 0 in
      let s = ai + bi + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(lmax) <- !carry;
    normalize r
  end

let add_int a v =
  if v < 0 then invalid_arg "Nat.add_int: negative";
  if v = 0 then a else add a (of_int v)

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if lb > la then invalid_arg "Nat.sub: underflow";
  if lb = 0 then a
  else begin
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let bi = if i < lb then b.(i) else 0 in
      let d = a.(i) - bi - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    if !borrow <> 0 then invalid_arg "Nat.sub: underflow";
    normalize r
  end

let mul_limb (a : t) (d : int) : t =
  if d < 0 || d >= base then invalid_arg "Nat.mul_limb: limb out of range";
  if d = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * d) + !carry in
      r.(i) <- t land base_mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_school (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land base_mask;
          carry := t lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    normalize r
  end

let karatsuba_threshold = 32

(* Split [a] at limb index [m]: low part and high part, both normalized. *)
let split_at (a : t) m =
  let la = Array.length a in
  if la <= m then (a, zero)
  else (normalize (Array.sub a 0 m), Array.sub a m (la - m))

let shift_limbs (a : t) m =
  if is_zero a || m = 0 then if m = 0 then a else a
  else begin
    let la = Array.length a in
    let r = Array.make (la + m) 0 in
    Array.blit a 0 r m la;
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la < karatsuba_threshold || lb < karatsuba_threshold then
    mul_school a b
  else begin
    (* Karatsuba: a = a1*B^m + a0, b = b1*B^m + b0,
       ab = z2*B^2m + z1*B^m + z0 with z1 = (a0+a1)(b0+b1) - z2 - z0. *)
    let m = (if la > lb then la else lb) / 2 in
    let a0, a1 = split_at a m in
    let b0, b1 = split_at b m in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add (shift_limbs z2 (2 * m)) (shift_limbs z1 m)) z0
  end

let num_bits (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0
  end

let testbit (a : t) i =
  if i < 0 then invalid_arg "Nat.testbit: negative index";
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) s =
  if s < 0 then invalid_arg "Nat.shift_left: negative shift";
  if s = 0 || is_zero a then a
  else begin
    let limbs = s / base_bits and bits = s mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- t land base_mask;
        carry := t lsr base_bits
      done;
      r.(la + limbs) <- !carry
    end;
    normalize r
  end

let shift_right (a : t) s =
  if s < 0 then invalid_arg "Nat.shift_right: negative shift";
  if s = 0 || is_zero a then a
  else begin
    let limbs = s / base_bits and bits = s mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a limbs r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi =
            if i + limbs + 1 < la then
              (a.(i + limbs + 1) lsl (base_bits - bits)) land base_mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let divmod_limb (a : t) (d : int) : t * int =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_limb: divisor out of range";
  let la = Array.length a in
  if la = 0 then (zero, 0)
  else begin
    let q = Array.make la 0 in
    let rem = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!rem lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (normalize q, !rem)
  end

(* Knuth TAOCP vol.2 Algorithm D.  [u] and [v] normalized, [v] has at least
   two limbs, [u >= v]. *)
let divmod_knuth (u : t) (v : t) : t * t =
  let n = Array.length v in
  let m = Array.length u - n in
  (* D1: normalize so the divisor's top limb has its high bit set. *)
  let rec width x acc = if x = 0 then acc else width (x lsr 1) (acc + 1) in
  let s = base_bits - width v.(n - 1) 0 in
  let vn =
    if s = 0 then Array.copy v
    else begin
      let r = Array.make n 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = (v.(i) lsl s) lor !carry in
        r.(i) <- t land base_mask;
        carry := t lsr base_bits
      done;
      assert (!carry = 0);
      r
    end
  in
  let un = Array.make (m + n + 1) 0 in
  if s = 0 then Array.blit u 0 un 0 (m + n)
  else begin
    let carry = ref 0 in
    for i = 0 to (m + n) - 1 do
      let t = (u.(i) lsl s) lor !carry in
      un.(i) <- t land base_mask;
      carry := t lsr base_bits
    done;
    un.(m + n) <- !carry
  end;
  let q = Array.make (m + 1) 0 in
  let vtop = vn.(n - 1) and vsnd = vn.(n - 2) in
  for j = m downto 0 do
    (* D3: estimate the quotient limb. *)
    let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (top / vtop) in
    let rhat = ref (top mod vtop) in
    let adjusting = ref true in
    while
      !adjusting
      && (!qhat >= base
          || !qhat * vsnd > (!rhat lsl base_bits) lor un.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + vtop;
      if !rhat >= base then adjusting := false
    done;
    (* D4: multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr base_bits;
      let d = un.(j + i) - (p land base_mask) - !borrow in
      if d < 0 then begin
        un.(j + i) <- d + base;
        borrow := 1
      end
      else begin
        un.(j + i) <- d;
        borrow := 0
      end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* D6: the estimate was one too large; add the divisor back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let t = un.(j + i) + vn.(i) + !c in
        un.(j + i) <- t land base_mask;
        c := t lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land base_mask
    end
    else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  (* D8: denormalize the remainder. *)
  let r = Array.make n 0 in
  if s = 0 then Array.blit un 0 r 0 n
  else begin
    for i = 0 to n - 1 do
      let lo = un.(i) lsr s in
      let hi = if i + 1 <= n then (un.(i + 1) lsl (base_bits - s)) land base_mask else 0 in
      r.(i) <- lo lor hi
    done
  end;
  (normalize q, normalize r)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let of_bytes_be (s : string) : t =
  let len = String.length s in
  if len = 0 then zero
  else begin
    let nbits = len * 8 in
    let nlimbs = ((nbits + base_bits - 1) / base_bits) + 1 in
    let r = Array.make nlimbs 0 in
    (* Byte k from the right contributes at bit offset 8k. *)
    for k = 0 to len - 1 do
      let byte = Char.code s.[len - 1 - k] in
      if byte <> 0 then begin
        let bit = 8 * k in
        let limb = bit / base_bits and off = bit mod base_bits in
        let t = r.(limb) lor ((byte lsl off) land base_mask) in
        r.(limb) <- t;
        if off > base_bits - 8 then
          r.(limb + 1) <- r.(limb + 1) lor (byte lsr (base_bits - off))
      end
    done;
    normalize r
  end

let to_bytes_be (a : t) : string =
  if is_zero a then ""
  else begin
    let nbytes = (num_bits a + 7) / 8 in
    let buf = Bytes.create nbytes in
    for k = 0 to nbytes - 1 do
      (* Byte k from the right = bits [8k, 8k+8). *)
      let bit = 8 * k in
      let limb = bit / base_bits and off = bit mod base_bits in
      let lo = a.(limb) lsr off in
      let hi =
        if off > base_bits - 8 && limb + 1 < Array.length a then
          a.(limb + 1) lsl (base_bits - off)
        else 0
      in
      Bytes.set buf (nbytes - 1 - k) (Char.chr ((lo lor hi) land 0xFF))
    done;
    Bytes.to_string buf
  end

let pp fmt (a : t) =
  if is_zero a then Format.pp_print_string fmt "0x0"
  else begin
    Format.pp_print_string fmt "0x";
    String.iter (fun c -> Format.fprintf fmt "%02x" (Char.code c)) (to_bytes_be a)
  end
