(** Arbitrary-precision signed integers (pure OCaml, no GMP/zarith).

    Values are immutable.  The representation is sign-and-magnitude over
    {!Nat} limb vectors.  All operations are total unless documented
    otherwise.  This module is the public arithmetic surface used by the
    Paillier cryptosystem and the secure protocols; performance-sensitive
    modular exponentiation lives in {!Modular} / {!Montgomery}. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t
val to_int_opt : t -> int option

val to_int_exn : t -> int
(** @raise Failure when the value does not fit a native [int]. *)

val of_string : string -> t
(** Decimal by default; accepts an optional leading [-] and the [0x]/[0X]
    prefix for hexadecimal.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val to_string_hex : t -> string
(** Lower-case hex with [0x] prefix (["-0x..."] for negatives). *)

val of_bytes_be : string -> t
(** Unsigned big-endian bytes; result is non-negative. *)

val to_bytes_be : t -> string
(** Magnitude as minimal big-endian bytes (sign is dropped). *)

(** {1 Inspection} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_negative : t -> bool
val is_even : t -> bool
val is_odd : t -> bool

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
(** Bit [i] of the magnitude. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val div : t -> t -> t
(** Truncated division (rounds toward zero), as for native [int].
    @raise Division_by_zero *)

val rem : t -> t -> t
(** Remainder matching {!div}: [a = add (mul (div a b) b) (rem a b)];
    the result has the sign of [a].
    @raise Division_by_zero *)

val divmod : t -> t -> t * t
(** [(div a b, rem a b)] in one pass. *)

val ediv_rem : t -> t -> t * t
(** Euclidean division: [(q, r)] with [a = q*b + r] and [0 <= r < |b|].
    @raise Division_by_zero *)

val erem : t -> t -> t
(** Euclidean remainder, always in [\[0, |b|)]. Used for modular
    arithmetic where canonical non-negative residues are required.
    @raise Division_by_zero *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0] (plain integer power, not modular).
    @raise Invalid_argument if [e < 0]. *)

val isqrt : t -> t
(** Integer square root: the largest [r] with [r² <= t].
    @raise Invalid_argument for negative input. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (sign preserved). *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ~- ) : t -> t
end

val pp : Format.formatter -> t -> unit

(** {1 Internal access}

    Exposed for the sibling modules of this library ({!Montgomery},
    {!Modular}); external users should not rely on it. *)

val magnitude : t -> Nat.t
val of_nat : Nat.t -> t
val make : sign:int -> Nat.t -> t
