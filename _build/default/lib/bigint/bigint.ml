(* Sign-and-magnitude integers over Nat limb vectors.
   Invariant: [sign = 0] iff the magnitude is zero; otherwise sign is ±1. *)

type t = { sign : int; mag : Nat.t }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let two = { sign = 1; mag = Nat.of_int 2 }
let minus_one = { sign = -1; mag = Nat.one }

let make ~sign mag =
  if Nat.is_zero mag then zero
  else if sign > 0 then { sign = 1; mag }
  else if sign < 0 then { sign = -1; mag }
  else invalid_arg "Bigint.make: zero sign with non-zero magnitude"

let of_nat mag = if Nat.is_zero mag then zero else { sign = 1; mag }
let magnitude t = t.mag

let of_int v =
  if v = 0 then zero
  else if v > 0 then { sign = 1; mag = Nat.of_int v }
  else if v = Stdlib.min_int then
    (* -min_int overflows; build it as -(max_int) - 1. *)
    { sign = -1; mag = Nat.add_int (Nat.of_int Stdlib.max_int) 1 }
  else { sign = -1; mag = Nat.of_int (-v) }

(* min_int's magnitude is 2^62, one past what Nat.to_int_opt can return. *)
let min_int_magnitude = Nat.add_int (Nat.of_int Stdlib.max_int) 1

let to_int_opt t =
  match Nat.to_int_opt t.mag with
  | Some m when t.sign >= 0 -> Some m
  | Some m -> Some (-m)
  | None ->
    if t.sign < 0 && Nat.equal t.mag min_int_magnitude then Some Stdlib.min_int
    else None

let to_int_exn t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: out of native int range"

let sign t = t.sign
let is_zero t = t.sign = 0
let is_negative t = t.sign < 0
let is_even t = t.sign = 0 || not (Nat.testbit t.mag 0)
let is_odd t = not (is_even t)
let num_bits t = Nat.num_bits t.mag
let testbit t i = Nat.testbit t.mag i

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t = t.sign * Hashtbl.hash t.mag

let neg t = if t.sign = 0 then zero else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

(* Signed addition on magnitudes: combine same-sign by Nat.add, opposite
   signs by subtracting the smaller magnitude from the larger. *)
let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = Nat.add a.mag b.mag }
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = Nat.sub a.mag b.mag }
    else { sign = b.sign; mag = Nat.sub b.mag a.mag }
  end

let sub a b = add a (neg b)
let succ t = add t one
let pred t = sub t one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = Nat.mul a.mag b.mag }

let mul_int a v = mul a (of_int v)
let add_int a v = add a (of_int v)

(* Truncated division: quotient rounds toward zero, remainder takes the
   sign of the dividend (same convention as native [/] and [mod]). *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q, r = Nat.divmod a.mag b.mag in
    let quot =
      if Nat.is_zero q then zero else { sign = a.sign * b.sign; mag = q }
    in
    let remd = if Nat.is_zero r then zero else { sign = a.sign; mag = r } in
    (quot, remd)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Euclidean division: remainder always in [0, |b|). *)
let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let erem a b = snd (ediv_rem a b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let shift_left t s =
  if t.sign = 0 then zero else { t with mag = Nat.shift_left t.mag s }

let shift_right t s =
  if t.sign = 0 then zero
  else begin
    let mag = Nat.shift_right t.mag s in
    if Nat.is_zero mag then zero else { t with mag }
  end

let of_bytes_be s = of_nat (Nat.of_bytes_be s)
let to_bytes_be t = Nat.to_bytes_be t.mag

(* Decimal I/O goes through chunks of 10^9 (the largest power of ten that
   fits a 31-bit limb), so conversion is O(limbs^2 / 9) rather than one
   division per digit. *)
let decimal_chunk = 1_000_000_000
let decimal_chunk_digits = 9

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Nat.is_zero mag then acc
      else begin
        let q, r = Nat.divmod_limb mag decimal_chunk in
        chunks q (r :: acc)
      end
    in
    let parts = chunks t.mag [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match parts with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let to_string_hex t =
  let hex = Buffer.create 32 in
  if t.sign < 0 then Buffer.add_char hex '-';
  Buffer.add_string hex "0x";
  if t.sign = 0 then Buffer.add_char hex '0'
  else
    String.iteri
      (fun i c ->
        if i = 0 then Buffer.add_string hex (Printf.sprintf "%x" (Char.code c))
        else Buffer.add_string hex (Printf.sprintf "%02x" (Char.code c)))
      (Nat.to_bytes_be t.mag);
  Buffer.contents hex

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: sign only";
  let hex = len - start > 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X') in
  let mag =
    if hex then begin
      let acc = ref Nat.zero in
      for i = start + 2 to len - 1 do
        let c = s.[i] in
        if c <> '_' then begin
          let d =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
            | _ -> invalid_arg "Bigint.of_string: bad hex digit"
          in
          acc := Nat.add_int (Nat.shift_left !acc 4) d
        end
      done;
      !acc
    end
    else begin
      let acc = ref Nat.zero in
      let chunk = ref 0 and chunk_len = ref 0 in
      let flush () =
        if !chunk_len > 0 then begin
          let scale =
            let rec p n acc = if n = 0 then acc else p (n - 1) (acc * 10) in
            p !chunk_len 1
          in
          acc := Nat.add_int (Nat.mul_limb !acc scale) !chunk;
          chunk := 0;
          chunk_len := 0
        end
      in
      for i = start to len - 1 do
        let c = s.[i] in
        if c <> '_' then begin
          if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
          chunk := (!chunk * 10) + (Char.code c - Char.code '0');
          incr chunk_len;
          if !chunk_len = decimal_chunk_digits then flush ()
        end
      done;
      flush ();
      !acc
    end
  in
  if Nat.is_zero mag then zero else { sign = (if negative then -1 else 1); mag }

(* Integer square root by Newton iteration on the bit-length-based
   initial guess; converges in O(log bits) steps. *)
let isqrt t =
  if is_negative t then invalid_arg "Bigint.isqrt: negative argument";
  if is_zero t then zero
  else begin
    let initial = shift_left one ((num_bits t + 1) / 2) in
    let rec refine x =
      let x' = shift_right (add x (div t x)) 1 in
      if compare x' x < 0 then refine x' else x
    in
    refine initial
  end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( ~- ) = neg
end

let pp fmt t = Format.pp_print_string fmt (to_string t)
