(* SplitMix64 — a tiny, fast, *non-cryptographic* PRNG.

   Used only where unpredictability is not a security requirement:
   Miller-Rabin witness selection and test-suite data generation.  All
   protocol randomness (offsets, Paillier nonces) comes from the ChaCha20
   CSPRNG in ppst_rng instead. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound), bound > 0, by rejection on 62 bits. *)
let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = r mod bound in
    if r - v > (1 lsl 61) * 2 - bound then draw () else v
  in
  draw ()

let bits t nbits =
  if nbits <= 0 then invalid_arg "Splitmix.bits: need positive bit count";
  let nbytes = (nbits + 7) / 8 in
  let buf = Bytes.create nbytes in
  for i = 0 to nbytes - 1 do
    Bytes.set buf i (Char.chr (int t 256))
  done;
  (* Mask excess high bits so the result has at most [nbits] bits. *)
  let excess = (nbytes * 8) - nbits in
  if excess > 0 then begin
    let mask = 0xFF lsr excess in
    Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) land mask))
  end;
  Bigint.of_bytes_be (Bytes.to_string buf)
