(** Unsigned arbitrary-precision natural numbers on base-2^31 limb vectors.

    This is the low-level engine underneath {!Bigint}.  A value of type
    {!t} is an [int array] of limbs in little-endian order, each limb in
    [\[0, 2^31)].  All values are kept {e normalized}: no most-significant
    zero limbs, and zero is the empty array.  Functions in this module
    assume (and preserve) normalization; callers constructing arrays by
    hand must call {!normalize}.

    The limb base 2^31 is chosen so that [limb * limb + limb + limb] never
    exceeds OCaml's 63-bit native [int] range, which lets multiplication
    and Montgomery reduction run without boxed arithmetic. *)

type t = int array

val base_bits : int
(** Number of bits per limb (31). *)

val base : int
(** [2 lsl (base_bits - 1)], i.e. 2^31. *)

val base_mask : int
(** [base - 1]. *)

val zero : t
val one : t

val is_zero : t -> bool
val is_one : t -> bool

val normalize : t -> t
(** Strip most-significant zero limbs (returns the argument when already
    normalized). *)

val of_int : int -> t
(** [of_int v] converts a non-negative native integer.
    @raise Invalid_argument if [v < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt v] is [Some n] when [v] fits a native [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val add_int : t -> int -> t
(** [add_int a v] adds a small non-negative native integer. *)

val sub : t -> t -> t
(** [sub a b] requires [a >= b].
    @raise Invalid_argument otherwise. *)

val mul : t -> t -> t
(** Product, using schoolbook multiplication below {!karatsuba_threshold}
    limbs and Karatsuba recursion above it. *)

val mul_limb : t -> int -> t
(** [mul_limb a d] multiplies by a single limb [0 <= d < base]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b], computed
    with Knuth's Algorithm D.
    @raise Division_by_zero if [b] is zero. *)

val divmod_limb : t -> int -> t * int
(** [divmod_limb a d] for a single limb divisor [0 < d < base]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val testbit : t -> int -> bool

val of_bytes_be : string -> t
(** Big-endian unsigned bytes to natural number.  Empty string is zero. *)

val to_bytes_be : t -> string
(** Minimal big-endian representation; [""] for zero. *)

val karatsuba_threshold : int

val pp : Format.formatter -> t -> unit
(** Hex dump, for debugging. *)
