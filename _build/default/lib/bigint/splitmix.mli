(** SplitMix64 — fast {e non-cryptographic} PRNG for Miller–Rabin
    witnesses and test data.  Never use for protocol randomness; the
    ChaCha20 CSPRNG in [ppst_rng] serves that purpose. *)

type t

val create : int -> t
(** Deterministic from the given seed. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. *)

val bits : t -> int -> Bigint.t
(** Uniform non-negative integer with at most the given bit count. *)
