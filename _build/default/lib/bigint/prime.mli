(** Probabilistic primality testing (Miller–Rabin) and prime generation. *)

val small_primes : int array
(** All primes up to 1000, used for trial division. *)

val default_rounds : int
(** Miller–Rabin rounds used when [?rounds] is omitted (40, for a
    compositeness error below 4^-40). *)

val is_probable_prime : ?rounds:int -> Bigint.t -> bool
(** Trial division by {!small_primes} followed by [rounds] Miller–Rabin
    rounds with pseudo-random witnesses. *)

val next_prime : Bigint.t -> Bigint.t
(** Smallest probable prime strictly greater than the argument. *)

val random_prime : random_bits:(int -> Bigint.t) -> bits:int -> Bigint.t
(** Random probable prime of exactly [bits] bits.  The two top bits and
    the bottom bit are forced to 1 so that a product of two such primes
    has exactly [2*bits] bits.  [random_bits n] must return a uniform
    non-negative integer of at most [n] bits (supply the CSPRNG from
    [ppst_rng] for cryptographic use). *)

val random_safe_prime : random_bits:(int -> Bigint.t) -> bits:int -> Bigint.t
(** Random safe prime [p = 2q + 1] with [q] prime.  Expensive; intended
    for tests and small parameters. *)
