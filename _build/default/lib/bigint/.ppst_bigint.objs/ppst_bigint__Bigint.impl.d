lib/bigint/bigint.ml: Buffer Char Format Hashtbl List Nat Printf Stdlib String
