lib/bigint/modular.ml: Bigint Montgomery
