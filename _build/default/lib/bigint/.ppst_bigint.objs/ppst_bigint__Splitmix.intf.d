lib/bigint/splitmix.mli: Bigint
