lib/bigint/prime.ml: Array Bigint Modular Splitmix
