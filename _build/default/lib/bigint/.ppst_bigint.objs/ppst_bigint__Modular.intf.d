lib/bigint/modular.mli: Bigint Montgomery
