lib/bigint/montgomery.ml: Array Nat
