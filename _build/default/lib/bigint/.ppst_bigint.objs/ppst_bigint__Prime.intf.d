lib/bigint/prime.mli: Bigint
