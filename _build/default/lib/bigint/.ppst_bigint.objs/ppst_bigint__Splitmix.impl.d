lib/bigint/splitmix.ml: Bigint Bytes Char Int64
