lib/bigint/montgomery.mli: Nat
