lib/bigint/nat.ml: Array Bytes Char Format Stdlib String
