(* Generate a Paillier key pair and write the private key to a file.
   The server binary loads it with --key; the public part travels in the
   protocol's Welcome message, so no separate public file is needed. *)

open Cmdliner

let generate bits output seed =
  let rng =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string s
    | None -> Ppst_rng.Secure_rng.system ()
  in
  let pk, sk = Ppst_paillier.Paillier.keygen ~bits rng in
  let oc = open_out output in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Ppst_paillier.Paillier.private_key_to_string sk));
  Printf.printf "wrote %d-bit Paillier key to %s\n" bits output;
  Printf.printf "modulus n = %s\n" (Ppst_bigint.Bigint.to_string pk.Ppst_paillier.Paillier.n)

let bits =
  let doc = "Modulus size in bits (the paper's experiments use 64)." in
  Arg.(value & opt int 64 & info [ "b"; "bits" ] ~docv:"BITS" ~doc)

let output =
  let doc = "Output file for the private key." in
  Arg.(value & opt string "paillier.key" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let seed =
  let doc = "Deterministic seed (testing only; omit for /dev/urandom)." in
  Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"SEED" ~doc)

let cmd =
  let doc = "generate a Paillier key pair for the secure time-series protocols" in
  Cmd.v (Cmd.info "ppst_keygen" ~doc) Term.(const generate $ bits $ output $ seed)

let () = exit (Cmd.eval cmd)
