(* Generate synthetic workload CSVs (ECG-like, signatures, trajectories,
   random vectors) for use with ppst_server / ppst_client. *)

open Cmdliner

let run kind seed length dim max_value output =
  let module G = Ppst_timeseries.Generate in
  let series =
    match kind with
    | `Ecg -> G.ecg_int ~seed ~length ~max_value
    | `Signature -> G.signature_int ~seed ~length ~max_value
    | `Trajectory -> G.trajectory_int ~seed ~length ~max_value
    | `Vectors -> G.random_vectors ~seed ~length ~dim ~max_value
  in
  Ppst_timeseries.Csv.save output series;
  Printf.printf "wrote %s series (length %d, dim %d, values in [1,%d]) to %s\n"
    (match kind with
     | `Ecg -> "ECG-like"
     | `Signature -> "signature"
     | `Trajectory -> "trajectory"
     | `Vectors -> "random-vector")
    (Ppst_timeseries.Series.length series)
    (Ppst_timeseries.Series.dimension series)
    max_value output

let kind =
  let enum_conv =
    Arg.enum
      [ ("ecg", `Ecg); ("signature", `Signature); ("trajectory", `Trajectory);
        ("vectors", `Vectors) ]
  in
  Arg.(value & opt enum_conv `Ecg & info [ "t"; "type" ] ~docv:"KIND" ~doc:"Workload kind: ecg, signature, trajectory or vectors.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
let length = Arg.(value & opt int 100 & info [ "n"; "length" ] ~docv:"N" ~doc:"Series length.")
let dim = Arg.(value & opt int 1 & info [ "d"; "dim" ] ~docv:"D" ~doc:"Element dimension (vectors kind only).")
let max_value = Arg.(value & opt int 100 & info [ "max-value" ] ~docv:"V" ~doc:"Quantization ceiling.")
let output = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.csv" ~doc:"Output CSV path.")

let cmd =
  let doc = "generate synthetic time-series CSVs for the secure protocols" in
  Cmd.v (Cmd.info "ppst_datagen" ~doc)
    Term.(const run $ kind $ seed $ length $ dim $ max_value $ output)

let () = exit (Cmd.eval cmd)
