(* Benchmark harness regenerating every figure of the paper's evaluation
   (Section 7) plus its two in-prose comparisons, against this OCaml
   implementation.

   Usage:
     dune exec bench/main.exe                 -- everything, paper scale
     dune exec bench/main.exe -- --quick      -- reduced sweeps (CI)
     dune exec bench/main.exe -- fig5 fig9    -- selected experiments

   Experiments (ids match DESIGN.md):
     fig5   DTW time & data transferred vs sequence size (10..100)
     fig6   DTW client vs server time vs sequence size
     fig7   DTW vs DFD total time vs sequence size
     fig8   DFD time by phase vs sequence size
     fig9   DTW phase 1 vs phase 2 time vs dimensionality (10..100)
     fig10  client/server time & communication vs dimensionality
     fig11  phase 2 time & communication vs random-set size k (10..50)
     atallah  the Section 7 ">= 3 orders of magnitude vs [2]" comparison
     ablation implementation design-choice ablations (CRT, offline pool, keys)
     extensions secure ERP / banded DTW / Euclidean / subsequence matching
     network  trace-replay latency projections (sequential vs wavefront vs banded)
     entropy  the Section 5.4 entropy-preservation table
     micro    Bechamel micro-benchmarks (one per table/figure kernel)
     parallel Domain worker-pool speedup sweep (writes BENCH_parallel.json)
     throughput concurrent TCP session rate, capacity 1 vs 4 (writes
              BENCH_concurrency.json)
     telemetry tracing overhead + JSONL trace fidelity (writes
              BENCH_telemetry.json)
     resilience CRC-32 + resume-checkpoint overhead and chaos recovery
              (writes BENCH_resilience.json)
     failover supervised multi-process workers: crash blackout, restart
              accounting, cross-worker spool resume (writes
              BENCH_failover.json)
     catalog  secure 1-vs-N catalog search: lower-bound pruning vs the
              naive exhaustive scan (writes BENCH_catalog.json)
     degraded partial catalog results under poisoned/slow candidates and
              whole-query budget adherence (writes BENCH_degraded.json)
     observability metrics-endpoint scrape overhead, windowed rollups and
              the cost-attribution ledger (writes BENCH_observability.json)
     smoke    sub-second correctness + determinism sweep (scripts/ci.sh)

   --log-level {quiet,info,debug}, --log-json and --trace-out FILE wire
   the Ppst_telemetry sinks exactly as on ppst_server/ppst_client.

   --jobs N sizes the Domain worker pool every secure run uses (default 1
   = sequential); the [parallel] and [smoke] experiments sweep pool sizes
   themselves and ignore it.

   Absolute times differ from the paper's 2014 Java testbed; the shapes
   (quadratic in n, linear in d and k, DFD ~ 2x DTW, phase 2 dominant,
   server > client at d = 1) are the reproduction targets.  Every secure
   run is cross-checked against the plaintext distance. *)

open Ppst.Import
module Generate = Ppst_timeseries.Generate
module Atallah = Ppst_baseline.Atallah
module Garbled = Ppst_baseline.Garbled

let max_value = 100
let jobs = ref 1

(* When --out DIR is given, every experiment's lines are also written to
   DIR/<experiment>.txt so plots and EXPERIMENTS.md can be regenerated
   from files rather than scraped from the console. *)
let tee_channel : out_channel option ref = ref None

let line fmt =
  Printf.ksprintf
    (fun s ->
      print_string s;
      print_newline ();
      flush stdout;
      match !tee_channel with
      | Some oc ->
        output_string oc s;
        output_char oc '\n'
      | None -> ())
    fmt

let header title =
  line "";
  line "== %s" title;
  line "%s" (String.make (String.length title + 3) '-')

let check_against_plaintext kind x y (r : Ppst.Protocol.result) =
  let expected =
    match kind with `Dtw -> Distance.dtw_sq x y | `Dfd -> Distance.dfd_sq x y
  in
  let got = Ppst.Protocol.distance_int r in
  if got <> expected then
    failwith
      (Printf.sprintf "secure %s = %d but plaintext = %d: correctness bug!"
         (match kind with `Dtw -> "DTW" | `Dfd -> "DFD")
         got expected)

let run_secure kind ?(params = Ppst.Params.default) ~seed x y =
  let jobs = !jobs in
  let runner =
    match kind with
    | `Dtw -> fun () -> Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~params ~seed ~max_value ~jobs ~x ~y ()
    | `Dfd -> fun () -> Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dfd) ~params ~seed ~max_value ~jobs ~x ~y ()
  in
  let r = runner () in
  check_against_plaintext kind x y r;
  r

let kib stats = float_of_int (Stats.total_bytes stats) /. 1024.0

(* ---- shared sweeps (fig 5-8 reuse one length sweep) --------------------- *)

type length_point = {
  n : int;
  dtw : Ppst.Protocol.result;
  dfd : Ppst.Protocol.result;
}

let length_sweep ~sizes =
  List.map
    (fun n ->
      let x = Generate.ecg_int ~seed:(1000 + n) ~length:n ~max_value in
      let y = Generate.ecg_int ~seed:(2000 + n) ~length:n ~max_value in
      let dtw = run_secure `Dtw ~seed:(Printf.sprintf "fig5-%d" n) x y in
      let dfd = run_secure `Dfd ~seed:(Printf.sprintf "fig7-%d" n) x y in
      { n; dtw; dfd })
    sizes

let p1 c = Ppst.Cost.client_seconds c Ppst.Cost.Phase1 +. Ppst.Cost.server_seconds c Ppst.Cost.Phase1
let p2 c = Ppst.Cost.client_seconds c Ppst.Cost.Phase2 +. Ppst.Cost.server_seconds c Ppst.Cost.Phase2
let p3 c = Ppst.Cost.client_seconds c Ppst.Cost.Phase3 +. Ppst.Cost.server_seconds c Ppst.Cost.Phase3

let fig5 points =
  header "Figure 5: secure DTW vs sequence size (ECG-like, d=1, k=10)";
  line "%6s %12s %12s %12s %12s %14s %10s" "n" "phase1 (s)" "phase2 (s)"
    "offline (s)" "total (s)" "transfer(KiB)" "values";
  List.iter
    (fun { n; dtw; _ } ->
      let c = dtw.Ppst.Protocol.cost in
      line "%6d %12.4f %12.4f %12.4f %12.4f %14.1f %10d" n (p1 c) (p2 c)
        (Ppst.Cost.client_offline_seconds c)
        (Ppst.Cost.total_seconds c)
        (kib dtw.Ppst.Protocol.stats)
        (Stats.total_values dtw.Ppst.Protocol.stats))
    points;
  line "(expected shape: quadratic in n; phase 2 >> phase 1 at d = 1)"

let fig6 points =
  header "Figure 6: secure DTW per-party computation time vs sequence size";
  line "%6s %16s %16s %16s" "n" "client online(s)" "server (s)" "client offl.(s)";
  List.iter
    (fun { n; dtw; _ } ->
      let c = dtw.Ppst.Protocol.cost in
      line "%6d %16.4f %16.4f %16.4f" n
        (Ppst.Cost.client_total_seconds c)
        (Ppst.Cost.server_total_seconds c)
        (Ppst.Cost.client_offline_seconds c))
    points;
  line "(expected shape: both quadratic; server above client at d = 1, since";
  line " the server performs the k+2 decryptions per cell online while the";
  line " client's encryption randomness is precomputed offline)"

let fig7 points =
  header "Figure 7: secure DTW vs secure DFD total time vs sequence size";
  line "%6s %12s %12s %8s" "n" "DTW (s)" "DFD (s)" "ratio";
  List.iter
    (fun { n; dtw; dfd } ->
      let t = Ppst.Cost.total_seconds dtw.Ppst.Protocol.cost in
      let f = Ppst.Cost.total_seconds dfd.Ppst.Protocol.cost in
      line "%6d %12.4f %12.4f %8.2f" n t f (f /. t))
    points;
  line "(expected shape: DFD ~ 2x DTW — it adds a phase-3 round per cell)"

let fig8 points =
  header "Figure 8: secure DFD time by phase vs sequence size";
  line "%6s %12s %12s %12s" "n" "phase1 (s)" "phase2 (s)" "phase3 (s)";
  List.iter
    (fun { n; dfd; _ } ->
      let c = dfd.Ppst.Protocol.cost in
      line "%6d %12.4f %12.4f %12.4f" n (p1 c) (p2 c) (p3 c))
    points;
  line "(expected shape: phase 3 ~ phase 2, both >> phase 1)"

(* ---- fig 9 / 10: dimensionality sweep ----------------------------------- *)

type dim_point = { d : int; result : Ppst.Protocol.result }

let dim_sweep ~length ~dims =
  List.map
    (fun d ->
      let x = Generate.random_vectors ~seed:(3000 + d) ~length ~dim:d ~max_value in
      let y = Generate.random_vectors ~seed:(4000 + d) ~length ~dim:d ~max_value in
      let result = run_secure `Dtw ~seed:(Printf.sprintf "fig9-%d" d) x y in
      { d; result })
    dims

let fig9 points =
  header "Figure 9: secure DTW phase times vs element dimensionality (n=m fixed)";
  line "%6s %12s %12s %12s" "d" "phase1 (s)" "phase2 (s)" "total (s)";
  List.iter
    (fun { d; result } ->
      let c = result.Ppst.Protocol.cost in
      line "%6d %12.4f %12.4f %12.4f" d (p1 c) (p2 c) (Ppst.Cost.total_seconds c))
    points;
  line "(expected shape: phase 1 linear in d; phase 2 flat; phase 2 dominates";
  line " at low d, phase 1 catches up as d grows)"

let fig10 points =
  header "Figure 10: per-party time & communication vs dimensionality";
  line "%6s %16s %14s %14s" "d" "client online(s)" "server (s)" "transfer(KiB)";
  List.iter
    (fun { d; result } ->
      let c = result.Ppst.Protocol.cost in
      line "%6d %16.4f %14.4f %14.1f" d
        (Ppst.Cost.client_total_seconds c)
        (Ppst.Cost.server_total_seconds c)
        (kib result.Ppst.Protocol.stats))
    points;
  line "(expected shape: client time grows faster with d (phase-1 scalar";
  line " multiplications are client work); communication nearly flat, since";
  line " phase-2 traffic is independent of d)"

(* ---- fig 11: random set size sweep --------------------------------------- *)

let fig11 ~length ~ks =
  header "Figure 11: phase 2 cost vs random-set size k (ECG-like, n=m, d=1)";
  line "%6s %12s %14s %10s" "k" "phase2 (s)" "transfer(KiB)" "values";
  List.iter
    (fun k ->
      let params = Ppst.Params.make ~k () in
      let x = Generate.ecg_int ~seed:(5000 + k) ~length ~max_value in
      let y = Generate.ecg_int ~seed:(6000 + k) ~length ~max_value in
      let r = run_secure `Dtw ~params ~seed:(Printf.sprintf "fig11-%d" k) x y in
      let c = r.Ppst.Protocol.cost in
      line "%6d %12.4f %14.1f %10d" k (p2 c) (kib r.Ppst.Protocol.stats)
        (Stats.total_values r.Ppst.Protocol.stats))
    ks;
  line "(expected shape: time and communication linear in k)"

(* ---- the Atallah/garbled comparison --------------------------------------- *)

let atallah ~measured_n ~measured_seconds =
  header "Section 7 comparison: this protocol vs Atallah et al. [2] (estimates)";
  let m = measured_n and n = measured_n and d = 1 in
  let fast = Atallah.estimated_seconds ~m ~n ~d () in
  let slow =
    Atallah.estimated_seconds ~per_call:Atallah.fairplay_slow_seconds ~m ~n ~d ()
  in
  let garbled = Garbled.estimated_seconds ~m ~n ~d ~bits:32 () in
  line "sequence size %d x %d, d = 1:" m n;
  line "  %-46s %14.1f s" "this implementation (measured, secure DTW)" measured_seconds;
  line "  %-46s %14.1f s"
    (Printf.sprintf "Atallah et al. (%d Yao calls x 1.25 s)" (Atallah.yao_invocations ~m ~n ~d))
    fast;
  line "  %-46s %14.1f s" "Atallah et al. (slow network, 4 s per call)" slow;
  line "  %-46s %14.1f s" "garbled-circuit DTW (optimistic model)" garbled;
  line "  speedup vs Atallah (fast): %.0fx"
    (Atallah.speedup_vs ~measured_seconds ~m ~n ~d);
  line "(paper: 'at least 37000 seconds' vs 'tens of seconds' => >= 3 orders";
  line " of magnitude; the claim must survive here too)"

(* ---- entropy table ---------------------------------------------------------- *)

let entropy_table () =
  header "Section 5.4: information-entropy preservation of the masked sums";
  line "%12s %14s %16s %14s %12s" "Gamma" "uniform H" "masked-sum H" "min-entropy"
    "preserved";
  List.iter
    (fun bits ->
      let g = 1 lsl bits in
      line "%12s %14.3f %16.3f %14.3f %11.1f%%"
        (Printf.sprintf "2^%d" bits)
        (Ppst.Entropy.uniform_entropy g)
        (Ppst.Entropy.triangular_sum_entropy g)
        (Ppst.Entropy.min_entropy g)
        (100.0 *. Ppst.Entropy.preserved_fraction g))
    [ 4; 8; 12; 16; 20 ];
  line "(paper Eq. 9: the masked sum preserves more than half of the uniform";
  line " entropy; exactly half by min-entropy)"

(* ---- protocol extensions beyond the paper's figures -------------------------- *)

let extensions ~length =
  header "Extensions: the Section 8 claim made concrete (same masking machinery)";
  let x = Generate.ecg_int ~seed:8001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:8002 ~length ~max_value in
  let report label seconds values (ok : bool) =
    line "  %-46s %8.3f s %10d values  %s" label seconds values
      (if ok then "[= plaintext]" else "[MISMATCH!]")
  in
  (* full DTW as the reference point *)
  let t0 = Unix.gettimeofday () in
  let full = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:"ext-dtw" ~max_value ~x ~y () in
  report "secure DTW (reference)"
    (Unix.gettimeofday () -. t0)
    (Stats.total_values full.Ppst.Protocol.stats)
    (Ppst.Protocol.distance_int full = Distance.dtw_sq x y);
  (* banded DTW at several widths *)
  List.iter
    (fun band ->
      let t0 = Unix.gettimeofday () in
      let r = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dtw) ~seed:"ext-band" ~max_value ~x ~y () in
      report
        (Printf.sprintf "banded DTW (Sakoe-Chiba r=%d)" band)
        (Unix.gettimeofday () -. t0)
        (Stats.total_values r.Ppst.Protocol.stats)
        (Some (Ppst.Protocol.distance_int r) = Distance.dtw_sq_banded ~band x y))
    [ length / 10; length / 4 ];
  (* wavefront batching: same content, two orders of magnitude fewer rounds *)
  let t0 = Unix.gettimeofday () in
  let wf = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~seed:"ext-wf" ~max_value ~x ~y () in
  line "  %-46s %8.3f s %10d values  [rounds: %d vs %d]"
    "wavefront DTW (anti-diagonal batching)"
    (Unix.gettimeofday () -. t0)
    (Stats.total_values wf.Ppst.Protocol.stats)
    (Stats.rounds wf.Ppst.Protocol.stats)
    (Stats.rounds full.Ppst.Protocol.stats);
  assert (Ppst.Protocol.distance_int wf = Distance.dtw_sq x y);
  (* ERP with the origin gap *)
  let gap = [| 0 |] in
  let t0 = Unix.gettimeofday () in
  let erp = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~gap `Erp) ~seed:"ext-erp" ~max_value ~x ~y () in
  report "secure ERP (gap = origin)"
    (Unix.gettimeofday () -. t0)
    (Stats.total_values erp.Ppst.Protocol.stats)
    (Ppst.Protocol.distance_int erp = Distance.erp_sq ~gap x y);
  (* lockstep Euclidean *)
  let t0 = Unix.gettimeofday () in
  let euc = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Euclidean) ~seed:"ext-euc" ~max_value ~x ~y () in
  report "secure Euclidean (lockstep)"
    (Unix.gettimeofday () -. t0)
    (Stats.total_values euc.Ppst.Protocol.stats)
    (Ppst.Protocol.distance_int euc = Distance.euclidean_sq x y);
  (* subsequence matching *)
  let pattern = Series.sub y ~pos:(length / 3) ~len:(length / 4) in
  let t0 = Unix.gettimeofday () in
  let sub = Ppst.Protocol.subsequence ~seed:"ext-sub" ~max_value ~x ~y:pattern () in
  let ok =
    Array.to_list sub.Ppst.Protocol.window_distances
    |> List.mapi (fun o d ->
           Ppst.Import.Bigint.to_int_exn d
           = Distance.euclidean_sq
               (Series.sub x ~pos:o ~len:(Series.length pattern))
               pattern)
    |> List.for_all Fun.id
  in
  report
    (Printf.sprintf "subsequence matching (%d windows)"
       (Array.length sub.Ppst.Protocol.window_distances))
    (Unix.gettimeofday () -. t0)
    (Stats.total_values sub.Ppst.Protocol.windows_stats)
    ok;
  line "(banded DTW cuts both time and traffic to O((m+n)·band); ERP costs";
  line " slightly more than DTW (m·n min-rounds instead of (m-1)(n-1));";
  line " Euclidean/subsequence need no masking rounds at all)"

(* ---- network projections (wavefront's raison d'etre) -------------------------- *)

let network ~length =
  header "Network projections: measured traces replayed on modeled links";
  let x = Generate.ecg_int ~seed:9001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:9002 ~length ~max_value in
  let band = length / 10 in
  let full_expected = Distance.dtw_sq x y in
  let banded_expected =
    match Distance.dtw_sq_banded ~band x y with Some v -> v | None -> assert false
  in
  let variants =
    [
      ("sequential DTW", full_expected,
       fun trace ->
         Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~trace ~seed:"net-seq" ~max_value ~x ~y ());
      ("wavefront DTW", full_expected,
       fun trace ->
         Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~trace ~seed:"net-wf" ~max_value ~x ~y ());
      (Printf.sprintf "banded DTW (r=%d)" band, banded_expected,
       fun trace ->
         Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~band `Dtw) ~trace ~seed:"net-band" ~max_value ~x
           ~y ());
    ]
  in
  let links =
    [
      ("datacenter (0.05ms, 10Gb)", Ppst.Import.Netsim.datacenter);
      ("LAN (0.2ms, 1Gb)", Ppst.Import.Netsim.lan);
      ("WAN (30ms, 100Mb)", Ppst.Import.Netsim.wan);
    ]
  in
  line "n = m = %d, d = 1, k = 10; predicted total seconds per link:" length;
  line "%-22s %8s %8s %14s %12s %12s" "variant" "rounds" "KiB" "datacenter" "LAN"
    "WAN";
  List.iter
    (fun (name, expected, run_variant) ->
      let trace = Ppst.Import.Trace.create () in
      let r = run_variant trace in
      if Ppst.Protocol.distance_int r <> expected then
        failwith (Printf.sprintf "%s disagrees with its plaintext reference" name);
      let compute = Ppst.Cost.total_seconds r.Ppst.Protocol.cost in
      let predictions =
        List.map
          (fun (_, link) ->
            (Ppst.Import.Netsim.estimate ~link ~compute_seconds:compute trace)
              .Ppst.Import.Netsim.total_seconds)
          links
      in
      match predictions with
      | [ dc; lan; wan ] ->
        line "%-22s %8d %8.0f %14.3f %12.3f %12.3f" name
          (Ppst.Import.Trace.rounds trace)
          (float_of_int (Ppst.Import.Trace.total_bytes trace) /. 1024.0)
          dc lan wan
      | _ -> assert false)
    variants;
  line "(the wavefront variant's advantage is pure round-count: identical bytes,";
  line " two orders of magnitude fewer RTTs — decisive on the WAN row)"

(* ---- ablations of the implementation's design choices ----------------------- *)

let ablation ~length =
  header "Ablations: implementation design choices (secure DTW, fixed size)";
  let x = Generate.ecg_int ~seed:7001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:7002 ~length ~max_value in
  let run ?decryption ?offline ?(params = Ppst.Params.default) label =
    let t0 = Unix.gettimeofday () in
    let r =
      Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~params ?decryption ?offline ~seed:("abl-" ^ label)
        ~max_value ~x ~y ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    check_against_plaintext `Dtw x y r;
    let c = r.Ppst.Protocol.cost in
    line "  %-44s wall %7.3f s | client on %6.3f off %6.3f | server %6.3f" label
      wall
      (Ppst.Cost.client_total_seconds c)
      (Ppst.Cost.client_offline_seconds c)
      (Ppst.Cost.server_total_seconds c)
  in
  line "n = m = %d, d = 1, k = 10:" length;
  run "baseline (standard decryption, offline pool)";
  run ~decryption:`Crt "CRT decryption (server ~halves its exponent sizes)";
  run ~offline:false "no offline pool (client encrypts online)";
  run
    ~params:(Ppst.Params.make ~key_bits:128 ())
    "128-bit Paillier modulus";
  run
    ~params:(Ppst.Params.make ~key_bits:256 ())
    "256-bit Paillier modulus";
  run ~params:(Ppst.Params.make ~gamma_slack:1 ()) "gamma slack 1 (tighter offsets)";
  line "(shape notes: CRT shifts server time down; disabling the pool moves";
  line " the offline column into client-online; cost grows ~quadratically with";
  line " the modulus size, trading speed for security margin)"

(* ---- parallel execution layer ------------------------------------------------ *)

(* Runs must be seeded identically so the cross-pool-size comparison also
   doubles as a determinism check: same distance, same bytes on the wire. *)
let same_transcript (a : Ppst.Protocol.result) (b : Ppst.Protocol.result) =
  Ppst.Protocol.distance_int a = Ppst.Protocol.distance_int b
  && Stats.total_bytes a.Ppst.Protocol.stats = Stats.total_bytes b.Ppst.Protocol.stats
  && Stats.total_values a.Ppst.Protocol.stats = Stats.total_values b.Ppst.Protocol.stats
  && Stats.rounds a.Ppst.Protocol.stats = Stats.rounds b.Ppst.Protocol.stats

let parallel_bench ~quick =
  header "Parallel: Domain worker-pool speedup (wavefront DTW)";
  let length = if quick then 8 else 16 in
  let key_bits = if quick then 256 else 1024 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:11001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:11002 ~length ~max_value in
  let timed j =
    let t0 = Unix.gettimeofday () in
    let r =
      Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~params ~seed:"parallel-bench" ~max_value
        ~decryption:`Crt ~jobs:j ~x ~y ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    check_against_plaintext `Dtw x y r;
    (j, wall, r)
  in
  let cores = Domain.recommended_domain_count () in
  line "m = n = %d, d = 1, k = %d, %d-bit modulus; host reports %d core(s):"
    length params.Ppst.Params.k key_bits cores;
  let runs = List.map timed [ 1; 4 ] in
  let _, w1, r1 = List.hd runs in
  List.iter
    (fun (j, w, r) ->
      if not (same_transcript r1 r) then
        failwith "parallel: seeded transcript diverges across pool sizes";
      line "  jobs=%d  wall %8.3f s  speedup %5.2fx  (distance %d, %d bytes)" j w
        (w1 /. w)
        (Ppst.Protocol.distance_int r)
        (Stats.total_bytes r.Ppst.Protocol.stats))
    runs;
  line "  (seeded transcripts bit-identical across pool sizes: verified)";
  let _, w4, _ = List.nth runs 1 in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    {|{
  "task": "secure DTW (wavefront, anti-diagonal batching)",
  "m": %d,
  "n": %d,
  "d": 1,
  "k": %d,
  "key_bits": %d,
  "cores": %d,
  "runs": [
    { "jobs": 1, "wall_seconds": %.3f },
    { "jobs": 4, "wall_seconds": %.3f }
  ],
  "speedup_jobs4_vs_jobs1": %.3f,
  "transcripts_identical": true,
  "cost": %s,
  "stats": %s,
  "note": "Measured on a host reporting %d core(s). The Domain pool cannot beat 1.0x without real cores to fan out to; rerun `dune exec bench/main.exe -- parallel` on a multicore host for the parallel speedup. Seeded transcripts are bit-identical at every pool size. cost/stats are from the jobs=1 run (identical across pool sizes by the transcript check)."
}
|}
    length length params.Ppst.Params.k key_bits cores w1 w4 (w1 /. w4)
    (Ppst.Cost.to_json r1.Ppst.Protocol.cost)
    (Stats.to_json r1.Ppst.Protocol.stats)
    cores;
  close_out oc;
  line "  wrote BENCH_parallel.json"

(* ---- concurrent-session throughput (Server_loop) ------------------------ *)

(* One secure DTW session against a running Server_loop, with a bounded
   retry loop on Busy (the capacity reply carries the backoff hint). *)
let throughput_session ~params ~x ~port ~seed =
  (* time-based retry budget: at capacity 1 a worker may legitimately
     wait through many whole sessions before winning a slot *)
  let give_up = Unix.gettimeofday () +. 600.0 in
  let rec attempt () =
    let channel = Ppst_transport.Channel.connect ~host:"127.0.0.1" ~port () in
    match
      let rng = Ppst_rng.Secure_rng.of_seed_string seed in
      let client =
        Ppst.Client.connect ~params ~rng ~series:x ~max_value ~distance:`Dtw
          channel
      in
      let d = Ppst.Secure_dtw_wavefront.run_dtw client in
      Ppst.Client.finish client;
      d
    with
    | d -> d
    | exception Ppst_transport.Channel.Busy { retry_after_s } ->
      Ppst_transport.Channel.close channel;
      if Unix.gettimeofday () > give_up then
        failwith "throughput: server stayed busy forever";
      Unix.sleepf (Float.min retry_after_s 0.05);
      attempt ()
  in
  attempt ()

let throughput_run ~params ~x ~y ~concurrency ~total ~client_workers =
  let rng = Ppst_rng.Secure_rng.of_seed_string "throughput/keygen" in
  let _pk, sk =
    Ppst_paillier.Paillier.keygen ~bits:params.Ppst.Params.key_bits rng
  in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:
          (Ppst_rng.Secure_rng.of_seed_string
             (Printf.sprintf "throughput/session-%d" id))
        ~series:y ~max_value ()
    in
    Ppst.Server.handle server
  in
  let config =
    {
      Ppst_transport.Server_loop.default_config with
      max_sessions = concurrency;
      retry_after_s = 0.05;
    }
  in
  let loop =
    Ppst_transport.Server_loop.create ~config ~port:0
      ~handler:(fun ~id ~peer -> Ppst_transport.Server_loop.respond_only (handler ~id ~peer)) ()
  in
  let runner = Thread.create (fun () -> Ppst_transport.Server_loop.run loop) () in
  let port = Ppst_transport.Server_loop.port loop in
  let next = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  (* Clients live in their own Domains: their crypto runs truly parallel
     to the server's session threads (which share the main domain). *)
  let workers =
    List.init client_workers (fun w ->
        Domain.spawn (fun () ->
            let rec go acc =
              let i = Atomic.fetch_and_add next 1 in
              if i >= total then acc
              else
                let d =
                  throughput_session ~params ~x ~port
                    ~seed:(Printf.sprintf "throughput/client-%d-%d" w i)
                in
                go (d :: acc)
            in
            go []))
  in
  let distances = List.concat_map Domain.join workers in
  let wall = Unix.gettimeofday () -. t0 in
  Ppst_transport.Server_loop.shutdown loop;
  Thread.join runner;
  let expected = Distance.dtw_sq x y in
  List.iter
    (fun d ->
      if Ppst_bigint.Bigint.to_int_exn d <> expected then
        failwith "throughput: concurrent session diverged from plaintext")
    distances;
  if List.length distances <> total then
    failwith "throughput: lost sessions";
  ( wall,
    Ppst_transport.Server_loop.rejected loop,
    Ppst_transport.Server_loop.stats loop )

let throughput ~quick =
  header "Throughput: concurrent TCP sessions (Server_loop)";
  let length = if quick then 6 else 10 in
  let key_bits = if quick then 256 else 384 in
  let total = if quick then 8 else 12 in
  let client_workers = 4 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:12001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:12002 ~length ~max_value in
  line
    "m = n = %d, d = 1, %d-bit modulus; %d sessions, %d client worker \
     domains; every distance checked against plaintext:"
    length key_bits total client_workers;
  let measure concurrency =
    let wall, rejected, stats =
      throughput_run ~params ~x ~y ~concurrency ~total ~client_workers
    in
    let rate = float_of_int total /. wall in
    line
      "  concurrency=%d  wall %7.3f s  %6.2f sessions/s  (%d Busy rejection(s))"
      concurrency wall rate rejected;
    (concurrency, wall, rate, rejected, stats)
  in
  let c1, w1, r1, b1, s1 = measure 1 in
  let c4, w4, r4, b4, s4 = measure 4 in
  line "  (all %d distances bit-identical to the sequential plaintext check)"
    (2 * total);
  let oc = open_out "BENCH_concurrency.json" in
  Printf.fprintf oc
    {|{
  "task": "concurrent TCP sessions, secure DTW (wavefront), Server_loop",
  "m": %d,
  "n": %d,
  "d": 1,
  "key_bits": %d,
  "sessions_per_run": %d,
  "client_workers": %d,
  "runs": [
    { "concurrency": %d, "wall_seconds": %.3f, "sessions_per_second": %.3f, "busy_rejections": %d, "stats": %s },
    { "concurrency": %d, "wall_seconds": %.3f, "sessions_per_second": %.3f, "busy_rejections": %d, "stats": %s }
  ],
  "speedup_concurrency4_vs_1": %.3f,
  "distances_bit_identical_to_sequential": true,
  "note": "Single-process measurement: client sessions run in their own Domains, but all server sessions share the main domain's runtime lock (systhreads), so server-side compute serializes; the speedup reflects overlap of client compute and I/O, not a second server core. At concurrency 1 the extra client workers exercise the Busy/retry path. Each run's stats are the server-side transport totals over all its sessions."
}
|}
    length length key_bits total client_workers c1 w1 r1 b1 (Stats.to_json s1)
    c4 w4 r4 b4 (Stats.to_json s4)
    (w1 /. w4);
  close_out oc;
  line "  wrote BENCH_concurrency.json"

(* ---- resilience: CRC + checkpoint overhead, chaos recovery ------------------- *)

(* One secure DTW session over TCP.  [secure_frames = false] declines the
   capability bits in Hello, giving the exact PR 3 wire format; [true]
   negotiates CRC-32 trailers + resume checkpointing — the overhead being
   measured.  [?faults] installs a client-side chaos injector. *)
let resilience_session ~params ~x ~port ~seed ~secure_frames ?faults () =
  let channel =
    Ppst_transport.Channel.connect ~crc:secure_frames ~resume:secure_frames
      ?faults ~host:"127.0.0.1" ~port ()
  in
  let rng = Ppst_rng.Secure_rng.of_seed_string seed in
  let client =
    Ppst.Client.connect ~params ~rng ~series:x ~max_value ~distance:`Dtw channel
  in
  let d = Ppst.Secure_dtw_wavefront.run_dtw client in
  Ppst.Client.finish client;
  d

let resilience ~quick =
  header "Resilience: frame-integrity + checkpoint overhead, chaos recovery";
  let length = 16 in
  let key_bits = if quick then 256 else 1024 in
  let runs = if quick then 2 else 2 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:13001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:13002 ~length ~max_value in
  let rng = Ppst_rng.Secure_rng.of_seed_string "resilience/keygen" in
  let _pk, sk = Ppst_paillier.Paillier.keygen ~bits:key_bits rng in
  let handler ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:
          (Ppst_rng.Secure_rng.of_seed_string
             (Printf.sprintf "resilience/session-%d" id))
        ~series:y ~max_value ()
    in
    Ppst.Server.handle server
  in
  let loop =
    Ppst_transport.Server_loop.create ~port:0
      ~handler:(fun ~id ~peer -> Ppst_transport.Server_loop.respond_only (handler ~id ~peer)) ()
  in
  let runner = Thread.create (fun () -> Ppst_transport.Server_loop.run loop) () in
  let port = Ppst_transport.Server_loop.port loop in
  let expected = Distance.dtw_sq x y in
  Fun.protect
    ~finally:(fun () ->
      Ppst_transport.Server_loop.shutdown loop;
      Thread.join runner)
    (fun () ->
      line
        "m = n = %d, d = 1, %d-bit modulus, wavefront DTW over TCP; best of %d:"
        length key_bits runs;
      let timed ~secure_frames ~seed =
        let best = ref infinity in
        for r = 1 to runs do
          let t0 = Unix.gettimeofday () in
          let d =
            resilience_session ~params ~x ~port
              ~seed:(Printf.sprintf "%s-%d" seed r)
              ~secure_frames ()
          in
          if Ppst_bigint.Bigint.to_int_exn d <> expected then
            failwith "resilience: secure distance diverged from plaintext";
          best := Float.min !best (Unix.gettimeofday () -. t0)
        done;
        !best
      in
      let w_plain = timed ~secure_frames:false ~seed:"resilience/plain" in
      let w_secure = timed ~secure_frames:true ~seed:"resilience/secure" in
      let overhead = (w_secure /. w_plain) -. 1.0 in
      line "  plain frames (PR 3 wire format)   %7.3f s" w_plain;
      line "  CRC-32 + resume checkpointing     %7.3f s" w_secure;
      line "  overhead %+.2f%%  (target < 2%%; negative values are noise)"
        (overhead *. 100.0);
      (* chaos recovery: kill the connection every 64 frames and let the
         retry + resume machinery repair it — the distance must not move *)
      let resumed_before =
        Ppst_telemetry.Metrics.counter_value
          (Ppst_telemetry.Metrics.counter "transport.resume.ok")
      in
      let faults =
        Ppst_transport.Faults.create (Ppst_transport.Faults.Drop_every 64)
      in
      let t0 = Unix.gettimeofday () in
      let d_chaos =
        resilience_session ~params ~x ~port ~seed:"resilience/chaos"
          ~secure_frames:true ~faults ()
      in
      let w_chaos = Unix.gettimeofday () -. t0 in
      if Ppst_bigint.Bigint.to_int_exn d_chaos <> expected then
        failwith "resilience: chaos-run distance diverged from plaintext";
      let injected = Ppst_transport.Faults.injected faults in
      let resumes =
        Ppst_telemetry.Metrics.counter_value
          (Ppst_telemetry.Metrics.counter "transport.resume.ok")
        - resumed_before
      in
      line
        "  chaos drop-every-64: %d drop(s) injected, %d resume(s), %7.3f s, \
         distance bit-identical"
        injected resumes w_chaos;
      let oc = open_out "BENCH_resilience.json" in
      Printf.fprintf oc
        {|{
  "task": "CRC-32 frame integrity + resume checkpointing overhead, secure DTW (wavefront) over TCP",
  "m": %d,
  "n": %d,
  "d": 1,
  "key_bits": %d,
  "best_of": %d,
  "wall_seconds_plain_frames": %.3f,
  "wall_seconds_crc_resume": %.3f,
  "overhead_fraction": %.4f,
  "overhead_target_fraction": 0.02,
  "chaos": {
    "profile": "drop-every-64",
    "faults_injected": %d,
    "resumes": %d,
    "wall_seconds": %.3f,
    "distance_bit_identical": true
  },
  "note": "Plain frames decline the Hello capability bits, reproducing the pre-fault-tolerance wire format byte for byte; the secure run negotiates CRC-32 trailers on every frame plus server-side checkpointing of the last acknowledged round. Overhead is wall(secure)/wall(plain)-1, best-of-%d each, and is dominated by the 4-byte trailer + table-driven CRC over ~%d-byte ciphertext frames. The chaos run hard-drops the connection every 64 frames; each drop is repaired by reconnect + Resume replay and the revealed distance stays bit-identical to the plaintext reference."
}
|}
        length length key_bits runs w_plain w_secure overhead injected resumes
        w_chaos runs (key_bits / 4)
      ;
      close_out oc;
      line "  wrote BENCH_resilience.json")

(* ---- failover: supervised multi-process crash recovery ----------------------- *)

let rec failover_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun e -> failover_rm_rf (Filename.concat path e))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Fork a whole supervised deployment ([Supervisor.run] parent + worker
   children) and hand the bench process back the listening port.  The
   supervisor's exit code carries its lifetime restart count.  A
   non-restarted worker carries the crash injector ([crash_at = 0]
   disables it); replacements run fault-free — the ppst_server wiring. *)
let failover_supervised ~sk ~y ~workers ~spool ~crash_at ~seed () =
  let listener, port = Ppst_transport.Supervisor.bind ~port:0 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let stop = Atomic.make false in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Atomic.set stop true));
    let worker_main ~slot ~restarted ~control =
      let faults =
        if restarted || crash_at = 0 then None
        else
          Some
            (Ppst_transport.Faults.create
               (Ppst_transport.Faults.Crash_at crash_at))
      in
      let config =
        {
          Ppst_transport.Server_loop.default_config with
          spool_dir = Some spool;
          faults;
          drain_timeout_s = 5.0;
        }
      in
      let handler ~id ~peer:_ =
        let server =
          Ppst.Server.create_with_key ~sk
            ~rng:
              (Ppst_rng.Secure_rng.of_seed_string
                 (Printf.sprintf "%s/session-%d" seed id))
            ~series:y ~max_value ()
        in
        {
          Ppst_transport.Server_loop.respond = Ppst.Server.handle server;
          snapshot = Some (fun () -> Ppst.Server.export_state server);
          restore = Some (fun blob -> Ppst.Server.restore_state server blob);
        }
      in
      let loop =
        Ppst_transport.Server_loop.create_worker ~config
          ~rng:
            (Ppst_rng.Secure_rng.of_seed_string
               (Printf.sprintf "%s/worker-%d" seed slot))
          ~boot_id:"bnch" ~handler ()
      in
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ ->
             Ppst_transport.Server_loop.shutdown loop));
      Ppst_transport.Server_loop.run_worker loop ~control
    in
    let restart_policy =
      { Ppst_transport.Retry.max_attempts = 8; base_delay_s = 0.002;
        max_delay_s = 0.02; multiplier = 2.0 }
    in
    let summary =
      Ppst_transport.Supervisor.run ~restart_policy ~drain_timeout_s:5.0 ~stop
        ~listener ~workers ~worker_main ()
    in
    Unix._exit (Stdlib.min 100 summary.Ppst_transport.Supervisor.restarts)
  | pid ->
    Unix.close listener;
    (pid, port)

let failover_stop_supervised pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED restarts -> restarts
  | _, _ -> failwith "failover: supervisor did not exit cleanly"

(* One secure DTW session against a supervised deployment.  A crash that
   lands before the resume token exists is unrecoverable by design; the
   outer loop restarts the session with the same seed (same transcript).
   Returns the distance and the client-side frame count, which sizes the
   crash schedule. *)
let failover_session ~params ~x ~port ~seed () =
  let policy =
    { Ppst_transport.Retry.max_attempts = 12; base_delay_s = 0.002;
      max_delay_s = 0.05; multiplier = 2.0 }
  in
  let rec attempt tries =
    match
      let channel =
        Ppst_transport.Channel.connect ~retry:policy ~host:"127.0.0.1" ~port ()
      in
      match
        let rng = Ppst_rng.Secure_rng.of_seed_string (seed ^ "/client") in
        let client =
          Ppst.Client.connect ~params ~rng ~series:x ~max_value ~distance:`Dtw
            channel
        in
        let d = Ppst.Secure_dtw_wavefront.run_dtw client in
        Ppst.Client.finish client;
        (d, Stats.messages (Ppst_transport.Channel.stats channel))
      with
      | r -> r
      | exception e ->
        (try Ppst_transport.Channel.close channel with _ -> ());
        raise e
    with
    | r -> r
    | exception
        (( Ppst_transport.Channel.Connection_lost _
         | Ppst_transport.Channel.Frame_corrupt _
         | Ppst_transport.Channel.Busy _
         | Ppst_transport.Retry.Exhausted _
         | Unix.Unix_error
             ((Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE), _, _) ) as e)
      ->
      if tries = 0 then raise e
      else begin
        Unix.sleepf 0.02;
        attempt (tries - 1)
      end
  in
  attempt 30

let failover_bench ~quick =
  header "Failover: supervised multi-process crash recovery";
  let length = 16 in
  let key_bits = if quick then 256 else 512 in
  let workers = 2 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:17001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:17002 ~length ~max_value in
  let rng = Ppst_rng.Secure_rng.of_seed_string "failover/keygen" in
  let _pk, sk = Ppst_paillier.Paillier.keygen ~bits:key_bits rng in
  let expected = Distance.dtw_sq x y in
  let spool_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppst-bench-failover-%d" (Unix.getpid ()))
  in
  let run ~tag ~crash_at =
    let spool = Filename.concat spool_root tag in
    failover_rm_rf spool;
    let pid, port =
      failover_supervised ~sk ~y ~workers ~spool ~crash_at
        ~seed:("failover/" ^ tag) ()
    in
    Fun.protect
      ~finally:(fun () -> failover_rm_rf spool)
      (fun () ->
        let resumes_before =
          Ppst_telemetry.Metrics.counter_value
            (Ppst_telemetry.Metrics.counter "transport.resume.ok")
        in
        let t0 = Unix.gettimeofday () in
        let d, frames =
          failover_session ~params ~x ~port ~seed:("failover/" ^ tag) ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        let restarts = failover_stop_supervised pid in
        if Ppst_bigint.Bigint.to_int_exn d <> expected then
          failwith "failover: distance diverged from plaintext";
        let resumes =
          Ppst_telemetry.Metrics.counter_value
            (Ppst_telemetry.Metrics.counter "transport.resume.ok")
          - resumes_before
        in
        (wall, frames, restarts, resumes))
  in
  line
    "m = n = %d, d = 1, %d-bit modulus, wavefront DTW; %d supervised workers, \
     distance checked against plaintext:"
    length key_bits workers;
  let w_base, frames, r_base, _ = run ~tag:"baseline" ~crash_at:0 in
  line "  crash-free            %7.3f s  (%d frames, %d restart(s))" w_base
    frames r_base;
  if r_base <> 0 then failwith "failover: baseline run restarted a worker";
  let crash_at = frames / 2 in
  let w_fail, _, restarts, resumes = run ~tag:"crash" ~crash_at in
  let blackout = w_fail -. w_base in
  line
    "  worker SIGKILL @ %3d  %7.3f s  (%d restart(s), %d resume(s), +%.3f s \
     recovery)"
    crash_at w_fail restarts resumes blackout;
  if restarts < 1 then failwith "failover: crash run restarted no worker";
  if resumes < 1 then failwith "failover: crash run never resumed";
  let oc = open_out "BENCH_failover.json" in
  Printf.fprintf oc
    {|{
  "task": "supervised multi-process serving: worker crash mid-session, cross-worker resume via spool",
  "m": %d,
  "n": %d,
  "d": 1,
  "key_bits": %d,
  "workers": %d,
  "frames_per_session": %d,
  "crash_at_frame": %d,
  "wall_seconds_crash_free": %.3f,
  "wall_seconds_with_crash": %.3f,
  "failover_latency_seconds": %.3f,
  "worker_restarts": %d,
  "resumes": %d,
  "distance_bit_identical": true,
  "note": "Both runs serve one wavefront secure-DTW session through a forked parent dispatcher sharding connections across the worker pool by SCM_RIGHTS fd passing. The crash run arms a one-shot fault that SIGKILLs the serving worker at the session's midpoint frame; the client reconnects, the dispatcher routes the Resume by token hash, and whichever worker receives it rebuilds the session from the shared crash-safe spool (the dead worker's memory is gone). failover_latency_seconds is wall(crash) - wall(crash-free): reconnect backoff + supervisor respawn + spool rehydration. worker_restarts is the supervisor's lifetime restart count at exit; the kill itself accounts for one, and a resumed session landing on the second still-armed worker can add another (replacement workers always run fault-free, so the cascade is bounded)."
}
|}
    length length key_bits workers frames crash_at w_base w_fail blackout
    restarts resumes;
  close_out oc;
  line "  wrote BENCH_failover.json"

(* ---- overload: admission overhead + shed-vs-queue latency -------------------- *)

(* Admission control prices every frame and every extreme-selection
   request in plain integer comparisons; this experiment puts a number
   on that clean-path cost (target < 1%) and contrasts how a burst of
   clients drains with load shedding on vs plain capacity queueing. *)
let overload ~quick =
  header "Overload control: admission overhead, shed vs queue under a burst";
  let length = 12 in
  let key_bits = if quick then 256 else 512 in
  let runs = if quick then 4 else 6 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:14001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:14002 ~length ~max_value in
  let rng = Ppst_rng.Secure_rng.of_seed_string "overload/keygen" in
  let _pk, sk = Ppst_paillier.Paillier.keygen ~bits:key_bits rng in
  let expected = Distance.dtw_sq x y in
  let make_handler tag ~id ~peer:_ =
    let server =
      Ppst.Server.create_with_key ~sk
        ~rng:
          (Ppst_rng.Secure_rng.of_seed_string
             (Printf.sprintf "overload/%s-session-%d" tag id))
        ~series:y ~max_value ()
    in
    Ppst.Server.handle server
  in
  (* every limiter armed, none of them saturated by an honest session *)
  let guarded_admission =
    {
      Ppst_transport.Admission.max_cells = Some (8 * length * length);
      max_series_len = Some (8 * length);
      max_dim = Some 16;
      max_session_bytes = Some (256 * 1024 * 1024);
      max_session_frames = Some 1_000_000;
    }
  in
  let with_loop ~tag config f =
    let loop =
      Ppst_transport.Server_loop.create ~config ~port:0
        ~handler:(fun ~id ~peer ->
          Ppst_transport.Server_loop.respond_only (make_handler tag ~id ~peer))
        ()
    in
    let runner =
      Thread.create (fun () -> Ppst_transport.Server_loop.run loop) ()
    in
    Fun.protect
      ~finally:(fun () ->
        Ppst_transport.Server_loop.shutdown loop;
        Thread.join runner)
      (fun () -> f loop (Ppst_transport.Server_loop.port loop))
  in
  let session ~port ~seed =
    (* a Busy answer (capacity or shed) is retried honouring the hint,
       exactly as ppst_client's session loop does *)
    let policy =
      { Ppst_transport.Retry.default_policy with max_attempts = 100 }
    in
    let rng = Ppst_rng.Secure_rng.of_seed_string seed in
    let d =
      Ppst_transport.Retry.with_retry ~policy
        ~rng:(Ppst_rng.Secure_rng.of_seed_string (seed ^ "/backoff"))
        ~classify:(function
          | Ppst_transport.Channel.Busy { retry_after_s } ->
            `Retry_after retry_after_s
          | Ppst_transport.Channel.Connection_lost _ -> `Retry
          | _ -> `Fail)
        (fun () ->
          let channel =
            Ppst_transport.Channel.connect ~host:"127.0.0.1" ~port ()
          in
          try
            let client =
              Ppst.Client.connect ~params ~rng ~series:x ~max_value
                ~distance:`Dtw channel
            in
            let d = Ppst.Secure_dtw_wavefront.run_dtw client in
            Ppst.Client.finish client;
            d
          with e ->
            (try Ppst_transport.Channel.close channel with _ -> ());
            raise e)
    in
    if Ppst_bigint.Bigint.to_int_exn d <> expected then
      failwith "overload: session diverged from plaintext";
    d
  in
  (* -- clean-path overhead: one session, admission off vs fully armed.
     Both servers are alive at once and the timed sessions alternate
     between them (after a warmup each), so machine noise — CPU
     frequency, page cache, allocator state — hits the two sides
     equally instead of masquerading as admission cost. -- *)
  let guarded_config =
    {
      Ppst_transport.Server_loop.default_config with
      admission = guarded_admission;
      ratelimit =
        Some { Ppst_transport.Ratelimit.rate_per_s = 100.0; burst = 100.0 };
      shed_watermark = Some 64;
    }
  in
  let w_open, w_guarded =
    with_loop ~tag:"open" Ppst_transport.Server_loop.default_config
      (fun _ open_port ->
        with_loop ~tag:"guarded" guarded_config (fun _ guarded_port ->
            ignore (session ~port:open_port ~seed:"overload/open-warmup");
            ignore (session ~port:guarded_port ~seed:"overload/guarded-warmup");
            let best_open = ref infinity and best_guarded = ref infinity in
            for r = 1 to runs do
              let t0 = Unix.gettimeofday () in
              ignore
                (session ~port:open_port
                   ~seed:(Printf.sprintf "overload/open-%d" r));
              best_open := Float.min !best_open (Unix.gettimeofday () -. t0);
              let t0 = Unix.gettimeofday () in
              ignore
                (session ~port:guarded_port
                   ~seed:(Printf.sprintf "overload/guarded-%d" r));
              best_guarded :=
                Float.min !best_guarded (Unix.gettimeofday () -. t0)
            done;
            (!best_open, !best_guarded)))
  in
  let overhead = ((w_guarded /. w_open) -. 1.0) *. 100.0 in
  line "m = n = %d, d = 1, %d-bit modulus, wavefront DTW, best-of-%d:" length
    key_bits runs;
  line "  no admission control              %7.3f s" w_open;
  line "  quotas + rate limit + watermark   %7.3f s" w_guarded;
  line "  clean-path overhead %+.2f%%  (target < 1%%; negative values are noise)"
    overhead;
  (* -- burst handling: shed watermark vs plain capacity queueing -- *)
  let burst = 8 in
  let drain config tag =
    with_loop ~tag config (fun loop port ->
        let latencies = Array.make burst 0.0 in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init burst (fun i ->
              Thread.create
                (fun () ->
                  (* stagger arrivals across the drain so later clients
                     land while earlier sessions hold the server
                     mid-crypto — the regime shedding is for.  The step
                     scales with the measured single-session time so the
                     arrival window tracks the drain at any key size. *)
                  Thread.delay (0.5 *. w_open *. float_of_int i);
                  let s0 = Unix.gettimeofday () in
                  ignore
                    (session ~port
                       ~seed:(Printf.sprintf "overload/%s-burst-%d" tag i));
                  latencies.(i) <- Unix.gettimeofday () -. s0)
                ())
        in
        List.iter Thread.join threads;
        let wall = Unix.gettimeofday () -. t0 in
        let mean = Array.fold_left ( +. ) 0.0 latencies /. float_of_int burst in
        let worst = Array.fold_left Float.max 0.0 latencies in
        ( wall,
          mean,
          worst,
          Ppst_transport.Server_loop.rejected loop,
          Ppst_transport.Server_loop.shed_total loop ))
  in
  (* Three admission regimes for the same staggered burst:
     - open: slots for everyone — all sessions thrash concurrently;
     - queue: two static session slots, the rest retry on capacity Busy;
     - shed: slots for everyone, but arrivals are refused while crypto
       is in flight — load-tracking admission with no fixed slot count. *)
  let open_cfg =
    {
      Ppst_transport.Server_loop.default_config with
      max_sessions = burst;
      retry_after_s = 0.05;
    }
  in
  let queue_cfg = { open_cfg with max_sessions = 2 } in
  let shed_cfg = { open_cfg with shed_watermark = Some 1 } in
  let o_wall, o_mean, o_worst, o_rej, _ = drain open_cfg "open-burst" in
  let q_wall, q_mean, q_worst, q_rej, _ = drain queue_cfg "queue" in
  let s_wall, s_mean, s_worst, s_rej, s_shed = drain shed_cfg "shed" in
  line "%d-client staggered burst (every distance checked):" burst;
  line
    "  admit everyone   wall %6.3f s  mean latency %6.3f s  worst %6.3f s  \
     (%d Busy)"
    o_wall o_mean o_worst o_rej;
  line
    "  capacity queue   wall %6.3f s  mean latency %6.3f s  worst %6.3f s  \
     (%d Busy)"
    q_wall q_mean q_worst q_rej;
  line
    "  shed watermark   wall %6.3f s  mean latency %6.3f s  worst %6.3f s  \
     (%d Busy, %d shed)"
    s_wall s_mean s_worst s_rej s_shed;
  let oc = open_out "BENCH_overload.json" in
  Printf.fprintf oc
    {|{
  "task": "admission-control overhead and shed-vs-queue burst handling, wavefront DTW over TCP",
  "m": %d,
  "n": %d,
  "d": 1,
  "key_bits": %d,
  "clean_path": {
    "wall_seconds_open": %.3f,
    "wall_seconds_guarded": %.3f,
    "admission_overhead_percent": %.3f,
    "target_percent": 1.0
  },
  "burst": {
    "clients": %d,
    "admit_everyone": { "session_slots": %d, "wall_seconds": %.3f, "mean_latency_seconds": %.3f, "worst_latency_seconds": %.3f, "busy_rejections": %d },
    "capacity_queue": { "session_slots": 2, "wall_seconds": %.3f, "mean_latency_seconds": %.3f, "worst_latency_seconds": %.3f, "busy_rejections": %d },
    "shed_watermark": { "session_slots": %d, "watermark": 1, "wall_seconds": %.3f, "mean_latency_seconds": %.3f, "worst_latency_seconds": %.3f, "busy_rejections": %d, "shed": %d }
  },
  "distances_bit_identical_to_plaintext": true,
  "note": "The guarded server arms per-session quotas (cells, series length, dimension, bytes, frames), a per-peer token bucket and the shed watermark, all sized so an honest session never touches them; overhead is wall(guarded)/wall(open)-1, best-of-%d each with both servers alive and the timed sessions interleaved, and amounts to integer compares per frame. In the burst runs every client retries on Busy honouring the retry-after hint, so every mode finishes all %d sessions. Admitting everyone lets all sessions thrash concurrently (worst mean latency); a static 2-slot queue bounds concurrency by connection count; the shed watermark bounds it by live in-flight crypto instead, approximating the queue's latency with no fixed slot count."
}
|}
    length length key_bits w_open w_guarded overhead burst burst o_wall o_mean
    o_worst o_rej q_wall q_mean q_worst q_rej burst s_wall s_mean s_worst
    s_rej s_shed runs burst;
  close_out oc;
  line "  wrote BENCH_overload.json"

(* ---- telemetry: overhead + trace fidelity ------------------------------------ *)

(* Re-applies whatever --log-level/--log-json/--trace-out the user gave,
   after telemetry_bench has temporarily rewired the sinks. *)
let telemetry_cli : (unit -> unit) ref =
  ref (fun () -> Ppst_telemetry.Telemetry.configure ())

(* The stored BENCH_telemetry.json baseline measured before the crypto
   hot-path overhaul (naive division-based modular arithmetic, no
   noise pools, no packing) — the reference the overhaul's speedup is
   reported against. *)
let prior_baseline_wall = 167.799

let telemetry_bench ~quick =
  header "Telemetry: tracing overhead and JSONL trace fidelity (wavefront DTW)";
  let module T = Ppst_telemetry.Telemetry in
  let module R = Ppst_telemetry.Trace_reader in
  let length = 16 in
  let key_bits = if quick then 256 else 1024 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:13001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:13002 ~length ~max_value in
  let run_spec ~packing ~offline () =
    let t0 = Unix.gettimeofday () in
    let r =
      Ppst.Protocol.run
        ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront ~packing `Dtw)
        ~params ~seed:"telemetry-bench" ~max_value ~decryption:`Crt ~offline ~x
        ~y ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    check_against_plaintext `Dtw x y r;
    (wall, r)
  in
  (* the headline profile: plaintext packing + offline noise pool *)
  let run = run_spec ~packing:true ~offline:true in
  let best_of count f =
    let rec go count best last =
      if count = 0 then (best, Option.get last)
      else
        let w, r = f () in
        go (count - 1) (Float.min best w) (Some r)
    in
    go count infinity None
  in
  let runs = if quick then 1 else 2 in
  line
    "m = n = %d, d = 1, k = %d, %d-bit modulus, packed + pooled profile, best \
     of %d run(s):"
    length params.Ppst.Params.k key_bits runs;
  T.configure ();
  ignore (run ());
  (* warmup *)
  let w_off, r_off = best_of runs run in
  line "  telemetry off:          wall %8.3f s" w_off;
  if Ppst.Cost.pool_misses r_off.Ppst.Protocol.cost <> 0 then
    failwith "telemetry: packed offline run paid online noise exponentiations";
  let trace_file = Filename.temp_file "ppst_bench_trace" ".jsonl" in
  let run_traced () =
    (* reconfigure per run: each run gets a freshly truncated trace, so
       the surviving file always holds exactly one session *)
    T.configure ~trace_out:trace_file ();
    let res = run () in
    T.configure ();
    (* flushes and detaches the file sink *)
    res
  in
  let w_on, _ = best_of runs run_traced in
  let overhead = (w_on -. w_off) /. w_off in
  line "  telemetry on (JSONL):   wall %8.3f s  overhead %+.2f%%" w_on
    (100.0 *. overhead);
  (* one more traced run dedicated to fidelity: its own wall clock, Cost
     and Stats must agree with what its trace says *)
  let w_fid, r_fid = run_traced () in
  if not (same_transcript r_off r_fid) then
    failwith "telemetry: seeded transcript diverges with tracing on";
  line "  seeded transcripts bit-identical with tracing on vs off: verified";
  let entries = R.read_file trace_file in
  (match List.filter_map R.lint_entry entries with
   | [] -> ()
   | reason :: _ -> failwith ("telemetry: leakage lint failed: " ^ reason));
  let s = R.summarize entries in
  let stats_bytes = Stats.total_bytes r_fid.Ppst.Protocol.stats in
  if s.R.total_round_bytes <> stats_bytes then
    failwith
      (Printf.sprintf "telemetry: trace says %d round bytes, Stats says %d"
         s.R.total_round_bytes stats_bytes);
  if s.R.total_rounds <> Stats.rounds r_fid.Ppst.Protocol.stats then
    failwith "telemetry: trace round count disagrees with Stats";
  let session_s =
    List.fold_left
      (fun acc (row : R.span_row) ->
        if row.R.span_name = "protocol.session" then acc +. row.R.total_s
        else acc)
      0.0 s.R.spans
  in
  let session_gap = Float.abs (session_s -. w_fid) /. w_fid in
  if session_gap > 0.01 then
    failwith
      (Printf.sprintf
         "telemetry: session span %.3f s vs measured wall %.3f s (%.1f%% apart)"
         session_s w_fid (100.0 *. session_gap));
  line
    "  trace fidelity: %d records; round bytes = Stats bytes (%d) exactly;"
    (List.length entries) stats_bytes;
  line "  session span %.3f s vs wall %.3f s (%.2f%% apart); lint clean."
    session_s w_fid (100.0 *. session_gap);
  Sys.remove trace_file;
  (* the unpacked (default) path, pooled and unpooled: the revealed
     distance must match the packed profile's, and disabling the pool
     must not change what goes over the wire *)
  let w_default, r_default = run_spec ~packing:false ~offline:true () in
  line "  default (unpacked) path: wall %8.3f s" w_default;
  if
    Ppst.Protocol.distance_int r_default <> Ppst.Protocol.distance_int r_off
  then failwith "telemetry: packed distance diverges from the default path";
  if Ppst.Cost.pool_misses r_default.Ppst.Protocol.cost <> 0 then
    failwith "telemetry: default offline run paid online noise exponentiations";
  let _, r_unpooled = run_spec ~packing:false ~offline:false () in
  if not (same_transcript r_default r_unpooled) then
    failwith "telemetry: pooled vs unpooled transcripts diverge";
  line
    "  pooled vs unpooled transcript fingerprints identical (byte-level \
     identity is asserted by the test suite and scripts/ci.sh)";
  let speedup_packed = prior_baseline_wall /. w_off in
  let speedup_default = prior_baseline_wall /. w_default in
  line
    "  speedup vs the pre-overhaul baseline (%.1f s at 1024 bits): packed \
     %.1fx, default %.1fx"
    prior_baseline_wall speedup_packed speedup_default;
  let oc = open_out "BENCH_telemetry.json" in
  Printf.fprintf oc
    {|{
  "task": "telemetry overhead, secure DTW (wavefront, packed + pooled), JSONL file sink",
  "m": %d,
  "n": %d,
  "d": 1,
  "k": %d,
  "key_bits": %d,
  "runs_per_config": %d,
  "wall_seconds_telemetry_off": %.3f,
  "wall_seconds_telemetry_on": %.3f,
  "overhead_fraction": %.4f,
  "wall_seconds_default_path": %.3f,
  "prior_baseline_wall_seconds": %.3f,
  "speedup_packed_vs_prior_baseline": %.2f,
  "speedup_default_vs_prior_baseline": %.2f,
  "packed_distance_equals_default_path": true,
  "pooled_unpooled_transcripts_identical": true,
  "pool_misses_offline": 0,
  "trace": { "records": %d, "round_bytes": %d, "rounds": %d, "session_span_seconds": %.3f, "session_wall_seconds": %.3f },
  "transcripts_identical": true,
  "cost": %s,
  "stats": %s,
  "note": "Timed runs use the crypto hot path: fixed-base windowed exponentiation, offline noise pools, Montgomery-form homomorphic chains and plaintext packing. prior_baseline_wall_seconds is the same configuration measured before the overhaul (unpacked; naive modular arithmetic); the packed profile reveals the identical distance but not identical transcript bytes, so its speedup is distance-compared while the default path stays wire-compatible. Tracing records every span and per-round point (debug level) to a JSONL file; the trace's per-round byte totals equal the channel's Stats exactly, and the protocol.session span matches the measured wall clock within 1%%. Overhead is wall(on)/wall(off)-1, best-of-%d each; negative values are measurement noise."
}
|}
    length length params.Ppst.Params.k key_bits runs w_off w_on overhead
    w_default prior_baseline_wall speedup_packed speedup_default
    (List.length entries) stats_bytes
    (Stats.rounds r_fid.Ppst.Protocol.stats)
    session_s w_fid
    (Ppst.Cost.to_json r_fid.Ppst.Protocol.cost)
    (Stats.to_json r_fid.Ppst.Protocol.stats)
    runs;
  close_out oc;
  line "  wrote BENCH_telemetry.json";
  !telemetry_cli ()

let smoke () =
  header "Smoke: sub-second correctness + determinism sweep (CI)";
  let length = 8 in
  let x = Generate.ecg_int ~seed:12001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:12002 ~length ~max_value in
  let run j =
    let r =
      Ppst.Protocol.run ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront `Dtw) ~seed:"smoke" ~max_value ~decryption:`Crt
        ~jobs:j ~x ~y ()
    in
    check_against_plaintext `Dtw x y r;
    r
  in
  let r1 = run 1 and r4 = run 4 in
  if not (same_transcript r1 r4) then
    failwith "smoke: seeded transcript diverges between jobs=1 and jobs=4";
  line "  wavefront DTW %dx%d: distance %d, %d bytes, %d rounds" length length
    (Ppst.Protocol.distance_int r1)
    (Stats.total_bytes r1.Ppst.Protocol.stats)
    (Stats.rounds r1.Ppst.Protocol.stats);
  line "  identical at jobs=1 and jobs=4; matches the plaintext distance.";
  (* hot-path smoke (a): the offline noise pool must be invisible on the
     wire — same seed with the pool on and off, hash the raw frames *)
  let transcript ~offline =
    let rng = Secure_rng.of_seed_string "smoke-hotpath/client" in
    let server_rng = Secure_rng.of_seed_string "smoke-hotpath/server" in
    let server = Ppst.Server.create ~rng:server_rng ~series:y ~max_value () in
    let buf = Buffer.create 4096 in
    let handler req =
      Buffer.add_string buf (Message.encode (Message.Request req));
      let reply = Ppst.Server.handle server req in
      Buffer.add_string buf (Message.encode (Message.Reply reply));
      reply
    in
    let client =
      Ppst.Client.connect ~offline ~rng ~series:x ~max_value ~distance:`Dtw
        (Channel.local handler)
    in
    let d = Ppst.Secure_dtw_wavefront.run_dtw client in
    Ppst.Client.finish client;
    (Bigint.to_int_exn d, Digest.to_hex (Digest.string (Buffer.contents buf)))
  in
  let d_pooled, h_pooled = transcript ~offline:true in
  let _d_unpooled, h_unpooled = transcript ~offline:false in
  if d_pooled <> Ppst.Protocol.distance_int r1 then
    failwith "smoke: instrumented run diverges from the plaintext distance";
  if h_pooled <> h_unpooled then
    failwith "smoke: pooled vs unpooled transcript hashes differ";
  line "  pooled = unpooled transcript hash %s." (String.sub h_pooled 0 12);
  (* hot-path smoke (b): the packed profile reveals the same distance and
     its provisioned offline pool never misses *)
  let packed =
    Ppst.Protocol.run
      ~spec:(Ppst.Protocol.spec ~strategy:`Wavefront ~packing:true `Dtw)
      ~params:(Ppst.Params.make ~key_bits:256 ())
      ~seed:"smoke" ~max_value ~x ~y ()
  in
  check_against_plaintext `Dtw x y packed;
  if Ppst.Protocol.distance_int packed <> Ppst.Protocol.distance_int r1 then
    failwith "smoke: packed distance diverges from the baseline path";
  if Ppst.Cost.pool_misses packed.Ppst.Protocol.cost <> 0 then
    failwith "smoke: packed offline run paid online noise exponentiations";
  line "  packed profile: same distance, zero pool misses offline.";
  (* concurrency smoke: two parallel TCP sessions against one Server_loop
     (seeded key, tiny series); throughput_run cross-checks every revealed
     distance against the plaintext reference *)
  let params = Ppst.Params.make () in
  let cx = Generate.ecg_int ~seed:12003 ~length:6 ~max_value in
  let cy = Generate.ecg_int ~seed:12004 ~length:6 ~max_value in
  let wall, _rejected, _stats =
    throughput_run ~params ~x:cx ~y:cy ~concurrency:2 ~total:2
      ~client_workers:2
  in
  line "  2 concurrent TCP sessions served in %.3f s; distances match the"
    wall;
  line "  plaintext reference.";
  line "  ok."

(* ---- Bechamel micro-benchmarks ---------------------------------------------- *)

let bechamel_suite () =
  header "Bechamel micro-benchmarks (one kernel per table/figure)";
  let open Bechamel in
  let rng = Secure_rng.of_seed_string "bench-micro" in
  let pk, sk = Paillier.keygen ~bits:64 rng in
  let session k =
    Ppst.Params.plan (Ppst.Params.make ~k ()) ~max_value ~dimension:1
      ~client_length:100 ~server_length:100 ~modulus:pk.Paillier.n ~distance:`Dtw
  in
  let s10 = session 10 and s50 = session 50 in
  let enc v = Paillier.encrypt pk rng (Bigint.of_int v) in
  let triple = [| enc 123; enc 456; enc 789 |] in
  let pairc = [| enc 123; enc 456 |] in
  (* a complete phase-2 round: client masks, server decrypts+selects+
     re-encrypts, client unmasks — the unit cell of figures 5, 6 and 11 *)
  let min_round session () =
    let prepared = Ppst.Masking.prepare_min ~pk ~rng ~session triple in
    let plains = Array.map (Paillier.decrypt_crt sk) prepared.Ppst.Masking.candidates in
    let m = Array.fold_left Bigint.min plains.(0) plains in
    Ppst.Masking.unmask_min ~pk prepared (Paillier.encrypt pk rng m)
  in
  let max_round session () =
    let prepared = Ppst.Masking.prepare_max ~pk ~rng ~session pairc in
    let plains = Array.map (Paillier.decrypt_crt sk) prepared.Ppst.Masking.candidates in
    let m = Array.fold_left Bigint.max plains.(0) plains in
    Ppst.Masking.unmask_max ~pk prepared (Paillier.encrypt pk rng m)
  in
  (* a phase-1 cell at d = 50: Enc(δ²) assembly (figures 9-10 kernel) *)
  let d50 = 50 in
  let coords = Array.init d50 (fun i -> enc ((i * 7 mod 97) + 1)) in
  let sum_sq = enc 4242 in
  let xs = Array.init d50 (fun i -> (i * 13 mod 97) + 1) in
  let phase1_cell () =
    let acc = ref (Paillier.add pk (enc 999) sum_sq) in
    for l = 0 to d50 - 1 do
      acc := Paillier.add pk !acc (Paillier.scalar_mul pk coords.(l) (Bigint.of_int (-2 * xs.(l))))
    done;
    !acc
  in
  let ecg_a = Generate.ecg_int ~seed:1 ~length:100 ~max_value in
  let ecg_b = Generate.ecg_int ~seed:2 ~length:100 ~max_value in
  let tests =
    Test.make_grouped ~name:"ppst"
      [
        Test.make ~name:"fig5-dtw-cell(min-round,k=10)" (Staged.stage (min_round s10));
        Test.make ~name:"fig6-server-side(decrypt)"
          (Staged.stage (fun () -> Paillier.decrypt_crt sk triple.(0)));
        Test.make ~name:"fig7-dfd-cell(min+max rounds)"
          (Staged.stage (fun () ->
               ignore (min_round s10 ());
               max_round s10 ()));
        Test.make ~name:"fig8-phase3(max-round,k=10)" (Staged.stage (max_round s10));
        Test.make ~name:"fig9-phase1-cell(d=50)" (Staged.stage phase1_cell);
        Test.make ~name:"fig10-client-side(encrypt)"
          (Staged.stage (fun () -> Paillier.encrypt pk rng (Bigint.of_int 31337)));
        Test.make ~name:"fig11-min-round(k=50)" (Staged.stage (min_round s50));
        Test.make ~name:"atallah-plaintext-dtw(n=100)"
          (Staged.stage (fun () -> Distance.dtw_sq ecg_a ecg_b));
        Test.make ~name:"entropy-table(gamma=2^16)"
          (Staged.stage (fun () -> Ppst.Entropy.triangular_sum_entropy 65536));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some [ e ] -> e | _ -> nan
        in
        let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  line "%-42s %16s %8s" "kernel" "time/run" "r²";
  List.iter
    (fun (name, ns, r2) ->
      let pretty =
        if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      line "%-42s %16s %8.4f" name pretty r2)
    rows

(* ---- secure 1-vs-N catalog search (Query vs naive sequential) ----------- *)

(* The paper's motivating scenario at catalog scale: the client's series
   is a noisy copy of one catalog record, and the question is how much
   of the catalog the secure lower-bound pruning stage (PROTOCOL.md
   §12) saves over the naive exhaustive scan — one exact protocol run
   per record over the same session, same spec, same key — while
   returning the bit-identical top-1. *)
let catalog_bench ~quick =
  let count = if quick then 20 else 100 in
  let length = if quick then 16 else 24 in
  let max_value = 80 in
  let band = 2 in
  (* an experiment-size key: the catalog-vs-naive comparison is
     relative, and both sides pay the identical per-ciphertext cost *)
  let key_bits = 256 in
  let params = Ppst.Params.make ~key_bits () in
  (* ECG-like records at five amplitude scales — a catalog of different
     sources, not uniform noise: smooth series with real amplitude
     diversity are what give the band-window envelopes their
     discriminating power.  (A uniform-random catalog has
     near-degenerate envelopes and the bound prunes little — the honest
     worst case, but not the paper's workload.) *)
  let store =
    let t = Store.create () in
    for i = 0 to count - 1 do
      Store.insert t
        ~id:(Printf.sprintf "rec%03d" i)
        (Generate.ecg_int ~seed:(13001 + i) ~length
           ~max_value:(20 + (i mod 5) * 15))
    done;
    t
  in
  (* query = record 0 plus +-1 deterministic noise, clamped to the
     catalog's value range: close enough that the first exact run sets
     a tight pruning threshold, the realistic "lookup a known patient"
     case. *)
  let x =
    let i = ref 0 in
    Series.map
      (Array.map (fun v ->
           incr i;
           let dv = (!i mod 3) - 1 in
           Stdlib.max 0 (Stdlib.min max_value (v + dv))))
      (Store.records store).(0)
  in
  let spec = Ppst.Protocol.spec ~band `Dtw in
  let bound =
    Stdlib.max 1 (Stdlib.max (Series.max_abs_value x) (Store.max_abs_value store))
  in
  line "secure 1-vs-%d catalog search: m = %d, d = 1, banded DTW (band %d), %d-bit modulus"
    count length band key_bits;
  (* catalog path: pruning + exact runs on the survivors *)
  let t0 = Unix.gettimeofday () in
  let report, qstats =
    Ppst.Query.run_top_k ~spec ~params ~seed:"catalog-bench" ~max_value:bound
      ~k:1 ~x ~store ()
  in
  let catalog_wall = Unix.gettimeofday () -. t0 in
  (* naive path: the same session machinery, every record exactly *)
  let t0 = Unix.gettimeofday () in
  let naive_best, nstats =
    let rng_of sfx = Secure_rng.of_seed_string ("catalog-bench-naive/" ^ sfx) in
    let server =
      Ppst.Server.of_store ~params ~rng:(rng_of "server") ~store
        ~max_value:bound ()
    in
    let channel = Channel.local (Ppst.Server.handle server) in
    let client =
      Ppst.Client.connect ~params ~rng:(rng_of "client") ~series:x
        ~max_value:bound ~distance:`Dtw channel
    in
    let best = ref None in
    Array.iteri
      (fun i _len ->
        Ppst.Client.select_record client i;
        let d = Ppst.Protocol.runner_of_spec spec client in
        match !best with
        | Some (_, bd) when Bigint.compare d bd >= 0 -> ()
        | _ -> best := Some (i, d))
      (Ppst.Client.catalog client);
    Ppst.Client.finish client;
    (!best, Channel.stats channel)
  in
  let naive_wall = Unix.gettimeofday () -. t0 in
  let n_index, n_dist =
    match naive_best with Some (i, d) -> (i, d) | None -> failwith "empty"
  in
  let hit = report.Ppst.Query.hits.(0) in
  if hit.Ppst.Query.index <> n_index
     || Bigint.compare hit.Ppst.Query.distance n_dist <> 0
  then
    failwith
      (Printf.sprintf
         "catalog: pruned top-1 (record %d, %s) != exhaustive top-1 (record %d, %s)"
         hit.Ppst.Query.index
         (Bigint.to_string hit.Ppst.Query.distance)
         n_index (Bigint.to_string n_dist));
  let prune_rate =
    float_of_int report.Ppst.Query.pruned /. float_of_int report.Ppst.Query.total
  in
  line "  catalog query  %8.3f s  (%d pruned / %d, %d exact runs, %d B on the wire)"
    catalog_wall report.Ppst.Query.pruned report.Ppst.Query.total
    report.Ppst.Query.evaluated (Stats.total_bytes qstats);
  line "  naive scan     %8.3f s  (%d exact runs, %d B on the wire)" naive_wall
    count (Stats.total_bytes nstats);
  line "  speedup %.2fx, top-1 bit-identical (record %d, distance %s)"
    (naive_wall /. catalog_wall) n_index (Bigint.to_string n_dist);
  let oc = open_out "BENCH_catalog.json" in
  Printf.fprintf oc
    {|{
  "task": "secure 1-vs-N top-1 catalog search, banded DTW (band %d)",
  "catalog_size": %d,
  "length": %d,
  "d": 1,
  "k": %d,
  "key_bits": %d,
  "catalog": {
    "wall_seconds": %.3f,
    "pruned": %d,
    "evaluated": %d,
    "prune_rate": %.3f,
    "stats": %s
  },
  "naive": {
    "wall_seconds": %.3f,
    "stats": %s
  },
  "speedup_vs_naive": %.3f,
  "top1_identical": true,
  "top1": { "index": %d, "id": "%s", "distance": %s },
  "note": "The query series is a noisy copy of catalog record 0, so the first exact run of the top-1 search establishes a tight threshold and the secure lower bound (PROTOCOL.md section 12) discards most of the catalog. The naive baseline runs the identical exact protocol on every record over one session with the same key size; top-1 index and distance are asserted bit-identical before this file is written."
}
|}
    band count length params.Ppst.Params.k key_bits catalog_wall
    report.Ppst.Query.pruned report.Ppst.Query.evaluated prune_rate
    (Stats.to_json qstats) naive_wall (Stats.to_json nstats)
    (naive_wall /. catalog_wall)
    n_index hit.Ppst.Query.id
    (Bigint.to_string n_dist);
  close_out oc;
  line "  wrote BENCH_catalog.json"

(* ---- degraded mode: partial results and budget adherence --------------------- *)

(* The same 1-vs-N search under three failure shapes: a clean catalog, a
   poisoned candidate (every exact run against it draws a server error)
   and one black-holed candidate (its protocol rounds stall) under a
   per-candidate budget — plus a whole-query wall budget against a
   uniformly slow server, measuring how far past the declared budget the
   query actually runs.  Every partial result is cross-checked against a
   clean reference over the catalog minus the skipped record. *)
let degraded_bench ~quick =
  header "Degraded mode: partial catalog results, budget adherence";
  let count = if quick then 8 else 12 in
  let length = 12 in
  let k = 3 in
  let key_bits = 256 in
  let params = Ppst.Params.make ~key_bits () in
  let record i =
    Generate.ecg_int ~seed:(15001 + i) ~length ~max_value:(20 + (i mod 5) * 15)
  in
  let store_without skip =
    let t = Store.create () in
    for i = 0 to count - 1 do
      if i <> skip then Store.insert t ~id:(Printf.sprintf "rec%03d" i) (record i)
    done;
    t
  in
  let store = store_without (-1) in
  let x =
    let i = ref 0 in
    Series.map
      (Array.map (fun v ->
           incr i;
           let dv = (!i mod 3) - 1 in
           Stdlib.max 0 (Stdlib.min max_value (v + dv))))
      (Store.records store).(0)
  in
  let spec = Ppst.Protocol.spec `Euclidean in
  let bound =
    Stdlib.max 1 (Stdlib.max (Series.max_abs_value x) (Store.max_abs_value store))
  in
  line "degraded 1-vs-%d catalog search: m = %d, Euclidean, %d-bit modulus, k = %d"
    count length key_bits k;
  (* one query session over a loopback channel, with an optional request
     interceptor in front of the server — the fault *is* the wrapper *)
  let run ~seed ?wrap ?budget ?candidate_budget_s () =
    let rng_of sfx = Secure_rng.of_seed_string (seed ^ "/" ^ sfx) in
    let server =
      Ppst.Server.of_store ~params ~rng:(rng_of "server") ~store
        ~max_value:bound ()
    in
    let base = Ppst.Server.handle server in
    let handler = match wrap with Some w -> w base | None -> base in
    let channel = Channel.local handler in
    let client =
      Ppst.Client.connect ~params ~query:true ~rng:(rng_of "client") ~series:x
        ~max_value:bound ~distance:`Euclidean channel
    in
    let t0 = Unix.gettimeofday () in
    let report = Ppst.Query.top_k ~spec ?budget ?candidate_budget_s ~k client in
    let wall = Unix.gettimeofday () -. t0 in
    (try Ppst.Client.finish client with _ -> ());
    (report, wall)
  in
  let hit_pairs (r : Ppst.Query.report) =
    r.Ppst.Query.hits |> Array.to_list
    |> List.map (fun (h : Ppst.Query.hit) ->
        (h.Ppst.Query.id, Bigint.to_string h.Ppst.Query.distance))
  in
  (* the partial-result invariant: hits of a degraded run = a clean run
     over the catalog minus the skipped record *)
  let check_against_reference ~tag report skip =
    let reference, _ =
      Ppst.Query.run_top_k ~spec ~params
        ~seed:(Printf.sprintf "degraded-ref-%d" skip)
        ~max_value:bound ~k ~x ~store:(store_without skip) ()
    in
    if hit_pairs report <> hit_pairs reference then
      failwith
        (Printf.sprintf "%s: partial hits differ from the minus-%d reference"
           tag skip)
  in
  let the_incomplete ~tag (r : Ppst.Query.report) =
    match r.Ppst.Query.incomplete with
    | [| c |] -> c
    | arr ->
      failwith
        (Printf.sprintf "%s: expected exactly 1 incomplete, got %d" tag
           (Array.length arr))
  in
  (* clean *)
  let clean, clean_wall = run ~seed:"degraded-clean" () in
  if clean.Ppst.Query.incomplete <> [||] then failwith "clean run incomplete";
  line "  clean          %8.3f s  (%d hits, %d exact, %d pruned)" clean_wall
    (Array.length clean.Ppst.Query.hits)
    clean.Ppst.Query.evaluated clean.Ppst.Query.pruned;
  (* poisoned: one candidate always answers the exact run with an error.
     A threshold seed (index < k) is poisoned so the failure is hit on
     every run — a pruned mid-catalog candidate would never be selected
     — and the query must additionally survive the seed shortfall. *)
  let poisoned = 1 in
  let poison base req =
    match req with
    | Ppst_transport.Message.Select_request i when i = poisoned ->
      Ppst_transport.Message.Error_reply "poisoned candidate"
    | req -> base req
  in
  let preport, poisoned_wall = run ~seed:"degraded-poison" ~wrap:poison () in
  let pinc = the_incomplete ~tag:"poisoned" preport in
  check_against_reference ~tag:"poisoned" preport poisoned;
  line "  poisoned       %8.3f s  (%d hits, skipped %s: %s)" poisoned_wall
    (Array.length preport.Ppst.Query.hits)
    pinc.Ppst.Query.id
    (Ppst.Query.reason_to_string pinc.Ppst.Query.reason);
  (* one slow candidate: its rounds stall; the per-candidate budget cuts
     it loose while every other candidate resolves at full speed *)
  let slow = Stdlib.min 2 (count - 1) in
  let candidate_budget_s = 0.2 in
  let stall base =
    let selected = ref (-1) in
    fun req ->
      (match req with
       | Ppst_transport.Message.Select_request i -> selected := i
       | _ -> ());
      if !selected = slow then Thread.delay 0.08;
      base req
  in
  let sreport, slow_wall =
    run ~seed:"degraded-slow" ~wrap:stall ~candidate_budget_s ()
  in
  let sinc = the_incomplete ~tag:"slow" sreport in
  if sinc.Ppst.Query.reason <> Ppst.Query.Deadline then
    failwith "slow candidate not skipped on Deadline";
  check_against_reference ~tag:"slow" sreport slow;
  line "  one slow       %8.3f s  (%d hits, skipped %s after %.2f s sub-budget)"
    slow_wall
    (Array.length sreport.Ppst.Query.hits)
    sinc.Ppst.Query.id candidate_budget_s;
  (* whole-query budget against a uniformly slow server: every request
     costs a fixed stall, the budget binds mid-catalog, and the query
     must return within the declared budget plus at most ~one round *)
  let stall_all base req =
    Thread.delay 0.03;
    base req
  in
  let _, slow_clean_wall = run ~seed:"degraded-pace" ~wrap:stall_all () in
  let budget_s = Stdlib.max 0.15 (slow_clean_wall /. 2.0) in
  let breport, budget_wall =
    run ~seed:"degraded-budget" ~wrap:stall_all
      ~budget:(Retry.Budget.create ~budget_s ()) ()
  in
  let unresolved = Array.length breport.Ppst.Query.incomplete in
  if unresolved = 0 then failwith "whole-query budget never bound";
  let overshoot = budget_wall /. budget_s in
  line "  budgeted       %8.3f s  (budget %.3f s, %d unresolved, x%.3f of budget)"
    budget_wall budget_s unresolved overshoot;
  if budget_wall > (budget_s *. 1.10) +. 0.05 then
    failwith
      (Printf.sprintf "budget overshoot: %.3f s against a %.3f s budget"
         budget_wall budget_s);
  let oc = open_out "BENCH_degraded.json" in
  Printf.fprintf oc
    {|{
  "task": "degraded-mode 1-vs-N catalog search: partial results and budget adherence",
  "catalog_size": %d,
  "length": %d,
  "k": %d,
  "key_bits": %d,
  "clean": { "wall_seconds": %.3f, "hits": %d, "evaluated": %d, "pruned": %d, "incomplete": 0 },
  "poisoned": { "wall_seconds": %.3f, "hits": %d, "incomplete": 1, "skipped_id": "%s", "reason": "%s", "hits_match_reference": true },
  "one_slow": { "wall_seconds": %.3f, "hits": %d, "incomplete": 1, "skipped_id": "%s", "reason": "deadline", "candidate_budget_s": %.3f, "hits_match_reference": true },
  "budget_adherence": { "budget_s": %.3f, "wall_seconds": %.3f, "unresolved_candidates": %d, "overshoot_ratio": %.3f, "within_10pct": %b },
  "note": "Each degraded run's hits are asserted identical (id and exact distance) to a clean query over the catalog minus the skipped record before this file is written. The budget run paces every request through a fixed stall so the declared whole-query budget binds mid-catalog; overshoot_ratio is wall/budget and the harness fails if the query runs more than 10%% (plus 50 ms scheduling slack) past its budget."
}
|}
    count length k key_bits clean_wall
    (Array.length clean.Ppst.Query.hits)
    clean.Ppst.Query.evaluated clean.Ppst.Query.pruned poisoned_wall
    (Array.length preport.Ppst.Query.hits)
    pinc.Ppst.Query.id
    (Ppst.Query.reason_to_string pinc.Ppst.Query.reason)
    slow_wall
    (Array.length sreport.Ppst.Query.hits)
    sinc.Ppst.Query.id candidate_budget_s budget_s budget_wall unresolved
    overshoot
    (budget_wall <= (budget_s *. 1.10) +. 0.05);
  close_out oc;
  line "  wrote BENCH_degraded.json"

(* ---- observability: endpoint overhead, rollups, ledger ----------------------- *)

(* Minimal HTTP/1.0 GET against the loopback metrics sidecar; returns the
   whole response (headers + body). *)
let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let string_contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec at i = i + n <= m && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let observability_bench ~quick =
  header "Observability: metrics endpoint, windowed rollups, cost ledger";
  let module ME = Ppst_transport.Metrics_endpoint in
  let module Rollup = Ppst_telemetry.Rollup in
  let length = if quick then 8 else 12 in
  let key_bits = 256 in
  let params = Ppst.Params.make ~key_bits () in
  let x = Generate.ecg_int ~seed:14001 ~length ~max_value in
  let y = Generate.ecg_int ~seed:14002 ~length ~max_value in
  let rng = Secure_rng.of_seed_string "observability/keygen" in
  let _pk, sk = Ppst_paillier.Paillier.keygen ~bits:key_bits rng in
  (* A fresh Server_loop per configuration: session ids restart at 1, so
     identically-seeded clients must produce identical transcripts
     whether or not the sidecar is running. *)
  let with_loop ~enable_metrics f =
    let handler ~id ~peer:_ =
      let server =
        Ppst.Server.create_with_key ~sk
          ~rng:
            (Secure_rng.of_seed_string
               (Printf.sprintf "observability/session-%d" id))
          ~series:y ~max_value ()
      in
      Ppst.Server.handle server
    in
    let config =
      { Ppst_transport.Server_loop.default_config with enable_metrics }
    in
    let loop =
      Ppst_transport.Server_loop.create ~config ~port:0
        ~handler:(fun ~id ~peer -> Ppst_transport.Server_loop.respond_only (handler ~id ~peer)) ()
    in
    let runner =
      Thread.create (fun () -> Ppst_transport.Server_loop.run loop) ()
    in
    Fun.protect
      ~finally:(fun () ->
        Ppst_transport.Server_loop.shutdown loop;
        Thread.join runner)
      (fun () -> f (Ppst_transport.Server_loop.port loop))
  in
  let run_session ~port =
    let channel = Ppst_transport.Channel.connect ~host:"127.0.0.1" ~port () in
    let rng = Secure_rng.of_seed_string "observability/client" in
    let client =
      Ppst.Client.connect ~params ~rng ~series:x ~max_value ~distance:`Dtw
        channel
    in
    let t0 = Unix.gettimeofday () in
    let d = Ppst.Secure_dtw_wavefront.run_dtw client in
    let wall = Unix.gettimeofday () -. t0 in
    let stats = Ppst.Client.stats client in
    let snapshot =
      ( Bigint.to_int_exn d,
        Stats.total_bytes stats,
        Stats.total_values stats,
        Stats.rounds stats )
    in
    Ppst.Client.finish client;
    (wall, snapshot)
  in
  (* one timed pass with the capability disabled (no sidecar); a fresh
     loop per run keeps session ids (and so transcripts) identical *)
  let run_off () =
    with_loop ~enable_metrics:false (fun port -> run_session ~port)
  in
  (* same session with the endpoint up and actively scraped while it runs *)
  let scrapes_during = ref 0 in
  let run_on () =
    with_loop ~enable_metrics:true (fun port ->
        let ep = ME.start ~port:0 () in
        Fun.protect
          ~finally:(fun () -> ME.stop ep)
          (fun () ->
            let mport = ME.port ep in
            let stop = Atomic.make false in
            let scraper =
              Thread.create
                (fun () ->
                  while not (Atomic.get stop) do
                    ignore (http_get ~port:mport "/metrics");
                    incr scrapes_during;
                    Thread.delay 0.01
                  done)
                ()
            in
            let w, snap = run_session ~port in
            Atomic.set stop true;
            Thread.join scraper;
            (w, (snap, http_get ~port:mport "/metrics"))))
  in
  (* wall clock on a sub-second session is noisy, so interleave the two
     configurations (off, on, off, on, ...) after a discarded warmup and
     compare the per-configuration minima; interleaving keeps slow phases
     of the host from landing entirely on one side of the comparison *)
  let runs = if quick then 2 else 3 in
  ignore (run_off ());
  let rec measure n (best_off, best_on) (snaps : _ option) =
    if n = 0 then (best_off, best_on, Option.get snaps)
    else
      let w_off, snap_off = run_off () in
      let w_on, on_result = run_on () in
      measure (n - 1)
        (Float.min best_off w_off, Float.min best_on w_on)
        (Some (snap_off, on_result))
  in
  let w_off, w_on, (snap_off, (snap_on, page)) =
    measure runs (infinity, infinity) None
  in
  let d_off, bytes_off, _, _ = snap_off in
  if d_off <> Distance.dtw_sq x y then
    failwith "observability: baseline distance diverges from plaintext";
  line
    "  wavefront DTW %dx%d over TCP, metrics disabled: %.3f s, %d bytes \
     (best of %d, interleaved)"
    length length w_off bytes_off runs;
  if snap_on <> snap_off then
    failwith
      "observability: seeded transcript diverges with the metrics endpoint \
       enabled";
  line
    "  same session, endpoint enabled + scraped %d time(s) concurrently: %.3f s"
    !scrapes_during w_on;
  line "  transcript identical (distance, bytes, values, rounds): verified";
  let overhead = (w_on -. w_off) /. w_off in
  line "  scrape-path overhead: %+.2f%% (noise bound 25%%)" (100.0 *. overhead);
  if overhead > 0.25 then
    failwith "observability: metrics scraping slowed the session beyond noise";
  (* the page itself: the query.* and server.* families must be exposed *)
  List.iter
    (fun family ->
      if not (string_contains page family) then
        failwith ("observability: exposition page lacks " ^ family))
    [
      "ppst_server_sessions_accepted";
      "ppst_query_submitted";
      "ppst_ledger_checks";
      "# EOF";
    ];
  let page_bytes = String.length page in
  line "  exposition page %d bytes; server.*, query.* and ledger.* families \
        present." page_bytes;
  (* windowed aggregation: exposition-time cost of a 15-slot window over
     the global registry (the clean path has no rollup hook at all) *)
  let rollup_calls = 1000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rollup_calls do
    ignore (Rollup.window (Rollup.global ()) ~slots:15)
  done;
  let window_micros =
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int rollup_calls
  in
  line
    "  Rollup.window (15 slots, global registry): %.1f us/call at exposition \
     time;"
    window_micros;
  line "  zero instrumentation on the metric update paths by construction.";
  (* the cost-attribution ledger balances on a seeded pairwise run *)
  let drift_before = Ppst.Ledger.drift_events () in
  let r =
    Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~params
      ~seed:"observability-ledger" ~max_value ~x ~y ()
  in
  check_against_plaintext `Dtw x y r;
  let ledger_predicted, ledger_actual =
    match Ppst.Ledger.recent () with
    | e :: _ -> (e.Ppst.Ledger.predicted_values, e.Ppst.Ledger.actual_values)
    | [] -> failwith "observability: no ledger entry after a pairwise run"
  in
  if Ppst.Ledger.drift_events () <> drift_before then
    failwith "observability: cost ledger drifted on a seeded pairwise run";
  line "  cost ledger: predicted %d = actual %d wire values, zero drift."
    ledger_predicted ledger_actual;
  let oc = open_out "BENCH_observability.json" in
  Printf.fprintf oc
    {|{
  "task": "observability overhead: metrics endpoint scrape during a live secure session, windowed rollups, cost-attribution ledger",
  "m": %d,
  "n": %d,
  "d": 1,
  "k": %d,
  "key_bits": %d,
  "wall_seconds_metrics_off": %.3f,
  "wall_seconds_metrics_on_scraped": %.3f,
  "scrape_overhead_fraction": %.4f,
  "scrapes_during_session": %d,
  "interleaved_runs_per_config": %d,
  "exposition_page_bytes": %d,
  "rollup_window_micros_per_call": %.1f,
  "transcripts_identical_endpoint_on_vs_off": true,
  "ledger": { "predicted_values": %d, "actual_values": %d, "drift_events": 0 },
  "note": "The sidecar endpoint serves the same closed-vocabulary aggregates as the in-protocol Metrics_req; a seeded session's transcript (distance, bytes, values, rounds) is identical whether the endpoint is off or scraped every 10 ms. Windowed aggregation differences boundary snapshots at exposition time only, so the metric update paths carry no rollup instrumentation. Overhead is wall(scraped)/wall(off)-1 on interleaved per-config minima after a discarded warmup; negative values are measurement noise."
}
|}
    length length params.Ppst.Params.k key_bits w_off w_on overhead
    !scrapes_during runs page_bytes window_micros ledger_predicted ledger_actual;
  close_out oc;
  line "  wrote BENCH_observability.json"

(* ---- driver -------------------------------------------------------------------- *)

let with_tee out_dir name f =
  match out_dir with
  | None -> f ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".txt")) in
    tee_channel := Some oc;
    Fun.protect
      ~finally:(fun () ->
        tee_channel := None;
        close_out_noerr oc)
      f

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let out_dir =
    let rec find = function
      | "--out" :: dir :: _ -> Some dir
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (let rec find = function
     | "--jobs" :: n :: _ -> jobs := int_of_string n
     | _ :: rest -> find rest
     | [] -> ()
   in
   find args);
  if !jobs < 1 then failwith "--jobs must be >= 1";
  (* telemetry sinks, same flags as ppst_server/ppst_client *)
  (let opt_value flag =
     let rec find = function
       | f :: v :: _ when f = flag -> Some v
       | _ :: rest -> find rest
       | [] -> None
     in
     find args
   in
   let level = Option.value ~default:"quiet" (opt_value "--log-level") in
   let json = List.mem "--log-json" args in
   let trace_out = opt_value "--trace-out" in
   let apply () =
     Ppst_telemetry.Telemetry.configure ~level ~json ?trace_out ()
   in
   telemetry_cli := apply;
   apply ());
  let selected =
    let rec strip = function
      | "--out" :: _ :: rest -> strip rest
      | "--jobs" :: _ :: rest -> strip rest
      | "--log-level" :: _ :: rest -> strip rest
      | "--trace-out" :: _ :: rest -> strip rest
      | a :: rest ->
        if a = "--quick" || a = "--log-json" then strip rest
        else a :: strip rest
      | [] -> []
    in
    strip args
  in
  let want name = selected = [] || List.mem name selected || List.mem "all" selected in
  let sizes = if quick then [ 10; 20; 40 ] else [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let dims = if quick then [ 10; 30 ] else [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let dim_len = if quick then 30 else 100 in
  let ks = if quick then [ 10; 30 ] else [ 10; 20; 30; 40; 50 ] in
  let k_len = if quick then 30 else 100 in
  line "privacy-preserving time-series similarity: paper-evaluation benchmarks";
  line "(key: Paillier %d bits, k = %d unless swept; every secure result is"
    Ppst.Params.default.Ppst.Params.key_bits Ppst.Params.default.Ppst.Params.k;
  line " cross-checked against the plaintext distance)";
  let need_lengths = want "fig5" || want "fig6" || want "fig7" || want "fig8" || want "atallah" in
  let length_points = if need_lengths then length_sweep ~sizes else [] in
  if want "fig5" then with_tee out_dir "fig5" (fun () -> fig5 length_points);
  if want "fig6" then with_tee out_dir "fig6" (fun () -> fig6 length_points);
  if want "fig7" then with_tee out_dir "fig7" (fun () -> fig7 length_points);
  if want "fig8" then with_tee out_dir "fig8" (fun () -> fig8 length_points);
  if want "fig9" || want "fig10" then begin
    let points = dim_sweep ~length:dim_len ~dims in
    if want "fig9" then with_tee out_dir "fig9" (fun () -> fig9 points);
    if want "fig10" then with_tee out_dir "fig10" (fun () -> fig10 points)
  end;
  if want "fig11" then with_tee out_dir "fig11" (fun () -> fig11 ~length:k_len ~ks);
  if want "atallah" then
    with_tee out_dir "atallah" (fun () ->
        (* use the largest length-sweep run as the measured data point *)
        let { n; dtw; _ } = List.nth length_points (List.length length_points - 1) in
        atallah ~measured_n:n
          ~measured_seconds:(Ppst.Cost.total_seconds dtw.Ppst.Protocol.cost));
  if want "ablation" then
    with_tee out_dir "ablation" (fun () -> ablation ~length:(if quick then 20 else 50));
  if want "extensions" then
    with_tee out_dir "extensions" (fun () ->
        extensions ~length:(if quick then 24 else 60));
  if want "network" then
    with_tee out_dir "network" (fun () -> network ~length:(if quick then 24 else 60));
  if want "entropy" then with_tee out_dir "entropy" (fun () -> entropy_table ());
  if want "micro" then with_tee out_dir "micro" (fun () -> bechamel_suite ());
  if want "parallel" then
    with_tee out_dir "parallel" (fun () -> parallel_bench ~quick);
  if want "throughput" then
    with_tee out_dir "throughput" (fun () -> throughput ~quick);
  if want "telemetry" then
    with_tee out_dir "telemetry" (fun () -> telemetry_bench ~quick);
  if want "resilience" then
    with_tee out_dir "resilience" (fun () -> resilience ~quick);
  if want "failover" then
    with_tee out_dir "failover" (fun () -> failover_bench ~quick);
  if want "overload" then
    with_tee out_dir "overload" (fun () -> overload ~quick);
  if want "catalog" then
    with_tee out_dir "catalog" (fun () -> catalog_bench ~quick);
  if want "degraded" then
    with_tee out_dir "degraded" (fun () -> degraded_bench ~quick);
  if want "observability" then
    with_tee out_dir "observability" (fun () -> observability_bench ~quick);
  if want "smoke" then with_tee out_dir "smoke" (fun () -> smoke ());
  line "";
  line "done."
