(* Hybrid retrieval: plaintext pruning + secure verification.

   Secure DTW costs real time per record, so scanning a large database
   securely is expensive.  A standard deployment compromise: the server
   publishes cheap, coarse sketches of its records (SAX words — a few
   symbols per record, deliberately low-resolution), the client prunes
   the obviously-bad candidates on the sketches alone, and the secure
   protocol runs only on the shortlist.

   What is disclosed: the public sketches (by choice — they are published
   metadata in this scenario) and one exact distance per *shortlisted*
   record; the full series never move.  The sketch alphabet/segment
   counts dial the privacy/cost trade-off.

   This demo builds a 12-record ECG database, prunes with SAX MINDIST
   (a provable lower bound on z-normalized Euclidean distance), verifies
   the shortlist with secure DTW, and cross-checks that pruning never
   discarded the true nearest neighbour.

   Run with:  dune exec examples/hybrid_retrieval.exe *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Generate = Ppst_timeseries.Generate
module Normalize = Ppst_timeseries.Normalize
module Paa = Ppst_timeseries.Paa

let db_size = 12
let length = 32
let segments = 8
let alphabet = 6
let max_value = 100

let () =
  (* The server's private records and their public sketches. *)
  let raw_records =
    Array.init db_size (fun i -> Generate.ecg ~seed:(500 + i) ~length)
  in
  let records = Array.map (Normalize.quantize ~max_value) raw_records in
  let sketches = Array.map (Paa.sax ~segments ~alphabet) raw_records in

  (* The client's query resembles record 7. *)
  let raw_query = Generate.perturb ~seed:3 ~noise:0.05 raw_records.(7) in
  let query = Normalize.quantize ~max_value raw_query in
  let query_sketch = Paa.sax ~segments ~alphabet raw_query in

  Printf.printf "Database: %d ECG records; public sketches: %d symbols over alphabet %d\n\n"
    db_size segments alphabet;

  (* Stage 1 (free): rank candidates by sketch lower bound. *)
  let scored =
    Array.to_list
      (Array.mapi
         (fun i sketch ->
           (i, Paa.sax_distance_sq ~alphabet ~original_length:length query_sketch sketch))
         sketches)
  in
  let ranked = List.sort (fun (_, a) (_, b) -> compare a b) scored in
  let shortlist_size = 3 in
  let shortlist = List.filteri (fun rank _ -> rank < shortlist_size) ranked in
  Printf.printf "Sketch ranking (MINDIST², ascending):\n";
  List.iter
    (fun (i, d) ->
      Printf.printf "  record %2d: %8.3f%s\n" i d
        (if List.mem_assoc i shortlist then "   <- shortlisted" else ""))
    ranked;

  (* Stage 2 (secure): exact DTW only on the shortlist. *)
  Printf.printf "\nSecure verification of %d candidates:\n" shortlist_size;
  let t0 = Unix.gettimeofday () in
  let verified =
    List.map
      (fun (i, _) ->
        let r =
          Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw)
            ~seed:(Printf.sprintf "hybrid-%d" i)
            ~max_value ~x:query ~y:records.(i) ()
        in
        let d = Ppst.Protocol.distance_int r in
        assert (d = Distance.dtw_sq query records.(i));
        Printf.printf "  record %2d: secure DTW = %d\n" i d;
        (i, d))
      shortlist
  in
  let elapsed = Unix.gettimeofday () -. t0 in

  let best, best_d =
    List.fold_left (fun (bi, bd) (i, d) -> if d < bd then (i, d) else (bi, bd))
      (List.hd verified) verified
  in
  Printf.printf "\nnearest (verified securely): record %d, distance %d\n" best best_d;

  (* Soundness check: full plaintext scan agrees. *)
  let plain_best, _ = Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dtw_sq ~query records in
  assert (plain_best = best);
  Printf.printf
    "secure comparisons: %d instead of %d (%.1fx fewer); verification took %.2f s\n"
    shortlist_size db_size
    (float_of_int db_size /. float_of_int shortlist_size)
    elapsed
