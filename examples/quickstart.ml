(* Quickstart: the paper's running example (Section 4, Figure 1).

   Two parties hold X = (3,4,5,4,6,7) and Y = (2,4,6,5,7).  They compute
   the Dynamic Time Warping distance securely: the client only ever sees
   Paillier ciphertexts of the DP matrix, the server only ever sees
   masked candidate values, and both learn the final distance.

   Run with:  dune exec examples/quickstart.exe *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Bigint = Ppst_bigint.Bigint

let () =
  let x = Series.of_list [ 3; 4; 5; 4; 6; 7 ] in
  let y = Series.of_list [ 2; 4; 6; 5; 7 ] in

  (* One call runs the whole protocol: key generation at the server,
     handshake, phase 1 (encrypted squared Euclidean distances), phase 2
     (masked secure minima for every DP cell), and the joint reveal.
     The spec picks the distance; ~band and ~strategy:`Wavefront are the
     other knobs. *)
  let result = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~x ~y () in

  Printf.printf "secure DTW distance  = %s\n" (Bigint.to_string result.distance);
  Printf.printf "plaintext reference  = %d\n" (Distance.dtw_sq x y);
  Printf.printf "\n";

  (* What the protocol cost: *)
  Format.printf "communication: %a@." Ppst.Import.Stats.pp result.stats;
  Format.printf "work:@.%a@." Ppst.Cost.pp result.cost;
  Format.printf "masking session: %a@." Ppst.Params.pp_session result.session;

  (* The same two lines with the Discrete Frechet Distance: *)
  let dfd = Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dfd) ~x ~y () in
  Printf.printf "\nsecure DFD distance  = %s\n" (Bigint.to_string dfd.distance);
  Printf.printf "plaintext reference  = %d\n" (Distance.dfd_sq x y)
