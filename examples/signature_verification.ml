(* The paper's signature scenario (Section 1).

   Bob (client) wants to verify whether his hand-written signature —
   a 2-dimensional pen trajectory — matches the reference stored in a
   signature database (server), without either side revealing the actual
   trajectories.  The Discrete Fréchet Distance is the natural metric for
   curves: it measures the worst-case pointwise gap along the best
   traversal, so a forgery that deviates anywhere scores badly.

   This demo enrolls a genuine signature, then verifies (a) a genuine
   re-signing (same signer seed, fresh pen noise) and (b) a forgery
   (different signer).  Acceptance thresholds work on the revealed
   distance only.

   Run with:  dune exec examples/signature_verification.exe *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Generate = Ppst_timeseries.Generate
module Normalize = Ppst_timeseries.Normalize

let stroke_points = 20
let max_value = 60

(* A signing attempt: the signer's characteristic stroke shape (seed)
   plus fresh pen jitter for this attempt. *)
let attempt ~signer ~noise_seed =
  Normalize.quantize ~max_value
    (Generate.perturb ~seed:noise_seed ~noise:0.015
       (Generate.signature ~seed:signer ~length:stroke_points))

let verify ~label ~reference ~candidate ~threshold =
  let r =
    Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dfd)
      ~seed:("signature-" ^ label)
      ~max_value ~x:candidate ~y:reference ()
  in
  let d = Ppst.Protocol.distance_int r in
  assert (d = Distance.dfd_sq candidate reference);
  Printf.printf "  %-18s secure DFD = %5d  -> %s (threshold %d)\n" label d
    (if d <= threshold then "ACCEPT" else "REJECT")
    threshold;
  d

let () =
  let enrolled = attempt ~signer:42 ~noise_seed:1 in
  Printf.printf "Enrolled reference signature: %d pen samples, 2-D, values in [1, %d]\n\n"
    (Series.length enrolled) max_value;

  (* Calibrate a threshold from genuine attempts (plaintext, offline — the
     signer calibrates against their own data). *)
  let genuine_distances =
    List.map
      (fun s -> Distance.dfd_sq (attempt ~signer:42 ~noise_seed:s) enrolled)
      [ 2; 3; 4; 5 ]
  in
  let threshold = 2 * List.fold_left max 1 genuine_distances in
  Printf.printf "Calibration: genuine DFD distances %s -> threshold %d\n\n"
    (String.concat ", " (List.map string_of_int genuine_distances))
    threshold;

  Printf.printf "Verification sessions (each one a full secure-DFD protocol run):\n";
  let genuine = verify ~label:"genuine-resign" ~reference:enrolled
      ~candidate:(attempt ~signer:42 ~noise_seed:9) ~threshold in
  let forged = verify ~label:"forgery" ~reference:enrolled
      ~candidate:(attempt ~signer:77 ~noise_seed:9) ~threshold in

  assert (genuine <= threshold);
  assert (forged > threshold);
  Printf.printf
    "\nThe database never saw Bob's attempts; Bob never saw the stored reference.\n"
