(* Subsequence matching (paper introduction: "time series similarity
   search and subsequence matching queries").

   An exchange operator (client) holds a long price-like series; an
   analyst (server) holds a short pattern she considers proprietary.
   They locate where the pattern matches best inside the long series —
   the server never sees the series, the client never sees the pattern,
   and only the per-window distances are disclosed (the agreed output of
   the protocol).

   All windows are evaluated from a single phase-1 transfer: the window
   sums are assembled homomorphically, so the whole query needs no
   masking rounds at all — the cheapest protocol in the suite.

   Run with:  dune exec examples/subsequence_matching.exe *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Generate = Ppst_timeseries.Generate
module Normalize = Ppst_timeseries.Normalize
module Bigint = Ppst_bigint.Bigint

let long_length = 60
let pattern_length = 12
let max_value = 100

let () =
  (* The long series: a random walk with a known motif implanted. *)
  let base = Generate.random_walk ~seed:77 ~length:long_length ~dim:1 in
  let long = Normalize.quantize ~max_value base in
  let motif_at = 31 in
  let motif = Series.sub long ~pos:motif_at ~len:pattern_length in

  (* The analyst's pattern: the motif plus measurement noise. *)
  let pattern =
    Normalize.quantize ~max_value
      (Generate.perturb ~seed:5 ~noise:0.02 (Normalize.dequantize motif))
  in

  Printf.printf "Series length %d, pattern length %d -> %d windows\n\n" long_length
    pattern_length
    (long_length - pattern_length + 1);

  let t0 = Unix.gettimeofday () in
  let result = Ppst.Protocol.subsequence ~seed:"subseq-demo" ~x:long ~y:pattern () in
  let elapsed = Unix.gettimeofday () -. t0 in

  (* Cross-check every window against the plaintext and find the best. *)
  let best = ref 0 in
  Array.iteri
    (fun o d ->
      let window = Series.sub long ~pos:o ~len:pattern_length in
      assert (Bigint.to_int_exn d = Distance.euclidean_sq window pattern);
      if Bigint.compare d result.window_distances.(!best) < 0 then best := o)
    result.window_distances;

  Printf.printf "best window: offset %d (distance %s) - motif was implanted at %d\n"
    !best
    (Bigint.to_string result.window_distances.(!best))
    motif_at;
  assert (!best = motif_at);

  Printf.printf "elapsed %.3f s for %d windows; %d values on the wire\n" elapsed
    (Array.length result.window_distances)
    (Ppst_transport.Stats.total_values result.windows_stats);
  Printf.printf
    "\n(no masking rounds at all: window sums are pure ciphertext additions;\n\
    \ the parties exchanged only the encrypted pattern and %d revealed sums)\n"
    (Array.length result.window_distances)
