(* The paper's hospital scenario (Section 1).

   A hospital (server) holds a database of ECG traces associated with
   diagnosed conditions.  A new patient, Alice (client), wants to know
   whether any stored trace is similar to her own — without showing the
   hospital her ECG, and without the hospital exposing patients' traces.

   Secure similarity search reduces to one secure-DTW session per
   database record: each run reveals one distance and nothing else.  The
   demo compares the secure results against plaintext DTW (they must be
   identical) and reports what a curious hospital actually observed.

   Run with:  dune exec examples/ecg_matching.exe *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Generate = Ppst_timeseries.Generate
module Bigint = Ppst_bigint.Bigint

let database_size = 5
let trace_length = 24
let max_value = 100

let () =
  (* The hospital's database: ECG-morphology traces with per-patient
     variation, quantized to positive integers as in the paper. *)
  let database =
    Array.init database_size (fun i ->
        Generate.ecg_int ~seed:(100 + i) ~length:trace_length ~max_value)
  in
  let conditions =
    [| "atrial fibrillation"; "healthy baseline"; "tachycardia";
       "bradycardia"; "PVC pattern" |]
  in

  (* Alice's ECG resembles record 2 (generated from a nearby seed with
     extra measurement noise). *)
  let alice =
    Ppst_timeseries.Normalize.quantize ~max_value
      (Generate.perturb ~seed:7 ~noise:0.04
         (Generate.ecg ~seed:102 ~length:trace_length))
  in

  Printf.printf "Hospital database: %d ECG traces of length %d\n" database_size
    trace_length;
  Printf.printf "Alice's trace: length %d, values in [1, %d]\n\n"
    (Series.length alice) max_value;

  let t0 = Unix.gettimeofday () in
  let results =
    Array.mapi
      (fun i record ->
        let r =
          Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw)
            ~seed:(Printf.sprintf "ecg-session-%d" i)
            ~max_value ~x:alice ~y:record ()
        in
        let secure = Ppst.Protocol.distance_int r in
        let plain = Distance.dtw_sq alice record in
        assert (secure = plain);
        Printf.printf
          "  record %d (%-20s): secure DTW = %6d   [%d rounds, %d KiB]\n" i
          conditions.(i) secure
          (Ppst.Import.Stats.rounds r.stats)
          (Ppst.Import.Stats.total_bytes r.stats / 1024);
        (i, secure))
      database
  in
  let elapsed = Unix.gettimeofday () -. t0 in

  let best, best_d =
    Array.fold_left
      (fun (bi, bd) (i, d) -> if d < bd then (i, d) else (bi, bd))
      (fst results.(0), snd results.(0))
      results
  in
  Printf.printf "\nBest match: record %d (%s), distance %d\n" best conditions.(best)
    best_d;
  Printf.printf "Total time for %d secure comparisons: %.2f s\n" database_size elapsed;

  (* Cross-check against a plaintext k-NN scan. *)
  let plain_best, plain_d =
    Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dtw_sq ~query:alice database
  in
  assert (plain_best = best && plain_d = best_d);
  Printf.printf
    "\nWhat each party learned: the %d distance values above - nothing else.\n"
    database_size;
  Printf.printf
    "(The hospital never saw Alice's trace; Alice never saw any database trace.)\n"
