(* Trajectory similarity (the paper's "trajectory databases" application).

   A fleet operator (server) stores vehicle GPS traces; an analyst
   (client) holds a trace of interest and wants the most similar stored
   trajectory without either side disclosing raw coordinates.  The demo
   runs both secure distances over the same data and contrasts their
   behaviour: DTW accumulates cost (total shape deviation), DFD reports
   the single worst gap (bottleneck deviation) — so they can disagree on
   the ranking, which is exactly why the paper supports both.

   It also demonstrates parameter exploration: the same query at several
   random-set sizes k, showing the security/cost dial of Section 5.3.

   Run with:  dune exec examples/trajectory_search.exe *)

module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Generate = Ppst_timeseries.Generate
module Normalize = Ppst_timeseries.Normalize
module Stats = Ppst_transport.Stats

let trace_length = 16
let max_value = 80

let () =
  let fleet =
    Array.init 4 (fun i ->
        Normalize.quantize ~max_value
          (Generate.trajectory ~seed:(200 + i) ~length:trace_length))
  in
  (* The analyst's trace follows vehicle 1's route with sensor noise. *)
  let query =
    Normalize.quantize ~max_value
      (Generate.perturb ~seed:31 ~noise:0.3
         (Generate.trajectory ~seed:201 ~length:trace_length))
  in

  Printf.printf "Fleet: %d trajectories of %d 2-D points each\n\n"
    (Array.length fleet) trace_length;

  Printf.printf "%-10s %14s %14s\n" "vehicle" "secure DTW" "secure DFD";
  Array.iteri
    (fun i route ->
      let dtw =
        Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~seed:(Printf.sprintf "traj-dtw-%d" i) ~max_value
          ~x:query ~y:route ()
      in
      let dfd =
        Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dfd) ~seed:(Printf.sprintf "traj-dfd-%d" i) ~max_value
          ~x:query ~y:route ()
      in
      let sd = Ppst.Protocol.distance_int dtw and fd = Ppst.Protocol.distance_int dfd in
      assert (sd = Distance.dtw_sq query route);
      assert (fd = Distance.dfd_sq query route);
      Printf.printf "%-10d %14d %14d\n" i sd fd)
    fleet;

  let best_dtw, _ = Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dtw_sq ~query fleet in
  let best_dfd, _ = Ppst_timeseries.Knn.nearest Ppst_timeseries.Knn.Dfd_sq ~query fleet in
  Printf.printf "\nclosest by DTW: vehicle %d;  closest by DFD: vehicle %d\n\n" best_dtw
    best_dfd;

  (* Security/cost dial: larger random sets k mean more candidates per
     masked round — more entropy against the server, more bytes and time. *)
  Printf.printf "Parameter exploration (same query vs vehicle %d):\n" best_dtw;
  Printf.printf "%6s %12s %12s %12s\n" "k" "time (s)" "KiB" "values";
  List.iter
    (fun k ->
      let params = Ppst.Params.make ~k () in
      let t0 = Unix.gettimeofday () in
      let r =
        Ppst.Protocol.run ~spec:(Ppst.Protocol.spec `Dtw) ~params
          ~seed:(Printf.sprintf "traj-k-%d" k)
          ~max_value ~x:query ~y:fleet.(best_dtw) ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%6d %12.3f %12d %12d\n" k dt
        (Stats.total_bytes r.stats / 1024)
        (Stats.total_values r.stats))
    [ 8; 16; 32 ]
