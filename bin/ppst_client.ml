(* The client party over TCP, verb-structured:

     ppst_client pair SERIES.csv     one secure pairwise distance
     ppst_client query SERIES.csv    secure 1-vs-N catalog search
     ppst_client catalog             enumerate the server's records
     ppst_client stats               live metrics snapshot
     ppst_client health              readiness probe

   The historical flag-style invocation (no verb) still works as the
   default command, with a one-line deprecation notice on stderr. *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

let setup verbose log_level log_json trace_out =
  setup_logs verbose;
  Ppst_telemetry.Telemetry.configure ~level:log_level ~json:log_json
    ?trace_out ()

(* stats: one Stats_req round against a running server, no session state
   needed.  Server_loop answers it even at capacity (the probe path), so
   this works exactly when an operator needs it most. *)
let fetch_stats host port =
  let channel = Ppst_transport.Channel.connect ~host ~port () in
  (match Ppst_transport.Channel.request channel Ppst_transport.Message.Stats_req with
   | Ppst_transport.Message.Stats_reply text -> print_string text
   | _ -> failwith "expected Stats_reply");
  Ppst_transport.Channel.close channel

(* health: the readiness probe.  Like stats it is answered even at
   capacity and even while the server sheds load, so it reports the
   truth exactly when the serving path is refusing work.  Exit status is
   the probe status (0 ready / 1 at capacity / 2 shedding / 3 degraded —
   serving but with durability lost, see PROTOCOL.md section 14). *)
let fetch_health host port =
  let channel = Ppst_transport.Channel.connect ~host ~port () in
  let status =
    match
      Ppst_transport.Channel.request channel Ppst_transport.Message.Health_req
    with
    | Ppst_transport.Message.Health_reply { status; active; capacity; retry_after_s } ->
      Printf.printf "status: %s\nactive: %d\ncapacity: %d\nretry_after_s: %.2f\n"
        (match status with
         | 0 -> "ready"
         | 1 -> "at-capacity"
         | 2 -> "shedding"
         | 3 -> "degraded"
         | _ -> "unknown")
        active capacity retry_after_s;
      status
    | _ -> failwith "expected Health_reply"
  in
  Ppst_transport.Channel.close channel;
  status

(* metrics: the OpenMetrics exposition page over the protocol socket.
   Unlike stats/health this is a negotiated capability: Hello offers
   [flag_metrics], and a server configured with --no-metrics refuses
   both the flag and the request.  The same page is what the HTTP
   sidecar (ppst_server --metrics-port) serves to scrapers. *)
let fetch_metrics host port =
  let open Ppst_transport in
  let channel = Channel.connect ~host ~port () in
  (match
     Channel.request channel
       (Message.Hello { flags = Message.flag_metrics; spec = None })
   with
   | Message.Welcome { flags; _ } when flags land Message.flag_metrics <> 0 -> ()
   | Message.Welcome _ ->
     failwith "server does not grant the metrics capability"
   | _ -> failwith "expected Welcome");
  (match Channel.request channel Message.Metrics_req with
   | Message.Metrics_reply text -> print_string text
   | Message.Error_reply m -> failwith m
   | _ -> failwith "expected Metrics_reply");
  (try ignore (Channel.request channel Message.Bye) with _ -> ());
  Channel.close channel

(* catalog: raw catalog-list round, no series (and so no Client.t)
   needed — the capability handshake is just Hello with the catalog
   flag. *)
let fetch_catalog host port =
  let open Ppst_transport in
  let channel = Channel.connect ~host ~port () in
  (match
     Channel.request channel
       (Message.Hello { flags = Message.flag_catalog; spec = None })
   with
   | Message.Welcome { flags; _ } when flags land Message.flag_catalog <> 0 -> ()
   | Message.Welcome _ ->
     failwith "server does not grant the catalog capability"
   | _ -> failwith "expected Welcome");
  (match Channel.request channel Message.Catalog_list_request with
   | Message.Catalog_list_reply { ids; lengths } ->
     Array.iteri
       (fun i id -> Printf.printf "%d\t%s\t%d\n" i id lengths.(i))
       ids
   | Message.Error_reply m -> failwith m
   | _ -> failwith "expected Catalog_list_reply");
  (try ignore (Channel.request channel Message.Bye) with _ -> ());
  Channel.close channel

(* A quota rejection is a policy verdict, not a transient fault: the
   server said this session's declared shape exceeds its admission
   limits, so retrying is pointless.  Report which quota and exit with
   EX_UNAVAILABLE so scripts can tell it from a crypto failure. *)
let quota_fatal f =
  try f ()
  with Ppst_transport.Channel.Quota_exceeded { quota; limit; requested } ->
    Logs.err (fun m ->
        m "rejected by server admission control: %s quota (limit %d, requested %d)"
          quota limit requested);
    exit 69

(* A whole-server restart is equally final: the resume token's boot-id
   prefix names a dead incarnation, so no amount of retrying can ever
   reattach this session — the channel already failed fast instead of
   burning its retry budget.  EX_PROTOCOL distinguishes it from plain
   exhaustion (75): the operator must start a fresh session, not wait. *)
let restart_fatal f =
  try f ()
  with
  | Ppst_transport.Channel.Resume_rejected reason
    when Ppst_transport.Channel.is_server_restarted reason ->
    Logs.err (fun m ->
        m "session lost: the server restarted and cannot resume it (%s); \
           run again to start a fresh session" reason);
    exit 76

(* The wall budget (--budget-s) ran out: connects, rounds and recovery
   all stop at the deadline, by design.  Exit 124 — the convention
   timeout(1) established — so scripts can tell "out of time" from
   every other failure. *)
let budget_fatal f =
  try f ()
  with Ppst_transport.Retry.Budget.Exceeded { budget_s } ->
    Logs.err (fun m ->
        m "wall budget of %.3f s exhausted; giving up" budget_s);
    exit 124

(* One secure session: connect with retry/backoff/breaker, run [f], then
   print the shared accounting.  Used by both the pair and query
   verbs. *)
let with_session ~host ~port ~k ~seed ~jobs ~retries ?budget ~query ~distance
    ~series_file f =
  if jobs < 1 then failwith "--jobs must be >= 1";
  if retries < 1 then failwith "--retries must be >= 1";
  let workers = Ppst_parallel.Pool.create jobs in
  let series = Ppst_timeseries.Csv.load series_file in
  let rng =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string s
    | None -> Ppst_rng.Secure_rng.system ()
  in
  let params = Ppst.Params.make ~k () in
  let max_value = Stdlib.max 1 (Ppst_timeseries.Series.max_abs_value series) in
  (* One backoff policy for every way a session can fail to start:
     refused connects, a Busy server (its retry-after hint is honoured
     as a floor), a connection lost during the handshake.  The same
     policy then governs mid-session reconnect + resume inside the
     channel.  Backoff jitter gets its own rng stream so retries never
     perturb the protocol transcript of a --seed run. *)
  let policy =
    { Ppst_transport.Retry.default_policy with max_attempts = retries }
  in
  (* The breaker turns a run of shed answers into local waiting: after
     consecutive Busy/throttle verdicts it opens and later attempts
     sleep out the server's hinted cooldown without dialling in — one
     probe (half-open) tests recovery instead of a reconnect stampede. *)
  let breaker = Ppst_transport.Retry.Breaker.create () in
  let jitter_rng =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string (s ^ "/backoff")
    | None -> Ppst_rng.Secure_rng.system ()
  in
  quota_fatal @@ fun () ->
  restart_fatal @@ fun () ->
  budget_fatal @@ fun () ->
  let connect_session () =
    let channel =
      Ppst_transport.Channel.connect ~retry:policy ~rng:jitter_rng ?budget
        ~host ~port ()
    in
    try
      ( channel,
        Ppst.Client.connect ~params ~query ~workers ~rng ~series ~max_value
          ~distance channel )
    with e ->
      (try Ppst_transport.Channel.close channel with _ -> ());
      raise e
  in
  let channel, client =
    try
      Ppst_transport.Retry.with_retry ~policy ~rng:jitter_rng ~breaker ?budget
        ~on_attempt:(fun ~attempt ~delay_s e ->
          Logs.warn (fun m ->
              m "session attempt %d failed (%s); retrying in %.2f s" attempt
                (Printexc.to_string e) delay_s))
        ~classify:(function
          | Ppst_transport.Channel.Busy { retry_after_s } ->
            `Retry_after retry_after_s
          | Ppst_transport.Channel.Connection_lost _
          | Ppst_transport.Channel.Frame_corrupt _
          (* a black-holed peer: the dial succeeded but the handshake
             never answered — retrying is what lets the wall budget
             (not this one stuck connection) decide when to give up *)
          | Ppst_transport.Channel.Timeout
          | Ppst_transport.Channel.Stalled -> `Retry
          | _ -> `Fail)
        connect_session
    with
    | Ppst_transport.Retry.Exhausted
        { attempts; last = Ppst_transport.Channel.Busy { retry_after_s } } ->
      Logs.err (fun m ->
          m "server still at capacity after %d attempt(s); retry in %.1f s"
            attempts retry_after_s);
      exit 75 (* EX_TEMPFAIL, as sysexits.h calls it *)
    | Ppst_transport.Retry.Exhausted { attempts; last } ->
      Logs.err (fun m ->
          m "no session after %d attempt(s): %s" attempts
            (Printexc.to_string last));
      exit 75
  in
  Ppst.Cost.set_jobs (Ppst.Client.cost client) jobs;
  Logs.info (fun m ->
      m "connected; server series length %d; session %a"
        (Ppst.Client.server_length client)
        Ppst.Params.pp_session (Ppst.Client.session client));
  let t0 = Unix.gettimeofday () in
  f client series;
  let elapsed = Unix.gettimeofday () -. t0 in
  Ppst.Client.finish client;
  Ppst_parallel.Pool.shutdown workers;
  (* the server ships its measured handler total in the final Bye_ack *)
  Printf.printf "server time (reported at close): %.3f s\n"
    (Ppst_transport.Channel.server_seconds channel);
  Printf.printf "elapsed: %.3f s\n" elapsed;
  Format.printf "communication: %a@." Ppst_transport.Stats.pp
    (Ppst_transport.Channel.stats channel);
  Format.printf "cost: %a@." Ppst.Cost.pp (Ppst.Client.cost client)

let kind_of_distance : _ -> Ppst.Client.distance_kind = function
  | `Dtw -> `Dtw
  | `Dfd -> `Dfd
  | `Erp -> `Erp
  | `Euclidean | `Subsequence -> `Euclidean

(* --- pair: one secure pairwise distance ------------------------------------ *)

let pair_body distance band gap wavefront search client series =
  if search then begin
    let metric = match distance with `Dfd -> `Dfd | _ -> `Dtw in
    let results = Ppst.Search.scan ~metric client in
    List.iter
      (fun r ->
        Printf.printf "record %d: distance %s\n" r.Ppst.Search.index
          (Ppst_bigint.Bigint.to_string r.Ppst.Search.distance))
      results;
    match results with
    | [] -> print_endline "empty catalog"
    | first :: rest ->
      let best =
        List.fold_left
          (fun b r ->
            if Ppst_bigint.Bigint.compare r.Ppst.Search.distance
                 b.Ppst.Search.distance < 0
            then r else b)
          first rest
      in
      Printf.printf "nearest: record %d (distance %s)\n" best.Ppst.Search.index
        (Ppst_bigint.Bigint.to_string best.Ppst.Search.distance)
  end
  else begin
    (match band with
     | Some _ when distance <> `Dtw ->
       failwith "--band only applies to --distance dtw"
     | _ -> ());
    let result =
      match distance with
      | `Dtw -> begin
        match band with
        | Some b -> Ppst.Secure_dtw_banded.run ~band:b client
        | None ->
          if wavefront then Ppst.Secure_dtw_wavefront.run_dtw client
          else Ppst.Secure_dtw.run client
      end
      | `Dfd ->
        if wavefront then Ppst.Secure_dtw_wavefront.run_dfd client
        else Ppst.Secure_dfd.run client
      | `Erp ->
        let d = Ppst_timeseries.Series.dimension series in
        Ppst.Secure_erp.run ~gap:(Array.make d gap) client
      | `Euclidean -> Ppst.Secure_euclidean.run client
      | `Subsequence ->
        let offset, best = Ppst.Secure_euclidean.best_window client in
        Printf.printf "best window offset = %d\n" offset;
        best
    in
    Printf.printf "secure %s distance (squared-Euclidean costs) = %s\n"
      (match distance with
       | `Dtw -> "DTW"
       | `Dfd -> "DFD"
       | `Erp -> "ERP"
       | `Euclidean -> "Euclidean"
       | `Subsequence -> "best-window Euclidean")
      (Ppst_bigint.Bigint.to_string result)
  end

let budget_of_flag = function
  | None -> None
  | Some s ->
    if s <= 0.0 then failwith "--budget-s must be positive";
    Some (Ppst_transport.Retry.Budget.create ~budget_s:s ())

let run_pair host port series_file distance k band gap budget_s wavefront
    search seed jobs retries verbose log_level log_json trace_out =
  setup verbose log_level log_json trace_out;
  let budget = budget_of_flag budget_s in
  with_session ~host ~port ~k ~seed ~jobs ~retries ?budget ~query:false
    ~distance:(kind_of_distance distance) ~series_file
    (pair_body distance band gap wavefront search)

(* --- query: secure 1-vs-N catalog search ----------------------------------- *)

let run_query host port series_file distance k band gap top within_r segments
    budget_s candidate_budget_s wavefront seed jobs retries verbose log_level
    log_json trace_out =
  setup verbose log_level log_json trace_out;
  if top < 1 then failwith "--top must be >= 1";
  let budget = budget_of_flag budget_s in
  (* Partial results terminate the process with 77 — but only after the
     session has been closed and the accounting printed, so the flag is
     carried out of the session body. *)
  let partial = ref false in
  with_session ~host ~port ~k ~seed ~jobs ~retries ?budget ~query:true
    ~distance:(kind_of_distance distance) ~series_file
    (fun client series ->
      if not (Ppst.Client.catalog_capable client) then
        failwith
          "server does not grant the catalog capability (too old, or catalog \
           queries disabled)";
      let strategy = if wavefront then `Wavefront else `Full in
      let spec =
        match distance with
        | `Dtw -> Ppst.Protocol.spec ?band ~strategy `Dtw
        | `Dfd -> Ppst.Protocol.spec ?band ~strategy `Dfd
        | `Erp ->
          let d = Ppst_timeseries.Series.dimension series in
          Ppst.Protocol.spec ~gap:(Array.make d gap) `Erp
        | `Euclidean -> Ppst.Protocol.spec `Euclidean
        | `Subsequence -> failwith "query does not support subsequence"
      in
      let report =
        match within_r with
        | Some r ->
          Ppst.Query.within ?segments ?budget ?candidate_budget_s ~spec
            ~radius:(Ppst_bigint.Bigint.of_int r) client
        | None ->
          Ppst.Query.top_k ?segments ?budget ?candidate_budget_s ~spec ~k:top
            client
      in
      Array.iter
        (fun (h : Ppst.Query.hit) ->
          Printf.printf "hit: record %d (id %s) distance %s\n"
            h.Ppst.Query.index h.Ppst.Query.id
            (Ppst_bigint.Bigint.to_string h.Ppst.Query.distance))
        report.Ppst.Query.hits;
      if Array.length report.Ppst.Query.hits = 0 then
        print_endline "no records within the radius";
      Printf.printf
        "catalog: %d candidate(s), %d pruned by the secure lower bound, %d \
         exact run(s)\n"
        report.Ppst.Query.total report.Ppst.Query.pruned
        report.Ppst.Query.evaluated;
      (* Greppable one-line-per-candidate summary of everything the query
         could not resolve; distinct exit code so scripts never mistake a
         partial answer for a complete one. *)
      let inc = report.Ppst.Query.incomplete in
      if Array.length inc > 0 then begin
        Array.iter
          (fun (c : Ppst.Query.incomplete) ->
            Printf.printf "incomplete: idx=%d id=%s reason=%s\n"
              c.Ppst.Query.index c.Ppst.Query.id
              (Ppst.Query.reason_to_string c.Ppst.Query.reason))
          inc;
        Printf.printf "incomplete: %d of %d candidate(s) unresolved\n"
          (Array.length inc) report.Ppst.Query.total;
        partial := true
      end);
  if !partial then exit 77

(* --- argument terms --------------------------------------------------------- *)

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc:"Server host.")

let port =
  Arg.(value & opt int 7788 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let series_file_opt =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SERIES.csv"
         ~doc:"Client time series (CSV).  Required except with --stats.")

let series_file_req =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SERIES.csv"
         ~doc:"Client time series (CSV).")

let distance =
  let enum_conv =
    Arg.enum
      [ ("dtw", `Dtw); ("dfd", `Dfd); ("erp", `Erp); ("euclidean", `Euclidean);
        ("subsequence", `Subsequence) ]
  in
  Arg.(value & opt enum_conv `Dtw & info [ "d"; "distance" ]
         ~docv:"dtw|dfd|erp|euclidean|subsequence" ~doc:"Distance function.")

let query_distance =
  let enum_conv =
    Arg.enum
      [ ("dtw", `Dtw); ("dfd", `Dfd); ("erp", `Erp); ("euclidean", `Euclidean) ]
  in
  Arg.(value & opt enum_conv `Dtw & info [ "d"; "distance" ]
         ~docv:"dtw|dfd|erp|euclidean" ~doc:"Distance function.")

let band =
  Arg.(value & opt (some int) None & info [ "band" ] ~docv:"B"
         ~doc:"Sakoe-Chiba band for DTW (unconstrained when omitted).")

let gap =
  Arg.(value & opt int 0 & info [ "gap" ] ~docv:"G"
         ~doc:"ERP gap element value (applied to every coordinate).")

let search =
  Arg.(value & flag & info [ "search" ]
         ~doc:"Scan every record in the server's catalog and report the nearest.")

let wavefront =
  Arg.(value & flag & info [ "wavefront" ]
         ~doc:"Batch each DP anti-diagonal into one round trip (big win on real networks).")

let top =
  Arg.(value & opt int 1 & info [ "top" ] ~docv:"K"
         ~doc:"Report the $(docv) nearest catalog records.")

let within_r =
  Arg.(value & opt (some int) None & info [ "within" ] ~docv:"R"
         ~doc:"Report every record within squared distance $(docv) instead of the nearest --top.")

let segments =
  Arg.(value & opt (some int) None & info [ "segments" ] ~docv:"S"
         ~doc:"Pruning sketch segments (default min(8, series length); more                segments prune harder but cost more per candidate).")

let budget_s =
  Arg.(value & opt (some float) None & info [ "budget-s" ] ~docv:"SECONDS"
         ~doc:"End-to-end wall budget for the whole operation: connects,                retries, every round and every reconnect+resume recovery                stop at the deadline.  Exit 124 when it runs out before the                query completes.")

let candidate_budget_s =
  Arg.(value & opt (some float) None & info [ "candidate-budget-s" ] ~docv:"SECONDS"
         ~doc:"Per-candidate wall budget inside a catalog query: a                candidate that cannot be resolved within $(docv) seconds is                skipped and reported as incomplete instead of stalling the                whole query.")

let k =
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Random-set size for the masking rounds (paper default 10).")

let seed =
  Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic randomness seed (testing only).")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domain worker pool size for Paillier batch work (1 = sequential).")

let retries =
  Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N"
         ~doc:"Attempts to establish (and, mid-session, to resume) the                session before giving up; exponential backoff with jitter                between attempts, honouring the server's Busy hint.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Fetch and print the server's live metrics snapshot, then exit (no protocol session).")

let health =
  Arg.(value & flag & info [ "health" ]
         ~doc:"Readiness probe: print the server's health (answered even at                capacity and while shedding) and exit with its status                (0 ready, 1 at capacity, 2 shedding, 3 degraded —                durability lost).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let log_level =
  Arg.(value & opt string "quiet" & info [ "log-level" ] ~docv:"quiet|info|debug"
         ~doc:"Telemetry stderr verbosity: spans and counters only (never protocol values).")

let log_json =
  Arg.(value & flag & info [ "log-json" ]
         ~doc:"Emit stderr telemetry as JSON lines instead of pretty text.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Append every telemetry event (debug level) as JSON lines to $(docv); read it back with ppst_analyze trace.")

(* --- the legacy flag-style default command ---------------------------------- *)

let run_legacy host port series_file distance k band gap budget_s search
    wavefront stats health seed jobs retries verbose log_level log_json
    trace_out =
  prerr_endline
    "ppst_client: note: the flag-style interface is deprecated; use the \
     verbs: pair, query, catalog, stats, health (see --help)";
  setup verbose log_level log_json trace_out;
  if stats then begin
    fetch_stats host port;
    exit 0
  end;
  if health then exit (fetch_health host port);
  let series_file =
    match series_file with
    | Some f -> f
    | None -> failwith "SERIES.csv is required unless --stats is given"
  in
  run_pair host port series_file distance k band gap budget_s wavefront search
    seed jobs retries verbose log_level log_json trace_out

(* --- commands ---------------------------------------------------------------- *)

let common_tail = Term.(const ()) (* placeholder for readability *)

let pair_cmd =
  let doc = "run one secure pairwise distance against the server's series" in
  Cmd.v (Cmd.info "pair" ~doc)
    Term.(const run_pair $ host $ port $ series_file_req $ distance $ k $ band
          $ gap $ budget_s $ wavefront $ search $ seed $ jobs $ retries
          $ verbose $ log_level $ log_json $ trace_out)

let query_cmd =
  let doc =
    "secure 1-vs-N catalog search: prune candidates with an encrypted lower \
     bound, run the exact protocol on the survivors"
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run_query $ host $ port $ series_file_req $ query_distance $ k
          $ band $ gap $ top $ within_r $ segments $ budget_s
          $ candidate_budget_s $ wavefront $ seed $ jobs $ retries $ verbose
          $ log_level $ log_json $ trace_out)

let catalog_cmd =
  let doc = "list the server's catalog (index, id, length per record)" in
  let run_catalog host port verbose log_level log_json trace_out =
    setup verbose log_level log_json trace_out;
    fetch_catalog host port
  in
  Cmd.v (Cmd.info "catalog" ~doc)
    Term.(const run_catalog $ host $ port $ verbose $ log_level $ log_json
          $ trace_out)

let stats_cmd =
  let doc = "fetch and print the server's live metrics snapshot" in
  let run_stats host port verbose log_level log_json trace_out =
    setup verbose log_level log_json trace_out;
    fetch_stats host port
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run_stats $ host $ port $ verbose $ log_level $ log_json
          $ trace_out)

let metrics_cmd =
  let doc = "fetch the server's OpenMetrics exposition page (counters, \
             windowed rates and quantiles)" in
  let run_metrics host port verbose log_level log_json trace_out =
    setup verbose log_level log_json trace_out;
    fetch_metrics host port
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const run_metrics $ host $ port $ verbose $ log_level $ log_json
          $ trace_out)

let health_cmd =
  let doc =
    "readiness probe (exit 0 ready, 1 at capacity, 2 shedding, 3 degraded)"
  in
  let run_health host port verbose log_level log_json trace_out =
    setup verbose log_level log_json trace_out;
    exit (fetch_health host port)
  in
  Cmd.v (Cmd.info "health" ~doc)
    Term.(const run_health $ host $ port $ verbose $ log_level $ log_json
          $ trace_out)

let legacy_term =
  Term.(const run_legacy $ host $ port $ series_file_opt $ distance $ k $ band
        $ gap $ budget_s $ search $ wavefront $ stats $ health $ seed $ jobs
        $ retries $ verbose $ log_level $ log_json $ trace_out)

let doc = "secure time-series similarity client (series X owner, evaluator)"

let group_cmd =
  ignore common_tail;
  Cmd.group
    (Cmd.info "ppst_client" ~doc)
    [ pair_cmd; query_cmd; catalog_cmd; stats_cmd; metrics_cmd; health_cmd ]

(* The historical flat interface, parsed exactly as before the verbs
   existed.  Cmd.group would reject `ppst_client series.csv --search'
   ("unknown command"), so dispatch on argv(1) ourselves: anything that
   is not a verb (or --help/--version) replays through the legacy
   parser, which prints a one-line deprecation notice and delegates. *)
let legacy_cmd = Cmd.v (Cmd.info "ppst_client" ~doc) legacy_term

let () =
  let is_verb s =
    List.mem s [ "pair"; "query"; "catalog"; "stats"; "metrics"; "health" ]
  in
  let use_group =
    Array.length Sys.argv <= 1
    || is_verb Sys.argv.(1)
    || Sys.argv.(1) = "--help" || Sys.argv.(1) = "--version"
    || (String.length Sys.argv.(1) > 7 && String.sub Sys.argv.(1) 0 7 = "--help=")
  in
  exit (Cmd.eval (if use_group then group_cmd else legacy_cmd))
