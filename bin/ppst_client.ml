(* The client party over TCP: owns a time series (CSV), connects to a
   ppst_server, runs the secure DTW or DFD protocol and prints the jointly
   revealed distance plus cost/communication accounting. *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

(* --stats: one Stats_req round against a running server, no session
   state needed.  Server_loop answers it even at capacity (the probe
   path), so this works exactly when an operator needs it most. *)
let fetch_stats host port =
  let channel = Ppst_transport.Channel.connect ~host ~port () in
  (match Ppst_transport.Channel.request channel Ppst_transport.Message.Stats_req with
   | Ppst_transport.Message.Stats_reply text -> print_string text
   | _ -> failwith "expected Stats_reply");
  Ppst_transport.Channel.close channel

(* --health: the readiness probe.  Like --stats it is answered even at
   capacity and even while the server sheds load, so it reports the
   truth exactly when the serving path is refusing work.  Exit status is
   the probe status (0 ready / 1 at capacity / 2 shedding). *)
let fetch_health host port =
  let channel = Ppst_transport.Channel.connect ~host ~port () in
  let status =
    match
      Ppst_transport.Channel.request channel Ppst_transport.Message.Health_req
    with
    | Ppst_transport.Message.Health_reply { status; active; capacity; retry_after_s } ->
      Printf.printf "status: %s\nactive: %d\ncapacity: %d\nretry_after_s: %.2f\n"
        (match status with
         | 0 -> "ready"
         | 1 -> "at-capacity"
         | _ -> "shedding")
        active capacity retry_after_s;
      status
    | _ -> failwith "expected Health_reply"
  in
  Ppst_transport.Channel.close channel;
  status

let run host port series_file distance k band gap search wavefront stats health
    seed jobs retries verbose log_level log_json trace_out =
  setup_logs verbose;
  Ppst_telemetry.Telemetry.configure ~level:log_level ~json:log_json
    ?trace_out ();
  if stats then begin
    fetch_stats host port;
    exit 0
  end;
  if health then exit (fetch_health host port);
  let series_file =
    match series_file with
    | Some f -> f
    | None -> failwith "SERIES.csv is required unless --stats is given"
  in
  if jobs < 1 then failwith "--jobs must be >= 1";
  if retries < 1 then failwith "--retries must be >= 1";
  let workers = Ppst_parallel.Pool.create jobs in
  let series = Ppst_timeseries.Csv.load series_file in
  let rng =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string s
    | None -> Ppst_rng.Secure_rng.system ()
  in
  let params = Ppst.Params.make ~k () in
  let max_value = Stdlib.max 1 (Ppst_timeseries.Series.max_abs_value series) in
  let kind : Ppst.Client.distance_kind =
    match distance with
    | `Dtw -> `Dtw
    | `Dfd -> `Dfd
    | `Erp -> `Erp
    | `Euclidean | `Subsequence -> `Euclidean
  in
  (* One backoff policy for every way a session can fail to start:
     refused connects, a Busy server (its retry-after hint is honoured
     as a floor), a connection lost during the handshake.  The same
     policy then governs mid-session reconnect + resume inside the
     channel.  Backoff jitter gets its own rng stream so retries never
     perturb the protocol transcript of a --seed run. *)
  let policy =
    { Ppst_transport.Retry.default_policy with max_attempts = retries }
  in
  (* The breaker turns a run of shed answers into local waiting: after
     consecutive Busy/throttle verdicts it opens and later attempts
     sleep out the server's hinted cooldown without dialling in — one
     probe (half-open) tests recovery instead of a reconnect stampede. *)
  let breaker = Ppst_transport.Retry.Breaker.create () in
  let jitter_rng =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string (s ^ "/backoff")
    | None -> Ppst_rng.Secure_rng.system ()
  in
  (* A quota rejection is a policy verdict, not a transient fault: the
     server said this session's declared shape exceeds its admission
     limits, so retrying is pointless.  Report which quota and exit with
     EX_UNAVAILABLE so scripts can tell it from a crypto failure. *)
  let quota_fatal f =
    try f ()
    with Ppst_transport.Channel.Quota_exceeded { quota; limit; requested } ->
      Logs.err (fun m ->
          m "rejected by server admission control: %s quota (limit %d, requested %d)"
            quota limit requested);
      exit 69
  in
  quota_fatal @@ fun () ->
  let connect_session () =
    let channel =
      Ppst_transport.Channel.connect ~retry:policy ~rng:jitter_rng ~host ~port ()
    in
    try
      ( channel,
        Ppst.Client.connect ~params ~workers ~rng ~series ~max_value
          ~distance:kind channel )
    with e ->
      (try Ppst_transport.Channel.close channel with _ -> ());
      raise e
  in
  let channel, client =
    try
      Ppst_transport.Retry.with_retry ~policy ~rng:jitter_rng ~breaker
        ~on_attempt:(fun ~attempt ~delay_s e ->
          Logs.warn (fun m ->
              m "session attempt %d failed (%s); retrying in %.2f s" attempt
                (Printexc.to_string e) delay_s))
        ~classify:(function
          | Ppst_transport.Channel.Busy { retry_after_s } ->
            `Retry_after retry_after_s
          | Ppst_transport.Channel.Connection_lost _
          | Ppst_transport.Channel.Frame_corrupt _ -> `Retry
          | _ -> `Fail)
        connect_session
    with
    | Ppst_transport.Retry.Exhausted
        { attempts; last = Ppst_transport.Channel.Busy { retry_after_s } } ->
      Logs.err (fun m ->
          m "server still at capacity after %d attempt(s); retry in %.1f s"
            attempts retry_after_s);
      exit 75 (* EX_TEMPFAIL, as sysexits.h calls it *)
    | Ppst_transport.Retry.Exhausted { attempts; last } ->
      Logs.err (fun m ->
          m "no session after %d attempt(s): %s" attempts
            (Printexc.to_string last));
      exit 75
  in
  Ppst.Cost.set_jobs (Ppst.Client.cost client) jobs;
  Logs.info (fun m ->
      m "connected; server series length %d; session %a"
        (Ppst.Client.server_length client)
        Ppst.Params.pp_session (Ppst.Client.session client));
  let t0 = Unix.gettimeofday () in
  (if search then begin
     let metric = match distance with `Dfd -> `Dfd | _ -> `Dtw in
     let results = Ppst.Search.scan ~metric client in
     List.iter
       (fun r ->
         Printf.printf "record %d: distance %s\n" r.Ppst.Search.index
           (Ppst_bigint.Bigint.to_string r.Ppst.Search.distance))
       results;
     match results with
     | [] -> print_endline "empty catalog"
     | first :: rest ->
       let best =
         List.fold_left
           (fun b r ->
             if Ppst_bigint.Bigint.compare r.Ppst.Search.distance
                  b.Ppst.Search.distance < 0
             then r else b)
           first rest
       in
       Printf.printf "nearest: record %d (distance %s)\n" best.Ppst.Search.index
         (Ppst_bigint.Bigint.to_string best.Ppst.Search.distance)
   end
   else begin
     (match band with
      | Some _ when distance <> `Dtw ->
        failwith "--band only applies to --distance dtw"
      | _ -> ());
     let result =
       match distance with
       | `Dtw -> begin
         match band with
         | Some b -> Ppst.Secure_dtw_banded.run ~band:b client
         | None ->
           if wavefront then Ppst.Secure_dtw_wavefront.run_dtw client
           else Ppst.Secure_dtw.run client
       end
       | `Dfd ->
         if wavefront then Ppst.Secure_dtw_wavefront.run_dfd client
         else Ppst.Secure_dfd.run client
       | `Erp ->
         let d = Ppst_timeseries.Series.dimension series in
         Ppst.Secure_erp.run ~gap:(Array.make d gap) client
       | `Euclidean -> Ppst.Secure_euclidean.run client
       | `Subsequence ->
         let offset, best = Ppst.Secure_euclidean.best_window client in
         Printf.printf "best window offset = %d\n" offset;
         best
     in
     Printf.printf "secure %s distance (squared-Euclidean costs) = %s\n"
       (match distance with
        | `Dtw -> "DTW"
        | `Dfd -> "DFD"
        | `Erp -> "ERP"
        | `Euclidean -> "Euclidean"
        | `Subsequence -> "best-window Euclidean")
       (Ppst_bigint.Bigint.to_string result)
   end);
  let elapsed = Unix.gettimeofday () -. t0 in
  Ppst.Client.finish client;
  Ppst_parallel.Pool.shutdown workers;
  (* the server ships its measured handler total in the final Bye_ack *)
  Printf.printf "server time (reported at close): %.3f s\n"
    (Ppst_transport.Channel.server_seconds channel);
  Printf.printf "elapsed: %.3f s\n" elapsed;
  Format.printf "communication: %a@." Ppst_transport.Stats.pp
    (Ppst_transport.Channel.stats channel);
  Format.printf "cost: %a@." Ppst.Cost.pp (Ppst.Client.cost client)

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc:"Server host.")

let port =
  Arg.(value & opt int 7788 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let series_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SERIES.csv"
         ~doc:"Client time series (CSV).  Required except with --stats.")

let distance =
  let enum_conv =
    Arg.enum
      [ ("dtw", `Dtw); ("dfd", `Dfd); ("erp", `Erp); ("euclidean", `Euclidean);
        ("subsequence", `Subsequence) ]
  in
  Arg.(value & opt enum_conv `Dtw & info [ "d"; "distance" ]
         ~docv:"dtw|dfd|erp|euclidean|subsequence" ~doc:"Distance function.")

let band =
  Arg.(value & opt (some int) None & info [ "band" ] ~docv:"B"
         ~doc:"Sakoe-Chiba band for DTW (unconstrained when omitted).")

let gap =
  Arg.(value & opt int 0 & info [ "gap" ] ~docv:"G"
         ~doc:"ERP gap element value (applied to every coordinate).")

let search =
  Arg.(value & flag & info [ "search" ]
         ~doc:"Scan every record in the server's catalog and report the nearest.")

let wavefront =
  Arg.(value & flag & info [ "wavefront" ]
         ~doc:"Batch each DP anti-diagonal into one round trip (big win on real networks).")

let k =
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Random-set size for the masking rounds (paper default 10).")

let seed =
  Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic randomness seed (testing only).")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domain worker pool size for Paillier batch work (1 = sequential).")

let retries =
  Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N"
         ~doc:"Attempts to establish (and, mid-session, to resume) the                session before giving up; exponential backoff with jitter                between attempts, honouring the server's Busy hint.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Fetch and print the server's live metrics snapshot, then exit (no protocol session).")

let health =
  Arg.(value & flag & info [ "health" ]
         ~doc:"Readiness probe: print the server's health (answered even at                capacity and while shedding) and exit with its status                (0 ready, 1 at capacity, 2 shedding).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let log_level =
  Arg.(value & opt string "quiet" & info [ "log-level" ] ~docv:"quiet|info|debug"
         ~doc:"Telemetry stderr verbosity: spans and counters only (never protocol values).")

let log_json =
  Arg.(value & flag & info [ "log-json" ]
         ~doc:"Emit stderr telemetry as JSON lines instead of pretty text.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Append every telemetry event (debug level) as JSON lines to $(docv); read it back with ppst_analyze trace.")

let cmd =
  let doc = "secure time-series similarity client (series X owner, evaluator)" in
  Cmd.v
    (Cmd.info "ppst_client" ~doc)
    Term.(const run $ host $ port $ series_file $ distance $ k $ band $ gap
          $ search $ wavefront $ stats $ health $ seed $ jobs $ retries
          $ verbose $ log_level $ log_json $ trace_out)

let () = exit (Cmd.eval cmd)
