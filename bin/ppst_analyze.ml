(* Security-analysis CLI: the paper's Section 5.3/5.4 numbers from the
   command line — entropy-preservation curves, gap-attack simulations,
   parameter planning, and the Section 4 matrix-inference demonstration. *)

open Cmdliner

let entropy gammas =
  Printf.printf "%12s %14s %16s %14s %12s\n" "Gamma" "uniform H" "masked-sum H"
    "min-entropy" "preserved";
  List.iter
    (fun bits ->
      let g = 1 lsl bits in
      Printf.printf "%12s %14.3f %16.3f %14.3f %11.1f%%\n"
        (Printf.sprintf "2^%d" bits)
        (Ppst.Entropy.uniform_entropy g)
        (Ppst.Entropy.triangular_sum_entropy g)
        (Ppst.Entropy.min_entropy g)
        (100.0 *. Ppst.Entropy.preserved_fraction g))
    gammas

let attack beta slacks k trials seed =
  Printf.printf "gap-attack simulation: beta=%d k=%d trials=%d (baseline %.4f)\n"
    beta k trials
    (Ppst.Leakage.guess_baseline ~k);
  Printf.printf "%12s %12s %12s\n" "gamma-beta" "successes" "rate";
  List.iter
    (fun slack ->
      let r =
        Ppst.Leakage.cluster_attack ~beta ~gamma:(beta + slack) ~k ~trials ~seed
      in
      Printf.printf "%12d %12d %12.4f%s\n" slack r.Ppst.Leakage.successes
        r.Ppst.Leakage.rate
        (let alpha =
           let rec lg v a = if v <= 1 then a else lg (v / 2) (a + 1) in
           lg k 0
         in
         if slack > 0 && slack < alpha then "   (valid per Section 5.3)"
         else "   (violates 0 < gamma-beta < alpha)"))
    slacks

let plan max_value dimension m n key_bits k slack distance =
  let rng = Ppst_rng.Secure_rng.system () in
  let pk, _ = Ppst_paillier.Paillier.keygen ~bits:key_bits rng in
  let params = Ppst.Params.make ~key_bits ~k ~gamma_slack:slack () in
  let kind =
    match distance with
    | "dtw" -> `Dtw
    | "dfd" -> `Dfd
    | "erp" -> `Erp
    | "euclidean" -> `Euclidean
    | other -> failwith ("unknown distance: " ^ other)
  in
  match
    Ppst.Params.plan params ~max_value ~dimension ~client_length:m
      ~server_length:n ~modulus:pk.Ppst_paillier.Paillier.n ~distance:kind
  with
  | session ->
    Format.printf "parameters accepted:@.%a@." Ppst.Params.pp_session session;
    Printf.printf "communication estimate (%s): %d values\n" distance
      (match kind with
       | (`Dtw | `Dfd) as basic ->
         Ppst.Protocol.expected_values_transferred ~params ~m ~n ~d:dimension basic
       | _ -> -1)
  | exception Ppst.Params.Insecure reason ->
    Printf.printf "REJECTED: %s\n" reason;
    exit 1

let infer () =
  (* the Section 4 demonstration on the paper's own example *)
  let module S = Ppst_timeseries.Series in
  let module D = Ppst_timeseries.Distance in
  let x = S.of_list [ 3; 4; 5; 4; 6; 7 ] and y = S.of_list [ 2; 4; 6; 5; 7 ] in
  Printf.printf "client series X = (3,4,5,4,6,7); hidden server series Y = ?\n";
  Printf.printf "suppose the DP matrix leaked in plaintext (paper Figure 1):\n";
  let matrix = D.dtw_sq_matrix x y in
  Array.iter
    (fun row ->
      Array.iter (fun v -> Printf.printf "%4d" v) row;
      print_newline ())
    matrix;
  match Ppst.Leakage.infer_server_series ~x ~matrix with
  | Some inferred ->
    Printf.printf "reconstructed Y = (%s) -- this is why the matrix is encrypted\n"
      (String.concat "," (Array.to_list (Array.map string_of_int inferred)))
  | None -> print_endline "reconstruction ambiguous"

(* JSONL telemetry traces (--trace-out on ppst_server/ppst_client/bench):
   per-phase and per-round aggregation, plus the leakage lint ci.sh runs
   over every trace it produces. *)
let trace file lint =
  let module R = Ppst_telemetry.Trace_reader in
  match R.read_file file with
  | exception R.Parse_error msg ->
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
  | entries ->
    let violations =
      List.filter_map
        (fun e -> Option.map (fun r -> (e.R.name, r)) (R.lint_entry e))
        entries
    in
    if lint then
      if violations = [] then
        Printf.printf "lint: %d record(s), no leakage-lint violations\n"
          (List.length entries)
      else begin
        List.iter
          (fun (name, reason) ->
            Printf.eprintf "lint: record %S: %s\n" name reason)
          violations;
        exit 1
      end;
    let opcode_name op =
      let module M = Ppst_transport.Message in
      if op = M.tag_hello then "hello"
      else if op = M.tag_phase1_request then "phase1"
      else if op = M.tag_min_request then "min"
      else if op = M.tag_max_request then "max"
      else if op = M.tag_reveal_request then "reveal"
      else if op = M.tag_bye then "bye"
      else if op = M.tag_catalog_request then "catalog"
      else if op = M.tag_select_request then "select"
      else if op = M.tag_batch_min_request then "batch-min"
      else if op = M.tag_batch_max_request then "batch-max"
      else if op = M.tag_stats_request then "stats"
      else Printf.sprintf "0x%02x" op
    in
    R.pp_summary ~opcode_name Format.std_formatter (R.summarize entries)

(* ---- cmdliner plumbing ---- *)

let entropy_cmd =
  let gammas =
    Arg.(value & opt (list int) [ 4; 8; 12; 16; 20 ]
         & info [ "gamma-bits" ] ~docv:"BITS,..." ~doc:"Offset-range sizes to tabulate (log2).")
  in
  Cmd.v (Cmd.info "entropy" ~doc:"Section 5.4 entropy-preservation table")
    Term.(const entropy $ gammas)

let attack_cmd =
  let beta = Arg.(value & opt int 20 & info [ "beta" ] ~doc:"Plaintext range (log2).") in
  let slacks =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16 ]
         & info [ "slacks" ] ~docv:"S,..." ~doc:"gamma - beta values to test.")
  in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Random-set size.") in
  let trials = Arg.(value & opt int 2000 & info [ "trials" ] ~doc:"Simulated rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  Cmd.v (Cmd.info "attack" ~doc:"Section 5.3 gap-attack simulation")
    Term.(const attack $ beta $ slacks $ k $ trials $ seed)

let plan_cmd =
  let max_value = Arg.(value & opt int 100 & info [ "max-value" ] ~doc:"Coordinate bound.") in
  let dimension = Arg.(value & opt int 1 & info [ "dim" ] ~doc:"Element dimension.") in
  let m = Arg.(value & opt int 100 & info [ "m" ] ~doc:"Client series length.") in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Server series length.") in
  let key_bits = Arg.(value & opt int 64 & info [ "bits" ] ~doc:"Paillier modulus size.") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Random-set size.") in
  let slack = Arg.(value & opt int 2 & info [ "slack" ] ~doc:"gamma - beta.") in
  let distance =
    Arg.(value & opt string "dtw" & info [ "distance" ] ~doc:"dtw, dfd, erp or euclidean.")
  in
  Cmd.v (Cmd.info "plan" ~doc:"validate masking parameters for a workload")
    Term.(const plan $ max_value $ dimension $ m $ n $ key_bits $ k $ slack $ distance)

let infer_cmd =
  Cmd.v (Cmd.info "infer" ~doc:"Section 4 matrix-inference attack demonstration")
    Term.(const infer $ const ())

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl"
         ~doc:"Telemetry trace written by --trace-out.")
  in
  let lint =
    Arg.(value & flag & info [ "lint" ]
         ~doc:"Leakage lint: fail if any record carries free-form strings or out-of-range numbers.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"summarize a JSONL telemetry trace (per-phase and per-round tables)")
    Term.(const trace $ file $ lint)

let () =
  let doc = "security analysis for the secure time-series protocols" in
  exit (Cmd.eval (Cmd.group (Cmd.info "ppst_analyze" ~doc)
                    [ entropy_cmd; attack_cmd; plan_cmd; infer_cmd; trace_cmd ]))
