(* Security-analysis CLI: the paper's Section 5.3/5.4 numbers from the
   command line — entropy-preservation curves, gap-attack simulations,
   parameter planning, and the Section 4 matrix-inference demonstration. *)

open Cmdliner

let entropy gammas =
  Printf.printf "%12s %14s %16s %14s %12s\n" "Gamma" "uniform H" "masked-sum H"
    "min-entropy" "preserved";
  List.iter
    (fun bits ->
      let g = 1 lsl bits in
      Printf.printf "%12s %14.3f %16.3f %14.3f %11.1f%%\n"
        (Printf.sprintf "2^%d" bits)
        (Ppst.Entropy.uniform_entropy g)
        (Ppst.Entropy.triangular_sum_entropy g)
        (Ppst.Entropy.min_entropy g)
        (100.0 *. Ppst.Entropy.preserved_fraction g))
    gammas

let attack beta slacks k trials seed =
  Printf.printf "gap-attack simulation: beta=%d k=%d trials=%d (baseline %.4f)\n"
    beta k trials
    (Ppst.Leakage.guess_baseline ~k);
  Printf.printf "%12s %12s %12s\n" "gamma-beta" "successes" "rate";
  List.iter
    (fun slack ->
      let r =
        Ppst.Leakage.cluster_attack ~beta ~gamma:(beta + slack) ~k ~trials ~seed
      in
      Printf.printf "%12d %12d %12.4f%s\n" slack r.Ppst.Leakage.successes
        r.Ppst.Leakage.rate
        (let alpha =
           let rec lg v a = if v <= 1 then a else lg (v / 2) (a + 1) in
           lg k 0
         in
         if slack > 0 && slack < alpha then "   (valid per Section 5.3)"
         else "   (violates 0 < gamma-beta < alpha)"))
    slacks

let plan max_value dimension m n key_bits k slack distance =
  let rng = Ppst_rng.Secure_rng.system () in
  let pk, _ = Ppst_paillier.Paillier.keygen ~bits:key_bits rng in
  let params = Ppst.Params.make ~key_bits ~k ~gamma_slack:slack () in
  let kind =
    match distance with
    | "dtw" -> `Dtw
    | "dfd" -> `Dfd
    | "erp" -> `Erp
    | "euclidean" -> `Euclidean
    | other -> failwith ("unknown distance: " ^ other)
  in
  match
    Ppst.Params.plan params ~max_value ~dimension ~client_length:m
      ~server_length:n ~modulus:pk.Ppst_paillier.Paillier.n ~distance:kind
  with
  | session ->
    Format.printf "parameters accepted:@.%a@." Ppst.Params.pp_session session;
    Printf.printf "communication estimate (%s): %d values\n" distance
      (match kind with
       | (`Dtw | `Dfd) as basic ->
         Ppst.Protocol.expected_values_transferred ~params ~m ~n ~d:dimension basic
       | _ -> -1)
  | exception Ppst.Params.Insecure reason ->
    Printf.printf "REJECTED: %s\n" reason;
    exit 1

let infer () =
  (* the Section 4 demonstration on the paper's own example *)
  let module S = Ppst_timeseries.Series in
  let module D = Ppst_timeseries.Distance in
  let x = S.of_list [ 3; 4; 5; 4; 6; 7 ] and y = S.of_list [ 2; 4; 6; 5; 7 ] in
  Printf.printf "client series X = (3,4,5,4,6,7); hidden server series Y = ?\n";
  Printf.printf "suppose the DP matrix leaked in plaintext (paper Figure 1):\n";
  let matrix = D.dtw_sq_matrix x y in
  Array.iter
    (fun row ->
      Array.iter (fun v -> Printf.printf "%4d" v) row;
      print_newline ())
    matrix;
  match Ppst.Leakage.infer_server_series ~x ~matrix with
  | Some inferred ->
    Printf.printf "reconstructed Y = (%s) -- this is why the matrix is encrypted\n"
      (String.concat "," (Array.to_list (Array.map string_of_int inferred)))
  | None -> print_endline "reconstruction ambiguous"

(* JSONL telemetry traces (--trace-out on ppst_server/ppst_client/bench):
   per-phase and per-round aggregation, plus the leakage lint ci.sh runs
   over every trace it produces. *)

let opcode_name op =
  let module M = Ppst_transport.Message in
  if op = M.tag_hello then "hello"
  else if op = M.tag_phase1_request then "phase1"
  else if op = M.tag_min_request then "min"
  else if op = M.tag_max_request then "max"
  else if op = M.tag_reveal_request then "reveal"
  else if op = M.tag_bye then "bye"
  else if op = M.tag_catalog_request then "catalog"
  else if op = M.tag_select_request then "select"
  else if op = M.tag_batch_min_request then "batch-min"
  else if op = M.tag_batch_max_request then "batch-max"
  else if op = M.tag_stats_request then "stats"
  else if op = M.tag_metrics_request then "metrics"
  else Printf.sprintf "0x%02x" op

(* Exit codes under --lint: 1 = leakage violation (hard failure), 3 = the
   trace tail was cut mid-record (a killed writer, not corruption) — CI can
   distinguish "leaky" from "merely incomplete". *)
let exit_truncated = 3

let read_trace file =
  let module R = Ppst_telemetry.Trace_reader in
  match R.read_file_partial file with
  | exception R.Parse_error msg ->
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
  | entries, tail ->
    (match tail with
     | R.Complete -> ()
     | R.Truncated { line; reason } ->
       Printf.eprintf
         "%s: warning: final record (line %d) is truncated: %s; \
          analyzing the %d complete record(s) before it\n"
         file line reason (List.length entries));
    (entries, tail)

let trace file lint =
  let module R = Ppst_telemetry.Trace_reader in
  let entries, tail = read_trace file in
  let truncated = tail <> R.Complete in
  let violations =
    List.filter_map
      (fun e -> Option.map (fun r -> (e.R.name, r)) (R.lint_entry e))
      entries
  in
  if lint then
    if violations = [] then
      Printf.printf "lint: %d record(s), no leakage-lint violations%s\n"
        (List.length entries)
        (if truncated then " (tail truncated)" else "")
    else begin
      List.iter
        (fun (name, reason) ->
          Printf.eprintf "lint: record %S: %s\n" name reason)
        violations;
      exit 1
    end;
  R.pp_summary ~opcode_name Format.std_formatter (R.summarize entries);
  if lint && truncated then exit exit_truncated

(* ---- trace diff: per-phase / per-round regression gate ---- *)

(* A regression needs both a relative excess beyond [threshold] and an
   absolute one beyond the floor: seeded runs repeat their byte counts
   exactly, but sub-floor latencies are scheduler noise, and the floors
   keep two runs of the same seed quiet while a genuine 2x per-phase
   slowdown still trips the relative test. *)
let diff base_file cand_file threshold latency_floor_ms byte_floor =
  let module R = Ppst_telemetry.Trace_reader in
  let summarize f = R.summarize (fst (read_trace f)) in
  let a = summarize base_file and b = summarize cand_file in
  let latency_floor = latency_floor_ms /. 1000.0 in
  let regressions = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  let check ~what ~floor ~old_v ~new_v =
    if new_v -. old_v > floor && new_v > old_v *. (1.0 +. threshold) then
      flag "%s: %.6g -> %.6g (+%.0f%%)" what old_v new_v
        (100.0 *. ((new_v /. Float.max old_v 1e-12) -. 1.0))
  in
  List.iter
    (fun (sb : R.span_row) ->
      match
        List.find_opt (fun (sa : R.span_row) -> sa.R.span_name = sb.R.span_name) a.R.spans
      with
      | None -> ()
      | Some sa ->
        check
          ~what:(Printf.sprintf "span %s total seconds" sb.R.span_name)
          ~floor:latency_floor ~old_v:sa.R.total_s ~new_v:sb.R.total_s)
    b.R.spans;
  List.iter
    (fun (rb : R.round_row) ->
      match
        List.find_opt (fun (ra : R.round_row) -> ra.R.opcode = rb.R.opcode) a.R.rounds
      with
      | None ->
        if rb.R.request_bytes + rb.R.reply_bytes > byte_floor then
          flag "round %s: absent from baseline (%d bytes)"
            (opcode_name rb.R.opcode)
            (rb.R.request_bytes + rb.R.reply_bytes)
      | Some ra ->
        check
          ~what:(Printf.sprintf "round %s latency seconds" (opcode_name rb.R.opcode))
          ~floor:latency_floor ~old_v:ra.R.latency_s ~new_v:rb.R.latency_s;
        check
          ~what:(Printf.sprintf "round %s bytes" (opcode_name rb.R.opcode))
          ~floor:(float_of_int byte_floor)
          ~old_v:(float_of_int (ra.R.request_bytes + ra.R.reply_bytes))
          ~new_v:(float_of_int (rb.R.request_bytes + rb.R.reply_bytes)))
    b.R.rounds;
  check ~what:"total round bytes" ~floor:(float_of_int byte_floor)
    ~old_v:(float_of_int a.R.total_round_bytes)
    ~new_v:(float_of_int b.R.total_round_bytes);
  check ~what:"total latency seconds" ~floor:latency_floor
    ~old_v:a.R.total_latency_s ~new_v:b.R.total_latency_s;
  match List.rev !regressions with
  | [] ->
    Printf.printf
      "diff: no regressions (%s -> %s, threshold +%.0f%%, floors %gms / %d bytes)\n"
      base_file cand_file (100.0 *. threshold) latency_floor_ms byte_floor
  | found ->
    List.iter (fun r -> Printf.eprintf "regression: %s\n" r) found;
    Printf.eprintf "diff: %d regression(s) beyond +%.0f%%\n" (List.length found)
      (100.0 *. threshold);
    exit 1

(* ---- bench report: flatten BENCH_*.json and optionally gate ---- *)

let flatten_numbers json =
  let module R = Ppst_telemetry.Trace_reader in
  let out = ref [] in
  let rec walk path = function
    | R.Num v -> out := (path, v) :: !out
    | R.Obj fields ->
      List.iter
        (fun (k, v) -> walk (if path = "" then k else path ^ "." ^ k) v)
        fields
    | R.Arr items ->
      List.iteri (fun i v -> walk (Printf.sprintf "%s[%d]" path i) v) items
    | R.Null | R.Bool _ | R.Str _ -> ()
  in
  walk "" json;
  List.rev !out

let load_bench file =
  let module R = Ppst_telemetry.Trace_reader in
  let ic = open_in_bin file in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match R.json_of_string text with
  | exception R.Parse_error msg ->
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
  | json -> flatten_numbers json

(* Only time-like leaves are gated against a baseline: byte and value
   counts move legitimately when the protocol changes shape, and the
   transcript-stability tests already pin those exactly. *)
let time_like path =
  let has sub =
    let n = String.length sub and m = String.length path in
    let rec at i = i + n <= m && (String.sub path i n = sub || at (i + 1)) in
    at 0
  in
  has "seconds" || has "wall" || has "latency"

let report strict baseline threshold files =
  if files = [] then begin
    Printf.eprintf "report: no bench files given\n";
    exit 2
  end;
  let worst = ref [] in
  List.iter
    (fun file ->
      let metrics = load_bench file in
      Printf.printf "== %s: %d numeric metric(s)\n" file (List.length metrics);
      List.iter
        (fun (path, v) ->
          if time_like path then Printf.printf "  %-56s %.6g\n" path v)
        metrics;
      match baseline with
      | None -> ()
      | Some dir ->
        let base_file = Filename.concat dir (Filename.basename file) in
        if Sys.file_exists base_file then begin
          let base = load_bench base_file in
          List.iter
            (fun (path, v) ->
              if time_like path then
                match List.assoc_opt path base with
                | Some bv when v > bv *. (1.0 +. threshold) && v -. bv > 0.005 ->
                  let line =
                    Printf.sprintf "%s: %s %.6g -> %.6g (+%.0f%%)"
                      (Filename.basename file) path bv v
                      (100.0 *. ((v /. Float.max bv 1e-12) -. 1.0))
                  in
                  Printf.printf "  REGRESSION %s\n" line;
                  worst := line :: !worst
                | _ -> ())
            metrics
        end
        else Printf.printf "  (no baseline %s)\n" base_file)
    files;
  match List.rev !worst with
  | [] -> ()
  | found ->
    Printf.printf "report: %d regression(s) beyond +%.0f%%\n" (List.length found)
      (100.0 *. threshold);
    (* Advisory by default — bench timings on shared CI hardware are too
       noisy to block on; --strict turns the same findings into a gate. *)
    if strict then exit 1

(* ---- cmdliner plumbing ---- *)

let entropy_cmd =
  let gammas =
    Arg.(value & opt (list int) [ 4; 8; 12; 16; 20 ]
         & info [ "gamma-bits" ] ~docv:"BITS,..." ~doc:"Offset-range sizes to tabulate (log2).")
  in
  Cmd.v (Cmd.info "entropy" ~doc:"Section 5.4 entropy-preservation table")
    Term.(const entropy $ gammas)

let attack_cmd =
  let beta = Arg.(value & opt int 20 & info [ "beta" ] ~doc:"Plaintext range (log2).") in
  let slacks =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16 ]
         & info [ "slacks" ] ~docv:"S,..." ~doc:"gamma - beta values to test.")
  in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Random-set size.") in
  let trials = Arg.(value & opt int 2000 & info [ "trials" ] ~doc:"Simulated rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  Cmd.v (Cmd.info "attack" ~doc:"Section 5.3 gap-attack simulation")
    Term.(const attack $ beta $ slacks $ k $ trials $ seed)

let plan_cmd =
  let max_value = Arg.(value & opt int 100 & info [ "max-value" ] ~doc:"Coordinate bound.") in
  let dimension = Arg.(value & opt int 1 & info [ "dim" ] ~doc:"Element dimension.") in
  let m = Arg.(value & opt int 100 & info [ "m" ] ~doc:"Client series length.") in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Server series length.") in
  let key_bits = Arg.(value & opt int 64 & info [ "bits" ] ~doc:"Paillier modulus size.") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Random-set size.") in
  let slack = Arg.(value & opt int 2 & info [ "slack" ] ~doc:"gamma - beta.") in
  let distance =
    Arg.(value & opt string "dtw" & info [ "distance" ] ~doc:"dtw, dfd, erp or euclidean.")
  in
  Cmd.v (Cmd.info "plan" ~doc:"validate masking parameters for a workload")
    Term.(const plan $ max_value $ dimension $ m $ n $ key_bits $ k $ slack $ distance)

let infer_cmd =
  Cmd.v (Cmd.info "infer" ~doc:"Section 4 matrix-inference attack demonstration")
    Term.(const infer $ const ())

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl"
         ~doc:"Telemetry trace written by --trace-out.")
  in
  let lint =
    Arg.(value & flag & info [ "lint" ]
         ~doc:"Leakage lint: fail if any record carries free-form strings or out-of-range numbers.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"summarize a JSONL telemetry trace (per-phase and per-round tables)")
    Term.(const trace $ file $ lint)

let diff_cmd =
  let base =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE.jsonl"
         ~doc:"Baseline telemetry trace.")
  in
  let cand =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE.jsonl"
         ~doc:"Candidate telemetry trace to compare against the baseline.")
  in
  let threshold =
    Arg.(value & opt float 0.6 & info [ "threshold" ] ~docv:"FRAC"
         ~doc:"Relative excess that counts as a regression (0.6 = +60%).")
  in
  let latency_floor =
    Arg.(value & opt float 5.0 & info [ "latency-floor-ms" ] ~docv:"MS"
         ~doc:"Ignore latency deltas smaller than this (scheduler noise).")
  in
  let byte_floor =
    Arg.(value & opt int 64 & info [ "byte-floor" ] ~docv:"BYTES"
         ~doc:"Ignore byte-count deltas smaller than this.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"compare two telemetry traces; exit 1 on per-phase latency or byte regressions")
    Term.(const diff $ base $ cand $ threshold $ latency_floor $ byte_floor)

let report_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"BENCH.json..."
         ~doc:"Benchmark result files (bench --out artifacts).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
         ~doc:"Exit nonzero on baseline regressions instead of reporting them.")
  in
  let baseline =
    Arg.(value & opt (some dir) None & info [ "baseline" ] ~docv:"DIR"
         ~doc:"Directory holding baseline copies of the same files to gate against.")
  in
  let threshold =
    Arg.(value & opt float 0.5 & info [ "threshold" ] ~docv:"FRAC"
         ~doc:"Relative excess that counts as a regression (0.5 = +50%).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"tabulate time-like metrics from BENCH_*.json; advisory unless --strict")
    Term.(const report $ strict $ baseline $ threshold $ files)

let () =
  let doc = "security analysis for the secure time-series protocols" in
  exit (Cmd.eval (Cmd.group (Cmd.info "ppst_analyze" ~doc)
                    [ entropy_cmd; attack_cmd; plan_cmd; infer_cmd; trace_cmd;
                      diff_cmd; report_cmd ]))
