(* The server party over TCP: owns a time series (CSV) and the Paillier
   secret key, and serves many concurrent protocol sessions through
   Ppst_transport.Server_loop.  SIGINT/SIGTERM drain in-flight sessions
   and print merged accounting before exit. *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

let run port series_file catalog_dir key_file max_value seed sessions concurrency
    workers spool_dir idle_timeout deadline jobs chaos_profile chaos_seed
    disk_chaos resume_ttl no_resume no_crc max_cells max_series_len max_dim
    max_session_bytes max_session_frames rate_limit rate_burst shed_watermark
    watchdog_timeout metrics_port no_metrics verbose log_level log_json
    trace_out =
  setup_logs verbose;
  Ppst_telemetry.Telemetry.configure ~level:log_level ~json:log_json
    ?trace_out ();
  if jobs < 1 then failwith "--jobs must be >= 1";
  if concurrency < 1 then failwith "--concurrency must be >= 1";
  if sessions < 0 then failwith "--sessions must be >= 0";
  if workers < 0 then failwith "--workers must be >= 0";
  if resume_ttl <= 0.0 then failwith "--resume-ttl-s must be positive";
  let positive name = function
    | Some v when v <= 0 -> failwith (name ^ " must be positive")
    | v -> v
  in
  let admission =
    {
      Ppst_transport.Admission.max_cells = positive "--max-cells" max_cells;
      max_series_len = positive "--max-series-len" max_series_len;
      max_dim = positive "--max-dim" max_dim;
      max_session_bytes = positive "--max-session-bytes" max_session_bytes;
      max_session_frames = positive "--max-session-frames" max_session_frames;
    }
  in
  let ratelimit =
    match rate_limit with
    | None -> None
    | Some rate ->
      if rate <= 0.0 then failwith "--rate-limit must be positive";
      let burst = Option.value rate_burst ~default:(Stdlib.max rate 1.0) in
      if burst < 1.0 then failwith "--rate-burst must be >= 1";
      Some { Ppst_transport.Ratelimit.rate_per_s = rate; burst }
  in
  (match shed_watermark with
   | Some w when w < 1 -> failwith "--shed-watermark must be >= 1"
   | _ -> ());
  (match watchdog_timeout with
   | Some s when s <= 0.0 -> failwith "--watchdog-timeout-s must be positive"
   | _ -> ());
  let fault_profile =
    match chaos_profile with
    | None -> None
    | Some text ->
      (match Ppst_transport.Faults.profile_of_string text with
       | Error msg -> failwith msg
       | Ok Ppst_transport.Faults.Off -> None
       | Ok profile ->
         (match profile with
          | Ppst_transport.Faults.Crash_at _
          | Ppst_transport.Faults.Crash_write_at _
            when workers = 0 ->
            failwith
              "--chaos-profile crash-at-N/crash-write-at-N requires \
               --workers >= 1: a single-process server would SIGKILL \
               itself with nobody left to restart it"
          | _ -> ());
         Logs.warn (fun m ->
             m "CHAOS MODE: injecting %s (seed %d) into every session"
               (Ppst_transport.Faults.profile_to_string profile)
               chaos_seed);
         Some profile)
  in
  let make_faults ~restarted =
    match fault_profile with
    | Some (Ppst_transport.Faults.Crash_at _ | Ppst_transport.Faults.Crash_write_at _)
      when restarted ->
      (* a replacement worker must not re-arm the one-shot crash, or the
         deployment crash-loops instead of failing over *)
      None
    | Some profile -> Some (Ppst_transport.Faults.create ~seed:chaos_seed profile)
    | None -> None
  in
  let faults = make_faults ~restarted:false in
  let disk_faults =
    match disk_chaos with
    | None -> None
    | Some text ->
      (match Ppst_transport.Faults.Disk.profile_of_string text with
       | Error msg -> failwith msg
       | Ok Ppst_transport.Faults.Disk.Off -> None
       | Ok profile ->
         Logs.warn (fun m ->
             m "CHAOS MODE: injecting %s into disk/fd operations"
               (Ppst_transport.Faults.Disk.profile_to_string profile));
         Some (Ppst_transport.Faults.Disk.create profile))
  in
  (* Boot-time spool probe: an unwritable spool is a configuration error
     and must fail the boot, not surface as a degraded server at the
     first mid-session snapshot.  (The probe runs without the chaos
     injector: --disk-chaos simulates faults appearing after boot.) *)
  (match spool_dir with
   | None -> ()
   | Some dir ->
     (match Ppst_transport.Spool.validate ~dir with
      | Ok () -> ()
      | Error msg -> failwith (Printf.sprintf "--spool-dir %s: %s" dir msg)));
  (* three sources, one shape: --catalog serves a whole directory as an
     id-keyed store; a CSV with blank-line-separated blocks is served as
     a multi-record database (similarity-search mode); a plain CSV as a
     single series *)
  let records, ids =
    match (catalog_dir, series_file) with
    | Some _, Some _ ->
      failwith "give either SERIES.csv or --catalog DIR, not both"
    | Some dir, None ->
      let store = Ppst_catalog.Store.load_dir dir in
      (Ppst_catalog.Store.records store, Some (Ppst_catalog.Store.ids store))
    | None, Some file ->
      (Array.of_list (Ppst_timeseries.Csv.load_many file), None)
    | None, None -> failwith "SERIES.csv is required unless --catalog is given"
  in
  if Array.length records = 0 then failwith "no series in input file";
  let rng_of suffix =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string (s ^ suffix)
    | None -> Ppst_rng.Secure_rng.system ()
  in
  let max_value =
    match max_value with
    | Some v -> v
    | None ->
      Array.fold_left
        (fun acc s -> Stdlib.max acc (Ppst_timeseries.Series.max_abs_value s))
        1 records
  in
  (* One key for the whole process; every session gets its own Server.t
     (its own record selection, counters and rng stream) sharing it. *)
  let sk =
    match key_file with
    | Some path ->
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let _pk, sk = Ppst_paillier.Paillier.private_key_of_string text in
      sk
    | None ->
      let bits = Ppst.Params.default.Ppst.Params.key_bits in
      Logs.info (fun m -> m "no --key given; generating a fresh %d-bit key" bits);
      let _pk, sk = Ppst_paillier.Paillier.keygen ~bits (rng_of "/keygen") in
      sk
  in
  (* The Domain pool has one work queue: safe to share only when a single
     session runs at a time.  Under real concurrency each session computes
     sequentially and the parallelism comes from the sessions themselves.
     Created lazily per process: in workers mode the supervisor parent
     must stay thread- and domain-free to fork safely, so only the
     worker children (post-fork) build their pools. *)
  let make_pool () =
    if concurrency = 1 && jobs > 1 then Some (Ppst_parallel.Pool.create jobs)
    else begin
      if jobs > 1 then
        Logs.warn (fun m ->
            m "--jobs %d ignored: per-session Domain pools are unsafe at \
               --concurrency %d (sessions already run in parallel)"
              jobs concurrency);
      None
    end
  in
  let total_ops = { Ppst.Cost.encryptions = 0; decryptions = 0; homomorphic = 0 } in
  let ops_mutex = Mutex.create () in
  let merge_ops (ops : Ppst.Cost.ops) =
    Mutex.lock ops_mutex;
    total_ops.Ppst.Cost.encryptions <-
      total_ops.Ppst.Cost.encryptions + ops.Ppst.Cost.encryptions;
    total_ops.Ppst.Cost.decryptions <-
      total_ops.Ppst.Cost.decryptions + ops.Ppst.Cost.decryptions;
    total_ops.Ppst.Cost.homomorphic <-
      total_ops.Ppst.Cost.homomorphic + ops.Ppst.Cost.homomorphic;
    Mutex.unlock ops_mutex
  in
  let make_handler pool ~id ~peer:_ =
    let workers =
      match pool with
      | Some pool -> pool
      | None -> Ppst_parallel.Pool.sequential
    in
    let server =
      Ppst.Server.create_db_with_key ?ids ~workers ~sk
        ~rng:(rng_of (Printf.sprintf "/session-%d" id))
        ~records ~max_value ()
    in
    let respond req =
      let reply = Ppst.Server.handle server req in
      (match req with
       | Ppst_transport.Message.Bye ->
         (* last request of the session: fold this session's counters in *)
         merge_ops (Ppst.Server.ops server)
       | _ -> ());
      reply
    in
    (* Crash safety: the loop spools this after every counted round, and
       replays it into a fresh server when the session fails over to
       another worker process. *)
    {
      Ppst_transport.Server_loop.respond;
      snapshot = Some (fun () -> Ppst.Server.export_state server);
      restore = Some (fun blob -> Ppst.Server.restore_state server blob);
    }
  in
  let on_session_end (s : Ppst_transport.Server_loop.session) =
    Logs.info (fun m ->
        m "session %d (%s) ended: %s, %d requests, %.3f s in handler" s.id
          s.peer
          (match s.outcome with
           | Ppst_transport.Server_loop.Completed -> "completed"
           | Idle_timeout -> "idle timeout"
           | Deadline_exceeded -> "deadline exceeded"
           | Client_error msg -> "client error: " ^ msg
           | Disconnected -> "disconnected (resumable)"
           | Quota_rejected quota -> "quota exceeded: " ^ quota
           | Slow_peer -> "slow peer (watchdog)")
          s.requests s.handler_seconds)
  in
  let config =
    {
      Ppst_transport.Server_loop.default_config with
      max_sessions = concurrency;
      max_total = (if sessions = 0 then None else Some sessions);
      spool_dir;
      idle_timeout_s = idle_timeout;
      deadline_s = deadline;
      resume_ttl_s = resume_ttl;
      enable_resume = not no_resume;
      enable_crc = not no_crc;
      faults;
      disk_faults;
      admission;
      ratelimit;
      shed_watermark;
      enable_metrics = not no_metrics;
      watchdog_timeout_s =
        (match watchdog_timeout with
         | Some _ as t -> t
         | None ->
           Ppst_transport.Server_loop.default_config
             .Ppst_transport.Server_loop.watchdog_timeout_s);
    }
  in
  if workers > 0 then begin
    (* Supervised multi-process serving: parent owns the listener and
       shards connections across forked workers; a SIGKILLed worker is
       re-forked and its spooled sessions fail over to its siblings. *)
    if metrics_port <> None then
      failwith "--metrics-port is not available with --workers (metrics are per-process)";
    if sessions > 0 then
      Logs.warn (fun m ->
          m "--sessions %d ignored with --workers: the supervisor serves \
             until SIGTERM/SIGINT" sessions);
    if spool_dir = None then
      Logs.warn (fun m ->
          m "--workers without --spool-dir: sessions cannot fail over \
             across worker crashes (resume state is per-process memory)");
    (* All worker generations share one boot id (minted in the parent
       before any fork), so a token minted before a worker crash still
       names this deployment's incarnation and fails over instead of
       being rejected as stale.  The id always comes from the system
       RNG — never from --seed — so every full server restart mints a
       fresh incarnation even in seeded runs, and tokens from the
       previous incarnation hit the typed server-restarted reject
       instead of burning the client's retry budget on the retryable
       "unknown or expired" path. *)
    let boot_id =
      Ppst_rng.Secure_rng.bytes (Ppst_rng.Secure_rng.system ()) 4
    in
    let listener, bound_port = Ppst_transport.Supervisor.bind ~port in
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    let worker_config = { config with max_total = None } in
    let worker_main ~slot ~restarted ~control =
      let config = { worker_config with faults = make_faults ~restarted } in
      let rng =
        match seed with
        | Some s ->
          Some
            (Ppst_rng.Secure_rng.of_seed_string
               (Printf.sprintf "%s/worker-%d" s slot))
        | None -> None
      in
      let pool = make_pool () in
      let loop =
        Ppst_transport.Server_loop.create_worker ~config ~on_session_end ?rng
          ~boot_id ~handler:(make_handler pool) ()
      in
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle
           (fun _ -> Ppst_transport.Server_loop.shutdown loop));
      let extra () =
        Mutex.lock ops_mutex;
        let w = Ppst_transport.Wire.writer () in
        Ppst_transport.Wire.put_u32 w total_ops.Ppst.Cost.encryptions;
        Ppst_transport.Wire.put_u32 w total_ops.Ppst.Cost.decryptions;
        Ppst_transport.Wire.put_u32 w total_ops.Ppst.Cost.homomorphic;
        Mutex.unlock ops_mutex;
        Ppst_transport.Wire.contents w
      in
      Fun.protect
        ~finally:(fun () ->
          match pool with
          | Some pool -> Ppst_parallel.Pool.shutdown pool
          | None -> ())
        (fun () -> Ppst_transport.Server_loop.run_worker ~extra loop ~control)
    in
    let on_event = function
      | Ppst_transport.Supervisor.Worker_started { slot; pid; restarts } ->
        if restarts = 0 then Format.printf "worker %d: pid %d@." slot pid
        else
          Logs.info (fun m ->
              m "worker %d restarted: pid %d (restart #%d)" slot pid restarts)
      | Ppst_transport.Supervisor.Worker_exited { slot; pid; status; restarting }
        ->
        let signal_name s =
          if s = Sys.sigkill then "SIGKILL"
          else if s = Sys.sigterm then "SIGTERM"
          else if s = Sys.sigint then "SIGINT"
          else if s = Sys.sigsegv then "SIGSEGV"
          else if s = Sys.sigabrt then "SIGABRT"
          else string_of_int s
        in
        Logs.warn (fun m ->
            m "worker %d (pid %d) %s%s" slot pid
              (match status with
               | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
               | Unix.WSIGNALED s ->
                 Printf.sprintf "killed by %s" (signal_name s)
               | Unix.WSTOPPED s ->
                 Printf.sprintf "stopped by %s" (signal_name s))
              (if restarting then "; restarting" else ""))
    in
    Logs.info (fun m ->
        m "serving %d record(s), dim %d, max value %d, on port %d \
           (%d workers, concurrency %d each%s)"
          (Array.length records)
          (Ppst_timeseries.Series.dimension records.(0))
          max_value bound_port workers concurrency
          (match spool_dir with
           | Some dir -> Printf.sprintf ", spool %s" dir
           | None -> ""));
    Format.printf "listening on port %d with %d workers@." bound_port workers;
    let summary =
      Ppst_transport.Supervisor.run ~on_event
        ~drain_timeout_s:config.Ppst_transport.Server_loop.drain_timeout_s
        ?disk_faults ~stop ~listener ~workers ~worker_main ()
    in
    (* Merge each worker's final drain report into the process totals the
       single-process path prints, so tooling parses both modes alike. *)
    let accepted = ref 0
    and rejected = ref 0
    and shed = ref 0
    and handler_seconds = ref 0.0
    and merged = ref (Ppst_transport.Stats.create ())
    and reported = ref 0 in
    List.iter
      (fun (slot, blob) ->
        match blob with
        | None -> Logs.warn (fun m -> m "worker %d sent no drain report" slot)
        | Some blob -> (
          match Ppst_transport.Server_loop.decode_report blob with
          | r ->
            incr reported;
            accepted := !accepted + r.Ppst_transport.Server_loop.w_accepted;
            rejected := !rejected + r.Ppst_transport.Server_loop.w_rejected;
            shed := !shed + r.Ppst_transport.Server_loop.w_shed;
            handler_seconds :=
              !handler_seconds +. r.Ppst_transport.Server_loop.w_handler_seconds;
            merged :=
              Ppst_transport.Stats.merge !merged
                r.Ppst_transport.Server_loop.w_stats;
            (match r.Ppst_transport.Server_loop.w_extra with
             | "" -> ()
             | extra -> (
               match
                 let rd = Ppst_transport.Wire.reader extra in
                 let encryptions = Ppst_transport.Wire.get_u32 rd in
                 let decryptions = Ppst_transport.Wire.get_u32 rd in
                 let homomorphic = Ppst_transport.Wire.get_u32 rd in
                 Ppst_transport.Wire.expect_end rd;
                 { Ppst.Cost.encryptions; decryptions; homomorphic }
               with
               | ops -> merge_ops ops
               | exception Ppst_transport.Wire.Malformed _ ->
                 Logs.warn (fun m ->
                     m "worker %d: malformed crypto-ops blob" slot)))
          | exception Ppst_transport.Wire.Malformed _ ->
            Logs.warn (fun m -> m "worker %d: malformed drain report" slot)))
      summary.Ppst_transport.Supervisor.reports;
    Logs.info (fun m ->
        m "done: %d worker report(s), %d session(s) served, %d restart(s)"
          !reported !accepted summary.Ppst_transport.Supervisor.restarts);
    Format.printf "sessions: %d accepted, %d rejected (Busy), %d shed@."
      !accepted !rejected !shed;
    Format.printf "handler time (all sessions): %.3f s@." !handler_seconds;
    Format.printf "crypto ops: %d encryptions, %d decryptions, %d homomorphic@."
      total_ops.Ppst.Cost.encryptions total_ops.Ppst.Cost.decryptions
      total_ops.Ppst.Cost.homomorphic;
    Format.printf "communication (all sessions): %a@." Ppst_transport.Stats.pp
      !merged;
    Format.printf "supervisor restarts: %d@."
      summary.Ppst_transport.Supervisor.restarts
  end
  else begin
  let shared_pool = make_pool () in
  let handler = make_handler shared_pool in
  let loop =
    Ppst_transport.Server_loop.create ~config ~on_session_end ~port ~handler ()
  in
  Ppst_transport.Server_loop.install_signal_handlers loop;
  (* Sidecar scrape endpoint: plain HTTP on loopback, entirely outside the
     protocol socket, serving the same closed-vocabulary aggregates as a
     Metrics_req.  Off unless asked for. *)
  let metrics_endpoint =
    match metrics_port with
    | None -> None
    | Some _ when no_metrics ->
      failwith "--metrics-port conflicts with --no-metrics"
    | Some mp ->
      let ep = Ppst_transport.Metrics_endpoint.start ~port:mp () in
      Logs.info (fun m ->
          m "metrics endpoint on http://127.0.0.1:%d/metrics"
            (Ppst_transport.Metrics_endpoint.port ep));
      Format.printf "metrics port: %d@."
        (Ppst_transport.Metrics_endpoint.port ep);
      Some ep
  in
  Logs.info (fun m ->
      m "serving %d record(s), dim %d, max value %d, on port %d \
         (concurrency %d%s%s)"
        (Array.length records)
        (Ppst_timeseries.Series.dimension records.(0))
        max_value
        (Ppst_transport.Server_loop.port loop)
        concurrency
        (match idle_timeout with
         | Some s -> Printf.sprintf ", idle timeout %.1fs" s
         | None -> "")
        (match deadline with
         | Some s -> Printf.sprintf ", deadline %.1fs" s
         | None -> ""));
  Fun.protect
    ~finally:(fun () ->
      Option.iter Ppst_transport.Metrics_endpoint.stop metrics_endpoint;
      match shared_pool with
      | Some pool -> Ppst_parallel.Pool.shutdown pool
      | None -> ())
    (fun () -> Ppst_transport.Server_loop.run loop);
  Logs.info (fun m ->
      m "done: %d session(s) served, %d rejected at capacity"
        (Ppst_transport.Server_loop.accepted loop)
        (Ppst_transport.Server_loop.rejected loop));
  Format.printf "sessions: %d accepted, %d rejected (Busy), %d shed@."
    (Ppst_transport.Server_loop.accepted loop)
    (Ppst_transport.Server_loop.rejected loop)
    (Ppst_transport.Server_loop.shed_total loop);
  Format.printf "handler time (all sessions): %.3f s@."
    (Ppst_transport.Server_loop.handler_seconds_total loop);
  Format.printf "crypto ops: %d encryptions, %d decryptions, %d homomorphic@."
    total_ops.Ppst.Cost.encryptions total_ops.Ppst.Cost.decryptions
    total_ops.Ppst.Cost.homomorphic;
  Format.printf "communication (all sessions): %a@." Ppst_transport.Stats.pp
    (Ppst_transport.Server_loop.stats loop)
  end

let port =
  Arg.(value & opt int 7788 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 picks an ephemeral port).")

let series_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SERIES.csv"
         ~doc:"Server time series (CSV, one element per row).  Required                unless --catalog is given.")

let catalog_dir =
  Arg.(value & opt (some dir) None & info [ "catalog" ] ~docv:"DIR"
         ~doc:"Serve every *.csv in $(docv) as an id-keyed catalog                (1-vs-N query mode); record ids are the file basenames.")

let key_file =
  Arg.(value & opt (some file) None & info [ "k"; "key" ] ~docv:"FILE" ~doc:"Private key from ppst_keygen (fresh key when omitted).")

let max_value =
  Arg.(value & opt (some int) None & info [ "max-value" ] ~docv:"V" ~doc:"Advertised coordinate bound (default: actual series maximum).")

let seed =
  Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic randomness seed (testing only).")

let sessions =
  Arg.(value & opt int 0 & info [ "sessions" ] ~docv:"N"
         ~doc:"Total sessions to serve before exiting (0 = until SIGINT/SIGTERM).")

let concurrency =
  Arg.(value & opt int 4 & info [ "concurrency"; "max-sessions" ] ~docv:"N"
         ~doc:"Concurrent-session capacity; extra clients get a Busy reply with a retry-after hint.")

let workers =
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
         ~doc:"Supervised multi-process serving: fork $(docv) worker                processes and shard accepted connections across them                (resume tokens route by hash, everything else round-robins).                 A crashed worker is restarted under backoff; with                --spool-dir its in-flight sessions fail over to the other                workers.  0 (the default) serves single-process.")

let spool_dir =
  Arg.(value & opt (some string) None & info [ "spool-dir" ] ~docv:"DIR"
         ~doc:"Crash-safe session spool: snapshot every resumable session                to $(docv) (atomic rename + fsync) after each round, so a                session survives its worker process being killed and                resumes in another.")

let idle_timeout =
  Arg.(value & opt (some float) None & info [ "idle-timeout-s" ] ~docv:"S"
         ~doc:"Close a session after this many seconds of client silence.")

let deadline =
  Arg.(value & opt (some float) None & info [ "deadline-s" ] ~docv:"S"
         ~doc:"Close a session this many seconds after accept, no matter what.")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domain worker pool size for Paillier batch work; only honoured at --concurrency 1 (the pool has one work queue).")

let chaos_profile =
  Arg.(value & opt (some string) None & info [ "chaos-profile" ] ~docv:"PROFILE"
         ~doc:"Deterministic fault injection for soak runs: drop-at-N,                drop-every-N, corrupt-every-N[:BYTE], delay-every-N[:MS],                short-every-N, dup-every-N or flaky-P.  Never use in                production.")

let chaos_seed =
  Arg.(value & opt int 1 & info [ "chaos-seed" ] ~docv:"SEED"
         ~doc:"Seed for the --chaos-profile injector (replays bit-identically).")

let disk_chaos =
  Arg.(value & opt (some string) None & info [ "disk-chaos" ] ~docv:"PROFILE"
         ~doc:"Deterministic disk/fd fault injection for degraded-mode                soaks: enospc-at-N, enospc-every-N, eio-fsync-at-N,                eio-fsync-every-N, torn-rename-at-N, emfile-at-N or                emfile-every-N.  Targets the session spool and the                accept/spawn paths; the server keeps serving (degraded                health) instead of crashing.  Never use in production.")

let resume_ttl =
  Arg.(value & opt float 300.0 & info [ "resume-ttl-s" ] ~docv:"S"
         ~doc:"How long a disconnected session's state stays resumable.")

let no_resume =
  Arg.(value & flag & info [ "no-resume" ]
         ~doc:"Never grant session resume (no tokens, no parked state).")

let no_crc =
  Arg.(value & flag & info [ "no-crc" ]
         ~doc:"Never grant CRC-32 frame integrity.")

let max_cells =
  Arg.(value & opt (some int) None & info [ "max-cells" ] ~docv:"N"
         ~doc:"Per-session DP-matrix budget: most min-selections (and, for                DFD, max-selections) a session may request.  An oversized                session is refused with Quota_exceeded before any Paillier                work runs.")

let max_series_len =
  Arg.(value & opt (some int) None & info [ "max-series-len" ] ~docv:"N"
         ~doc:"Longest client series length accepted at Hello.")

let max_dim =
  Arg.(value & opt (some int) None & info [ "max-dim" ] ~docv:"D"
         ~doc:"Highest element dimension accepted at Hello.")

let max_session_bytes =
  Arg.(value & opt (some int) None & info [ "max-session-bytes" ] ~docv:"B"
         ~doc:"Most request-frame bytes a session may send.")

let max_session_frames =
  Arg.(value & opt (some int) None & info [ "max-session-frames" ] ~docv:"N"
         ~doc:"Most request frames a session may send.")

let rate_limit =
  Arg.(value & opt (some float) None & info [ "rate-limit" ] ~docv:"R"
         ~doc:"Per-peer token bucket: sustained new-session rate per second                and per client address.  A peer over budget is answered Busy                with the exact bucket-recovery delay as the retry-after hint.")

let rate_burst =
  Arg.(value & opt (some float) None & info [ "rate-burst" ] ~docv:"B"
         ~doc:"Token-bucket burst capacity (default: max(--rate-limit, 1)).")

let shed_watermark =
  Arg.(value & opt (some int) None & info [ "shed-watermark" ] ~docv:"N"
         ~doc:"Load shedding: refuse new sessions (Busy + retry-after) while                at least $(docv) sessions are inside the crypto handler.")

let watchdog_timeout =
  Arg.(value & opt (some float) None & info [ "watchdog-timeout-s" ] ~docv:"S"
         ~doc:"Slow-peer watchdog: cut a connection whose frame stalls                mid-transfer for $(docv) seconds (default 30).")

let metrics_port =
  Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT"
         ~doc:"Serve an OpenMetrics/Prometheus text endpoint on                http://127.0.0.1:$(docv)/metrics (0 picks an ephemeral port,                printed at startup).  Exposes only the closed-vocabulary                counter/histogram aggregates — the same surface as the                in-protocol Metrics_req.")

let no_metrics =
  Arg.(value & flag & info [ "no-metrics" ]
         ~doc:"Never grant the metrics capability (Metrics_req is refused                even on the probe path).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let log_level =
  Arg.(value & opt string "quiet" & info [ "log-level" ] ~docv:"quiet|info|debug"
         ~doc:"Telemetry stderr verbosity: spans and counters only (never protocol values).")

let log_json =
  Arg.(value & flag & info [ "log-json" ]
         ~doc:"Emit stderr telemetry as JSON lines instead of pretty text.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Append every telemetry event (debug level) as JSON lines to $(docv); read it back with ppst_analyze trace.")

let cmd =
  let doc = "secure time-series similarity server (series Y owner, key holder)" in
  Cmd.v
    (Cmd.info "ppst_server" ~doc)
    Term.(const run $ port $ series_file $ catalog_dir $ key_file $ max_value $ seed
          $ sessions $ concurrency $ workers $ spool_dir $ idle_timeout
          $ deadline $ jobs
          $ chaos_profile $ chaos_seed $ disk_chaos $ resume_ttl $ no_resume
          $ no_crc
          $ max_cells $ max_series_len $ max_dim $ max_session_bytes
          $ max_session_frames $ rate_limit $ rate_burst $ shed_watermark
          $ watchdog_timeout $ metrics_port $ no_metrics $ verbose $ log_level
          $ log_json $ trace_out)

let () = exit (Cmd.eval cmd)
