(* The server party over TCP: owns a time series (CSV) and the Paillier
   secret key, answers one protocol session per invocation (use a shell
   loop or --sessions for more). *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

let run port series_file key_file max_value seed sessions jobs verbose =
  setup_logs verbose;
  if jobs < 1 then failwith "--jobs must be >= 1";
  let workers = Ppst_parallel.Pool.create jobs in
  (* a CSV with blank-line-separated blocks is served as a multi-record
     database (similarity-search mode); a plain CSV as a single series *)
  let records = Array.of_list (Ppst_timeseries.Csv.load_many series_file) in
  if Array.length records = 0 then failwith "no series in input file";
  let rng =
    match seed with
    | Some s -> Ppst_rng.Secure_rng.of_seed_string s
    | None -> Ppst_rng.Secure_rng.system ()
  in
  let max_value =
    match max_value with
    | Some v -> v
    | None ->
      Array.fold_left
        (fun acc s -> Stdlib.max acc (Ppst_timeseries.Series.max_abs_value s))
        1 records
  in
  let server =
    match key_file with
    | Some path ->
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let _pk, sk = Ppst_paillier.Paillier.private_key_of_string text in
      Ppst.Server.create_db_with_key ~workers ~sk ~rng ~records ~max_value ()
    | None ->
      Logs.info (fun m -> m "no --key given; generating a fresh 64-bit key");
      Ppst.Server.create_db ~workers ~rng ~records ~max_value ()
  in
  Logs.info (fun m ->
      m "serving %d record(s), dim %d, max value %d, on port %d"
        (Array.length records)
        (Ppst_timeseries.Series.dimension records.(0))
        max_value port);
  Fun.protect
    ~finally:(fun () -> Ppst_parallel.Pool.shutdown workers)
    (fun () ->
      for session = 1 to sessions do
        Logs.info (fun m -> m "waiting for session %d/%d" session sessions);
        (* a misbehaving client (malformed frame, oversized length header)
           must only cost its own session, never the server process *)
        (try
           Ppst_transport.Channel.serve_once ~port
             ~handler:(Ppst.Server.handler server)
         with Ppst_transport.Channel.Protocol_error msg ->
           Logs.warn (fun m -> m "session %d aborted: %s" session msg));
        let ops = Ppst.Server.ops server in
        Logs.info (fun m ->
            m "session %d done: %d encryptions, %d decryptions so far" session
              ops.Ppst.Cost.encryptions ops.Ppst.Cost.decryptions)
      done)

let port =
  Arg.(value & opt int 7788 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")

let series_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SERIES.csv" ~doc:"Server time series (CSV, one element per row).")

let key_file =
  Arg.(value & opt (some file) None & info [ "k"; "key" ] ~docv:"FILE" ~doc:"Private key from ppst_keygen (fresh key when omitted).")

let max_value =
  Arg.(value & opt (some int) None & info [ "max-value" ] ~docv:"V" ~doc:"Advertised coordinate bound (default: actual series maximum).")

let seed =
  Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic randomness seed (testing only).")

let sessions =
  Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N" ~doc:"Number of sessions to serve before exiting.")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domain worker pool size for Paillier batch work (1 = sequential).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let cmd =
  let doc = "secure time-series similarity server (series Y owner, key holder)" in
  Cmd.v
    (Cmd.info "ppst_server" ~doc)
    Term.(const run $ port $ series_file $ key_file $ max_value $ seed $ sessions $ jobs $ verbose)

let () = exit (Cmd.eval cmd)
