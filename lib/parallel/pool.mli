(** Fixed-size Domain worker pool for the embarrassingly parallel parts
    of the protocol — Paillier modular exponentiations, which are
    independent per ciphertext.

    {b Determinism contract.}  [map]/[map_array] preserve input order and
    partition work deterministically (contiguous chunks, a pure function
    of [size t] and the input length).  Callers must pass a {e pure}
    [f]: no RNG draws, no shared mutable state, no counter updates.  The
    protocol layers uphold this by pre-drawing all randomness
    sequentially from the session RNG before fanning out, so a seeded
    run produces bit-identical transcripts at any pool size.

    A pool of size 1 spawns no domains and runs everything in the
    calling thread — the default for tests and the safe fallback
    everywhere. *)

type t

val create : int -> t
(** [create n] spawns [n - 1] worker domains ([n] total execution lanes
    counting the caller, which always participates in [map_array]).
    [create 1] spawns nothing and is purely sequential.
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int
(** Number of execution lanes (the [n] given to {!create}). *)

val sequential : t
(** A shared size-1 pool: no domains, no shutdown needed. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f arr] = [Array.map f arr], computed on up to [size t]
    lanes.  [f] must be pure (see the determinism contract above).  If
    [f] raises in any chunk, the first (lowest-index chunk) exception is
    re-raised in the caller after all chunks settle. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** List analogue of {!map_array}. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool must not be used
    afterwards.  A no-op on size-1 pools. *)

(** {1 Background tasks}

    One detached task on a dedicated Domain, for offline work (e.g.
    randomness-pool production) that overlaps the caller's online phase
    instead of competing for the pool's work queue. *)

type 'a background

val background : (unit -> 'a) -> 'a background
(** Start [f] on a fresh Domain immediately. *)

val await : 'a background -> 'a
(** Join the task; re-raises (with backtrace) if it raised. *)
