(* A deliberately small Domain pool: one work queue, [size - 1] resident
   workers, and the caller as the remaining lane.  Tasks are closures
   that stash their own results; [map_array] submits one closure per
   contiguous chunk and runs the first chunk itself, so a pool is never
   idle while the caller blocks. *)

module Metrics = Ppst_telemetry.Metrics

(* Pool observability: how large the fan-outs are, how long a submitted
   chunk waits before a worker picks it up, and the queue depth at each
   submit.  Pure observation — no effect on chunking or task order, so
   determinism of seeded runs is untouched. *)
let m_batch_items =
  Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
    "pool.batch.items"

let m_task_wait =
  Metrics.histogram
    ~buckets:[| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1. |]
    "pool.task.wait_s"

let m_queue_depth = Metrics.gauge "pool.queue.depth"

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.lock;
          task ();
          next ()
      | None ->
          if t.stopped then Mutex.unlock t.lock
          else (
            Condition.wait t.work_available t.lock;
            wait ())
    in
    wait ()
  in
  next ()

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopped = false;
      domains = [];
    }
  in
  if size > 1 then
    t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size
let sequential = create 1

let shutdown t =
  if t.domains <> [] then begin
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let submit t task =
  Mutex.lock t.lock;
  Queue.add task t.queue;
  Metrics.gauge_set m_queue_depth (float_of_int (Queue.length t.queue));
  Condition.signal t.work_available;
  Mutex.unlock t.lock

(* Chunk [c] of [cc] over [len] items: the same contiguous split
   regardless of timing, so partitioning is deterministic. *)
let chunk_bounds ~len ~chunk_count c =
  (c * len / chunk_count, (c + 1) * len / chunk_count)

let map_array t f arr =
  let len = Array.length arr in
  if t.size = 1 || len <= 1 || t.domains = [] then Array.map f arr
  else begin
    Metrics.observe m_batch_items (float_of_int len);
    let chunk_count = min t.size len in
    let results : ('b array, exn * Printexc.raw_backtrace) result option array =
      Array.make chunk_count None
    in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref (chunk_count - 1) in
    let run_chunk c =
      let lo, hi = chunk_bounds ~len ~chunk_count c in
      match Array.init (hi - lo) (fun i -> f arr.(lo + i)) with
      | chunk -> results.(c) <- Some (Ok chunk)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          results.(c) <- Some (Error (e, bt))
    in
    for c = 1 to chunk_count - 1 do
      let submitted_at = Ppst_telemetry.Telemetry.now () in
      submit t (fun () ->
          Metrics.observe m_task_wait
            (Ppst_telemetry.Telemetry.now () -. submitted_at);
          run_chunk c;
          Mutex.lock done_lock;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cond;
          Mutex.unlock done_lock)
    done;
    run_chunk 0;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    let chunks =
      Array.map
        (function
          | Some (Ok chunk) -> chunk
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | None -> assert false)
        results
    in
    Array.concat (Array.to_list chunks)
  end

let map t f l = Array.to_list (map_array t f (Array.of_list l))

(* A single detached background task on its own Domain — used for
   genuinely offline work (randomness-pool production) that should
   overlap the caller's online phase rather than share the pool's work
   queue.  [background f] starts immediately; [await] joins and
   re-raises whatever [f] raised. *)
type 'a background = ('a, exn * Printexc.raw_backtrace) result Domain.t

let background f : 'a background =
  Domain.spawn (fun () ->
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ()))

let await (task : 'a background) : 'a =
  match Domain.join task with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
