(** The Paillier cryptosystem (Paillier, EUROCRYPT 1999) — the partially
    homomorphic encryption engine of the secure time-series protocols.

    Supported homomorphisms, with [n] the public modulus:
    - {e addition}: [Dec (add pk c1 c2) = (m1 + m2) mod n]
    - {e plaintext multiplication}: [Dec (scalar_mul pk c k) = (k * m) mod n]
    - {e re-randomization}: [rerandomize] produces an independent
      ciphertext of the same plaintext — the paper's path-hiding step
      (Section 5.5).

    Key generation uses [g = n + 1], the standard simplification for which
    encryption needs a single [r^n mod n^2] exponentiation. *)

open Ppst_bigint

type public_key = {
  n : Bigint.t;          (** modulus [p*q] *)
  n_squared : Bigint.t;  (** ciphertext modulus [n^2] *)
  g : Bigint.t;          (** generator, fixed to [n + 1] *)
  bits : int;            (** bit length of [n] *)
  ctx_n2 : Modular.ctx;  (** Montgomery context for [n^2] (precomputed) *)
}

type private_key = {
  p : Bigint.t;
  q : Bigint.t;
  lambda : Bigint.t;     (** [lcm (p-1) (q-1)] *)
  mu : Bigint.t;         (** [lambda^-1 mod n] *)
  public : public_key;
  (* CRT acceleration (precomputed at key creation) *)
  p_squared : Bigint.t;
  q_squared : Bigint.t;
  hp : Bigint.t;  (** [L_p(g^(p-1) mod p²)^-1 mod p] *)
  hq : Bigint.t;  (** [L_q(g^(q-1) mod q²)^-1 mod q] *)
  p_inv_mod_q : Bigint.t;  (** Garner recombination constant (mod [q]) *)
  p2_inv_mod_q2 : Bigint.t;
  (** Garner constant mod [q²] — recombines the CRT halves of the
      key holder's [r^n mod n²] noise (see {!encrypt_sk}). *)
  ctx_p2 : Modular.ctx;
  ctx_q2 : Modular.ctx;
}

type ciphertext
(** Abstract: a value in [(Z/n^2)^*].  Equality of ciphertexts does not
    imply equality of plaintexts and vice versa (probabilistic
    encryption). *)

exception Invalid_plaintext of string
(** Raised when a plaintext lies outside [\[0, n)] (or the signed window
    for the [_signed] variants). *)

exception Invalid_ciphertext of string
(** A value presented as a ciphertext is not one: outside
    [\[1, n^2-1\]] or not a unit of [Z_{n^2}] ([gcd(c, n) <> 1]).
    Raised by {!validate_ciphertext} at hostile-input boundaries so
    garbage is rejected {e before} any CRT exponentiation runs and can
    never surface as a nonsense distance. *)

exception Key_mismatch
(** Raised when ciphertexts from different keys are combined. *)

val public_of_modulus : Bigint.t -> bits:int -> public_key
(** Rebuild a public key from a received modulus [n] — what the client
    does with the server's [Welcome] message.  Validates that [n] is odd,
    positive and of the stated bit length.
    @raise Invalid_plaintext on an implausible modulus. *)

val keygen : ?bits:int -> Ppst_rng.Secure_rng.t -> public_key * private_key
(** Generate a fresh key pair; [bits] is the modulus size (default 64,
    matching the paper's experimental security parameter).  [p] and [q]
    are balanced random primes of [bits/2] bits with [gcd(pq, (p-1)(q-1))
    = 1]. *)

val of_primes : p:Bigint.t -> q:Bigint.t -> public_key * private_key
(** Assemble a key pair from two distinct odd primes.  Validates the
    [gcd(pq, (p-1)(q-1)) = 1] requirement (primality itself is the
    caller's responsibility — key loading uses this after a
    probable-prime check).
    @raise Invalid_plaintext when the primes are unusable. *)

val private_key_to_string : private_key -> string
(** Serialize as ["ppst-paillier-v1\np=<dec>\nq=<dec>\n"] — everything
    else is re-derived on load. *)

val private_key_of_string : string -> public_key * private_key
(** @raise Invalid_plaintext on malformed input or non-prime components. *)

val encrypt : public_key -> Ppst_rng.Secure_rng.t -> Bigint.t -> ciphertext
(** [encrypt pk rng m] for [m] in [\[0, n)].
    @raise Invalid_plaintext otherwise. *)

val encrypt_sk : private_key -> Ppst_rng.Secure_rng.t -> Bigint.t -> ciphertext
(** Key-holder encryption: identical output to {!encrypt} (same rng
    draws, same ciphertext bytes) but the [r^n mod n²] noise is computed
    by CRT over [p²]/[q²] — roughly half the multiplication work.  The
    server's encryption path uses this. *)

val decrypt : private_key -> ciphertext -> Bigint.t
(** Plaintext in [\[0, n)] via [L(c^lambda mod n^2) * mu mod n]. *)

val decrypt_crt : private_key -> ciphertext -> Bigint.t
(** Same result as {!decrypt} but ~4x faster using exponentiation modulo
    [p^2] and [q^2] recombined by CRT. *)

(** {1 Batch entry points}

    Paillier work is embarrassingly parallel per ciphertext.  The batch
    variants fan the pure exponentiations out over a
    {!Ppst_parallel.Pool} ([workers], default sequential) while drawing
    any randomness {e sequentially and in element order} first — a
    seeded rng therefore advances identically for every pool size, and
    results are always in input order. *)

val encrypt_batch :
  ?workers:Ppst_parallel.Pool.t ->
  public_key -> Ppst_rng.Secure_rng.t -> Bigint.t array -> ciphertext array
(** Element-wise {!encrypt}; consumes the rng exactly as the equivalent
    sequential loop would. *)

val encrypt_batch_sk :
  ?workers:Ppst_parallel.Pool.t ->
  private_key -> Ppst_rng.Secure_rng.t -> Bigint.t array -> ciphertext array
(** Element-wise {!encrypt_sk}: byte-identical to {!encrypt_batch} on the
    same rng, with CRT-accelerated noise. *)

val decrypt_batch :
  ?workers:Ppst_parallel.Pool.t -> private_key -> ciphertext array -> Bigint.t array

val decrypt_crt_batch :
  ?workers:Ppst_parallel.Pool.t -> private_key -> ciphertext array -> Bigint.t array

val scalar_mul_batch :
  ?workers:Ppst_parallel.Pool.t ->
  public_key -> (ciphertext * Bigint.t) array -> ciphertext array
(** Element-wise {!scalar_mul} over (ciphertext, scalar) pairs. *)

val add : public_key -> ciphertext -> ciphertext -> ciphertext
(** Homomorphic addition: multiply ciphertexts mod [n^2]. *)

val add_plain : public_key -> ciphertext -> Bigint.t -> ciphertext
(** Homomorphic addition of a plaintext constant (no randomness needed:
    [c * g^k mod n^2]). *)

val scalar_mul : public_key -> ciphertext -> Bigint.t -> ciphertext
(** Homomorphic multiplication by a plaintext scalar: [c^k mod n^2].
    Negative scalars are handled through [k mod n]. *)

val neg : public_key -> ciphertext -> ciphertext
(** [scalar_mul pk c (-1)]: encryption of [n - m]. *)

val sub : public_key -> ciphertext -> ciphertext -> ciphertext
(** Homomorphic subtraction. *)

val rerandomize : public_key -> Ppst_rng.Secure_rng.t -> ciphertext -> ciphertext
(** Fresh, statistically independent ciphertext of the same plaintext
    ([c * r^n mod n^2]). *)

val rerandomize_sk :
  private_key -> Ppst_rng.Secure_rng.t -> ciphertext -> ciphertext
(** Byte-identical to {!rerandomize}, with CRT-accelerated noise (see
    {!encrypt_sk}). *)

val invert_ciphertext : public_key -> ciphertext -> ciphertext
(** [Enc(m)^-1 mod n²]: an encryption of [-m mod n] obtained by one
    modular inverse instead of the full-width [n-1] power that {!neg}
    pays.  Decrypts identically to [neg pk c] but the ciphertext bytes
    differ, so it belongs to the packed (distance-compared) fast path.
    Genuine ciphertexts are units mod [n²], so the inverse always
    exists. *)

val encrypt_zero : public_key -> Ppst_rng.Secure_rng.t -> ciphertext

(** {1 Offline/online encryption}

    The plaintext-independent factor [r^n mod n²] dominates encryption
    cost.  A party can precompute a pool of such factors while idle
    (Paillier 1999, Section 6) and then encrypt online with two modular
    multiplications.  The protocol client — the weak party of the paper's
    asymmetric setting — uses this for its phase-2/3 masking offsets.

    The pool is a mutex-guarded FIFO, safe to fill from a background
    Domain while the session consumes: entries come out in production
    order, so a pooled run consumes its rng's r-sequence exactly as the
    unpooled run does and transcripts stay bit-identical. *)

type randomness_pool

val pool_create : public_key -> randomness_pool
val pool_size : randomness_pool -> int

val pool_misses : randomness_pool -> int
(** Number of encryptions that found the pool empty and had to pay an
    {e online} [r^n] exponentiation.  A correctly provisioned offline
    run keeps this at zero — the cost-split experiments assert it. *)

val pool_refill :
  ?workers:Ppst_parallel.Pool.t ->
  public_key -> randomness_pool -> Ppst_rng.Secure_rng.t -> int -> unit
(** Precompute [count] more [r^n] factors.  The unit draws are
    sequential; the exponentiations fan out over [workers].
    @raise Key_mismatch if the pool belongs to another key. *)

val pool_refill_fast :
  ?workers:Ppst_parallel.Pool.t ->
  public_key -> randomness_pool -> Ppst_rng.Secure_rng.t -> int -> unit
(** Subgroup-noise refill: one full-width [h^n] exponentiation, then
    [count] entries [h^{n·a}] for short random exponents [a] via a
    fixed-base table — an order of magnitude cheaper per entry.  The
    noise is drawn from the cyclic subgroup generated by [h^n] rather
    than uniformly from all n-th residues, so this is reserved for the
    packed/fast protocol profile (see SECURITY.md).
    @raise Key_mismatch if the pool belongs to another key. *)

val pool_refill_async :
  ?fast:bool ->
  public_key -> randomness_pool -> Ppst_rng.Secure_rng.t -> int -> (unit -> unit)
(** Start producing [count] entries on a dedicated background Domain
    ([fast] selects the {!pool_refill_fast} generator) and return a join
    function.  The producer owns [rng] until it has drawn its last unit;
    {!rn_acquire} blocks (instead of recording a miss) while promised
    entries are still outstanding, so online encryption overlaps offline
    production without transcript divergence.
    @raise Key_mismatch if the pool belongs to another key. *)

val encrypt_pooled :
  public_key -> randomness_pool -> Ppst_rng.Secure_rng.t -> Bigint.t -> ciphertext
(** Like {!encrypt}, consuming one pooled factor; falls back to a fresh
    exponentiation when the pool is empty and counts the miss
    (see {!pool_misses}).
    @raise Invalid_plaintext / @raise Key_mismatch as {!encrypt}. *)

(** {2 Split acquisition}

    [rn_acquire]/[rn_realize] separate the stateful part of pooled
    encryption (pool pop or rng draw — sequential) from the expensive
    pure part (the owed exponentiation on a miss — parallelizable).
    [encrypt_pooled] is [encrypt_with_rn ~rn:(rn_realize pk (rn_acquire
    pk pool rng))]. *)

type rn
(** A realized [r^n mod n²] factor, kept in Montgomery form so online
    encryption is a single in-form multiplication. *)

val rn_of_bigint : public_key -> Bigint.t -> rn
val rn_to_bigint : public_key -> rn -> Bigint.t

type rn_source

val rn_acquire : public_key -> randomness_pool -> Ppst_rng.Secure_rng.t -> rn_source
(** Dequeue one pooled [r^n] factor; block while a background producer
    still owes entries; on a genuinely empty pool draw a raw unit [r]
    (counting a miss) whose exponentiation is owed.
    @raise Key_mismatch if the pool belongs to another key. *)

val rn_realize : public_key -> rn_source -> rn
(** The [r^n] factor itself; pays the owed exponentiation on a miss.
    Pure — safe inside {!Ppst_parallel.Pool.map_array}. *)

val encrypt_with_rn : public_key -> rn:rn -> Bigint.t -> ciphertext
(** [g^m * rn mod n^2] — two multiplications, no rng.
    @raise Invalid_plaintext as {!encrypt}. *)

val rerandomize_pooled :
  public_key -> randomness_pool -> Ppst_rng.Secure_rng.t -> ciphertext -> ciphertext
(** {!rerandomize} consuming one pooled factor (one multiplication
    online); falls back and counts a miss as {!encrypt_pooled} does. *)

type noise_gen
(** The {!pool_refill_fast} subgroup table hoisted into a reusable value:
    one unit draw and one full-width exponentiation at creation, then a
    stream of cheap [r^n] factors across many requests — for peers (the
    server's packed-reply re-encryptions) that need fresh noise per
    request without maintaining a pool.  Immutable after creation and
    safe to share across Domains.  Same subgroup caveat as
    {!pool_refill_fast}: reserved for the packed/fast profile. *)

val noise_gen_create : public_key -> Ppst_rng.Secure_rng.t -> noise_gen

val noise_gen_rn : noise_gen -> public_key -> Ppst_rng.Secure_rng.t -> rn
(** Draw one fresh noise factor (a short-exponent table walk).
    @raise Invalid_argument if the generator belongs to another key. *)

(** {1 Plaintext packing}

    [k] values of at most [slot_bits] bits each ride one ciphertext as
    [sum_j v_j * 2^(j*slot_bits)] — slot [j] occupies bits
    [j*slot_bits .. (j+1)*slot_bits - 1], little-endian, with the top
    bit of [n] left as headroom so the packed sum never wraps.  One
    decryption then yields all [k] slots, amortizing the expensive
    exponent across the pack. *)

val pack_capacity : public_key -> slot_bits:int -> int
(** Slots per ciphertext: [(bits(n) - 1) / slot_bits]. *)

val pack_plain : public_key -> slot_bits:int -> Bigint.t array -> Bigint.t
(** Concatenate plaintext slots.
    @raise Invalid_plaintext when a value needs more than [slot_bits]
    bits; @raise Invalid_argument when the slot count is outside
    [1 .. capacity]. *)

val unpack_plain : slot_bits:int -> count:int -> Bigint.t -> Bigint.t array
(** Split a packed plaintext back into [count] slots. *)

val pack_ciphertexts :
  public_key -> slot_bits:int -> ciphertext array -> ciphertext
(** Homomorphic packing by Horner's rule in Montgomery form
    ([slot_bits] squarings + 1 multiplication per slot): decrypts to
    [pack_plain] of the individual plaintexts, provided every slot
    plaintext fits [slot_bits] bits — the {e caller's} obligation, since
    ciphertexts cannot be range-checked. *)

(** {1 Signed-value encoding}

    Plaintexts in [(-n/2, n/2)] encoded by their residue mod [n]; values
    above [n/2] decode as negative.  The DP-matrix values in the protocol
    are non-negative, but masked differences can be interpreted signed. *)

val encrypt_signed : public_key -> Ppst_rng.Secure_rng.t -> Bigint.t -> ciphertext
val decrypt_signed : private_key -> ciphertext -> Bigint.t
val encode_signed : public_key -> Bigint.t -> Bigint.t
val decode_signed : public_key -> Bigint.t -> Bigint.t

(** {1 Serialization support} *)

val ciphertext_to_bigint : ciphertext -> Bigint.t
val ciphertext_of_bigint : public_key -> Bigint.t -> ciphertext
(** @raise Invalid_plaintext when the value is outside [\[0, n^2)]. *)

val validate_ciphertext : public_key -> Bigint.t -> ciphertext
(** Strict re-wrap for hostile-input boundaries (the server's decrypt
    path): additionally to the range, requires the value to be a unit
    of [Z_{n^2}] — [gcd(c, n) = 1], the defining property of a genuine
    Paillier ciphertext.  Rejections bump the
    [paillier.invalid_ciphertext] counter.
    @raise Invalid_ciphertext on [0], out-of-range values or
    non-units. *)

val ciphertext_bytes : public_key -> int
(** Serialized size of one ciphertext under this key, in bytes — used by
    the transport layer for communication accounting. *)

val equal_ciphertext : ciphertext -> ciphertext -> bool
(** Byte-equality of ciphertexts (NOT plaintext equality). *)
