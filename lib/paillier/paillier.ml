open Ppst_bigint

type public_key = {
  n : Bigint.t;
  n_squared : Bigint.t;
  g : Bigint.t;
  bits : int;
  ctx_n2 : Modular.ctx;
}

type private_key = {
  p : Bigint.t;
  q : Bigint.t;
  lambda : Bigint.t;
  mu : Bigint.t;
  public : public_key;
  p_squared : Bigint.t;
  q_squared : Bigint.t;
  hp : Bigint.t;
  hq : Bigint.t;
  p_inv_mod_q : Bigint.t;
  p2_inv_mod_q2 : Bigint.t;
  ctx_p2 : Modular.ctx;
  ctx_q2 : Modular.ctx;
}

(* A ciphertext caches both representations of its residue mod n^2: the
   canonical Bigint (what the wire and decryption see) and the
   Montgomery-form limb vector (what homomorphic chains multiply).  Each
   is realized at most once, on demand; homomorphic add/scalar_mul
   chains therefore stay in form end to end and only pay the one
   conversion at a wire or decrypt boundary.  Both representations
   denote the same unique residue, so results are byte-identical to the
   eager implementation.

   The caches are single-owner by protocol structure (a ciphertext is
   built, combined and serialized by one party's session thread; batch
   fan-outs only *read* already-realized fields), so no lock is
   needed. *)
type ciphertext = {
  key_n : Bigint.t;
  ctx : Modular.ctx;
  mutable value : Bigint.t option;
  mutable mont : int array option;
}

exception Invalid_plaintext of string
exception Invalid_ciphertext of string
exception Key_mismatch

let check_same_key pk c =
  if not (Bigint.equal pk.n c.key_n) then raise Key_mismatch

let ct_of_value pk v = { key_n = pk.n; ctx = pk.ctx_n2; value = Some v; mont = None }
let ct_of_mont pk m = { key_n = pk.n; ctx = pk.ctx_n2; value = None; mont = Some m }

let ct_mont c =
  match c.mont with
  | Some m -> m
  | None ->
    let m = Modular.to_mont_ctx c.ctx (Option.get c.value) in
    c.mont <- Some m;
    m

let ct_value c =
  match c.value with
  | Some v -> v
  | None ->
    let v = Modular.of_mont_ctx c.ctx (Option.get c.mont) in
    c.value <- Some v;
    v

let mont_n2 pk = Modular.mont_of_ctx pk.ctx_n2

(* L(x) = (x - 1) / n, defined on x = 1 mod n. *)
let l_function x n = Bigint.div (Bigint.pred x) n

let make_public n bits =
  {
    n;
    n_squared = Bigint.mul n n;
    g = Bigint.succ n;
    bits;
    ctx_n2 = Modular.make_ctx (Bigint.mul n n);
  }

let public_of_modulus n ~bits =
  if Bigint.compare n Bigint.two <= 0 || Bigint.is_even n then
    raise (Invalid_plaintext "modulus must be an odd integer > 2");
  if Bigint.num_bits n <> bits then
    raise
      (Invalid_plaintext
         (Printf.sprintf "modulus has %d bits, expected %d" (Bigint.num_bits n) bits));
  make_public n bits

(* Assemble the full key material from validated primes. *)
let assemble p q =
  let n = Bigint.mul p q in
  let p1 = Bigint.pred p and q1 = Bigint.pred q in
  let lambda = Modular.lcm p1 q1 in
  let public = make_public n (Bigint.num_bits n) in
  (* mu = (L(g^lambda mod n^2))^-1 mod n; with g = n+1,
     g^lambda = 1 + lambda*n mod n^2, so L(...) = lambda mod n. *)
  let mu = Modular.invert lambda n in
  let p_squared = Bigint.mul p p in
  let q_squared = Bigint.mul q q in
  (* CRT decryption constants (as in accelerated Paillier):
     hp = L_p(g^{p-1} mod p^2)^-1 mod p, and symmetrically hq. *)
  let lp x = Bigint.div (Bigint.pred x) p in
  let lq x = Bigint.div (Bigint.pred x) q in
  let g = public.g in
  let ctx_p2 = Modular.make_ctx p_squared in
  let ctx_q2 = Modular.make_ctx q_squared in
  let hp = Modular.invert (lp (Modular.pow_ctx ctx_p2 g p1)) p in
  let hq = Modular.invert (lq (Modular.pow_ctx ctx_q2 g q1)) q in
  let p_inv_mod_q = Modular.invert p q in
  let p2_inv_mod_q2 = Modular.invert p_squared q_squared in
  ( public,
    {
      p; q; lambda; mu; public; p_squared; q_squared; hp; hq; p_inv_mod_q;
      p2_inv_mod_q2; ctx_p2; ctx_q2;
    } )

let of_primes ~p ~q =
  if Bigint.compare p Bigint.two <= 0 || Bigint.compare q Bigint.two <= 0 then
    raise (Invalid_plaintext "primes must exceed 2");
  if Bigint.equal p q then raise (Invalid_plaintext "primes must be distinct");
  let p1 = Bigint.pred p and q1 = Bigint.pred q in
  let n = Bigint.mul p q in
  if not (Bigint.equal (Modular.gcd n (Bigint.mul p1 q1)) Bigint.one) then
    raise (Invalid_plaintext "gcd(pq, (p-1)(q-1)) must be 1");
  assemble p q

let keygen ?(bits = 64) rng =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus below 16 bits";
  let half = bits / 2 in
  let random_bits b = Ppst_rng.Secure_rng.bits rng b in
  let rec gen () =
    let p = Prime.random_prime ~random_bits ~bits:half in
    let q = Prime.random_prime ~random_bits ~bits:(bits - half) in
    if Bigint.equal p q then gen ()
    else begin
      let n = Bigint.mul p q in
      let p1 = Bigint.pred p and q1 = Bigint.pred q in
      (* g = n+1 requires gcd(n, (p-1)(q-1)) = 1, which holds when neither
         prime divides the other's predecessor. *)
      if
        Bigint.num_bits n = bits
        && Bigint.equal (Modular.gcd n (Bigint.mul p1 q1)) Bigint.one
      then (p, q)
      else gen ()
    end
  in
  let p, q = gen () in
  assemble p q

let key_file_header = "ppst-paillier-v1"

let private_key_to_string sk =
  Printf.sprintf "%s\np=%s\nq=%s\n" key_file_header (Bigint.to_string sk.p)
    (Bigint.to_string sk.q)

let private_key_of_string text =
  let fail m = raise (Invalid_plaintext ("key parse: " ^ m)) in
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: rest when header = key_file_header ->
    let field name =
      let prefix = name ^ "=" in
      match
        List.find_opt
          (fun l -> String.length l > String.length prefix
                    && String.sub l 0 (String.length prefix) = prefix)
          rest
      with
      | Some l ->
        let v = String.sub l (String.length prefix) (String.length l - String.length prefix) in
        (try Bigint.of_string v with Invalid_argument m -> fail m)
      | None -> fail (Printf.sprintf "missing field %s" name)
    in
    let p = field "p" and q = field "q" in
    if not (Prime.is_probable_prime p) then fail "p is not prime";
    if not (Prime.is_probable_prime q) then fail "q is not prime";
    of_primes ~p ~q
  | _ -> fail "bad header"

let check_plaintext pk m =
  if Bigint.is_negative m || Bigint.compare m pk.n >= 0 then
    raise
      (Invalid_plaintext
         (Printf.sprintf "plaintext %s outside [0, n)" (Bigint.to_string m)))

(* Random r in [1, n) with gcd(r, n) = 1.  For honest keys a random unit
   fails coprimality with probability ~ 2/sqrt(n); we re-draw. *)
let random_unit pk rng =
  let rec draw () =
    let r = Ppst_rng.Secure_rng.below rng pk.n in
    if Bigint.is_zero r then draw ()
    else if Bigint.equal (Modular.gcd r pk.n) Bigint.one then r
    else draw ()
  in
  draw ()

(* With g = n+1: g^m = 1 + m*n (mod n^2), avoiding one exponentiation. *)
let g_pow_m pk m = Bigint.erem (Bigint.succ (Bigint.mul m pk.n)) pk.n_squared

let fresh_rn pk rng =
  let r = random_unit pk rng in
  Modular.pow_ctx pk.ctx_n2 r pk.n

(* r^n mod n^2 for the key holder: exponentiate modulo p^2 and q^2
   (half-size Montgomery contexts, ~4x cheaper per multiplication) and
   recombine by Garner with the precomputed (p^2)^-1 mod q^2.  Because
   n^2 = p^2 q^2 with gcd(p^2, q^2) = 1, the recombination is *exactly*
   r^n mod n^2 — the server-side encryption path stays byte-identical
   while paying roughly half the multiplication work. *)
let fresh_rn_sk sk r =
  let n = sk.public.n in
  let rp = Modular.pow_ctx sk.ctx_p2 r n in
  let rq = Modular.pow_ctx sk.ctx_q2 r n in
  let diff = Bigint.erem (Bigint.sub rq rp) sk.q_squared in
  let h = Modular.mul_ctx sk.ctx_q2 diff sk.p2_inv_mod_q2 in
  Bigint.erem (Bigint.add rp (Bigint.mul sk.p_squared h)) sk.public.n_squared

let encrypt pk rng m =
  check_plaintext pk m;
  ct_of_value pk (Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) (fresh_rn pk rng))

let encrypt_sk sk rng m =
  let pk = sk.public in
  check_plaintext pk m;
  let r = random_unit pk rng in
  ct_of_value pk (Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) (fresh_rn_sk sk r))

(* Batch encryption with the randomness pre-drawn sequentially: the rng
   is consumed in plaintext order exactly as a loop of [encrypt] calls
   would, so seeded transcripts do not depend on the worker count.  Only
   the pure exponentiations fan out. *)
let batch_buckets = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
let m_encrypt_batch =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.batch.encrypt"
let m_decrypt_batch =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.batch.decrypt"
let m_scalar_mul_batch =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.batch.scalar_mul"
let m_pool_refill =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.pool.refill"
let m_pool_misses = Ppst_telemetry.Metrics.counter "paillier.pool.misses"

let encrypt_batch ?(workers = Ppst_parallel.Pool.sequential) pk rng ms =
  Ppst_telemetry.Metrics.observe m_encrypt_batch (float_of_int (Array.length ms));
  Array.iter (check_plaintext pk) ms;
  let rs = Array.map (fun _ -> random_unit pk rng) ms in
  Ppst_parallel.Pool.map_array workers
    (fun (m, r) ->
      let rn = Modular.pow_ctx pk.ctx_n2 r pk.n in
      ct_of_value pk (Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) rn))
    (Array.map2 (fun m r -> (m, r)) ms rs)

let encrypt_batch_sk ?(workers = Ppst_parallel.Pool.sequential) sk rng ms =
  let pk = sk.public in
  Ppst_telemetry.Metrics.observe m_encrypt_batch (float_of_int (Array.length ms));
  Array.iter (check_plaintext pk) ms;
  let rs = Array.map (fun _ -> random_unit pk rng) ms in
  Ppst_parallel.Pool.map_array workers
    (fun (m, r) ->
      ct_of_value pk (Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) (fresh_rn_sk sk r)))
    (Array.map2 (fun m r -> (m, r)) ms rs)

(* Offline/online split (Paillier 1999, Section 6): the expensive factor
   r^n of a ciphertext is independent of the plaintext, so a party can
   precompute a pool of such factors while idle and encrypt online with
   two modular multiplications.  The protocol's client — the weak party in
   the paper's asymmetric setting — uses this for its masking offsets.

   The pool is a mutex-guarded FIFO: entries are consumed in production
   order, so a pooled run uses exactly the same r-sequence (per
   encryption) as an unpooled run drawing from the same rng, and
   transcripts match bit for bit.  [pending] counts entries promised by
   an in-flight background producer; consumers block (rather than miss)
   while production is still catching up. *)

(* An r^n factor kept in Montgomery form, ready to multiply into a
   ciphertext without conversion. *)
type rn = int array

let rn_mont_of_unit pk r =
  Montgomery.pow_raw (mont_n2 pk)
    (Modular.to_mont_ctx pk.ctx_n2 r)
    (Bigint.magnitude pk.n)

let rn_of_bigint pk v = Modular.to_mont_ctx pk.ctx_n2 v
let rn_to_bigint pk (rn : rn) = Modular.of_mont_ctx pk.ctx_n2 rn

type randomness_pool = {
  pool_n : Bigint.t;
  lock : Mutex.t;
  changed : Condition.t;
  store : rn Queue.t;
  mutable pending : int;
  mutable misses : int;
}

let pool_create pk =
  {
    pool_n = pk.n;
    lock = Mutex.create ();
    changed = Condition.create ();
    store = Queue.create ();
    pending = 0;
    misses = 0;
  }

let pool_size pool =
  Mutex.lock pool.lock;
  let n = Queue.length pool.store in
  Mutex.unlock pool.lock;
  n

let pool_misses pool =
  Mutex.lock pool.lock;
  let n = pool.misses in
  Mutex.unlock pool.lock;
  n

let check_pool_key pk pool =
  if not (Bigint.equal pool.pool_n pk.n) then raise Key_mismatch

let pool_push_all pool rns =
  Mutex.lock pool.lock;
  Array.iter (fun rn -> Queue.add rn pool.store) rns;
  Condition.broadcast pool.changed;
  Mutex.unlock pool.lock

let pool_refill ?(workers = Ppst_parallel.Pool.sequential) pk pool rng count =
  check_pool_key pk pool;
  Ppst_telemetry.Metrics.observe m_pool_refill (float_of_int count);
  (* Draw the units sequentially (rng order independent of worker count),
     exponentiate in parallel, then enqueue in draw order — consumers see
     factors exactly in the order the units were drawn. *)
  let rs = Array.init count (fun _ -> random_unit pk rng) in
  let rns = Ppst_parallel.Pool.map_array workers (rn_mont_of_unit pk) rs in
  pool_push_all pool rns

(* Fast refill via a noise subgroup: draw one unit h, set hn = h^n, and
   produce entries hn^a for short random exponents a of bits/2 + 64
   bits through a fixed-base table — ~bits/(2w) multiplications per
   entry instead of a full-width ladder, an order of magnitude cheaper.
   The entries are n-th residues drawn from the cyclic subgroup <h^n>
   rather than uniformly from all n-th residues, so this profile is an
   explicit opt-in (the packed/fast protocol profile); see SECURITY.md. *)
let fast_exponent_bits pk = (pk.bits / 2) + 64

let pool_refill_fast ?(workers = Ppst_parallel.Pool.sequential) pk pool rng count =
  check_pool_key pk pool;
  Ppst_telemetry.Metrics.observe m_pool_refill (float_of_int count);
  let h = random_unit pk rng in
  let hn = Modular.of_mont_ctx pk.ctx_n2 (rn_mont_of_unit pk h) in
  let ebits = fast_exponent_bits pk in
  let table = Fixed_base.create pk.ctx_n2 ~max_bits:ebits hn in
  let exps = Array.init count (fun _ -> Ppst_rng.Secure_rng.bits rng ebits) in
  let rns = Ppst_parallel.Pool.map_array workers (Fixed_base.pow_raw table) exps in
  pool_push_all pool rns

(* A cached fast-noise generator: the subgroup table of [pool_refill_fast]
   hoisted into a value, for peers (the server's packed-reply
   re-encryptions) that need a stream of cheap noise factors across many
   requests without a pool.  Same subgroup caveat as the fast refill. *)
type noise_gen = { gen_n : Bigint.t; gen_table : Fixed_base.t; gen_ebits : int }

let noise_gen_create pk rng =
  let h = random_unit pk rng in
  let hn = Modular.of_mont_ctx pk.ctx_n2 (rn_mont_of_unit pk h) in
  let gen_ebits = fast_exponent_bits pk in
  { gen_n = pk.n; gen_table = Fixed_base.create pk.ctx_n2 ~max_bits:gen_ebits hn; gen_ebits }

let noise_gen_rn g pk rng : rn =
  if not (Bigint.equal g.gen_n pk.n) then
    invalid_arg "Paillier.noise_gen_rn: generator belongs to a different key";
  Fixed_base.pow_raw g.gen_table (Ppst_rng.Secure_rng.bits rng g.gen_ebits)

(* Background production on a dedicated Domain.  The producer owns [rng]
   until the returned join completes: it draws every unit itself, in
   order, so determinism is preserved; consumers block in [rn_acquire]
   while [pending] entries are still owed instead of falling back to an
   online exponentiation. *)
let pool_refill_async ?(fast = false) pk pool rng count =
  check_pool_key pk pool;
  Ppst_telemetry.Metrics.observe m_pool_refill (float_of_int count);
  Mutex.lock pool.lock;
  pool.pending <- pool.pending + count;
  Mutex.unlock pool.lock;
  let push rn =
    Mutex.lock pool.lock;
    Queue.add rn pool.store;
    pool.pending <- pool.pending - 1;
    Condition.broadcast pool.changed;
    Mutex.unlock pool.lock
  in
  let abandon k =
    (* Producer died: un-promise the entries it still owed so consumers
       fall back to online exponentiation instead of blocking forever. *)
    Mutex.lock pool.lock;
    pool.pending <- pool.pending - k;
    Condition.broadcast pool.changed;
    Mutex.unlock pool.lock
  in
  let produce () =
    let produced = ref 0 in
    (try
       if fast then begin
         let h = random_unit pk rng in
         let hn = Modular.of_mont_ctx pk.ctx_n2 (rn_mont_of_unit pk h) in
         let ebits = fast_exponent_bits pk in
         let table = Fixed_base.create pk.ctx_n2 ~max_bits:ebits hn in
         for _ = 1 to count do
           let a = Ppst_rng.Secure_rng.bits rng ebits in
           push (Fixed_base.pow_raw table a);
           incr produced
         done
       end
       else
         for _ = 1 to count do
           push (rn_mont_of_unit pk (random_unit pk rng));
           incr produced
         done
     with e ->
       abandon (count - !produced);
       raise e)
  in
  let task = Ppst_parallel.Pool.background produce in
  fun () -> Ppst_parallel.Pool.await task

(* A unit of encryption randomness: either a precomputed [r^n] factor
   popped from the pool, or — on a pool miss — a raw unit [r] whose
   exponentiation is still owed.  Splitting acquisition (sequential,
   consumes rng/pool state) from realization (pure, parallelizable) lets
   the client fan out its masking encryptions deterministically. *)
type rn_source = Pooled of rn | Owed of Bigint.t

let rn_acquire pk pool rng =
  check_pool_key pk pool;
  Mutex.lock pool.lock;
  while Queue.is_empty pool.store && pool.pending > 0 do
    Condition.wait pool.changed pool.lock
  done;
  match Queue.take_opt pool.store with
  | Some rn ->
    Mutex.unlock pool.lock;
    Pooled rn
  | None ->
    pool.misses <- pool.misses + 1;
    (* The rng is free here: misses only happen once no producer is
       pending, i.e. after the producer's final draw. *)
    let r = random_unit pk rng in
    Mutex.unlock pool.lock;
    Ppst_telemetry.Metrics.incr m_pool_misses;
    Owed r

let rn_realize pk = function
  | Pooled rn -> rn
  | Owed r -> rn_mont_of_unit pk r

let encrypt_with_rn pk ~(rn : rn) m =
  check_plaintext pk m;
  let gm = Modular.to_mont_ctx pk.ctx_n2 (g_pow_m pk m) in
  ct_of_mont pk (Montgomery.mont_mul_raw (mont_n2 pk) gm rn)

let encrypt_pooled pk pool rng m =
  check_plaintext pk m;
  let rn = rn_realize pk (rn_acquire pk pool rng) in
  encrypt_with_rn pk ~rn m

let encrypt_zero pk rng = encrypt pk rng Bigint.zero

let decrypt sk c =
  let pk = sk.public in
  check_same_key pk c;
  let x = Modular.pow_ctx pk.ctx_n2 (ct_value c) sk.lambda in
  Bigint.erem (Bigint.mul (l_function x pk.n) sk.mu) pk.n

(* CRT decryption: decrypt mod p and mod q separately with half-size
   exponentiations, then recombine. *)
let decrypt_crt sk c =
  let pk = sk.public in
  check_same_key pk c;
  let v = ct_value c in
  let p1 = Bigint.pred sk.p and q1 = Bigint.pred sk.q in
  let cp = Bigint.erem v sk.p_squared in
  let cq = Bigint.erem v sk.q_squared in
  let lp x = Bigint.div (Bigint.pred x) sk.p in
  let lq x = Bigint.div (Bigint.pred x) sk.q in
  let mp = Bigint.erem (Bigint.mul (lp (Modular.pow_ctx sk.ctx_p2 cp p1)) sk.hp) sk.p in
  let mq = Bigint.erem (Bigint.mul (lq (Modular.pow_ctx sk.ctx_q2 cq q1)) sk.hq) sk.q in
  (* Garner recombination: m = mp + p * ((mq - mp) * p^-1 mod q). *)
  let diff = Bigint.erem (Bigint.sub mq mp) sk.q in
  let h = Bigint.erem (Bigint.mul diff sk.p_inv_mod_q) sk.q in
  Bigint.erem (Bigint.add mp (Bigint.mul sk.p h)) pk.n

(* Decryption is pure per ciphertext once the canonical value is
   realized, so batches fan out unchanged — [ct_value] runs before the
   fan-out so workers never race on the caches. *)
let decrypt_batch ?(workers = Ppst_parallel.Pool.sequential) sk cs =
  Ppst_telemetry.Metrics.observe m_decrypt_batch (float_of_int (Array.length cs));
  Array.iter
    (fun c ->
      check_same_key sk.public c;
      ignore (ct_value c))
    cs;
  Ppst_parallel.Pool.map_array workers (decrypt sk) cs

let decrypt_crt_batch ?(workers = Ppst_parallel.Pool.sequential) sk cs =
  Ppst_telemetry.Metrics.observe m_decrypt_batch (float_of_int (Array.length cs));
  Array.iter
    (fun c ->
      check_same_key sk.public c;
      ignore (ct_value c))
    cs;
  Ppst_parallel.Pool.map_array workers (decrypt_crt sk) cs

let add pk c1 c2 =
  check_same_key pk c1;
  check_same_key pk c2;
  ct_of_mont pk (Montgomery.mont_mul_raw (mont_n2 pk) (ct_mont c1) (ct_mont c2))

let add_plain pk c k =
  check_same_key pk c;
  let k = Bigint.erem k pk.n in
  let gk = Modular.to_mont_ctx pk.ctx_n2 (g_pow_m pk k) in
  ct_of_mont pk (Montgomery.mont_mul_raw (mont_n2 pk) (ct_mont c) gk)

let scalar_mul pk c k =
  check_same_key pk c;
  let k = Bigint.erem k pk.n in
  ct_of_mont pk (Montgomery.pow_raw (mont_n2 pk) (ct_mont c) (Bigint.magnitude k))

let scalar_mul_batch ?(workers = Ppst_parallel.Pool.sequential) pk cks =
  Ppst_telemetry.Metrics.observe m_scalar_mul_batch
    (float_of_int (Array.length cks));
  Array.iter
    (fun (c, _) ->
      check_same_key pk c;
      ignore (ct_mont c))
    cks;
  Ppst_parallel.Pool.map_array workers (fun (c, k) -> scalar_mul pk c k) cks

let neg pk c = scalar_mul pk c (Bigint.pred pk.n)

let sub pk c1 c2 = add pk c1 (neg pk c2)

(* Homomorphic negation by modular inverse: Enc(m)^-1 = Enc(-m) with
   inverted randomness.  Same plaintext as [neg] (a full n-1 power) but
   one egcd instead of a 1024-bit ladder — the packed fast path inverts
   the server's coordinate ciphertexts once and then raises them to
   *small* positive exponents.  Ciphertext bytes differ from [neg], so
   this lives on the packed (distance-compared) path only. *)
let invert_ciphertext pk c =
  check_same_key pk c;
  ct_of_value pk (Modular.invert (ct_value c) pk.n_squared)

let rerandomize pk rng c =
  check_same_key pk c;
  let rn = rn_of_bigint pk (fresh_rn pk rng) in
  ct_of_mont pk (Montgomery.mont_mul_raw (mont_n2 pk) (ct_mont c) rn)

let rerandomize_sk sk rng c =
  let pk = sk.public in
  check_same_key pk c;
  let r = random_unit pk rng in
  let rn = rn_of_bigint pk (fresh_rn_sk sk r) in
  ct_of_mont pk (Montgomery.mont_mul_raw (mont_n2 pk) (ct_mont c) rn)

let rerandomize_pooled pk pool rng c =
  check_same_key pk c;
  let rn = rn_realize pk (rn_acquire pk pool rng) in
  ct_of_mont pk (Montgomery.mont_mul_raw (mont_n2 pk) (ct_mont c) rn)

(* Plaintext packing: k values of at most [slot_bits] bits ride one
   ciphertext as sum_j v_j 2^(j*slot_bits), leaving the top bit of n as
   headroom so the packed sum never wraps mod n.  Packing encrypted
   slots uses Horner's rule in Montgomery form — slot_bits squarings and
   one multiplication per slot — so a pack of k candidates costs far
   less than one fresh encryption, and the server pays ONE decryption
   exponent for all k. *)
let pack_capacity pk ~slot_bits =
  if slot_bits < 1 then invalid_arg "Paillier.pack_capacity: slot_bits < 1";
  (pk.bits - 1) / slot_bits

let check_slot pk ~slot_bits v =
  if Bigint.is_negative v || Bigint.num_bits v > slot_bits then
    raise
      (Invalid_plaintext
         (Printf.sprintf "packed slot outside [0, 2^%d)" slot_bits));
  ignore pk

let pack_plain pk ~slot_bits values =
  let k = Array.length values in
  if k = 0 || k > pack_capacity pk ~slot_bits then
    invalid_arg "Paillier.pack_plain: slot count outside [1, capacity]";
  Array.iter (check_slot pk ~slot_bits) values;
  let acc = ref Bigint.zero in
  for j = k - 1 downto 0 do
    acc := Bigint.add (Bigint.shift_left !acc slot_bits) values.(j)
  done;
  !acc

let unpack_plain ~slot_bits ~count packed =
  if slot_bits < 1 || count < 0 then invalid_arg "Paillier.unpack_plain";
  let slot_mod = Bigint.shift_left Bigint.one slot_bits in
  Array.init count (fun j ->
      Bigint.erem (Bigint.shift_right packed (j * slot_bits)) slot_mod)

let pack_ciphertexts pk ~slot_bits cts =
  let k = Array.length cts in
  if k = 0 || k > pack_capacity pk ~slot_bits then
    invalid_arg "Paillier.pack_ciphertexts: slot count outside [1, capacity]";
  Array.iter (check_same_key pk) cts;
  let mont = mont_n2 pk in
  (* Horner from the top slot: acc <- acc^(2^slot_bits) * ct_j. *)
  let acc = ref (ct_mont cts.(k - 1)) in
  for j = k - 2 downto 0 do
    for _ = 1 to slot_bits do
      acc := Montgomery.mont_mul_raw mont !acc !acc
    done;
    acc := Montgomery.mont_mul_raw mont !acc (ct_mont cts.(j))
  done;
  ct_of_mont pk !acc

(* Signed encoding: x in (-n/2, n/2) represented as x mod n. *)
let half_n pk = Bigint.shift_right pk.n 1

let encode_signed pk x =
  let h = half_n pk in
  if Bigint.compare (Bigint.abs x) h >= 0 then
    raise (Invalid_plaintext "signed value outside (-n/2, n/2)");
  Bigint.erem x pk.n

let decode_signed pk m =
  if Bigint.compare m (half_n pk) > 0 then Bigint.sub m pk.n else m

let encrypt_signed pk rng x = encrypt pk rng (encode_signed pk x)

let decrypt_signed sk c = decode_signed sk.public (decrypt_crt sk c)

let ciphertext_to_bigint c = ct_value c

let ciphertext_of_bigint pk v =
  if Bigint.is_negative v || Bigint.compare v pk.n_squared >= 0 then
    raise (Invalid_plaintext "ciphertext value outside [0, n^2)");
  ct_of_value pk v

let m_invalid_ciphertext =
  Ppst_telemetry.Metrics.counter "paillier.invalid_ciphertext"

(* Strict validation for hostile-input boundaries (the server's decrypt
   path): a valid Paillier ciphertext is a unit of Z_{n^2}, i.e.
   c in [1, n^2-1] with gcd(c, n) = 1.  0, multiples of p or q, and
   out-of-range values are not ciphertexts — decrypting them yields
   nonsense (or, for non-units, a value whose gcd with n factors the
   modulus), so they must be rejected as typed garbage before a single
   CRT exponentiation runs. *)
let validate_ciphertext pk v =
  let invalid msg =
    Ppst_telemetry.Metrics.incr m_invalid_ciphertext;
    raise (Invalid_ciphertext msg)
  in
  if Bigint.is_negative v || Bigint.equal v Bigint.zero then
    invalid "ciphertext outside [1, n^2-1]";
  if Bigint.compare v pk.n_squared >= 0 then
    invalid "ciphertext outside [1, n^2-1]";
  if not (Bigint.equal (Modular.gcd v pk.n) Bigint.one) then
    invalid "ciphertext is not a unit mod n^2";
  ct_of_value pk v

let ciphertext_bytes pk = (Bigint.num_bits pk.n_squared + 7) / 8

let equal_ciphertext a b =
  Bigint.equal a.key_n b.key_n && Bigint.equal (ct_value a) (ct_value b)
