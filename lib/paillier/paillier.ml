open Ppst_bigint

type public_key = {
  n : Bigint.t;
  n_squared : Bigint.t;
  g : Bigint.t;
  bits : int;
  ctx_n2 : Modular.ctx;
}

type private_key = {
  p : Bigint.t;
  q : Bigint.t;
  lambda : Bigint.t;
  mu : Bigint.t;
  public : public_key;
  p_squared : Bigint.t;
  q_squared : Bigint.t;
  hp : Bigint.t;
  hq : Bigint.t;
  p_inv_mod_q : Bigint.t;
  ctx_p2 : Modular.ctx;
  ctx_q2 : Modular.ctx;
}

type ciphertext = { key_n : Bigint.t; value : Bigint.t }

exception Invalid_plaintext of string
exception Invalid_ciphertext of string
exception Key_mismatch

let check_same_key pk c =
  if not (Bigint.equal pk.n c.key_n) then raise Key_mismatch

(* L(x) = (x - 1) / n, defined on x = 1 mod n. *)
let l_function x n = Bigint.div (Bigint.pred x) n

let make_public n bits =
  {
    n;
    n_squared = Bigint.mul n n;
    g = Bigint.succ n;
    bits;
    ctx_n2 = Modular.make_ctx (Bigint.mul n n);
  }

let public_of_modulus n ~bits =
  if Bigint.compare n Bigint.two <= 0 || Bigint.is_even n then
    raise (Invalid_plaintext "modulus must be an odd integer > 2");
  if Bigint.num_bits n <> bits then
    raise
      (Invalid_plaintext
         (Printf.sprintf "modulus has %d bits, expected %d" (Bigint.num_bits n) bits));
  make_public n bits

(* Assemble the full key material from validated primes. *)
let assemble p q =
  let n = Bigint.mul p q in
  let p1 = Bigint.pred p and q1 = Bigint.pred q in
  let lambda = Modular.lcm p1 q1 in
  let public = make_public n (Bigint.num_bits n) in
  (* mu = (L(g^lambda mod n^2))^-1 mod n; with g = n+1,
     g^lambda = 1 + lambda*n mod n^2, so L(...) = lambda mod n. *)
  let mu = Modular.invert lambda n in
  let p_squared = Bigint.mul p p in
  let q_squared = Bigint.mul q q in
  (* CRT decryption constants (as in accelerated Paillier):
     hp = L_p(g^{p-1} mod p^2)^-1 mod p, and symmetrically hq. *)
  let lp x = Bigint.div (Bigint.pred x) p in
  let lq x = Bigint.div (Bigint.pred x) q in
  let g = public.g in
  let ctx_p2 = Modular.make_ctx p_squared in
  let ctx_q2 = Modular.make_ctx q_squared in
  let hp = Modular.invert (lp (Modular.pow_ctx ctx_p2 g p1)) p in
  let hq = Modular.invert (lq (Modular.pow_ctx ctx_q2 g q1)) q in
  let p_inv_mod_q = Modular.invert p q in
  ( public,
    {
      p; q; lambda; mu; public; p_squared; q_squared; hp; hq; p_inv_mod_q;
      ctx_p2; ctx_q2;
    } )

let of_primes ~p ~q =
  if Bigint.compare p Bigint.two <= 0 || Bigint.compare q Bigint.two <= 0 then
    raise (Invalid_plaintext "primes must exceed 2");
  if Bigint.equal p q then raise (Invalid_plaintext "primes must be distinct");
  let p1 = Bigint.pred p and q1 = Bigint.pred q in
  let n = Bigint.mul p q in
  if not (Bigint.equal (Modular.gcd n (Bigint.mul p1 q1)) Bigint.one) then
    raise (Invalid_plaintext "gcd(pq, (p-1)(q-1)) must be 1");
  assemble p q

let keygen ?(bits = 64) rng =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus below 16 bits";
  let half = bits / 2 in
  let random_bits b = Ppst_rng.Secure_rng.bits rng b in
  let rec gen () =
    let p = Prime.random_prime ~random_bits ~bits:half in
    let q = Prime.random_prime ~random_bits ~bits:(bits - half) in
    if Bigint.equal p q then gen ()
    else begin
      let n = Bigint.mul p q in
      let p1 = Bigint.pred p and q1 = Bigint.pred q in
      (* g = n+1 requires gcd(n, (p-1)(q-1)) = 1, which holds when neither
         prime divides the other's predecessor. *)
      if
        Bigint.num_bits n = bits
        && Bigint.equal (Modular.gcd n (Bigint.mul p1 q1)) Bigint.one
      then (p, q)
      else gen ()
    end
  in
  let p, q = gen () in
  assemble p q

let key_file_header = "ppst-paillier-v1"

let private_key_to_string sk =
  Printf.sprintf "%s\np=%s\nq=%s\n" key_file_header (Bigint.to_string sk.p)
    (Bigint.to_string sk.q)

let private_key_of_string text =
  let fail m = raise (Invalid_plaintext ("key parse: " ^ m)) in
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: rest when header = key_file_header ->
    let field name =
      let prefix = name ^ "=" in
      match
        List.find_opt
          (fun l -> String.length l > String.length prefix
                    && String.sub l 0 (String.length prefix) = prefix)
          rest
      with
      | Some l ->
        let v = String.sub l (String.length prefix) (String.length l - String.length prefix) in
        (try Bigint.of_string v with Invalid_argument m -> fail m)
      | None -> fail (Printf.sprintf "missing field %s" name)
    in
    let p = field "p" and q = field "q" in
    if not (Prime.is_probable_prime p) then fail "p is not prime";
    if not (Prime.is_probable_prime q) then fail "q is not prime";
    of_primes ~p ~q
  | _ -> fail "bad header"

let check_plaintext pk m =
  if Bigint.is_negative m || Bigint.compare m pk.n >= 0 then
    raise
      (Invalid_plaintext
         (Printf.sprintf "plaintext %s outside [0, n)" (Bigint.to_string m)))

(* Random r in [1, n) with gcd(r, n) = 1.  For honest keys a random unit
   fails coprimality with probability ~ 2/sqrt(n); we re-draw. *)
let random_unit pk rng =
  let rec draw () =
    let r = Ppst_rng.Secure_rng.below rng pk.n in
    if Bigint.is_zero r then draw ()
    else if Bigint.equal (Modular.gcd r pk.n) Bigint.one then r
    else draw ()
  in
  draw ()

(* With g = n+1: g^m = 1 + m*n (mod n^2), avoiding one exponentiation. *)
let g_pow_m pk m = Bigint.erem (Bigint.succ (Bigint.mul m pk.n)) pk.n_squared

let fresh_rn pk rng =
  let r = random_unit pk rng in
  Modular.pow_ctx pk.ctx_n2 r pk.n

let encrypt pk rng m =
  check_plaintext pk m;
  { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) (fresh_rn pk rng) }

(* Batch encryption with the randomness pre-drawn sequentially: the rng
   is consumed in plaintext order exactly as a loop of [encrypt] calls
   would, so seeded transcripts do not depend on the worker count.  Only
   the pure exponentiations fan out. *)
let batch_buckets = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
let m_encrypt_batch =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.batch.encrypt"
let m_decrypt_batch =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.batch.decrypt"
let m_scalar_mul_batch =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.batch.scalar_mul"
let m_pool_refill =
  Ppst_telemetry.Metrics.histogram ~buckets:batch_buckets "paillier.pool.refill"
let m_pool_misses = Ppst_telemetry.Metrics.counter "paillier.pool.misses"

let encrypt_batch ?(workers = Ppst_parallel.Pool.sequential) pk rng ms =
  Ppst_telemetry.Metrics.observe m_encrypt_batch (float_of_int (Array.length ms));
  Array.iter (check_plaintext pk) ms;
  let rs = Array.map (fun _ -> random_unit pk rng) ms in
  Ppst_parallel.Pool.map_array workers
    (fun (m, r) ->
      let rn = Modular.pow_ctx pk.ctx_n2 r pk.n in
      { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) rn })
    (Array.map2 (fun m r -> (m, r)) ms rs)

(* Offline/online split (Paillier 1999, Section 6): the expensive factor
   r^n of a ciphertext is independent of the plaintext, so a party can
   precompute a pool of such factors while idle and encrypt online with
   two modular multiplications.  The protocol's client — the weak party in
   the paper's asymmetric setting — uses this for its masking offsets. *)
type randomness_pool = {
  pool_n : Bigint.t;
  mutable store : Bigint.t list;
  mutable available : int;
  mutable misses : int;
}

let pool_create pk = { pool_n = pk.n; store = []; available = 0; misses = 0 }

let pool_size pool = pool.available
let pool_misses pool = pool.misses

let pool_refill ?(workers = Ppst_parallel.Pool.sequential) pk pool rng count =
  if not (Bigint.equal pool.pool_n pk.n) then raise Key_mismatch;
  Ppst_telemetry.Metrics.observe m_pool_refill (float_of_int count);
  (* Draw the units sequentially (rng order independent of worker count),
     exponentiate in parallel, then push in draw order — the store ends up
     exactly as the sequential loop would leave it. *)
  let rs = Array.init count (fun _ -> random_unit pk rng) in
  let rns =
    Ppst_parallel.Pool.map_array workers (fun r -> Modular.pow_ctx pk.ctx_n2 r pk.n) rs
  in
  Array.iter (fun rn -> pool.store <- rn :: pool.store) rns;
  pool.available <- pool.available + count

(* A unit of encryption randomness: either a precomputed [r^n] factor
   popped from the pool, or — on a pool miss — a raw unit [r] whose
   exponentiation is still owed.  Splitting acquisition (sequential,
   consumes rng/pool state) from realization (pure, parallelizable) lets
   the client fan out its masking encryptions deterministically. *)
type rn_source = Pooled of Bigint.t | Owed of Bigint.t

let rn_acquire pk pool rng =
  if not (Bigint.equal pool.pool_n pk.n) then raise Key_mismatch;
  match pool.store with
  | rn :: rest ->
    pool.store <- rest;
    pool.available <- pool.available - 1;
    Pooled rn
  | [] ->
    pool.misses <- pool.misses + 1;
    Ppst_telemetry.Metrics.incr m_pool_misses;
    Owed (random_unit pk rng)

let rn_realize pk = function
  | Pooled rn -> rn
  | Owed r -> Modular.pow_ctx pk.ctx_n2 r pk.n

let encrypt_with_rn pk ~rn m =
  check_plaintext pk m;
  { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) rn }

let encrypt_pooled pk pool rng m =
  check_plaintext pk m;
  let rn = rn_realize pk (rn_acquire pk pool rng) in
  { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 (g_pow_m pk m) rn }

let encrypt_zero pk rng = encrypt pk rng Bigint.zero

let decrypt sk c =
  let pk = sk.public in
  check_same_key pk c;
  let x = Modular.pow_ctx pk.ctx_n2 c.value sk.lambda in
  Bigint.erem (Bigint.mul (l_function x pk.n) sk.mu) pk.n

(* CRT decryption: decrypt mod p and mod q separately with half-size
   exponentiations, then recombine. *)
let decrypt_crt sk c =
  let pk = sk.public in
  check_same_key pk c;
  let p1 = Bigint.pred sk.p and q1 = Bigint.pred sk.q in
  let cp = Bigint.erem c.value sk.p_squared in
  let cq = Bigint.erem c.value sk.q_squared in
  let lp x = Bigint.div (Bigint.pred x) sk.p in
  let lq x = Bigint.div (Bigint.pred x) sk.q in
  let mp = Bigint.erem (Bigint.mul (lp (Modular.pow_ctx sk.ctx_p2 cp p1)) sk.hp) sk.p in
  let mq = Bigint.erem (Bigint.mul (lq (Modular.pow_ctx sk.ctx_q2 cq q1)) sk.hq) sk.q in
  (* Garner recombination: m = mp + p * ((mq - mp) * p^-1 mod q). *)
  let diff = Bigint.erem (Bigint.sub mq mp) sk.q in
  let h = Bigint.erem (Bigint.mul diff sk.p_inv_mod_q) sk.q in
  Bigint.erem (Bigint.add mp (Bigint.mul sk.p h)) pk.n

(* Decryption is pure per ciphertext, so batches fan out unchanged. *)
let decrypt_batch ?(workers = Ppst_parallel.Pool.sequential) sk cs =
  Ppst_telemetry.Metrics.observe m_decrypt_batch (float_of_int (Array.length cs));
  Array.iter (check_same_key sk.public) cs;
  Ppst_parallel.Pool.map_array workers (decrypt sk) cs

let decrypt_crt_batch ?(workers = Ppst_parallel.Pool.sequential) sk cs =
  Ppst_telemetry.Metrics.observe m_decrypt_batch (float_of_int (Array.length cs));
  Array.iter (check_same_key sk.public) cs;
  Ppst_parallel.Pool.map_array workers (decrypt_crt sk) cs

let add pk c1 c2 =
  check_same_key pk c1;
  check_same_key pk c2;
  { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 c1.value c2.value }

let add_plain pk c k =
  check_same_key pk c;
  let k = Bigint.erem k pk.n in
  { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 c.value (g_pow_m pk k) }

let scalar_mul pk c k =
  check_same_key pk c;
  let k = Bigint.erem k pk.n in
  { key_n = pk.n; value = Modular.pow_ctx pk.ctx_n2 c.value k }

let scalar_mul_batch ?(workers = Ppst_parallel.Pool.sequential) pk cks =
  Ppst_telemetry.Metrics.observe m_scalar_mul_batch
    (float_of_int (Array.length cks));
  Array.iter (fun (c, _) -> check_same_key pk c) cks;
  Ppst_parallel.Pool.map_array workers (fun (c, k) -> scalar_mul pk c k) cks

let neg pk c = scalar_mul pk c (Bigint.pred pk.n)

let sub pk c1 c2 = add pk c1 (neg pk c2)

let rerandomize pk rng c =
  check_same_key pk c;
  let r = random_unit pk rng in
  let rn = Modular.pow_ctx pk.ctx_n2 r pk.n in
  { key_n = pk.n; value = Modular.mul_ctx pk.ctx_n2 c.value rn }

(* Signed encoding: x in (-n/2, n/2) represented as x mod n. *)
let half_n pk = Bigint.shift_right pk.n 1

let encode_signed pk x =
  let h = half_n pk in
  if Bigint.compare (Bigint.abs x) h >= 0 then
    raise (Invalid_plaintext "signed value outside (-n/2, n/2)");
  Bigint.erem x pk.n

let decode_signed pk m =
  if Bigint.compare m (half_n pk) > 0 then Bigint.sub m pk.n else m

let encrypt_signed pk rng x = encrypt pk rng (encode_signed pk x)

let decrypt_signed sk c = decode_signed sk.public (decrypt_crt sk c)

let ciphertext_to_bigint c = c.value

let ciphertext_of_bigint pk v =
  if Bigint.is_negative v || Bigint.compare v pk.n_squared >= 0 then
    raise (Invalid_plaintext "ciphertext value outside [0, n^2)");
  { key_n = pk.n; value = v }

let m_invalid_ciphertext =
  Ppst_telemetry.Metrics.counter "paillier.invalid_ciphertext"

(* Strict validation for hostile-input boundaries (the server's decrypt
   path): a valid Paillier ciphertext is a unit of Z_{n^2}, i.e.
   c in [1, n^2-1] with gcd(c, n) = 1.  0, multiples of p or q, and
   out-of-range values are not ciphertexts — decrypting them yields
   nonsense (or, for non-units, a value whose gcd with n factors the
   modulus), so they must be rejected as typed garbage before a single
   CRT exponentiation runs. *)
let validate_ciphertext pk v =
  let invalid msg =
    Ppst_telemetry.Metrics.incr m_invalid_ciphertext;
    raise (Invalid_ciphertext msg)
  in
  if Bigint.is_negative v || Bigint.equal v Bigint.zero then
    invalid "ciphertext outside [1, n^2-1]";
  if Bigint.compare v pk.n_squared >= 0 then
    invalid "ciphertext outside [1, n^2-1]";
  if not (Bigint.equal (Modular.gcd v pk.n) Bigint.one) then
    invalid "ciphertext is not a unit mod n^2";
  { key_n = pk.n; value = v }

let ciphertext_bytes pk = (Bigint.num_bits pk.n_squared + 7) / 8

let equal_ciphertext a b =
  Bigint.equal a.key_n b.key_n && Bigint.equal a.value b.value
