(** One retry policy for every reconnect path: capped exponential
    backoff with {e full jitter} drawn from the ChaCha20 CSPRNG.

    Used by {!Channel.connect} (initial connect), {!Channel.request}
    (mid-session reconnect + resume after {!Channel.Connection_lost} /
    {!Channel.Frame_corrupt}) and the [ppst_client] Busy loop, so all
    three share the same backoff shape and honour the server's
    [Busy.retry_after_s] hint the same way. *)

type policy = {
  max_attempts : int;  (** total tries, the first one included; [>= 1] *)
  base_delay_s : float;  (** backoff ceiling before attempt 2 *)
  max_delay_s : float;  (** backoff ceiling never grows past this *)
  multiplier : float;  (** ceiling growth per attempt (2.0 = doubling) *)
}

val default_policy : policy
(** 8 attempts, 50 ms base, 2 s cap, doubling. *)

exception Exhausted of { attempts : int; last : exn }
(** Raised when every attempt failed with a retryable error; [last] is
    the final attempt's exception. *)

val backoff_delay :
  policy -> rng:Ppst_rng.Secure_rng.t -> attempt:int -> hint:float option -> float
(** The sleep before attempt [attempt + 1]: uniform in
    [\[0, min (max_delay_s, base_delay_s * multiplier^(attempt-1))\]]
    (full jitter), floored at [hint] when the peer sent a retry-after.
    Exposed for tests. *)

(** Client-side circuit breaker over the shed/Busy answer.

    A server in sustained overload sheds every new session; retrying on
    schedule only adds to the stampede.  The breaker counts
    {e consecutive} shed answers ([`Retry_after] verdicts) and, at
    [threshold], opens: attempts fail locally with {!Open_circuit} —
    the server never sees them — until the cooldown (floored at the
    last retry-after hint) passes.  Then one probe is allowed through
    (half-open); success closes the breaker, another shed reopens it.
    Non-shed failures (connection lost, corruption) break the streak
    but never open the breaker: it reacts to overload, not to faults.

    The clock is injectable for deterministic tests, like
    {!Resume_table} and {!Ratelimit}.  Thread-safe. *)
module Breaker : sig
  type config = {
    threshold : int;  (** consecutive sheds before opening; [>= 1] *)
    cooldown_s : float;  (** minimum open duration; [> 0] *)
  }

  val default_config : config
  (** 3 consecutive sheds, 5 s cooldown. *)

  exception Open_circuit of { retry_after_s : float }
  (** An attempt was suppressed locally; [retry_after_s] is the
      remaining cooldown. *)

  type t

  val create : ?now:(unit -> float) -> ?config:config -> unit -> t
  (** [?now] defaults to the monotonic clock.
      @raise Invalid_argument on threshold < 1 or non-positive
      cooldown. *)

  val acquire : t -> [ `Proceed | `Open of float ]
  (** Ask permission to attempt.  [`Open remaining_s] means fail
      locally; [`Proceed] from an open breaker whose cooldown has
      passed claims the single half-open probe slot. *)

  val success : t -> unit
  (** The attempt succeeded: close, reset the streak. *)

  val shed : t -> hint:float -> unit
  (** The attempt was shed (Busy/throttle).  May open the breaker;
      [hint] floors the cooldown. *)

  val failure : t -> unit
  (** The attempt failed for a non-shed reason: resets the streak
      (and ends a half-open probe without a verdict). *)

  val state : t -> [ `Closed | `Open | `Half_open ]
  val opened_total : t -> int
end

val with_retry :
  ?policy:policy ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?sleep:(float -> unit) ->
  ?on_attempt:(attempt:int -> delay_s:float -> exn -> unit) ->
  ?breaker:Breaker.t ->
  classify:(exn -> [ `Retry | `Retry_after of float | `Fail ]) ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying per [classify]: [`Fail] re-raises immediately,
    [`Retry] backs off and tries again, [`Retry_after s] does the same
    but never sleeps less than [s].  [?rng] defaults to a fresh
    system-seeded generator; [?sleep] defaults to [Thread.delay]
    (injectable for fast deterministic tests); [?on_attempt] observes
    each retry (logging).

    [?breaker] threads every attempt through a {!Breaker}: outcomes
    feed its state machine ([`Retry_after] verdicts count as sheds),
    and while it is open each would-be attempt is replaced by a local
    {!Breaker.Open_circuit} failure that consumes a retry slot and
    sleeps at least the remaining cooldown — so a run of attempts
    against an overloaded server collapses to the probe schedule.
    @raise Exhausted after [policy.max_attempts] failed tries.
    @raise Invalid_argument when [policy.max_attempts < 1]. *)
