(** One retry policy for every reconnect path: capped exponential
    backoff with {e full jitter} drawn from the ChaCha20 CSPRNG.

    Used by {!Channel.connect} (initial connect), {!Channel.request}
    (mid-session reconnect + resume after {!Channel.Connection_lost} /
    {!Channel.Frame_corrupt}) and the [ppst_client] Busy loop, so all
    three share the same backoff shape and honour the server's
    [Busy.retry_after_s] hint the same way. *)

type policy = {
  max_attempts : int;  (** total tries, the first one included; [>= 1] *)
  base_delay_s : float;  (** backoff ceiling before attempt 2 *)
  max_delay_s : float;  (** backoff ceiling never grows past this *)
  multiplier : float;  (** ceiling growth per attempt (2.0 = doubling) *)
}

val default_policy : policy
(** 8 attempts, 50 ms base, 2 s cap, doubling. *)

exception Exhausted of { attempts : int; last : exn }
(** Raised when every attempt failed with a retryable error; [last] is
    the final attempt's exception. *)

val backoff_delay :
  policy -> rng:Ppst_rng.Secure_rng.t -> attempt:int -> hint:float option -> float
(** The sleep before attempt [attempt + 1]: uniform in
    [\[0, min (max_delay_s, base_delay_s * multiplier^(attempt-1))\]]
    (full jitter), floored at [hint] when the peer sent a retry-after.
    Exposed for tests. *)

val with_retry :
  ?policy:policy ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?sleep:(float -> unit) ->
  ?on_attempt:(attempt:int -> delay_s:float -> exn -> unit) ->
  classify:(exn -> [ `Retry | `Retry_after of float | `Fail ]) ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying per [classify]: [`Fail] re-raises immediately,
    [`Retry] backs off and tries again, [`Retry_after s] does the same
    but never sleeps less than [s].  [?rng] defaults to a fresh
    system-seeded generator; [?sleep] defaults to [Thread.delay]
    (injectable for fast deterministic tests); [?on_attempt] observes
    each retry (logging).
    @raise Exhausted after [policy.max_attempts] failed tries.
    @raise Invalid_argument when [policy.max_attempts < 1]. *)
