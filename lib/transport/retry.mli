(** One retry policy for every reconnect path: capped exponential
    backoff with {e full jitter} drawn from the ChaCha20 CSPRNG.

    Used by {!Channel.connect} (initial connect), {!Channel.request}
    (mid-session reconnect + resume after {!Channel.Connection_lost} /
    {!Channel.Frame_corrupt}) and the [ppst_client] Busy loop, so all
    three share the same backoff shape and honour the server's
    [Busy.retry_after_s] hint the same way. *)

type policy = {
  max_attempts : int;  (** total tries, the first one included; [>= 1] *)
  base_delay_s : float;  (** backoff ceiling before attempt 2 *)
  max_delay_s : float;  (** backoff ceiling never grows past this *)
  multiplier : float;  (** ceiling growth per attempt (2.0 = doubling) *)
}

val default_policy : policy
(** 8 attempts, 50 ms base, 2 s cap, doubling. *)

exception Exhausted of { attempts : int; last : exn }
(** Raised when every attempt failed with a retryable error; [last] is
    the final attempt's exception. *)

(** Wall-clock budget for one whole logical operation.

    A {!policy} bounds how many times something is attempted; a budget
    bounds the total {e elapsed} time of the operation, reconnect and
    backoff sleeps included.  One budget is created per user-visible
    operation (e.g. from [ppst_client --budget-s]) and threaded through
    every retry layer underneath — initial connect, mid-session resume,
    Busy loops — so no amount of nested retrying outlives the deadline.
    {!with_retry} additionally truncates its final backoff sleep to the
    remaining budget: the operation gives up within [B] plus at most one
    attempt's own duration, never mid-sleep past the budget.

    The clock is injectable for deterministic tests (like {!Breaker});
    the default is the monotonic clock, whose timescale matches
    {!Channel.read_frame}'s [?deadline]. *)
module Budget : sig
  type t

  exception Exceeded of { budget_s : float }
  (** The operation's budget ran out mid-retry. *)

  val create : ?now:(unit -> float) -> budget_s:float -> unit -> t
  (** Start a budget of [budget_s] seconds from now.
      @raise Invalid_argument on a non-positive budget. *)

  val budget_s : t -> float
  (** The budget this was created with. *)

  val deadline : t -> float
  (** Absolute expiry instant, on the budget's own clock. *)

  val remaining_s : t -> float
  (** Seconds left, floored at [0]. *)

  val expired : t -> bool

  val check : t -> unit
  (** @raise Exceeded when the budget has expired. *)

  val sub : t -> budget_s:float -> t
  (** A sub-operation's budget: [budget_s] seconds from now, clamped so
      it never extends past the parent's deadline.  May be born already
      expired when the parent has no time left. *)
end

val backoff_delay :
  policy -> rng:Ppst_rng.Secure_rng.t -> attempt:int -> hint:float option -> float
(** The sleep before attempt [attempt + 1]: uniform in
    [\[0, min (max_delay_s, base_delay_s * multiplier^(attempt-1))\]]
    (full jitter), floored at [hint] when the peer sent a retry-after.
    Exposed for tests. *)

(** Client-side circuit breaker over the shed/Busy answer.

    A server in sustained overload sheds every new session; retrying on
    schedule only adds to the stampede.  The breaker counts
    {e consecutive} shed answers ([`Retry_after] verdicts) and, at
    [threshold], opens: attempts fail locally with {!Open_circuit} —
    the server never sees them — until the cooldown (floored at the
    last retry-after hint) passes.  Then one probe is allowed through
    (half-open); success closes the breaker, another shed reopens it.
    Non-shed failures (connection lost, corruption) break the streak
    but never open the breaker: it reacts to overload, not to faults.

    The clock is injectable for deterministic tests, like
    {!Resume_table} and {!Ratelimit}.  Thread-safe. *)
module Breaker : sig
  type config = {
    threshold : int;  (** consecutive sheds before opening; [>= 1] *)
    cooldown_s : float;  (** minimum open duration; [> 0] *)
  }

  val default_config : config
  (** 3 consecutive sheds, 5 s cooldown. *)

  exception Open_circuit of { retry_after_s : float }
  (** An attempt was suppressed locally; [retry_after_s] is the
      remaining cooldown. *)

  type t

  val create : ?now:(unit -> float) -> ?config:config -> unit -> t
  (** [?now] defaults to the monotonic clock.
      @raise Invalid_argument on threshold < 1 or non-positive
      cooldown. *)

  val acquire : t -> [ `Proceed | `Open of float ]
  (** Ask permission to attempt.  [`Open remaining_s] means fail
      locally; [`Proceed] from an open breaker whose cooldown has
      passed claims the single half-open probe slot. *)

  val success : t -> unit
  (** The attempt succeeded: close, reset the streak. *)

  val shed : t -> hint:float -> unit
  (** The attempt was shed (Busy/throttle).  May open the breaker;
      [hint] floors the cooldown. *)

  val failure : t -> unit
  (** The attempt failed for a non-shed reason: resets the streak
      (and ends a half-open probe without a verdict). *)

  val state : t -> [ `Closed | `Open | `Half_open ]
  val opened_total : t -> int
end

val with_retry :
  ?policy:policy ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?sleep:(float -> unit) ->
  ?on_attempt:(attempt:int -> delay_s:float -> exn -> unit) ->
  ?breaker:Breaker.t ->
  ?budget:Budget.t ->
  classify:(exn -> [ `Retry | `Retry_after of float | `Fail ]) ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying per [classify]: [`Fail] re-raises immediately,
    [`Retry] backs off and tries again, [`Retry_after s] does the same
    but never sleeps less than [s].  [?rng] defaults to a fresh
    system-seeded generator; [?sleep] defaults to [Thread.delay]
    (injectable for fast deterministic tests); [?on_attempt] observes
    each retry (logging).

    [?breaker] threads every attempt through a {!Breaker}: outcomes
    feed its state machine ([`Retry_after] verdicts count as sheds),
    and while it is open each would-be attempt is replaced by a local
    {!Breaker.Open_circuit} failure that consumes a retry slot and
    sleeps at least the remaining cooldown — so a run of attempts
    against an overloaded server collapses to the probe schedule.

    [?budget] bounds the total wall time: after each failed attempt the
    budget is checked ({!Budget.Exceeded} when it has run out) and the
    backoff sleep is truncated to the remaining budget, so the loop
    never sleeps past the deadline — at most one further attempt starts
    exactly at it.
    @raise Exhausted after [policy.max_attempts] failed tries.
    @raise Budget.Exceeded when [?budget] expires first.
    @raise Invalid_argument when [policy.max_attempts < 1]. *)
