(** Monotonic time for timeout and deadline arithmetic.

    All transport-level deadlines ({!Channel.read_frame},
    {!Server_loop}) are absolute instants on this clock, never on
    [Unix.gettimeofday] — a wall-clock step (NTP sync, manual reset)
    must not expire or extend a session. *)

val now : unit -> float
(** Seconds since an arbitrary fixed origin, strictly monotonic.  Only
    differences between two [now] readings are meaningful. *)
