(** Bounded, TTL-evicted map from resume token to parked session state.

    {!Server_loop} parks the state of a session whose connection died
    here, keyed by the random token it issued in [Welcome]; a
    reconnecting client's [Resume] takes it back out.  Two bounds keep
    an abandoning (or hostile) client population from pinning server
    memory: entries expire [ttl_s] after parking, and at [capacity] the
    entry {e closest to expiry} is evicted to make room.

    The clock is injectable ([?now]) so tests prove TTL eviction by
    advancing a fake clock rather than sleeping.  All operations are
    thread-safe; expired entries are swept lazily on every
    {!put}/{!take} and explicitly via {!sweep}. *)

type 'a t

val create : ?now:(unit -> float) -> capacity:int -> ttl_s:float -> unit -> 'a t
(** [?now] defaults to {!Monoclock.now}.
    @raise Invalid_argument on [capacity < 1] or [ttl_s <= 0]. *)

val put : 'a t -> string -> 'a -> unit
(** Park state under a token (replacing any previous entry for it),
    evicting the closest-to-expiry entry when at capacity. *)

val take : 'a t -> string -> 'a option
(** Remove and return the live entry for a token; [None] when the token
    is unknown, already taken, expired or evicted. *)

val sweep : 'a t -> int
(** Drop every expired entry now; returns how many were dropped. *)

val size : 'a t -> int
val expired_total : 'a t -> int
val evicted_total : 'a t -> int
