(* SCM_RIGHTS fd passing: OCaml face of fd_passing_stubs.c.

   The Unix.file_descr <-> int casts are the standard ones on POSIX,
   where the abstract type is the raw descriptor. *)

external send_raw : int -> int -> unit = "ppst_fd_passing_send"
external recv_raw : int -> int = "ppst_fd_passing_recv"

let int_of_fd : Unix.file_descr -> int = Obj.magic
let fd_of_int : int -> Unix.file_descr = Obj.magic

let rec send_fd sock ~fd =
  match send_raw (int_of_fd sock) (int_of_fd fd) with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> send_fd sock ~fd

let rec recv_fd sock =
  match recv_raw (int_of_fd sock) with
  | -1 -> None
  | n -> Some (fd_of_int n)
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> recv_fd sock
