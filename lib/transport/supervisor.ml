(* Multi-process supervision: a single-threaded parent that owns the
   listening socket, shards accepted connections across forked worker
   processes over SCM_RIGHTS fd passing, restarts crashed workers under
   a backoff policy, and collects each worker's final drain report at
   shutdown.

   The parent never serves protocol traffic and never spawns threads —
   fork() from a multi-threaded OCaml process leaves the child with
   dead mutex holders, so keeping the parent single-threaded is what
   makes re-forking a replacement worker safe at any time. *)

module Metrics = Ppst_telemetry.Metrics

(* fd-exhaustion observability: accepts shed with Busy and spawns
   deferred because socketpair had no fd to give. *)
let m_accept_emfile = Metrics.counter "supervisor.accept.emfile"
let m_spawn_emfile = Metrics.counter "supervisor.spawn.emfile"

type event =
  | Worker_started of { slot : int; pid : int; restarts : int }
  | Worker_exited of {
      slot : int;
      pid : int;
      status : Unix.process_status;
      restarting : bool;
    }

type summary = {
  restarts : int;
  reports : (int * string option) list;
}

(* Per-slot bookkeeping.  [consecutive] counts crashes without an
   intervening healthy stretch (>= healthy_after_s alive) — it drives
   the backoff exponent, so a crash-looping worker backs off
   exponentially while an isolated crash restarts almost at once. *)
type slot = {
  index : int;
  mutable control : Unix.file_descr option;  (* parent end *)
  mutable pid : int;  (* 0 = not running *)
  mutable consecutive : int;
  mutable spawned_at : float;
  mutable restart_at : float option;  (* backoff deadline when dead *)
}

let healthy_after_s = 30.0

let bind ~port =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (listener, bound)

(* Sharding: a reconnecting client's very first frame is [Resume] with
   the token at fixed offsets (4-byte length header, tag 0x0c, u32
   token length, then the 16 token bytes) — peek for it without
   consuming, and route by token hash so the resume lands on the worker
   whose memory still parks the session.  Anything else (fresh Hello,
   probes, garbage) round-robins.  The peek waits at most [peek_wait_s];
   a client that connects and stays silent is dispatched round-robin —
   its worker enforces the real idle policy. *)
let peek_wait_s = 0.05
let resume_peek_bytes = 25

let peek_token fd =
  let buf = Bytes.create 64 in
  let deadline = Monoclock.now () +. peek_wait_s in
  let rec wait () =
    let n =
      try Unix.recv fd buf 0 (Bytes.length buf) [ Unix.MSG_PEEK ]
      with
      | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      -> 0
    in
    if n >= resume_peek_bytes then
      if Bytes.get_uint8 buf 4 = 0x0c then Some (Bytes.sub_string buf 9 16)
      else None
    else if n >= 5 && Bytes.get_uint8 buf 4 <> 0x0c then
      (* enough to see a non-Resume tag: no point waiting for more *)
      None
    else begin
      (* 0 < n < 5 can't inspect the tag yet; wait like n = 0 *)
      let remaining = deadline -. Monoclock.now () in
      if remaining <= 0.0 then None
      else begin
        (match
           Channel.retry_on_intr (fun () ->
               Unix.select [ fd ] [] [] (Float.min remaining 0.01))
         with
        | _ -> ());
        wait ()
      end
    end
  in
  (* The parent dispatcher is single-threaded: a client that connects
     and sends nothing (port scanner, LB health probe, hostile peer)
     must never be able to park it in a blocking recv, so the peek runs
     with the fd in non-blocking mode and polls via select up to the
     deadline.  Blocking mode is restored before the fd is handed to a
     worker. *)
  match Unix.set_nonblock fd with
  | exception Unix.Unix_error _ -> None
  | () ->
    Fun.protect
      ~finally:(fun () ->
        try Unix.clear_nonblock fd with Unix.Unix_error _ -> ())
      (fun () -> try wait () with Unix.Unix_error _ -> None)

type t = {
  listener : Unix.file_descr;
  workers : int;
  worker_main : slot:int -> restarted:bool -> control:Unix.file_descr -> unit;
  policy : Retry.policy;
  max_restarts : int;
  drain_timeout_s : float;
  rng : Ppst_rng.Secure_rng.t;
  on_event : event -> unit;
  stop : bool Atomic.t;
  slots : slot array;
  disk_faults : Faults.Disk.t option;
  (* One fd held in reserve so that EMFILE on accept can still shed:
     closing it frees exactly the slot needed to accept the pending
     connection, answer Busy and close — instead of leaving the client
     wedged in the listen queue while the parent spins. *)
  mutable reserve : Unix.file_descr option;
  mutable restarts_total : int;
  mutable next_rr : int;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let open_reserve () =
  match Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 with
  | fd -> Some fd
  | exception Unix.Unix_error _ -> None

let check_fd_fault t =
  match t.disk_faults with
  | Some f -> Faults.Disk.check f Faults.Disk.Fd
  | None -> ()

let spawn t slot ~restarted =
  match
    check_fd_fault t;
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  with
  | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
    (* fd exhaustion at spawn: defer to the backoff schedule instead of
       crashing the parent — respawn_due retries once fds free up *)
    Metrics.incr m_spawn_emfile;
    slot.consecutive <- slot.consecutive + 1;
    slot.restart_at <-
      Some
        (Monoclock.now ()
        +. Retry.backoff_delay t.policy ~rng:t.rng ~attempt:slot.consecutive
             ~hint:None)
  | parent_fd, child_fd -> (
  match Unix.fork () with
  | 0 ->
    (* child: drop every parent-side resource, then become the worker.
       Signal dispositions are reset to default here; worker_main
       installs its own graceful SIGTERM handling if it wants any. *)
    close_quiet parent_fd;
    close_quiet t.listener;
    Array.iter
      (fun s -> match s.control with Some fd -> close_quiet fd | None -> ())
      t.slots;
    (try Sys.set_signal Sys.sigterm Sys.Signal_default
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint Sys.Signal_default
     with Invalid_argument _ | Sys_error _ -> ());
    let code =
      try
        t.worker_main ~slot:slot.index ~restarted ~control:child_fd;
        0
      with _ -> 1
    in
    (try flush stdout with Sys_error _ -> ());
    (try flush stderr with Sys_error _ -> ());
    Unix._exit code
  | pid ->
    close_quiet child_fd;
    slot.control <- Some parent_fd;
    slot.pid <- pid;
    slot.spawned_at <- Monoclock.now ();
    slot.restart_at <- None;
    t.on_event
      (Worker_started
         { slot = slot.index; pid; restarts = t.restarts_total }))

let create ?on_event ?(restart_policy = Retry.default_policy)
    ?(max_restarts = 64) ?(drain_timeout_s = 30.0) ?rng ?stop ?disk_faults
    ~listener ~workers ~worker_main () =
  if workers < 1 then invalid_arg "Supervisor: workers must be >= 1";
  Channel.setup_sigpipe ();
  {
    listener;
    workers;
    worker_main;
    policy = restart_policy;
    max_restarts;
    drain_timeout_s;
    rng =
      (match rng with
       | Some r -> r
       | None -> Ppst_rng.Secure_rng.system ());
    on_event = Option.value on_event ~default:(fun _ -> ());
    stop = (match stop with Some s -> s | None -> Atomic.make false);
    disk_faults;
    reserve = open_reserve ();
    slots =
      Array.init workers (fun index ->
          {
            index;
            control = None;
            pid = 0;
            consecutive = 0;
            spawned_at = 0.0;
            restart_at = None;
          });
    restarts_total = 0;
    next_rr = 0;
  }

let request_stop t = Atomic.set t.stop true

(* Reap dead children and schedule their replacements.  A worker that
   lived a healthy stretch resets its crash streak; the backoff delay
   grows with the streak via the shared transport retry policy. *)
let reap t =
  Array.iter
    (fun slot ->
      if slot.pid <> 0 then
        match
          try Unix.waitpid [ Unix.WNOHANG ] slot.pid
          with Unix.Unix_error (Unix.ECHILD, _, _) ->
            (slot.pid, Unix.WEXITED 0)
        with
        | 0, _ -> ()
        | _, status ->
          let pid = slot.pid in
          slot.pid <- 0;
          (match slot.control with
           | Some fd ->
             close_quiet fd;
             slot.control <- None
           | None -> ());
          let stopping = Atomic.get t.stop in
          let budget_left = t.restarts_total < t.max_restarts in
          let restarting = (not stopping) && budget_left in
          if restarting then begin
            let now = Monoclock.now () in
            slot.consecutive <-
              (if now -. slot.spawned_at >= healthy_after_s then 1
               else slot.consecutive + 1);
            let delay =
              Retry.backoff_delay t.policy ~rng:t.rng
                ~attempt:slot.consecutive ~hint:None
            in
            slot.restart_at <- Some (now +. delay)
          end
          else if not stopping then
            (* restart budget exhausted: the deployment is crash-looping;
               stop accepting rather than flap forever *)
            request_stop t;
          t.on_event
            (Worker_exited { slot = slot.index; pid; status; restarting }))
    t.slots

let respawn_due t =
  Array.iter
    (fun slot ->
      match slot.restart_at with
      | Some due when Monoclock.now () >= due && not (Atomic.get t.stop) ->
        t.restarts_total <- t.restarts_total + 1;
        spawn t slot ~restarted:true
      | _ -> ())
    t.slots

(* Hand [fd] to a worker.  The preferred slot may be dead or mid-restart;
   fall through the ring until a send lands, closing the connection only
   when no worker can take it. *)
let dispatch t fd ~preferred =
  let rec try_slot i remaining =
    if remaining = 0 then close_quiet fd
    else
      let slot = t.slots.(i mod t.workers) in
      match slot.control with
      | Some control when slot.pid <> 0 -> (
        match Fd_passing.send_fd control ~fd with
        | () -> close_quiet fd
        | exception (Unix.Unix_error _ | Channel.Connection_lost _) ->
          try_slot (i + 1) (remaining - 1))
      | _ -> try_slot (i + 1) (remaining - 1)
  in
  try_slot preferred t.workers

(* Accept failed with EMFILE/ENFILE: the parent is out of fds and can
   neither serve nor park the pending connection.  Shed it with the
   existing Busy machinery instead: close the reserve fd (freeing
   exactly one slot), accept, answer [Message.Busy] with the standard
   retry-after hint and close — the client's Busy loop backs off and
   retries, rather than wedging in the listen queue or crashing the
   parent.  The reserve is reopened afterwards, best effort. *)
let busy_retry_after_s = 1.0

let shed_accept t =
  Metrics.incr m_accept_emfile;
  (match t.reserve with
   | Some fd ->
     close_quiet fd;
     t.reserve <- None
   | None -> ());
  (match Unix.accept t.listener with
   | exception Unix.Unix_error _ -> ()
   | fd, _peer ->
     (try
        Channel.write_frame fd
          (Message.encode
             (Message.Reply (Message.Busy { retry_after_s = busy_retry_after_s })))
      with _ -> ());
     close_quiet fd);
  t.reserve <- open_reserve ()

let accept_tick t =
  reap t;
  respawn_due t;
  match
    Channel.retry_on_intr (fun () -> Unix.select [ t.listener ] [] [] 0.2)
  with
  | [], _, _ -> ()
  | _ -> (
    match
      check_fd_fault t;
      Unix.accept t.listener
    with
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      shed_accept t
    | exception Unix.Unix_error _ -> ()
    | fd, _peer ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let preferred =
        match peek_token fd with
        | Some token -> Crc32.digest token mod t.workers
        | None ->
          let rr = t.next_rr in
          t.next_rr <- (rr + 1) mod t.workers;
          rr
      in
      dispatch t fd ~preferred)

(* Graceful fan-out: half-close every control socket (the worker's
   dispatch loop reads EOF and drains) and send SIGTERM for workers
   that installed their own handler; then collect one report frame per
   worker within the drain budget and reap, escalating to SIGKILL for
   stragglers. *)
let shutdown_workers t =
  Array.iter
    (fun slot ->
      (match slot.control with
       | Some fd -> (
         try Unix.shutdown fd Unix.SHUTDOWN_SEND
         with Unix.Unix_error _ -> ())
       | None -> ());
      if slot.pid <> 0 then
        try Unix.kill slot.pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.slots;
  let deadline = Monoclock.now () +. t.drain_timeout_s in
  let reports =
    Array.to_list
      (Array.map
         (fun slot ->
           let report =
             match slot.control with
             | None -> None
             | Some fd -> (
               match Channel.read_frame ~deadline fd with
               | blob -> blob
               | exception _ -> None)
           in
           (slot.index, report))
         t.slots)
  in
  Array.iter
    (fun slot ->
      (match slot.control with
       | Some fd ->
         close_quiet fd;
         slot.control <- None
       | None -> ());
      if slot.pid <> 0 then begin
        let rec wait_dead () =
          match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
          | 0, _ when Monoclock.now () < deadline +. 2.0 ->
            Unix.sleepf 0.02;
            wait_dead ()
          | 0, _ ->
            (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] slot.pid)
             with Unix.Unix_error _ -> ())
          | _ -> ()
        in
        (try wait_dead () with Unix.Unix_error _ -> ());
        slot.pid <- 0
      end)
    t.slots;
  reports

let run ?on_event ?restart_policy ?max_restarts ?drain_timeout_s ?rng ?stop
    ?disk_faults ~listener ~workers ~worker_main () =
  let t =
    create ?on_event ?restart_policy ?max_restarts ?drain_timeout_s ?rng ?stop
      ?disk_faults ~listener ~workers ~worker_main ()
  in
  Array.iter (fun slot -> spawn t slot ~restarted:false) t.slots;
  (try
     while not (Atomic.get t.stop) do
       accept_tick t
     done
   with Unix.Unix_error _ when Atomic.get t.stop -> ());
  close_quiet t.listener;
  (match t.reserve with
   | Some fd ->
     close_quiet fd;
     t.reserve <- None
   | None -> ());
  let reports = shutdown_workers t in
  { restarts = t.restarts_total; reports }
