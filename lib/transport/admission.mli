(** Per-session resource budgets, enforced {e before} any Paillier work.

    The server's hot path is the cryptography: one hostile
    [Batch_min_request] can demand millions of decryptions.  Admission
    control prices every request in public units — DP-matrix cells,
    series length, dimension, raw frame bytes — and rejects over-budget
    sessions with the typed {!Message.reply.Quota_exceeded} wire reply
    while the request is still plaintext bookkeeping.

    Every quantity examined here is public in the paper's model
    (Section 2: matrix dimensions are known to both parties), so
    rejections add zero leakage; see SECURITY.md. *)

type limits = {
  max_cells : int option;
      (** cap on DP-matrix cells = extreme-selection instances per
          session, counted separately for min and max kinds (DFD spends
          one of each per cell).  Also caps [declared m * server n] at
          Hello time when the client ships a spec. *)
  max_series_len : int option;  (** cap on the declared client series length *)
  max_dim : int option;  (** cap on the declared point dimension *)
  max_session_bytes : int option;  (** cap on total request-frame bytes *)
  max_session_frames : int option;  (** cap on total request frames *)
}

val unlimited : limits
(** All budgets off — admission always grants.  The default. *)

type verdict =
  | Admit
  | Reject of { quota : string; limit : int; requested : int }
      (** [quota] is a static budget name ("cells", "series-len",
          "dim", "bytes", "frames"); [limit]/[requested] the configured
          cap and the offending size — all public. *)

type t
(** One session's ledger.  Not thread-safe: sessions are served by a
    single thread ({!Server_loop} is thread-per-session). *)

val create : limits -> t
val limits : t -> limits

val declare : t -> spec:Message.spec -> server_len:int -> verdict
(** Admission at [Hello] time: checks the declared series length and
    dimension against their caps and [spec.series_len * server_len]
    against the cell budget.  On [Admit] the declared length is
    recorded and later {!charge_cells} calls are additionally checked
    against the declared [m * n] — a client cannot under-declare at
    Hello and over-consume later. *)

val reselect : t -> unit
(** Reset the cell ledger after [Select_request]: a catalog scan
    evaluates one matrix per record, not one cumulative matrix.  Also
    closes any open catalog-query allowance ({!declare_query}) — the
    per-survivor exact stage is billed per record again. *)

val declare_query : t -> candidates:int -> segments:int -> verdict
(** Admission at [Query_submit] time: a catalog pruning round over
    [candidates] records and [segments] query segments spends
    [candidates * (segments * dim + 1)] cells (one extreme instance per
    candidate-segment-dimension plus one verdict decryption per
    candidate, with [dim] from the Hello spec, defaulting to 1).  On
    [Admit] the cell ledger restarts and that total becomes the open
    allowance later {!charge_cells} calls are held to, replacing the
    pairwise declared [m * n] budget for the duration of the query. *)

val charge_frame : t -> bytes:int -> verdict
(** Charge one request frame of [bytes] against the byte/frame budgets.
    Called before the codec runs. *)

val charge_cells :
  t -> kind:[ `Min | `Max ] -> count:int -> server_len:int -> verdict
(** Charge [count] extreme-selection instances of [kind] against the
    cell budget (and the declared budget, if a spec was shipped).
    Called after decode, before any decryption. *)

val cells_of_request : Message.request -> ([ `Min | `Max ] * int) option
(** The extreme-selection instances a decoded request will spend, or
    [None] for requests that cost no crypto. *)

val to_reply : verdict -> Message.reply option
(** [Reject] as the wire reply; [None] for [Admit]. *)

val export : t -> string
(** Serialize the mutable ledger (declarations and spends, not the
    limits) for cross-worker session failover.  Everything in the blob
    is a public quantity the client already shipped or a count of its
    own requests — externalizing it adds no leakage (SECURITY.md). *)

val import : limits -> string -> t
(** Rebuild a ledger from {!export} output under the restoring server's
    own [limits] (budgets are configuration, not session state).
    @raise Wire.Malformed on a corrupt blob. *)
