(** CRC-32 checksums (IEEE 802.3 polynomial, the zlib/Ethernet variant)
    for frame-integrity trailers.

    This is an {e error-detection} code, not a MAC: it catches line
    corruption and truncation, not a malicious peer (who can recompute
    it).  The threat model here is the same as TCP's own checksum —
    protecting {!Paillier.decrypt} from being fed bit-flipped
    ciphertexts — while authenticity remains out of scope exactly as in
    the paper's semi-honest setting (SECURITY.md). *)

val digest : string -> int
(** CRC-32 of the whole string, in [\[0, 2^32)].
    [digest "123456789" = 0xCBF43926] (the standard check value). *)

val update : int -> string -> int -> int -> int
(** [update crc s off len] extends a running checksum — [digest s] is
    [update 0 s 0 (String.length s)].
    @raise Invalid_argument when [off]/[len] fall outside [s]. *)
