(* Per-session resource budgets, enforced before any Paillier work.

   Every quantity checked here is public in the paper's model (series
   lengths, dimensions, frame sizes), so a rejection reveals nothing a
   passive observer could not already compute — see SECURITY.md.  The
   checks are pure integer comparisons: their cost on the clean path is
   a handful of nanoseconds per frame, measured by `bench overload`. *)

type limits = {
  max_cells : int option;
  max_series_len : int option;
  max_dim : int option;
  max_session_bytes : int option;
  max_session_frames : int option;
}

let unlimited =
  {
    max_cells = None;
    max_series_len = None;
    max_dim = None;
    max_session_bytes = None;
    max_session_frames = None;
  }

type verdict =
  | Admit
  | Reject of { quota : string; limit : int; requested : int }

(* Mutable per-session ledger.  Sessions are served by a single thread
   (Server_loop is thread-per-session), so no locking is needed. *)
type t = {
  limits : limits;
  mutable declared_len : int option;  (* from the Hello spec, if any *)
  mutable declared_dim : int option;
  mutable query_cells : int option;  (* open catalog-query allowance *)
  mutable cells_spent_min : int;  (* cumulative extreme instances, per kind *)
  mutable cells_spent_max : int;
  mutable bytes_spent : int;
  mutable frames_spent : int;
}

let create limits =
  {
    limits;
    declared_len = None;
    declared_dim = None;
    query_cells = None;
    cells_spent_min = 0;
    cells_spent_max = 0;
    bytes_spent = 0;
    frames_spent = 0;
  }

let limits t = t.limits

let m_rejects = Ppst_telemetry.Metrics.counter "server.quota.rejects"

let check name limit requested =
  match limit with
  | Some l when requested > l ->
    Ppst_telemetry.Metrics.incr m_rejects;
    Reject { quota = name; limit = l; requested }
  | _ -> Admit

let ( &&& ) a b = match a with Admit -> b () | Reject _ -> a

(* Admission at Hello time: the declared series length and dimension
   against the caps, and the implied DP matrix size [declared_len *
   server_len] against the cell budget.  [server_len] is the length of
   the server's active record — for multi-record catalogs the longest
   record, so a grant here is valid for any later [Select_request]. *)
let declare t ~(spec : Message.spec) ~server_len =
  check "series-len" t.limits.max_series_len spec.series_len
  &&& fun () ->
  check "dim" t.limits.max_dim spec.dimension
  &&& fun () ->
  let cells = spec.series_len * server_len in
  match check "cells" t.limits.max_cells cells with
  | Admit ->
    t.declared_len <- Some spec.series_len;
    t.declared_dim <- Some spec.dimension;
    Admit
  | r -> r

(* Re-plan after [Select_request]: the cell ledger restarts against the
   newly active record (a catalog scan evaluates one matrix per record,
   not one giant cumulative matrix).  Any open catalog-query allowance
   closes too — the per-survivor exact stage is billed per record. *)
let reselect t =
  t.cells_spent_min <- 0;
  t.cells_spent_max <- 0;
  t.query_cells <- None

(* Admission at Query_submit time: a catalog pruning round spends one
   extreme instance per (candidate, segment, dimension) plus one verdict
   decryption per candidate — all public quantities.  The total is
   checked against the cell budget, then recorded as the open allowance
   that later charge_cells calls are held to (instead of the pairwise
   declared m*n budget, which does not describe a 1-vs-N round). *)
let declare_query t ~candidates ~segments =
  if candidates <= 0 || segments <= 0 then
    Reject { quota = "cells"; limit = 0; requested = candidates * segments }
  else
    let dim = match t.declared_dim with Some d -> d | None -> 1 in
    let cells = candidates * ((segments * dim) + 1) in
    match check "cells" t.limits.max_cells cells with
    | Admit ->
      t.cells_spent_min <- 0;
      t.cells_spent_max <- 0;
      t.query_cells <- Some cells;
      Admit
    | r -> r

(* Per-frame byte/frame budgets, charged before the codec runs. *)
let charge_frame t ~bytes =
  t.frames_spent <- t.frames_spent + 1;
  t.bytes_spent <- t.bytes_spent + bytes;
  check "frames" t.limits.max_session_frames t.frames_spent
  &&& fun () -> check "bytes" t.limits.max_session_bytes t.bytes_spent

(* Cell accounting for extreme-selection requests, charged after decode
   but before any decryption.  [kind] separates min from max instances:
   DFD legitimately spends one of each per DP cell, so a shared counter
   would halve the effective budget for honest DFD clients.  When a
   spec was declared, the cumulative spend is also checked against the
   declared m*n budget, so a client cannot under-declare at Hello and
   over-consume later. *)
let charge_cells t ~kind ~count ~server_len =
  let spent =
    match kind with
    | `Min ->
      t.cells_spent_min <- t.cells_spent_min + count;
      t.cells_spent_min
    | `Max ->
      t.cells_spent_max <- t.cells_spent_max + count;
      t.cells_spent_max
  in
  check "cells" t.limits.max_cells spent
  &&& fun () ->
  match t.query_cells with
  | Some allowance ->
    (* inside a declared catalog query: hold the spend to the declared
       query allowance, not the pairwise m*n budget *)
    check "cells" (Some allowance) spent
  | None -> (
    match t.declared_len with
    | None -> Admit
    | Some m -> check "cells" (Some (m * server_len)) spent)

(* Cells implied by a decoded request, before any crypto runs. *)
let cells_of_request (req : Message.request) =
  match req with
  | Min_request _ -> Some (`Min, 1)
  | Max_request _ -> Some (`Max, 1)
  | Batch_min_request sets -> Some (`Min, Array.length sets)
  | Batch_max_request sets -> Some (`Max, Array.length sets)
  | Packed_min_request { counts; _ } -> Some (`Min, Array.length counts)
  | Packed_max_request { counts; _ } -> Some (`Max, Array.length counts)
  (* each verdict is one decryption — priced like a min instance *)
  | Verdict_request blinded -> Some (`Min, Array.length blinded)
  | Hello _ | Phase1_request | Reveal_request _ | Catalog_request
  | Select_request _ | Stats_req | Bye | Resume _ | Health_req
  | Catalog_list_request | Query_submit _ | Metrics_req -> None

let to_reply = function
  | Admit -> None
  | Reject { quota; limit; requested } ->
    Some (Message.Quota_exceeded { quota; limit; requested })

(* Ledger serialization for cross-worker session failover.  Limits are
   configuration (the restoring worker supplies its own); only the seven
   mutable spend/declaration fields travel.  An optional int is encoded
   presence-prefixed so 0 and absent stay distinct. *)

let put_opt_int w = function
  | None -> Wire.put_u8 w 0
  | Some v ->
    Wire.put_u8 w 1;
    Wire.put_u32 w v

let get_opt_int r =
  match Wire.get_u8 r with
  | 0 -> None
  | 1 -> Some (Wire.get_u32 r)
  | b -> raise (Wire.Malformed (Printf.sprintf "Admission: bad option tag %d" b))

let export t =
  let w = Wire.writer () in
  put_opt_int w t.declared_len;
  put_opt_int w t.declared_dim;
  put_opt_int w t.query_cells;
  Wire.put_u32 w t.cells_spent_min;
  Wire.put_u32 w t.cells_spent_max;
  Wire.put_u32 w t.bytes_spent;
  Wire.put_u32 w t.frames_spent;
  Wire.contents w

let import limits blob =
  let r = Wire.reader blob in
  let t = create limits in
  t.declared_len <- get_opt_int r;
  t.declared_dim <- get_opt_int r;
  t.query_cells <- get_opt_int r;
  t.cells_spent_min <- Wire.get_u32 r;
  t.cells_spent_max <- Wire.get_u32 r;
  t.bytes_spent <- Wire.get_u32 r;
  t.frames_spent <- Wire.get_u32 r;
  Wire.expect_end r;
  t
