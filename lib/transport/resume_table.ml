(* Bounded TTL map from resume token to parked session state.  The
   clock is injectable so tests can prove eviction by advancing time
   instead of sleeping. *)

type 'a entry = { expires_at : float; value : 'a }

type 'a t = {
  capacity : int;
  ttl_s : float;
  now : unit -> float;
  mu : Mutex.t;
  entries : (string, 'a entry) Hashtbl.t;
  mutable expired_total : int;
  mutable evicted_total : int;
}

let create ?now ~capacity ~ttl_s () =
  if capacity < 1 then invalid_arg "Resume_table.create: capacity must be >= 1";
  if ttl_s <= 0.0 then invalid_arg "Resume_table.create: ttl must be positive";
  let now = match now with Some f -> f | None -> Monoclock.now in
  {
    capacity;
    ttl_s;
    now;
    mu = Mutex.create ();
    entries = Hashtbl.create 64;
    expired_total = 0;
    evicted_total = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Callers hold [t.mu]. *)
let sweep_locked t =
  let now = t.now () in
  let dead =
    Hashtbl.fold
      (fun token e acc -> if e.expires_at <= now then token :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) dead;
  let n = List.length dead in
  t.expired_total <- t.expired_total + n;
  n

(* Capacity pressure evicts the entry closest to expiry: it is the one
   a client is least likely to still come back for. *)
let evict_oldest_locked t =
  let victim =
    Hashtbl.fold
      (fun token e acc ->
        match acc with
        | Some (_, best) when best.expires_at <= e.expires_at -> acc
        | _ -> Some (token, e))
      t.entries None
  in
  match victim with
  | None -> ()
  | Some (token, _) ->
    Hashtbl.remove t.entries token;
    t.evicted_total <- t.evicted_total + 1

let put t token value =
  locked t (fun () ->
      ignore (sweep_locked t);
      Hashtbl.remove t.entries token;
      if Hashtbl.length t.entries >= t.capacity then evict_oldest_locked t;
      Hashtbl.replace t.entries token
        { expires_at = t.now () +. t.ttl_s; value })

let take t token =
  locked t (fun () ->
      ignore (sweep_locked t);
      match Hashtbl.find_opt t.entries token with
      | None -> None
      | Some e ->
        Hashtbl.remove t.entries token;
        Some e.value)

let sweep t = locked t (fun () -> sweep_locked t)
let size t = locked t (fun () -> Hashtbl.length t.entries)
let expired_total t = locked t (fun () -> t.expired_total)
let evicted_total t = locked t (fun () -> t.evicted_total)
