(* Crash-safe key/value spool backing cross-worker session failover.

   One file per key under a shared directory, written with the full
   atomic dance (temp file -> fsync(file) -> rename -> fsync(dir)), so a
   reader never observes a torn snapshot: after a SIGKILL at any byte of
   a write, the key either holds its previous value or the new one.
   Keys are raw byte strings (resume tokens); filenames are their hex
   encoding, so hostile token bytes cannot traverse the filesystem.

   Concurrency model: workers are separate processes sharing the
   directory.  rename(2) gives atomic last-writer-wins per key, and a
   session's snapshot is only ever written by the worker currently
   owning its connection, so there is no cross-writer interleaving to
   reason about.  [take] is unlink-after-read: two racing takers can
   both read, but the resume protocol already serializes takes through
   the supervisor's token-hash sharding. *)

type t = { dir : string; disk_faults : Faults.Disk.t option }

let check_fault t op =
  match t.disk_faults with None -> () | Some f -> Faults.Disk.check f op

let hex_of_key key =
  let b = Buffer.create (2 * String.length key) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) key;
  Buffer.contents b

let path_of_key t key = Filename.concat t.dir (hex_of_key key ^ ".snap")

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
        try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?disk_faults ~dir () =
  mkdir_p dir;
  { dir; disk_faults }

let dir t = t.dir

let put t ~key value =
  let final = path_of_key t key in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      check_fault t Faults.Disk.Write;
      let off = ref 0 in
      let bytes = Bytes.of_string value in
      while !off < Bytes.length bytes do
        off := !off + Unix.write fd bytes !off (Bytes.length bytes - !off)
      done;
      check_fault t Faults.Disk.Fsync;
      Unix.fsync fd);
  check_fault t Faults.Disk.Rename;
  Sys.rename tmp final;
  fsync_path t.dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~key =
  let path = path_of_key t key in
  if Sys.file_exists path then Some (read_file path) else None

let delete t ~key =
  try Sys.remove (path_of_key t key) with Sys_error _ -> ()

let take t ~key =
  match find t ~key with
  | None -> None
  | Some v ->
    delete t ~key;
    Some v

(* Boot-time writability probe: the full atomic dance on a throwaway
   key, so an unusable spool (missing parent, read-only mount, full
   disk) is discovered at startup with a clear message instead of at the
   first mid-session snapshot write. *)
let validate ~dir =
  match
    let t = create ~dir () in
    let key = Printf.sprintf "boot-probe-%d" (Unix.getpid ()) in
    put t ~key "probe";
    delete t ~key
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, fn, arg) ->
    Error
      (Printf.sprintf "spool directory %s is not writable: %s(%s): %s" dir fn
         arg (Unix.error_message e))
  | exception Sys_error m -> Error (Printf.sprintf "spool directory %s: %s" dir m)

let entries t =
  match Sys.readdir t.dir with
  | files ->
    Array.to_list files |> List.filter (fun f -> Filename.check_suffix f ".snap")
  | exception Sys_error _ -> []

let size t = List.length (entries t)

(* TTL sweep on mtime; also clears orphaned temp files older than the
   TTL (a writer died between open and rename).  Wall-clock mtimes are
   fine here: the TTL is minutes, clock skew is not. *)
let sweep t ~ttl_s =
  let now = Unix.gettimeofday () in
  let dead = ref 0 in
  (match Sys.readdir t.dir with
  | files ->
    Array.iter
      (fun f ->
        let is_snap = Filename.check_suffix f ".snap" in
        let is_tmp = Filename.check_suffix f ".tmp" in
        if is_snap || is_tmp then
          let path = Filename.concat t.dir f in
          match Unix.stat path with
          | { Unix.st_mtime; _ } when now -. st_mtime > ttl_s ->
            (try Sys.remove path with Sys_error _ -> ());
            if is_snap then incr dead
          | _ | (exception Unix.Unix_error _) -> ())
      files
  | exception Sys_error _ -> ());
  !dead
