(** Multi-process serving: a single-threaded parent dispatcher owning
    the listening socket, sharding accepted connections across [N]
    forked worker processes by passing the connected file descriptor
    over a per-worker Unix socketpair ({!Fd_passing}).

    Routing: the parent peeks (without consuming) at the connection's
    first bytes for up to 50 ms.  A [Resume] frame — recognizable from
    its fixed layout ([0x0c] tag, then the 16-byte token) — routes by
    token hash ([Crc32.digest token mod workers]), so a resuming client
    lands on the worker whose in-memory resume table parks the session;
    with a shared session spool ({!Server_loop.config.spool_dir}) any
    worker can serve it, but the hash keeps the common case on the fast
    in-memory path.  Everything else round-robins.  The parent reads
    nothing beyond the peek and learns nothing the server would not
    learn anyway (SECURITY.md).

    Fault tolerance: the parent [waitpid]s its children each accept
    tick.  A dead worker is re-forked after a backoff drawn from the
    shared transport {!Retry.policy}, with the exponent driven by the
    worker's {e consecutive} crash count (a worker that stayed up 30 s
    resets the streak) — an isolated crash restarts almost instantly, a
    crash loop backs off exponentially, and a global [max_restarts]
    budget stops the deployment rather than flapping forever.

    Shutdown (stop flag set, typically from a signal handler):
    half-close every control socket — the worker's dispatch loop reads
    EOF, drains in-flight sessions and writes one final report frame
    back up the same socket ({!Server_loop.run_worker}) — and send
    SIGTERM for workers with their own handler; collect the reports
    within the drain budget; SIGKILL stragglers.

    The parent must stay single-threaded (it forks at arbitrary times);
    that is why supervision lives in its own pre-threads module instead
    of inside {!Server_loop}. *)

type event =
  | Worker_started of { slot : int; pid : int; restarts : int }
      (** [restarts] is the supervisor-lifetime restart count {e before}
          this start: [0] for each initial worker. *)
  | Worker_exited of {
      slot : int;
      pid : int;
      status : Unix.process_status;
      restarting : bool;  (** a replacement has been scheduled *)
    }

type summary = {
  restarts : int;  (** workers re-forked over the supervisor's lifetime *)
  reports : (int * string option) list;
      (** per-slot final drain frame, in slot order; [None] when the
          worker died without reporting (crashed, or missed the drain
          deadline).  Decode with {!Server_loop.decode_report}. *)
}

val peek_token : Unix.file_descr -> string option
(** Peek ([MSG_PEEK], consuming nothing) at a freshly accepted
    connection's first frame for up to 50 ms; returns the 16-byte
    resume token when the frame is a [Resume], [None] otherwise
    (round-robin dispatch).  The fd is put in non-blocking mode for the
    duration of the peek — a peer that connects and stays silent can
    never park the single-threaded dispatcher in a blocking [recv] —
    and restored to blocking before return.  A first segment too short
    to carry the tag byte is waited out, not misread.  Exposed for
    tests; {!run} calls it on every accepted connection. *)

val bind : port:int -> Unix.file_descr * int
(** Create the listening socket the parent will own ([SO_REUSEADDR],
    backlog 64); returns the socket and the actually bound port
    ([port = 0] picks an ephemeral one).  Bind {e before} forking so
    every worker generation serves the same address.
    @raise Unix.Unix_error when the port cannot be bound. *)

val run :
  ?on_event:(event -> unit) ->
  ?restart_policy:Retry.policy ->
  ?max_restarts:int ->
  ?drain_timeout_s:float ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?stop:bool Atomic.t ->
  ?disk_faults:Faults.Disk.t ->
  listener:Unix.file_descr ->
  workers:int ->
  worker_main:(slot:int -> restarted:bool -> control:Unix.file_descr -> unit) ->
  unit ->
  summary
(** Fork [workers] children and dispatch until [stop] reads [true]
    (set it from a SIGTERM/SIGINT handler — it is the only
    async-signal-safe input), then shut down gracefully and return the
    merged summary.  [worker_main] runs {e in the child} with the child
    end of its control socketpair; it must serve fds received on
    [control] until EOF and exit — {!Server_loop.create_worker} plus
    {!Server_loop.run_worker} is the intended body.  [restarted] tells
    a replacement worker it follows a crash (a chaos-injected worker
    uses it to drop its one-shot crash fault instead of dying again).
    [?max_restarts] (default 64) caps supervisor-lifetime restarts;
    exceeding it stops the run.  [?drain_timeout_s] (default 30)
    bounds shutdown collection.  Call from a process with {e no}
    threads beyond the main one: fork from a threaded parent leaves
    children with dead lock holders.

    fd exhaustion never kills the parent: [EMFILE]/[ENFILE] on accept
    sheds the pending connection through the existing Busy machinery
    (a reserve fd is closed to make room, the connection is answered
    [Message.Busy] and closed, the reserve reopened), and the same
    errno from the spawn-time [socketpair] defers the fork to the
    restart backoff schedule.  [?disk_faults] injects those errnos
    deterministically for chaos tests ({!Faults.Disk}).
    @raise Invalid_argument on [workers < 1]. *)
