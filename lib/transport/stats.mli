(** Communication accounting.

    Counts every frame that crosses the client/server boundary: bytes and
    protocol "values" per direction, plus round trips — the quantities of
    the paper's Section 5.2 analysis ([mn(d + k + 4)] values total for
    secure DTW) and the "data transferred" series in Figures 5–11. *)

type t

val create : unit -> t

val record_sent : t -> bytes:int -> values:int -> unit
(** Client-to-server frame. *)

val record_received : t -> bytes:int -> values:int -> unit
(** Server-to-client frame. *)

val record_round : t -> unit

val record_failure : t -> unit
(** A transport fault on this channel/session: connection lost mid-round
    or a frame rejected by its integrity check.  Failures previously
    bypassed accounting entirely (raw [Unix.Unix_error] escaped before
    any counter moved); the typed {!Channel.Connection_lost} path records
    them here. *)

val bytes_sent : t -> int
val bytes_received : t -> int
val total_bytes : t -> int
val values_sent : t -> int
val values_received : t -> int
val total_values : t -> int
val rounds : t -> int
val messages : t -> int
val failures : t -> int

val reset : t -> unit
val merge : t -> t -> t
(** Sum of two accountings (fresh accumulator). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Compact single-line JSON object (machine-readable [pp]); embedded
    verbatim in the bench BENCH_*.json reports. *)

val export : t -> string
(** Wire-encode for cross-process transfer (a supervised worker's final
    drain frame to the parent dispatcher). *)

val import : string -> t
(** Inverse of {!export}. @raise Wire.Malformed on a corrupt blob. *)
