(** Sidecar HTTP listener serving the OpenMetrics page to scrapers.

    A minimal HTTP/1.0 responder on its own loopback port ([ppst_server
    --metrics-port]): every request, regardless of path, is answered with
    the rendered metrics page.  It runs in one background thread,
    entirely outside the framed-protocol listener — scrapes never consume
    session slots and are served even when the protocol loop is at
    capacity or shedding.

    The page carries the same aggregate-only surface as
    [Stats_req]/[Metrics_req]: static metric names and numbers
    ({!Ppst_telemetry.Exposition}). *)

type t

val start : ?render:(unit -> string) -> port:int -> unit -> t
(** Bind the loopback [port] ([0] picks a free one — see {!port}) and
    start the responder thread.  [render] defaults to the process-wide
    registry with its global rollup windows.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Stop the responder thread, join it and close the listener.
    Idempotent in effect; safe to call once the thread has died. *)
