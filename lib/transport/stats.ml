type t = {
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable values_sent : int;
  mutable values_received : int;
  mutable rounds : int;
  mutable messages : int;
  mutable failures : int;
}

let create () =
  {
    bytes_sent = 0;
    bytes_received = 0;
    values_sent = 0;
    values_received = 0;
    rounds = 0;
    messages = 0;
    failures = 0;
  }

let record_sent t ~bytes ~values =
  t.bytes_sent <- t.bytes_sent + bytes;
  t.values_sent <- t.values_sent + values;
  t.messages <- t.messages + 1

let record_received t ~bytes ~values =
  t.bytes_received <- t.bytes_received + bytes;
  t.values_received <- t.values_received + values;
  t.messages <- t.messages + 1

let record_round t = t.rounds <- t.rounds + 1
let record_failure t = t.failures <- t.failures + 1

let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received
let total_bytes t = t.bytes_sent + t.bytes_received
let values_sent t = t.values_sent
let values_received t = t.values_received
let total_values t = t.values_sent + t.values_received
let rounds t = t.rounds
let messages t = t.messages
let failures t = t.failures

let reset t =
  t.bytes_sent <- 0;
  t.bytes_received <- 0;
  t.values_sent <- 0;
  t.values_received <- 0;
  t.rounds <- 0;
  t.messages <- 0;
  t.failures <- 0

let merge a b =
  {
    bytes_sent = a.bytes_sent + b.bytes_sent;
    bytes_received = a.bytes_received + b.bytes_received;
    values_sent = a.values_sent + b.values_sent;
    values_received = a.values_received + b.values_received;
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    failures = a.failures + b.failures;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<h>sent %d B / %d values; received %d B / %d values; %d rounds, %d \
     messages%s@]"
    t.bytes_sent t.values_sent t.bytes_received t.values_received t.rounds
    t.messages
    (if t.failures = 0 then ""
     else Printf.sprintf "; %d connection failure(s) recovered or fatal" t.failures)

(* Cross-process accounting: a supervised worker ships its merged stats
   to the parent dispatcher in its final drain frame. *)
let export t =
  let w = Wire.writer () in
  Wire.put_u32 w t.bytes_sent;
  Wire.put_u32 w t.bytes_received;
  Wire.put_u32 w t.values_sent;
  Wire.put_u32 w t.values_received;
  Wire.put_u32 w t.rounds;
  Wire.put_u32 w t.messages;
  Wire.put_u32 w t.failures;
  Wire.contents w

let import blob =
  let r = Wire.reader blob in
  let bytes_sent = Wire.get_u32 r in
  let bytes_received = Wire.get_u32 r in
  let values_sent = Wire.get_u32 r in
  let values_received = Wire.get_u32 r in
  let rounds = Wire.get_u32 r in
  let messages = Wire.get_u32 r in
  let failures = Wire.get_u32 r in
  Wire.expect_end r;
  { bytes_sent; bytes_received; values_sent; values_received; rounds; messages;
    failures }

let to_json t =
  Printf.sprintf
    {|{"bytes_sent":%d,"bytes_received":%d,"values_sent":%d,"values_received":%d,"rounds":%d,"messages":%d,"failures":%d}|}
    t.bytes_sent t.bytes_received t.values_sent t.values_received t.rounds
    t.messages t.failures
