(** Crash-safe key/value spool: one file per key, written atomically
    (temp file + fsync + [rename] + directory fsync), shared between
    supervised worker processes.  This is the externalized resume store
    of the failover design (PROTOCOL.md §13): a session snapshot put by
    worker A survives A's SIGKILL and is taken by worker B.

    Keys are raw byte strings (resume tokens); filenames are their hex
    encoding, so untrusted token bytes cannot escape the directory. *)

type t

val create : ?disk_faults:Faults.Disk.t -> dir:string -> unit -> t
(** Open (creating, mode 0700, parents included) a spool directory.
    [?disk_faults] installs an environmental fault injector consulted on
    every {!put} (write, fsync, rename) — degraded-mode chaos testing,
    never set in production. *)

val validate : dir:string -> (unit, string) result
(** Boot-time writability probe: create the directory if missing, then
    run one full atomic write cycle (write + fsync + rename + directory
    fsync) on a throwaway key and delete it.  [Error msg] carries a
    human-readable reason (read-only mount, full disk, bad parent), so
    a server can fail fast at startup instead of discovering an
    unusable spool at its first mid-session snapshot. *)

val dir : t -> string

val put : t -> key:string -> string -> unit
(** Atomically replace [key]'s value.  After a crash at any point the
    key holds either its previous value or the new one, never a torn
    write.  @raise Unix.Unix_error on filesystem failure. *)

val find : t -> key:string -> string option
(** Read without consuming. *)

val take : t -> key:string -> string option
(** Read and delete (resume consumes its snapshot). *)

val delete : t -> key:string -> unit
(** Remove [key] if present (session ended cleanly). *)

val size : t -> int
(** Number of spooled snapshots. *)

val sweep : t -> ttl_s:float -> int
(** Delete snapshots (and orphaned temp files) whose mtime is older
    than [ttl_s]; returns the number of snapshots removed. *)
