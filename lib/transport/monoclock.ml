(* CLOCK_MONOTONIC via the bechamel stub: immune to wall-clock steps
   (NTP, manual adjustment), which matters because session deadlines and
   idle timeouts compare absolute instants across seconds of real time. *)

let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
