(* Token-bucket rate limiter keyed by peer address.  The clock is
   injectable (same idiom as Resume_table) so tests can prove the
   refill math by advancing time instead of sleeping.

   Each key owns a bucket of at most [burst] tokens refilling at
   [rate_per_s]; a session admission costs one token (callers may
   charge more via [?cost]).  A drained bucket answers [`Throttle
   retry_after_s] with the exact time until the bucket holds the
   requested cost again — Server_loop forwards that as the Busy
   retry-after hint, so well-behaved clients back off precisely. *)

type config = { rate_per_s : float; burst : float }

type bucket = { mutable tokens : float; mutable last_refill : float }

type t = {
  config : config;
  max_peers : int;
  now : unit -> float;
  mu : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
  mutable throttled_total : int;
}

let m_throttled = Ppst_telemetry.Metrics.counter "ratelimit.throttled"

let create ?now ?(max_peers = 4096) config =
  if config.rate_per_s <= 0.0 then
    invalid_arg "Ratelimit.create: rate must be positive";
  if config.burst < 1.0 then
    invalid_arg "Ratelimit.create: burst must be >= 1";
  if max_peers < 1 then invalid_arg "Ratelimit.create: max_peers must be >= 1";
  let now = match now with Some f -> f | None -> Monoclock.now in
  {
    config;
    max_peers;
    now;
    mu = Mutex.create ();
    buckets = Hashtbl.create 64;
    throttled_total = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Callers hold [t.mu].  Bounded table: when full, drop the fullest
   bucket — it belongs to the quietest peer, who loses nothing but a
   little burst allowance if it comes back. *)
let evict_fullest_locked t =
  let victim =
    Hashtbl.fold
      (fun key b acc ->
        match acc with
        | Some (_, best) when best.tokens >= b.tokens -> acc
        | _ -> Some (key, b))
      t.buckets None
  in
  match victim with
  | None -> ()
  | Some (key, _) -> Hashtbl.remove t.buckets key

let bucket_locked t key =
  match Hashtbl.find_opt t.buckets key with
  | Some b -> b
  | None ->
    if Hashtbl.length t.buckets >= t.max_peers then evict_fullest_locked t;
    let b = { tokens = t.config.burst; last_refill = t.now () } in
    Hashtbl.replace t.buckets key b;
    b

let refill_locked t b =
  let now = t.now () in
  let dt = now -. b.last_refill in
  if dt > 0.0 then begin
    b.tokens <- Float.min t.config.burst (b.tokens +. (dt *. t.config.rate_per_s));
    b.last_refill <- now
  end

let admit ?(cost = 1.0) t key =
  if cost <= 0.0 then invalid_arg "Ratelimit.admit: cost must be positive";
  locked t (fun () ->
      let b = bucket_locked t key in
      refill_locked t b;
      if b.tokens >= cost then begin
        b.tokens <- b.tokens -. cost;
        `Admit
      end
      else begin
        t.throttled_total <- t.throttled_total + 1;
        Ppst_telemetry.Metrics.incr m_throttled;
        `Throttle ((cost -. b.tokens) /. t.config.rate_per_s)
      end)

let tokens t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.buckets key with
      | None -> t.config.burst
      | Some b ->
        refill_locked t b;
        b.tokens)

let peers t = locked t (fun () -> Hashtbl.length t.buckets)
let throttled_total t = locked t (fun () -> t.throttled_total)
