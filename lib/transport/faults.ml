(* Deterministic fault injection for the frame layer.  An injector sits
   in a channel's (or server session's) frame path and decides, per
   frame, whether to pass it through or to inject one of five faults.
   Everything is seeded (SplitMix64 — test machinery, not protocol
   randomness), so a chaos run replays bit-identically from
   [--chaos-seed]. *)

module Metrics = Ppst_telemetry.Metrics

let m_injected = Metrics.counter "transport.faults.injected"

type profile =
  | Off
  | Drop_at of int
  | Drop_every of int
  | Corrupt_every of int * int
  | Delay_every of int * float
  | Short_every of int
  | Dup_every of int
  | Flaky of float
  | Crash_at of int
  | Crash_write_at of int

type action =
  | Pass
  | Drop
  | Corrupt of int
  | Delay of float
  | Short_write
  | Duplicate
  | Crash
  | Crash_mid_write

type t = {
  profile : profile;
  prng : Ppst_bigint.Splitmix.t;
  mu : Mutex.t;
  mutable frames : int;
  mutable injected : int;
}

let create ?(seed = 1) profile =
  (match profile with
   | Drop_at n | Crash_at n | Crash_write_at n ->
     if n < 1 then invalid_arg "Faults.create: frame index must be >= 1"
   | Drop_every n | Corrupt_every (n, _) | Delay_every (n, _) | Short_every n
   | Dup_every n ->
     if n < 1 then invalid_arg "Faults.create: period must be >= 1"
   | Flaky p ->
     if p < 0.0 || p > 1.0 then
       invalid_arg "Faults.create: flaky probability must be in [0, 1]"
   | Off -> ());
  {
    profile;
    prng = Ppst_bigint.Splitmix.create seed;
    mu = Mutex.create ();
    frames = 0;
    injected = 0;
  }

let profile t = t.profile

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let frames t = locked t (fun () -> t.frames)
let injected t = locked t (fun () -> t.injected)

let next t =
  locked t (fun () ->
      t.frames <- t.frames + 1;
      let n = t.frames in
      let action =
        match t.profile with
        | Off -> Pass
        | Drop_at k -> if n = k then Drop else Pass
        | Crash_at k -> if n = k then Crash else Pass
        | Crash_write_at k -> if n = k then Crash_mid_write else Pass
        | Drop_every k -> if n mod k = 0 then Drop else Pass
        | Corrupt_every (k, byte) -> if n mod k = 0 then Corrupt byte else Pass
        | Delay_every (k, s) -> if n mod k = 0 then Delay s else Pass
        | Short_every k -> if n mod k = 0 then Short_write else Pass
        | Dup_every k -> if n mod k = 0 then Duplicate else Pass
        | Flaky p ->
          (* seeded coin per frame; the draw happens on every frame so
             the stream stays aligned with the frame counter *)
          let u = float_of_int (Ppst_bigint.Splitmix.int t.prng (1 lsl 30)) /. 1073741824.0 in
          if u < p then Drop else Pass
      in
      (match action with Pass -> () | _ ->
        t.injected <- t.injected + 1;
        Metrics.incr m_injected);
      action)

(* Environmental (disk / file-descriptor) fault injection.  Where the
   frame injector above sits in the wire path, a [Disk.t] sits in front
   of filesystem and fd-allocating syscalls — spool writes, catalog
   saves, snapshot fsyncs, the supervisor's accept/socketpair — and
   fails the Nth such operation with the real errno the environment
   would produce (ENOSPC, EIO, EMFILE).  Deterministic in the per-kind
   operation counters, so a degraded-mode run replays bit-identically
   from its profile string. *)
module Disk = struct
  type op = Write | Fsync | Rename | Fd

  type profile =
    | Off
    | Enospc_at of int  (* Nth write fails with ENOSPC *)
    | Enospc_every of int
    | Eio_fsync_at of int  (* Nth fsync fails with EIO *)
    | Eio_fsync_every of int
    | Torn_rename_at of int
        (* Nth rename fails with EIO after the temp file was written:
           the orphaned .tmp is exactly what a torn atomic-replace
           leaves behind *)
    | Emfile_at of int  (* Nth fd allocation (accept/socketpair) fails *)
    | Emfile_every of int

  type t = {
    profile : profile;
    mu : Mutex.t;
    mutable writes : int;
    mutable fsyncs : int;
    mutable renames : int;
    mutable fds : int;
    mutable injected : int;
  }

  let m_disk_injected = Metrics.counter "transport.faults.disk_injected"

  let create profile =
    (match profile with
     | Enospc_at n | Enospc_every n | Eio_fsync_at n | Eio_fsync_every n
     | Torn_rename_at n | Emfile_at n | Emfile_every n ->
       if n < 1 then invalid_arg "Faults.Disk.create: index must be >= 1"
     | Off -> ());
    {
      profile;
      mu = Mutex.create ();
      writes = 0;
      fsyncs = 0;
      renames = 0;
      fds = 0;
      injected = 0;
    }

  let profile t = t.profile

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let injected t = locked t (fun () -> t.injected)

  let check t op =
    locked t (fun () ->
        let count =
          match op with
          | Write ->
            t.writes <- t.writes + 1;
            t.writes
          | Fsync ->
            t.fsyncs <- t.fsyncs + 1;
            t.fsyncs
          | Rename ->
            t.renames <- t.renames + 1;
            t.renames
          | Fd ->
            t.fds <- t.fds + 1;
            t.fds
        in
        let fail errno name =
          t.injected <- t.injected + 1;
          Metrics.incr m_disk_injected;
          raise (Unix.Unix_error (errno, name, "fault injection"))
        in
        match (t.profile, op) with
        | Enospc_at k, Write when count = k -> fail Unix.ENOSPC "write"
        | Enospc_every k, Write when count mod k = 0 -> fail Unix.ENOSPC "write"
        | Eio_fsync_at k, Fsync when count = k -> fail Unix.EIO "fsync"
        | Eio_fsync_every k, Fsync when count mod k = 0 -> fail Unix.EIO "fsync"
        | Torn_rename_at k, Rename when count = k -> fail Unix.EIO "rename"
        | Emfile_at k, Fd when count = k -> fail Unix.EMFILE "accept"
        | Emfile_every k, Fd when count mod k = 0 -> fail Unix.EMFILE "accept"
        | _ -> ())

  let profile_to_string = function
    | Off -> "off"
    | Enospc_at n -> Printf.sprintf "enospc-at-%d" n
    | Enospc_every n -> Printf.sprintf "enospc-every-%d" n
    | Eio_fsync_at n -> Printf.sprintf "eio-fsync-at-%d" n
    | Eio_fsync_every n -> Printf.sprintf "eio-fsync-every-%d" n
    | Torn_rename_at n -> Printf.sprintf "torn-rename-at-%d" n
    | Emfile_at n -> Printf.sprintf "emfile-at-%d" n
    | Emfile_every n -> Printf.sprintf "emfile-every-%d" n

  let profile_of_string s =
    let int_of v =
      match int_of_string_opt v with
      | Some n when n >= 1 -> Ok n
      | Some n ->
        Error (Printf.sprintf "disk chaos profile: %d is not a positive count" n)
      | None ->
        Error (Printf.sprintf "disk chaos profile: %S is not an integer" v)
    in
    let strip prefix =
      if
        String.length s > String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      then
        Some
          (String.sub s (String.length prefix)
             (String.length s - String.length prefix))
      else None
    in
    let ( let* ) = Result.bind in
    match s with
    | "off" | "" -> Ok Off
    | _ ->
      (match strip "enospc-at-" with
       | Some rest -> let* n = int_of rest in Ok (Enospc_at n)
       | None ->
       match strip "enospc-every-" with
       | Some rest -> let* n = int_of rest in Ok (Enospc_every n)
       | None ->
       match strip "eio-fsync-at-" with
       | Some rest -> let* n = int_of rest in Ok (Eio_fsync_at n)
       | None ->
       match strip "eio-fsync-every-" with
       | Some rest -> let* n = int_of rest in Ok (Eio_fsync_every n)
       | None ->
       match strip "torn-rename-at-" with
       | Some rest -> let* n = int_of rest in Ok (Torn_rename_at n)
       | None ->
       match strip "emfile-at-" with
       | Some rest -> let* n = int_of rest in Ok (Emfile_at n)
       | None ->
       match strip "emfile-every-" with
       | Some rest -> let* n = int_of rest in Ok (Emfile_every n)
       | None ->
         Error
           (Printf.sprintf
              "unknown disk chaos profile %S (expected off, enospc-at-N, \
               enospc-every-N, eio-fsync-at-N, eio-fsync-every-N, \
               torn-rename-at-N, emfile-at-N or emfile-every-N)"
              s))
end

let profile_to_string = function
  | Off -> "off"
  | Drop_at n -> Printf.sprintf "drop-at-%d" n
  | Drop_every n -> Printf.sprintf "drop-every-%d" n
  | Corrupt_every (n, k) -> Printf.sprintf "corrupt-every-%d:%d" n k
  | Delay_every (n, s) -> Printf.sprintf "delay-every-%d:%gms" n (s *. 1000.0)
  | Short_every n -> Printf.sprintf "short-every-%d" n
  | Dup_every n -> Printf.sprintf "dup-every-%d" n
  | Flaky p -> Printf.sprintf "flaky-%g" p
  | Crash_at n -> Printf.sprintf "crash-at-%d" n
  | Crash_write_at n -> Printf.sprintf "crash-write-at-%d" n

let profile_of_string s =
  (* Parsed profiles go straight to [create]: validate here so a bad
     [--chaos-profile] dies at argument parsing, not at first frame. *)
  let int_of v = match int_of_string_opt v with
    | Some n when n >= 1 -> Ok n
    | Some n ->
      Error (Printf.sprintf "chaos profile: %d is not a positive count" n)
    | None -> Error (Printf.sprintf "chaos profile: %S is not an integer" v)
  in
  let split_colon v = match String.index_opt v ':' with
    | None -> (v, None)
    | Some i ->
      (String.sub v 0 i, Some (String.sub v (i + 1) (String.length v - i - 1)))
  in
  let strip prefix =
    if String.length s > String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then Some (String.sub s (String.length prefix)
                 (String.length s - String.length prefix))
    else None
  in
  let ( let* ) = Result.bind in
  match s with
  | "off" | "" -> Ok Off
  | _ ->
    (match strip "drop-at-" with
     | Some rest -> let* n = int_of rest in Ok (Drop_at n)
     | None ->
     match strip "drop-every-" with
     | Some rest -> let* n = int_of rest in Ok (Drop_every n)
     | None ->
     match strip "corrupt-every-" with
     | Some rest ->
       let every, byte = split_colon rest in
       let* n = int_of every in
       (* the byte index may be 0 (first byte of the frame) *)
       let* k =
         match byte with
         | None -> Ok 0
         | Some b ->
           (match int_of_string_opt b with
            | Some k when k >= 0 -> Ok k
            | _ -> Error (Printf.sprintf "chaos profile: bad byte index %S" b))
       in
       Ok (Corrupt_every (n, k))
     | None ->
     match strip "delay-every-" with
     | Some rest ->
       let every, ms = split_colon rest in
       let* n = int_of every in
       let* ms = match ms with None -> Ok 10 | Some m -> int_of m in
       Ok (Delay_every (n, float_of_int ms /. 1000.0))
     | None ->
     match strip "short-every-" with
     | Some rest -> let* n = int_of rest in Ok (Short_every n)
     | None ->
     match strip "dup-every-" with
     | Some rest -> let* n = int_of rest in Ok (Dup_every n)
     | None ->
     match strip "flaky-" with
     | Some rest ->
       (match float_of_string_opt rest with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (Flaky p)
        | _ -> Error (Printf.sprintf "chaos profile: bad probability %S" rest))
     | None ->
     match strip "crash-write-at-" with
     | Some rest -> let* n = int_of rest in Ok (Crash_write_at n)
     | None ->
     match strip "crash-at-" with
     | Some rest -> let* n = int_of rest in Ok (Crash_at n)
     | None ->
       Error
         (Printf.sprintf
            "unknown chaos profile %S (expected off, drop-at-N, drop-every-N, \
             corrupt-every-N[:BYTE], delay-every-N[:MS], short-every-N, \
             dup-every-N, flaky-P, crash-at-N or crash-write-at-N)"
            s))
