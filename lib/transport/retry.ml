(* Unified retry policy: capped exponential backoff with full jitter.
   Every reconnect path in the transport — initial connect, mid-session
   resume, the client binary's Busy loop — goes through [with_retry], so
   backoff behaviour is one policy, not three ad-hoc loops. *)

module Metrics = Ppst_telemetry.Metrics

let m_attempts = Metrics.counter "transport.retry.attempts"
let m_exhausted = Metrics.counter "transport.retry.exhausted"

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  multiplier : float;
}

let default_policy =
  { max_attempts = 8; base_delay_s = 0.05; max_delay_s = 2.0; multiplier = 2.0 }

exception Exhausted of { attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Exhausted { attempts; last } ->
      Some
        (Printf.sprintf "Retry.Exhausted(%d attempts, last: %s)" attempts
           (Printexc.to_string last))
    | _ -> None)

(* Uniform in [0, 1) from the CSPRNG: 30 bits is plenty for jitter. *)
let unit_float rng = float_of_int (Ppst_rng.Secure_rng.int rng (1 lsl 30)) /. 1073741824.0

let backoff_delay policy ~rng ~attempt ~hint =
  let attempt = max 1 attempt in
  let ceiling =
    min policy.max_delay_s
      (policy.base_delay_s *. (policy.multiplier ** float_of_int (attempt - 1)))
  in
  (* Full jitter (uniform in [0, ceiling]): decorrelates a thundering
     herd of clients all rejected by the same Busy server.  A peer's
     retry-after hint is a floor — we never come back earlier than the
     server asked. *)
  let jittered = unit_float rng *. ceiling in
  match hint with None -> jittered | Some h -> Float.max h jittered

let with_retry ?(policy = default_policy) ?rng ?(sleep = Thread.delay)
    ?on_attempt ~classify f =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.with_retry: max_attempts must be >= 1";
  let rng =
    match rng with Some r -> r | None -> Ppst_rng.Secure_rng.system ()
  in
  let rec go attempt =
    try f () with
    | e ->
      let verdict = classify e in
      (match verdict with
       | `Fail -> raise e
       | `Retry | `Retry_after _ ->
         if attempt >= policy.max_attempts then begin
           Metrics.incr m_exhausted;
           raise (Exhausted { attempts = attempt; last = e })
         end;
         let hint = match verdict with `Retry_after s -> Some s | _ -> None in
         let delay_s = backoff_delay policy ~rng ~attempt ~hint in
         Metrics.incr m_attempts;
         (match on_attempt with
          | Some hook -> hook ~attempt ~delay_s e
          | None -> ());
         if delay_s > 0.0 then sleep delay_s;
         go (attempt + 1))
  in
  go 1
