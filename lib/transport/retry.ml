(* Unified retry policy: capped exponential backoff with full jitter.
   Every reconnect path in the transport — initial connect, mid-session
   resume, the client binary's Busy loop — goes through [with_retry], so
   backoff behaviour is one policy, not three ad-hoc loops. *)

module Metrics = Ppst_telemetry.Metrics

let m_attempts = Metrics.counter "transport.retry.attempts"
let m_exhausted = Metrics.counter "transport.retry.exhausted"
let m_budget_exhausted = Metrics.counter "transport.retry.budget_exhausted"

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  multiplier : float;
}

let default_policy =
  { max_attempts = 8; base_delay_s = 0.05; max_delay_s = 2.0; multiplier = 2.0 }

exception Exhausted of { attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Exhausted { attempts; last } ->
      Some
        (Printf.sprintf "Retry.Exhausted(%d attempts, last: %s)" attempts
           (Printexc.to_string last))
    | _ -> None)

(* Uniform in [0, 1) from the CSPRNG: 30 bits is plenty for jitter. *)
let unit_float rng = float_of_int (Ppst_rng.Secure_rng.int rng (1 lsl 30)) /. 1073741824.0

(* A wall-clock budget for one whole logical operation.  Where [policy]
   bounds the *count* of attempts, a budget bounds their total *elapsed
   time*, reconnect sleeps included: every retry path the budget is
   threaded through stops — and clamps its final backoff sleep — at the
   deadline, so "give up after B seconds" holds end to end no matter how
   many layers of retry sit in between.  The clock is injectable for
   deterministic tests. *)
module Budget = struct
  type t = {
    budget_s : float;
    deadline : float;  (* absolute, on [now]'s timescale *)
    now : unit -> float;
  }

  exception Exceeded of { budget_s : float }

  let () =
    Printexc.register_printer (function
      | Exceeded { budget_s } ->
        Some (Printf.sprintf "Retry.Budget.Exceeded(%.3fs budget)" budget_s)
      | _ -> None)

  let create ?now ~budget_s () =
    if budget_s <= 0.0 then
      invalid_arg "Retry.Budget.create: budget must be positive";
    let now = match now with Some f -> f | None -> Monoclock.now in
    { budget_s; deadline = now () +. budget_s; now }

  let budget_s t = t.budget_s
  let deadline t = t.deadline
  let remaining_s t = Float.max 0.0 (t.deadline -. t.now ())
  let expired t = t.deadline -. t.now () <= 0.0
  let check t = if expired t then raise (Exceeded { budget_s = t.budget_s })

  (* A sub-operation's budget never extends past its parent's deadline:
     [sub b ~budget_s:s] is [min s (remaining b)] seconds from now on the
     parent's clock.  May be born expired — callers treat that as "no
     time left", not an error. *)
  let sub t ~budget_s:s =
    let s = Float.min s (Float.max 0.0 (t.deadline -. t.now ())) in
    { budget_s = s; deadline = t.now () +. s; now = t.now }
end

(* Client-side circuit breaker.  A server under sustained overload
   answers every connect with Busy; hammering it with the full retry
   schedule only deepens the overload.  After [threshold] *consecutive*
   shed answers the breaker opens: further attempts fail locally,
   without touching the network, until the cooldown (floored at the
   server's retry-after hint) passes; then exactly one probe is let
   through (half-open) — success closes the breaker, another shed
   reopens it for a fresh cooldown. *)
module Breaker = struct
  type config = { threshold : int; cooldown_s : float }

  let default_config = { threshold = 3; cooldown_s = 5.0 }

  exception Open_circuit of { retry_after_s : float }

  let () =
    Printexc.register_printer (function
      | Open_circuit { retry_after_s } ->
        Some
          (Printf.sprintf "Retry.Breaker.Open_circuit(retry in %.2fs)"
             retry_after_s)
      | _ -> None)

  type state = Closed | Open_until of float | Half_open

  type t = {
    config : config;
    now : unit -> float;
    mu : Mutex.t;
    mutable state : state;
    mutable consecutive_sheds : int;
    mutable opened_total : int;
  }

  let m_opened = Metrics.counter "transport.breaker.opened"
  let m_short_circuited = Metrics.counter "transport.breaker.short_circuited"

  let create ?now ?(config = default_config) () =
    if config.threshold < 1 then
      invalid_arg "Breaker.create: threshold must be >= 1";
    if config.cooldown_s <= 0.0 then
      invalid_arg "Breaker.create: cooldown must be positive";
    let now = match now with Some f -> f | None -> Monoclock.now in
    {
      config;
      now;
      mu = Mutex.create ();
      state = Closed;
      consecutive_sheds = 0;
      opened_total = 0;
    }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let state t =
    locked t (fun () ->
        match t.state with
        | Closed -> `Closed
        | Open_until _ -> `Open
        | Half_open -> `Half_open)

  let opened_total t = locked t (fun () -> t.opened_total)

  (* Ask permission to attempt.  [`Proceed] either means the breaker is
     closed or that this caller just won the half-open probe slot. *)
  let acquire t =
    locked t (fun () ->
        match t.state with
        | Closed -> `Proceed
        | Half_open ->
          (* a probe is already in flight; everyone else waits a beat *)
          Metrics.incr m_short_circuited;
          `Open t.config.cooldown_s
        | Open_until until ->
          let remaining = until -. t.now () in
          if remaining <= 0.0 then begin
            t.state <- Half_open;
            `Proceed
          end
          else begin
            Metrics.incr m_short_circuited;
            `Open remaining
          end)

  let success t =
    locked t (fun () ->
        t.state <- Closed;
        t.consecutive_sheds <- 0)

  let trip_locked t ~hint =
    let cooldown = Float.max t.config.cooldown_s hint in
    t.state <- Open_until (t.now () +. cooldown);
    t.consecutive_sheds <- 0;
    t.opened_total <- t.opened_total + 1;
    Metrics.incr m_opened

  (* The attempt was shed (Busy / throttle, i.e. a [`Retry_after]). *)
  let shed t ~hint =
    locked t (fun () ->
        match t.state with
        | Half_open -> trip_locked t ~hint
        | Closed | Open_until _ ->
          t.consecutive_sheds <- t.consecutive_sheds + 1;
          if t.consecutive_sheds >= t.config.threshold then
            trip_locked t ~hint)

  (* A non-shed failure (connection lost, corrupt frame, ...): breaks
     the consecutive-shed streak — only sheds open the breaker — and
     ends a half-open probe without a verdict, back to closed. *)
  let failure t =
    locked t (fun () ->
        t.consecutive_sheds <- 0;
        match t.state with Half_open -> t.state <- Closed | _ -> ())
end

let backoff_delay policy ~rng ~attempt ~hint =
  let attempt = max 1 attempt in
  let ceiling =
    min policy.max_delay_s
      (policy.base_delay_s *. (policy.multiplier ** float_of_int (attempt - 1)))
  in
  (* Full jitter (uniform in [0, ceiling]): decorrelates a thundering
     herd of clients all rejected by the same Busy server.  A peer's
     retry-after hint is a floor — we never come back earlier than the
     server asked. *)
  let jittered = unit_float rng *. ceiling in
  match hint with None -> jittered | Some h -> Float.max h jittered

let with_retry ?(policy = default_policy) ?rng ?(sleep = Thread.delay)
    ?on_attempt ?breaker ?budget ~classify f =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.with_retry: max_attempts must be >= 1";
  let rng =
    match rng with Some r -> r | None -> Ppst_rng.Secure_rng.system ()
  in
  (* The breaker observes every attempt's outcome; an open breaker
     replaces the attempt with a local [Open_circuit] "shed", consuming
     a retry slot and honouring the remaining cooldown as the hint —
     the server never sees the suppressed attempt. *)
  let run_attempt () =
    match breaker with
    | None -> f ()
    | Some b -> (
      match Breaker.acquire b with
      | `Open retry_after_s -> raise (Breaker.Open_circuit { retry_after_s })
      | `Proceed -> (
        match f () with
        | v ->
          Breaker.success b;
          v
        | exception e ->
          (match e with
           | Breaker.Open_circuit _ -> ()
           | _ -> (
             match classify e with
             | `Retry_after s -> Breaker.shed b ~hint:s
             | `Retry | `Fail -> Breaker.failure b));
          raise e))
  in
  let classify e =
    match e with
    | Breaker.Open_circuit { retry_after_s } -> `Retry_after retry_after_s
    | _ -> classify e
  in
  let rec go attempt =
    try run_attempt () with
    | e ->
      let verdict = classify e in
      (match verdict with
       | `Fail -> raise e
       | `Retry | `Retry_after _ ->
         if attempt >= policy.max_attempts then begin
           Metrics.incr m_exhausted;
           raise (Exhausted { attempts = attempt; last = e })
         end;
         (* The wall budget is checked after every failed attempt; when
            it has run out there is no point sleeping at all. *)
         (match budget with
          | Some b when Budget.expired b ->
            Metrics.incr m_budget_exhausted;
            raise (Budget.Exceeded { budget_s = Budget.budget_s b })
          | _ -> ());
         let hint = match verdict with `Retry_after s -> Some s | _ -> None in
         let delay_s = backoff_delay policy ~rng ~attempt ~hint in
         (* The last sleep before a budget expiry is truncated to the
            remaining budget (overriding even a retry-after floor): we
            never sleep past the deadline, so "give up within B" holds
            to within one attempt's own duration. *)
         let delay_s =
           match budget with
           | Some b -> Float.min delay_s (Budget.remaining_s b)
           | None -> delay_s
         in
         Metrics.incr m_attempts;
         (match on_attempt with
          | Some hook -> hook ~attempt ~delay_s e
          | None -> ());
         if delay_s > 0.0 then sleep delay_s;
         go (attempt + 1))
  in
  go 1
