(** Persistent concurrent session server: the production accept loop.

    Where {!Channel.serve_once} answers exactly one connection and
    returns, [Server_loop] keeps accepting and hands every connection to
    its own worker thread, so one slow session can no longer
    head-of-line-block every other client.  It adds the capacity,
    timeout and shutdown machinery a long-running deployment needs:

    - {e capacity}: at most [config.max_sessions] sessions run at once;
      an over-capacity connection is answered with a [Message.Busy]
      frame (tag [0x8E], retry-after hint) and closed instead of being
      left hanging in the backlog;
    - {e idle timeout / deadline}: enforced in the frame-read path with
      monotonic-clock checks ({!Monoclock}), so neither a silent client
      nor a wall-clock step can pin a worker forever;
    - {e error isolation}: a malformed frame, forged length or handler
      exception aborts only its own session — the loop and every other
      session keep running (the single-session guarantee, kept under
      concurrency);
    - {e graceful shutdown}: {!shutdown} (typically from a
      SIGINT/SIGTERM handler, see {!install_signal_handlers}) stops
      accepting, drains in-flight sessions up to
      [config.drain_timeout_s], then {!run} returns so the caller can
      print merged accounting.

    Concurrency model: one [Thread.t] per session (I/O overlaps; OCaml
    compute interleaves under the runtime lock).  The per-session
    handler closure returned by the factory is only ever called from
    that session's thread, but {e different} sessions run concurrently —
    the factory must hand each session its own mutable state (its own
    [Server.t] in the core layer) and merge shared aggregates under a
    mutex. *)

type config = {
  max_sessions : int;  (** concurrent-session capacity, [>= 1] *)
  max_total : int option;
      (** stop accepting after this many sessions have been {e accepted}
          (Busy rejections do not count); [None] = serve until
          {!shutdown} *)
  idle_timeout_s : float option;
      (** longest silence between two client frames before the session
          is closed *)
  deadline_s : float option;
      (** longest total session duration, measured from accept *)
  retry_after_s : float;  (** backoff hint carried in [Busy] replies *)
  max_frame : int option;
      (** per-session frame cap; [None] = the process default
          ({!Channel.max_frame}) *)
  drain_timeout_s : float;
      (** how long {!run} waits for in-flight sessions after
          {!shutdown} before giving up on them *)
  enable_crc : bool;
      (** grant {!Message.flag_crc32} when offered: CRC-32 trailers on
          every frame after the Welcome *)
  enable_resume : bool;
      (** grant {!Message.flag_resume} when offered: issue a resume
          token and park interrupted sessions in the resume table *)
  enable_metrics : bool;
      (** grant {!Message.flag_metrics} when offered and answer
          [Metrics_req] (in-session and on probe connections) with the
          OpenMetrics page; when [false] the request draws a named
          capability-violation [Error_reply] *)
  resume_ttl_s : float;
      (** parked state lives this long before TTL eviction *)
  resume_capacity : int;
      (** most sessions parked at once; beyond it the entry closest to
          expiry is evicted *)
  faults : Faults.t option;
      (** deterministic fault injector for the server's frame path
          ([--chaos-profile] on [ppst_server]); [None] in production *)
  admission : Admission.limits;
      (** per-session resource budgets (DP cells, series length,
          dimension, frame bytes/count), enforced before any Paillier
          work; violations answer {!Message.reply.Quota_exceeded} and
          end the session ({!outcome.Quota_rejected}) *)
  ratelimit : Ratelimit.config option;
      (** per-peer token-bucket admission: a peer over its budget is
          answered [Busy] with the exact bucket-recovery delay as the
          retry-after hint; [None] = unlimited *)
  shed_watermark : int option;
      (** global load shed: refuse {e new} sessions (Busy + hint) while
          at least this many sessions are inside the crypto handler —
          in-flight work finishes instead of thrashing; [None] = off *)
  watchdog_timeout_s : float option;
      (** slow-peer watchdog: a frame in progress whose byte stream
          stalls longer than this is cut ({!outcome.Slow_peer}) — the
          slowloris defense.  Quiet time {e between} frames is governed
          by [idle_timeout_s], not this. *)
  spool_dir : string option;
      (** crash-safe session spool.  When set, every counted round of a
          resumable session also writes a {!Snapshot} of the session to
          this directory (atomic temp-file + rename + fsync), and a
          [Resume] whose token misses the in-memory table falls back to
          the spool — so a session parked in one worker process survives
          that worker being [SIGKILL]ed and resumes in another.  [None]
          (the default) keeps the pre-existing memory-only behavior. *)
  disk_faults : Faults.Disk.t option;
      (** environmental fault injector (ENOSPC / EIO / EMFILE) consulted
          by the spool writes and the accept path — degraded-mode chaos
          testing; never set in production *)
}

val default_config : config
(** [max_sessions = 4], no total limit, no idle timeout, no deadline,
    [retry_after_s = 1.0], default frame cap, [drain_timeout_s = 30.0],
    CRC and resume enabled ([resume_ttl_s = 300.], capacity 1024), no
    fault injection, no admission budgets, no rate limit, no shed
    watermark, 30 s slow-peer watchdog, no spool. *)

(** What the per-session factory hands back: the request handler plus
    optional crash-safety hooks.  [snapshot] (called after every counted
    round, under the session thread) must return an opaque, serializable
    encoding of the application state sufficient to rebuild the handler;
    [restore] is called at most once, before the first request of a
    session resumed {e from the spool}, with the last spooled blob.
    Handlers without the hooks still park/resume in memory exactly as
    before — they just cannot survive a process crash. *)
type app_handler = {
  respond : Message.request -> Message.reply;
  snapshot : (unit -> string) option;
  restore : (string -> unit) option;
}

val respond_only : (Message.request -> Message.reply) -> app_handler
(** Wrap a plain request handler (no crash-safety hooks). *)

(** Why a session ended, for observability and tests. *)
type outcome =
  | Completed  (** [Bye] handshake or clean EOF *)
  | Idle_timeout  (** closed by [idle_timeout_s] *)
  | Deadline_exceeded  (** closed by [deadline_s] *)
  | Client_error of string
      (** protocol violation (forged length, peer error, ...) — only
          this session died *)
  | Disconnected
      (** the connection died mid-session (reset, EOF without [Bye],
          corrupt frame).  When the session held a resume token its
          state is parked in the resume table; a later connection
          presenting the token continues it as a new [session] record. *)
  | Quota_rejected of string
      (** admission control refused a request against the named budget
          ([Message.Quota_exceeded] was sent); the session is over *)
  | Slow_peer
      (** the slow-peer watchdog cut a connection that stopped making
          byte progress mid-frame ([watchdog_timeout_s]).  Never
          parked for resume. *)

type session = {
  id : int;  (** accept order, starting at 1 *)
  peer : string;  (** printable peer address *)
  outcome : outcome;
  requests : int;
      (** requests answered on {e this connection} (the final [Bye]
          included) — a resumed session's earlier connections already
          reported theirs, so totals never double-count *)
  handler_seconds : float;
      (** wall-clock inside the handler on this connection (same
          delta discipline as [requests]) *)
  session_stats : Stats.t;
      (** this session's traffic, server perspective: received =
          requests, sent = replies *)
}

type t

val create :
  ?config:config ->
  ?on_session_end:(session -> unit) ->
  ?clock:(unit -> float) ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?boot_id:string ->
  port:int ->
  handler:(id:int -> peer:Unix.sockaddr -> app_handler) ->
  unit ->
  t
(** Bind and listen immediately (so [port = 0] picks an ephemeral port
    readable via {!port} before {!run} is even called).  [handler] is
    the per-session factory: invoked {e once} per {e logical} session —
    lazily, in the session's own thread, at its first protocol request;
    a connection resuming a parked session reuses the original closure
    with its state intact.  [Bye] is answered by the loop itself (with
    the measured handler total in [Bye_ack]), as are [Stats_req],
    [Resume] and the capability negotiation on [Hello]/[Welcome]: the
    protocol handler never sees transport concerns.  [on_session_end]
    runs in the session's thread right after its socket closes — the
    hook for logging and for merging per-session cost into process-wide
    aggregates.  [?clock] overrides the resume table's clock (tests
    prove TTL eviction by advancing a fake clock); [?rng] the token
    generator (system-seeded by default).  [?boot_id] is the 4-byte
    incarnation prefix carried by every issued resume token: workers of
    one supervised deployment share it (so tokens shard and fail over
    across them), while a fresh default (random) boot id makes a
    restarted server reject tokens from its previous life with a
    {!Channel.server_restarted_reason}-prefixed reason.
    @raise Invalid_argument on [max_sessions < 1] or a [boot_id] whose
    length is not exactly 4
    @raise Unix.Unix_error when the port cannot be bound. *)

val create_worker :
  ?config:config ->
  ?on_session_end:(session -> unit) ->
  ?clock:(unit -> float) ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?boot_id:string ->
  handler:(id:int -> peer:Unix.sockaddr -> app_handler) ->
  unit ->
  t
(** Like {!create} but without binding a listener: connections arrive as
    file descriptors passed over a {!Supervisor} control socket and are
    served by {!run_worker}.  {!port} returns [0]; {!run} raises. *)

val port : t -> int
(** The actually bound TCP port ([0] for a {!create_worker} loop). *)

val boot_id : t -> string
(** The 4-byte incarnation prefix of every resume token this loop
    issues. *)

val run : t -> unit
(** Accept-and-serve until {!shutdown} is requested or [max_total]
    sessions have been accepted; then stop accepting, drain in-flight
    sessions (bounded by [drain_timeout_s]) and return.  Call from the
    thread that owns the server (it blocks). *)

val shutdown : t -> unit
(** Request a graceful stop: only sets a flag (async-signal-safe), so it
    may be called from a signal handler or any thread.  {!run} notices
    within its accept tick (~0.2 s). *)

val install_signal_handlers : t -> unit
(** Route SIGINT and SIGTERM to {!shutdown} for this loop. *)

val active_sessions : t -> int
(** Sessions currently in flight. *)

val sessions : t -> session list
(** Finished sessions, most recent first. *)

val accepted : t -> int
(** Sessions accepted so far (in-flight included). *)

val rejected : t -> int
(** Connections answered with [Busy] — capacity, rate limit and load
    shed combined. *)

val shed_total : t -> int
(** The subset of {!rejected} refused by the rate limiter or the shed
    watermark (rather than plain session capacity). *)

val is_degraded : t -> bool
(** Whether the server is in the durability-lost degraded state: a
    spool/snapshot write failed (full disk, I/O error) and no later
    write has succeeded yet.  Sessions continue non-durably; health
    probes answer status [3].  Clears itself when a spool write lands
    again. *)

val spool_write_failures : t -> int
(** Spool/snapshot writes that failed so far (each one also increments
    the [server.spool.write_failures] counter). *)

val stats : t -> Stats.t
(** Merged traffic accounting over all {e finished} sessions (fresh
    snapshot; safe to read from any thread). *)

val handler_seconds_total : t -> float
(** Wall-clock handler total over all finished sessions. *)

val resume_parked : t -> int
(** Sessions currently parked in the resume table. *)

val sweep_resume : t -> int
(** Evict every TTL-expired parked session now (spool entries included
    when a spool is configured); returns how many parked sessions went.
    The accept loop also runs this lazily (at most once per second, on
    its accept tick), so thousands of abandoned sessions cannot
    accumulate unboundedly between explicit sweeps. *)

val resume_expired_total : t -> int
(** Parked sessions evicted by TTL expiry over this loop's lifetime
    (the resume table's [expired_total] counter). *)

(** {1 Supervised worker mode}

    Under {!Supervisor}, each worker process runs {!run_worker} on a
    {!create_worker} loop: accepted connections arrive as passed fds on
    the control socket instead of from an owned listener.  When the
    dispatch channel closes (supervisor shutdown or death) the worker
    drains in-flight sessions and writes one final {!worker_report}
    frame back up the control socket, so the parent's merged accounting
    covers every worker that drained. *)

type worker_report = {
  w_accepted : int;
  w_rejected : int;
  w_shed : int;
  w_handler_seconds : float;
  w_stats : Stats.t;
  w_extra : string;
      (** opaque application blob ([run_worker]'s [?extra] thunk);
          [ppst_server] ships its crypto-op totals here *)
}

val decode_report : string -> worker_report
(** Decode a worker's final drain frame.
    @raise Wire.Malformed on a corrupt blob. *)

val run_worker : ?extra:(unit -> string) -> t -> control:Unix.file_descr -> unit
(** Serve connections received via {!Fd_passing.recv_fd} on [control]
    until the channel reaches EOF or {!shutdown} is requested, then
    drain in-flight sessions ([drain_timeout_s]) and send the final
    report frame (best-effort).  [?extra] is evaluated once, after the
    drain, to fill [w_extra].
    @raise Invalid_argument on a loop that owns a listener (use {!run}). *)
