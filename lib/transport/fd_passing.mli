(** SCM_RIGHTS file-descriptor passing over a Unix-domain socket —
    the supervisor's dispatch primitive: the parent accepts a TCP
    connection and ships the connected socket to a worker process.

    Both operations retry on EINTR/EAGAIN and release the OCaml runtime
    lock while blocking, so other threads keep running. *)

val send_fd : Unix.file_descr -> fd:Unix.file_descr -> unit
(** Send one descriptor (plus a 1-byte payload) over [sock].  The
    caller still owns its copy of [fd] and should close it after a
    successful send.  @raise Unix.Unix_error on failure. *)

val recv_fd : Unix.file_descr -> Unix.file_descr option
(** Receive one descriptor; [None] on orderly EOF (peer closed).
    @raise Unix.Unix_error on failure, including [EPROTO] when a
    message arrives without an fd attached. *)
