(** Serializable session snapshot — the externalizable replacement for
    the parked handler closure, enabling cross-worker session failover
    (PROTOCOL.md §13).

    The transport fields reconstruct {!Server_loop}'s session context
    (round counter for exactly-once replay, last encoded reply,
    negotiated capabilities, admission ledger); [app] is an opaque blob
    the application handler produced (e.g. [Ppst.Server.export_state])
    and is reapplied through its [restore] hook after the handler
    factory rebuilds the session. *)

type t = {
  token : string;
  granted : int;
  server_rounds : int;
  last_reply : string;
  requests : int;
  handler_seconds : float;
  server_len : int;
  catalog : int array option;
  admission : string;
  app : string;
}

val encode : t -> string

val decode : string -> t
(** @raise Wire.Malformed on a corrupt or version-mismatched blob. *)
