(** Deterministic fault injection for chaos testing the frame layer.

    An injector is installed in a channel's ({!Channel.connect}
    [?faults]) or server's ({!Server_loop.config.faults}) frame path and
    consulted once per frame — sends and receives alike, in I/O order —
    via {!next}.  Profiles are deterministic in the frame counter (and,
    for [Flaky], in the SplitMix64 seed), so a failing chaos run replays
    bit-identically from its [--chaos-seed]/[--chaos-profile] pair.

    The resume-handshake frames a reconnecting channel exchanges
    ([Resume]/[Resume_ack]) are {e not} passed through the injector:
    faults target the session's data path, and recovery must be able to
    make progress under profiles as hostile as [drop-every-1]. *)

type profile =
  | Off
  | Drop_at of int  (** hard-drop the connection at frame N (1-based) *)
  | Drop_every of int  (** ... at every Nth frame *)
  | Corrupt_every of int * int
      (** flip one bit of byte K (mod length) in every Nth frame *)
  | Delay_every of int * float  (** sleep S seconds before every Nth frame *)
  | Short_every of int
      (** write only a prefix of every Nth outgoing frame, then drop *)
  | Dup_every of int
      (** send every Nth outgoing frame twice, then drop (a duplicate
          desyncs a strict request/reply stream — the drop forces the
          resume path to clean it up) *)
  | Flaky of float  (** drop each frame independently with probability p *)
  | Crash_at of int
      (** SIGKILL the {e injecting process} at frame N (1-based):
          deterministic worker death for failover testing.  Meaningful
          only on a supervised worker's server-side injector — a
          single-process server would kill itself with no one to
          restart it ([ppst_server] refuses the combination). *)
  | Crash_write_at of int
      (** like [Crash_at], but first write a partial prefix of frame
          N, simulating death mid-write: the peer sees a torn frame,
          the supervisor sees a dead worker *)

type action =
  | Pass
  | Drop
  | Corrupt of int
  | Delay of float
  | Short_write
  | Duplicate
  | Crash  (** raise SIGKILL against the current process *)
  | Crash_mid_write  (** write a partial frame, then SIGKILL *)

type t

val create : ?seed:int -> profile -> t
(** @raise Invalid_argument on a non-positive period/index or a [Flaky]
    probability outside [\[0, 1\]]. *)

val next : t -> action
(** Advance the frame counter and return the action for this frame.
    Thread-safe (one injector may be shared by every session of a
    server loop). *)

val profile : t -> profile

val frames : t -> int
(** Frames seen so far. *)

val injected : t -> int
(** Faults injected so far. *)

(** Environmental (disk / file-descriptor) fault injection: a companion
    injector for filesystem and fd-allocating syscalls.  Install one in
    front of {!Spool} writes, catalog [Store.save_dir] saves, snapshot
    fsyncs or the supervisor's accept/socketpair path and the Nth such
    operation fails with the real errno the environment would produce —
    [ENOSPC] on write, [EIO] on fsync, [EIO] on rename (leaving the torn
    temp file behind), [EMFILE] on fd allocation.  Deterministic in the
    per-kind operation counters, so a degraded-mode chaos run replays
    bit-identically from its [--disk-chaos] profile string. *)
module Disk : sig
  type op =
    | Write  (** payload write to a temp/spool/catalog file *)
    | Fsync  (** durability barrier (file or directory) *)
    | Rename  (** the atomic-replace commit step *)
    | Fd  (** fd allocation: accept(2), socketpair(2) *)

  type profile =
    | Off
    | Enospc_at of int  (** Nth write fails with ENOSPC *)
    | Enospc_every of int  (** ... every Nth write *)
    | Eio_fsync_at of int  (** Nth fsync fails with EIO *)
    | Eio_fsync_every of int
    | Torn_rename_at of int
        (** Nth rename fails with EIO after the temp file was written *)
    | Emfile_at of int  (** Nth fd allocation fails with EMFILE *)
    | Emfile_every of int

  type t

  val create : profile -> t
  (** @raise Invalid_argument on a non-positive index/period. *)

  val check : t -> op -> unit
  (** Count one operation of kind [op] and raise the profile's
      [Unix.Unix_error] if this is the operation it targets.
      Thread-safe. *)

  val profile : t -> profile

  val injected : t -> int
  (** Faults injected so far. *)

  val profile_of_string : string -> (profile, string) result
  (** Parse a [--disk-chaos] argument: [off], [enospc-at-N],
      [enospc-every-N], [eio-fsync-at-N], [eio-fsync-every-N],
      [torn-rename-at-N], [emfile-at-N], [emfile-every-N]. *)

  val profile_to_string : profile -> string
end

val profile_of_string : string -> (profile, string) result
(** Parse a [--chaos-profile] argument: [off], [drop-at-N],
    [drop-every-N], [corrupt-every-N[:BYTE]], [delay-every-N[:MS]],
    [short-every-N], [dup-every-N], [flaky-P], [crash-at-N],
    [crash-write-at-N]. *)

val profile_to_string : profile -> string
