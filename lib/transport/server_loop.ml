(* Concurrent accept loop: one worker thread per session, capacity
   enforcement with Busy replies, monotonic idle/deadline checks in the
   frame-read path, and a drain-on-shutdown protocol.  Since the
   fault-tolerance PR it also owns the transport capabilities: CRC-32
   frame integrity and checkpoint/resume are negotiated here (the core
   protocol handler stays transport-agnostic), and the state of a
   session whose connection died is parked in a bounded TTL table keyed
   by the random resume token issued in Welcome.

   Locking discipline: [t.mu] guards the session registry (active count,
   finished list, merged aggregates); [t.rng_mu] guards the token
   generator (drawn from session threads); the stop request is an
   [Atomic] so a signal handler can set it without touching any lock. *)

module Telemetry = Ppst_telemetry.Telemetry
module Metrics = Ppst_telemetry.Metrics
module Rollup = Ppst_telemetry.Rollup
module Exposition = Ppst_telemetry.Exposition

(* Session lifecycle metrics, exposed to operators through Stats_req. *)
let m_active = Metrics.gauge "server.sessions.active"
let m_accepted = Metrics.counter "server.sessions.accepted"
let m_completed = Metrics.counter "server.sessions.completed"
let m_aborted = Metrics.counter "server.sessions.aborted"
let m_busy_rejected = Metrics.counter "server.sessions.busy_rejected"
let m_disconnected = Metrics.counter "server.sessions.disconnected"
let m_resume_accepted = Metrics.counter "server.resume.accepted"
let m_resume_rejected = Metrics.counter "server.resume.rejected"
let m_parked = Metrics.gauge "server.resume.parked"
let m_shed = Metrics.counter "server.shed"
let m_capability_violations = Metrics.counter "server.capability.violations"
let m_stalled = Metrics.counter "server.sessions.stalled"

(* Degraded-mode observability: spool write failures and the sticky
   durability flag they flip (surfaced as Health_reply status 3). *)
let m_spool_write_failures = Metrics.counter "server.spool.write_failures"
let m_degraded = Metrics.gauge "server.degraded"
let m_accept_emfile = Metrics.counter "server.accept.emfile"

type config = {
  max_sessions : int;
  max_total : int option;
  idle_timeout_s : float option;
  deadline_s : float option;
  retry_after_s : float;
  max_frame : int option;
  drain_timeout_s : float;
  enable_crc : bool;
  enable_resume : bool;
  enable_metrics : bool;
  resume_ttl_s : float;
  resume_capacity : int;
  faults : Faults.t option;
  admission : Admission.limits;
  ratelimit : Ratelimit.config option;
  shed_watermark : int option;
  watchdog_timeout_s : float option;
  spool_dir : string option;
  disk_faults : Faults.Disk.t option;
}

let default_config =
  {
    max_sessions = 4;
    max_total = None;
    idle_timeout_s = None;
    deadline_s = None;
    retry_after_s = 1.0;
    max_frame = None;
    drain_timeout_s = 30.0;
    enable_crc = true;
    enable_resume = true;
    enable_metrics = true;
    resume_ttl_s = 300.0;
    resume_capacity = 1024;
    faults = None;
    admission = Admission.unlimited;
    ratelimit = None;
    shed_watermark = None;
    watchdog_timeout_s = Some 30.0;
    spool_dir = None;
    disk_faults = None;
  }

(* The per-session application handler.  [respond] answers protocol
   requests; the optional [snapshot]/[restore] pair is the serializable
   replacement for the parked closure: [snapshot] exports the
   application's session state as an opaque blob (spooled crash-safely
   after every counted round), [restore] re-applies a blob to a freshly
   built handler — how a session parked in worker A resumes in worker B
   after A is SIGKILLed. *)
type app_handler = {
  respond : Message.request -> Message.reply;
  snapshot : (unit -> string) option;
  restore : (string -> unit) option;
}

let respond_only respond = { respond; snapshot = None; restore = None }

type outcome =
  | Completed
  | Idle_timeout
  | Deadline_exceeded
  | Client_error of string
  | Disconnected
  | Quota_rejected of string
  | Slow_peer

(* Everything needed to continue a session on a later connection.
   [server_rounds]/[last_reply] implement exactly-once rounds: the
   client reconciles its own received-reply count against
   [server_rounds], and when the server is ahead (the reply was
   computed but lost in transit) the cached encoding is replayed inside
   Resume_ack instead of running the round again. *)
type session_ctx = {
  ctx_id : int;
  ctx_peer : Unix.sockaddr;
  mutable handle : app_handler option;
      (* created lazily in the session thread, exactly once per logical
         session — a resumed connection reuses it, state intact *)
  mutable pending_restore : string option;
      (* application blob from a spooled snapshot, applied through the
         handler's [restore] hook the moment the factory rebuilds it *)
  mutable server_rounds : int;  (* replies written, control frames excluded *)
  mutable last_reply : string;  (* encoded last counted reply *)
  mutable handler_seconds : float;  (* cumulative across connections *)
  mutable requests : int;  (* cumulative across connections *)
  mutable token : string;
  mutable granted : int;
  ctx_deadline : float option;  (* fixed at first accept, survives resume *)
  adm : Admission.t;  (* per-session budget ledger, survives resume *)
  mutable server_len : int;  (* active record's length, from Welcome *)
  mutable catalog : int array option;  (* record lengths, once seen *)
}

type session = {
  id : int;
  peer : string;
  outcome : outcome;
  requests : int;
  handler_seconds : float;
  session_stats : Stats.t;
}

type t = {
  config : config;
  on_session_end : (session -> unit) option;
  handler : id:int -> peer:Unix.sockaddr -> app_handler;
  listener : Unix.file_descr option;
      (* None in worker mode: connections arrive by fd passing from the
         supervisor, not from an owned accept socket *)
  bound_port : int;
  boot_id : string;
      (* 4-byte incarnation prefix of every minted token: lets a
         restarted server distinguish "token from a previous life"
         (terminal; client fails fast) from "unknown token" *)
  spool : Spool.t option;
  clock : unit -> float;
  mutable last_sweep : float;
  stop : bool Atomic.t;
  mu : Mutex.t;
  resume : session_ctx Resume_table.t;
  ratelimit : Ratelimit.t option;
  (* sessions currently inside the protocol handler — the in-flight
     crypto work the shed watermark compares against.  An Atomic so the
     accept thread reads it without taking any session's lock. *)
  inflight : int Atomic.t;
  (* Sticky-until-recovery durability flag: set when a spool/snapshot
     write fails (ENOSPC, EIO, ...), cleared when a later write lands.
     While set, sessions keep running non-durably and health probes
     answer status 3 (degraded). *)
  durability_lost : bool Atomic.t;
  mutable spool_write_failures : int;
  rng : Ppst_rng.Secure_rng.t;
  rng_mu : Mutex.t;
  mutable active : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable shed : int;
  mutable finished : session list;
  mutable merged_stats : Stats.t;
  mutable handler_seconds_total : float;
}

let string_of_sockaddr = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (addr, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port

let make ~config ~on_session_end ~clock ~rng ~boot_id ~listener ~bound_port
    ~handler =
  if config.max_sessions < 1 then
    invalid_arg "Server_loop.create: max_sessions must be >= 1";
  (match config.max_frame with
   | Some n when n < 16 ->
     invalid_arg "Server_loop.create: frame cap below 16 bytes"
   | _ -> ());
  Channel.setup_sigpipe ();
  let rng = match rng with Some r -> r | None -> Ppst_rng.Secure_rng.system () in
  let boot_id =
    match boot_id with
    | Some b ->
      if String.length b <> 4 then
        invalid_arg "Server_loop.create: boot_id must be exactly 4 bytes";
      b
    | None -> Ppst_rng.Secure_rng.bytes rng 4
  in
  {
    config;
    on_session_end;
    handler;
    listener;
    bound_port;
    boot_id;
    spool =
      Option.map
        (fun dir -> Spool.create ?disk_faults:config.disk_faults ~dir ())
        config.spool_dir;
    clock = (match clock with Some f -> f | None -> Monoclock.now);
    last_sweep = 0.0;
    stop = Atomic.make false;
    mu = Mutex.create ();
    resume =
      Resume_table.create ?now:clock ~capacity:config.resume_capacity
        ~ttl_s:config.resume_ttl_s ();
    ratelimit =
      Option.map (fun cfg -> Ratelimit.create ?now:clock cfg) config.ratelimit;
    inflight = Atomic.make 0;
    durability_lost = Atomic.make false;
    spool_write_failures = 0;
    rng;
    rng_mu = Mutex.create ();
    active = 0;
    accepted = 0;
    rejected = 0;
    shed = 0;
    finished = [];
    merged_stats = Stats.create ();
    handler_seconds_total = 0.0;
  }

let create ?(config = default_config) ?on_session_end ?clock ?rng ?boot_id
    ~port ~handler () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
     Unix.listen listener (config.max_sessions + 16)
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  match
    make ~config ~on_session_end ~clock ~rng ~boot_id ~listener:(Some listener)
      ~bound_port ~handler
  with
  | t -> t
  | exception e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    raise e

let create_worker ?(config = default_config) ?on_session_end ?clock ?rng
    ?boot_id ~handler () =
  make ~config ~on_session_end ~clock ~rng ~boot_id ~listener:None
    ~bound_port:0 ~handler

let port t = t.bound_port
let boot_id t = t.boot_id
let shutdown t = Atomic.set t.stop true

let install_signal_handlers t =
  let on_signal _ = shutdown t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let active_sessions t = locked t (fun () -> t.active)
let sessions t = locked t (fun () -> t.finished)
let accepted t = locked t (fun () -> t.accepted)
let rejected t = locked t (fun () -> t.rejected)
let shed_total t = locked t (fun () -> t.shed)
let handler_seconds_total t = locked t (fun () -> t.handler_seconds_total)
let resume_parked t = Resume_table.size t.resume

let sweep_resume t =
  let swept = Resume_table.sweep t.resume in
  (match t.spool with
   | Some sp -> ignore (Spool.sweep sp ~ttl_s:t.config.resume_ttl_s)
   | None -> ());
  swept

let resume_expired_total t = Resume_table.expired_total t.resume

(* Lazy sweep wired into the accept/inject path: abandoned sessions are
   evicted as the server keeps serving, without a dedicated janitor
   thread.  Rate-limited to roughly once per second of the (injectable)
   clock so a busy accept loop pays one table scan per second, not one
   per connection. *)
let maybe_sweep t =
  let now = t.clock () in
  if now -. t.last_sweep >= 1.0 then begin
    t.last_sweep <- now;
    ignore (sweep_resume t)
  end

(* Capability bits this loop grants when a client offers them. *)
let supported_flags t =
  (if t.config.enable_crc then Message.flag_crc32 else 0)
  lor (if t.config.enable_resume then Message.flag_resume else 0)
  lor if t.config.enable_metrics then Message.flag_metrics else 0

(* 128-bit resume token: the 4-byte boot id, then 12 bytes of pure
   CSPRNG output — never derived from key or protocol state, so it
   reveals nothing beyond "same server incarnation" (SECURITY.md).  The
   prefix is what lets a restarted server answer an old token with the
   terminal server-restarted reject instead of a retryable one; 96
   random bits keep tokens unguessable.  The rng is shared by all
   session threads, hence the lock. *)
let gen_token t =
  Mutex.lock t.rng_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.rng_mu)
    (fun () -> t.boot_id ^ Ppst_rng.Secure_rng.bytes t.rng 12)

let stats t =
  (* fresh snapshot so callers never alias the mutable accumulator *)
  locked t (fun () -> Stats.merge t.merged_stats (Stats.create ()))

(* The Stats_reply payload: this loop's live session counters (loop-local
   truth, unlike the process-wide registry a test harness may share
   across several loops), then the full metrics exposition. *)
let stats_text t =
  let active, accepted, rejected, finished =
    locked t (fun () -> (t.active, t.accepted, t.rejected, t.finished))
  in
  let completed =
    List.length (List.filter (fun s -> s.outcome = Completed) finished)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "# live sessions\n";
  Buffer.add_string b (Printf.sprintf "active %d\n" active);
  Buffer.add_string b (Printf.sprintf "accepted %d\n" accepted);
  Buffer.add_string b (Printf.sprintf "rejected %d\n" rejected);
  Buffer.add_string b (Printf.sprintf "completed %d\n" completed);
  Buffer.add_string b "# resume table\n";
  Buffer.add_string b (Printf.sprintf "parked %d\n" (Resume_table.size t.resume));
  Buffer.add_string b
    (Printf.sprintf "expired %d\n" (Resume_table.expired_total t.resume));
  Buffer.add_string b
    (Printf.sprintf "evicted %d\n" (Resume_table.evicted_total t.resume));
  Buffer.add_string b "# metrics\n";
  Buffer.add_string b (Metrics.dump_string ());
  Buffer.add_string b "# windows\n";
  Buffer.add_string b (Rollup.dump_string (Rollup.global ()));
  Buffer.contents b

(* The Metrics_reply / sidecar-endpoint payload: the registry and its
   windowed rollups in OpenMetrics text form. *)
let metrics_text () = Exposition.render ~rollup:(Rollup.global ()) ()

(* A spool/snapshot write failed: sessions continue non-durably (the
   in-memory resume table still works), but cross-worker failover is
   compromised — flip the sticky durability flag so health probes answer
   "degraded" until a later write succeeds. *)
let durability_lost t _e =
  locked t (fun () -> t.spool_write_failures <- t.spool_write_failures + 1);
  Metrics.incr m_spool_write_failures;
  if not (Atomic.exchange t.durability_lost true) then begin
    Metrics.gauge_set m_degraded 1.0;
    Telemetry.event ~level:Telemetry.Info ~name:"server.durability_lost" ()
  end

(* A later spool write landed: durability is back, clear the flag. *)
let durability_regained t =
  if Atomic.exchange t.durability_lost false then begin
    Metrics.gauge_set m_degraded 0.0;
    Telemetry.event ~level:Telemetry.Info ~name:"server.durability_regained" ()
  end

let spool_write_failures t = locked t (fun () -> t.spool_write_failures)
let is_degraded t = Atomic.get t.durability_lost

(* Readiness, as reported to Health_req probes.  Shedding (2) dominates
   at-capacity (1): a load balancer must stop sending work before the
   session slots are even full.  Both dominate degraded (3, durability
   lost): overload states are transient and actionable right now, while
   degraded only means new sessions lose crash-durability. *)
let health_status t =
  let shedding =
    match t.config.shed_watermark with
    | Some w -> Atomic.get t.inflight >= w
    | None -> false
  in
  if shedding then 2
  else if locked t (fun () -> t.active) >= t.config.max_sessions then 1
  else if Atomic.get t.durability_lost then 3
  else 0

let health_reply ?status t =
  let status = match status with Some s -> s | None -> health_status t in
  Message.Health_reply
    {
      status;
      active = locked t (fun () -> t.active);
      capacity = t.config.max_sessions;
      retry_after_s = (if status = 0 then 0.0 else t.config.retry_after_s);
    }

(* The earliest of the idle and overall deadlines, tagged with which one
   it is so a timeout maps to the right outcome. *)
let next_deadline t ~session_deadline =
  let idle =
    match t.config.idle_timeout_s with
    | None -> None
    | Some s -> Some (Monoclock.now () +. s)
  in
  match (idle, session_deadline) with
  | None, None -> None
  | Some i, None -> Some (i, Idle_timeout)
  | None, Some d -> Some (d, Deadline_exceeded)
  | Some i, Some d ->
    if d <= i then Some (d, Deadline_exceeded) else Some (i, Idle_timeout)

let best_effort_reply ?max_frame ?(crc = false) fd reply =
  try
    Channel.write_frame ?max_frame ~crc fd (Message.encode (Message.Reply reply))
  with _ -> ()

(* One connection, run in its own thread.  A connection is either a
   fresh session (first frame Hello or any other request) or the
   continuation of a parked one (first frame Resume); both then run the
   same request loop, with per-frame deadline checks and stats. *)
let serve_session t ~id ~peer fd =
  let span =
    Telemetry.start ~name:"server.session" ~attrs:[ ("id", Telemetry.Int id) ] ()
  in
  let cap = t.config.max_frame in
  let stats = Stats.create () in
  let crc = ref false in
  (* Whether this connection has negotiated (Hello or Resume).  Before
     that, Metrics_req is open introspection like Stats_req; after a
     negotiation that did not grant the flag, it is a violation. *)
  let negotiated = ref false in
  let attached : session_ctx option ref = ref None in
  let base_requests = ref 0 in
  let base_handler = ref 0.0 in
  let accept_deadline =
    match t.config.deadline_s with
    | None -> None
    | Some s -> Some (Monoclock.now () +. s)
  in
  let attach c =
    attached := Some c;
    base_requests := c.requests;
    base_handler := c.handler_seconds
  in
  let ctx () =
    match !attached with
    | Some c -> c
    | None ->
      let c =
        {
          ctx_id = id;
          ctx_peer = peer;
          handle = None;
          pending_restore = None;
          server_rounds = 0;
          last_reply = "";
          handler_seconds = 0.0;
          requests = 0;
          token = "";
          granted = 0;
          ctx_deadline = accept_deadline;
          adm = Admission.create t.config.admission;
          server_len = 0;
          catalog = None;
        }
      in
      attach c;
      c
  in
  let handle_of c =
    match c.handle with
    | Some h -> h.respond
    | None ->
      (* the factory runs in the session thread: key-sharing setup cost
         is paid by the session, never by the accept loop *)
      let h = t.handler ~id:c.ctx_id ~peer:c.ctx_peer in
      (* a spooled snapshot's application blob is re-applied the moment
         the handler exists — before the first request touches it *)
      (match (c.pending_restore, h.restore) with
       | Some blob, Some restore -> restore blob
       | _ -> ());
      c.pending_restore <- None;
      c.handle <- Some h;
      h.respond
  in
  (* The full serializable session image (Snapshot transport fields +
     the handler's own exported state). *)
  let snapshot_of c =
    let app =
      match c.handle with
      | Some { snapshot = Some snap; _ } -> snap ()
      | _ -> ( match c.pending_restore with Some blob -> blob | None -> "")
    in
    Snapshot.encode
      {
        Snapshot.token = c.token;
        granted = c.granted;
        server_rounds = c.server_rounds;
        last_reply = c.last_reply;
        requests = c.requests;
        handler_seconds = c.handler_seconds;
        server_len = c.server_len;
        catalog = c.catalog;
        admission = Admission.export c.adm;
        app;
      }
  in
  (* Externalize after every counted round, BEFORE the reply frame goes
     out: a worker SIGKILLed at any later instant leaves a snapshot the
     resuming worker replays from (killed-after-spool-before-send means
     the client resumes one round behind and gets the cached reply;
     killed-before-spool means the client re-sends and the round runs
     again — either way the revealed distance is bit-identical). *)
  let spool_snapshot c =
    match t.spool with
    | Some sp when c.token <> "" && t.config.enable_resume -> (
      match Spool.put sp ~key:c.token (snapshot_of c) with
      | () -> durability_regained t
      | exception e -> durability_lost t e
        (* a full disk must not kill the live session: the spool is a
           recovery improvement, in-memory parking still works.  The
           failure demotes the server to the typed degraded state
           (Health_reply status 3) until a later write lands. *))
    | _ -> ()
  in
  let timed c req =
    let t0 = Unix.gettimeofday () in
    (* the in-flight gauge the shed watermark watches: this thread is
       about to spend crypto cycles in the handler *)
    Atomic.incr t.inflight;
    let reply =
      try handle_of c req with e -> Message.Error_reply (Printexc.to_string e)
    in
    Atomic.decr t.inflight;
    c.handler_seconds <- c.handler_seconds +. (Unix.gettimeofday () -. t0);
    reply
  in
  (* Every counted reply is cached (encoding included) BEFORE the write:
     if the write dies half-way the client saw nothing, resumes with an
     older count, and the cached copy is replayed.  Control frames
     (Resume_ack/Resume_reject) are not rounds on either side. *)
  let write_reply ?(control = false) reply =
    let encoded = Message.encode (Message.Reply reply) in
    if not control then begin
      let c = ctx () in
      c.server_rounds <- c.server_rounds + 1;
      c.last_reply <- encoded;
      spool_snapshot c
    end;
    Channel.write_frame ?max_frame:cap ~crc:!crc ?faults:t.config.faults fd
      encoded;
    Stats.record_sent stats ~bytes:(String.length encoded)
      ~values:(Message.values_in (Message.Reply reply));
    Stats.record_round stats
  in
  let outcome =
    try
      let rec loop () =
        let session_deadline =
          match !attached with
          | Some c -> c.ctx_deadline
          | None -> accept_deadline
        in
        let deadline = next_deadline t ~session_deadline in
        match
          Channel.read_frame ?max_frame:cap ~crc:!crc ?faults:t.config.faults
            ?progress_timeout_s:t.config.watchdog_timeout_s
            ?deadline:(Option.map fst deadline) fd
        with
        | None -> (
          (* EOF without Bye: a resumable client may come back *)
          match !attached with
          | Some c when c.token <> "" -> Disconnected
          | _ -> Completed)
        | Some frame -> (
          (* Byte/frame budgets are charged before the codec even runs:
             an attached session pays for every frame it ships.  (The
             opening frame of a connection — Hello or Resume, bounded by
             the frame cap and answered without crypto — is exempt; the
             ledger attaches with the session.) *)
          match
            match !attached with
            | Some c ->
              Admission.charge_frame c.adm ~bytes:(String.length frame)
            | None -> Admission.Admit
          with
          | Admission.Reject { quota; limit; requested } ->
            Stats.record_received stats ~bytes:(String.length frame) ~values:0;
            write_reply (Message.Quota_exceeded { quota; limit; requested });
            Quota_rejected quota
          | Admission.Admit -> (
          match Message.decode frame with
          | exception Wire.Malformed m ->
            Stats.record_received stats ~bytes:(String.length frame) ~values:0;
            (* A flags-0 session shipping CRC-32 trailers surfaces here:
               the codec chokes on 4 trailing bytes that happen to be
               the CRC of the rest.  Name the violation instead of
               hiding it behind a generic parse error, and end the
               session — the peer's framing disagrees with what was
               negotiated, so nothing after this can be trusted. *)
            let n = String.length frame in
            let is_unnegotiated_crc =
              (not !crc) && n > 4
              && Crc32.digest (String.sub frame 0 (n - 4))
                 = (Char.code frame.[n - 4] lsl 24)
                   lor (Char.code frame.[n - 3] lsl 16)
                   lor (Char.code frame.[n - 2] lsl 8)
                   lor Char.code frame.[n - 1]
            in
            if is_unnegotiated_crc then begin
              Metrics.incr m_capability_violations;
              let m =
                "capability violation: CRC-32 trailer on a session \
                 without the crc32 grant"
              in
              write_reply (Message.Error_reply m);
              Client_error m
            end
            else begin
              (* a malformed payload inside a well-framed message is
                 answerable in-band; the session survives *)
              write_reply (Message.Error_reply ("malformed request: " ^ m));
              loop ()
            end
          | request ->
            Stats.record_received stats ~bytes:(String.length frame)
              ~values:(Message.values_in request);
            (match request with
             | Message.Request (Message.Resume { token; client_rounds; flags })
               -> (
               match !attached with
               | Some _ ->
                 write_reply ~control:true
                   (Message.Resume_reject
                      { reason = "resume on an established connection" });
                 loop ()
               | None when not t.config.enable_resume ->
                 (* a capability the server never grants: name the
                    violation instead of pretending the token expired *)
                 Metrics.incr m_capability_violations;
                 Metrics.incr m_resume_rejected;
                 write_reply ~control:true
                   (Message.Resume_reject
                      {
                        reason =
                          "capability violation: resume is not enabled on \
                           this server";
                      });
                 loop ()
               | None -> (
                 let accept_resume c =
                   attach c;
                   let granted = flags land supported_flags t in
                   c.granted <- granted;
                   let replay =
                     if c.server_rounds > client_rounds then c.last_reply
                     else ""
                   in
                   Metrics.incr m_resume_accepted;
                   Metrics.gauge_set m_parked
                     (float_of_int (Resume_table.size t.resume));
                   write_reply ~control:true
                     (Message.Resume_ack
                        {
                          server_rounds = c.server_rounds;
                          reply = replay;
                          flags = granted;
                        });
                   crc := granted land Message.flag_crc32 <> 0;
                   negotiated := true;
                   loop ()
                 in
                 match Resume_table.take t.resume token with
                 | Some c -> accept_resume c
                 | None -> (
                   (* memory miss: the session may have been parked by a
                      worker that is now dead — reconstitute it from the
                      crash-safe spool (cross-worker failover). *)
                   let from_spool =
                     match t.spool with
                     | None -> None
                     | Some sp -> (
                       match Spool.take sp ~key:token with
                       | None -> None
                       | Some blob -> (
                         match Snapshot.decode blob with
                         | snap -> Some snap
                         | exception Wire.Malformed _ -> None))
                   in
                   match from_spool with
                   | Some snap ->
                     let c =
                       {
                         ctx_id = id;
                         ctx_peer = peer;
                         handle = None;
                         pending_restore =
                           (if snap.Snapshot.app = "" then None
                            else Some snap.Snapshot.app);
                         server_rounds = snap.Snapshot.server_rounds;
                         last_reply = snap.Snapshot.last_reply;
                         handler_seconds = snap.Snapshot.handler_seconds;
                         requests = snap.Snapshot.requests;
                         token = snap.Snapshot.token;
                         granted = snap.Snapshot.granted;
                         (* the original absolute deadline died with its
                            worker; the failed-over session gets this
                            connection's accept deadline *)
                         ctx_deadline = accept_deadline;
                         adm =
                           Admission.import t.config.admission
                             snap.Snapshot.admission;
                         server_len = snap.Snapshot.server_len;
                         catalog = snap.Snapshot.catalog;
                       }
                     in
                     accept_resume c
                   | None ->
                     Metrics.incr m_resume_rejected;
                     let reason =
                       (* a token whose boot-id prefix names a previous
                          incarnation can never become valid again: say
                          so, typed, so the client fails fast instead of
                          burning its retry budget *)
                       if
                         String.length token >= 4
                         && String.sub token 0 4 <> t.boot_id
                       then
                         Channel.server_restarted_reason
                         ^ ": resume token was minted by a previous server \
                            incarnation"
                       else "unknown or expired resume token"
                     in
                     write_reply ~control:true
                       (Message.Resume_reject { reason });
                     loop ())))
             | Message.Request (Message.Hello { flags; spec } as req) -> (
               let c = ctx () in
               c.requests <- c.requests + 1;
               negotiated := true;
               let reply = timed c req in
               let reply =
                 match reply with
                 | Message.Welcome
                     {
                       n;
                       key_bits;
                       series_length;
                       dimension;
                       max_value;
                       flags = app_granted;
                       _;
                     } ->
                   (* transport-owned negotiation: grant = offer AND
                      support, and mint the resume token here — the core
                      handler stays transport-agnostic.  Application
                      capabilities the handler already granted (packing,
                      catalog) are preserved, not clobbered. *)
                   let granted =
                     flags land supported_flags t
                     lor (app_granted
                         land (Message.flag_packing lor Message.flag_catalog))
                   in
                   let token =
                     if granted land Message.flag_resume <> 0 then gen_token t
                     else ""
                   in
                   c.token <- token;
                   c.granted <- granted;
                   c.server_len <- series_length;
                   Message.Welcome
                     {
                       n;
                       key_bits;
                       series_length;
                       dimension;
                       max_value;
                       flags = granted;
                       resume_token = token;
                     }
                 | other -> other
               in
               (* Admission at Hello time: the declared spec against the
                  session budgets, while everything is still plaintext
                  bookkeeping — a rejected session never reaches
                  Phase1's n*(d+1) encryptions, let alone the per-cell
                  decrypt path. *)
               let verdict =
                 match spec with
                 | Some sp when c.server_len > 0 ->
                   Admission.declare c.adm ~spec:sp ~server_len:c.server_len
                 | _ -> Admission.Admit
               in
               match verdict with
               | Admission.Reject { quota; limit; requested } ->
                 write_reply
                   (Message.Quota_exceeded { quota; limit; requested });
                 Quota_rejected quota
               | Admission.Admit ->
                 write_reply reply;
                 (* the Welcome itself travels plain; everything after it
                    is protected once the client has seen the grant *)
                 if c.granted land Message.flag_crc32 <> 0 then crc := true;
                 loop ())
             | Message.Request Message.Bye ->
               let c = ctx () in
               c.requests <- c.requests + 1;
               (* orderly end: nothing to park, the token dies here —
                  the spooled snapshot too, or a client could resurrect
                  a session it already closed *)
               (match t.spool with
                | Some sp when c.token <> "" -> Spool.delete sp ~key:c.token
                | _ -> ());
               c.token <- "";
               write_reply
                 (Message.Bye_ack { server_seconds = c.handler_seconds });
               Completed
             | Message.Request Message.Stats_req ->
               (* introspection is answered by the loop, not the protocol
                  handler: it must reflect every session, not this one *)
               let c = ctx () in
               c.requests <- c.requests + 1;
               write_reply (Message.Stats_reply (stats_text t));
               loop ()
             | Message.Request Message.Health_req ->
               let c = ctx () in
               c.requests <- c.requests + 1;
               write_reply (health_reply t);
               loop ()
             | Message.Request Message.Metrics_req ->
               (* loop-answered like Stats_req.  Sessionless probes (no
                  Hello yet) are open introspection; once a session has
                  negotiated, the reply follows the granted capability —
                  a session that never offered the bit gets a named
                  violation, not a page *)
               let c = ctx () in
               c.requests <- c.requests + 1;
               if t.config.enable_metrics
                  && ((not !negotiated)
                     || c.granted land Message.flag_metrics <> 0)
               then write_reply (Message.Metrics_reply (metrics_text ()))
               else begin
                 Metrics.incr m_capability_violations;
                 write_reply
                   (Message.Error_reply
                      "capability violation: metrics exposition was not \
                       granted on this session")
               end;
               loop ()
             | Message.Request req -> (
               let c = ctx () in
               c.requests <- c.requests + 1;
               (* Price the request in DP cells before any decryption:
                  a single oversized batch cannot buy crypto cycles the
                  session's budget (configured or declared) does not
                  cover. *)
               match
                 match req with
                 | Message.Query_submit { segments; indices; _ } ->
                   (* a query re-budgets the cell ledger up front: the
                      declared candidate sketch is what the pruning
                      rounds may spend *)
                   Admission.declare_query c.adm
                     ~candidates:(Array.length indices) ~segments
                 | _ -> (
                   match Admission.cells_of_request req with
                   | Some (kind, count) ->
                     Admission.charge_cells c.adm ~kind ~count
                       ~server_len:c.server_len
                   | None -> Admission.Admit)
               with
               | Admission.Reject { quota; limit; requested } ->
                 write_reply
                   (Message.Quota_exceeded { quota; limit; requested });
                 Quota_rejected quota
               | Admission.Admit ->
                 let reply = timed c req in
                 (* track the active record so the cell ledger follows
                    catalog re-selection *)
                 (match (req, reply) with
                  | _, Message.Catalog_reply lengths -> c.catalog <- Some lengths
                  | _, Message.Catalog_list_reply { lengths; _ } ->
                    c.catalog <- Some lengths
                  | Message.Select_request i, Message.Select_ack _ ->
                    Admission.reselect c.adm;
                    (match c.catalog with
                     | Some lens when i >= 0 && i < Array.length lens ->
                       c.server_len <- lens.(i)
                     | _ -> ())
                  | _ -> ());
                 write_reply reply;
                 loop ())
             | Message.Reply _ ->
               write_reply (Message.Error_reply "expected a request");
               loop ())))
      in
      loop ()
    with
    | Channel.Timeout ->
      let which =
        match
          next_deadline t
            ~session_deadline:
              (match !attached with
               | Some c -> c.ctx_deadline
               | None -> accept_deadline)
        with
        | Some (_, Deadline_exceeded) -> Deadline_exceeded
        | _ -> Idle_timeout
      in
      best_effort_reply ?max_frame:cap ~crc:!crc fd
        (Message.Error_reply
           (match which with
            | Deadline_exceeded -> "session deadline exceeded"
            | _ -> "session idle timeout"));
      which
    | Channel.Stalled ->
      (* the slow-peer watchdog fired: the peer was mid-frame but made
         no byte progress for watchdog_timeout_s — the slowloris shape.
         Not parked: a trickler does not deserve a resume slot. *)
      Metrics.incr m_stalled;
      best_effort_reply ?max_frame:cap ~crc:!crc fd
        (Message.Error_reply "slow peer: no frame progress within watchdog");
      Slow_peer
    | Channel.Connection_lost _ | Channel.Frame_corrupt _ -> Disconnected
    | Channel.Protocol_error m -> Client_error m
    | Unix.Unix_error (e, _, _) -> Client_error (Unix.error_message e)
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* Park recoverable interruptions (connection lost, idle timeout —
     the client may just be partitioned); a deadline or Bye is final. *)
  (match (outcome, !attached) with
   | (Disconnected | Idle_timeout), Some c
     when c.token <> "" && t.config.enable_resume ->
     Resume_table.put t.resume c.token c;
     (* the spool already holds this session's last counted round; keep
        it — it is what survives if THIS worker dies while parked *)
     Metrics.gauge_set m_parked (float_of_int (Resume_table.size t.resume))
   | _, Some c -> (
     (* terminal outcome: the token is dead, so the spooled snapshot
        must die with it — otherwise a quota-rejected or deadline-cut
        session could resurrect through the spool *)
     match t.spool with
     | Some sp when c.token <> "" -> Spool.delete sp ~key:c.token
     | _ -> ())
   | _ -> ());
  let requests_delta, handler_delta =
    match !attached with
    | Some c -> (c.requests - !base_requests, c.handler_seconds -. !base_handler)
    | None -> (0, 0.0)
  in
  let record =
    {
      id;
      peer = string_of_sockaddr peer;
      outcome;
      requests = requests_delta;
      handler_seconds = handler_delta;
      session_stats = stats;
    }
  in
  locked t (fun () ->
      t.active <- t.active - 1;
      t.finished <- record :: t.finished;
      t.handler_seconds_total <- t.handler_seconds_total +. handler_delta;
      t.merged_stats <- Stats.merge t.merged_stats stats;
      Metrics.gauge_set m_active (float_of_int t.active));
  Metrics.incr
    (match outcome with
     | Completed -> m_completed
     | Disconnected -> m_disconnected
     | _ -> m_aborted);
  Telemetry.finish
    ~attrs:
      [
        ( "outcome",
          Telemetry.Int
            (match outcome with
             | Completed -> 0
             | Idle_timeout -> 1
             | Deadline_exceeded -> 2
             | Client_error _ -> 3
             | Disconnected -> 4
             | Quota_rejected _ -> 5
             | Slow_peer -> 6) );
        ("requests", Telemetry.Int requests_delta);
      ]
    span;
  match t.on_session_end with Some f -> f record | None -> ()

(* At-capacity / shedding / throttled handling, run off the accept
   thread.  A connection whose first frame is Stats_req or Health_req is
   an introspection probe: answer it (and any follow-ups, ending at
   Bye/EOF) without a session slot — the monitoring channel must keep
   working precisely when the server is refusing work.  Anything else —
   including silence — is a protocol client and gets the Busy reply with
   the appropriate retry-after hint (a reconnecting Resume client backs
   off and retries like any other).  [?shed] marks a load-shed or
   rate-limit rejection rather than a capacity one. *)
let reject_or_probe ?(shed = false) ?retry_after t fd =
  let retry_after =
    match retry_after with Some s -> s | None -> t.config.retry_after_s
  in
  let cap = t.config.max_frame in
  let read_req ~timeout =
    match
      Channel.read_frame ?max_frame:cap ~deadline:(Monoclock.now () +. timeout) fd
    with
    | Some frame -> (try Some (Message.decode frame) with Wire.Malformed _ -> None)
    | None -> None
    | exception _ -> None
  in
  let answer_probe = function
    | Message.Stats_req ->
      best_effort_reply ?max_frame:cap fd (Message.Stats_reply (stats_text t))
    | Message.Metrics_req ->
      (* the endpoint must work precisely when the server is saturated;
         probe connections carry no negotiated grant, so the only gate
         here is the server-side config switch *)
      if t.config.enable_metrics then
        best_effort_reply ?max_frame:cap fd
          (Message.Metrics_reply (metrics_text ()))
      else
        best_effort_reply ?max_frame:cap fd
          (Message.Error_reply
             "capability violation: metrics exposition is disabled")
    | _ -> best_effort_reply ?max_frame:cap fd (health_reply t)
  in
  let rec probe_loop budget =
    if budget > 0 then begin
      match read_req ~timeout:2.0 with
      | Some
          (Message.Request
             ((Message.Stats_req | Message.Health_req | Message.Metrics_req) as
              p)) ->
        answer_probe p;
        probe_loop (budget - 1)
      | Some (Message.Request Message.Bye) ->
        best_effort_reply ?max_frame:cap fd
          (Message.Bye_ack { server_seconds = 0.0 })
      | Some _ | None -> ()
    end
  in
  let answered_probe =
    match read_req ~timeout:0.5 with
    | Some
        (Message.Request
           ((Message.Stats_req | Message.Health_req | Message.Metrics_req) as p))
      ->
      answer_probe p;
      probe_loop 64;
      true
    | Some _ | None -> false
  in
  if not answered_probe then begin
    locked t (fun () ->
        t.rejected <- t.rejected + 1;
        if shed then t.shed <- t.shed + 1);
    if shed then Metrics.incr m_shed else Metrics.incr m_busy_rejected;
    best_effort_reply ?max_frame:cap fd
      (Message.Busy { retry_after_s = retry_after });
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    try
      let buf = Bytes.create 4096 in
      let rec drain_input attempts =
        if attempts > 0 then
          match Unix.select [ fd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> if Unix.read fd buf 0 4096 > 0 then drain_input (attempts - 1)
      in
      drain_input 8
    with Unix.Unix_error _ -> ()
  end;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Admission decision + thread spawn for one connected socket, shared by
   the owned-listener accept path and the worker fd-injection path. *)
let inject t fd peer =
    (* Cheapest checks first, all on public information.  The per-peer
       rate limit is keyed by address (no port: one hostile process
       cannot dodge its bucket by rotating source ports), and the shed
       watermark compares in-flight crypto work against the configured
       ceiling — both decided before a session slot is even considered. *)
    let peer_key =
      match peer with
      | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
      | Unix.ADDR_UNIX p -> p
    in
    let throttled =
      match t.ratelimit with
      | None -> None
      | Some rl -> (
        match Ratelimit.admit rl peer_key with
        | `Admit -> None
        | `Throttle retry_after_s -> Some retry_after_s)
    in
    let shedding =
      match t.config.shed_watermark with
      | Some w -> Atomic.get t.inflight >= w
      | None -> false
    in
    let admitted =
      if throttled <> None || shedding then None
      else
        locked t (fun () ->
            if t.active >= t.config.max_sessions then None
            else begin
              t.active <- t.active + 1;
              t.accepted <- t.accepted + 1;
              Metrics.incr m_accepted;
              Metrics.gauge_set m_active (float_of_int t.active);
              Some t.accepted
            end)
    in
    (match admitted with
     | None ->
       (* The client's first request is usually already in our receive
          buffer; close() with unread bytes pending sends RST, which can
          destroy the Busy frame before the client reads it.  So: read
          that first frame (answering a Stats_req/Health_req probe in
          place — the introspection channel must work precisely when the
          server is saturated), otherwise reply Busy, half-close, drain
          briefly, then close — off the accept thread, so a hostile
          client cannot slow admission down. *)
       let shed = throttled <> None || shedding in
       ignore
         (Thread.create
            (fun () -> reject_or_probe ~shed ?retry_after:throttled t fd)
            ())
     | Some id ->
       ignore
         (Thread.create
            (fun () ->
              try serve_session t ~id ~peer fd
              with _ ->
                (* serve_session handles its own errors; this is the
                   last-resort belt against bugs in the hooks *)
                ())
            ()))

let accept_one t listener =
  match
    Channel.retry_on_intr (fun () -> Unix.select [ listener ] [] [] 0.2)
  with
  | [], _, _ -> maybe_sweep t
  | _ -> (
    match
      (match t.config.disk_faults with
       | Some f -> Faults.Disk.check f Faults.Disk.Fd
       | None -> ());
      Unix.accept listener
    with
    | fd, peer ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      maybe_sweep t;
      inject t fd peer
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* fd exhaustion: nothing can be accepted right now.  Count it and
         back off a beat so the still-readable listener does not spin
         this loop at 100% CPU; the pending connection is served once
         fds free up. *)
      Metrics.incr m_accept_emfile;
      Thread.delay 0.05;
      maybe_sweep t)

let drain t =
  let give_up = Monoclock.now () +. t.config.drain_timeout_s in
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      while t.active > 0 && Monoclock.now () < give_up do
        (* Condition.wait has no timeout; poll on a short tick so a
           stuck session cannot wedge the drain past its budget. *)
        Mutex.unlock t.mu;
        Thread.delay 0.05;
        Mutex.lock t.mu
      done)

let run t =
  let listener =
    match t.listener with
    | Some l -> l
    | None ->
      invalid_arg
        "Server_loop.run: worker-mode loop has no listener (use run_worker)"
  in
  let total_reached () =
    match t.config.max_total with
    | None -> false
    | Some n -> locked t (fun () -> t.accepted >= n)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close listener with Unix.Unix_error _ -> ())
    (fun () ->
      while (not (Atomic.get t.stop)) && not (total_reached ()) do
        accept_one t listener
      done);
  (* stopped accepting (listener closed above: queued connects are
     refused, not served) — now drain what is already in flight *)
  drain t

(* --- supervised worker mode ------------------------------------------------ *)

(* The worker's final drain frame to the parent dispatcher: its session
   counters, merged traffic stats, and an opaque application blob
   (ppst_server ships its crypto-op totals there), so the parent's
   summary covers every worker that drained. *)
type worker_report = {
  w_accepted : int;
  w_rejected : int;
  w_shed : int;
  w_handler_seconds : float;
  w_stats : Stats.t;
  w_extra : string;
}

let encode_report t ~extra =
  locked t (fun () ->
      let w = Wire.writer () in
      Wire.put_u32 w t.accepted;
      Wire.put_u32 w t.rejected;
      Wire.put_u32 w t.shed;
      Wire.put_f64 w t.handler_seconds_total;
      Wire.put_bytes w (Stats.export t.merged_stats);
      Wire.put_bytes w extra;
      Wire.contents w)

let decode_report blob =
  let r = Wire.reader blob in
  let w_accepted = Wire.get_u32 r in
  let w_rejected = Wire.get_u32 r in
  let w_shed = Wire.get_u32 r in
  let w_handler_seconds = Wire.get_f64 r in
  let w_stats = Stats.import (Wire.get_bytes r) in
  let w_extra = Wire.get_bytes r in
  Wire.expect_end r;
  { w_accepted; w_rejected; w_shed; w_handler_seconds; w_stats; w_extra }

(* Worker service loop: connections arrive as passed fds on [control]
   instead of from an owned listener.  EOF on [control] (the parent
   died or closed the channel) and SIGTERM-via-[shutdown] both end the
   loop; either way the worker drains in-flight sessions and sends one
   final report frame back up the control socket. *)
let run_worker ?(extra = fun () -> "") t ~control =
  (match t.listener with
   | Some _ ->
     invalid_arg "Server_loop.run_worker: loop owns a listener (use run)"
   | None -> ());
  let rec serve () =
    if not (Atomic.get t.stop) then begin
      match
        Channel.retry_on_intr (fun () -> Unix.select [ control ] [] [] 0.2)
      with
      | [], _, _ ->
        maybe_sweep t;
        serve ()
      | _ -> (
        match Fd_passing.recv_fd control with
        | None -> () (* parent closed the dispatch channel *)
        | Some fd ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let peer =
            try Unix.getpeername fd
            with Unix.Unix_error _ -> Unix.ADDR_UNIX "supervisor"
          in
          maybe_sweep t;
          inject t fd peer;
          serve ())
    end
  in
  (try serve () with Unix.Unix_error _ -> ());
  drain t;
  let report = encode_report t ~extra:(extra ()) in
  try Channel.write_frame control report with _ -> ()
